// AnswerRep: one capability-tagged interface over every answer structure.
//
// The paper gives four ways to hold a query result — the Theorem 1
// compressed structure, the Theorem 2 decomposed structure, and the two
// extremal baselines (materialize everything / evaluate directly) — and the
// serving question is always the same: given an access request v_b, stream
// Q^eta[v_b]. AnswerRep is that contract. Every consumer (the CLI, the
// benches, the RepCache, the parallel enumerator glue) dispatches through
// this type instead of hand-rolling per-structure switches.
//
// Entry points are *hardened*: arity and bound-valuation mismatches return
// Status errors in release builds — a malformed request from an untrusted
// caller can never index out of bounds or trip a debug-only DCHECK. The
// underlying structures keep their CHECK-based contracts for trusted
// in-process callers; this layer is the boundary where user input arrives.
//
// Capabilities advertise what a structure can do beyond plain enumeration
// (lex order, range restriction, O(delay) resume, shard-parallel drain,
// count-without-enumeration) so generic code can branch on *capability*
// rather than on concrete type.
#ifndef CQC_PLAN_ANSWER_REP_H_
#define CQC_PLAN_ANSWER_REP_H_

#include <memory>
#include <optional>
#include <string>

#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "core/compressed_rep.h"
#include "core/cursor.h"
#include "core/enumerator.h"
#include "core/finterval.h"
#include "core/updatable_rep.h"
#include "decomposition/decomposed_rep.h"
#include "exec/parallel_enumerator.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

enum class RepKind : uint8_t {
  kCompressed,    // Theorem 1: delay-balanced tree + heavy dictionary
  kDecomposed,    // Theorem 2: connex decomposition of per-bag structures
  kDirect,        // §2.3 baseline: worst-case optimal join per request
  kMaterialized,  // §2.3 baseline: full output, indexed by bound vars
  kUpdatable,     // §8 extension: Theorem-1 snapshot + signed pending delta
};

/// Lower-case structure name ("compressed", "decomposed", ...).
const char* RepKindName(RepKind kind);

/// Inverse of RepKindName; nullopt for unknown names.
std::optional<RepKind> ParseRepKind(const std::string& name);

/// What a representation supports beyond Answer/AnswerExists.
struct RepCapabilities {
  /// Answer streams in lexicographic order of the free variables.
  bool lex_ordered = false;
  /// AnswerRange enumerates an arbitrary closed lex interval.
  bool range_restricted = false;
  /// Resume reaches the first resumed tuple in O~(delay), not O(emitted).
  bool low_delay_resume = false;
  /// ParallelAnswer drains a real shard plan (not the sequential fallback).
  bool sharded = false;
  /// Count answers |Q^eta[v_b]| without enumerating the output.
  bool counting = false;
  /// ApplyDelta mutates the base tables in place (inserts + deletions)
  /// while concurrent readers keep enumerating a consistent state.
  bool updatable = false;
  /// AnswerAggregate computes grouped COUNT/SUM/MIN/MAX without per-tuple
  /// enumeration (pushed into the structure); structures without the flag
  /// still answer, by draining the stream and folding.
  bool aggregates = false;
};

/// The capability set an adapter of `kind` would advertise (the planner's
/// prediction surface — no structure needs to exist). `num_free` is the
/// view's free arity; `with_aggregates` marks a build with aggregate
/// annotations (CompressedRepOptions::build_aggregates).
RepCapabilities KindCapabilities(RepKind kind, int num_free,
                                 bool with_aggregates);

/// Compact tag list for Explain/--stats output: the set bits of `caps` as
/// "lex,range,resume,shard,count,update,agg" (or "-" when none).
std::string CapabilityTags(const RepCapabilities& caps);

class AnswerRep {
 public:
  virtual ~AnswerRep() = default;

  virtual RepKind kind() const = 0;
  virtual RepCapabilities capabilities() const = 0;
  virtual const AdornedView& view() const = 0;

  /// Build statistics: wall-clock build time and the resident footprint of
  /// the structure (indexes + auxiliary data; the paper's S up to
  /// constants). One-line human description for logs / --stats.
  virtual double build_seconds() const = 0;
  virtual size_t SpaceBytes() const = 0;
  virtual std::string Describe() const = 0;

  /// Physical memory charge right now. Equals SpaceBytes() for heap-backed
  /// structures; mmap-backed ones (core/rep_file.h) report only the pages
  /// the OS actually has resident, which is what a byte-budgeted cache
  /// must charge them (plan/rep_cache.h).
  virtual size_t ResidentBytes() const { return SpaceBytes(); }

  // --- hardened serving entry points ---------------------------------------
  // Each validates the request shape and returns a Status error on misuse
  // (wrong bound-valuation arity, unsupported capability, malformed range or
  // cursor) instead of relying on debug-only checks.
  //
  // Every entry point optionally takes a RequestContext (docs/robustness.md):
  // an already-expired or cancelled request returns kDeadlineExceeded /
  // kCancelled before any work, and streaming results are wrapped in a
  // DeadlineCheckedEnumerator so expiry mid-stream cuts the stream short
  // within one batch of work (callers learn why from ctx->Check() — the
  // bool-only TupleEnumerator API has no error channel). A null ctx is the
  // legacy unbounded request and adds zero overhead.

  /// Streams Q^eta[v_b]; tuples are aligned with view().free_vars().
  Result<std::unique_ptr<TupleEnumerator>> Answer(
      const BoundValuation& vb, const RequestContext* ctx = nullptr) const;

  /// Streams exactly the outputs inside the closed lex interval `range`
  /// (arity num_free). Requires capabilities().range_restricted.
  Result<std::unique_ptr<TupleEnumerator>> AnswerRange(
      const BoundValuation& vb, const FInterval& range,
      const RequestContext* ctx = nullptr) const;

  /// Resumes a paused enumeration from a (possibly untrusted) cursor.
  Result<std::unique_ptr<TupleEnumerator>> Resume(
      const BoundValuation& vb, const EnumerationCursor& cursor,
      const RequestContext* ctx = nullptr) const;

  /// Is the access request non-empty?
  Result<bool> AnswerExists(const BoundValuation& vb,
                            const RequestContext* ctx = nullptr) const;

  /// |Q^eta[v_b]|. Counting-capable structures answer without enumerating
  /// (only the entry check applies); the rest drain the stream with
  /// per-batch deadline polling.
  Result<uint64_t> Count(const BoundValuation& vb,
                         const RequestContext* ctx = nullptr) const;

  /// Grouped ring aggregate (COUNT/SUM/MIN/MAX) over Q^eta[v_b], grouped
  /// by the free-variable indices in `group_vars` (strictly ascending; the
  /// empty set yields one global group). Aggregate-capable structures push
  /// the fold into the structure; the rest drain the stream and fold (with
  /// per-batch deadline polling when `ctx` is set).
  /// Groups come back in lex order of their keys, count > 0 only, so the
  /// result is byte-identical across structures.
  Result<AggregateResult> AnswerAggregate(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec, const RequestContext* ctx = nullptr) const;

  /// Shard-planning hook: drains the request with `options.num_threads`
  /// workers when the structure shards (capabilities().sharded); otherwise
  /// falls back to the sequential stream. Order follows the structure's
  /// parallel contract (see exec/parallel_enumerator.h). `ctx` propagates
  /// into the shard producers (checked per chunk) as well as the consumer
  /// stream.
  Result<std::unique_ptr<TupleEnumerator>> ParallelAnswer(
      const BoundValuation& vb, const ParallelOptions& options,
      const RequestContext* ctx = nullptr) const;

  /// Applies base-table mutations (docs/update-semantics.md). Only
  /// structures advertising capabilities().updatable accept a delta; the
  /// rest return an error (the serving layer invalidates them instead).
  /// Thread-safe against concurrent serving entry points.
  virtual Status ApplyDelta(const UpdateBatch& delta);

 protected:
  // Per-structure implementations, called only after validation.
  virtual std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const = 0;
  /// Only called when capabilities().range_restricted.
  virtual std::unique_ptr<TupleEnumerator> AnswerRangeImpl(
      const BoundValuation& vb, const FInterval& range) const;
  /// Default: re-enumerate and skip cursor.emitted tuples (O(emitted)).
  virtual Result<std::unique_ptr<TupleEnumerator>> ResumeImpl(
      const BoundValuation& vb, const EnumerationCursor& cursor) const;
  /// Default: pull one tuple.
  virtual bool AnswerExistsImpl(const BoundValuation& vb) const;
  /// Default: drain through the batch API.
  virtual uint64_t CountImpl(const BoundValuation& vb) const;
  /// Default: drain the stream and fold (GroupedDrainAggregate).
  virtual AggregateResult AnswerAggregateImpl(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec) const;
  /// Default: the sequential stream.
  virtual std::unique_ptr<TupleEnumerator> ParallelAnswerImpl(
      const BoundValuation& vb, const ParallelOptions& options) const;

  /// Shared request validation (arity of v_b against the view).
  Status ValidateRequest(const BoundValuation& vb) const;
};

// --- adapters ---------------------------------------------------------------
// Each adapter owns its structure and exposes it via underlying() so callers
// that need a structure-specific API (serialization, dictionary fixup,
// differential tests) can still reach it.

class CompressedAnswerRep : public AnswerRep {
 public:
  explicit CompressedAnswerRep(std::unique_ptr<CompressedRep> rep);

  RepKind kind() const override { return RepKind::kCompressed; }
  RepCapabilities capabilities() const override;
  const AdornedView& view() const override { return rep_->view(); }
  double build_seconds() const override {
    return rep_->stats().build_seconds;
  }
  size_t SpaceBytes() const override { return rep_->stats().TotalBytes(); }
  size_t ResidentBytes() const override { return rep_->ResidentBytes(); }
  std::string Describe() const override;

  const CompressedRep& underlying() const { return *rep_; }
  CompressedRep& mutable_underlying() { return *rep_; }

 protected:
  std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const override;
  std::unique_ptr<TupleEnumerator> AnswerRangeImpl(
      const BoundValuation& vb, const FInterval& range) const override;
  Result<std::unique_ptr<TupleEnumerator>> ResumeImpl(
      const BoundValuation& vb, const EnumerationCursor& cursor) const override;
  bool AnswerExistsImpl(const BoundValuation& vb) const override;
  std::unique_ptr<TupleEnumerator> ParallelAnswerImpl(
      const BoundValuation& vb, const ParallelOptions& options) const override;
  AggregateResult AnswerAggregateImpl(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec) const override;

 private:
  std::unique_ptr<CompressedRep> rep_;
};

class DecomposedAnswerRep : public AnswerRep {
 public:
  explicit DecomposedAnswerRep(std::unique_ptr<DecomposedRep> rep);

  RepKind kind() const override { return RepKind::kDecomposed; }
  RepCapabilities capabilities() const override;
  const AdornedView& view() const override { return rep_->view(); }
  double build_seconds() const override {
    return rep_->stats().build_seconds;
  }
  size_t SpaceBytes() const override { return rep_->SpaceBytes(); }
  std::string Describe() const override;

  const DecomposedRep& underlying() const { return *rep_; }

 protected:
  std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const override;
  Result<std::unique_ptr<TupleEnumerator>> ResumeImpl(
      const BoundValuation& vb, const EnumerationCursor& cursor) const override;
  bool AnswerExistsImpl(const BoundValuation& vb) const override;
  uint64_t CountImpl(const BoundValuation& vb) const override;
  std::unique_ptr<TupleEnumerator> ParallelAnswerImpl(
      const BoundValuation& vb, const ParallelOptions& options) const override;
  AggregateResult AnswerAggregateImpl(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec) const override;

 private:
  std::unique_ptr<DecomposedRep> rep_;
};

class DirectAnswerRep : public AnswerRep {
 public:
  explicit DirectAnswerRep(std::unique_ptr<DirectEval> rep);

  RepKind kind() const override { return RepKind::kDirect; }
  RepCapabilities capabilities() const override;
  const AdornedView& view() const override { return rep_->view(); }
  double build_seconds() const override { return rep_->build_seconds(); }
  size_t SpaceBytes() const override { return rep_->SpaceBytes(); }
  std::string Describe() const override;

  const DirectEval& underlying() const { return *rep_; }

 protected:
  std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const override;
  std::unique_ptr<TupleEnumerator> AnswerRangeImpl(
      const BoundValuation& vb, const FInterval& range) const override;
  Result<std::unique_ptr<TupleEnumerator>> ResumeImpl(
      const BoundValuation& vb, const EnumerationCursor& cursor) const override;
  bool AnswerExistsImpl(const BoundValuation& vb) const override;

 private:
  std::unique_ptr<DirectEval> rep_;
};

class MaterializedAnswerRep : public AnswerRep {
 public:
  explicit MaterializedAnswerRep(std::unique_ptr<MaterializedView> rep);

  RepKind kind() const override { return RepKind::kMaterialized; }
  RepCapabilities capabilities() const override;
  const AdornedView& view() const override { return rep_->view(); }
  double build_seconds() const override { return rep_->build_seconds(); }
  size_t SpaceBytes() const override { return rep_->SpaceBytes(); }
  std::string Describe() const override;

  const MaterializedView& underlying() const { return *rep_; }

 protected:
  std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const override;
  bool AnswerExistsImpl(const BoundValuation& vb) const override;
  uint64_t CountImpl(const BoundValuation& vb) const override;
  AggregateResult AnswerAggregateImpl(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec) const override;

 private:
  std::unique_ptr<MaterializedView> rep_;
};

/// §8 extension: a mutable serving structure. Answer / AnswerExists / Count
/// reflect the current data (snapshot + pending signed delta); ApplyDelta
/// routes mutations to the underlying UpdatableRep. The combined stream is
/// NOT lexicographic once a delta is pending (surviving snapshot answers
/// stream in lex order first, then delta-derived answers), so the adapter
/// advertises none of the order-dependent capabilities.
class UpdatableAnswerRep : public AnswerRep {
 public:
  explicit UpdatableAnswerRep(std::unique_ptr<UpdatableRep> rep);

  RepKind kind() const override { return RepKind::kUpdatable; }
  RepCapabilities capabilities() const override;
  const AdornedView& view() const override { return rep_->view(); }
  double build_seconds() const override { return rep_->build_seconds(); }
  size_t SpaceBytes() const override { return rep_->SpaceBytes(); }
  std::string Describe() const override;

  Status ApplyDelta(const UpdateBatch& delta) override;

  /// The pending-mass rebuild trigger + fold, for serving layers that
  /// amortize rebuilds on a background pool (plan/rep_cache.h).
  bool NeedsRebuild() const { return rep_->NeedsRebuild(); }
  Status Rebuild(bool only_if_needed = false) {
    return rep_->Rebuild(only_if_needed);
  }

  const UpdatableRep& underlying() const { return *rep_; }
  UpdatableRep& mutable_underlying() { return *rep_; }

 protected:
  std::unique_ptr<TupleEnumerator> AnswerImpl(
      const BoundValuation& vb) const override;
  bool AnswerExistsImpl(const BoundValuation& vb) const override;
  AggregateResult AnswerAggregateImpl(
      const BoundValuation& vb, const std::vector<int>& group_vars,
      const AggSpec& spec) const override;

 private:
  std::unique_ptr<UpdatableRep> rep_;
};

/// Wrappers over already-built structures.
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<CompressedRep> rep);
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<DecomposedRep> rep);
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<DirectEval> rep);
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<MaterializedView> rep);
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<UpdatableRep> rep);

/// How to build a representation of a given kind. Structure-specific knobs
/// are honored only by the matching kind; a decomposed build without an
/// explicit decomposition runs the connex elimination-order search.
struct RepBuildSpec {
  RepKind kind = RepKind::kCompressed;
  CompressedRepOptions compressed;
  std::optional<TreeDecomposition> decomposition;
  DecomposedRepOptions decomposed;
  /// Knobs for kUpdatable (its snapshot structure uses updatable.rep, NOT
  /// `compressed`; the planner copies its chosen tau + cover across).
  UpdatableRepOptions updatable;
};

/// Builds the requested structure over (db, aux_db) and wraps it. `view`
/// must already be a natural-join full CQ (NormalizeView).
Result<std::unique_ptr<AnswerRep>> BuildAnswerRep(const RepBuildSpec& spec,
                                                  const AdornedView& view,
                                                  const Database& db,
                                                  const Database* aux_db =
                                                      nullptr);

}  // namespace cqc

#endif  // CQC_PLAN_ANSWER_REP_H_

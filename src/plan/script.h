// Parsing for cqc_cli request/script lines (docs/update-semantics.md).
//
// Extracted from the CLI so the grammar is unit-testable against a corpus
// of malformed inputs. Parsing is *strict*: every value token must be a
// complete unsigned decimal in range — `std::istream >> uint64_t` silently
// wraps negatives and stops mid-line at the first junk token, which turned
// "+ R 1 2x" into an insert of (1) and "- R -1 5" into a delete of
// (18446744073709551615, 5). A malformed line now yields a Status naming
// the offending token instead of a silently wrong mutation.
//
// Script grammar (one op per line; '#' starts a comment):
//   + REL v1 v2 ...   insert a tuple into REL
//   - REL v1 v2 ...   delete a tuple from REL
//   ? v1 v2 ...       access request (bound values)
//   agg count <k> [bound...]
//   agg sum|min|max <var> <k> [bound...]
//   rebuild           fold the pending delta into the snapshot now
//   stats             print the structure state
// Outside --mutate mode only bare request lines ("v1 v2 ...") and agg
// lines are legal.
#ifndef CQC_PLAN_SCRIPT_H_
#define CQC_PLAN_SCRIPT_H_

#include <string>

#include "core/aggregate.h"
#include "relational/database.h"
#include "util/common.h"
#include "util/status.h"

namespace cqc {

struct ScriptOp {
  enum class Kind {
    kNoOp,       // blank line or comment
    kInsert,     // + REL values...
    kDelete,     // - REL values...
    kQuery,      // ? values... (or a bare request line)
    kAggregate,  // agg ...
    kRebuild,
    kStats,
  };

  Kind kind = Kind::kNoOp;
  std::string relation;  // kInsert / kDelete
  Tuple values;          // mutation tuple or bound valuation
  AggSpec agg;           // kAggregate
  int group_arity = 0;   // kAggregate: group over the first k free vars
};

/// Parses one token as a Value: complete unsigned decimal, in range.
/// Rejects signs, hex, trailing garbage, and overflow.
Status ParseValueToken(const std::string& token, Value* out);

/// Sentinel for "the error is not addressable to a byte of the line"
/// (never produced today: missing-argument errors point one past the last
/// byte, token errors at the token's first byte).
inline constexpr size_t kScriptNoOffset = (size_t)-1;

/// Parses one line. `mutate_mode` selects the script grammar above; when
/// false, only bare request lines and agg lines parse. Never throws; a
/// malformed line returns Status::Error naming the problem.
///
/// On error, `*error_offset` (when non-null) is set to the byte offset
/// INTO THE LINE that the error refers to: the first byte of the offending
/// token, or line.size() when something required is missing at the end.
/// Line-oriented callers turn it into a column (offset + 1); the wire
/// server (serve/) adds the frame body's stream offset to address the
/// exact byte of the connection that was malformed.
Result<ScriptOp> ParseScriptLine(const std::string& line, bool mutate_mode,
                                 size_t* error_offset = nullptr);

/// Schema check for a parsed kInsert/kDelete against the base database:
/// the relation must exist and the tuple arity must match. (The updatable
/// structure re-validates against its view; this catches typos with a
/// better message, before any structure is touched.)
Status ValidateMutation(const ScriptOp& op, const Database& db);

}  // namespace cqc

#endif  // CQC_PLAN_SCRIPT_H_

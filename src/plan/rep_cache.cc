#include "plan/rep_cache.h"

#include "query/parser.h"
#include "util/str_util.h"

namespace cqc {

RepCache::RepCache(const Database* db, RepCacheOptions options)
    : db_(db), options_(std::move(options)) {
  CQC_CHECK(db_ != nullptr);
  CQC_CHECK_GT(options_.capacity, 0u);
}

Result<std::shared_ptr<const CachedRep>> RepCache::Get(
    const std::string& view_text, double space_budget_exponent) {
  Result<AdornedView> parsed = ParseAdornedView(view_text);
  if (!parsed.ok()) return parsed.status();
  return GetView(parsed.value(), space_budget_exponent);
}

Result<std::shared_ptr<const CachedRep>> RepCache::GetView(
    const AdornedView& view, double space_budget_exponent) {
  // Budget is part of the identity: the same query at two budgets may be
  // two different structures.
  const std::string key =
      CanonicalViewKey(view) +
      StrFormat("|B=%.6g", space_budget_exponent < 0
                               ? -1.0
                               : space_budget_exponent);

  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Single-flight: someone else is already building this entry.
      ++stats_.coalesced;
      flight = fit->second;
      cv_.wait(lock, [&] { return flight->done; });
      if (flight->result != nullptr) return flight->result;
      return flight->error;
    }
    ++stats_.misses;
    flight = std::make_shared<InFlight>();
    inflight_.emplace(key, flight);
  }

  // Build without holding the cache lock: distinct keys build in parallel,
  // and hits never wait behind a build.
  Result<std::shared_ptr<const CachedRep>> built =
      BuildEntry(key, view, space_budget_exponent);

  {
    std::unique_lock<std::mutex> lock(mu_);
    flight->done = true;
    if (built.ok()) {
      ++stats_.builds;
      flight->result = built.value();
      lru_.emplace_front(key, built.value());
      entries_[key] = lru_.begin();
      while (lru_.size() > options_.capacity) {
        ++stats_.evictions;
        entries_.erase(lru_.back().first);
        lru_.pop_back();
      }
    } else {
      // Failures are not cached: the next request retries (the database
      // may have gained the missing relation in the meantime).
      ++stats_.build_failures;
      flight->error = built.status();
    }
    inflight_.erase(key);
  }
  cv_.notify_all();
  return built;
}

Result<std::shared_ptr<const CachedRep>> RepCache::BuildEntry(
    const std::string& key, const AdornedView& view,
    double space_budget_exponent) const {
  Result<NormalizedView> normalized = NormalizeView(view, *db_);
  if (!normalized.ok()) return normalized.status();

  // The entry owns the normalized view *before* planning/building, so the
  // aux database the structure will reference has its final address.
  std::shared_ptr<CachedRep> entry(
      new CachedRep(key, std::move(normalized).value()));

  Planner planner(db_, &entry->normalized_.aux_db);
  PlannerOptions popts = options_.planner;
  popts.space_budget_exponent = space_budget_exponent;
  Result<Plan> plan = planner.PlanView(entry->normalized_.view, popts);
  if (!plan.ok()) return plan.status();
  entry->plan_ = std::move(plan).value();

  Result<std::unique_ptr<AnswerRep>> rep =
      planner.BuildPlan(entry->normalized_.view, entry->plan_);
  if (!rep.ok()) return rep.status();
  entry->rep_ = std::move(rep).value();
  return std::shared_ptr<const CachedRep>(std::move(entry));
}

RepCacheStats RepCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

size_t RepCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace cqc

#include "plan/rep_cache.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "core/serialization.h"
#include "exec/thread_pool.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "util/str_util.h"

namespace cqc {

RepCache::RepCache(const Database* db, RepCacheOptions options)
    : db_(db), options_(std::move(options)) {
  CQC_CHECK(db_ != nullptr);
  CQC_CHECK_GT(options_.capacity, 0u);
}

RepCache::~RepCache() { WaitForRebuilds(); }

Result<std::shared_ptr<const CachedRep>> RepCache::Get(
    const std::string& view_text, double space_budget_exponent,
    const RequestContext* ctx) {
  Result<AdornedView> parsed = ParseAdornedView(view_text);
  if (!parsed.ok()) return parsed.status();
  return GetView(parsed.value(), space_budget_exponent, ctx);
}

Result<std::shared_ptr<const CachedRep>> RepCache::GetView(
    const AdornedView& view, double space_budget_exponent,
    const RequestContext* ctx) {
  // Budget is part of the identity: the same query at two budgets may be
  // two different structures.
  const std::string key =
      CanonicalViewKey(view) +
      StrFormat("|B=%.6g", space_budget_exponent < 0
                               ? -1.0
                               : space_budget_exponent);
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;

  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (it->second->second->degraded_) ++stats_.degraded_serves;
      lru_.splice(lru_.begin(), lru_, it->second);
      return std::shared_ptr<const CachedRep>(it->second->second);
    }
    if (auto neg = negative_.find(key); neg != negative_.end()) {
      // A build for this key failed within the TTL: fail fast instead of
      // sending every released waiter straight back into the build path.
      if (std::chrono::steady_clock::now() < neg->second.expires) {
        ++stats_.negative_hits;
        return neg->second.error;
      }
      negative_.erase(neg);  // TTL over: the key may build fine now
    }
    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Single-flight: someone else is already building this entry. The
      // wait is bounded by the waiter's own deadline and by
      // options_.build_timeout; the build itself is NOT torn down on a
      // waiter timeout — it finishes for whoever can still use it.
      ++stats_.coalesced;
      flight = fit->second;
      auto wait_deadline = std::chrono::steady_clock::time_point::max();
      if (options_.build_timeout.count() > 0)
        wait_deadline = std::chrono::steady_clock::now() +
                        options_.build_timeout;
      if (ctx != nullptr && ctx->deadline())
        wait_deadline = std::min(wait_deadline, *ctx->deadline());
      const bool done = cv_.wait_until(lock, wait_deadline,
                                       [&] { return flight->done; });
      if (!done) {
        ++stats_.waiter_timeouts;
        if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
        return Status::Unavailable(StrFormat(
            "timed out after %lld ms waiting for in-flight build of %s",
            (long long)options_.build_timeout.count(), key.c_str()));
      }
      if (flight->result != nullptr) return flight->result;
      return flight->error;
    }
    ++stats_.misses;
    flight = std::make_shared<InFlight>();
    inflight_.emplace(key, flight);
  }

  // Build without holding the cache lock: distinct keys build in parallel,
  // and hits never wait behind a build.
  Result<std::shared_ptr<CachedRep>> built =
      BuildEntryResilient(key, view, space_budget_exponent, ctx);

  Result<std::shared_ptr<const CachedRep>> out =
      built.ok()
          ? Result<std::shared_ptr<const CachedRep>>(
                std::shared_ptr<const CachedRep>(built.value()))
          : built.status();
  {
    std::unique_lock<std::mutex> lock(mu_);
    flight->done = true;
    if (built.ok()) {
      ++stats_.builds;
      if (built.value()->from_snapshot_) ++stats_.mmap_loads;
      if (built.value()->degraded_) ++stats_.degraded_serves;
      flight->result = out.value();
      lru_.emplace_front(key, built.value());
      entries_[key] = lru_.begin();
      EvictLocked();
    } else {
      ++stats_.build_failures;
      flight->error = built.status();
      const Status& e = built.status();
      // Remember the failure so the released waiters (and anyone else
      // within the TTL) fail fast instead of thundering-herd rebuilding.
      // Deadline/cancel outcomes describe the builder's request, not the
      // key — caching them would wrongly fail unbounded requests.
      if (options_.negative_ttl.count() > 0 && !e.IsDeadlineExceeded() &&
          !e.IsCancelled()) {
        negative_[key] = NegativeEntry{
            e, std::chrono::steady_clock::now() + options_.negative_ttl};
      }
    }
    inflight_.erase(key);
  }
  cv_.notify_all();
  return out;
}

Result<std::shared_ptr<CachedRep>> RepCache::BuildEntryResilient(
    const std::string& key, const AdornedView& view,
    double space_budget_exponent, const RequestContext* ctx) {
  const int attempts = std::max(1, options_.max_build_attempts);
  std::chrono::milliseconds backoff = options_.build_retry_backoff;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.build_retries;
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    // The builder's own request may expire during a backoff; stop burning
    // attempts for a caller that is gone. Coalesced waiters inherit this
    // status but it is never negatively cached, so their next Get retries.
    if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
    Result<std::shared_ptr<CachedRep>> built =
        BuildEntry(key, view, space_budget_exponent);
    if (built.ok()) return built;
    last = built.status();
    // Only transient faults (I/O, injected, contained worker exceptions)
    // are worth retrying; a malformed view stays malformed.
    if (!last.IsUnavailable()) break;
  }
  if (options_.degrade_on_failure && last.IsUnavailable()) {
    Result<std::shared_ptr<CachedRep>> degraded =
        BuildDegraded(key, view, last);
    if (degraded.ok()) return degraded;
    // Even DirectEval failed — report the original fault, which names the
    // structure the planner actually wanted.
  }
  return last;
}

Result<std::shared_ptr<CachedRep>> RepCache::BuildDegraded(
    const std::string& key, const AdornedView& view,
    const Status& cause) const {
  Result<NormalizedView> normalized = NormalizeView(view, *db_);
  if (!normalized.ok()) return normalized.status();
  std::shared_ptr<CachedRep> entry(
      new CachedRep(key, std::move(normalized).value()));

  Plan plan;
  plan.spec.kind = RepKind::kDirect;
  plan.within_budget = true;
  PlanCandidate cand;
  cand.kind = RepKind::kDirect;
  cand.feasible = true;
  cand.note = "degraded fallback (" + cause.message() + ")";
  plan.candidates.push_back(std::move(cand));
  entry->plan_ = std::move(plan);

  Result<std::unique_ptr<AnswerRep>> rep = BuildAnswerRep(
      entry->plan_.spec, entry->normalized_.view, *db_,
      &entry->normalized_.aux_db);
  if (!rep.ok()) return rep.status();
  entry->rep_ = std::move(rep).value();
  entry->degraded_ = true;
  return entry;
}

Result<std::shared_ptr<CachedRep>> RepCache::BuildEntry(
    const std::string& key, const AdornedView& view,
    double space_budget_exponent) const {
  Result<NormalizedView> normalized = NormalizeView(view, *db_);
  if (!normalized.ok()) return normalized.status();

  // The entry owns the normalized view *before* planning/building, so the
  // aux database the structure will reference has its final address.
  std::shared_ptr<CachedRep> entry(
      new CachedRep(key, std::move(normalized).value()));

  // Restart path: serve a persisted snapshot zero-copy before paying for a
  // plan + build. The loader validates the file against the *current*
  // database (skeleton binding, domain membership, the full corrupt-input
  // sweep), so a snapshot that no longer matches the data falls through to
  // a fresh build rather than serving stale answers silently.
  if (!options_.snapshot_dir.empty()) {
    Result<std::unique_ptr<CompressedRep>> mapped =
        MmapCompressedRep(entry->normalized_.view, *db_, SnapshotPath(key),
                          &entry->normalized_.aux_db);
    if (mapped.ok()) {
      Plan plan;
      plan.spec.kind = RepKind::kCompressed;
      plan.spec.compressed.tau = mapped.value()->tau();
      plan.within_budget = true;
      PlanCandidate cand;
      cand.kind = RepKind::kCompressed;
      cand.tau = plan.spec.compressed.tau;
      cand.feasible = true;
      cand.note = "mmap snapshot";
      plan.candidates.push_back(std::move(cand));
      entry->plan_ = std::move(plan);
      entry->rep_ = WrapAnswerRep(std::move(mapped).value());
      entry->from_snapshot_ = true;
      return entry;
    }
  }

  Planner planner(db_, &entry->normalized_.aux_db);
  PlannerOptions popts = options_.planner;
  popts.space_budget_exponent = space_budget_exponent;
  Result<Plan> plan = planner.PlanView(entry->normalized_.view, popts);
  if (!plan.ok()) return plan.status();
  entry->plan_ = std::move(plan).value();
  // The cache amortizes snapshot folds on the shared pool itself
  // (ApplyDelta -> MaybeScheduleRebuild); a synchronous fold inside
  // ApplyDelta would stall the writer.
  entry->plan_.spec.updatable.auto_rebuild = false;

  Result<std::unique_ptr<AnswerRep>> rep =
      planner.BuildPlan(entry->normalized_.view, entry->plan_);
  if (!rep.ok()) return rep.status();
  entry->rep_ = std::move(rep).value();
  return entry;
}

void RepCache::EvictLocked() {
  while (lru_.size() > options_.capacity) {
    ++stats_.evictions;
    entries_.erase(lru_.back().first);
    lru_.pop_back();
  }
  if (options_.max_resident_bytes == 0) return;
  // Physical footprint: mapped entries charge only their resident pages,
  // so the recompute per evicted entry is deliberate — evicting one entry
  // does not change the others' charge, but the sum must be fresh against
  // the budget each round. n <= capacity keeps this cheap.
  auto resident_sum = [this] {
    size_t sum = 0;
    for (const auto& [unused_key, entry] : lru_) sum += entry->rep().ResidentBytes();
    return sum;
  };
  while (lru_.size() > 1 && resident_sum() > options_.max_resident_bytes) {
    ++stats_.byte_evictions;
    entries_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::string RepCache::SnapshotPath(const std::string& key) const {
  if (options_.snapshot_dir.empty()) return "";
  // FNV-1a 64 over the canonical key: stable across runs (that is the whole
  // point — the path must survive a restart), filename-safe hex.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return options_.snapshot_dir + "/" +
         StrFormat("%016llx", (unsigned long long)h) + ".cqcrep";
}

Status RepCache::PersistEntry(const std::string& key) {
  if (options_.snapshot_dir.empty())
    return Status::Error("PersistEntry: no snapshot_dir configured");
  std::shared_ptr<const CachedRep> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end())
      return Status::Error("PersistEntry: no cached entry for key " + key);
    entry = it->second->second;
  }
  // Serialize outside the lock: a large rep's write must not stall serving.
  const auto* compressed =
      dynamic_cast<const CompressedAnswerRep*>(&entry->rep());
  if (compressed == nullptr)
    return Status::Error("PersistEntry: entry for key " + key +
                         " is not a compressed structure");
  return SaveCompressedRep(compressed->underlying(), SnapshotPath(key));
}

// --- update path ------------------------------------------------------------

namespace {

/// How a delta touches one cached view: not at all, via exactly-named
/// atoms (routable), or via a derived aux relation (normalize.h rewrites
/// "R" with constants/repeats into "R__n<k>"), which an updatable
/// structure cannot absorb — the entry must be invalidated.
struct TouchReport {
  bool exact = false;
  bool derived = false;
};

TouchReport Touches(const CachedRep& entry,
                    const std::set<std::string>& mutated) {
  TouchReport t;
  for (const Atom& atom : entry.view().cq().atoms()) {
    if (mutated.count(atom.relation) > 0) {
      t.exact = true;
      continue;
    }
    // Only atoms the normalizer actually rewrote are derived; a base
    // relation whose own name contains "__n" must not match here.
    auto it = entry.derived_sources().find(atom.relation);
    if (it != entry.derived_sources().end() && mutated.count(it->second) > 0)
      t.derived = true;
  }
  return t;
}

}  // namespace

Status RepCache::ApplyDelta(const std::string& key, const UpdateBatch& delta) {
  if (delta.empty()) return Status::Ok();
  // Injected before any entry is touched: a fired fault must leave every
  // cached structure exactly as it was (the batch is all-or-nothing at
  // this boundary).
  CQC_FAILPOINT("rep_cache/apply_delta");
  std::set<std::string> mutated;
  for (const UpdateOp& op : delta) mutated.insert(op.relation);

  // Snapshot the affected entries under the lock; route the delta outside
  // it (an in-place Apply can contend with its own writers, never with the
  // cache metadata).
  std::vector<std::shared_ptr<CachedRep>> updatable_targets;
  bool key_found = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    key_found = entries_.find(key) != entries_.end();
    for (auto it = lru_.begin(); it != lru_.end();) {
      const std::shared_ptr<CachedRep>& entry = it->second;
      const TouchReport touch = Touches(*entry, mutated);
      if (!touch.exact && !touch.derived) {
        ++it;
        continue;
      }
      if (touch.derived || !entry->rep().capabilities().updatable) {
        // Invalidate: live handles keep serving their (now stale) build;
        // the next Get replans against the caller-maintained database.
        ++stats_.invalidations;
        entries_.erase(it->first);
        it = lru_.erase(it);
        continue;
      }
      updatable_targets.push_back(entry);
      ++it;
    }
  }

  Status result = Status::Ok();
  uint64_t applied = 0;
  uint64_t failed = 0;
  for (const std::shared_ptr<CachedRep>& entry : updatable_targets) {
    // Each entry absorbs only the ops naming its own relations (a batch
    // may span views).
    UpdateBatch relevant;
    std::set<std::string> names;
    for (const Atom& atom : entry->view().cq().atoms())
      names.insert(atom.relation);
    for (const UpdateOp& op : delta)
      if (names.count(op.relation) > 0) relevant.push_back(op);
    if (relevant.empty()) continue;  // this view saw none of the batch
    Status s = entry->rep_->ApplyDelta(relevant);
    if (s.ok()) {
      // Count only entries that actually absorbed something, and schedule
      // a fold only for those — a failed absorb has nothing to fold.
      ++applied;
      MaybeScheduleRebuild(entry);
    } else {
      ++failed;
      if (result.ok()) result = s;
    }
  }
  if (applied > 0 || failed > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.deltas_applied += applied;
    stats_.delta_failures += failed;
  }
  if (!key_found && result.ok())
    return Status::Error("ApplyDelta: no cached entry for key " + key +
                         " (evicted or never built)");
  return result;
}

void RepCache::MaybeScheduleRebuild(const std::shared_ptr<CachedRep>& entry) {
  auto* rep = dynamic_cast<UpdatableAnswerRep*>(entry->rep_.get());
  if (rep == nullptr || !rep->NeedsRebuild()) return;
  if (entry->rebuild_scheduled_.exchange(true)) return;  // fold coalesced
  std::shared_ptr<RebuildTracker> tracker = rebuilds_;
  {
    std::lock_guard<std::mutex> lock(tracker->mu);
    ++tracker->outstanding;
    ++tracker->scheduled;
  }
  // The task owns the entry (survives eviction and cache destruction; the
  // destructor additionally drains the tracker). Rebuild(true) re-checks
  // the threshold, so a fold that raced a concurrent manual Rebuild is a
  // no-op. Deltas applied *during* the fold can re-cross the threshold
  // after the rebase — they all skipped scheduling while the flag was
  // set, so this task must loop until the entry is genuinely below
  // threshold (or another scheduler claimed the flag).
  SharedBuildPool().Submit([entry, rep, tracker] {
    bool any_failed = false;
    for (;;) {
      Status s;
      // Containment: a fold that throws (or hits the updatable/rebuild
      // failpoint inside Rebuild) must still clear the coalescing flag —
      // a leaked exception here would wedge rebuild scheduling for this
      // entry forever. The old snapshot + pending delta keeps serving.
      try {
        s = rep->Rebuild(/*only_if_needed=*/true);
      } catch (const std::exception& e) {
        s = Status::Unavailable(std::string("rebuild threw: ") + e.what());
      } catch (...) {
        s = Status::Unavailable("rebuild threw a non-standard exception");
      }
      if (!s.ok()) {
        any_failed = true;
        std::fprintf(stderr, "RepCache: background rebuild failed: %s\n",
                     s.message().c_str());
      }
      entry->rebuild_scheduled_.store(false);
      if (!s.ok() || !rep->NeedsRebuild()) break;
      if (entry->rebuild_scheduled_.exchange(true)) break;  // claimed anew
    }
    {
      std::lock_guard<std::mutex> lock(tracker->mu);
      ++tracker->completed;
      if (any_failed) ++tracker->failed;
      --tracker->outstanding;
    }
    tracker->cv.notify_all();
  });
}

void RepCache::WaitForRebuilds() {
  std::shared_ptr<RebuildTracker> tracker = rebuilds_;
  std::unique_lock<std::mutex> lock(tracker->mu);
  tracker->cv.wait(lock, [&] { return tracker->outstanding == 0; });
}

RepCacheStats RepCache::stats() const {
  RepCacheStats out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    out = stats_;
    out.resident_bytes = 0;
    for (const auto& [unused_key, entry] : lru_)
      out.resident_bytes += entry->rep().ResidentBytes();
  }
  {
    std::lock_guard<std::mutex> lock(rebuilds_->mu);
    out.rebuilds_scheduled = rebuilds_->scheduled;
    out.rebuilds_completed = rebuilds_->completed;
    out.rebuilds_failed = rebuilds_->failed;
  }
  return out;
}

size_t RepCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace cqc

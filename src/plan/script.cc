#include "plan/script.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <vector>

#include "util/logging.h"
#include "util/str_util.h"

namespace cqc {

namespace {

/// A whitespace-delimited token plus the byte offset of its first
/// character in the original line — the unit every parse error is
/// addressed to.
struct Token {
  std::string text;
  size_t offset = 0;
};

/// Splits on whitespace; drops everything from a '#' token onward.
std::vector<Token> Tokenize(const std::string& line) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) break;
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (line[start] == '#') break;
    tokens.push_back({line.substr(start, i - start), start});
  }
  return tokens;
}

/// Error-offset bookkeeping shared by the helpers: `at` records where the
/// failing token starts; `end` is the offset reported for missing trailing
/// arguments (one past the last byte of the line).
struct ErrorSink {
  size_t* out;
  size_t end;
  Status At(size_t offset, Status s) {
    if (out != nullptr) *out = offset;
    return s;
  }
  Status AtEnd(Status s) { return At(end, std::move(s)); }
};

/// Parses tokens[from..] as values into *out.
Status ParseValues(const std::vector<Token>& tokens, size_t from, Tuple* out,
                   ErrorSink& err) {
  for (size_t i = from; i < tokens.size(); ++i) {
    Value v;
    if (Status s = ParseValueToken(tokens[i].text, &v); !s.ok())
      return err.At(tokens[i].offset, std::move(s));
    out->push_back(v);
  }
  return Status::Ok();
}

/// Parses a small non-negative int (variable index / group arity).
Status ParseSmallInt(const Token& token, const char* what, int* out,
                     ErrorSink& err) {
  Value v;
  if (Status s = ParseValueToken(token.text, &v); !s.ok())
    return err.At(token.offset,
                  Status::Error(StrFormat("%s: %s", what,
                                          s.message().c_str())));
  if (v > 1000000)
    return err.At(token.offset,
                  Status::Error(StrFormat("%s out of range: %s", what,
                                          token.text.c_str())));
  *out = (int)v;
  return Status::Ok();
}

/// agg count <k> [bound...] | agg sum|min|max <var> <k> [bound...]
Result<ScriptOp> ParseAggregate(const std::vector<Token>& tokens,
                                ErrorSink& err) {
  ScriptOp op;
  op.kind = ScriptOp::Kind::kAggregate;
  if (tokens.size() < 2)
    return err.AtEnd(
        Status::Error("agg: missing function (want count|sum|min|max)"));
  const std::string& func = tokens[1].text;
  size_t next = 2;
  if (func != "count") {
    if (func != "sum" && func != "min" && func != "max")
      return err.At(
          tokens[1].offset,
          Status::Error(StrFormat(
              "agg: unknown function %s (want count|sum|min|max)",
              func.c_str())));
    if (tokens.size() < 3)
      return err.AtEnd(Status::Error(
          StrFormat("agg %s: missing value-variable index", func.c_str())));
    int var = 0;
    if (Status s = ParseSmallInt(tokens[2], "agg value variable", &var, err);
        !s.ok())
      return s;
    op.agg = func == "sum"   ? AggSpec::Sum(var)
             : func == "min" ? AggSpec::Min(var)
                             : AggSpec::Max(var);
    next = 3;
  }
  if (tokens.size() <= next)
    return err.AtEnd(Status::Error("agg: missing group arity"));
  if (Status s = ParseSmallInt(tokens[next], "agg group arity",
                               &op.group_arity, err);
      !s.ok())
    return s;
  if (Status s = ParseValues(tokens, next + 1, &op.values, err); !s.ok())
    return s;
  return op;
}

}  // namespace

Status ParseValueToken(const std::string& token, Value* out) {
  if (token.empty()) return Status::Error("empty value token");
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      return Status::Error("bad value token: " + token +
                           " (want an unsigned decimal)");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size())
    return Status::Error("value out of range: " + token);
  *out = (Value)v;
  return Status::Ok();
}

Result<ScriptOp> ParseScriptLine(const std::string& line, bool mutate_mode,
                                 size_t* error_offset) {
  if (error_offset != nullptr) *error_offset = kScriptNoOffset;
  const std::vector<Token> tokens = Tokenize(line);
  ErrorSink err{error_offset, line.size()};
  ScriptOp op;
  if (tokens.empty()) return op;  // blank / comment

  const std::string& cmd = tokens[0].text;
  if (cmd == "agg") return ParseAggregate(tokens, err);

  if (!mutate_mode) {
    // Bare request line: every token is a bound value.
    op.kind = ScriptOp::Kind::kQuery;
    if (Status s = ParseValues(tokens, 0, &op.values, err); !s.ok()) return s;
    return op;
  }

  if (cmd == "+" || cmd == "-") {
    op.kind = cmd == "+" ? ScriptOp::Kind::kInsert : ScriptOp::Kind::kDelete;
    if (tokens.size() < 2)
      return err.AtEnd(Status::Error(
          StrFormat("%s: missing relation name", cmd.c_str())));
    op.relation = tokens[1].text;
    if (Status s = ParseValues(tokens, 2, &op.values, err); !s.ok()) return s;
    if (op.values.empty())
      return err.AtEnd(Status::Error(StrFormat(
          "%s %s: missing tuple values", cmd.c_str(), op.relation.c_str())));
    return op;
  }
  if (cmd == "?") {
    op.kind = ScriptOp::Kind::kQuery;
    if (Status s = ParseValues(tokens, 1, &op.values, err); !s.ok()) return s;
    return op;
  }
  if (cmd == "rebuild") {
    if (tokens.size() > 1)
      return err.At(tokens[1].offset,
                    Status::Error("rebuild takes no arguments"));
    op.kind = ScriptOp::Kind::kRebuild;
    return op;
  }
  if (cmd == "stats") {
    if (tokens.size() > 1)
      return err.At(tokens[1].offset,
                    Status::Error("stats takes no arguments"));
    op.kind = ScriptOp::Kind::kStats;
    return op;
  }
  return err.At(tokens[0].offset,
                Status::Error(StrFormat(
                    "unknown script verb %s (want + - ? agg rebuild stats)",
                    cmd.c_str())));
}

Status ValidateMutation(const ScriptOp& op, const Database& db) {
  CQC_CHECK(op.kind == ScriptOp::Kind::kInsert ||
            op.kind == ScriptOp::Kind::kDelete);
  const Relation* rel = db.Find(op.relation);
  if (rel == nullptr)
    return Status::Error("unknown relation: " + op.relation);
  if ((int)op.values.size() != rel->arity())
    return Status::Error(StrFormat(
        "arity mismatch: %s has arity %d, got %zu value(s)",
        op.relation.c_str(), rel->arity(), op.values.size()));
  return Status::Ok();
}

}  // namespace cqc

#include "plan/script.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/str_util.h"

namespace cqc {

namespace {

/// Splits on whitespace; drops everything from a '#' token onward.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string t;
  while (in >> t) {
    if (t[0] == '#') break;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

/// Parses tokens[from..] as values into *out.
Status ParseValues(const std::vector<std::string>& tokens, size_t from,
                   Tuple* out) {
  for (size_t i = from; i < tokens.size(); ++i) {
    Value v;
    if (Status s = ParseValueToken(tokens[i], &v); !s.ok()) return s;
    out->push_back(v);
  }
  return Status::Ok();
}

/// Parses a small non-negative int (variable index / group arity).
Status ParseSmallInt(const std::string& token, const char* what, int* out) {
  Value v;
  if (Status s = ParseValueToken(token, &v); !s.ok())
    return Status::Error(StrFormat("%s: %s", what, s.message().c_str()));
  if (v > 1000000)
    return Status::Error(
        StrFormat("%s out of range: %s", what, token.c_str()));
  *out = (int)v;
  return Status::Ok();
}

/// agg count <k> [bound...] | agg sum|min|max <var> <k> [bound...]
Result<ScriptOp> ParseAggregate(const std::vector<std::string>& tokens) {
  ScriptOp op;
  op.kind = ScriptOp::Kind::kAggregate;
  if (tokens.size() < 2)
    return Status::Error("agg: missing function (want count|sum|min|max)");
  const std::string& func = tokens[1];
  size_t next = 2;
  if (func != "count") {
    if (func != "sum" && func != "min" && func != "max")
      return Status::Error(
          StrFormat("agg: unknown function %s (want count|sum|min|max)",
                    func.c_str()));
    if (tokens.size() < 3)
      return Status::Error(
          StrFormat("agg %s: missing value-variable index", func.c_str()));
    int var = 0;
    if (Status s = ParseSmallInt(tokens[2], "agg value variable", &var);
        !s.ok())
      return s;
    op.agg = func == "sum"   ? AggSpec::Sum(var)
             : func == "min" ? AggSpec::Min(var)
                             : AggSpec::Max(var);
    next = 3;
  }
  if (tokens.size() <= next)
    return Status::Error("agg: missing group arity");
  if (Status s = ParseSmallInt(tokens[next], "agg group arity",
                               &op.group_arity);
      !s.ok())
    return s;
  if (Status s = ParseValues(tokens, next + 1, &op.values); !s.ok()) return s;
  return op;
}

}  // namespace

Status ParseValueToken(const std::string& token, Value* out) {
  if (token.empty()) return Status::Error("empty value token");
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      return Status::Error("bad value token: " + token +
                           " (want an unsigned decimal)");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size())
    return Status::Error("value out of range: " + token);
  *out = (Value)v;
  return Status::Ok();
}

Result<ScriptOp> ParseScriptLine(const std::string& line, bool mutate_mode) {
  const std::vector<std::string> tokens = Tokenize(line);
  ScriptOp op;
  if (tokens.empty()) return op;  // blank / comment

  const std::string& cmd = tokens[0];
  if (cmd == "agg") return ParseAggregate(tokens);

  if (!mutate_mode) {
    // Bare request line: every token is a bound value.
    op.kind = ScriptOp::Kind::kQuery;
    if (Status s = ParseValues(tokens, 0, &op.values); !s.ok()) return s;
    return op;
  }

  if (cmd == "+" || cmd == "-") {
    op.kind = cmd == "+" ? ScriptOp::Kind::kInsert : ScriptOp::Kind::kDelete;
    if (tokens.size() < 2)
      return Status::Error(StrFormat("%s: missing relation name",
                                     cmd.c_str()));
    op.relation = tokens[1];
    if (Status s = ParseValues(tokens, 2, &op.values); !s.ok()) return s;
    if (op.values.empty())
      return Status::Error(StrFormat("%s %s: missing tuple values",
                                     cmd.c_str(), op.relation.c_str()));
    return op;
  }
  if (cmd == "?") {
    op.kind = ScriptOp::Kind::kQuery;
    if (Status s = ParseValues(tokens, 1, &op.values); !s.ok()) return s;
    return op;
  }
  if (cmd == "rebuild") {
    if (tokens.size() > 1)
      return Status::Error("rebuild takes no arguments");
    op.kind = ScriptOp::Kind::kRebuild;
    return op;
  }
  if (cmd == "stats") {
    if (tokens.size() > 1) return Status::Error("stats takes no arguments");
    op.kind = ScriptOp::Kind::kStats;
    return op;
  }
  return Status::Error(StrFormat(
      "unknown script verb %s (want + - ? agg rebuild stats)", cmd.c_str()));
}

Status ValidateMutation(const ScriptOp& op, const Database& db) {
  CQC_CHECK(op.kind == ScriptOp::Kind::kInsert ||
            op.kind == ScriptOp::Kind::kDelete);
  const Relation* rel = db.Find(op.relation);
  if (rel == nullptr)
    return Status::Error("unknown relation: " + op.relation);
  if ((int)op.values.size() != rel->arity())
    return Status::Error(StrFormat(
        "arity mismatch: %s has arity %d, got %zu value(s)",
        op.relation.c_str(), rel->arity(), op.values.size()));
  return Status::Ok();
}

}  // namespace cqc

// Cost-based representation planning: pick (structure, tau) from catalog
// statistics and a space budget.
//
// The paper's §6 optimizers already answer "best tau and cover for Theorem 1
// under a budget" (MinDelayCover) and "best per-bag delay exponents for
// Theorem 2" (OptimizeDelayAssignment); the two baselines bracket the
// tradeoff. The Planner runs all four, prices each candidate in the same
// currency — predicted space and delay as exponents of N — and picks the
// minimum-delay candidate that fits the budget (ties: smaller space, then
// the cheaper structure). This is the decision the repo previously left to
// a hand-picked CLI flag.
//
// Predicted sizes are the paper's asymptotic bounds evaluated on the
// catalog statistics (AGM products over actual relation sizes), not byte
// counts: they order candidates correctly and make budget feasibility a
// clean linear constraint, while measured bytes stay a per-build statistic
// (bench_planner reports predicted-vs-measured and plan regret).
#ifndef CQC_PLAN_PLANNER_H_
#define CQC_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/answer_rep.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"
#include "workload/catalog.h"

namespace cqc {

struct PlannerOptions {
  /// Space budget exponent B: the structure may use O~(N^B) tuple units,
  /// N = largest relation. Negative = unlimited.
  double space_budget_exponent = -1;
  /// Candidate toggles (ablations / forcing a structure family).
  bool consider_compressed = true;
  bool consider_decomposed = true;
  bool consider_direct = true;
  bool consider_materialized = true;
  /// The updatable candidate (§8 extension: Theorem-1 snapshot + signed
  /// pending delta) is scored only for mutable workloads (churn > 0).
  bool consider_updatable = true;
  /// Expected base-table mutations per access request (the workload churn
  /// rate, recorded into CatalogStats). 0 = static workload: the updatable
  /// candidate is skipped and no maintenance cost is priced in. When > 0,
  /// every static candidate's delay is charged an amortized
  /// invalidate-and-rebuild term (churn * predicted space per request)
  /// while the updatable candidate pays its delta-join + amortized-fold
  /// cost at the planner-optimized rebuild fraction — see
  /// docs/update-semantics.md.
  double churn_per_request = 0;
  /// The connex decomposition search is exhaustive over elimination orders;
  /// views with more free variables skip the decomposed candidate.
  int max_free_vars_for_decomposition = 8;
  /// Fraction of access requests that are grouped aggregates
  /// (COUNT/SUM/MIN/MAX) rather than enumerations, in [0, 1]. When > 0 the
  /// compressed/updatable specs are built with aggregate annotations
  /// (charged as a constant-factor space increase) and every candidate's
  /// delay becomes the request mix: (1-f) * enumeration delay + f * its
  /// aggregate-answer cost (~O(1) for annotated interval arithmetic, the
  /// structure scan for materialized/decomposed folds, the full join drain
  /// for direct).
  double aggregate_fraction = 0;
};

/// One scored candidate. Exponents are log-space values (natural log);
/// divide by log_n for the N^x form.
struct PlanCandidate {
  RepKind kind = RepKind::kDirect;
  double tau = 1.0;
  double predicted_log_space = 0;
  double predicted_log_delay = 0;
  bool feasible = false;
  /// What the candidate's structure would support if built (Explain prints
  /// the full tag set so capability differences — counting, aggregates,
  /// sharding — are visible next to the space/delay exponents).
  RepCapabilities caps;
  std::string note;
};

struct Plan {
  /// What to build (kind plus the structure-specific knobs the scoring
  /// chose: tau + cover, or decomposition + delay assignment).
  RepBuildSpec spec;
  double predicted_log_space = 0;
  double predicted_log_delay = 0;
  /// ln Sigma for the budget (negative = unlimited) and ln N for display.
  double log_space_budget = -1;
  double log_n = 0;
  /// The churn rate the candidates were priced at (0 = static workload).
  double churn_per_request = 0;
  /// The aggregate request fraction the candidates were priced at
  /// (0 = enumeration-only workload).
  double aggregate_fraction = 0;
  /// False when no candidate fit the budget and the planner fell back to
  /// the smallest-space candidate.
  bool within_budget = true;
  /// Every candidate scored, in evaluation order (for explain / tests).
  std::vector<PlanCandidate> candidates;

  double tau() const { return spec.compressed.tau; }
  RepKind kind() const { return spec.kind; }
  /// Multi-line human-readable account of the decision.
  std::string Explain() const;
};

class Planner {
 public:
  /// Both databases must outlive the planner and anything it builds.
  explicit Planner(const Database* db, const Database* aux_db = nullptr)
      : db_(db), aux_db_(aux_db) {}

  /// Scores every applicable candidate for `view` (a natural-join full CQ;
  /// run NormalizeView first) and returns the chosen plan.
  Result<Plan> PlanView(const AdornedView& view,
                        const PlannerOptions& options = {}) const;

  /// Builds the representation a plan chose.
  Result<std::unique_ptr<AnswerRep>> BuildPlan(const AdornedView& view,
                                               const Plan& plan) const;

 private:
  const Database* db_;
  const Database* aux_db_;
};

}  // namespace cqc

#endif  // CQC_PLAN_PLANNER_H_

#include "plan/planner.h"

#include <algorithm>
#include <cmath>

#include "decomposition/connex_builder.h"
#include "decomposition/delay_assignment.h"
#include "fractional/edge_cover.h"
#include "fractional/optimizer.h"
#include "query/hypergraph.h"
#include "util/str_util.h"

namespace cqc {
namespace {

/// Stand-in for "unlimited" in log space: e^700 is finite in double
/// arithmetic, so the LPs stay well-conditioned.
constexpr double kUnlimitedLog = 700.0;
constexpr double kFeasibilityEps = 1e-6;

double Dot(const std::vector<double>& u, const std::vector<double>& logs) {
  double s = 0;
  for (size_t i = 0; i < u.size() && i < logs.size(); ++i) s += u[i] * logs[i];
  return s;
}

/// Tie-break order when predicted delay and space coincide: the paper's
/// tunable structure first (cheapest build at equal guarantees), the
/// full-output baseline last.
int KindPreference(RepKind kind) {
  switch (kind) {
    case RepKind::kCompressed:
      return 0;
    case RepKind::kDecomposed:
      return 1;
    case RepKind::kMaterialized:
      return 2;
    case RepKind::kDirect:
      return 3;
    case RepKind::kUpdatable:
      return 4;  // at equal cost, prefer the simpler static structures
  }
  return 5;
}

/// ln(e^a + e^b) without overflow: combining additive cost terms that are
/// carried as logarithms.
double LogAddExp(double a, double b) {
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

struct Scored {
  PlanCandidate pub;
  RepBuildSpec spec;
  /// The candidate produced a complete build spec (its LP / search
  /// succeeded). Distinct from pub.feasible, which additionally requires
  /// fitting the budget: only buildable candidates may ever be selected.
  bool buildable = false;
};

}  // namespace

std::string Plan::Explain() const {
  const double ln = log_n > 0 ? log_n : 1.0;
  std::string out = StrFormat("plan: %s", RepKindName(spec.kind));
  if (spec.kind == RepKind::kCompressed)
    out += StrFormat(" tau=%.1f", spec.compressed.tau);
  out += StrFormat(" — predicted space N^%.2f, delay N^%.2f",
                   predicted_log_space / ln, predicted_log_delay / ln);
  if (log_space_budget >= 0) {
    out += StrFormat(", budget N^%.2f", log_space_budget / ln);
    if (!within_budget) out += " (EXCEEDED: no candidate fits)";
  } else {
    out += ", budget unlimited";
  }
  out += "\n";
  out +=
      "index policy: point probes -> hash index (O(1) expected), lex-range "
      "scans and count oracle -> sorted tries\n";
  if (churn_per_request > 0)
    out += StrFormat(
        "churn: %.3g mutations/request priced into every candidate "
        "(static structures pay invalidate+rebuild; updatable pays delta "
        "join + amortized fold)\n",
        churn_per_request);
  if (aggregate_fraction > 0)
    out += StrFormat(
        "aggregates: %.2g of requests priced as pushed group-bys "
        "(annotated structures pay ~2x space for the ring cells; "
        "fold-only structures pay their scan or drain per aggregate)\n",
        aggregate_fraction);
  for (const PlanCandidate& c : candidates) {
    out += StrFormat("  %-12s %-4s space N^%.2f delay N^%.2f [%s]",
                     RepKindName(c.kind), c.feasible ? "ok" : "skip",
                     c.predicted_log_space / ln, c.predicted_log_delay / ln,
                     CapabilityTags(c.caps).c_str());
    if (c.kind == RepKind::kCompressed && c.feasible)
      out += StrFormat(" tau=%.1f", c.tau);
    if (!c.note.empty()) out += " — " + c.note;
    out += "\n";
  }
  return out;
}

Result<Plan> Planner::PlanView(const AdornedView& view,
                               const PlannerOptions& options) const {
  if (!view.cq().IsNaturalJoin())
    return Status::Error(
        "planner requires a natural-join view (run NormalizeView first)");
  Result<CatalogStats> stats_or = CollectCatalogStats(view, *db_, aux_db_);
  if (!stats_or.ok()) return stats_or.status();
  CatalogStats stats = stats_or.value();
  // Churn is a workload property, not a data property: record the caller's
  // rate into the catalog stats the candidates are priced from.
  stats.churn_per_request = std::max(0.0, options.churn_per_request);
  const double churn = stats.churn_per_request;
  const double log_churn = churn > 0 ? std::log(churn) : 0;
  const Hypergraph h(view.cq());
  const int mu = view.num_free();

  Plan plan;
  plan.log_n = stats.log_n;
  plan.churn_per_request = churn;
  plan.log_space_budget = options.space_budget_exponent < 0
                              ? -1
                              : options.space_budget_exponent * stats.log_n;
  const double budget = plan.log_space_budget < 0 ? kUnlimitedLog
                                                  : plan.log_space_budget;

  const double agg_f =
      std::clamp(options.aggregate_fraction, 0.0, 1.0);
  plan.aggregate_fraction = agg_f;

  std::vector<Scored> scored;
  auto add = [&](Scored s) {
    if (agg_f > 0 && s.buildable) {
      // Aggregate workload: annotated kinds build the ring cells (a
      // constant-factor space increase: one count plus 3*mu values next to
      // each ~mu-word node/entry row, charged as ln 2) and answer a pushed
      // aggregate by interval arithmetic (~N^0); materialized/decomposed
      // fold by scanning their structure (~their space); direct drains the
      // full join (~its enumeration delay). The candidate's delay becomes
      // the (1-f, f) request mix of enumeration and aggregate cost.
      double agg_log_delay = 0;
      switch (s.pub.kind) {
        case RepKind::kCompressed:
          s.spec.compressed.build_aggregates = true;
          s.pub.predicted_log_space += std::log(2.0);
          break;
        case RepKind::kUpdatable:
          s.spec.updatable.rep.build_aggregates = true;
          s.pub.predicted_log_space += std::log(2.0);
          break;
        case RepKind::kMaterialized:
        case RepKind::kDecomposed:
          agg_log_delay = s.pub.predicted_log_space;
          break;
        case RepKind::kDirect:
          agg_log_delay = s.pub.predicted_log_delay;
          break;
      }
      const double mixed =
          agg_f >= 1.0
              ? agg_log_delay
              : LogAddExp(std::log(1.0 - agg_f) + s.pub.predicted_log_delay,
                          std::log(agg_f) + agg_log_delay);
      s.pub.note += StrFormat("; agg N^%.2f at f=%.2g",
                              agg_log_delay / std::max(stats.log_n, 1.0),
                              agg_f);
      s.pub.predicted_log_delay = mixed;
    }
    const bool with_agg =
        agg_f > 0 && (s.pub.kind == RepKind::kCompressed ||
                      s.pub.kind == RepKind::kUpdatable);
    s.pub.caps = KindCapabilities(s.pub.kind, mu, with_agg);
    // Under churn, a static structure is invalidated by every mutation and
    // rebuilt from scratch (cost ~ its size in tuple units), amortized over
    // 1/churn requests: delay += churn * space.
    if (churn > 0 && s.buildable && s.pub.kind != RepKind::kUpdatable) {
      s.pub.predicted_log_delay =
          LogAddExp(s.pub.predicted_log_delay,
                    log_churn + s.pub.predicted_log_space);
      s.pub.note += StrFormat("; +churn rebuild N^%.2f",
                              (log_churn + s.pub.predicted_log_space) /
                                  std::max(stats.log_n, 1.0));
    }
    s.pub.feasible = s.buildable;
    if (s.buildable && s.pub.predicted_log_space > budget + kFeasibilityEps) {
      s.pub.feasible = false;
      s.pub.note += s.pub.note.empty() ? "over budget" : "; over budget";
    }
    scored.push_back(std::move(s));
  };

  if (options.consider_materialized) {
    Scored s;
    s.pub.kind = s.spec.kind = RepKind::kMaterialized;
    EdgeCover cover = FractionalEdgeCover(h, view.cq().BodyVars());
    if (cover.ok) {
      // Output size is bounded by AGM (eq. 1); the structure stores the
      // output plus its index, answering with O(1) delay.
      s.pub.predicted_log_space =
          std::max(stats.log_input, Dot(cover.weights, stats.log_sizes));
      s.pub.predicted_log_delay = 0;
      s.buildable = true;
      s.pub.note = StrFormat("output <= N^%.2f by AGM",
                             s.pub.predicted_log_space / stats.log_n);
    } else {
      s.pub.note = "no fractional edge cover";
    }
    add(std::move(s));
  }

  if (options.consider_compressed) {
    Scored s;
    s.pub.kind = s.spec.kind = RepKind::kCompressed;
    if (mu == 0) {
      // Prop. 1: boolean adorned views answer in O(1) from linear space;
      // there is no tradeoff to tune.
      s.pub.tau = s.spec.compressed.tau = 1.0;
      s.pub.predicted_log_space = stats.log_input;
      s.pub.predicted_log_delay = 0;
      s.buildable = true;
      s.pub.note = "boolean view (Prop. 1)";
    } else {
      CoverSolution sol =
          MinDelayCover(h, view.free_set(), stats.log_sizes, budget);
      if (sol.feasible) {
        s.pub.tau = s.spec.compressed.tau = std::exp(sol.log_tau);
        s.spec.compressed.cover = sol.u;
        s.pub.predicted_log_space = std::max(stats.log_input, sol.log_space);
        s.pub.predicted_log_delay = sol.log_tau;
        s.buildable = true;
        s.pub.note = StrFormat("MinDelayCover alpha=%.2f", sol.alpha);
      } else {
        s.pub.note = "MinDelayCover infeasible at this budget";
      }
    }
    add(std::move(s));
  }

  if (options.consider_updatable && churn > 0) {
    // §8 extension: a Theorem-1 snapshot plus a signed pending delta. Per
    // request it pays the snapshot delay, the delta-join overhead (~ the
    // pending mass f*|D|), and the amortized fold (churn * build / (f*|D|)
    // with build ~ space); the planner picks the rebuild fraction f that
    // balances the last two terms.
    Scored s;
    s.pub.kind = s.spec.kind = RepKind::kUpdatable;
    double log_tau = 0, log_space = stats.log_input;
    bool snapshot_ok = true;
    if (mu == 0) {
      s.spec.updatable.rep.tau = 1.0;
      s.pub.note = "boolean snapshot (Prop. 1)";
    } else {
      CoverSolution sol =
          MinDelayCover(h, view.free_set(), stats.log_sizes, budget);
      if (sol.feasible) {
        log_tau = sol.log_tau;
        log_space = std::max(stats.log_input, sol.log_space);
        s.spec.updatable.rep.tau = std::exp(sol.log_tau);
        s.spec.updatable.rep.cover = sol.u;
      } else {
        snapshot_ok = false;
        s.pub.note = "MinDelayCover infeasible at this budget";
      }
    }
    if (snapshot_ok) {
      // Balance per-request delta work f*|D| against fold amortization
      // churn*build/(f*|D|). The fold is priced at the near-linear build
      // cost O~(|D|) (the LP's space bound saturates to the budget, which
      // would overprice it): log f* = (log churn - log |D|) / 2.
      const double log_f =
          std::clamp(0.5 * (log_churn - stats.log_input), std::log(1e-4),
                     std::log(0.5));
      const double log_delta_work = log_f + stats.log_input;
      const double log_fold = log_churn - log_f;
      s.spec.updatable.rebuild_fraction = std::exp(log_f);
      s.pub.tau = s.spec.updatable.rep.tau;
      s.pub.predicted_log_space = log_space;  // delta <= f|D| is absorbed
      s.pub.predicted_log_delay =
          LogAddExp(log_tau, LogAddExp(log_delta_work, log_fold));
      s.buildable = true;
      s.pub.note += StrFormat(
          "%ssnapshot tau=%.1f, delta N^%.2f + fold N^%.2f at f=%.3g",
          s.pub.note.empty() ? "" : "; ", s.spec.updatable.rep.tau,
          log_delta_work / std::max(stats.log_n, 1.0),
          log_fold / std::max(stats.log_n, 1.0),
          s.spec.updatable.rebuild_fraction);
    }
    add(std::move(s));
  }

  if (options.consider_decomposed && mu > 0 &&
      mu <= options.max_free_vars_for_decomposition) {
    Scored s;
    s.pub.kind = s.spec.kind = RepKind::kDecomposed;
    Result<ConnexSearchResult> found =
        SearchConnexDecomposition(h, view.bound_set());
    if (found.ok()) {
      TreeDecomposition td = std::move(found).value().decomposition;
      DelayAssignment delta =
          plan.log_space_budget < 0
              ? DelayAssignment::Zero(td)
              : OptimizeDelayAssignment(td, h, stats.log_n, budget);
      DecompositionMetrics metrics = ComputeMetrics(td, h, delta);
      s.pub.predicted_log_space =
          std::max(stats.log_input, metrics.width * stats.log_n);
      s.pub.predicted_log_delay = metrics.height * stats.log_n;
      s.buildable = true;
      s.pub.note = StrFormat("connex width=%.2f height=%.2f", metrics.width,
                             metrics.height);
      s.spec.decomposition = std::move(td);
      s.spec.decomposed.delta = std::move(delta);
    } else {
      s.pub.note = found.status().message();
    }
    add(std::move(s));
  }

  if (options.consider_direct) {
    Scored s;
    s.pub.kind = s.spec.kind = RepKind::kDirect;
    s.pub.predicted_log_space = stats.log_input;
    if (mu == 0) {
      s.pub.predicted_log_delay = 0;  // per-atom membership probes
      s.pub.note = "boolean probe";
    } else {
      // A worst-case optimal join evaluates the residual query in time
      // AGM(free cover) per request (Prop. 6 applied to the full range).
      EdgeCover cover = FractionalEdgeCover(h, view.free_set());
      s.pub.predicted_log_delay =
          cover.ok ? Dot(cover.weights, stats.log_sizes) : kUnlimitedLog;
      s.pub.note = "per-request worst-case optimal join";
    }
    s.buildable = true;
    add(std::move(s));
  }

  if (scored.empty())
    return Status::Error("planner: no candidate representations enabled");

  // Minimum predicted delay among budget-feasible candidates; ties prefer
  // smaller space, then the cheaper structure. If nothing fits, fall back
  // to the smallest-space candidate and flag the overrun.
  const Scored* best = nullptr;
  for (const Scored& s : scored) {
    if (!s.pub.feasible) continue;
    if (best == nullptr ||
        s.pub.predicted_log_delay <
            best->pub.predicted_log_delay - kFeasibilityEps ||
        (std::abs(s.pub.predicted_log_delay - best->pub.predicted_log_delay) <=
             kFeasibilityEps &&
         (s.pub.predicted_log_space <
              best->pub.predicted_log_space - kFeasibilityEps ||
          (std::abs(s.pub.predicted_log_space -
                    best->pub.predicted_log_space) <= kFeasibilityEps &&
           KindPreference(s.pub.kind) < KindPreference(best->pub.kind))))) {
      best = &s;
    }
  }
  if (best == nullptr) {
    plan.within_budget = false;
    for (const Scored& s : scored) {
      if (!s.buildable) continue;
      if (best == nullptr ||
          s.pub.predicted_log_space < best->pub.predicted_log_space)
        best = &s;
    }
  }
  if (best == nullptr)
    return Status::Error("planner: no buildable candidate for this view");

  plan.spec = best->spec;
  plan.predicted_log_space = best->pub.predicted_log_space;
  plan.predicted_log_delay = best->pub.predicted_log_delay;
  for (Scored& s : scored) plan.candidates.push_back(std::move(s.pub));
  return plan;
}

Result<std::unique_ptr<AnswerRep>> Planner::BuildPlan(const AdornedView& view,
                                                      const Plan& plan) const {
  return BuildAnswerRep(plan.spec, view, *db_, aux_db_);
}

}  // namespace cqc

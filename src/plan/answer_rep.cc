#include "plan/answer_rep.h"

#include <utility>

#include "decomposition/connex_builder.h"
#include "query/hypergraph.h"
#include "util/failpoint.h"
#include "util/str_util.h"

namespace cqc {

namespace {

using EnumeratorResult = Result<std::unique_ptr<TupleEnumerator>>;

EnumeratorResult EmptyStream() {
  return std::unique_ptr<TupleEnumerator>(std::make_unique<EmptyEnumerator>());
}

/// Lexicographic successor in raw value space (closed ranges over the full
/// 64-bit domain, kBottom/kTop sentinels). False iff `t` is the maximum.
bool ValueSpaceSucc(Tuple& t) {
  for (int i = (int)t.size() - 1; i >= 0; --i) {
    if (t[i] != kTop) {
      ++t[i];
      for (size_t j = (size_t)i + 1; j < t.size(); ++j) t[j] = kBottom;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* RepKindName(RepKind kind) {
  switch (kind) {
    case RepKind::kCompressed:
      return "compressed";
    case RepKind::kDecomposed:
      return "decomposed";
    case RepKind::kDirect:
      return "direct";
    case RepKind::kMaterialized:
      return "materialized";
    case RepKind::kUpdatable:
      return "updatable";
  }
  return "unknown";
}

std::optional<RepKind> ParseRepKind(const std::string& name) {
  for (RepKind k : {RepKind::kCompressed, RepKind::kDecomposed,
                    RepKind::kDirect, RepKind::kMaterialized,
                    RepKind::kUpdatable}) {
    if (name == RepKindName(k)) return k;
  }
  return std::nullopt;
}

RepCapabilities KindCapabilities(RepKind kind, int num_free,
                                 bool with_aggregates) {
  RepCapabilities c;
  switch (kind) {
    case RepKind::kCompressed:
      c.lex_ordered = true;
      c.range_restricted = num_free > 0;
      c.low_delay_resume = true;
      c.sharded = num_free > 0;
      c.aggregates = with_aggregates;
      break;
    case RepKind::kDecomposed:
      c.sharded = num_free > 0;
      c.counting = true;
      c.aggregates = true;  // the CountAnswer recurrence lifted to the ring
      break;
    case RepKind::kDirect:
      c.lex_ordered = true;
      c.range_restricted = num_free > 0;
      c.low_delay_resume = true;
      break;
    case RepKind::kMaterialized:
      c.lex_ordered = true;
      c.counting = true;
      c.aggregates = true;  // columnar fold over the refined row range
      break;
    case RepKind::kUpdatable:
      c.updatable = true;
      c.aggregates = with_aggregates;
      break;
  }
  return c;
}

std::string CapabilityTags(const RepCapabilities& caps) {
  std::string out;
  const auto add = [&out](bool on, const char* tag) {
    if (!on) return;
    if (!out.empty()) out += ',';
    out += tag;
  };
  add(caps.lex_ordered, "lex");
  add(caps.range_restricted, "range");
  add(caps.low_delay_resume, "resume");
  add(caps.sharded, "shard");
  add(caps.counting, "count");
  add(caps.updatable, "update");
  add(caps.aggregates, "agg");
  return out.empty() ? "-" : out;
}

// --- AnswerRep: hardened entry points ---------------------------------------

Status AnswerRep::ValidateRequest(const BoundValuation& vb) const {
  if ((int)vb.size() != view().num_bound()) {
    return Status::Error(StrFormat(
        "access request carries %zu bound value(s); view %s expects %d",
        vb.size(), view().ToString().c_str(), view().num_bound()));
  }
  return Status::Ok();
}

namespace {

/// Wraps `e` with per-batch deadline polling when a context is present.
std::unique_ptr<TupleEnumerator> MaybeDeadlineWrap(
    std::unique_ptr<TupleEnumerator> e, const RequestContext* ctx) {
  if (ctx == nullptr) return e;
  return std::make_unique<DeadlineCheckedEnumerator>(std::move(e), ctx);
}

}  // namespace

EnumeratorResult AnswerRep::Answer(const BoundValuation& vb,
                                   const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  return MaybeDeadlineWrap(AnswerImpl(vb), ctx);
}

EnumeratorResult AnswerRep::AnswerRange(const BoundValuation& vb,
                                        const FInterval& range,
                                        const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  if (!capabilities().range_restricted) {
    return Status::Error(
        StrFormat("%s does not support range-restricted enumeration",
                  RepKindName(kind())));
  }
  const int mu = view().num_free();
  if (mu == 0)
    return Status::Error("range enumeration needs a free dimension");
  if ((int)range.lo.size() != mu || (int)range.hi.size() != mu) {
    return Status::Error(StrFormat(
        "range arity mismatch: [%zu, %zu] bounds over %d free variable(s)",
        range.lo.size(), range.hi.size(), mu));
  }
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  return MaybeDeadlineWrap(AnswerRangeImpl(vb, range), ctx);
}

EnumeratorResult AnswerRep::Resume(const BoundValuation& vb,
                                   const EnumerationCursor& cursor,
                                   const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  EnumeratorResult r = ResumeImpl(vb, cursor);
  if (!r.ok()) return r;
  return MaybeDeadlineWrap(std::move(r).value(), ctx);
}

Result<bool> AnswerRep::AnswerExists(const BoundValuation& vb,
                                     const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  // Existence is one O(delay) pull — the entry check suffices.
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  return AnswerExistsImpl(vb);
}

Result<uint64_t> AnswerRep::Count(const BoundValuation& vb,
                                  const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  if (ctx == nullptr || capabilities().counting) {
    // Counting-capable structures answer in O~(num_bound) index work; a
    // mid-count deadline check would cost more than the count.
    return CountImpl(vb);
  }
  // Drain at this layer with per-batch polling instead of delegating to
  // CountImpl's uninterruptible drain.
  DeadlineCheckedEnumerator e(AnswerImpl(vb), ctx);
  const uint64_t n = DrainBatched(e, view().num_free());
  if (!e.status().ok()) return e.status();
  return n;
}

Result<AggregateResult> AnswerRep::AnswerAggregate(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec, const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  const int mu = view().num_free();
  for (size_t i = 0; i < group_vars.size(); ++i) {
    if (group_vars[i] < 0 || group_vars[i] >= mu)
      return Status::Error(StrFormat(
          "aggregate: group variable %d out of range [0, %d)", group_vars[i],
          mu));
    if (i > 0 && group_vars[i] <= group_vars[i - 1])
      return Status::Error(
          "aggregate: group variables must be strictly ascending");
  }
  if (spec.func != AggFunc::kCount) {
    if (spec.value_var < 0 || spec.value_var >= mu)
      return Status::Error(StrFormat(
          "aggregate: %s needs a value variable in [0, %d)",
          AggFuncName(spec.func), mu));
  }
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  if (ctx == nullptr || capabilities().aggregates) {
    // A pushed fold runs inside the structure (annotated walk / columnar
    // fold) — far cheaper than enumeration, entry check only.
    return AnswerAggregateImpl(vb, group_vars, spec);
  }
  // Drain-and-fold path: poll the deadline per batch at this layer.
  DeadlineCheckedEnumerator e(AnswerImpl(vb), ctx);
  AggregateResult agg =
      GroupedDrainAggregate(e, view().num_free(), group_vars, spec);
  if (!e.status().ok()) return e.status();
  return agg;
}

EnumeratorResult AnswerRep::ParallelAnswer(const BoundValuation& vb,
                                           const ParallelOptions& options,
                                           const RequestContext* ctx) const {
  if (Status s = ValidateRequest(vb); !s.ok()) return s;
  if (options.num_threads < 0)
    return Status::Error("num_threads must be >= 0");
  if (Status s = RequestContext::Check(ctx); !s.ok()) return s;
  // Producers poll per chunk; the consumer-facing stream polls per batch.
  ParallelOptions opts = options;
  if (opts.ctx == nullptr) opts.ctx = ctx;
  return MaybeDeadlineWrap(ParallelAnswerImpl(vb, opts), ctx);
}

// --- AnswerRep: default implementations -------------------------------------

std::unique_ptr<TupleEnumerator> AnswerRep::AnswerRangeImpl(
    const BoundValuation& vb, const FInterval& range) const {
  // Only reachable when a subclass advertises range_restricted but forgets
  // the override.
  CQC_CHECK(false) << RepKindName(kind())
                   << ": AnswerRangeImpl missing despite capability";
  return nullptr;
}

EnumeratorResult AnswerRep::ResumeImpl(const BoundValuation& vb,
                                       const EnumerationCursor& cursor) const {
  // Generic skip-ahead resume (core/cursor.h): every answering path
  // enumerates a deterministic order, so dropping `emitted` tuples lands
  // exactly where the cursor paused. A cursor carrying lex-range bounds
  // (taken over a ranged/shard stream) cannot be honored here — silently
  // skipping on the full stream would replay other shards' tuples.
  if (cursor.exhausted) return EmptyStream();
  if (!cursor.range_lo.empty() || !cursor.range_hi.empty())
    return Status::Error(
        StrFormat("resume: %s cannot honor a range-restricted cursor",
                  RepKindName(kind())));
  if (cursor.has_last && (int)cursor.last.size() != view().num_free())
    return Status::Error("resume: cursor tuple arity mismatch");
  std::unique_ptr<TupleEnumerator> e = AnswerImpl(vb);
  SkipTuples(*e, view().num_free(), cursor.emitted);
  return std::unique_ptr<TupleEnumerator>(std::move(e));
}

bool AnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  auto e = AnswerImpl(vb);
  Tuple t;
  return e->Next(&t);
}

uint64_t AnswerRep::CountImpl(const BoundValuation& vb) const {
  auto e = AnswerImpl(vb);
  return DrainBatched(*e, view().num_free());
}

AggregateResult AnswerRep::AnswerAggregateImpl(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  auto e = AnswerImpl(vb);
  return GroupedDrainAggregate(*e, view().num_free(), group_vars, spec);
}

std::unique_ptr<TupleEnumerator> AnswerRep::ParallelAnswerImpl(
    const BoundValuation& vb, const ParallelOptions& options) const {
  return AnswerImpl(vb);
}

Status AnswerRep::ApplyDelta(const UpdateBatch& delta) {
  return Status::Error(
      StrFormat("%s does not support in-place updates; rebuild (or let the "
                "serving cache invalidate) instead",
                RepKindName(kind())));
}

// --- CompressedAnswerRep ----------------------------------------------------

CompressedAnswerRep::CompressedAnswerRep(std::unique_ptr<CompressedRep> rep)
    : rep_(std::move(rep)) {
  CQC_CHECK(rep_ != nullptr);
}

RepCapabilities CompressedAnswerRep::capabilities() const {
  return KindCapabilities(RepKind::kCompressed, rep_->view().num_free(),
                          rep_->has_aggregates());
}

std::string CompressedAnswerRep::Describe() const {
  const CompressedRepStats& s = rep_->stats();
  return StrFormat(
      "compressed(tau=%.1f alpha=%.2f rho=%.2f tree=%zu nodes depth=%d "
      "dict=%zu entries space=%zu B)",
      rep_->tau(), s.alpha, s.rho, s.tree_nodes, s.tree_depth, s.dict_entries,
      SpaceBytes());
}

std::unique_ptr<TupleEnumerator> CompressedAnswerRep::AnswerImpl(
    const BoundValuation& vb) const {
  return rep_->Answer(vb);
}

std::unique_ptr<TupleEnumerator> CompressedAnswerRep::AnswerRangeImpl(
    const BoundValuation& vb, const FInterval& range) const {
  return rep_->AnswerRange(vb, range);
}

EnumeratorResult CompressedAnswerRep::ResumeImpl(
    const BoundValuation& vb, const EnumerationCursor& cursor) const {
  // O(delay) range-restricted resume, with the structure's own cursor
  // validation (off-grid tuples, arity) intact.
  return rep_->Resume(vb, cursor);
}

bool CompressedAnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  return rep_->AnswerExists(vb);
}

std::unique_ptr<TupleEnumerator> CompressedAnswerRep::ParallelAnswerImpl(
    const BoundValuation& vb, const ParallelOptions& options) const {
  return cqc::ParallelAnswer(*rep_, vb, options);
}

AggregateResult CompressedAnswerRep::AnswerAggregateImpl(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  // Pushed annotated walk when built with annotations; drain-fold inside.
  return rep_->AnswerAggregate(vb, group_vars, spec);
}

// --- DecomposedAnswerRep ----------------------------------------------------

DecomposedAnswerRep::DecomposedAnswerRep(std::unique_ptr<DecomposedRep> rep)
    : rep_(std::move(rep)) {
  CQC_CHECK(rep_ != nullptr);
}

RepCapabilities DecomposedAnswerRep::capabilities() const {
  // Algorithm 5's order follows the decomposition, not the output lex
  // order; resume is the O(emitted) skip-ahead.
  return KindCapabilities(RepKind::kDecomposed, rep_->view().num_free(),
                          /*with_aggregates=*/true);
}

std::string DecomposedAnswerRep::Describe() const {
  const DecomposedRepStats& s = rep_->stats();
  return StrFormat(
      "decomposed(width=%.2f height=%.2f bags=%zu space=%zu B)",
      s.metrics.width, s.metrics.height, s.bag_aux_bytes.size(),
      SpaceBytes());
}

std::unique_ptr<TupleEnumerator> DecomposedAnswerRep::AnswerImpl(
    const BoundValuation& vb) const {
  return rep_->Answer(vb);
}

EnumeratorResult DecomposedAnswerRep::ResumeImpl(
    const BoundValuation& vb, const EnumerationCursor& cursor) const {
  if (cursor.exhausted) return EmptyStream();
  // Algorithm 5's order is not lex, so a range-carrying cursor (taken over
  // some other structure's ranged stream) cannot be honored; shard cursors
  // go through DecomposedRep::ResumeShard directly.
  if (!cursor.range_lo.empty() || !cursor.range_hi.empty())
    return Status::Error(
        "resume: decomposed cannot honor a range-restricted cursor");
  if (cursor.has_last && (int)cursor.last.size() != view().num_free())
    return Status::Error("resume: cursor tuple arity mismatch");
  return std::unique_ptr<TupleEnumerator>(rep_->Resume(vb, cursor));
}

bool DecomposedAnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  return rep_->AnswerExists(vb);
}

uint64_t DecomposedAnswerRep::CountImpl(const BoundValuation& vb) const {
  // §3.2 aggregation: bottom-up DP over the decomposition, no enumeration.
  return rep_->CountAnswer(vb);
}

std::unique_ptr<TupleEnumerator> DecomposedAnswerRep::ParallelAnswerImpl(
    const BoundValuation& vb, const ParallelOptions& options) const {
  return cqc::ParallelAnswer(*rep_, vb, options);
}

AggregateResult DecomposedAnswerRep::AnswerAggregateImpl(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  return rep_->AnswerAggregate(vb, group_vars, spec);
}

// --- DirectAnswerRep --------------------------------------------------------

DirectAnswerRep::DirectAnswerRep(std::unique_ptr<DirectEval> rep)
    : rep_(std::move(rep)) {
  CQC_CHECK(rep_ != nullptr);
}

RepCapabilities DirectAnswerRep::capabilities() const {
  RepCapabilities c;
  c.lex_ordered = true;
  c.range_restricted = rep_->view().num_free() > 0;
  c.low_delay_resume = true;  // range-restricted resume below
  return c;
}

std::string DirectAnswerRep::Describe() const {
  return StrFormat("direct(index space=%zu B)", SpaceBytes());
}

std::unique_ptr<TupleEnumerator> DirectAnswerRep::AnswerImpl(
    const BoundValuation& vb) const {
  return rep_->Answer(vb);
}

std::unique_ptr<TupleEnumerator> DirectAnswerRep::AnswerRangeImpl(
    const BoundValuation& vb, const FInterval& range) const {
  return rep_->AnswerRange(vb, range);
}

EnumeratorResult DirectAnswerRep::ResumeImpl(
    const BoundValuation& vb, const EnumerationCursor& cursor) const {
  // The generic-join stream is lexicographic, so resume = range-restricted
  // enumeration over [succ(last), range_hi] in raw value space (no grid:
  // the join itself skips values absent from the data).
  const int mu = view().num_free();
  if (cursor.exhausted) return EmptyStream();
  if (mu == 0) {
    if (cursor.emitted > 0) return EmptyStream();
    return std::unique_ptr<TupleEnumerator>(AnswerImpl(vb));
  }
  FInterval range{Tuple((size_t)mu, kBottom), Tuple((size_t)mu, kTop)};
  if (!cursor.range_hi.empty()) {
    if ((int)cursor.range_hi.size() != mu)
      return Status::Error("resume: cursor range arity mismatch");
    range.hi = cursor.range_hi;
  }
  if (!cursor.range_lo.empty()) {
    if ((int)cursor.range_lo.size() != mu)
      return Status::Error("resume: cursor range arity mismatch");
    range.lo = cursor.range_lo;
  }
  if (cursor.has_last) {
    if ((int)cursor.last.size() != mu)
      return Status::Error("resume: cursor tuple arity mismatch");
    range.lo = cursor.last;
    if (!ValueSpaceSucc(range.lo))  // paused on the value-space maximum
      return EmptyStream();
  }
  return std::unique_ptr<TupleEnumerator>(rep_->AnswerRange(vb, range));
}

bool DirectAnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  return rep_->AnswerExists(vb);
}

// --- MaterializedAnswerRep --------------------------------------------------

MaterializedAnswerRep::MaterializedAnswerRep(
    std::unique_ptr<MaterializedView> rep)
    : rep_(std::move(rep)) {
  CQC_CHECK(rep_ != nullptr);
}

RepCapabilities MaterializedAnswerRep::capabilities() const {
  // Lex-ordered because the table is sorted by [bound..., free...].
  return KindCapabilities(RepKind::kMaterialized, rep_->view().num_free(),
                          /*with_aggregates=*/true);
}

std::string MaterializedAnswerRep::Describe() const {
  return StrFormat("materialized(%zu tuples space=%zu B)",
                   rep_->num_tuples(), SpaceBytes());
}

std::unique_ptr<TupleEnumerator> MaterializedAnswerRep::AnswerImpl(
    const BoundValuation& vb) const {
  return rep_->Answer(vb);
}

bool MaterializedAnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  return rep_->AnswerExists(vb);
}

uint64_t MaterializedAnswerRep::CountImpl(const BoundValuation& vb) const {
  // O(num_bound * log) index refinements; no scan.
  return rep_->CountAnswer(vb);
}

AggregateResult MaterializedAnswerRep::AnswerAggregateImpl(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  return rep_->AnswerAggregate(vb, group_vars, spec);
}

// --- UpdatableAnswerRep -----------------------------------------------------

UpdatableAnswerRep::UpdatableAnswerRep(std::unique_ptr<UpdatableRep> rep)
    : rep_(std::move(rep)) {
  CQC_CHECK(rep_ != nullptr);
}

RepCapabilities UpdatableAnswerRep::capabilities() const {
  // The combined stream (snapshot part, then delta part) is not globally
  // lexicographic, so no order-dependent capability is advertised. The
  // aggregate flag follows the snapshot structure's annotations (pending
  // epochs still answer, via drain-and-fold).
  return KindCapabilities(RepKind::kUpdatable, rep_->view().num_free(),
                          rep_->rep().has_aggregates());
}

std::string UpdatableAnswerRep::Describe() const {
  // One consistent epoch read: piecemeal accessors could mix epochs (or
  // dangle) under a concurrent background fold.
  const UpdatableRep::Info info = rep_->GetInfo();
  return StrFormat(
      "updatable(tau=%.1f snapshot=%zu tuples pending=+%zu/-%zu rebuilds=%d "
      "space=%zu B)",
      info.tau, info.snapshot_tuples, info.pending_inserts,
      info.pending_deletes, info.num_rebuilds, info.space_bytes);
}

Status UpdatableAnswerRep::ApplyDelta(const UpdateBatch& delta) {
  return rep_->Apply(delta);
}

std::unique_ptr<TupleEnumerator> UpdatableAnswerRep::AnswerImpl(
    const BoundValuation& vb) const {
  return rep_->Answer(vb);
}

bool UpdatableAnswerRep::AnswerExistsImpl(const BoundValuation& vb) const {
  return rep_->AnswerExists(vb);
}

AggregateResult UpdatableAnswerRep::AnswerAggregateImpl(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  return rep_->AnswerAggregate(vb, group_vars, spec);
}

// --- factories --------------------------------------------------------------

std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<CompressedRep> rep) {
  return std::make_unique<CompressedAnswerRep>(std::move(rep));
}
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<DecomposedRep> rep) {
  return std::make_unique<DecomposedAnswerRep>(std::move(rep));
}
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<DirectEval> rep) {
  return std::make_unique<DirectAnswerRep>(std::move(rep));
}
std::unique_ptr<AnswerRep> WrapAnswerRep(
    std::unique_ptr<MaterializedView> rep) {
  return std::make_unique<MaterializedAnswerRep>(std::move(rep));
}
std::unique_ptr<AnswerRep> WrapAnswerRep(std::unique_ptr<UpdatableRep> rep) {
  return std::make_unique<UpdatableAnswerRep>(std::move(rep));
}

Result<std::unique_ptr<AnswerRep>> BuildAnswerRep(const RepBuildSpec& spec,
                                                  const AdornedView& view,
                                                  const Database& db,
                                                  const Database* aux_db) {
  // Per-family injection sites ("build/compressed", ...) plus a
  // family-independent one ("build/any") — chaos tests arm the former to
  // steer degradation down a specific fallback chain and the latter to
  // fail whatever the planner picked.
  CQC_FAILPOINT_RESULT("build/any");
  if (failpoint::AnyArmed() &&
      failpoint::ShouldFail(std::string("build/") + RepKindName(spec.kind))) {
    return failpoint::InjectedFault(std::string("build/") +
                                    RepKindName(spec.kind));
  }
  switch (spec.kind) {
    case RepKind::kCompressed: {
      auto rep = CompressedRep::Build(view, db, spec.compressed, aux_db);
      if (!rep.ok()) return rep.status();
      return WrapAnswerRep(std::move(rep).value());
    }
    case RepKind::kDecomposed: {
      TreeDecomposition td;
      if (spec.decomposition.has_value()) {
        td = *spec.decomposition;
      } else {
        Hypergraph h(view.cq());
        auto found = SearchConnexDecomposition(h, view.bound_set());
        if (!found.ok()) return found.status();
        td = std::move(found).value().decomposition;
      }
      auto rep = DecomposedRep::Build(view, db, td, spec.decomposed, aux_db);
      if (!rep.ok()) return rep.status();
      return WrapAnswerRep(std::move(rep).value());
    }
    case RepKind::kDirect: {
      auto rep = DirectEval::Build(view, db, aux_db);
      if (!rep.ok()) return rep.status();
      return WrapAnswerRep(std::move(rep).value());
    }
    case RepKind::kMaterialized: {
      auto rep = MaterializedView::Build(view, db, aux_db);
      if (!rep.ok()) return rep.status();
      return WrapAnswerRep(std::move(rep).value());
    }
    case RepKind::kUpdatable: {
      auto rep = UpdatableRep::Build(view, db, spec.updatable, aux_db);
      if (!rep.ok()) return rep.status();
      return WrapAnswerRep(std::move(rep).value());
    }
  }
  return Status::Error("unknown representation kind");
}

}  // namespace cqc

// RepCache: the serving layer — plan once, build once, serve many, and
// keep serving while the base tables move.
//
// An LRU cache of built representations keyed by the canonical query key
// (query/normalize.h: alpha-renamed copies of a query share an entry) plus
// the space-budget exponent. A miss parses nothing twice: the entry owns
// its NormalizedView (including the aux database of derived relations the
// built structure references), the Plan that chose the structure, and the
// AnswerRep itself, so a cache hit is immediately servable and survives
// eviction for as long as any caller holds the shared_ptr.
//
// Builds are *single-flight*: concurrent requests for the same key find
// the in-flight build and wait on it instead of duplicating the (possibly
// expensive) compression — the thundering-herd behavior a serving cache
// must not have. Distinct keys build concurrently; the cache lock guards
// only metadata, never a build.
//
// Updates (docs/update-semantics.md): ApplyDelta(key, delta) routes a
// batch of base-table mutations through the cache. Every cached entry
// whose view references a mutated relation is affected: entries holding an
// updatable structure (capabilities().updatable) absorb the delta in
// place — concurrent readers keep enumerating, protected by the
// structure's epoch-style state swap — while static entries are
// invalidated (dropped from the cache; live handles keep serving their
// now-stale build, and the next Get rebuilds from the caller-maintained
// base database). When an updatable entry's pending mass crosses its
// rebuild threshold, the cache schedules ONE amortized snapshot fold on
// the shared exec/ThreadPool (concurrent deltas coalesce on the
// per-entry flag); the fold swaps the structure's snapshot pointer, so
// readers never block on it and never observe a torn rep.
#ifndef CQC_PLAN_REP_CACHE_H_
#define CQC_PLAN_REP_CACHE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "plan/answer_rep.h"
#include "plan/planner.h"
#include "query/normalize.h"
#include "relational/database.h"
#include "util/request_context.h"
#include "util/status.h"

namespace cqc {

struct RepCacheOptions {
  /// Maximum resident entries (>= 1; evicted entries stay alive while any
  /// caller still holds their shared_ptr).
  size_t capacity = 16;
  /// Byte budget over the cache's *physical* footprint (0 = unlimited).
  /// After every insert, least-recently-used entries are evicted until the
  /// sum of the entries' ResidentBytes() fits. Mapped (zero-copy) entries
  /// are charged only the pages the OS actually has resident — an mmap'ed
  /// rep far larger than the budget can stay cached while it is cold,
  /// which is the whole point of the zero-copy path. The most recent entry
  /// is never evicted (the budget cannot make the cache useless).
  size_t max_resident_bytes = 0;
  /// When non-empty: directory of CQCREP04 snapshot files. A cache miss
  /// first probes `<dir>/<hash(key)>.cqcrep` and serves it via the
  /// zero-copy loader (validated against the current database) before
  /// falling back to a fresh plan + build; PersistEntry() writes such a
  /// snapshot for a cached compressed entry. This is the restart story:
  /// persist before shutdown, remap on boot in O(header) time.
  std::string snapshot_dir;
  /// Planner defaults for entries; the per-Get budget overrides
  /// space_budget_exponent. Set planner.churn_per_request > 0 to let the
  /// planner pick the updatable structure for mutable workloads.
  PlannerOptions planner;

  // --- fault tolerance (docs/robustness.md) --------------------------------

  /// Total build attempts per miss (>= 1). Only transient faults
  /// (kUnavailable: I/O errors, injected failpoints, contained worker
  /// exceptions) are retried; input-shaped errors fail immediately.
  int max_build_attempts = 1;
  /// Backoff before the first retry; doubles per further retry. The
  /// builder sleeps outside the cache lock, so hits and other keys are
  /// never stalled by a backoff.
  std::chrono::milliseconds build_retry_backoff{10};
  /// When > 0: a key whose build just failed is remembered for this long,
  /// and Gets within the window fail fast with the recorded Status instead
  /// of re-entering the build path — without it, every waiter released by
  /// a failed single-flight build immediately becomes the next builder for
  /// the same broken key (a rebuild thundering-herd). Deadline/cancel
  /// outcomes are never negatively cached (they are the caller's, not the
  /// key's). 0 disables.
  std::chrono::milliseconds negative_ttl{0};
  /// When > 0: bounds how long a coalesced waiter blocks on another
  /// request's in-flight build (kUnavailable on expiry; the build itself
  /// keeps running for whoever can still wait). A waiter's own
  /// RequestContext deadline bounds the wait too, independent of this.
  std::chrono::milliseconds build_timeout{0};
  /// When the planned structure fails to build with a transient fault
  /// (after retries), fall back to DirectEval — no build beyond per-atom
  /// indexes, answers identical — and serve degraded rather than failing
  /// the request. Degraded entries are cached and counted in
  /// stats().degraded_serves.
  bool degrade_on_failure = true;
};

struct RepCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        // triggered a build
  uint64_t coalesced = 0;     // waited on another request's build
  uint64_t builds = 0;        // successful builds
  uint64_t build_failures = 0;
  uint64_t build_retries = 0;     // attempts beyond the first
  uint64_t degraded_serves = 0;   // Gets answered by a fallback structure
  uint64_t negative_hits = 0;     // Gets failed fast by the negative cache
  uint64_t waiter_timeouts = 0;   // coalesced waits cut short (timeout/ctx)
  uint64_t evictions = 0;       // capacity (entry-count) evictions
  uint64_t byte_evictions = 0;  // max_resident_bytes evictions
  uint64_t mmap_loads = 0;      // misses served from a snapshot file
  // Update path.
  uint64_t deltas_applied = 0;  // updatable entries that absorbed a delta
  uint64_t delta_failures = 0;  // updatable entries whose absorb FAILED
  uint64_t invalidations = 0;        // static entries dropped by a delta
  uint64_t rebuilds_scheduled = 0;   // background folds submitted
  uint64_t rebuilds_completed = 0;   // background folds finished
  uint64_t rebuilds_failed = 0;      // background folds that errored
  // Gauge (recomputed by stats()): sum of cached entries' ResidentBytes().
  uint64_t resident_bytes = 0;
};

/// One cache entry: the normalized view (owning the derived relations the
/// structure references), the plan, and the built structure. Entries are
/// immutable except through RepCache::ApplyDelta, which mutates only
/// updatable structures (themselves safe for concurrent readers).
class CachedRep {
 public:
  const AnswerRep& rep() const { return *rep_; }
  const Plan& plan() const { return plan_; }
  const AdornedView& view() const { return normalized_.view; }
  const std::string& key() const { return key_; }
  /// Derived aux relation name -> base relation (see NormalizedView);
  /// exactly the atoms that mutations cannot reach directly.
  const std::map<std::string, std::string>& derived_sources() const {
    return normalized_.derived_sources;
  }
  /// True when this entry was served from an mmap'ed snapshot file rather
  /// than built.
  bool from_snapshot() const { return from_snapshot_; }
  /// True when the planned structure failed to build and this entry holds
  /// the DirectEval fallback instead (answers are identical; the paper's
  /// space/delay trade-off is not — see RepCacheOptions::degrade_on_failure).
  bool degraded() const { return degraded_; }

 private:
  friend class RepCache;
  explicit CachedRep(std::string key, NormalizedView normalized)
      : key_(std::move(key)), normalized_(std::move(normalized)) {}

  std::string key_;
  NormalizedView normalized_;
  Plan plan_;
  std::unique_ptr<AnswerRep> rep_;
  bool from_snapshot_ = false;
  bool degraded_ = false;
  /// Coalesces background snapshot folds: set while one is queued/running.
  std::atomic<bool> rebuild_scheduled_{false};
};

class RepCache {
 public:
  /// `db` must outlive the cache and every entry handed out.
  explicit RepCache(const Database* db, RepCacheOptions options = {});
  /// Blocks until outstanding background rebuilds finish.
  ~RepCache();

  /// Parses and serves `view_text` (e.g. "Q^bf(x,y) = R(x,y)"). `ctx`
  /// (optional) bounds the request: an expired/cancelled context fails
  /// fast, and a coalesced wait on someone else's build respects the
  /// context deadline.
  Result<std::shared_ptr<const CachedRep>> Get(
      const std::string& view_text, double space_budget_exponent = -1,
      const RequestContext* ctx = nullptr);

  /// Serves an already-parsed view. The view may contain constants or
  /// repeated variables; normalization happens on miss.
  Result<std::shared_ptr<const CachedRep>> GetView(
      const AdornedView& view, double space_budget_exponent = -1,
      const RequestContext* ctx = nullptr);

  /// Routes a batch of base-table mutations through the cache: the
  /// addressed entry (`key` from CachedRep::key(); error if no longer
  /// cached) and every other affected entry absorb the delta when
  /// updatable, or are invalidated when not. Updatable entries that cross
  /// their rebuild threshold get ONE background snapshot fold scheduled on
  /// the shared build pool. The caller owns keeping the base Database
  /// consistent with the deltas it applies (entries built after this call
  /// see whatever that database then holds).
  Status ApplyDelta(const std::string& key, const UpdateBatch& delta);

  /// Blocks until every scheduled background rebuild has completed.
  void WaitForRebuilds();

  /// Writes the cached entry's compressed structure to the snapshot
  /// directory (options.snapshot_dir must be set) so a future cache —
  /// typically after a restart — can serve it via the zero-copy loader.
  /// Errors if the key is not cached, the entry is not a compressed
  /// structure, or no snapshot_dir is configured.
  Status PersistEntry(const std::string& key);

  /// The snapshot file a key persists to / loads from (diagnostics,
  /// tests); empty when no snapshot_dir is configured.
  std::string SnapshotPath(const std::string& key) const;

  RepCacheStats stats() const;
  size_t size() const;

 private:
  struct InFlight {
    bool done = false;
    std::shared_ptr<const CachedRep> result;  // null on failure
    Status error;
  };
  /// Lifetime-shared with background rebuild tasks, so the tasks can
  /// report completion even if they outlive a particular wait.
  struct RebuildTracker {
    std::mutex mu;
    std::condition_variable cv;
    size_t outstanding = 0;
    uint64_t scheduled = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
  };
  /// A recently-failed build: Gets for the key fail fast with `error`
  /// until `expires`.
  struct NegativeEntry {
    Status error;
    std::chrono::steady_clock::time_point expires;
  };
  using LruList = std::list<std::pair<std::string, std::shared_ptr<CachedRep>>>;

  /// Builds the entry for (view, budget); no cache locks held. Probes the
  /// snapshot directory first when one is configured.
  Result<std::shared_ptr<CachedRep>> BuildEntry(
      const std::string& key, const AdornedView& view,
      double space_budget_exponent) const;

  /// The resilient build path (docs/robustness.md): BuildEntry with
  /// bounded retry + exponential backoff on transient faults, then the
  /// DirectEval degraded fallback. Increments retry stats itself; `ctx`
  /// is checked between attempts.
  Result<std::shared_ptr<CachedRep>> BuildEntryResilient(
      const std::string& key, const AdornedView& view,
      double space_budget_exponent, const RequestContext* ctx);

  /// Builds the degraded DirectEval entry (no planner; `cause` becomes the
  /// plan-candidate note so --stats shows why).
  Result<std::shared_ptr<CachedRep>> BuildDegraded(
      const std::string& key, const AdornedView& view,
      const Status& cause) const;

  /// Evicts from the LRU tail until both the entry-count capacity and the
  /// byte budget (when set) are respected. Call with mu_ held.
  void EvictLocked();

  /// Schedules one coalesced background fold if the entry needs it.
  void MaybeScheduleRebuild(const std::shared_ptr<CachedRep>& entry);

  const Database* db_;
  const RepCacheOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Most-recently-used first; entries_ indexes into it.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> entries_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::unordered_map<std::string, NegativeEntry> negative_;
  RepCacheStats stats_;
  std::shared_ptr<RebuildTracker> rebuilds_ =
      std::make_shared<RebuildTracker>();
};

}  // namespace cqc

#endif  // CQC_PLAN_REP_CACHE_H_

// RepCache: the serving layer — plan once, build once, serve many.
//
// An LRU cache of built representations keyed by the canonical query key
// (query/normalize.h: alpha-renamed copies of a query share an entry) plus
// the space-budget exponent. A miss parses nothing twice: the entry owns
// its NormalizedView (including the aux database of derived relations the
// built structure references), the Plan that chose the structure, and the
// AnswerRep itself, so a cache hit is immediately servable and survives
// eviction for as long as any caller holds the shared_ptr.
//
// Builds are *single-flight*: concurrent requests for the same key find
// the in-flight build and wait on it instead of duplicating the (possibly
// expensive) compression — the thundering-herd behavior a serving cache
// must not have. Distinct keys build concurrently; the cache lock guards
// only metadata, never a build.
#ifndef CQC_PLAN_REP_CACHE_H_
#define CQC_PLAN_REP_CACHE_H_

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "plan/answer_rep.h"
#include "plan/planner.h"
#include "query/normalize.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

struct RepCacheOptions {
  /// Maximum resident entries (>= 1; evicted entries stay alive while any
  /// caller still holds their shared_ptr).
  size_t capacity = 16;
  /// Planner defaults for entries; the per-Get budget overrides
  /// space_budget_exponent.
  PlannerOptions planner;
};

struct RepCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        // triggered a build
  uint64_t coalesced = 0;     // waited on another request's build
  uint64_t builds = 0;        // successful builds
  uint64_t build_failures = 0;
  uint64_t evictions = 0;
};

/// One immutable cache entry: the normalized view (owning the derived
/// relations the structure references), the plan, and the built structure.
class CachedRep {
 public:
  const AnswerRep& rep() const { return *rep_; }
  const Plan& plan() const { return plan_; }
  const AdornedView& view() const { return normalized_.view; }
  const std::string& key() const { return key_; }

 private:
  friend class RepCache;
  explicit CachedRep(std::string key, NormalizedView normalized)
      : key_(std::move(key)), normalized_(std::move(normalized)) {}

  std::string key_;
  NormalizedView normalized_;
  Plan plan_;
  std::unique_ptr<AnswerRep> rep_;
};

class RepCache {
 public:
  /// `db` must outlive the cache and every entry handed out.
  explicit RepCache(const Database* db, RepCacheOptions options = {});

  /// Parses and serves `view_text` (e.g. "Q^bf(x,y) = R(x,y)").
  Result<std::shared_ptr<const CachedRep>> Get(
      const std::string& view_text, double space_budget_exponent = -1);

  /// Serves an already-parsed view. The view may contain constants or
  /// repeated variables; normalization happens on miss.
  Result<std::shared_ptr<const CachedRep>> GetView(
      const AdornedView& view, double space_budget_exponent = -1);

  RepCacheStats stats() const;
  size_t size() const;

 private:
  struct InFlight {
    bool done = false;
    std::shared_ptr<const CachedRep> result;  // null on failure
    Status error;
  };

  /// Builds the entry for (view, budget); no cache locks held.
  Result<std::shared_ptr<const CachedRep>> BuildEntry(
      const std::string& key, const AdornedView& view,
      double space_budget_exponent) const;

  const Database* db_;
  const RepCacheOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Most-recently-used first; entries_ indexes into it.
  std::list<std::pair<std::string, std::shared_ptr<const CachedRep>>> lru_;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, std::shared_ptr<const CachedRep>>>::
          iterator>
      entries_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  RepCacheStats stats_;
};

}  // namespace cqc

#endif  // CQC_PLAN_REP_CACHE_H_

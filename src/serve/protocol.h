// cqc wire protocol v1: length-prefixed binary frames over a byte stream.
//
// Full spec in docs/serving.md. Summary:
//
//   frame    := u32 payload_len (LE) | payload
//   payload  := u8 magic (0xCQ = 0xC9) | u8 type | type-specific fields
//
// Request payload (type kRequest):
//   u8  magic, u8 type, u8 flags, u8 reserved (must be 0)
//   u32 deadline_ms      0 = unbounded; the server clamps to its max
//   u64 request_id       echoed verbatim in the response
//   u16 tenant_len, u16 view_len, u32 body_len
//   bytes tenant | view | body
// `view` is an adorned view text ("Q^bf(x,y) = R(x,y)"); `body` is ONE
// line of the cqc script grammar (plan/script.h) — the same grammar
// cqc_cli scripts use, so the CLI and the wire share one parser and one
// malformed-input corpus. Field lengths must sum exactly to payload_len.
//
// Response payload (type kResponse):
//   u8  magic, u8 type, u8 status_code (StatusCode), u8 arity
//   u64 request_id
//   u32 error_offset     wire byte offset a protocol/parse error refers
//                        to (kNoOffset when not addressable)
//   u32 num_rows, u32 msg_len
//   bytes msg | u64 values[num_rows * arity] (LE)
//
// Every decode path is hardened: truncated frames, oversized length
// prefixes, bit-flipped magic/type bytes, and length fields that disagree
// with the payload all produce a Status naming the exact stream byte
// offset — never a crash, never an out-of-bounds read (the corrupt-input
// contract of core/serialization.cc, applied to the wire).
#ifndef CQC_SERVE_PROTOCOL_H_
#define CQC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cqc {
namespace serve {

inline constexpr uint8_t kFrameMagic = 0xC9;
inline constexpr uint8_t kTypeRequest = 1;
inline constexpr uint8_t kTypeResponse = 2;
/// Hard cap on one frame's payload: an oversized length prefix is a
/// protocol error, not an allocation (slow-loris / corruption defense).
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;
/// "No addressable offset" sentinel for WireResponse::error_offset.
inline constexpr uint32_t kNoOffset = 0xFFFFFFFFu;

/// Request flag bits.
inline constexpr uint8_t kFlagNoCoalesce = 0x1;  // opt out of shared drains

/// Fixed header bytes of a request payload before the variable fields;
/// the body's offset within the payload is this + tenant_len + view_len
/// (the server uses it to map script parse errors to wire offsets).
inline constexpr size_t kRequestFixedBytes = 24;
inline constexpr size_t kResponseFixedBytes = 24;

struct WireRequest {
  uint8_t flags = 0;
  uint32_t deadline_ms = 0;
  uint64_t request_id = 0;
  std::string tenant;
  std::string view;
  std::string body;  // one script line (plan/script.h grammar)
};

struct WireResponse {
  StatusCode code = StatusCode::kOk;
  uint8_t arity = 0;
  uint64_t request_id = 0;
  uint32_t error_offset = kNoOffset;
  std::string message;            // error text ("" on success) or stats text
  std::vector<uint64_t> values;   // num_rows * arity, row-major
  size_t num_rows() const {
    return arity == 0 ? 0 : values.size() / arity;
  }
};

/// Serializes a full frame (length prefix included).
std::string EncodeRequestFrame(const WireRequest& req);
std::string EncodeResponseFrame(const WireResponse& resp);

/// Split encoding for responses whose values section is shared across
/// frames (coalesced drains): the head carries the length prefix, fixed
/// header, and message of a frame whose values bytes (`body_bytes` of
/// EncodeValuesBody output) follow as a separate buffer. `resp.values`
/// must be empty; `num_rows` describes the shared body.
std::string EncodeResponseHead(const WireResponse& resp, uint32_t num_rows,
                               size_t body_bytes);
/// LE-encodes a values section (the bytes after msg in a response payload).
std::string EncodeValuesBody(const std::vector<uint64_t>& values);

/// Decodes one frame payload (the bytes after the length prefix).
/// `payload_offset` is the stream offset of payload[0]; error messages and
/// `*error_offset` (when non-null) address absolute stream bytes with it.
Status DecodeRequestPayload(std::string_view payload, uint64_t payload_offset,
                            WireRequest* out,
                            uint64_t* error_offset = nullptr);
Status DecodeResponsePayload(std::string_view payload,
                             uint64_t payload_offset, WireResponse* out,
                             uint64_t* error_offset = nullptr);

/// Incremental frame assembly over an arbitrary chunking of the stream
/// (nonblocking reads hand it whatever arrived, one byte at a time is
/// fine). Errors are sticky: once the stream is malformed there is no
/// resync — the connection must die.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes.
  void Feed(const char* data, size_t n);

  enum class Next : uint8_t {
    kFrame,     // *payload / *payload_offset describe one complete payload
    kNeedMore,  // no complete frame buffered
    kError,     // malformed stream; error() / error_offset() say where
  };

  /// Yields the next complete frame, if any. The returned view is valid
  /// until the next Feed/Poll call.
  Next Poll(std::string_view* payload, uint64_t* payload_offset);

  /// True while bytes of an incomplete frame are buffered — an EOF now is
  /// a mid-frame disconnect, which callers should report via MidStreamEof.
  bool mid_frame() const { return !failed_ && buf_.size() > pos_; }

  /// The protocol error for a peer that closed mid-frame.
  Status MidStreamEof() const;

  const Status& error() const { return error_; }
  uint64_t error_offset() const { return error_offset_; }
  /// Total stream bytes consumed into completed frames.
  uint64_t consumed() const { return base_offset_ + pos_; }

 private:
  Status Fail(uint64_t offset, std::string msg);

  uint32_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;             // start of the un-consumed region in buf_
  uint64_t base_offset_ = 0;   // stream offset of buf_[0]
  bool failed_ = false;
  Status error_;
  uint64_t error_offset_ = 0;
};

// --- little-endian primitives (shared with tests) ---------------------------

void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
uint16_t ReadU16(const char* p);
uint32_t ReadU32(const char* p);
uint64_t ReadU64(const char* p);

}  // namespace serve
}  // namespace cqc

#endif  // CQC_SERVE_PROTOCOL_H_

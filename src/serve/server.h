// CqcServer: the long-lived network front end (docs/serving.md).
//
// One poll(2) readiness loop on a dedicated thread owns every socket:
// nonblocking accept, per-connection FrameReader assembly of the
// length-prefixed protocol (serve/protocol.h), and outbox flushing.
// Complete request frames are decoded on the loop thread and dispatched to
// an exec/ThreadPool; workers execute against per-tenant RepCaches (one
// byte-budgeted cache per tenant — admission control is per tenant, so one
// tenant's flood cannot evict or starve another's working set) and push
// finished response frames back to the loop through a wake pipe. The loop
// thread never blocks on request work; workers never touch a socket.
//
// Request bodies reuse the cqc script grammar (plan/script.h): a wire
// request is one script line evaluated against the request's view, so the
// CLI and the server share a single strict parser, and a malformed body is
// rejected with the exact wire byte offset of the offending token.
//
// Read-path coalescing (serve/coalescer.h): concurrent identical queries
// against the same cached entry share ONE bounded-delay drain; waiters get
// byte-identical rows. Opt out per request with kFlagNoCoalesce.
//
// Fault tolerance rides on PR 9's machinery: the wire deadline_ms becomes
// a RequestContext threaded through every entry point, RepCache retries /
// degraded fallbacks apply unchanged, and failpoints fire inside builds,
// drains, and delta application exactly as in-process callers see them.
#ifndef CQC_SERVE_SERVER_H_
#define CQC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "plan/rep_cache.h"
#include "serve/coalescer.h"
#include "serve/protocol.h"
#include "util/request_context.h"
#include "util/status.h"

namespace cqc {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; port() reports the bound port after Start().
  int port = 0;
  /// Request-execution workers (>= 1).
  int worker_threads = 2;
  /// Accept cap: connections beyond this are refused with a best-effort
  /// error frame and closed (slow-loris fd exhaustion defense).
  size_t max_sessions = 256;
  /// Requests one connection may have in flight (pipelining depth);
  /// excess frames are answered UNAVAILABLE without dispatch.
  size_t max_pipeline_depth = 64;
  /// Concurrent requests one tenant may have in flight across all its
  /// connections; excess is rejected at admission.
  size_t per_tenant_inflight = 128;
  /// A partial frame older than this is a dead/slow-loris connection and
  /// is closed as a protocol error. 0 disables.
  std::chrono::milliseconds partial_frame_timeout{30000};
  /// Wire deadlines are clamped to this (a client cannot pin a worker
  /// arbitrarily long). 0 = no clamp.
  uint32_t max_deadline_ms = 60'000;
  /// Share drains across concurrent identical queries.
  bool coalesce_reads = true;
  /// Space budget exponent handed to RepCache::Get for every request.
  double space_budget_exponent = -1;
  /// Per-tenant RepCache configuration (capacity, max_resident_bytes =
  /// the per-tenant byte budget, planner churn, retry/degrade policy).
  RepCacheOptions cache;
  /// Payload cap for the framing layer.
  uint32_t max_payload_bytes = kMaxPayloadBytes;
};

struct ServerStats {
  // Session lifecycle.
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_refused = 0;  // accept-cap refusals
  uint64_t active_sessions = 0;   // gauge
  uint64_t open_fds = 0;          // gauge: listener + wake pipe + sessions
  // Framing / protocol.
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;   // framing/decode faults (connection dies)
  uint64_t responses_sent = 0;    // frames fully written to a socket
  uint64_t dropped_responses = 0; // completed after their connection died
  // Request execution.
  uint64_t requests_dispatched = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;   // responses with a non-OK status code
  uint64_t admission_rejected = 0;
  uint64_t pipeline_rejected = 0;
  uint64_t mutations_applied = 0;
  uint64_t inflight_requests = 0;  // gauge
  // Read-path coalescing (serve/coalescer.h).
  uint64_t shared_drains = 0;
  uint64_t coalesced_reads = 0;
  uint64_t failed_drains = 0;
};

class CqcServer {
 public:
  /// `db` must outlive the server; it is the shared immutable base — wire
  /// mutations flow into updatable cached structures, never the base
  /// tables (docs/serving.md#mutations).
  explicit CqcServer(const Database* db, ServerOptions options = {});
  ~CqcServer();

  CqcServer(const CqcServer&) = delete;
  CqcServer& operator=(const CqcServer&) = delete;

  /// Binds, listens, and spawns the loop + workers. Fails with the socket
  /// error (address in use, bad host) without leaking fds.
  Status Start();

  /// Stops accepting, closes every session, joins the loop and workers.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (after Start()).
  int port() const { return bound_port_; }

  ServerStats stats() const;

  /// Stats of one tenant's RepCache ("" = the default tenant); zeros if
  /// the tenant has never sent a request.
  RepCacheStats tenant_cache_stats(const std::string& tenant) const;

 private:
  /// One write-queue element. A plain response is a single owned chunk; a
  /// coalesced response is an owned head (length prefix + fixed header +
  /// message) followed by a chunk sharing the drain's encoded values with
  /// every other waiter — the large section is encoded once per drain and
  /// never copied per waiter.
  struct OutChunk {
    std::string own;
    std::shared_ptr<const std::string> shared;  // used when non-null
    bool ends_response = true;  // last chunk of its response frame
    const std::string& bytes() const { return shared ? *shared : own; }
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameReader reader;
    std::deque<OutChunk> outbox;
    size_t out_pos = 0;       // bytes of outbox.front() already written
    size_t inflight = 0;      // dispatched, response not yet enqueued
    bool close_after_flush = false;
    /// Set while reader.mid_frame(): when the partial frame started.
    std::chrono::steady_clock::time_point partial_since{};
    bool has_partial = false;

    explicit Connection(uint32_t max_payload) : reader(max_payload) {}
  };

  struct Tenant {
    std::unique_ptr<RepCache> cache;
    std::atomic<size_t> inflight{0};
  };

  // --- loop thread ---------------------------------------------------------
  void Loop();
  void AcceptNew();
  void ReadFrom(Connection& conn);
  void ProcessFrames(Connection& conn);
  void HandleFrame(Connection& conn, std::string_view payload,
                   uint64_t payload_offset);
  void FlushConn(Connection& conn);
  void CloseConn(uint64_t conn_id);
  void MoveReadyToOutboxes();
  void SweepStalePartials();
  /// Enqueues a response on the loop thread (protocol errors, refusals).
  void EnqueueDirect(Connection& conn, const WireResponse& resp);

  // --- worker threads ------------------------------------------------------
  void HandleRequest(uint64_t conn_id, WireRequest req,
                     uint64_t payload_offset);
  DrainResult RunQueryDrain(const CachedRep& entry, const Tuple& vb,
                            const RequestContext* ctx) const;
  /// Thread-safe: serializes and hands the response to the loop thread.
  /// `tenant` (nullable) releases its admission slot. When `body` is set it
  /// is the response's pre-encoded values section (shared across coalesced
  /// waiters; `resp.values` must be empty and `body_rows` names the count).
  void CompleteRequest(uint64_t conn_id, WireResponse resp, Tenant* tenant,
                       std::shared_ptr<const std::string> body = nullptr,
                       uint32_t body_rows = 0);
  Tenant* GetTenant(const std::string& name);

  void Wake();

  const Database* db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;
  int bound_port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Loop-thread-owned connection state.
  std::map<int, std::unique_ptr<Connection>> conns_;          // by fd
  std::unordered_map<uint64_t, int> conn_fds_;                // id -> fd
  uint64_t next_conn_id_ = 1;

  // Worker -> loop handoff.
  struct ReadyResponse {
    uint64_t conn_id = 0;
    std::string head;  // a full frame when body is null
    std::shared_ptr<const std::string> body;
  };
  std::mutex ready_mu_;
  bool draining_ = false;  // Stop() in progress: drop new responses
  std::vector<ReadyResponse> ready_;

  // Tenants (created lazily, never removed while running).
  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  ReadCoalescer coalescer_;

  // Stats counters (atomics: mixed loop/worker writers).
  std::atomic<uint64_t> sessions_opened_{0}, sessions_closed_{0},
      sessions_refused_{0}, frames_received_{0}, protocol_errors_{0},
      responses_sent_{0}, dropped_responses_{0}, requests_dispatched_{0},
      requests_ok_{0}, requests_failed_{0}, admission_rejected_{0},
      pipeline_rejected_{0}, mutations_applied_{0}, inflight_requests_{0};
};

}  // namespace serve
}  // namespace cqc

#endif  // CQC_SERVE_SERVER_H_

#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/str_util.h"

namespace cqc {
namespace serve {

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Status Client::Connect(const std::string& host, int port,
                       std::chrono::milliseconds recv_timeout) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    return Status::Error(StrFormat("socket: %s", std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((uint16_t)port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error(StrFormat("bad host '%s'", host.c_str()));
  }
  if (::connect(fd_, (const sockaddr*)&addr, sizeof addr) != 0) {
    const int err = errno;
    Close();
    return Status::Error(StrFormat("connect %s:%d: %s", host.c_str(), port,
                                   std::strerror(err)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  struct timeval tv;
  tv.tv_sec = recv_timeout.count() / 1000;
  tv.tv_usec = (recv_timeout.count() % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  reader_ = FrameReader();
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Send(const WireRequest& req) {
  return SendRaw(EncodeRequestFrame(req));
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Error("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(StrFormat("send: %s", std::strerror(errno)));
    }
    off += (size_t)n;
  }
  return Status::Ok();
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status Client::ReadResponse(WireResponse* out) {
  if (fd_ < 0) return Status::Error("client not connected");
  std::string_view payload;
  uint64_t payload_offset = 0;
  for (;;) {
    switch (reader_.Poll(&payload, &payload_offset)) {
      case FrameReader::Next::kFrame:
        return DecodeResponsePayload(payload, payload_offset, out);
      case FrameReader::Next::kError:
        return reader_.error();
      case FrameReader::Next::kNeedMore:
        break;
    }
    // Large responses (multi-MB coalesced drains) arrive in few syscalls
    // with a big chunk; 64KB would cost ~16x the recv calls per frame.
    if (chunk_.empty()) chunk_.resize(256 * 1024);
    const ssize_t n = ::recv(fd_, chunk_.data(), chunk_.size(), 0);
    if (n > 0) {
      reader_.Feed(chunk_.data(), (size_t)n);
      continue;
    }
    if (n == 0)
      return reader_.mid_frame()
                 ? reader_.MidStreamEof()
                 : Status::Error("connection closed by the server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return Status::DeadlineExceeded("timed out waiting for a response");
    return Status::Error(StrFormat("recv: %s", std::strerror(errno)));
  }
}

Status Client::Call(const WireRequest& req, WireResponse* out) {
  if (Status s = Send(req); !s.ok()) return s;
  return ReadResponse(out);
}

}  // namespace serve
}  // namespace cqc

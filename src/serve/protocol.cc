#include "serve/protocol.h"

#include <cstring>

#include "util/str_util.h"

namespace cqc {
namespace serve {

void AppendU16(std::string* out, uint16_t v) {
  out->push_back((char)(v & 0xFF));
  out->push_back((char)((v >> 8) & 0xFF));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((char)((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((char)((v >> (8 * i)) & 0xFF));
}

uint16_t ReadU16(const char* p) {
  return (uint16_t)((uint8_t)p[0] | ((uint16_t)(uint8_t)p[1] << 8));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | (uint8_t)p[i];
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | (uint8_t)p[i];
  return v;
}

namespace {

/// Prefixes the assembled payload with its length.
std::string WithLengthPrefix(std::string payload) {
  std::string out;
  out.reserve(4 + payload.size());
  AppendU32(&out, (uint32_t)payload.size());
  out += payload;
  return out;
}

/// Formats "at wire offset N" errors and records the offset out-param.
Status WireError(uint64_t offset, uint64_t* error_offset, std::string what) {
  if (error_offset != nullptr) *error_offset = offset;
  return Status::Error(
      StrFormat("%s (wire offset %llu)", what.c_str(),
                (unsigned long long)offset));
}

}  // namespace

std::string EncodeRequestFrame(const WireRequest& req) {
  std::string p;
  p.reserve(kRequestFixedBytes + req.tenant.size() + req.view.size() +
            req.body.size());
  p.push_back((char)kFrameMagic);
  p.push_back((char)kTypeRequest);
  p.push_back((char)req.flags);
  p.push_back((char)0);  // reserved
  AppendU32(&p, req.deadline_ms);
  AppendU64(&p, req.request_id);
  AppendU16(&p, (uint16_t)req.tenant.size());
  AppendU16(&p, (uint16_t)req.view.size());
  AppendU32(&p, (uint32_t)req.body.size());
  p += req.tenant;
  p += req.view;
  p += req.body;
  return WithLengthPrefix(std::move(p));
}

std::string EncodeResponseHead(const WireResponse& resp, uint32_t num_rows,
                               size_t body_bytes) {
  std::string out;
  out.reserve(4 + kResponseFixedBytes + resp.message.size());
  AppendU32(&out,
            (uint32_t)(kResponseFixedBytes + resp.message.size() + body_bytes));
  out.push_back((char)kFrameMagic);
  out.push_back((char)kTypeResponse);
  out.push_back((char)resp.code);
  out.push_back((char)resp.arity);
  AppendU64(&out, resp.request_id);
  AppendU32(&out, resp.error_offset);
  AppendU32(&out, num_rows);
  AppendU32(&out, (uint32_t)resp.message.size());
  out += resp.message;
  return out;
}

std::string EncodeValuesBody(const std::vector<uint64_t>& values) {
  std::string out;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The wire is little-endian, so on LE hosts the in-memory u64 array IS
  // the encoding — one bulk copy instead of a shift loop per value (this
  // is the hot path of every large coalesced response).
  out.resize(values.size() * 8);
  if (!values.empty())
    std::memcpy(out.data(), values.data(), values.size() * 8);
#else
  out.reserve(values.size() * 8);
  for (uint64_t v : values) AppendU64(&out, v);
#endif
  return out;
}

std::string EncodeResponseFrame(const WireResponse& resp) {
  std::string out = EncodeResponseHead(resp, (uint32_t)resp.num_rows(),
                                       resp.values.size() * 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  const size_t head = out.size();
  out.resize(head + resp.values.size() * 8);
  if (!resp.values.empty())
    std::memcpy(out.data() + head, resp.values.data(),
                resp.values.size() * 8);
#else
  for (uint64_t v : resp.values) AppendU64(&out, v);
#endif
  return out;
}

Status DecodeRequestPayload(std::string_view payload, uint64_t payload_offset,
                            WireRequest* out, uint64_t* error_offset) {
  const char* p = payload.data();
  if (payload.size() < kRequestFixedBytes)
    return WireError(payload_offset + payload.size(), error_offset,
                     StrFormat("request payload truncated: %zu byte(s), "
                               "fixed header needs %zu",
                               payload.size(), kRequestFixedBytes));
  if ((uint8_t)p[0] != kFrameMagic)
    return WireError(payload_offset, error_offset,
                     StrFormat("bad frame magic 0x%02X (want 0x%02X)",
                               (unsigned)(uint8_t)p[0],
                               (unsigned)kFrameMagic));
  if ((uint8_t)p[1] != kTypeRequest)
    return WireError(payload_offset + 1, error_offset,
                     StrFormat("unexpected frame type %u (want request %u)",
                               (unsigned)(uint8_t)p[1],
                               (unsigned)kTypeRequest));
  if ((uint8_t)p[3] != 0)
    return WireError(payload_offset + 3, error_offset,
                     "nonzero reserved byte in request header");
  out->flags = (uint8_t)p[2];
  out->deadline_ms = ReadU32(p + 4);
  out->request_id = ReadU64(p + 8);
  const size_t tenant_len = ReadU16(p + 16);
  const size_t view_len = ReadU16(p + 18);
  const size_t body_len = ReadU32(p + 20);
  const size_t want = kRequestFixedBytes + tenant_len + view_len + body_len;
  if (want != payload.size())
    return WireError(payload_offset + 16, error_offset,
                     StrFormat("request field lengths sum to %zu but the "
                               "payload holds %zu byte(s)",
                               want, payload.size()));
  const char* var = p + kRequestFixedBytes;
  out->tenant.assign(var, tenant_len);
  out->view.assign(var + tenant_len, view_len);
  out->body.assign(var + tenant_len + view_len, body_len);
  return Status::Ok();
}

Status DecodeResponsePayload(std::string_view payload,
                             uint64_t payload_offset, WireResponse* out,
                             uint64_t* error_offset) {
  const char* p = payload.data();
  if (payload.size() < kResponseFixedBytes)
    return WireError(payload_offset + payload.size(), error_offset,
                     StrFormat("response payload truncated: %zu byte(s), "
                               "fixed header needs %zu",
                               payload.size(), kResponseFixedBytes));
  if ((uint8_t)p[0] != kFrameMagic)
    return WireError(payload_offset, error_offset,
                     StrFormat("bad frame magic 0x%02X (want 0x%02X)",
                               (unsigned)(uint8_t)p[0],
                               (unsigned)kFrameMagic));
  if ((uint8_t)p[1] != kTypeResponse)
    return WireError(payload_offset + 1, error_offset,
                     StrFormat("unexpected frame type %u (want response %u)",
                               (unsigned)(uint8_t)p[1],
                               (unsigned)kTypeResponse));
  const uint8_t raw_code = (uint8_t)p[2];
  if (raw_code > (uint8_t)StatusCode::kUnavailable)
    return WireError(payload_offset + 2, error_offset,
                     StrFormat("unknown status code %u", (unsigned)raw_code));
  out->code = (StatusCode)raw_code;
  out->arity = (uint8_t)p[3];
  out->request_id = ReadU64(p + 4);
  out->error_offset = ReadU32(p + 12);
  const size_t num_rows = ReadU32(p + 16);
  const size_t msg_len = ReadU32(p + 20);
  const size_t num_values = num_rows * (size_t)out->arity;
  if (out->arity == 0 && num_rows != 0)
    return WireError(payload_offset + 16, error_offset,
                     StrFormat("%zu row(s) with arity 0", num_rows));
  const size_t want = kResponseFixedBytes + msg_len + num_values * 8;
  if (want != payload.size())
    return WireError(payload_offset + 16, error_offset,
                     StrFormat("response field lengths sum to %zu but the "
                               "payload holds %zu byte(s)",
                               want, payload.size()));
  const char* var = p + kResponseFixedBytes;
  out->message.assign(var, msg_len);
  out->values.resize(num_values);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  if (num_values > 0)
    std::memcpy(out->values.data(), var + msg_len, num_values * 8);
#else
  for (size_t i = 0; i < num_values; ++i)
    out->values[i] = ReadU64(var + msg_len + i * 8);
#endif
  return Status::Ok();
}

void FrameReader::Feed(const char* data, size_t n) {
  if (failed_) return;  // the stream is already dead; drop the bytes
  // Compact before growing: pos_ only moves forward, so without this the
  // buffer would retain every consumed frame for the connection's life.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    base_offset_ += pos_;
    pos_ = 0;
  }
  buf_.append(data, n);
}

Status FrameReader::Fail(uint64_t offset, std::string msg) {
  failed_ = true;
  error_offset_ = offset;
  error_ = Status::Error(StrFormat("%s (wire offset %llu)", msg.c_str(),
                                   (unsigned long long)offset));
  return error_;
}

FrameReader::Next FrameReader::Poll(std::string_view* payload,
                                    uint64_t* payload_offset) {
  if (failed_) return Next::kError;
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return Next::kNeedMore;
  const uint32_t len = ReadU32(buf_.data() + pos_);
  if (len > max_payload_) {
    Fail(base_offset_ + pos_,
         StrFormat("frame length %u exceeds the %u-byte payload cap", len,
                   max_payload_));
    return Next::kError;
  }
  if (len < 2) {
    // Every payload starts with magic + type; anything shorter cannot be a
    // frame of this protocol.
    Fail(base_offset_ + pos_,
         StrFormat("frame length %u below the 2-byte payload minimum", len));
    return Next::kError;
  }
  if (avail < 4 + (size_t)len) return Next::kNeedMore;
  *payload = std::string_view(buf_.data() + pos_ + 4, len);
  *payload_offset = base_offset_ + pos_ + 4;
  pos_ += 4 + (size_t)len;
  return Next::kFrame;
}

Status FrameReader::MidStreamEof() const {
  return Status::Error(StrFormat(
      "connection closed mid-frame: %zu byte(s) of an incomplete frame "
      "after wire offset %llu",
      buf_.size() - pos_, (unsigned long long)(base_offset_ + pos_)));
}

}  // namespace serve
}  // namespace cqc

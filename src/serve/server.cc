#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "plan/script.h"
#include "util/str_util.h"

namespace cqc {
namespace serve {

namespace {

/// Clamps a 64-bit stream offset into the response's u32 offset field.
uint32_t ClampOffset(uint64_t off) {
  return off >= kNoOffset ? kNoOffset : (uint32_t)off;
}

}  // namespace

CqcServer::CqcServer(const Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

CqcServer::~CqcServer() { Stop(); }

Status CqcServer::Start() {
  if (started_.exchange(true))
    return Status::Error("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Error(StrFormat("socket: %s", std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((uint16_t)options_.port);
  auto fail = [&](std::string msg) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error(std::move(msg));
  };
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    return fail(StrFormat("bad listen host '%s'", options_.host.c_str()));
  if (::bind(listen_fd_, (const sockaddr*)&addr, sizeof addr) != 0)
    return fail(StrFormat("bind %s:%d: %s", options_.host.c_str(),
                          options_.port, std::strerror(errno)));
  if (::listen(listen_fd_, 128) != 0)
    return fail(StrFormat("listen: %s", std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, (sockaddr*)&bound, &blen) != 0)
    return fail(StrFormat("getsockname: %s", std::strerror(errno)));
  bound_port_ = ntohs(bound.sin_port);
  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
    return fail(StrFormat("pipe2: %s", std::strerror(errno)));
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  pool_ = std::make_unique<ThreadPool>(
      options_.worker_threads < 1 ? 1 : options_.worker_threads);
  loop_thread_ = std::thread(&CqcServer::Loop, this);
  return Status::Ok();
}

void CqcServer::Stop() {
  if (!started_.load()) return;
  if (stopped_.exchange(true)) return;
  {
    // From here on completed requests are dropped instead of enqueued: the
    // loop thread is about to die, so nobody would ever flush them.
    std::lock_guard<std::mutex> lk(ready_mu_);
    draining_ = true;
  }
  stop_requested_.store(true);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Workers may still be mid-request; the pool destructor joins after the
  // queue drains. Their CompleteRequest calls hit the draining_ fast path.
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_r_ >= 0) {
    ::close(wake_r_);
    ::close(wake_w_);
    wake_r_ = wake_w_ = -1;
  }
  // Tenants last: RepCache destructors wait for background rebuilds, which
  // must not race the request workers torn down above.
  std::lock_guard<std::mutex> lk(tenants_mu_);
  tenants_.clear();
}

void CqcServer::Wake() {
  // EAGAIN means a wake byte is already pending — that is enough.
  const char b = 1;
  ssize_t rc = ::write(wake_w_, &b, 1);
  (void)rc;
}

// ---------------------------------------------------------------------------
// Loop thread: owns the listener, the wake pipe, and every connection fd.
// ---------------------------------------------------------------------------

void CqcServer::Loop() {
  std::vector<struct pollfd> pfds;
  while (!stop_requested_.load()) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_r_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn->outbox.empty()) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
    }
    // The 250ms tick bounds how stale the slow-loris sweep can get even
    // with no socket activity at all.
    int rc = ::poll(pfds.data(), (nfds_t)pfds.size(), 250);
    if (stop_requested_.load()) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; nothing sane to do but shut down
    }
    if (pfds[1].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    // Unconditional: cheap when empty, and responses may have landed
    // between poll() returning and the wake byte being consumed.
    MoveReadyToOutboxes();
    if (pfds[0].revents & POLLIN) AcceptNew();
    for (size_t i = 2; i < pfds.size(); ++i) {
      const int fd = pfds[i].fd;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this pass
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
        ReadFrom(*it->second);
      // ReadFrom may have closed the connection — re-resolve before writing.
      it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (!it->second->outbox.empty()) FlushConn(*it->second);
      it = conns_.find(fd);
      if (it == conns_.end()) continue;
      // A framing fault closes the connection, but not before every
      // already-dispatched request has had its response delivered.
      if (it->second->close_after_flush && it->second->outbox.empty() &&
          it->second->inflight == 0)
        CloseConn(it->second->id);
    }
    SweepStalePartials();
  }
  while (!conns_.empty()) CloseConn(conns_.begin()->second->id);
}

void CqcServer::AcceptNew() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error — next poll retries
    }
    if (conns_.size() >= options_.max_sessions) {
      // Best-effort refusal frame; the socket closes either way, so a
      // client that never reads still cannot hold the slot.
      sessions_refused_.fetch_add(1, std::memory_order_relaxed);
      WireResponse resp;
      resp.code = StatusCode::kUnavailable;
      resp.message = StrFormat("server at session capacity (%zu)",
                               options_.max_sessions);
      const std::string frame = EncodeResponseFrame(resp);
      (void)::send(fd, frame.data(), frame.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(options_.max_payload_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn_fds_[conn->id] = fd;
    conns_[fd] = std::move(conn);
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CqcServer::ReadFrom(Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.reader.Feed(buf, (size_t)n);
      ProcessFrames(conn);
      if (conn.close_after_flush) break;  // stream is dead; stop reading
      continue;
    }
    if (n == 0) {
      // EOF. Mid-frame is the "disconnect between length prefix and
      // payload" corpus case: count it, then close (there is no frame to
      // answer).
      if (conn.reader.mid_frame())
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn.id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.id);  // ECONNRESET and friends
    return;
  }
  if (conn.reader.mid_frame()) {
    if (!conn.has_partial) {
      conn.has_partial = true;
      conn.partial_since = std::chrono::steady_clock::now();
    }
  } else {
    conn.has_partial = false;
  }
}

void CqcServer::ProcessFrames(Connection& conn) {
  std::string_view payload;
  uint64_t payload_offset = 0;
  for (;;) {
    switch (conn.reader.Poll(&payload, &payload_offset)) {
      case FrameReader::Next::kFrame:
        HandleFrame(conn, payload, payload_offset);
        if (conn.close_after_flush) return;
        continue;
      case FrameReader::Next::kNeedMore:
        return;
      case FrameReader::Next::kError: {
        // Framing is unrecoverable: answer with the exact offense and
        // offset, then close once the answer has flushed.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WireResponse resp;
        resp.code = StatusCode::kError;
        resp.error_offset = ClampOffset(conn.reader.error_offset());
        resp.message = conn.reader.error().message();
        EnqueueDirect(conn, resp);
        conn.close_after_flush = true;
        return;
      }
    }
  }
}

void CqcServer::HandleFrame(Connection& conn, std::string_view payload,
                            uint64_t payload_offset) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  WireRequest req;
  uint64_t err_off = 0;
  if (Status s = DecodeRequestPayload(payload, payload_offset, &req, &err_off);
      !s.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.code = StatusCode::kError;
    resp.error_offset = ClampOffset(err_off);
    resp.message = s.message();
    EnqueueDirect(conn, resp);
    conn.close_after_flush = true;  // desynced framing ≠ bad request body
    return;
  }
  if (conn.inflight >= options_.max_pipeline_depth) {
    pipeline_rejected_.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.request_id = req.request_id;
    resp.code = StatusCode::kUnavailable;
    resp.message = StrFormat("pipeline depth %zu exceeded",
                             options_.max_pipeline_depth);
    EnqueueDirect(conn, resp);
    return;  // the connection survives; only this request is refused
  }
  ++conn.inflight;
  requests_dispatched_.fetch_add(1, std::memory_order_relaxed);
  inflight_requests_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t conn_id = conn.id;
  pool_->Submit([this, conn_id, req = std::move(req), payload_offset]() mutable {
    HandleRequest(conn_id, std::move(req), payload_offset);
  });
}

void CqcServer::EnqueueDirect(Connection& conn, const WireResponse& resp) {
  conn.outbox.push_back(OutChunk{EncodeResponseFrame(resp), nullptr, true});
}

void CqcServer::MoveReadyToOutboxes() {
  std::vector<ReadyResponse> ready;
  {
    std::lock_guard<std::mutex> lk(ready_mu_);
    ready.swap(ready_);
  }
  for (auto& r : ready) {
    auto fit = conn_fds_.find(r.conn_id);
    if (fit == conn_fds_.end()) {
      // The client vanished while its request ran; the work is discarded,
      // never misdelivered (conn ids are unique for the server's life).
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection& conn = *conns_.at(fit->second);
    const bool has_body = r.body != nullptr && !r.body->empty();
    conn.outbox.push_back(OutChunk{std::move(r.head), nullptr, !has_body});
    if (has_body)
      conn.outbox.push_back(OutChunk{std::string(), std::move(r.body), true});
    if (conn.inflight > 0) --conn.inflight;
  }
}

void CqcServer::FlushConn(Connection& conn) {
  while (!conn.outbox.empty()) {
    const OutChunk& chunk = conn.outbox.front();
    const std::string& front = chunk.bytes();
    const ssize_t n = ::send(conn.fd, front.data() + conn.out_pos,
                             front.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConn(conn.id);
      return;
    }
    conn.out_pos += (size_t)n;
    if (conn.out_pos < front.size()) return;  // kernel buffer is full
    const bool ends = chunk.ends_response;
    conn.outbox.pop_front();
    conn.out_pos = 0;
    if (ends) responses_sent_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CqcServer::CloseConn(uint64_t conn_id) {
  auto fit = conn_fds_.find(conn_id);
  if (fit == conn_fds_.end()) return;
  const int fd = fit->second;
  ::close(fd);
  conn_fds_.erase(fit);
  conns_.erase(fd);
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
}

void CqcServer::SweepStalePartials() {
  if (options_.partial_frame_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<uint64_t> stale;
  for (const auto& [fd, conn] : conns_) {
    if (conn->has_partial &&
        now - conn->partial_since > options_.partial_frame_timeout)
      stale.push_back(conn->id);
  }
  for (uint64_t id : stale) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(id);
  }
}

// ---------------------------------------------------------------------------
// Worker threads.
// ---------------------------------------------------------------------------

CqcServer::Tenant* CqcServer::GetTenant(const std::string& name) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  std::unique_ptr<Tenant>& slot = tenants_[name];
  if (!slot) {
    slot = std::make_unique<Tenant>();
    slot->cache = std::make_unique<RepCache>(db_, options_.cache);
  }
  return slot.get();
}

void CqcServer::CompleteRequest(uint64_t conn_id, WireResponse resp,
                                Tenant* tenant,
                                std::shared_ptr<const std::string> body,
                                uint32_t body_rows) {
  if (tenant != nullptr)
    tenant->inflight.fetch_sub(1, std::memory_order_relaxed);
  inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
  if (resp.code == StatusCode::kOk)
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
  else
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
  std::string head = body != nullptr
                         ? EncodeResponseHead(resp, body_rows, body->size())
                         : EncodeResponseFrame(resp);
  {
    std::lock_guard<std::mutex> lk(ready_mu_);
    if (draining_) {
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ready_.push_back({conn_id, std::move(head), std::move(body)});
  }
  Wake();
}

DrainResult CqcServer::RunQueryDrain(const CachedRep& entry, const Tuple& vb,
                                     const RequestContext* ctx) const {
  DrainResult out;
  const int arity = entry.view().num_free();
  if (arity > 255) {
    out.status = Status::Error(
        StrFormat("view arity %d exceeds the wire limit of 255", arity));
    return out;
  }
  auto stream = entry.rep().Answer(vb, ctx);
  if (!stream.ok()) {
    out.status = stream.status();
    return out;
  }
  // A boolean view (num_free 0) enumerates the empty tuple when satisfied;
  // the wire cannot carry arity-0 rows, so it travels as arity 1 / value 1.
  const int wire_arity = arity == 0 ? 1 : arity;
  out.arity = (uint8_t)wire_arity;
  TupleEnumerator& e = *stream.value();
  constexpr size_t kBatch = 512;
  // Slice-interleaved drain: bounded-delay enumeration means each NextBatch
  // slice lands in bounded time, so the slice boundary is a natural yield
  // point. Yielding every few slices lets the poll loop read new frames and
  // parked workers attach to THIS drain while it runs — on a loaded box a
  // long drain coalesces requests that arrive mid-flight instead of only
  // those already queued when it started.
  constexpr size_t kYieldEvery = 8;
  size_t slices = 0;
  TupleBuffer batch(arity);
  for (;;) {
    batch.Clear();
    const size_t n = e.NextBatch(&batch, kBatch);
    for (size_t j = 0; j < n; ++j) {
      if (arity == 0) {
        out.values.push_back(1);
        continue;
      }
      const TupleSpan t = batch[j];
      out.values.insert(out.values.end(), t.data(), t.data() + t.size());
    }
    if (n < kBatch) break;
    if (++slices % kYieldEvery == 0) std::this_thread::yield();
  }
  if (Status s = e.StreamStatus(); !s.ok()) {
    // Fail clean: a response is all of the answer or none of it. Partial
    // rows from an aborted drain must never look like a complete result.
    out.status = s;
    out.values.clear();
  }
  return out;
}

void CqcServer::HandleRequest(uint64_t conn_id, WireRequest req,
                              uint64_t payload_offset) {
  WireResponse resp;
  resp.request_id = req.request_id;

  // Deadline propagation: the wire field becomes the RequestContext every
  // layer below polls. 0 means unbounded, which the server clamps to its
  // own maximum so a client cannot pin a worker forever.
  uint32_t deadline_ms = req.deadline_ms;
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms))
    deadline_ms = options_.max_deadline_ms;
  std::shared_ptr<const RequestContext> ctx;
  if (deadline_ms > 0)
    ctx = std::make_shared<RequestContext>(
        RequestContext::WithTimeout(std::chrono::milliseconds(deadline_ms)));

  // Admission: per-tenant inflight cap, checked before any real work.
  Tenant* tenant = GetTenant(req.tenant);
  if (tenant->inflight.fetch_add(1, std::memory_order_relaxed) >=
      options_.per_tenant_inflight) {
    admission_rejected_.fetch_add(1, std::memory_order_relaxed);
    resp.code = StatusCode::kUnavailable;
    resp.message =
        StrFormat("admission: tenant '%s' at its inflight limit (%zu)",
                  req.tenant.c_str(), options_.per_tenant_inflight);
    CompleteRequest(conn_id, std::move(resp), tenant);
    return;
  }

  // One grammar for the CLI and the wire: the body is a single script
  // line. Parse errors surface the ABSOLUTE wire offset of the offending
  // byte — payload start + fixed header + tenant + view + line offset.
  size_t line_off = kScriptNoOffset;
  auto parsed = ParseScriptLine(req.body, /*mutate_mode=*/true, &line_off);
  if (!parsed.ok()) {
    resp.code = StatusCode::kError;
    const uint64_t body_off = payload_offset + kRequestFixedBytes +
                              req.tenant.size() + req.view.size();
    if (line_off != kScriptNoOffset)
      resp.error_offset = ClampOffset(body_off + line_off);
    resp.message =
        StrFormat("%s (wire offset %llu)", parsed.status().message().c_str(),
                  (unsigned long long)(body_off +
                                       (line_off == kScriptNoOffset
                                            ? (size_t)0
                                            : line_off)));
    CompleteRequest(conn_id, std::move(resp), tenant);
    return;
  }
  const ScriptOp& op = parsed.value();

  if (op.kind == ScriptOp::Kind::kNoOp) {
    CompleteRequest(conn_id, std::move(resp), tenant);  // ping
    return;
  }
  if (op.kind == ScriptOp::Kind::kRebuild) {
    resp.code = StatusCode::kError;
    resp.message =
        "rebuild is not a wire operation: snapshot folds are scheduled by "
        "the cache's churn policy";
    CompleteRequest(conn_id, std::move(resp), tenant);
    return;
  }
  if (req.view.empty()) {
    resp.code = StatusCode::kError;
    resp.message = "request carries no view text";
    CompleteRequest(conn_id, std::move(resp), tenant);
    return;
  }

  // Everything else runs against the tenant's cached structure. Builds
  // are single-flighted inside RepCache; this Get may block on another
  // request's build, which is safe because the build leader was submitted
  // to the (FIFO) pool before any waiter.
  auto entry_result = tenant->cache->Get(req.view,
                                         options_.space_budget_exponent,
                                         ctx.get());
  if (!entry_result.ok()) {
    const Status& s = entry_result.status();
    resp.code = s.code() == StatusCode::kOk ? StatusCode::kError : s.code();
    resp.message = s.message();
    CompleteRequest(conn_id, std::move(resp), tenant);
    return;
  }
  std::shared_ptr<const CachedRep> entry =
      std::move(entry_result).value();

  switch (op.kind) {
    case ScriptOp::Kind::kStats: {
      resp.message = entry->rep().Describe();
      if (entry->degraded()) resp.message += " [degraded]";
      break;
    }
    case ScriptOp::Kind::kAggregate: {
      std::vector<int> group_vars;
      for (int i = 0; i < op.group_arity; ++i) group_vars.push_back(i);
      auto result =
          entry->rep().AnswerAggregate(op.values, group_vars, op.agg,
                                       ctx.get());
      if (!result.ok()) {
        const Status& s = result.status();
        resp.code = s.code() == StatusCode::kOk ? StatusCode::kError
                                                : s.code();
        resp.message = s.message();
        break;
      }
      // Row shape mirrors the CLI's text output: group key values, the
      // count, and (for SUM/MIN/MAX) the folded value.
      const AggregateResult& agg = result.value();
      const int has_value = agg.values.empty() ? 0 : 1;
      const int row_arity = agg.group_arity + 1 + has_value;
      if (row_arity > 255) {
        resp.code = StatusCode::kError;
        resp.message = "aggregate row arity exceeds the wire limit of 255";
        break;
      }
      resp.arity = (uint8_t)row_arity;
      resp.values.reserve(agg.num_groups() * (size_t)row_arity);
      for (size_t g = 0; g < agg.num_groups(); ++g) {
        for (int c = 0; c < agg.group_arity; ++c)
          resp.values.push_back(agg.keys[g * (size_t)agg.group_arity + c]);
        resp.values.push_back(agg.counts[g]);
        if (has_value) resp.values.push_back(agg.values[g]);
      }
      break;
    }
    case ScriptOp::Kind::kInsert:
    case ScriptOp::Kind::kDelete: {
      // Mutations flow into the tenant's cached (updatable) structures via
      // the cache — NEVER into db_, which is shared across every tenant
      // and unsynchronized by design (docs/serving.md#mutations).
      if (Status s = ValidateMutation(op, *db_); !s.ok()) {
        resp.code = StatusCode::kError;
        resp.message = s.message();
        break;
      }
      const UpdateBatch delta = {
          op.kind == ScriptOp::Kind::kInsert
              ? UpdateOp::Insert(op.relation, Tuple(op.values))
              : UpdateOp::Delete(op.relation, Tuple(op.values))};
      if (Status s = tenant->cache->ApplyDelta(entry->key(), delta);
          !s.ok()) {
        resp.code = s.code() == StatusCode::kOk ? StatusCode::kError
                                                : s.code();
        resp.message = s.message();
        break;
      }
      mutations_applied_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case ScriptOp::Kind::kQuery: {
      const bool coalesce =
          options_.coalesce_reads && !(req.flags & kFlagNoCoalesce);
      if (!coalesce) {
        DrainResult r = RunQueryDrain(*entry, op.values, ctx.get());
        if (!r.status.ok()) {
          resp.code = r.status.code() == StatusCode::kOk
                          ? StatusCode::kError
                          : r.status.code();
          resp.message = r.status.message();
        } else {
          resp.arity = r.arity;
          resp.values = std::move(r.values);
        }
        break;
      }
      // Coalesced read: key on the cached entry's identity plus the raw
      // body, so two requests share a drain only when they hit the same
      // structure generation with the same request line. The callback owns
      // the response; this worker returns immediately unless it leads.
      std::string key = StrFormat("%p|", (const void*)entry.get());
      key += req.body;
      auto callback = [this, conn_id, tenant, ctx,
                       request_id = req.request_id, entry](
                          std::shared_ptr<const DrainResult> r) {
        WireResponse out;
        out.request_id = request_id;
        if (Status s = RequestContext::Check(ctx.get()); !s.ok()) {
          // The waiter's own deadline expired while it was parked; its
          // failure code, not the leader's, is what the client sees.
          out.code = s.code();
          out.message = s.message();
        } else if (!r->status.ok()) {
          Status s = r->status;
          if (s.IsDeadlineExceeded() || s.IsCancelled())
            // The LEADER's deadline died, not this waiter's: to the waiter
            // that is a transient shared-resource failure, and retrying
            // (as a fresh leader) is exactly right.
            s = Status::Unavailable("shared drain aborted: " + s.message());
          out.code = s.code();
          out.message = s.message();
        } else {
          // Byte-identical rows for every waiter: the leader encoded the
          // values section once (r->body); this response only adds its own
          // small head, so a coalesced read costs O(1) extra copies no
          // matter how large the shared answer is.
          out.arity = r->arity;
          CompleteRequest(conn_id, std::move(out), tenant, r->body, r->rows);
          return;
        }
        CompleteRequest(conn_id, std::move(out), tenant);
      };
      if (coalescer_.Attach(key, std::move(callback))) {
        // This request leads: drain once, publish to everyone attached.
        const auto hold = ReadCoalescer::DrainHoldForTest();
        if (hold.count() > 0) std::this_thread::sleep_for(hold);
        DrainResult r = RunQueryDrain(*entry, op.values, ctx.get());
        if (r.status.ok()) {
          r.rows = (uint32_t)r.num_rows();
          r.body = std::make_shared<const std::string>(
              EncodeValuesBody(r.values));
          std::vector<uint64_t>().swap(r.values);
        }
        coalescer_.Complete(key,
                            std::make_shared<DrainResult>(std::move(r)));
      }
      return;  // response delivered (or parked) via the callback
    }
    case ScriptOp::Kind::kNoOp:
    case ScriptOp::Kind::kRebuild:
      break;  // handled above
  }
  CompleteRequest(conn_id, std::move(resp), tenant);
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

ServerStats CqcServer::stats() const {
  ServerStats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.sessions_refused = sessions_refused_.load(std::memory_order_relaxed);
  s.active_sessions = s.sessions_opened - s.sessions_closed;
  const bool running = started_.load() && !stopped_.load();
  // listener + both wake pipe ends while running, plus one fd per session.
  s.open_fds = s.active_sessions + (running ? 3 : 0);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  s.requests_dispatched =
      requests_dispatched_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.admission_rejected = admission_rejected_.load(std::memory_order_relaxed);
  s.pipeline_rejected = pipeline_rejected_.load(std::memory_order_relaxed);
  s.mutations_applied = mutations_applied_.load(std::memory_order_relaxed);
  s.inflight_requests = inflight_requests_.load(std::memory_order_relaxed);
  const CoalescerStats c = coalescer_.stats();
  s.shared_drains = c.shared_drains;
  s.coalesced_reads = c.coalesced_reads;
  s.failed_drains = c.failed_drains;
  return s;
}

RepCacheStats CqcServer::tenant_cache_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return RepCacheStats{};
  return it->second->cache->stats();
}

}  // namespace serve
}  // namespace cqc

// ReadCoalescer: single-flight for the READ path — the generalization of
// RepCache's single-flight builds (plan/rep_cache.h) to drains.
//
// K concurrent requests for the same (cached entry, request body) trigger
// exactly ONE drain of the structure; the other K-1 attach as waiters and
// are completed with the same shared, immutable DrainResult the moment the
// leader finishes — byte-identical rows for every waiter, which the lex
// order of the underlying enumeration makes deterministic. This is sound
// precisely because the paper's structures enumerate with bounded delay:
// the leader drains in fixed-size NextBatch slices, so the shared drain's
// time is proportional to the answer, and a waiter that arrives mid-drain
// waits at most the remaining slices — no request can be starved behind an
// unbounded scan (docs/serving.md maps this to Deep & Koutris's
// delay guarantee).
//
// Waiters never block a thread: attaching registers a completion callback
// and returns. Only the leader occupies a worker for the drain, so a pool
// smaller than the number of coalesced requests cannot deadlock.
#ifndef CQC_SERVE_COALESCER_H_
#define CQC_SERVE_COALESCER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cqc {
namespace serve {

/// The shared outcome of one drain. Immutable after completion; waiters
/// hold it by shared_ptr, so a slow writer can keep reading it after the
/// coalescer has moved on.
struct DrainResult {
  Status status;                 // OK, or why every attached request failed
  uint8_t arity = 0;
  std::vector<uint64_t> values;  // num_rows * arity, row-major (lex order)
  std::string text;              // stats/describe payloads (no rows)
  /// Wire-encoded values section (protocol.h EncodeValuesBody), produced
  /// once by the drain leader; every waiter's response frame references
  /// these bytes instead of copying `values` (which is then empty). `rows`
  /// carries the row count the emptied vector can no longer derive.
  std::shared_ptr<const std::string> body;
  uint32_t rows = 0;
  size_t num_rows() const {
    if (body) return rows;
    return arity == 0 ? 0 : values.size() / arity;
  }
};

struct CoalescerStats {
  uint64_t shared_drains = 0;    // drains actually executed
  uint64_t coalesced_reads = 0;  // requests served by someone else's drain
  uint64_t failed_drains = 0;    // drains that completed with !status.ok()
};

class ReadCoalescer {
 public:
  using Callback = std::function<void(std::shared_ptr<const DrainResult>)>;

  /// Attaches `cb` to the in-flight drain for `key`, creating one if none
  /// exists. Returns true iff the caller became the LEADER and must now
  /// perform the drain and hand the result to Complete(key, ...); false
  /// means the request is parked and `cb` fires on the leader's thread
  /// when the shared drain lands.
  bool Attach(const std::string& key, Callback cb);

  /// Completes the drain for `key`: publishes `result` to every attached
  /// callback (including the leader's). Only the leader calls this,
  /// exactly once per Attach that returned true.
  void Complete(const std::string& key,
                std::shared_ptr<const DrainResult> result);

  CoalescerStats stats() const;

  /// Test hook: the leader sleeps this long between winning Attach and
  /// its drain, widening the coalescing window so tests can assert
  /// "K concurrent identical queries -> exactly one drain"
  /// deterministically. 0 (the default) in production.
  static void SetDrainHoldForTest(std::chrono::milliseconds hold);
  static std::chrono::milliseconds DrainHoldForTest();

 private:
  struct InFlight {
    std::vector<Callback> waiters;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, InFlight> inflight_;
  CoalescerStats stats_;
};

}  // namespace serve
}  // namespace cqc

#endif  // CQC_SERVE_COALESCER_H_

#include "serve/coalescer.h"

#include "util/logging.h"

namespace cqc {
namespace serve {

namespace {
std::atomic<int64_t> g_drain_hold_ms{0};
}  // namespace

void ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds hold) {
  g_drain_hold_ms.store(hold.count(), std::memory_order_relaxed);
}

std::chrono::milliseconds ReadCoalescer::DrainHoldForTest() {
  return std::chrono::milliseconds(
      g_drain_hold_ms.load(std::memory_order_relaxed));
}

bool ReadCoalescer::Attach(const std::string& key, Callback cb) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = inflight_.try_emplace(key);
  it->second.waiters.push_back(std::move(cb));
  if (inserted) {
    ++stats_.shared_drains;
  } else {
    ++stats_.coalesced_reads;
  }
  return inserted;
}

void ReadCoalescer::Complete(const std::string& key,
                             std::shared_ptr<const DrainResult> result) {
  std::vector<Callback> waiters;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = inflight_.find(key);
    CQC_CHECK(it != inflight_.end()) << "Complete without Attach: " << key;
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
    if (!result->status.ok()) ++stats_.failed_drains;
  }
  // Callbacks run outside the lock: they serialize responses and touch the
  // server's outbox machinery, and a new Attach for the same key must not
  // deadlock behind them (it simply starts a fresh drain).
  for (Callback& cb : waiters) cb(result);
}

CoalescerStats ReadCoalescer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace cqc

// Blocking client for the cqc wire protocol — the counterpart tests and
// benchmarks speak to CqcServer with.
//
// Deliberately simple: one socket, blocking sends with a receive timeout,
// responses assembled through the same FrameReader the server uses (so the
// client rejects a malformed server stream with the same offsets). SendRaw
// exists for the protocol-robustness corpus: it writes arbitrary bytes —
// truncated frames, oversized prefixes, bit-flipped headers — straight to
// the socket.
#ifndef CQC_SERVE_CLIENT_H_
#define CQC_SERVE_CLIENT_H_

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "util/status.h"

namespace cqc {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects and arms `recv_timeout` as the socket receive timeout (a
  /// read past it fails instead of hanging the test forever).
  Status Connect(const std::string& host, int port,
                 std::chrono::milliseconds recv_timeout =
                     std::chrono::milliseconds(10'000));

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Frames and sends one request.
  Status Send(const WireRequest& req);

  /// Writes raw bytes verbatim — malformed-input corpus entry point.
  Status SendRaw(std::string_view bytes);

  /// Half-closes the write side (the server sees EOF; mid-frame this is
  /// the mid-frame-disconnect corpus case).
  void ShutdownWrite();

  /// Blocks for the next response frame. Fails on timeout, EOF, or a
  /// malformed server stream.
  Status ReadResponse(WireResponse* out);

  /// Send + ReadResponse; the convenience path for request/response tests.
  Status Call(const WireRequest& req, WireResponse* out);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::vector<char> chunk_;  // recv scratch, sized lazily on first read
};

}  // namespace serve
}  // namespace cqc

#endif  // CQC_SERVE_CLIENT_H_

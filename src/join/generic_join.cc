#include "join/generic_join.h"

#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

JoinIterator::JoinIterator(const std::vector<JoinAtomInput>* atoms,
                           int num_levels,
                           std::vector<LevelConstraint> constraints)
    : atoms_(atoms),
      num_levels_(num_levels),
      constraints_(std::move(constraints)) {
  CQC_CHECK_EQ((int)constraints_.size(), num_levels_);
  participants_.resize(num_levels_);
  range_stack_.resize(this->atoms().size());
  for (size_t a = 0; a < this->atoms().size(); ++a) {
    const JoinAtomInput& in = this->atoms()[a];
    if (in.start.empty()) empty_atom_ = true;
    range_stack_[a].assign(in.levels.size() + 1, in.start);
    int prev_join = -1, prev_trie = in.start_level - 1;
    for (size_t d = 0; d < in.levels.size(); ++d) {
      auto [join_level, trie_level] = in.levels[d];
      CQC_CHECK_GT(join_level, prev_join);
      CQC_CHECK_GT(trie_level, prev_trie);
      CQC_CHECK_LT(join_level, num_levels_);
      prev_join = join_level;
      prev_trie = trie_level;
      participants_[join_level].push_back({(int)a, trie_level, (int)d});
    }
  }
  for (int l = 0; l < num_levels_; ++l)
    CQC_CHECK(!participants_[l].empty())
        << "join level " << l << " has no participating atom";
  values_.assign(num_levels_, 0);
}

JoinIterator::JoinIterator(std::vector<JoinAtomInput> atoms, int num_levels,
                           std::vector<LevelConstraint> constraints)
    : JoinIterator(&atoms, num_levels, std::move(constraints)) {
  // The delegated ctor read from the caller's vector; adopt it afterwards
  // (element heap buffers are stable under vector move).
  owned_atoms_ = std::move(atoms);
  atoms_ = &owned_atoms_;
}

JoinIterator::JoinIterator(JoinIterator&& other) noexcept
    : owned_atoms_(std::move(other.owned_atoms_)),
      atoms_(other.atoms_ == &other.owned_atoms_ ? &owned_atoms_
                                                 : other.atoms_),
      num_levels_(other.num_levels_),
      constraints_(std::move(other.constraints_)),
      participants_(std::move(other.participants_)),
      range_stack_(std::move(other.range_stack_)),
      values_(std::move(other.values_)),
      started_(other.started_),
      done_(other.done_),
      empty_atom_(other.empty_atom_) {}

JoinIterator& JoinIterator::operator=(JoinIterator&& other) noexcept {
  if (this == &other) return *this;
  const bool owned = other.atoms_ == &other.owned_atoms_;
  owned_atoms_ = std::move(other.owned_atoms_);
  atoms_ = owned ? &owned_atoms_ : other.atoms_;
  num_levels_ = other.num_levels_;
  constraints_ = std::move(other.constraints_);
  participants_ = std::move(other.participants_);
  range_stack_ = std::move(other.range_stack_);
  values_ = std::move(other.values_);
  started_ = other.started_;
  done_ = other.done_;
  empty_atom_ = other.empty_atom_;
  return *this;
}

void JoinIterator::Reset(const std::vector<LevelConstraint>& constraints) {
  CQC_CHECK_EQ((int)constraints.size(), num_levels_);
  constraints_.assign(constraints.begin(), constraints.end());
  // Depth-0 ranges (the pre-bound starts) are never overwritten by
  // SeekLevel, and deeper entries are re-derived before use — nothing else
  // to restore.
  started_ = false;
  done_ = false;
}

Value JoinIterator::LevelStart(int level) const {
  const LevelConstraint& c = constraints_[level];
  switch (c.kind) {
    case FBoxDim::kUnit:
    case FBoxDim::kRange:
      return c.lo;
    case FBoxDim::kAny:
      return kBottom;
  }
  return kBottom;
}

bool JoinIterator::SeekLevel(int level, Value from) {
  const LevelConstraint& c = constraints_[level];
  Value v = from;
  if (c.kind != FBoxDim::kAny) {
    if (v < c.lo) v = c.lo;
    if (v > c.hi || c.lo > c.hi) return false;
  }
  const auto& parts = participants_[level];
  // Leapfrog: cycle until every participant agrees on v.
  size_t agreed = 0;
  size_t i = 0;
  while (agreed < parts.size()) {
    const Participant& p = parts[i];
    const SortedIndex& idx = *atoms()[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    ops::Bump();
    size_t pos = idx.LowerBound(parent, p.trie_level, v);
    if (pos >= parent.end) return false;
    Value got = idx.ValueAt(p.trie_level, pos);
    if (got > v) {
      if (c.kind == FBoxDim::kUnit) return false;
      if (c.kind == FBoxDim::kRange && got > c.hi) return false;
      v = got;
      agreed = 1;
    } else {
      ++agreed;
    }
    i = (i + 1) % parts.size();
  }
  // All participants contain v: record refined child ranges.
  for (const Participant& p : parts) {
    const SortedIndex& idx = *atoms()[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    size_t lo_pos = idx.LowerBound(parent, p.trie_level, v);
    size_t hi_pos = idx.UpperBound({lo_pos, parent.end}, p.trie_level, v);
    range_stack_[p.atom][p.depth + 1] = {lo_pos, hi_pos};
  }
  values_[level] = v;
  return true;
}

bool JoinIterator::AdvanceToMatch() {
  if (done_ || empty_atom_) {
    done_ = true;
    return false;
  }
  if (num_levels_ == 0) {
    // Pure existence check on pre-bound atoms: all start ranges nonempty.
    if (started_) {
      done_ = true;
      return false;
    }
    started_ = true;
    return true;
  }

  int level;
  bool advancing;  // move past values_[level] rather than start fresh
  if (!started_) {
    started_ = true;
    level = 0;
    advancing = false;
  } else {
    level = num_levels_ - 1;
    advancing = true;
  }

  for (;;) {
    Value from;
    if (advancing) {
      if (values_[level] == kTop) {
        from = 0;  // unreachable sentinel; force backtrack below
        --level;
        if (level < 0) {
          done_ = true;
          return false;
        }
        continue;
      }
      from = values_[level] + 1;
    } else {
      from = LevelStart(level);
    }
    if (SeekLevel(level, from)) {
      if (level == num_levels_ - 1) return true;
      ++level;
      advancing = false;
    } else {
      --level;
      if (level < 0) {
        done_ = true;
        return false;
      }
      advancing = true;
    }
  }
}

bool JoinIterator::Next(Tuple* out) {
  if (!AdvanceToMatch()) return false;
  *out = values_;
  return true;
}

size_t JoinIterator::ScanLastLevel(TupleBuffer* out, size_t max_tuples) {
  const int level = num_levels_ - 1;
  const auto& parts = participants_[level];
  if (parts.size() != 1) return 0;
  const LevelConstraint& c = constraints_[level];
  if (c.kind == FBoxDim::kUnit) return 0;  // a unit level has one match

  const Participant& p = parts[0];
  const SortedIndex& idx = *atoms()[p.atom].index;
  const RowRange parent = range_stack_[p.atom][p.depth];
  size_t pos = range_stack_[p.atom][p.depth + 1].end;  // past current run
  size_t emitted = 0;
  while (emitted < max_tuples && pos < parent.end) {
    const Value v = idx.ValueAt(p.trie_level, pos);
    if (c.kind == FBoxDim::kRange && v > c.hi) break;
    ops::Bump();
    // Find the run of rows equal to v; runs are short in practice, so a
    // linear probe beats re-seeking, with a binary-search fallback.
    size_t end = pos + 1;
    size_t probes = 0;
    while (end < parent.end && idx.ValueAt(p.trie_level, end) == v) {
      ++end;
      if (++probes >= 32) {
        end = idx.UpperBound({end, parent.end}, p.trie_level, v);
        break;
      }
    }
    Value* slot = out->AppendSlot();
    for (int l = 0; l < level; ++l) slot[l] = values_[l];
    slot[level] = v;
    values_[level] = v;
    range_stack_[p.atom][p.depth + 1] = {pos, end};
    pos = end;
    ++emitted;
  }
  return emitted;
}

size_t JoinIterator::NextBatch(TupleBuffer* out, size_t max_tuples) {
  size_t emitted = 0;
  const bool scannable =
      num_levels_ > 0 && participants_[num_levels_ - 1].size() == 1 &&
      constraints_[num_levels_ - 1].kind != FBoxDim::kUnit;
  while (emitted < max_tuples) {
    if (!AdvanceToMatch()) break;
    out->Append(values_);
    ++emitted;
    if (scannable && emitted < max_tuples)
      emitted += ScanLastLevel(out, max_tuples - emitted);
  }
  return emitted;
}

BoxJoinEnumerator::BoxJoinEnumerator(std::vector<JoinAtomInput> atoms,
                                     int num_levels, std::vector<FBox> boxes)
    : atoms_(std::move(atoms)),
      num_levels_(num_levels),
      boxes_(std::move(boxes)) {
  active_ = AdvanceBox();
}

bool BoxJoinEnumerator::AdvanceBox() {
  while (box_idx_ < boxes_.size()) {
    const FBox& box = boxes_[box_idx_++];
    CQC_CHECK_EQ(box.mu(), num_levels_);
    constraints_.clear();
    for (int i = 0; i < num_levels_; ++i)
      constraints_.push_back(LevelConstraint::FromDim(box.dims[i]));
    if (!join_.has_value()) {
      join_.emplace(&atoms_, num_levels_, constraints_);
    } else {
      join_->Reset(constraints_);
    }
    return true;
  }
  return false;
}

bool BoxJoinEnumerator::Next(Tuple* out) {
  while (active_) {
    if (join_->Next(out)) return true;
    active_ = AdvanceBox();
  }
  return false;
}

size_t BoxJoinEnumerator::NextBatch(TupleBuffer* out, size_t max_tuples) {
  size_t emitted = 0;
  while (active_ && emitted < max_tuples) {
    emitted += join_->NextBatch(out, max_tuples - emitted);
    if (emitted == max_tuples) break;  // the box may still have more
    active_ = AdvanceBox();
  }
  return emitted;
}

}  // namespace cqc

#include "join/generic_join.h"

#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

JoinIterator::JoinIterator(std::vector<JoinAtomInput> atoms, int num_levels,
                           std::vector<LevelConstraint> constraints)
    : atoms_(std::move(atoms)),
      num_levels_(num_levels),
      constraints_(std::move(constraints)) {
  CQC_CHECK_EQ((int)constraints_.size(), num_levels_);
  participants_.resize(num_levels_);
  range_stack_.resize(atoms_.size());
  for (size_t a = 0; a < atoms_.size(); ++a) {
    const JoinAtomInput& in = atoms_[a];
    if (in.start.empty()) empty_atom_ = true;
    range_stack_[a].assign(in.levels.size() + 1, in.start);
    int prev_join = -1, prev_trie = in.start_level - 1;
    for (size_t d = 0; d < in.levels.size(); ++d) {
      auto [join_level, trie_level] = in.levels[d];
      CQC_CHECK_GT(join_level, prev_join);
      CQC_CHECK_GT(trie_level, prev_trie);
      CQC_CHECK_LT(join_level, num_levels_);
      prev_join = join_level;
      prev_trie = trie_level;
      participants_[join_level].push_back({(int)a, trie_level, (int)d});
    }
  }
  for (int l = 0; l < num_levels_; ++l)
    CQC_CHECK(!participants_[l].empty())
        << "join level " << l << " has no participating atom";
  values_.assign(num_levels_, 0);
}

Value JoinIterator::LevelStart(int level) const {
  const LevelConstraint& c = constraints_[level];
  switch (c.kind) {
    case FBoxDim::kUnit:
    case FBoxDim::kRange:
      return c.lo;
    case FBoxDim::kAny:
      return kBottom;
  }
  return kBottom;
}

bool JoinIterator::SeekLevel(int level, Value from) {
  const LevelConstraint& c = constraints_[level];
  Value v = from;
  if (c.kind != FBoxDim::kAny) {
    if (v < c.lo) v = c.lo;
    if (v > c.hi || c.lo > c.hi) return false;
  }
  const auto& parts = participants_[level];
  // Leapfrog: cycle until every participant agrees on v.
  size_t agreed = 0;
  size_t i = 0;
  while (agreed < parts.size()) {
    const Participant& p = parts[i];
    const SortedIndex& idx = *atoms_[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    ops::Bump();
    size_t pos = idx.LowerBound(parent, p.trie_level, v);
    if (pos >= parent.end) return false;
    Value got = idx.ValueAt(p.trie_level, pos);
    if (got > v) {
      if (c.kind == FBoxDim::kUnit) return false;
      if (c.kind == FBoxDim::kRange && got > c.hi) return false;
      v = got;
      agreed = 1;
    } else {
      ++agreed;
    }
    i = (i + 1) % parts.size();
  }
  // All participants contain v: record refined child ranges.
  for (const Participant& p : parts) {
    const SortedIndex& idx = *atoms_[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    size_t lo_pos = idx.LowerBound(parent, p.trie_level, v);
    size_t hi_pos = idx.UpperBound({lo_pos, parent.end}, p.trie_level, v);
    range_stack_[p.atom][p.depth + 1] = {lo_pos, hi_pos};
  }
  values_[level] = v;
  return true;
}

bool JoinIterator::Next(Tuple* out) {
  if (done_ || empty_atom_) {
    done_ = true;
    return false;
  }
  if (num_levels_ == 0) {
    // Pure existence check on pre-bound atoms: all start ranges nonempty.
    done_ = true;
    out->clear();
    return true;
  }

  int level;
  bool advancing;  // move past values_[level] rather than start fresh
  if (!started_) {
    started_ = true;
    level = 0;
    advancing = false;
  } else {
    level = num_levels_ - 1;
    advancing = true;
  }

  for (;;) {
    Value from;
    if (advancing) {
      if (values_[level] == kTop) {
        from = 0;  // unreachable sentinel; force backtrack below
        --level;
        if (level < 0) {
          done_ = true;
          return false;
        }
        continue;
      }
      from = values_[level] + 1;
    } else {
      from = LevelStart(level);
    }
    if (SeekLevel(level, from)) {
      if (level == num_levels_ - 1) {
        *out = values_;
        return true;
      }
      ++level;
      advancing = false;
    } else {
      --level;
      if (level < 0) {
        done_ = true;
        return false;
      }
      advancing = true;
    }
  }
}

}  // namespace cqc

#include "join/generic_join.h"

#include "simd/kernels.h"
#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

JoinIterator::JoinIterator(const std::vector<JoinAtomInput>* atoms,
                           int num_levels,
                           std::vector<LevelConstraint> constraints)
    : atoms_(atoms),
      num_levels_(num_levels),
      constraints_(std::move(constraints)) {
  CQC_CHECK_EQ((int)constraints_.size(), num_levels_);
  participants_.resize(num_levels_);
  range_stack_.resize(this->atoms().size());
  for (size_t a = 0; a < this->atoms().size(); ++a) {
    const JoinAtomInput& in = this->atoms()[a];
    if (in.start.empty()) empty_atom_ = true;
    range_stack_[a].assign(in.levels.size() + 1, in.start);
    int prev_join = -1, prev_trie = in.start_level - 1;
    for (size_t d = 0; d < in.levels.size(); ++d) {
      auto [join_level, trie_level] = in.levels[d];
      CQC_CHECK_GT(join_level, prev_join);
      CQC_CHECK_GT(trie_level, prev_trie);
      CQC_CHECK_LT(join_level, num_levels_);
      prev_join = join_level;
      prev_trie = trie_level;
      participants_[join_level].push_back({(int)a, trie_level, (int)d});
    }
  }
  size_t max_parts = 0;
  for (int l = 0; l < num_levels_; ++l) {
    CQC_CHECK(!participants_[l].empty())
        << "join level " << l << " has no participating atom";
    max_parts = std::max(max_parts, participants_[l].size());
  }
  seek_pos_.assign(max_parts, 0);
  values_.assign(num_levels_, 0);
}

JoinIterator::JoinIterator(std::vector<JoinAtomInput> atoms, int num_levels,
                           std::vector<LevelConstraint> constraints)
    : JoinIterator(&atoms, num_levels, std::move(constraints)) {
  // The delegated ctor read from the caller's vector; adopt it afterwards
  // (element heap buffers are stable under vector move).
  owned_atoms_ = std::move(atoms);
  atoms_ = &owned_atoms_;
}

JoinIterator::JoinIterator(JoinIterator&& other) noexcept
    : owned_atoms_(std::move(other.owned_atoms_)),
      atoms_(other.atoms_ == &other.owned_atoms_ ? &owned_atoms_
                                                 : other.atoms_),
      num_levels_(other.num_levels_),
      constraints_(std::move(other.constraints_)),
      participants_(std::move(other.participants_)),
      range_stack_(std::move(other.range_stack_)),
      values_(std::move(other.values_)),
      seek_pos_(std::move(other.seek_pos_)),
      started_(other.started_),
      done_(other.done_),
      empty_atom_(other.empty_atom_) {}

JoinIterator& JoinIterator::operator=(JoinIterator&& other) noexcept {
  if (this == &other) return *this;
  const bool owned = other.atoms_ == &other.owned_atoms_;
  owned_atoms_ = std::move(other.owned_atoms_);
  atoms_ = owned ? &owned_atoms_ : other.atoms_;
  num_levels_ = other.num_levels_;
  constraints_ = std::move(other.constraints_);
  participants_ = std::move(other.participants_);
  range_stack_ = std::move(other.range_stack_);
  values_ = std::move(other.values_);
  seek_pos_ = std::move(other.seek_pos_);
  started_ = other.started_;
  done_ = other.done_;
  empty_atom_ = other.empty_atom_;
  return *this;
}

void JoinIterator::Reset(const std::vector<LevelConstraint>& constraints) {
  CQC_CHECK_EQ((int)constraints.size(), num_levels_);
  constraints_.assign(constraints.begin(), constraints.end());
  // Depth-0 ranges (the pre-bound starts) are never overwritten by
  // SeekLevel, and deeper entries are re-derived before use — nothing else
  // to restore.
  started_ = false;
  done_ = false;
}

Value JoinIterator::LevelStart(int level) const {
  const LevelConstraint& c = constraints_[level];
  switch (c.kind) {
    case FBoxDim::kUnit:
    case FBoxDim::kRange:
      return c.lo;
    case FBoxDim::kAny:
      return kBottom;
  }
  return kBottom;
}

bool JoinIterator::SeekLevel(int level, Value from, bool use_hints) {
  const LevelConstraint& c = constraints_[level];
  Value v = from;
  if (c.kind != FBoxDim::kAny) {
    if (v < c.lo) v = c.lo;
    if (v > c.hi || c.lo > c.hi) return false;
  }
  const auto& parts = participants_[level];
  const size_t k = parts.size();
  // Search cursors: when advancing past values_[level] under an unchanged
  // parent, everything before the previous refinement's end is < v, so the
  // gallop starts there (usually a direct hit on the next run).
  for (size_t j = 0; j < k; ++j) {
    const Participant& p = parts[j];
    seek_pos_[j] = use_hints ? range_stack_[p.atom][p.depth + 1].end
                             : range_stack_[p.atom][p.depth].begin;
  }
  // Leapfrog: cycle until every participant agrees on v.
  size_t agreed = 0;
  size_t i = 0;
  while (agreed < k) {
    const Participant& p = parts[i];
    const SortedIndex& idx = *atoms()[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    ops::Bump();
    const size_t pos = idx.SeekGE(parent, p.trie_level, v, seek_pos_[i]);
    if (pos >= parent.end) return false;
    seek_pos_[i] = pos;
    Value got = idx.ValueAt(p.trie_level, pos);
    if (got > v) {
      if (c.kind == FBoxDim::kUnit) return false;
      if (c.kind == FBoxDim::kRange && got > c.hi) return false;
      v = got;
      agreed = 1;
    } else {
      ++agreed;
    }
    i = (i + 1) % k;
  }
  // Every cursor sits on the first row of its v-run (the seek targets only
  // ever grew, so no position was overshot): record the refined child
  // ranges straight from the cursors — no re-search.
  for (size_t j = 0; j < k; ++j) {
    const Participant& p = parts[j];
    const SortedIndex& idx = *atoms()[p.atom].index;
    const RowRange parent = range_stack_[p.atom][p.depth];
    const size_t lo_pos = seek_pos_[j];
    range_stack_[p.atom][p.depth + 1] = {
        lo_pos, idx.RunEnd(parent, p.trie_level, lo_pos)};
  }
  values_[level] = v;
  return true;
}

bool JoinIterator::AdvanceToMatch() {
  if (done_ || empty_atom_) {
    done_ = true;
    return false;
  }
  if (num_levels_ == 0) {
    // Pure existence check on pre-bound atoms: all start ranges nonempty.
    if (started_) {
      done_ = true;
      return false;
    }
    started_ = true;
    return true;
  }

  int level;
  bool advancing;  // move past values_[level] rather than start fresh
  if (!started_) {
    started_ = true;
    level = 0;
    advancing = false;
  } else {
    level = num_levels_ - 1;
    advancing = true;
  }

  for (;;) {
    Value from;
    if (advancing) {
      if (values_[level] == kTop) {
        from = 0;  // unreachable sentinel; force backtrack below
        --level;
        if (level < 0) {
          done_ = true;
          return false;
        }
        continue;
      }
      from = values_[level] + 1;
    } else {
      from = LevelStart(level);
    }
    if (SeekLevel(level, from, /*use_hints=*/advancing)) {
      if (level == num_levels_ - 1) return true;
      ++level;
      advancing = false;
    } else {
      --level;
      if (level < 0) {
        done_ = true;
        return false;
      }
      advancing = true;
    }
  }
}

bool JoinIterator::Next(Tuple* out) {
  if (!AdvanceToMatch()) return false;
  *out = values_;
  return true;
}

size_t JoinIterator::ScanLastLevel(TupleBuffer* out, size_t max_tuples) {
  const int level = num_levels_ - 1;
  const auto& parts = participants_[level];
  const LevelConstraint& c = constraints_[level];
  if (c.kind == FBoxDim::kUnit) return 0;  // a unit level has one match
  const size_t k = parts.size();

  size_t emitted = 0;
  if (k == 1) {
    // Single participant: a raw walk of its sorted column, run by run. The
    // values_/range_stack_ book-keeping the generic path resumes from is
    // written back once on exit, not per tuple.
    const Participant& p = parts[0];
    const SortedIndex& idx = *atoms()[p.atom].index;
    const Value* col = idx.LevelData(p.trie_level);
    const RowRange parent = range_stack_[p.atom][p.depth];
    size_t pos = range_stack_[p.atom][p.depth + 1].end;  // past current run
    size_t run_begin = pos;
    Value v = 0;
    while (emitted < max_tuples && pos < parent.end) {
      v = col[pos];
      if (c.kind == FBoxDim::kRange && v > c.hi) break;
      ops::Bump();
      // Length-1 runs dominate set-semantics deepest levels: one inline
      // compare; real runs fall through to the block compare-and-count
      // kernel (which gallops past pathological ones).
      size_t end = pos + 1;
      if (end < parent.end && col[end] == v)
        end = simd::RunEnd(col, pos, parent.end);
      Value* slot = out->AppendSlot();
      for (int l = 0; l < level; ++l) slot[l] = values_[l];
      slot[level] = v;
      run_begin = pos;
      pos = end;
      ++emitted;
    }
    if (emitted > 0) {
      values_[level] = col[run_begin];
      range_stack_[p.atom][p.depth + 1] = {run_begin, pos};
    }
    return emitted;
  }
  while (emitted < max_tuples) {
    // Advance past the current runs and leapfrog the cursors to the next
    // value present in every participant. One participant degenerates to a
    // straight run-scan; several (a cyclic deepest level — the triangle's
    // z) make this a galloping intersection instead of a full re-seek
    // through AdvanceToMatch per output tuple.
    const Participant& p0 = parts[0];
    const SortedIndex& idx0 = *atoms()[p0.atom].index;
    const RowRange parent0 = range_stack_[p0.atom][p0.depth];
    const size_t pos0 = range_stack_[p0.atom][p0.depth + 1].end;
    if (pos0 >= parent0.end) return emitted;
    seek_pos_[0] = pos0;
    Value v = idx0.ValueAt(p0.trie_level, pos0);
    for (size_t j = 1; j < k; ++j)
      seek_pos_[j] = range_stack_[parts[j].atom][parts[j].depth + 1].end;

    size_t agreed = 1;
    size_t i = k > 1 ? 1 : 0;
    while (agreed < k) {
      const Participant& p = parts[i];
      const SortedIndex& idx = *atoms()[p.atom].index;
      const RowRange parent = range_stack_[p.atom][p.depth];
      const size_t pos = idx.SeekGE(parent, p.trie_level, v, seek_pos_[i]);
      if (pos >= parent.end) return emitted;
      seek_pos_[i] = pos;
      const Value got = idx.ValueAt(p.trie_level, pos);
      if (got > v) {
        v = got;
        agreed = 1;
      } else {
        ++agreed;
      }
      i = (i + 1) % k;
    }
    if (c.kind == FBoxDim::kRange && v > c.hi) return emitted;
    ops::Bump();

    for (size_t j = 0; j < k; ++j) {
      const Participant& p = parts[j];
      const SortedIndex& idx = *atoms()[p.atom].index;
      const RowRange parent = range_stack_[p.atom][p.depth];
      const size_t lo_pos = seek_pos_[j];
      range_stack_[p.atom][p.depth + 1] = {
          lo_pos, idx.RunEnd(parent, p.trie_level, lo_pos)};
    }
    Value* slot = out->AppendSlot();
    for (int l = 0; l < level; ++l) slot[l] = values_[l];
    slot[level] = v;
    values_[level] = v;
    ++emitted;
  }
  return emitted;
}

size_t JoinIterator::NextBatch(TupleBuffer* out, size_t max_tuples) {
  size_t emitted = 0;
  const bool scannable =
      num_levels_ > 0 && constraints_[num_levels_ - 1].kind != FBoxDim::kUnit;
  while (emitted < max_tuples) {
    if (!AdvanceToMatch()) break;
    out->Append(values_);
    ++emitted;
    if (scannable && emitted < max_tuples)
      emitted += ScanLastLevel(out, max_tuples - emitted);
  }
  return emitted;
}

BoxJoinEnumerator::BoxJoinEnumerator(std::vector<JoinAtomInput> atoms,
                                     int num_levels, std::vector<FBox> boxes)
    : atoms_(std::move(atoms)),
      num_levels_(num_levels),
      boxes_(std::move(boxes)) {
  active_ = AdvanceBox();
}

bool BoxJoinEnumerator::AdvanceBox() {
  while (box_idx_ < boxes_.size()) {
    const FBox& box = boxes_[box_idx_++];
    CQC_CHECK_EQ(box.mu(), num_levels_);
    constraints_.clear();
    for (int i = 0; i < num_levels_; ++i)
      constraints_.push_back(LevelConstraint::FromDim(box.dims[i]));
    if (!join_.has_value()) {
      join_.emplace(&atoms_, num_levels_, constraints_);
    } else {
      join_->Reset(constraints_);
    }
    return true;
  }
  return false;
}

bool BoxJoinEnumerator::Next(Tuple* out) {
  while (active_) {
    if (join_->Next(out)) return true;
    active_ = AdvanceBox();
  }
  return false;
}

size_t BoxJoinEnumerator::NextBatch(TupleBuffer* out, size_t max_tuples) {
  size_t emitted = 0;
  while (active_ && emitted < max_tuples) {
    emitted += join_->NextBatch(out, max_tuples - emitted);
    if (emitted == max_tuples) break;  // the box may still have more
    active_ = AdvanceBox();
  }
  return emitted;
}

}  // namespace cqc

// Streaming worst-case optimal join (Generic Join / leapfrog-style).
//
// This is the paper's evaluation substrate: Proposition 6 computes the join
// restricted to an f-box in time T(v, B) with a worst-case optimal
// algorithm, and Algorithm 2 streams those joins box by box. The iterator
// eliminates one join variable per level, intersecting the participating
// atoms' sorted trie ranges by mutual leapfrogging (seek to max, repeat),
// which costs O~(min-range) per emitted value — the standard WCOJ bound.
//
// Outputs are emitted in ascending lexicographic order of the join-level
// values, which is exactly the enumeration order Theorem 1 promises.
#ifndef CQC_JOIN_GENERIC_JOIN_H_
#define CQC_JOIN_GENERIC_JOIN_H_

#include <vector>

#include "core/finterval.h"
#include "relational/sorted_index.h"
#include "util/common.h"

namespace cqc {

/// Per-join-level value constraint (an f-box dimension).
struct LevelConstraint {
  FBoxDim::Kind kind = FBoxDim::kAny;
  Value lo = kBottom;
  Value hi = kTop;

  static LevelConstraint FromDim(const FBoxDim& d) {
    return {d.kind, d.lo, d.hi};
  }
  static LevelConstraint Any() { return {}; }
  static LevelConstraint Unit(Value v) { return {FBoxDim::kUnit, v, v}; }
};

/// One atom's participation in a join.
struct JoinAtomInput {
  const SortedIndex* index = nullptr;
  /// Trie range after pre-binding (e.g. the bound-variable prefix).
  RowRange start;
  /// First trie level not consumed by pre-binding.
  int start_level = 0;
  /// (join level, trie level) pairs, both strictly ascending. Trie levels
  /// past the last pair are left unconstrained. May be empty: the atom then
  /// acts as a pure existence filter (empty start range kills the join).
  std::vector<std::pair<int, int>> levels;
};

class JoinIterator {
 public:
  /// `constraints` has one entry per join level. Every join level must have
  /// at least one participating atom.
  JoinIterator(std::vector<JoinAtomInput> atoms, int num_levels,
               std::vector<LevelConstraint> constraints);

  /// Emits the next result into `out` (resized to num_levels). Returns
  /// false when exhausted. Results come in ascending lexicographic order.
  bool Next(Tuple* out);

 private:
  struct Participant {
    int atom;        // index into atoms_
    int trie_level;  // level within the atom's trie
    int depth;       // how many of the atom's join levels precede this one
  };

  // Seeks the smallest value >= `from` at `level` present in all
  // participants and allowed by the constraint; on success records the
  // refined ranges and the value. Returns false if none exists.
  bool SeekLevel(int level, Value from);

  // Smallest admissible start value for `level`.
  Value LevelStart(int level) const;

  std::vector<JoinAtomInput> atoms_;
  int num_levels_;
  std::vector<LevelConstraint> constraints_;
  std::vector<std::vector<Participant>> participants_;  // per level
  // range_stack_[a][d] = trie range of atom a after refining d of its join
  // levels (d = 0 is the start range).
  std::vector<std::vector<RowRange>> range_stack_;
  std::vector<Value> values_;  // current value per join level
  bool started_ = false;
  bool done_ = false;
  bool empty_atom_ = false;  // some existence filter failed up front
};

}  // namespace cqc

#endif  // CQC_JOIN_GENERIC_JOIN_H_

// Streaming worst-case optimal join (Generic Join / leapfrog-style).
//
// This is the paper's evaluation substrate: Proposition 6 computes the join
// restricted to an f-box in time T(v, B) with a worst-case optimal
// algorithm, and Algorithm 2 streams those joins box by box. The iterator
// eliminates one join variable per level, intersecting the participating
// atoms' sorted trie ranges by mutual leapfrogging (seek to max, repeat),
// which costs O~(min-range) per emitted value — the standard WCOJ bound.
//
// Outputs are emitted in ascending lexicographic order of the join-level
// values, which is exactly the enumeration order Theorem 1 promises.
#ifndef CQC_JOIN_GENERIC_JOIN_H_
#define CQC_JOIN_GENERIC_JOIN_H_

#include <optional>
#include <vector>

#include "core/enumerator.h"
#include "core/finterval.h"
#include "relational/sorted_index.h"
#include "util/common.h"
#include "util/tuple_buffer.h"

namespace cqc {

/// Per-join-level value constraint (an f-box dimension).
struct LevelConstraint {
  FBoxDim::Kind kind = FBoxDim::kAny;
  Value lo = kBottom;
  Value hi = kTop;

  static LevelConstraint FromDim(const FBoxDim& d) {
    return {d.kind, d.lo, d.hi};
  }
  static LevelConstraint Any() { return {}; }
  static LevelConstraint Unit(Value v) { return {FBoxDim::kUnit, v, v}; }
};

/// One atom's participation in a join.
struct JoinAtomInput {
  const SortedIndex* index = nullptr;
  /// Trie range after pre-binding (e.g. the bound-variable prefix).
  RowRange start;
  /// First trie level not consumed by pre-binding.
  int start_level = 0;
  /// (join level, trie level) pairs, both strictly ascending. Trie levels
  /// past the last pair are left unconstrained. May be empty: the atom then
  /// acts as a pure existence filter (empty start range kills the join).
  std::vector<std::pair<int, int>> levels;
};

class JoinIterator {
 public:
  /// `constraints` has one entry per join level. Every join level must have
  /// at least one participating atom.
  JoinIterator(std::vector<JoinAtomInput> atoms, int num_levels,
               std::vector<LevelConstraint> constraints);

  /// Borrowing variant: `atoms` must outlive the iterator. The hot callers
  /// (Algorithm 2 box streaming, dictionary probes) build the atom inputs
  /// once per request and re-run the join per f-box via Reset(), paying no
  /// per-box allocation.
  JoinIterator(const std::vector<JoinAtomInput>* atoms, int num_levels,
               std::vector<LevelConstraint> constraints);

  JoinIterator(JoinIterator&& other) noexcept;
  JoinIterator& operator=(JoinIterator&& other) noexcept;

  /// Rewinds the iterator to run again from the same atom inputs under new
  /// per-level constraints (e.g. the next f-box). Reuses every internal
  /// buffer: no allocation once the constraint capacity is warm.
  void Reset(const std::vector<LevelConstraint>& constraints);

  /// Emits the next result into `out` (resized to num_levels). Returns
  /// false when exhausted. Results come in ascending lexicographic order.
  bool Next(Tuple* out);

  /// Batch emission: appends up to `max_tuples` results to `out` (arity
  /// num_levels; not cleared) and returns the count; < max_tuples means
  /// exhausted. Shares the stream with Next(). Beyond skipping the
  /// per-tuple copy, the deepest level is drained by a direct scan: a
  /// single participant's sorted column is walked run by run, and multiple
  /// participants (cyclic queries — triangle, Loomis–Whitney) are merged by
  /// a galloping intersection over their refined ranges — either way no
  /// per-tuple re-seek through the full leapfrog machinery.
  size_t NextBatch(TupleBuffer* out, size_t max_tuples);

 private:
  struct Participant {
    int atom;        // index into atoms_
    int trie_level;  // level within the atom's trie
    int depth;       // how many of the atom's join levels precede this one
  };

  // Seeks the smallest value >= `from` at `level` present in all
  // participants and allowed by the constraint; on success records the
  // refined ranges and the value. Returns false if none exists. With
  // `use_hints`, each participant's search starts from its previous
  // refinement at this level (valid whenever the caller is advancing past
  // values_[level] under an unchanged parent range) — sequential seeks
  // then gallop O(1) instead of binary-searching the whole range.
  bool SeekLevel(int level, Value from, bool use_hints);

  // Smallest admissible start value for `level`.
  Value LevelStart(int level) const;

  // Positions the iterator on the next full match (values_ holds it).
  // Returns false when exhausted.
  bool AdvanceToMatch();

  // Fast path for NextBatch: with the iterator positioned on a match,
  // emits further matches that differ only in the last level. One
  // participant: a straight run-scan of its sorted column. Several
  // participants (cyclic deepest level): a galloping intersection over
  // their refined parent ranges. Leaves values_/range_stack_ consistent
  // for the generic path. Returns the number emitted.
  size_t ScanLastLevel(TupleBuffer* out, size_t max_tuples);

  const std::vector<JoinAtomInput>& atoms() const { return *atoms_; }

  // Either owns the inputs (owned_atoms_, atoms_ points at it) or borrows
  // a caller-owned vector. The custom move operations re-point atoms_ when
  // the owned storage moves.
  std::vector<JoinAtomInput> owned_atoms_;
  const std::vector<JoinAtomInput>* atoms_ = nullptr;
  int num_levels_;
  std::vector<LevelConstraint> constraints_;
  std::vector<std::vector<Participant>> participants_;  // per level
  // range_stack_[a][d] = trie range of atom a after refining d of its join
  // levels (d = 0 is the start range).
  std::vector<std::vector<RowRange>> range_stack_;
  std::vector<Value> values_;  // current value per join level
  // Scratch: per-participant search cursor of the level being sought
  // (everything before seek_pos_[i] is known < the current target value).
  std::vector<size_t> seek_pos_;
  bool started_ = false;
  bool done_ = false;
  bool empty_atom_ = false;  // some existence filter failed up front
};

/// Streams a worst-case-optimal join over a sequence of f-boxes: one
/// JoinIterator run per box, internal buffers reused via Reset(), outputs
/// in ascending lex order when the boxes are (Lemma 1 decompositions are).
/// This is the range-restriction primitive for join-backed enumerators:
/// BoxDecompose a lex interval, hand the boxes here, and the stream is the
/// full join clipped to that interval — the direct-eval counterpart of the
/// clipped Algorithm 2 traversal, and the per-shard worker for parallel
/// enumeration over baselines.
class BoxJoinEnumerator : public TupleEnumerator {
 public:
  /// `num_levels` is the join arity; every box must have that many dims.
  BoxJoinEnumerator(std::vector<JoinAtomInput> atoms, int num_levels,
                    std::vector<FBox> boxes);

  bool Next(Tuple* out) override;
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override;

 private:
  // Starts the join for boxes_[box_idx_]; false when every box is done.
  bool AdvanceBox();

  std::vector<JoinAtomInput> atoms_;  // owned; joins borrow via pointer
  int num_levels_;
  std::vector<FBox> boxes_;
  size_t box_idx_ = 0;
  std::optional<JoinIterator> join_;  // reused across boxes via Reset()
  std::vector<LevelConstraint> constraints_;
  bool active_ = false;
};

}  // namespace cqc

#endif  // CQC_JOIN_GENERIC_JOIN_H_

// BoundAtom: a view atom bound to its relation, split into bound / free
// columns, with the two sorted-trie access paths the paper's data structure
// needs:
//
//   * bf order  [bound cols..., free cols...]  — counting |R_F(v, B)|,
//     access-time joins over the free variables, and membership probes;
//   * fb order  [free cols..., bound cols...]  — counting |R_F(B)| with no
//     bound valuation, used while building the delay-balanced tree
//     (Algorithm 1 / Lemma 3).
//
// Free columns are ordered by the view's global free-variable order, so the
// constraints of a *canonical* f-box (unit prefix, one range, then
// unconstrained) always restrict a contiguous sorted range of the trie:
// every count is O(arity * log N).
#ifndef CQC_JOIN_BOUND_ATOM_H_
#define CQC_JOIN_BOUND_ATOM_H_

#include <vector>

#include "core/finterval.h"
#include "query/cq.h"
#include "relational/relation.h"
#include "relational/sorted_index.h"
#include "util/common.h"

namespace cqc {

class BoundAtom {
 public:
  /// Binds `atom` (a natural atom: distinct variables, no constants) to
  /// `rel`. `bound_order` / `free_order` give the view-level variable
  /// orders; every atom variable must appear in exactly one of them.
  BoundAtom(const Atom& atom, const Relation& rel,
            const std::vector<VarId>& bound_order,
            const std::vector<VarId>& free_order);

  const Relation& relation() const { return *rel_; }
  int num_bound() const { return (int)bound_positions_.size(); }
  int num_free() const { return (int)free_positions_.size(); }
  size_t relation_size() const { return rel_->size(); }

  /// Positions (indices into the view orders) of this atom's bound / free
  /// variables, ascending.
  const std::vector<int>& bound_positions() const { return bound_positions_; }
  const std::vector<int>& free_positions() const { return free_positions_; }

  /// Sorted distinct values this atom allows for the free variable at view
  /// free position `view_pos` (must be one of free_positions()).
  const std::vector<Value>& FreeDomain(int view_pos) const;

  /// |R_F ⋉ B| for a canonical f-box `box` over the view's free order.
  size_t CountBox(const FBox& box) const;

  /// |R_F(v) ⋉ B|: bound columns fixed by `bound_vals` (aligned with the
  /// view bound order), free columns restricted by canonical `box`.
  /// All valuation parameters are spans: callers pass views into arena /
  /// flat-pool storage (or Tuples, which convert) without materializing.
  size_t CountBoundBox(TupleSpan bound_vals, const FBox& box) const;

  /// |R_F(v)|: tuples matching the bound valuation.
  size_t CountBound(TupleSpan bound_vals) const;

  /// Trie range of the bf index after fixing the bound columns.
  RowRange SeekBound(TupleSpan bound_vals) const;

  /// Membership: does the relation contain the row given by `bound_vals`
  /// (view bound order) + `free_vals` (view free order)? O(1) expected via
  /// the relation's hash index (point probes never pay the sorted-trie
  /// log-factor; lex-range refinement stays on the tries).
  bool ContainsValuation(TupleSpan bound_vals, TupleSpan free_vals) const;

  /// Reusable scratch for FilterValuations (keys in schema order, the ids
  /// of the surviving tuples they came from, and the probe results).
  struct ProbeBatch {
    std::vector<Value> keys;
    std::vector<uint32_t> ids;
    std::vector<uint8_t> hits;
  };

  /// Batch ContainsValuation: clears keep[i] for every i in [0, n) where
  /// the relation does NOT contain (bound_vals, free tuple i); entries with
  /// keep[i] == 0 on entry are skipped. Free tuples are row-major in
  /// `free_vals`, `stride` values each. Scatters the survivors' keys into
  /// schema order once, then drives one prefetched batch hash probe instead
  /// of n dependent point probes.
  void FilterValuations(TupleSpan bound_vals, const Value* free_vals,
                        size_t stride, size_t n, uint8_t* keep,
                        ProbeBatch* ws) const;

  const SortedIndex& bf_index() const { return *bf_index_; }
  const SortedIndex& fb_index() const { return *fb_index_; }

  /// bf-trie level of the k-th bound column (= k) and of the free column
  /// with view position `view_pos`.
  int BfLevelOfFree(int view_pos) const;

 private:
  const Relation* rel_;
  std::vector<int> bound_positions_;  // view bound positions, ascending
  std::vector<int> bound_cols_;       // matching relation columns
  std::vector<int> free_positions_;   // view free positions, ascending
  std::vector<int> free_cols_;        // matching relation columns
  const SortedIndex* bf_index_;
  const SortedIndex* fb_index_;
};

/// Builds BoundAtoms for every atom of a natural-join view body.
/// `resolve(name)` must return the sealed relation for an atom.
template <typename Resolver>
std::vector<BoundAtom> BindAtoms(const ConjunctiveQuery& cq,
                                 const std::vector<VarId>& bound_order,
                                 const std::vector<VarId>& free_order,
                                 Resolver&& resolve) {
  std::vector<BoundAtom> out;
  out.reserve(cq.atoms().size());
  for (const Atom& atom : cq.atoms())
    out.emplace_back(atom, resolve(atom), bound_order, free_order);
  return out;
}

/// Binds one BoundAtom per atom over pre-resolved relations (`rels[i]` for
/// `cq.atoms()[i]`), fanning the per-atom index builds out on the shared
/// build pool when build parallelism is enabled and the caller is not
/// itself a pool task. Relation::GetIndex coalesces concurrent requests
/// for one permutation, so atoms sharing a relation stay correct. The
/// result order always matches the atom order (builds are deterministic
/// across thread counts).
std::vector<BoundAtom> BindAtomsParallel(
    const ConjunctiveQuery& cq, const std::vector<const Relation*>& rels,
    const std::vector<VarId>& bound_order,
    const std::vector<VarId>& free_order);

}  // namespace cqc

#endif  // CQC_JOIN_BOUND_ATOM_H_

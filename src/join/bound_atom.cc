#include "join/bound_atom.h"

#include <algorithm>
#include <optional>

#include "exec/par_util.h"
#include "exec/thread_pool.h"
#include "util/logging.h"

namespace cqc {
namespace {

int PositionIn(const std::vector<VarId>& order, VarId v) {
  for (size_t i = 0; i < order.size(); ++i)
    if (order[i] == v) return (int)i;
  return -1;
}

}  // namespace

BoundAtom::BoundAtom(const Atom& atom, const Relation& rel,
                     const std::vector<VarId>& bound_order,
                     const std::vector<VarId>& free_order)
    : rel_(&rel) {
  CQC_CHECK(atom.IsNaturalAtom())
      << "BoundAtom requires a natural atom (run NormalizeView first): "
      << atom.relation;
  CQC_CHECK_EQ(atom.arity(), rel.arity());

  // Collect (view position, relation column) for bound and free variables,
  // then sort by view position so trie levels follow the view orders.
  std::vector<std::pair<int, int>> bound, free;
  for (int col = 0; col < atom.arity(); ++col) {
    VarId v = atom.terms[col].var;
    int bp = PositionIn(bound_order, v);
    if (bp >= 0) {
      bound.emplace_back(bp, col);
      continue;
    }
    int fp = PositionIn(free_order, v);
    CQC_CHECK_GE(fp, 0) << "atom variable neither bound nor free";
    free.emplace_back(fp, col);
  }
  std::sort(bound.begin(), bound.end());
  std::sort(free.begin(), free.end());
  for (auto [pos, col] : bound) {
    bound_positions_.push_back(pos);
    bound_cols_.push_back(col);
  }
  for (auto [pos, col] : free) {
    free_positions_.push_back(pos);
    free_cols_.push_back(col);
  }

  std::vector<int> bf = bound_cols_;
  bf.insert(bf.end(), free_cols_.begin(), free_cols_.end());
  std::vector<int> fb = free_cols_;
  fb.insert(fb.end(), bound_cols_.begin(), bound_cols_.end());
  bf_index_ = &rel.GetIndex(bf);
  fb_index_ = &rel.GetIndex(fb);
}

const std::vector<Value>& BoundAtom::FreeDomain(int view_pos) const {
  for (size_t i = 0; i < free_positions_.size(); ++i)
    if (free_positions_[i] == view_pos)
      return rel_->ActiveDomain(free_cols_[i]);
  CQC_CHECK(false) << "atom has no free variable at view position "
                   << view_pos;
  __builtin_unreachable();
}

int BoundAtom::BfLevelOfFree(int view_pos) const {
  for (size_t i = 0; i < free_positions_.size(); ++i)
    if (free_positions_[i] == view_pos) return num_bound() + (int)i;
  return -1;
}

namespace {

// Walks the free levels of `idx` starting at `r` / `level`, applying the
// canonical box constraints for the atom's free view positions, and returns
// the final count. Constraints after a range must be kAny (canonical), so
// the walk stops at the first range / any.
size_t CountFreeLevels(const SortedIndex& idx, RowRange r, int level,
                       const std::vector<int>& free_positions,
                       const FBox& box) {
  for (size_t i = 0; i < free_positions.size() && !r.empty(); ++i) {
    const FBoxDim& dim = box.dims[free_positions[i]];
    switch (dim.kind) {
      case FBoxDim::kUnit:
        r = idx.Refine(r, level + (int)i, dim.lo);
        break;
      case FBoxDim::kRange:
        return idx.RefineRange(r, level + (int)i, dim.lo, dim.hi).size();
      case FBoxDim::kAny:
        return r.size();
    }
  }
  return r.size();
}

}  // namespace

size_t BoundAtom::CountBox(const FBox& box) const {
  return CountFreeLevels(*fb_index_, fb_index_->Root(), 0, free_positions_,
                         box);
}

RowRange BoundAtom::SeekBound(TupleSpan bound_vals) const {
  RowRange r = bf_index_->Root();
  for (size_t i = 0; i < bound_positions_.size() && !r.empty(); ++i)
    r = bf_index_->Refine(r, (int)i, bound_vals[bound_positions_[i]]);
  return r;
}

size_t BoundAtom::CountBoundBox(TupleSpan bound_vals, const FBox& box) const {
  RowRange r = SeekBound(bound_vals);
  if (r.empty()) return 0;
  return CountFreeLevels(*bf_index_, r, num_bound(), free_positions_, box);
}

size_t BoundAtom::CountBound(TupleSpan bound_vals) const {
  return SeekBound(bound_vals).size();
}

std::vector<BoundAtom> BindAtomsParallel(
    const ConjunctiveQuery& cq, const std::vector<const Relation*>& rels,
    const std::vector<VarId>& bound_order,
    const std::vector<VarId>& free_order) {
  const size_t num_atoms = cq.atoms().size();
  CQC_CHECK_EQ(rels.size(), num_atoms);
  std::vector<BoundAtom> atoms;
  atoms.reserve(num_atoms);
  if (num_atoms > 1 && par::BuildThreads() > 1 && !ThreadPool::InWorker()) {
    std::vector<std::optional<BoundAtom>> staged(num_atoms);
    // TaskGroup (not bare Submit+WaitIdle): a task dropped by a contained
    // exception or an injected thread_pool/task fault leaves its slot
    // empty — moving from it would be UB. Bind the missing atoms serially
    // instead.
    TaskGroup group(SharedBuildPool());
    for (size_t i = 0; i < num_atoms; ++i) {
      group.Submit([&, i] {
        staged[i].emplace(cq.atoms()[i], *rels[i], bound_order, free_order);
      });
    }
    group.Wait();
    for (size_t i = 0; i < num_atoms; ++i) {
      if (!staged[i].has_value())
        staged[i].emplace(cq.atoms()[i], *rels[i], bound_order, free_order);
      atoms.push_back(std::move(*staged[i]));
    }
  } else {
    for (size_t i = 0; i < num_atoms; ++i)
      atoms.emplace_back(cq.atoms()[i], *rels[i], bound_order, free_order);
  }
  return atoms;
}

bool BoundAtom::ContainsValuation(TupleSpan bound_vals,
                                  TupleSpan free_vals) const {
  // Point membership: scatter the valuation into schema column order (the
  // per-atom probe plan cached at bind time) and hit the relation's hash
  // index — one probe instead of a binary search per column.
  Value key[kMaxVars];
  for (size_t i = 0; i < bound_cols_.size(); ++i)
    key[bound_cols_[i]] = bound_vals[bound_positions_[i]];
  for (size_t i = 0; i < free_cols_.size(); ++i)
    key[free_cols_[i]] = free_vals[free_positions_[i]];
  return rel_->Contains(TupleSpan(key, (size_t)rel_->arity()));
}

void BoundAtom::FilterValuations(TupleSpan bound_vals, const Value* free_vals,
                                 size_t stride, size_t n, uint8_t* keep,
                                 ProbeBatch* ws) const {
  const size_t arity = (size_t)rel_->arity();
  // Bound columns are shared by every key in the block: scatter them once.
  Value key[kMaxVars];
  for (size_t i = 0; i < bound_cols_.size(); ++i)
    key[bound_cols_[i]] = bound_vals[bound_positions_[i]];
  ws->keys.clear();
  ws->ids.clear();
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    const Value* vf = free_vals + i * stride;
    for (size_t k = 0; k < free_cols_.size(); ++k)
      key[free_cols_[k]] = vf[free_positions_[k]];
    ws->keys.insert(ws->keys.end(), key, key + arity);
    ws->ids.push_back((uint32_t)i);
  }
  const size_t m = ws->ids.size();
  if (m == 0) return;
  ws->hits.assign(m, 0);
  rel_->ContainsBatch(ws->keys.data(), m, ws->hits.data());
  for (size_t j = 0; j < m; ++j)
    if (!ws->hits[j]) keep[ws->ids[j]] = 0;
}

}  // namespace cqc

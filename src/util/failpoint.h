// Failpoint framework: named fault-injection sites, zero-cost when off.
//
// A failpoint is a named site in production code where tests (or the
// CQC_FAILPOINTS env var) can inject a fault. Sites are declared inline:
//
//   Status RepFile::Open(...) {
//     CQC_FAILPOINT("rep_file/open");           // in a Status-returning fn
//     ...
//   }
//
// When the site is armed and fires, CQC_FAILPOINT returns
// Status::Unavailable("injected fault at <site>") from the enclosing
// function; CQC_FAILPOINT_RESULT does the same for Result<T>-returning
// functions, and failpoint::MaybeThrow() throws std::runtime_error for
// exercising exception-containment paths (ThreadPool workers).
//
// Fast path: a single process-wide relaxed atomic counter of armed sites.
// With nothing armed, a site is one relaxed load + predictable branch —
// cheap enough to leave in release builds on hot build/IO paths (it is
// deliberately NOT placed in per-tuple enumeration loops).
//
// Activation:
//   failpoint::Arm("site", {.probability = 1.0, .skip = 2, .max_fires = 1});
//   failpoint::ArmFromEnv();   // parses CQC_FAILPOINTS, see below
//   failpoint::DisarmAll();    // tests must clean up
//
// CQC_FAILPOINTS grammar (';'-separated specs):
//   site[=p[:skip[:max]]]    e.g. "rep_file/open;build/compressed=0.5:0:3"
// p = fire probability (default 1), skip = triggers to let pass first
// (default 0), max = total fires before auto-disarm (default unlimited).
#ifndef CQC_UTIL_FAILPOINT_H_
#define CQC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cqc {
namespace failpoint {

struct Spec {
  double probability = 1.0;  // chance each trigger fires once past `skip`
  uint64_t skip = 0;         // let this many triggers pass before firing
  uint64_t max_fires = 0;    // auto-disarm after this many fires; 0 = no cap
};

namespace internal {
extern std::atomic<int> armed_count;
// Slow path, called only when at least one site is armed anywhere.
bool ShouldFailSlow(std::string_view site);
}  // namespace internal

/// True iff any site is armed process-wide (relaxed; the release fence in
/// Arm() pairs with polling sites' acquire-free reads — exactness is not
/// required, tests arm before spawning load).
inline bool AnyArmed() {
  return internal::armed_count.load(std::memory_order_relaxed) > 0;
}

/// True iff `site` is armed and its spec says this trigger fires.
/// Counts the trigger either way (for skip/probability bookkeeping).
inline bool ShouldFail(std::string_view site) {
  if (!AnyArmed()) return false;
  return internal::ShouldFailSlow(site);
}

/// Arms `site`. Re-arming an armed site replaces its spec and resets its
/// trigger/fire counters.
void Arm(std::string_view site, Spec spec = {});

/// Disarms `site` (no-op if not armed).
void Disarm(std::string_view site);

/// Disarms everything and resets counters. Tests call this in TearDown.
void DisarmAll();

/// Times `site` has actually fired (0 if never armed).
uint64_t FireCount(std::string_view site);

/// Parses one spec string ("site[=p[:skip[:max]]]") and arms it.
/// Returns false (arming nothing) on malformed input.
bool ArmSpec(std::string_view spec);

/// Arms every ';'-separated spec in the CQC_FAILPOINTS env var. Returns
/// the number of sites armed. Called once from main() in tools.
int ArmFromEnv();

/// Names of all currently armed sites (for --failpoint diagnostics).
std::vector<std::string> ArmedSites();

/// Throws std::runtime_error if `site` fires. Only for call sites that
/// exercise exception containment (ThreadPool tasks); everything else
/// uses the Status-returning macros.
void MaybeThrow(std::string_view site);

/// The Status an injected fault surfaces as. Centralized so tests can
/// match on code + site name.
Status InjectedFault(std::string_view site);

}  // namespace failpoint
}  // namespace cqc

/// Returns Status::Unavailable from the enclosing function if `site` fires.
#define CQC_FAILPOINT(site)                                  \
  do {                                                       \
    if (::cqc::failpoint::ShouldFail(site)) {                \
      return ::cqc::failpoint::InjectedFault(site);          \
    }                                                        \
  } while (0)

/// Same, for functions returning Result<T> (or anything Status converts
/// to implicitly).
#define CQC_FAILPOINT_RESULT(site) CQC_FAILPOINT(site)

#endif  // CQC_UTIL_FAILPOINT_H_

// Minimal Status / Result for reporting user-input errors (query parsing,
// schema mismatches, invalid decompositions) without exceptions.
#ifndef CQC_UTIL_STATUS_H_
#define CQC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace cqc {

/// Outcome of a fallible operation: OK or an error message.
class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string msg) { return Status(std::move(msg)); }

  bool ok() const { return !msg_.has_value(); }
  const std::string& message() const {
    static const std::string kOk = "OK";
    return msg_ ? *msg_ : kOk;
  }

 private:
  explicit Status(std::string msg) : msg_(std::move(msg)) {}
  std::optional<std::string> msg_;
};

/// A value or an error. `value()` CHECK-fails on error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    CQC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& {
    CQC_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    CQC_CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cqc

#endif  // CQC_UTIL_STATUS_H_

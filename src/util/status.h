// Minimal Status / Result for reporting user-input errors (query parsing,
// schema mismatches, invalid decompositions) without exceptions.
//
// Statuses carry a coarse code so the serving layer can route failures:
// a kDeadlineExceeded from an expired RequestContext is the caller's
// fault and must not poison a negative cache or trigger a retry, while a
// kUnavailable (an injected or real I/O / build fault) is exactly what
// retry-with-backoff and degraded fallbacks exist for. Plain Error()
// stays the default for input-shaped failures.
#ifndef CQC_UTIL_STATUS_H_
#define CQC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace cqc {

enum class StatusCode : uint8_t {
  kOk = 0,
  kError,              // invalid input / failed precondition
  kDeadlineExceeded,   // a RequestContext deadline expired
  kCancelled,          // a RequestContext was cooperatively cancelled
  kUnavailable,        // transient fault (I/O error, injected failpoint,
                       // worker exception) — retryable
};

/// Printable code name ("OK", "DEADLINE_EXCEEDED", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: OK or an error code + message.
class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string msg) {
    return Status(StatusCode::kError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return !msg_.has_value(); }
  StatusCode code() const { return code_; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  const std::string& message() const {
    static const std::string kOk = "OK";
    return msg_ ? *msg_ : kOk;
  }

 private:
  Status(StatusCode code, std::string msg)
      : msg_(std::move(msg)), code_(code) {}
  std::optional<std::string> msg_;
  StatusCode code_ = StatusCode::kOk;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kError:
      return "ERROR";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// A value or an error. `value()` CHECK-fails on error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    CQC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& {
    CQC_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    CQC_CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cqc

#endif  // CQC_UTIL_STATUS_H_

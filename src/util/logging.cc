#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace cqc {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "%s:%d CHECK failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cqc

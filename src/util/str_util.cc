#include "util/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace cqc {

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace((unsigned char)s[b])) ++b;
  while (e > b && std::isspace((unsigned char)s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitAndStrip(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(StripWhitespace(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? n : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace cqc

// Per-request deadline + cooperative cancellation.
//
// A RequestContext is owned by the caller (CLI request loop, test, future
// cqc_server handler) and passed by const pointer through the serving
// stack (AnswerRep entry points, RepCache::GetView, ParallelEnumerator).
// It is polled — never enforced preemptively — at amortized-O(1) points:
// once per enumeration batch, per shard chunk, per dictionary row block,
// and between rep-build phases. A null context means "no deadline, not
// cancellable" and costs nothing.
//
// Cancel() may be called from any thread (e.g. a server dropping a
// disconnected client); the flag is a relaxed atomic because cancellation
// is advisory — the only guarantee is that polling sites observe it
// eventually, within one batch/chunk of work.
#ifndef CQC_UTIL_REQUEST_CONTEXT_H_
#define CQC_UTIL_REQUEST_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "util/status.h"

namespace cqc {

class RequestContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline; cancellable only via Cancel().
  RequestContext() = default;

  /// Absolute deadline.
  static RequestContext WithDeadline(Clock::time_point deadline) {
    RequestContext ctx;
    ctx.deadline_ = deadline;
    return ctx;
  }

  /// Deadline `timeout` from now.
  static RequestContext WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  // Movable (factories return by value) but not copyable: a context
  // identifies one request, and sharing the cancel flag across requests
  // is almost always a bug.
  RequestContext(RequestContext&& other) noexcept
      : deadline_(other.deadline_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  RequestContext& operator=(RequestContext&& other) noexcept {
    deadline_ = other.deadline_;
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// Marks the request cancelled. Thread-safe; polling sites observe it
  /// within one batch/chunk of work.
  void Cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  std::optional<Clock::time_point> deadline() const { return deadline_; }

  bool expired() const { return deadline_ && Clock::now() >= *deadline_; }

  /// OK while the request should keep running; kCancelled or
  /// kDeadlineExceeded once it should stop. Cancellation wins ties so a
  /// server tearing down a request gets a deterministic code.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("request cancelled");
    if (expired()) return Status::DeadlineExceeded("request deadline exceeded");
    return Status::Ok();
  }

  /// Check() on a possibly-null context: null means unbounded.
  static Status Check(const RequestContext* ctx) {
    return ctx ? ctx->Check() : Status::Ok();
  }

 private:
  std::optional<Clock::time_point> deadline_;
  // mutable: Cancel() is conceptually an external signal, not a mutation
  // of the request's identity, and the stack passes `const RequestContext*`.
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace cqc

#endif  // CQC_UTIL_REQUEST_CONTEXT_H_

// Wall-clock timing for the benchmark harness.
#ifndef CQC_UTIL_TIMER_H_
#define CQC_UTIL_TIMER_H_

#include <chrono>

namespace cqc {

/// Monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  /// Seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cqc

#endif  // CQC_UTIL_TIMER_H_

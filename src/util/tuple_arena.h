// TupleArena: a bump allocator for tuple payloads.
//
// The enumeration hot path produces and probes many short-lived tuples; a
// general-purpose allocator charges a malloc/free round trip plus pointer
// chasing for each. The arena hands out contiguous Value slots from large
// chunks instead: allocation is a pointer bump, deallocation is a single
// Reset() of the whole arena, and every span it returns stays valid until
// that Reset (so interned tuples can be shared by reference, see
// ProjectingEnumerator's dedup set).
//
// Thread safety — the read-only-after-seal contract. An arena is NOT safe
// for concurrent mutation: Alloc/Copy bump shared cursors and Reset frees
// chunks, so a reader on another thread holding a span from before the
// mutation may chase freed memory. An arena private to one enumerator
// (ProjectingEnumerator's dedup pool) may keep mutating single-threaded;
// an arena whose spans are published to other threads must first be
// Seal()ed, after which the payloads are immutable, concurrent readers
// need no synchronization, and any further Alloc/Reset aborts in
// debug/sanitizer builds (CQC_DCHECK) — the guard that enumeration never
// mutates a sealed structure.
#ifndef CQC_UTIL_TUPLE_ARENA_H_
#define CQC_UTIL_TUPLE_ARENA_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "util/common.h"
#include "util/logging.h"

namespace cqc {

class TupleArena {
 public:
  /// `chunk_values` is the default chunk capacity in Values (not bytes).
  explicit TupleArena(size_t chunk_values = 4096)
      : chunk_values_(chunk_values == 0 ? 1 : chunk_values) {}

  TupleArena(const TupleArena&) = delete;
  TupleArena& operator=(const TupleArena&) = delete;
  TupleArena(TupleArena&&) = default;
  TupleArena& operator=(TupleArena&&) = default;

  /// Returns `n` uninitialized contiguous Value slots. The slots stay valid
  /// until Reset() or destruction; n == 0 yields an empty ref.
  TupleRef Alloc(size_t n) {
    CQC_DCHECK(!sealed_) << "Alloc on a sealed arena";
    if (n == 0) return TupleRef();
    if (pos_ + n > cap_) Grow(n);
    Value* out = chunks_.back().get() + pos_;
    pos_ += n;
    return TupleRef(out, n);
  }

  /// Copies `t` into the arena and returns the stable copy.
  TupleRef Copy(TupleSpan t) {
    TupleRef ref = Alloc(t.size());
    if (!t.empty())
      std::memcpy(ref.data(), t.data(), t.size() * sizeof(Value));
    return ref;
  }

  /// Freezes the arena for lock-free sharing across threads: existing spans
  /// stay valid and immutable; further Alloc/Reset is a contract violation
  /// caught by CQC_DCHECK.
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }

  /// Invalidates every span handed out so far; keeps one chunk (grown to the
  /// largest capacity seen) so steady-state reuse stops allocating entirely.
  void Reset() {
    CQC_DCHECK(!sealed_) << "Reset on a sealed arena";
    if (chunks_.size() > 1) {
      chunks_.erase(chunks_.begin() + 1, chunks_.end());
      if (largest_cap_ > chunks_[0].capacity) {
        chunks_[0] = Chunk(largest_cap_);
      }
      total_capacity_ = chunks_[0].capacity;
    }
    cap_ = chunks_.empty() ? 0 : chunks_.back().capacity;
    pos_ = 0;
  }

  size_t MemoryBytes() const { return total_capacity_ * sizeof(Value); }

 private:
  struct Chunk {
    explicit Chunk(size_t cap)
        : values(std::make_unique<Value[]>(cap)), capacity(cap) {}
    std::unique_ptr<Value[]> values;
    size_t capacity;
    Value* get() const { return values.get(); }
  };

  void Grow(size_t min_values) {
    const size_t cap = std::max(chunk_values_, min_values);
    chunks_.push_back(Chunk(cap));
    total_capacity_ += cap;
    largest_cap_ = std::max(largest_cap_, cap);
    cap_ = cap;
    pos_ = 0;
  }

  size_t chunk_values_;
  bool sealed_ = false;
  std::vector<Chunk> chunks_;
  size_t pos_ = 0;          // bump cursor within the current chunk
  size_t cap_ = 0;          // capacity of the current chunk
  size_t largest_cap_ = 0;  // for Reset() chunk reuse
  size_t total_capacity_ = 0;
};

}  // namespace cqc

#endif  // CQC_UTIL_TUPLE_ARENA_H_

// TupleArena: a bump allocator for tuple payloads.
//
// The enumeration hot path produces and probes many short-lived tuples; a
// general-purpose allocator charges a malloc/free round trip plus pointer
// chasing for each. The arena hands out contiguous Value slots from large
// chunks instead: allocation is a pointer bump, deallocation is a single
// Reset() of the whole arena, and every span it returns stays valid until
// that Reset (so interned tuples can be shared by reference, see
// ProjectingEnumerator's dedup set).
#ifndef CQC_UTIL_TUPLE_ARENA_H_
#define CQC_UTIL_TUPLE_ARENA_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "util/common.h"

namespace cqc {

class TupleArena {
 public:
  /// `chunk_values` is the default chunk capacity in Values (not bytes).
  explicit TupleArena(size_t chunk_values = 4096)
      : chunk_values_(chunk_values == 0 ? 1 : chunk_values) {}

  TupleArena(const TupleArena&) = delete;
  TupleArena& operator=(const TupleArena&) = delete;
  TupleArena(TupleArena&&) = default;
  TupleArena& operator=(TupleArena&&) = default;

  /// Returns `n` uninitialized contiguous Value slots. The slots stay valid
  /// until Reset() or destruction; n == 0 yields an empty ref.
  TupleRef Alloc(size_t n) {
    if (n == 0) return TupleRef();
    if (pos_ + n > cap_) Grow(n);
    Value* out = chunks_.back().get() + pos_;
    pos_ += n;
    return TupleRef(out, n);
  }

  /// Copies `t` into the arena and returns the stable copy.
  TupleRef Copy(TupleSpan t) {
    TupleRef ref = Alloc(t.size());
    if (!t.empty())
      std::memcpy(ref.data(), t.data(), t.size() * sizeof(Value));
    return ref;
  }

  /// Invalidates every span handed out so far; keeps one chunk (grown to the
  /// largest capacity seen) so steady-state reuse stops allocating entirely.
  void Reset() {
    if (chunks_.size() > 1) {
      chunks_.erase(chunks_.begin() + 1, chunks_.end());
      if (largest_cap_ > chunks_[0].capacity) {
        chunks_[0] = Chunk(largest_cap_);
      }
      total_capacity_ = chunks_[0].capacity;
    }
    cap_ = chunks_.empty() ? 0 : chunks_.back().capacity;
    pos_ = 0;
  }

  size_t MemoryBytes() const { return total_capacity_ * sizeof(Value); }

 private:
  struct Chunk {
    explicit Chunk(size_t cap)
        : values(std::make_unique<Value[]>(cap)), capacity(cap) {}
    std::unique_ptr<Value[]> values;
    size_t capacity;
    Value* get() const { return values.get(); }
  };

  void Grow(size_t min_values) {
    const size_t cap = std::max(chunk_values_, min_values);
    chunks_.push_back(Chunk(cap));
    total_capacity_ += cap;
    largest_cap_ = std::max(largest_cap_, cap);
    cap_ = cap;
    pos_ = 0;
  }

  size_t chunk_values_;
  std::vector<Chunk> chunks_;
  size_t pos_ = 0;          // bump cursor within the current chunk
  size_t cap_ = 0;          // capacity of the current chunk
  size_t largest_cap_ = 0;  // for Reset() chunk reuse
  size_t total_capacity_ = 0;
};

}  // namespace cqc

#endif  // CQC_UTIL_TUPLE_ARENA_H_

// ColStore<T>: one flat column that either OWNS a std::vector<T> or BORROWS
// a read-only span of externally managed memory (an mmap'ed rep file).
//
// The serving structures (DelayBalancedTree, HeavyDictionary,
// PackedTuplePool) are struct-of-arrays over columns exactly like their
// on-disk blocks. A heap load copies each block into an owned vector; a
// zero-copy load points the column straight into the mapping. ColStore
// unifies the two behind one accessor surface so the hot paths stay
// branch-free: the data pointer and size are cached members, read access
// is a plain indexed load regardless of mode.
//
// Contract:
//   * Read access (data/size/operator[]/iterators) is always valid.
//   * Mutation (push_back/resize/assign/clear/mutable_data) is owned-mode
//     only and CHECK-fails on a borrowed column — a borrowed column aliases
//     a PROT_READ mapping, so a write would fault anyway; the CHECK turns
//     that into a diagnosable contract violation.
//   * A borrowed column does NOT keep its backing alive. The owner of the
//     mapping (core/rep_file.h held by the CompressedRep) must outlive
//     every structure borrowing from it.
//   * Copying deep-copies an owned column and aliases a borrowed one
//     (both copies then borrow the same backing).
#ifndef CQC_UTIL_COL_STORE_H_
#define CQC_UTIL_COL_STORE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace cqc {

template <typename T>
class ColStore {
 public:
  ColStore() = default;

  /// Takes ownership of `v` (implicit: vector call sites keep working).
  ColStore(std::vector<T> v)  // NOLINT implicit
      : own_(std::move(v)), data_(own_.data()), size_(own_.size()) {}

  /// Borrowed view over `[data, data + n)`; the backing must outlive this.
  static ColStore Borrow(const T* data, size_t n) {
    ColStore c;
    c.borrowed_ = true;
    c.data_ = data;
    c.size_ = n;
    return c;
  }

  ColStore(const ColStore& o) { *this = o; }
  ColStore& operator=(const ColStore& o) {
    if (this == &o) return *this;
    own_ = o.own_;
    borrowed_ = o.borrowed_;
    data_ = borrowed_ ? o.data_ : own_.data();
    size_ = o.size_;
    return *this;
  }
  ColStore(ColStore&& o) noexcept { *this = std::move(o); }
  ColStore& operator=(ColStore&& o) noexcept {
    if (this == &o) return *this;
    own_ = std::move(o.own_);
    borrowed_ = o.borrowed_;
    data_ = borrowed_ ? o.data_ : own_.data();
    size_ = o.size_;
    o.own_.clear();
    o.borrowed_ = false;
    o.data_ = nullptr;
    o.size_ = 0;
    return *this;
  }

  // --- read access (both modes) --------------------------------------------
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  bool borrowed() const { return borrowed_; }

  /// Logical payload bytes (both modes).
  size_t ByteSize() const { return size_ * sizeof(T); }
  /// Heap footprint: allocation for owned columns, 0 for borrowed ones
  /// (the pages belong to the mapping and are charged via the RepFile).
  size_t MemoryBytes() const {
    return borrowed_ ? 0 : own_.capacity() * sizeof(T);
  }

  // --- mutation (owned mode only) ------------------------------------------
  T* mutable_data() {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    return own_.data();
  }
  void push_back(const T& v) {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    own_.push_back(v);
    Sync();
  }
  void resize(size_t n, const T& v = T()) {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    own_.resize(n, v);
    Sync();
  }
  void assign(size_t n, const T& v) {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    own_.assign(n, v);
    Sync();
  }
  void reserve(size_t n) {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    own_.reserve(n);
    Sync();
  }
  void clear() {
    CQC_CHECK(!borrowed_) << "mutating a borrowed (mapped) column";
    own_.clear();
    own_.shrink_to_fit();
    Sync();
  }

 private:
  void Sync() {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  bool borrowed_ = false;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cqc

#endif  // CQC_UTIL_COL_STORE_H_

// Small string helpers shared by the query parser and report printers.
#ifndef CQC_UTIL_STR_UTIL_H_
#define CQC_UTIL_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqc {

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, strips each piece; empty pieces are kept.
std::vector<std::string_view> SplitAndStrip(std::string_view s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace cqc

#endif  // CQC_UTIL_STR_UTIL_H_

#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace cqc {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  CQC_CHECK_GT(n, 0u);
  // Rejection to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  CQC_CHECK_LE(lo, hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow((double)i, theta);
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  CQC_CHECK_GT(n, 0u);
  if (theta_ <= 0) return;  // uniform fallback
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / (double)n_, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (theta_ <= 0) return rng.Uniform(n_);
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v =
      (uint64_t)((double)n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace cqc

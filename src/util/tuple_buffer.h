// TupleBuffer: a caller-owned flat buffer of fixed-arity tuples, the unit of
// the batch enumeration API (TupleEnumerator::NextBatch).
//
// Tuples live back to back in one contiguous Value array — no per-tuple
// allocation, no pointer indirection — so filling a batch is a sequence of
// bump-and-memcpy appends and draining one is a linear scan. Growth leaves
// new slots uninitialized (AppendSlot hands the raw slot to the producer),
// which keeps the append fast path to a capacity check and a pointer bump.
// The buffer is meant to be reused across batches: Clear() keeps the
// capacity.
#ifndef CQC_UTIL_TUPLE_BUFFER_H_
#define CQC_UTIL_TUPLE_BUFFER_H_

#include <cstring>
#include <memory>
#include <vector>

#include "util/common.h"
#include "util/logging.h"

namespace cqc {

class TupleBuffer {
 public:
  /// All tuples in the buffer share this arity (>= 0; arity 0 supports
  /// boolean views, whose single output is the empty tuple).
  explicit TupleBuffer(int arity) : arity_(arity) {
    CQC_CHECK_GE(arity, 0);
  }

  TupleBuffer(TupleBuffer&&) = default;
  TupleBuffer& operator=(TupleBuffer&&) = default;

  int arity() const { return arity_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Drops all tuples but keeps the allocation.
  void Clear() {
    count_ = 0;
    used_ = 0;
  }

  void Reserve(size_t num_tuples) { Grow(num_tuples * arity_); }

  /// Appends one uninitialized tuple and returns a pointer to its `arity()`
  /// slots (nullptr when arity is 0 — the tuple still counts).
  Value* AppendSlot() {
    ++count_;
    if (arity_ == 0) return nullptr;
    if (used_ + arity_ > cap_) Grow(used_ + arity_);
    Value* slot = data_.get() + used_;
    used_ += arity_;
    return slot;
  }

  /// Appends a copy of `t` (its size must equal arity()).
  void Append(TupleSpan t) {
    CQC_CHECK_EQ(t.size(), (size_t)arity_);
    Value* slot = AppendSlot();
    if (arity_ > 0) std::memcpy(slot, t.data(), arity_ * sizeof(Value));
  }

  TupleSpan operator[](size_t i) const {
    return TupleSpan(data_.get() + i * arity_, arity_);
  }
  TupleSpan back() const { return (*this)[count_ - 1]; }

  /// The flat row-major payload (size() * arity() values).
  const Value* data() const { return data_.get(); }

  /// Materializes owning tuples (tests / interop with legacy call sites).
  std::vector<Tuple> ToTuples() const {
    std::vector<Tuple> out;
    out.reserve(count_);
    for (size_t i = 0; i < count_; ++i) out.push_back((*this)[i].ToTuple());
    return out;
  }

 private:
  void Grow(size_t min_values) {
    if (min_values <= cap_) return;
    size_t cap = cap_ == 0 ? 64 : cap_;
    while (cap < min_values) cap *= 2;
    std::unique_ptr<Value[]> grown(new Value[cap]);
    if (used_ > 0) std::memcpy(grown.get(), data_.get(), used_ * sizeof(Value));
    data_ = std::move(grown);
    cap_ = cap;
  }

  int arity_;
  size_t count_ = 0;  // tuples
  size_t used_ = 0;   // values
  size_t cap_ = 0;    // values
  std::unique_ptr<Value[]> data_;
};

}  // namespace cqc

#endif  // CQC_UTIL_TUPLE_BUFFER_H_

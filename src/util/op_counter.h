// A thread-local operation counter used as a machine-independent clock.
//
// Delay (the gap between consecutive enumerated tuples) is the paper's central
// online metric; wall-clock gaps at nanosecond scale are dominated by noise,
// so every index probe and join step bumps this counter and the harness
// measures delay in "operations" as well as in time.
#ifndef CQC_UTIL_OP_COUNTER_H_
#define CQC_UTIL_OP_COUNTER_H_

#include <cstdint>

namespace cqc {
namespace ops {

inline thread_local uint64_t counter = 0;

/// Record `n` abstract operations (binary-search probes, join steps, ...).
inline void Bump(uint64_t n = 1) { counter += n; }

/// Current per-thread operation count.
inline uint64_t Now() { return counter; }

// Access-path accounting for the index-selection policy (hash for point
// probes, sorted tries for lex-range seeks). Same thread-local idiom as the
// delay clock: the hot paths pay one register add, and callers snapshot
// deltas around a region to attribute probes to it.
inline thread_local uint64_t hash_point_probes = 0;
inline thread_local uint64_t sorted_range_seeks = 0;

inline void BumpHashProbe() { ++hash_point_probes; }
inline void BumpRangeSeek() { ++sorted_range_seeks; }

}  // namespace ops
}  // namespace cqc

#endif  // CQC_UTIL_OP_COUNTER_H_

#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace cqc {
namespace failpoint {

namespace internal {
std::atomic<int> armed_count{0};
}  // namespace internal

namespace {

struct SiteState {
  Spec spec;
  uint64_t triggers = 0;  // times the site was reached while armed
  uint64_t fires = 0;     // times it actually injected a fault
  bool armed = false;     // false once max_fires exhausted (kept for counts)
};

struct Registry {
  std::mutex mu;
  // std::map keeps iteration deterministic for ArmedSites(); the registry
  // is only touched on the slow path so lookup cost is irrelevant.
  std::map<std::string, SiteState, std::less<>> sites;
  // Deterministic pseudo-randomness for probability mode: tests that seed
  // the same arm sequence see the same fire pattern. xorshift64* is
  // plenty — this gates fault injection, not cryptography.
  uint64_t rng_state = 0x9e3779b97f4a7c15ull;

  double NextUniform() {
    uint64_t x = rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state = x;
    return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) /
           static_cast<double>(1ull << 53);
  }
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

}  // namespace

namespace internal {

bool ShouldFailSlow(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return false;
  SiteState& s = it->second;
  s.triggers++;
  if (s.triggers <= s.spec.skip) return false;
  if (s.spec.probability < 1.0 && r.NextUniform() >= s.spec.probability) {
    return false;
  }
  s.fires++;
  if (s.spec.max_fires > 0 && s.fires >= s.spec.max_fires) {
    s.armed = false;
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace internal

void Arm(std::string_view site, Spec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.try_emplace(std::string(site));
  if (inserted || !it->second.armed) {
    internal::armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = SiteState{spec, /*triggers=*/0, /*fires=*/0, /*armed=*/true};
}

void Disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, state] : r.sites) {
    if (state.armed) {
      state.armed = false;
      internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  r.sites.clear();
}

uint64_t FireCount(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedSites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, state] : r.sites) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

bool ArmSpec(std::string_view spec) {
  // site[=p[:skip[:max]]]
  std::string_view site = spec;
  Spec parsed;
  auto eq = spec.find('=');
  if (eq != std::string_view::npos) {
    site = spec.substr(0, eq);
    std::string rest(spec.substr(eq + 1));
    char* end = nullptr;
    parsed.probability = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str() || parsed.probability < 0.0 ||
        parsed.probability > 1.0) {
      return false;
    }
    if (*end == ':') {
      const char* p = end + 1;
      parsed.skip = std::strtoull(p, &end, 10);
      if (end == p) return false;
      if (*end == ':') {
        p = end + 1;
        parsed.max_fires = std::strtoull(p, &end, 10);
        if (end == p) return false;
      }
    }
    if (*end != '\0') return false;
  }
  if (site.empty()) return false;
  Arm(site, parsed);
  return true;
}

int ArmFromEnv() {
  const char* env = std::getenv("CQC_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  int armed = 0;
  std::string_view remaining(env);
  while (!remaining.empty()) {
    auto semi = remaining.find(';');
    std::string_view one = remaining.substr(0, semi);
    remaining = semi == std::string_view::npos ? std::string_view()
                                               : remaining.substr(semi + 1);
    if (!one.empty() && ArmSpec(one)) armed++;
  }
  return armed;
}

void MaybeThrow(std::string_view site) {
  if (ShouldFail(site)) {
    throw std::runtime_error("injected exception at " + std::string(site));
  }
}

Status InjectedFault(std::string_view site) {
  return Status::Unavailable("injected fault at " + std::string(site));
}

}  // namespace failpoint
}  // namespace cqc

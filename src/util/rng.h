// Deterministic random number generation for workload synthesis.
// All generators in src/workload take an explicit seed so every experiment
// is reproducible bit-for-bit across runs and machines.
#ifndef CQC_UTIL_RNG_H_
#define CQC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace cqc {

/// xoshiro256** seeded via splitmix64. Not cryptographic; fast and portable.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(n, theta) sampler over {0, .., n-1} using the rejection-inversion
/// method; theta = 0 degenerates to uniform. Used for skewed workloads
/// (e.g. the DBLP-style author-paper data of the paper's intro).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);
  uint64_t Sample(Rng& rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace cqc

#endif  // CQC_UTIL_RNG_H_

// Basic shared type aliases for the cqc library.
//
// The paper works over an abstract ordered domain `dom`; we fix it to 64-bit
// unsigned integers (uniform-cost RAM model, values of constant size), which
// loses no generality: string dictionaries can map any domain onto dense ids.
#ifndef CQC_UTIL_COMMON_H_
#define CQC_UTIL_COMMON_H_

#include <cstdint>
#include <vector>

namespace cqc {

/// A constant from the data domain `dom`.
using Value = uint64_t;

/// A query variable identifier: dense index into a query's variable table.
using VarId = int32_t;

/// A tuple of domain constants. Layout matches some schema known from context.
using Tuple = std::vector<Value>;

/// Maximum number of distinct variables a query may use. Hypergraph edges are
/// stored as 64-bit variable bitsets, so this cannot exceed 64.
inline constexpr int kMaxVars = 64;

/// Bitset of variables (bit i set <=> variable with VarId i present).
using VarSet = uint64_t;

inline VarSet VarBit(VarId v) { return VarSet{1} << v; }
inline bool VarSetContains(VarSet s, VarId v) { return (s >> v) & 1; }
inline int VarSetSize(VarSet s) { return __builtin_popcountll(s); }

}  // namespace cqc

#endif  // CQC_UTIL_COMMON_H_

// Basic shared type aliases for the cqc library.
//
// The paper works over an abstract ordered domain `dom`; we fix it to 64-bit
// unsigned integers (uniform-cost RAM model, values of constant size), which
// loses no generality: string dictionaries can map any domain onto dense ids.
#ifndef CQC_UTIL_COMMON_H_
#define CQC_UTIL_COMMON_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace cqc {

/// A constant from the data domain `dom`.
using Value = uint64_t;

/// A query variable identifier: dense index into a query's variable table.
using VarId = int32_t;

/// A tuple of domain constants. Layout matches some schema known from context.
using Tuple = std::vector<Value>;

/// A non-owning read-only view of a tuple: pointer + arity into storage owned
/// elsewhere (a Tuple, a TupleArena, a TupleBuffer, or a flat node pool). The
/// probe paths (index seeks, membership checks, cost counts) take TupleSpan so
/// enumeration never has to materialize a std::vector just to look a row up.
/// A span must not outlive the storage it points into.
class TupleSpan {
 public:
  constexpr TupleSpan() = default;
  constexpr TupleSpan(const Value* data, size_t size)
      : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Tuple call sites stay valid.
  TupleSpan(const Tuple& t) : data_(t.data()), size_(t.size()) {}
  // No initializer_list constructor on purpose: `TupleSpan s = {1, 2};`
  // would dangle the moment the statement ends. Brace call sites pass an
  // explicit `Tuple{1, 2}` temporary instead (alive for the full
  // expression, and visibly an allocation).

  const Value* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](size_t i) const { return data_[i]; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }
  Value front() const { return data_[0]; }
  Value back() const { return data_[size_ - 1]; }

  /// Materializes an owning copy.
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  friend bool operator==(TupleSpan a, TupleSpan b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  /// Lexicographic order (shorter prefix sorts first, as for Tuple).
  friend bool operator<(TupleSpan a, TupleSpan b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

/// A non-owning mutable view of a tuple. Converts to TupleSpan.
class TupleRef {
 public:
  constexpr TupleRef() = default;
  constexpr TupleRef(Value* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TupleRef(Tuple& t) : data_(t.data()), size_(t.size()) {}

  Value* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value& operator[](size_t i) const { return data_[i]; }
  Value* begin() const { return data_; }
  Value* end() const { return data_ + size_; }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator TupleSpan() const { return TupleSpan(data_, size_); }
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

 private:
  Value* data_ = nullptr;
  size_t size_ = 0;
};

/// Maximum number of distinct variables a query may use. Hypergraph edges are
/// stored as 64-bit variable bitsets, so this cannot exceed 64.
inline constexpr int kMaxVars = 64;

/// Bitset of variables (bit i set <=> variable with VarId i present).
using VarSet = uint64_t;

inline VarSet VarBit(VarId v) { return VarSet{1} << v; }
inline bool VarSetContains(VarSet s, VarId v) { return (s >> v) & 1; }
inline int VarSetSize(VarSet s) { return __builtin_popcountll(s); }

}  // namespace cqc

#endif  // CQC_UTIL_COMMON_H_

// Hashing helpers for tuples of domain values.
#ifndef CQC_UTIL_HASHING_H_
#define CQC_UTIL_HASHING_H_

#include <cstddef>

#include "util/common.h"

namespace cqc {

/// 64-bit mix (splitmix64 finalizer).
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash of a tuple's content; identical for Tuple and TupleSpan views of the
/// same values (Tuple converts to TupleSpan implicitly).
struct SpanHash {
  size_t operator()(TupleSpan t) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ t.size();
    for (Value v : t) h = MixHash(h ^ v) * 0x100000001b3ULL;
    return (size_t)h;
  }
};

struct SpanEq {
  bool operator()(TupleSpan a, TupleSpan b) const { return a == b; }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return SpanHash()(t); }
};

}  // namespace cqc

#endif  // CQC_UTIL_HASHING_H_

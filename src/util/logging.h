// Checked assertions. A failed check aborts with a source location and
// message; checks guard internal invariants, not user input (user input
// errors are reported through Status, see util/status.h).
#ifndef CQC_UTIL_LOGGING_H_
#define CQC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cqc {
namespace internal {

/// Aborts the process after printing `file:line CHECK failed: expr msg`.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

/// Stream-style message collector used by the CQC_CHECK macro.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, os_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace cqc

#define CQC_CHECK(cond)                                            \
  if (!(cond))                                                     \
  ::cqc::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define CQC_CHECK_EQ(a, b) CQC_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CQC_CHECK_NE(a, b) CQC_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CQC_CHECK_LT(a, b) CQC_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CQC_CHECK_LE(a, b) CQC_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CQC_CHECK_GT(a, b) CQC_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CQC_CHECK_GE(a, b) CQC_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

// Debug-only check: compiled out under NDEBUG (release), active in Debug
// and sanitizer builds. Guards contracts too hot to verify in production —
// e.g. that enumeration never mutates a sealed (shared, concurrently read)
// structure.
#ifdef NDEBUG
#define CQC_DCHECK(cond) \
  if (true) {            \
  } else                 \
    CQC_CHECK(cond)
#else
#define CQC_DCHECK(cond) CQC_CHECK(cond)
#endif

#endif  // CQC_UTIL_LOGGING_H_

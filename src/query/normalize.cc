#include "query/normalize.h"

#include <set>

#include "relational/projection.h"
#include "util/str_util.h"

namespace cqc {

const Relation* ResolveRelation(const std::string& name, const Database& db,
                                const Database* aux_db) {
  if (aux_db != nullptr) {
    const Relation* r = aux_db->Find(name);
    if (r != nullptr) return r;
  }
  return db.Find(name);
}

Result<NormalizedView> NormalizeView(const AdornedView& view,
                                     const Database& db) {
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsFull())
    return Status::Error("normalization requires a full CQ (every body "
                         "variable in the head)");

  NormalizedView out{view, Database{}};
  ConjunctiveQuery rewritten;
  // Preserve variable ids: intern in the original order.
  for (VarId v = 0; v < cq.num_vars(); ++v)
    rewritten.GetOrAddVar(cq.var_name(v));
  for (VarId v : cq.head()) rewritten.AddHeadVar(v);

  int next_id = 0;
  for (const Atom& atom : cq.atoms()) {
    const Relation* rel = db.Find(atom.relation);
    if (rel == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    if (rel->arity() != atom.arity())
      return Status::Error("atom " + atom.relation + " has arity " +
                           std::to_string(atom.arity()) + " but relation has " +
                           std::to_string(rel->arity()));
    if (atom.IsNaturalAtom()) {
      rewritten.AddAtom(atom);
      ++next_id;
      continue;
    }
    // Collect constant filters, equality filters among repeated variables,
    // and the output columns (first occurrence of each variable).
    std::vector<std::pair<int, Value>> equals;
    std::vector<std::pair<int, int>> same;
    std::vector<int> cols;
    std::vector<Term> new_terms;
    std::map<VarId, int> first_col;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_var) {
        equals.emplace_back(i, t.constant);
        continue;
      }
      auto it = first_col.find(t.var);
      if (it != first_col.end()) {
        same.emplace_back(it->second, i);
      } else {
        first_col.emplace(t.var, i);
        cols.push_back(i);
        new_terms.push_back(Term::Var(t.var));
      }
    }
    if (cols.empty())
      return Status::Error("atom " + atom.relation +
                           " binds no variables; not supported");
    const std::string derived_name =
        atom.relation + "__n" + std::to_string(next_id++);
    out.derived_sources[derived_name] = atom.relation;
    out.aux_db.AdoptRelation(
        FilterProject(*rel, equals, same, cols, derived_name));
    Atom derived;
    derived.relation = derived_name;
    derived.terms = std::move(new_terms);
    rewritten.AddAtom(std::move(derived));
  }

  std::string adornment;
  for (Binding b : view.adornment()) adornment += (char)b;
  Result<AdornedView> rv = AdornedView::Create(std::move(rewritten), adornment);
  if (!rv.ok()) return rv.status();
  out.view = std::move(rv).value();
  return std::move(out);
}

std::string CanonicalViewKey(const AdornedView& view) {
  const ConjunctiveQuery& cq = view.cq();
  std::vector<int> rename(cq.num_vars(), -1);
  int next = 0;
  auto canon = [&](VarId v) {
    if (rename[v] < 0) rename[v] = next++;
    return rename[v];
  };
  for (VarId v : cq.head()) canon(v);

  std::string key = "Q^";
  for (Binding b : view.adornment()) key += (char)b;
  key += '(';
  for (size_t i = 0; i < cq.head().size(); ++i)
    key += StrFormat("%sv%d", i ? "," : "", rename[cq.head()[i]]);
  key += ")=";
  for (size_t a = 0; a < cq.atoms().size(); ++a) {
    const Atom& atom = cq.atoms()[a];
    key += StrFormat("%s%s(", a ? "," : "", atom.relation.c_str());
    for (int c = 0; c < atom.arity(); ++c) {
      const Term& t = atom.terms[c];
      if (t.is_var)
        key += StrFormat("%sv%d", c ? "," : "", canon(t.var));
      else
        key += StrFormat("%s#%llu", c ? "," : "",
                         (unsigned long long)t.constant);
    }
    key += ')';
  }
  return key;
}

}  // namespace cqc

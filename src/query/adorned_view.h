// Adorned views Q^eta (§2.2): each head variable carries a binding type,
// bound (b) or free (f). An adorned view maps a valuation of the bound
// variables to the relation of matching free-variable tuples (an "access
// request" Q^eta[v]).
#ifndef CQC_QUERY_ADORNED_VIEW_H_
#define CQC_QUERY_ADORNED_VIEW_H_

#include <string>
#include <vector>

#include "query/cq.h"
#include "util/status.h"

namespace cqc {

enum class Binding : char { kBound = 'b', kFree = 'f' };

/// An access request: values for the bound head variables, in the order the
/// bound variables appear in the head.
using BoundValuation = std::vector<Value>;

class AdornedView {
 public:
  /// Binds `adornment` (e.g. "bfb") to the head of `cq`. Fails if lengths
  /// mismatch or characters are not in {b, f}.
  static Result<AdornedView> Create(ConjunctiveQuery cq,
                                    const std::string& adornment);

  const ConjunctiveQuery& cq() const { return cq_; }
  const std::vector<Binding>& adornment() const { return adornment_; }

  /// Bound head variables, in head order.
  const std::vector<VarId>& bound_vars() const { return bound_vars_; }
  /// Free head variables, in head order. This order is the lexicographic
  /// enumeration order x_f^1, ..., x_f^mu of the paper (§3.1).
  const std::vector<VarId>& free_vars() const { return free_vars_; }

  VarSet bound_set() const { return bound_set_; }
  VarSet free_set() const { return free_set_; }
  int num_free() const { return (int)free_vars_.size(); }
  int num_bound() const { return (int)bound_vars_.size(); }

  /// Every head variable bound (a "boolean" adorned view, §2.2).
  bool IsBooleanAdorned() const { return free_vars_.empty(); }
  /// Every head variable free ("non-parametric").
  bool IsNonParametric() const { return bound_vars_.empty(); }
  /// The CQ is full and the view is non-parametric: full enumeration view.
  bool IsFullEnumeration() const {
    return cq_.IsFull() && IsNonParametric();
  }

  std::string ToString() const;

 private:
  AdornedView(ConjunctiveQuery cq, std::vector<Binding> adornment);

  ConjunctiveQuery cq_;
  std::vector<Binding> adornment_;
  std::vector<VarId> bound_vars_;
  std::vector<VarId> free_vars_;
  VarSet bound_set_ = 0;
  VarSet free_set_ = 0;
};

}  // namespace cqc

#endif  // CQC_QUERY_ADORNED_VIEW_H_

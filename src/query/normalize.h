// §2.4 normalization: rewrite an adorned view whose body contains constants
// or repeated variables into an equivalent *natural join* view over derived
// relations, in linear time (Example 3 of the paper):
//
//   Q^fb(x,z) = R(x,y,7), S(y,y,z)
//     ==>  R__n0(x,y) = sigma_{$2=7} proj_{0,1} R,
//          S__n1(y,z) = sigma_{$0=$1} proj_{0,2} S,
//          Q^fb(x,z) = R__n0(x,y), S__n1(y,z)
//
// The derived relations are materialized into `aux_db`; atoms that are
// already natural are left referencing the original database.
#ifndef CQC_QUERY_NORMALIZE_H_
#define CQC_QUERY_NORMALIZE_H_

#include <map>
#include <string>

#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

struct NormalizedView {
  AdornedView view;        // natural-join view
  Database aux_db;         // derived relations referenced by rewritten atoms
  /// Derived relation name -> the base relation it was rewritten from
  /// (exactly the atoms that landed in aux_db). Serving layers use this to
  /// route base-table mutations: only names in THIS map are derived — a
  /// base relation whose own name happens to contain "__n" is not.
  std::map<std::string, std::string> derived_sources;
};

/// Rewrites `view` over `db`. Fails if the view is not full, or references
/// a relation missing from `db`, or an atom's arity mismatches its relation.
Result<NormalizedView> NormalizeView(const AdornedView& view,
                                     const Database& db);

/// Resolves an atom's relation against (aux_db, db): aux_db wins. Returns
/// nullptr if absent from both.
const Relation* ResolveRelation(const std::string& name, const Database& db,
                                const Database* aux_db);

/// Canonical cache key for a view: variables renamed by first occurrence
/// (head order, then body order), so alpha-renamed copies of the same query
/// map to the same key. Atom order is preserved (full query-graph
/// canonicalization is deliberately out of scope). Serving layers key
/// caches on this plus their build parameters.
std::string CanonicalViewKey(const AdornedView& view);

}  // namespace cqc

#endif  // CQC_QUERY_NORMALIZE_H_

#include "query/adorned_view.h"

#include <sstream>

namespace cqc {

AdornedView::AdornedView(ConjunctiveQuery cq, std::vector<Binding> adornment)
    : cq_(std::move(cq)), adornment_(std::move(adornment)) {
  for (size_t i = 0; i < adornment_.size(); ++i) {
    VarId v = cq_.head()[i];
    if (adornment_[i] == Binding::kBound) {
      bound_vars_.push_back(v);
      bound_set_ |= VarBit(v);
    } else {
      free_vars_.push_back(v);
      free_set_ |= VarBit(v);
    }
  }
}

Result<AdornedView> AdornedView::Create(ConjunctiveQuery cq,
                                        const std::string& adornment) {
  Status s = cq.Validate();
  if (!s.ok()) return s;
  if (adornment.size() != cq.head().size())
    return Status::Error("adornment length " +
                         std::to_string(adornment.size()) +
                         " does not match head arity " +
                         std::to_string(cq.head().size()));
  std::vector<Binding> parsed;
  for (char c : adornment) {
    if (c == 'b')
      parsed.push_back(Binding::kBound);
    else if (c == 'f')
      parsed.push_back(Binding::kFree);
    else
      return Status::Error(std::string("invalid adornment character '") + c +
                           "'");
  }
  return AdornedView(std::move(cq), std::move(parsed));
}

std::string AdornedView::ToString() const {
  std::ostringstream os;
  std::string ad;
  for (Binding b : adornment_) ad += (char)b;
  os << "Q^" << ad << " :: " << cq_.ToString();
  return os.str();
}

}  // namespace cqc

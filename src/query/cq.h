// Conjunctive query AST.
//
//   Q(y) = R1(x1), R2(x2), ..., Rn(xn)        (§2.1 of the paper)
//
// Terms may be variables or constants; an atom may repeat a variable. The
// normalization pass (query/normalize.h) rewrites any full CQ into a
// *natural join* query (no constants, no repeated variables per atom) in
// linear time, so the core data structures only ever see natural joins.
#ifndef CQC_QUERY_CQ_H_
#define CQC_QUERY_CQ_H_

#include <map>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace cqc {

/// A term in an atom: either a variable or a domain constant.
struct Term {
  bool is_var = true;
  VarId var = -1;
  Value constant = 0;

  static Term Var(VarId v) { return Term{true, v, 0}; }
  static Term Const(Value c) { return Term{false, -1, c}; }
  bool operator==(const Term&) const = default;
};

/// One atom R(t1, ..., tk) of the body.
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  int arity() const { return (int)terms.size(); }
  /// Set of variables used by this atom.
  VarSet Vars() const;
  /// True iff all terms are distinct variables.
  bool IsNaturalAtom() const;
};

/// A conjunctive query with named variables, a head, and a body.
class ConjunctiveQuery {
 public:
  /// Interns a variable name, returning its dense id.
  VarId GetOrAddVar(const std::string& name);
  /// Returns the id of `name` or -1.
  VarId FindVar(const std::string& name) const;

  void AddHeadVar(VarId v);
  void AddAtom(Atom atom);

  int num_vars() const { return (int)var_names_.size(); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<VarId>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Set of all body variables.
  VarSet BodyVars() const;
  /// Set of head variables.
  VarSet HeadVars() const;

  /// Every body variable appears in the head (§2.1 "full").
  bool IsFull() const;
  /// Full, no constants, no repeated variables in an atom (§2.1).
  bool IsNaturalJoin() const;

  /// Structural sanity: head vars appear in the body, at least one atom,
  /// every variable referenced is interned.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<std::string> var_names_;
  std::map<std::string, VarId> var_ids_;
  std::vector<VarId> head_;
  std::vector<Atom> atoms_;
};

}  // namespace cqc

#endif  // CQC_QUERY_CQ_H_

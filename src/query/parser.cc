#include "query/parser.h"

#include <cctype>
#include <optional>

#include "util/str_util.h"

namespace cqc {
namespace {

// Hand-rolled recursive-descent tokenizer/parser. The grammar is tiny, so
// we keep a cursor over the input and a pending error.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ConjunctiveQuery> ParseQuery(std::string* adornment_out) {
    ConjunctiveQuery cq;
    // Head: NAME [^adornment] ( term_list )
    std::string head_name = ParseName();
    if (!error_.empty()) return Fail();
    if (Peek() == '^') {
      Advance();
      std::string ad = ParseName();
      if (!error_.empty()) return Fail();
      if (adornment_out) {
        *adornment_out = ad;
      } else {
        return Status::Error("unexpected adornment on plain query head");
      }
    }
    auto head_terms = ParseTermList(cq);
    if (!error_.empty()) return Fail();
    for (const Term& t : head_terms) {
      if (!t.is_var) {
        return Status::Error("constants are not allowed in the head");
      }
      cq.AddHeadVar(t.var);
    }
    // Separator.
    SkipSpace();
    if (Peek() == '=') {
      Advance();
    } else if (Peek() == ':' && PeekAt(1) == '-') {
      Advance();
      Advance();
    } else {
      return Status::Error("expected '=' or ':-' after head");
    }
    // Body atoms.
    for (;;) {
      Atom atom;
      atom.relation = ParseName();
      if (!error_.empty()) return Fail();
      atom.terms = ParseTermList(cq);
      if (!error_.empty()) return Fail();
      cq.AddAtom(std::move(atom));
      SkipSpace();
      if (Peek() == ',') {
        Advance();
        continue;
      }
      break;
    }
    SkipSpace();
    if (pos_ != text_.size())
      return Status::Error("trailing input: '" +
                           std::string(text_.substr(pos_)) + "'");
    Status s = cq.Validate();
    if (!s.ok()) return s;
    return cq;
  }

 private:
  Status Fail() { return Status::Error(error_); }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t d) const {
    return pos_ + d < text_.size() ? text_[pos_ + d] : '\0';
  }
  void Advance() { ++pos_; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace((unsigned char)text_[pos_]))
      ++pos_;
  }

  std::string ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum((unsigned char)text_[pos_]) || text_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) {
      error_ = "expected identifier at offset " + std::to_string(pos_);
      return "";
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::vector<Term> ParseTermList(ConjunctiveQuery& cq) {
    std::vector<Term> terms;
    SkipSpace();
    if (Peek() != '(') {
      error_ = "expected '(' at offset " + std::to_string(pos_);
      return terms;
    }
    Advance();
    for (;;) {
      SkipSpace();
      if (std::isdigit((unsigned char)Peek())) {
        Value v = 0;
        while (std::isdigit((unsigned char)Peek())) {
          v = v * 10 + (Peek() - '0');
          Advance();
        }
        terms.push_back(Term::Const(v));
      } else {
        std::string name = ParseName();
        if (!error_.empty()) return terms;
        terms.push_back(Term::Var(cq.GetOrAddVar(name)));
      }
      SkipSpace();
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == ')') {
        Advance();
        return terms;
      }
      error_ = "expected ',' or ')' at offset " + std::to_string(pos_);
      return terms;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<ConjunctiveQuery> ParseConjunctiveQuery(std::string_view text) {
  Parser p(text);
  return p.ParseQuery(nullptr);
}

Result<AdornedView> ParseAdornedView(std::string_view text) {
  Parser p(text);
  std::string adornment;
  Result<ConjunctiveQuery> cq = p.ParseQuery(&adornment);
  if (!cq.ok()) return cq.status();
  if (adornment.empty())
    return Status::Error("adorned view requires '^adornment' on the head");
  return AdornedView::Create(std::move(cq).value(), adornment);
}

}  // namespace cqc

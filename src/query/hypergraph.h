// Query hypergraph H = (V, E): one vertex per variable, one hyperedge per
// atom. Edges are VarSet bitsets (<= 64 variables). Edge i corresponds to
// atom i of the originating query, so fractional edge cover weights align
// with atoms.
#ifndef CQC_QUERY_HYPERGRAPH_H_
#define CQC_QUERY_HYPERGRAPH_H_

#include <vector>

#include "query/cq.h"
#include "util/common.h"

namespace cqc {

class Hypergraph {
 public:
  /// Hypergraph of a query: vertices = body variables, edge i = vars of
  /// atom i.
  explicit Hypergraph(const ConjunctiveQuery& q);

  /// Direct construction (used by tests and decomposition search).
  Hypergraph(int num_vars, std::vector<VarSet> edges);

  int num_vars() const { return num_vars_; }
  VarSet vertices() const { return vertices_; }
  const std::vector<VarSet>& edges() const { return edges_; }
  int num_edges() const { return (int)edges_.size(); }

  /// E_I = indices of edges intersecting I (§2.1).
  std::vector<int> EdgesIntersecting(VarSet I) const;

  /// True iff `subset` induces a connected sub-hypergraph (two vertices are
  /// adjacent if some edge contains both). The empty set is connected.
  bool IsConnected(VarSet subset) const;

  /// Neighbors of `vars` (vertices sharing an edge with them), minus `vars`.
  VarSet Neighbors(VarSet vars) const;

 private:
  int num_vars_;
  VarSet vertices_;
  std::vector<VarSet> edges_;
};

}  // namespace cqc

#endif  // CQC_QUERY_HYPERGRAPH_H_

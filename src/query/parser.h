// Textual conjunctive-query parser.
//
// Grammar (whitespace-insensitive):
//
//   adorned_view := NAME '^' ADORNMENT '(' term_list ')' sep atom_list
//   query        := NAME '(' term_list ')' sep atom_list
//   sep          := '=' | ':-'
//   atom_list    := atom (',' atom)*
//   atom         := NAME '(' term_list ')'
//   term         := IDENT | INTEGER
//
// Identifiers starting with a letter are variables; integer literals are
// domain constants. Examples:
//
//   "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)"          (Example 1)
//   "Q(x,z) = R(x,y,7), S(y,y,z)"                    (Example 3, pre-rewrite)
#ifndef CQC_QUERY_PARSER_H_
#define CQC_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "query/adorned_view.h"
#include "query/cq.h"
#include "util/status.h"

namespace cqc {

/// Parses a plain CQ (no adornment marker).
Result<ConjunctiveQuery> ParseConjunctiveQuery(std::string_view text);

/// Parses an adorned view; the head must carry `^adornment`.
Result<AdornedView> ParseAdornedView(std::string_view text);

}  // namespace cqc

#endif  // CQC_QUERY_PARSER_H_

#include "query/cq.h"

#include <sstream>

#include "util/logging.h"

namespace cqc {

VarSet Atom::Vars() const {
  VarSet s = 0;
  for (const Term& t : terms)
    if (t.is_var) s |= VarBit(t.var);
  return s;
}

bool Atom::IsNaturalAtom() const {
  VarSet seen = 0;
  for (const Term& t : terms) {
    if (!t.is_var) return false;
    if (VarSetContains(seen, t.var)) return false;
    seen |= VarBit(t.var);
  }
  return true;
}

VarId ConjunctiveQuery::GetOrAddVar(const std::string& name) {
  auto it = var_ids_.find(name);
  if (it != var_ids_.end()) return it->second;
  CQC_CHECK_LT((int)var_names_.size(), kMaxVars) << "too many variables";
  VarId id = (VarId)var_names_.size();
  var_names_.push_back(name);
  var_ids_.emplace(name, id);
  return id;
}

VarId ConjunctiveQuery::FindVar(const std::string& name) const {
  auto it = var_ids_.find(name);
  return it == var_ids_.end() ? -1 : it->second;
}

void ConjunctiveQuery::AddHeadVar(VarId v) {
  CQC_CHECK_GE(v, 0);
  CQC_CHECK_LT(v, num_vars());
  head_.push_back(v);
}

void ConjunctiveQuery::AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }

VarSet ConjunctiveQuery::BodyVars() const {
  VarSet s = 0;
  for (const Atom& a : atoms_) s |= a.Vars();
  return s;
}

VarSet ConjunctiveQuery::HeadVars() const {
  VarSet s = 0;
  for (VarId v : head_) s |= VarBit(v);
  return s;
}

bool ConjunctiveQuery::IsFull() const {
  return (BodyVars() & ~HeadVars()) == 0;
}

bool ConjunctiveQuery::IsNaturalJoin() const {
  if (!IsFull()) return false;
  for (const Atom& a : atoms_)
    if (!a.IsNaturalAtom()) return false;
  return true;
}

Status ConjunctiveQuery::Validate() const {
  if (atoms_.empty()) return Status::Error("query has no atoms");
  VarSet body = BodyVars();
  for (VarId v : head_) {
    if (!VarSetContains(body, v))
      return Status::Error("head variable " + var_names_[v] +
                           " does not appear in the body");
  }
  VarSet head_seen = 0;
  for (VarId v : head_) {
    if (VarSetContains(head_seen, v))
      return Status::Error("head repeats variable " + var_names_[v]);
    head_seen |= VarBit(v);
  }
  return Status::Ok();
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream os;
  os << "Q(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i) os << ",";
    os << var_names_[head_[i]];
  }
  os << ") = ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) os << ", ";
    os << atoms_[i].relation << "(";
    for (int j = 0; j < atoms_[i].arity(); ++j) {
      if (j) os << ",";
      const Term& t = atoms_[i].terms[j];
      if (t.is_var)
        os << var_names_[t.var];
      else
        os << t.constant;
    }
    os << ")";
  }
  return os.str();
}

}  // namespace cqc

#include "query/hypergraph.h"

#include "util/logging.h"

namespace cqc {

Hypergraph::Hypergraph(const ConjunctiveQuery& q) : num_vars_(q.num_vars()) {
  vertices_ = q.BodyVars();
  for (const Atom& a : q.atoms()) edges_.push_back(a.Vars());
}

Hypergraph::Hypergraph(int num_vars, std::vector<VarSet> edges)
    : num_vars_(num_vars), edges_(std::move(edges)) {
  CQC_CHECK_LE(num_vars, kMaxVars);
  vertices_ = 0;
  for (VarSet e : edges_) vertices_ |= e;
}

std::vector<int> Hypergraph::EdgesIntersecting(VarSet I) const {
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i)
    if (edges_[i] & I) out.push_back(i);
  return out;
}

VarSet Hypergraph::Neighbors(VarSet vars) const {
  VarSet nb = 0;
  for (VarSet e : edges_)
    if (e & vars) nb |= e;
  return nb & ~vars;
}

bool Hypergraph::IsConnected(VarSet subset) const {
  if (subset == 0) return true;
  // BFS over variables of `subset`, moving along edges restricted to it.
  VarSet start = subset & (~subset + 1);  // lowest set bit
  VarSet reached = start;
  for (;;) {
    VarSet next = reached;
    for (VarSet e : edges_) {
      VarSet inside = e & subset;
      if (inside & reached) next |= inside;
    }
    if (next == reached) break;
    reached = next;
  }
  return reached == subset;
}

}  // namespace cqc

// Database: a catalog of named relations. Owns its relations.
#ifndef CQC_RELATIONAL_DATABASE_H_
#define CQC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace cqc {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an (unsealed) relation. CHECK-fails if the name already exists.
  Relation* AddRelation(const std::string& name, int arity);

  /// Registers an externally built relation under its own name.
  Relation* AdoptRelation(std::unique_ptr<Relation> rel);

  /// Looks up a relation; returns nullptr if absent. Falls through to the
  /// fallback database (if set) on a miss.
  const Relation* Find(const std::string& name) const;
  Relation* FindMutable(const std::string& name);

  /// Chains lookups: misses in this database consult `fallback` (which must
  /// outlive this database). Used by per-bag databases whose atoms may
  /// reference relations from an enclosing normalized view.
  void SetFallback(const Database* fallback) { fallback_ = fallback; }

  /// Seals every relation that is still unsealed.
  void SealAll();

  /// Total tuple count across relations (the paper's |D|).
  size_t TotalTuples() const;

  /// Heap footprint of base data across all relations.
  size_t BaseBytes() const;

  std::vector<const Relation*> AllRelations() const;

 private:
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  const Database* fallback_ = nullptr;
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_DATABASE_H_

#include "relational/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/str_util.h"

namespace cqc {

Result<Relation*> LoadRelationCsv(Database& db, const std::string& name,
                                  int arity, const std::string& path,
                                  char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::Error("cannot open " + path);
  Relation* rel = db.AddRelation(name, arity);
  Tuple row((size_t)arity);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::vector<std::string_view> fields = SplitAndStrip(stripped, delimiter);
    if ((int)fields.size() != arity)
      return Status::Error(StrFormat("%s:%zu: expected %d fields, got %zu",
                                     path.c_str(), line_no, arity,
                                     fields.size()));
    for (int c = 0; c < arity; ++c) {
      Value v = 0;
      bool any = false;
      for (char ch : fields[c]) {
        if (!std::isdigit((unsigned char)ch))
          return Status::Error(StrFormat("%s:%zu: non-numeric field '%.*s'",
                                         path.c_str(), line_no,
                                         (int)fields[c].size(),
                                         fields[c].data()));
        v = v * 10 + (Value)(ch - '0');
        any = true;
      }
      if (!any)
        return Status::Error(
            StrFormat("%s:%zu: empty field", path.c_str(), line_no));
      row[c] = v;
    }
    rel->Insert(row);
  }
  rel->Seal();
  return rel;
}

Status SaveRelationCsv(const Relation& rel, const std::string& path,
                       char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::Error("cannot open " + path);
  for (size_t r = 0; r < rel.size(); ++r) {
    for (int c = 0; c < rel.arity(); ++c) {
      if (c) out << delimiter;
      out << rel.At(r, c);
    }
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Error("write failed: " + path);
}

}  // namespace cqc

// Set-semantics relation with columnar storage.
//
// Relations are immutable once Seal()ed: construction bulk-loads tuples,
// Seal() sorts, deduplicates, and computes per-column active domains.
// SortedIndexes (relational/sorted_index.h) over arbitrary column
// permutations are built lazily and cached on the relation; they are the
// only access path the join and cost-model layers use.
#ifndef CQC_RELATIONAL_RELATION_H_
#define CQC_RELATIONAL_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"

namespace cqc {

class SortedIndex;

/// A named relation of fixed arity holding a set of tuples.
class Relation {
 public:
  Relation(std::string name, int arity);
  ~Relation();

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  int arity() const { return arity_; }

  /// Number of tuples. Valid only after Seal().
  size_t size() const { return num_rows_; }
  bool sealed() const { return sealed_; }

  /// Appends a tuple (pre-seal only). `t.size()` must equal arity().
  void Insert(const Tuple& t);
  /// Appends a tuple given as a pointer to `arity()` values (pre-seal only).
  void InsertRow(const Value* row);

  /// Sorts, deduplicates and freezes the relation; computes active domains.
  void Seal();

  /// Value at (row, col). Valid only after Seal().
  Value At(size_t row, int col) const;

  /// The sorted distinct values appearing in column `col`.
  const std::vector<Value>& ActiveDomain(int col) const;

  /// Returns (building and caching on first use) the index that stores the
  /// tuples sorted lexicographically by the column order `perm`. `perm` must
  /// be a permutation of {0..arity-1}.
  const SortedIndex& GetIndex(const std::vector<int>& perm) const;

  /// True iff the tuple (given in schema column order) is present. O(log N).
  /// Accepts any span view (Tuple converts implicitly) — no materialization.
  bool Contains(TupleSpan t) const;

  /// Order-insensitive 64-bit digest of the relation's content (rows are
  /// canonically sorted after Seal, so this identifies the tuple set).
  /// Used by serialization fingerprints. Valid only after Seal().
  uint64_t ContentHash() const;

  /// Approximate heap footprint of base data (excludes cached indexes).
  size_t BaseBytes() const;
  /// Approximate heap footprint of all cached indexes.
  size_t IndexBytes() const;

 private:
  std::string name_;
  int arity_;
  bool sealed_ = false;
  size_t num_rows_ = 0;
  // Pre-seal staging: row-major buffer. Post-seal: empty.
  std::vector<Value> staging_;
  // Post-seal: column-major storage, rows sorted by identity permutation.
  std::vector<std::vector<Value>> cols_;
  std::vector<std::vector<Value>> active_domains_;
  mutable std::map<std::vector<int>, std::unique_ptr<SortedIndex>> index_cache_;
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_RELATION_H_

// Set-semantics relation with columnar storage.
//
// Relations are immutable once Seal()ed: construction bulk-loads tuples,
// Seal() sorts, deduplicates, and computes per-column active domains.
// Two access paths are built lazily and cached on the relation:
//   * SortedIndexes (relational/sorted_index.h) over arbitrary column
//     permutations — lex-range iteration and the counting oracle;
//   * one HashIndex (relational/hash_index.h) — point membership.
// Both caches are guarded so concurrent readers (parallel enumeration,
// parallel rep builds) can trigger first-use builds safely; an index is
// built exactly once and immutable afterwards.
#ifndef CQC_RELATIONAL_RELATION_H_
#define CQC_RELATIONAL_RELATION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace cqc {

class HashIndex;
class SortedIndex;

/// A named relation of fixed arity holding a set of tuples.
class Relation {
 public:
  Relation(std::string name, int arity);
  ~Relation();

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  int arity() const { return arity_; }

  /// Number of tuples. Valid only after Seal().
  size_t size() const { return num_rows_; }
  bool sealed() const { return sealed_; }

  /// Appends a tuple (pre-seal only). `t.size()` must equal arity().
  void Insert(const Tuple& t);
  /// Appends a tuple given as a pointer to `arity()` values (pre-seal only).
  void InsertRow(const Value* row);

  /// Sorts, deduplicates and freezes the relation; computes active domains.
  void Seal();

  /// Value at (row, col). Valid only after Seal().
  Value At(size_t row, int col) const;

  /// Raw post-seal column storage (num rows values, row-sorted). The
  /// pointer is stable for the relation's lifetime — the zero-copy probe
  /// path HashIndex builds on.
  const Value* ColumnData(int col) const { return cols_[col].data(); }

  /// The sorted distinct values appearing in column `col`.
  const std::vector<Value>& ActiveDomain(int col) const;

  /// Returns (building and caching on first use) the index that stores the
  /// tuples sorted lexicographically by the column order `perm`. `perm` must
  /// be a permutation of {0..arity-1}. Thread-safe: concurrent callers for
  /// the same perm share one build; distinct perms build concurrently.
  const SortedIndex& GetIndex(const std::vector<int>& perm) const;

  /// The point-membership index (built and cached on first use). This is
  /// the relation's probe plan: resolved once, shared by every Contains /
  /// ContainsValuation call instead of re-deriving a permutation per probe.
  const HashIndex& GetHashIndex() const;

  /// True iff the tuple (given in schema column order) is present. O(1)
  /// expected via the hash probe plan (policy: point probes go to the hash
  /// index, range scans to the sorted tries). Accepts any span view (Tuple
  /// converts implicitly) — no materialization.
  bool Contains(TupleSpan t) const;

  /// Batch membership over `n` tuples laid out row-major in `flat`
  /// (n * arity values): out[i] = 1 iff the relation contains tuple i.
  /// Same probe plan as Contains, with hashes and prefetches pipelined a
  /// block ahead (HashIndex::ContainsBatch).
  void ContainsBatch(const Value* flat, size_t n, uint8_t* out) const;

  /// Order-insensitive 64-bit digest of the relation's content (rows are
  /// canonically sorted after Seal, so this identifies the tuple set).
  /// Used by serialization fingerprints. Valid only after Seal(); computed
  /// once on first use and cached (content is immutable post-Seal).
  uint64_t ContentHash() const;

  /// Approximate heap footprint of base data (excludes cached indexes).
  size_t BaseBytes() const;
  /// Approximate heap footprint of all cached sorted indexes.
  size_t IndexBytes() const;
  /// Approximate heap footprint of the hash probe plan (0 until first use).
  size_t HashIndexBytes() const;

 private:
  // A lazily-built sorted index: the map entry is created under the cache
  // mutex, the (expensive) build runs outside it exactly once. `ready`
  // (release after the build, acquire by stats readers) lets IndexBytes
  // observe finished builds without touching the once_flag.
  struct IndexSlot {
    std::once_flag once;
    std::unique_ptr<SortedIndex> index;
    std::atomic<bool> ready{false};
  };

  std::string name_;
  int arity_;
  bool sealed_ = false;
  size_t num_rows_ = 0;
  // Pre-seal staging: row-major buffer. Post-seal: empty.
  std::vector<Value> staging_;
  // Post-seal: column-major storage, rows sorted by identity permutation.
  std::vector<std::vector<Value>> cols_;
  std::vector<std::vector<Value>> active_domains_;
  mutable std::mutex index_mu_;  // guards the cache map shape only
  mutable std::map<std::vector<int>, std::shared_ptr<IndexSlot>> index_cache_;
  mutable std::once_flag hash_once_;
  mutable std::unique_ptr<HashIndex> hash_index_;
  mutable std::atomic<bool> hash_ready_{false};
  mutable std::once_flag content_hash_once_;
  mutable uint64_t content_hash_ = 0;
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_RELATION_H_

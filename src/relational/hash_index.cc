#include "relational/hash_index.h"

#include "relational/relation.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {
namespace {

inline uint8_t Fingerprint(uint64_t h) {
  // Top byte of the mixed hash: independent of the slot bits (low bits),
  // so a fingerprint match is a real 1/256 filter within a cluster.
  return (uint8_t)(h >> 56);
}

}  // namespace

HashIndex::HashIndex(const Relation& rel) {
  CQC_CHECK(rel.sealed()) << "hash index over unsealed relation "
                          << rel.name();
  num_rows_ = rel.size();
  const int arity = rel.arity();
  cols_.reserve(arity);
  for (int c = 0; c < arity; ++c) cols_.push_back(rel.ColumnData(c));
  CQC_CHECK_LT(num_rows_, (size_t)kEmptySlot) << "relation too large";

  // Power-of-two capacity at <= 50% load.
  size_t cap = 16;
  while (cap < 2 * num_rows_) cap <<= 1;
  mask_ = cap - 1;
  fps_.assign(cap, 0);
  rows_.assign(cap, kEmptySlot);

  Value buf[kMaxVars];
  for (size_t row = 0; row < num_rows_; ++row) {
    for (int c = 0; c < arity; ++c) buf[c] = cols_[c][row];
    const uint64_t h = SpanHash()(TupleSpan(buf, arity));
    size_t slot = h & mask_;
    while (rows_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    fps_[slot] = Fingerprint(h);
    rows_[slot] = (uint32_t)row;
  }
}

bool HashIndex::Contains(TupleSpan t) const {
  ops::Bump();
  ops::BumpHashProbe();
  const size_t arity = cols_.size();
  if (t.size() != arity) return false;
  const uint64_t h = SpanHash()(t);
  const uint8_t fp = Fingerprint(h);
  size_t slot = h & mask_;
  __builtin_prefetch(fps_.data() + slot);
  __builtin_prefetch(rows_.data() + slot);
  for (;;) {
    const uint32_t row = rows_[slot];
    if (row == kEmptySlot) return false;
    if (fps_[slot] == fp) {
      size_t c = 0;
      while (c < arity && cols_[c][row] == t[c]) ++c;
      if (c == arity) return true;
    }
    slot = (slot + 1) & mask_;
  }
}

size_t HashIndex::MemoryBytes() const {
  return sizeof(*this) + cols_.capacity() * sizeof(const Value*) +
         fps_.capacity() * sizeof(uint8_t) +
         rows_.capacity() * sizeof(uint32_t);
}

}  // namespace cqc

#include "relational/hash_index.h"

#include <algorithm>

#include "relational/relation.h"
#include "simd/kernels.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {
namespace {

inline uint8_t Fingerprint(uint64_t h) {
  // Top byte of the mixed hash: independent of the slot bits (low bits),
  // so a fingerprint match is a real 1/256 filter within a cluster.
  return (uint8_t)(h >> 56);
}

}  // namespace

HashIndex::HashIndex(const Relation& rel) {
  CQC_CHECK(rel.sealed()) << "hash index over unsealed relation "
                          << rel.name();
  num_rows_ = rel.size();
  const int arity = rel.arity();
  cols_.reserve(arity);
  for (int c = 0; c < arity; ++c) cols_.push_back(rel.ColumnData(c));
  CQC_CHECK_LT(num_rows_, (size_t)kEmptySlot) << "relation too large";

  // Power-of-two capacity at <= 50% load (>= 16, so the capacity is always
  // a multiple of the probe group width).
  size_t cap = 16;
  while (cap < 2 * num_rows_) cap <<= 1;
  mask_ = cap - 1;
  fps_.assign(cap + simd::kGroupWidth, 0);
  rows_.assign(cap + simd::kGroupWidth, kEmptySlot);

  Value buf[kMaxVars];
  for (size_t row = 0; row < num_rows_; ++row) {
    for (int c = 0; c < arity; ++c) buf[c] = cols_[c][row];
    const uint64_t h = SpanHash()(TupleSpan(buf, arity));
    size_t slot = h & mask_;
    while (rows_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    fps_[slot] = Fingerprint(h);
    rows_[slot] = (uint32_t)row;
  }
  // Mirror the first group into the pad so a window starting near the end
  // of the table reads its wrapped slots contiguously.
  for (size_t i = 0; i < simd::kGroupWidth; ++i) {
    fps_[cap + i] = fps_[i];
    rows_[cap + i] = rows_[i];
  }
}

// Walks probe windows of kGroupWidth slots from the home slot. One tag
// compare nominates candidates, one empty compare finds the cluster end;
// candidates past the first empty slot belong to other clusters and are
// masked off. Terminates because load <= 50% guarantees empty slots.
bool HashIndex::ProbeGroups(uint64_t h, const Value* t, size_t arity) const {
  const uint8_t fp = Fingerprint(h);
  size_t slot = h & mask_;
  for (;;) {
    uint32_t tags = simd::MatchTags(fps_.data() + slot, fp);
    const uint32_t empties =
        simd::MatchEmpty(rows_.data() + slot, kEmptySlot);
    if (empties != 0) tags &= (1u << __builtin_ctz(empties)) - 1;
    while (tags != 0) {
      const unsigned bit = (unsigned)__builtin_ctz(tags);
      tags &= tags - 1;
      const uint32_t row = rows_[slot + bit];  // pad slots mirror the head
      size_t c = 0;
      while (c < arity && cols_[c][row] == t[c]) ++c;
      if (c == arity) return true;
    }
    if (empties != 0) return false;
    slot = (slot + simd::kGroupWidth) & mask_;
  }
}

bool HashIndex::Contains(TupleSpan t) const {
  ops::Bump();
  ops::BumpHashProbe();
  const size_t arity = cols_.size();
  if (t.size() != arity) return false;
  // Single point probes walk slot by slot: at <= 50% load the expected
  // cluster is 1-2 slots, so the dependent chain ends after one or two
  // iterations and a group window's vector setup costs more than it
  // saves. The group probe earns its keep in ContainsBatch, where the
  // block's hashing + prefetching hides the window loads.
  const uint64_t h = SpanHash()(t);
  const uint8_t fp = Fingerprint(h);
  size_t slot = h & mask_;
  for (;;) {
    const uint32_t row = rows_[slot];
    if (row == kEmptySlot) return false;
    if (fps_[slot] == fp) {
      size_t c = 0;
      while (c < arity && cols_[c][row] == t[c]) ++c;
      if (c == arity) return true;
    }
    slot = (slot + 1) & mask_;
  }
}

void HashIndex::ContainsBatch(const Value* flat, size_t n,
                              uint8_t* out) const {
  const size_t arity = cols_.size();
  if (n == 1) {
    // A lone probe gains nothing from the hash/prefetch pass or a group
    // window; take the slot-walk point probe (the updatable single-tuple
    // path refills one answer at a time through here).
    out[0] = Contains(TupleSpan(flat, arity));
    return;
  }
  constexpr size_t kBlock = 8;
  uint64_t hashes[kBlock];
  for (size_t i = 0; i < n; i += kBlock) {
    const size_t m = std::min(kBlock, n - i);
    // Pass 1: hash the block and prefetch every home window, so the table
    // misses of up to 8 probes overlap instead of serializing.
    for (size_t j = 0; j < m; ++j) {
      const uint64_t h = SpanHash()(TupleSpan(flat + (i + j) * arity, arity));
      hashes[j] = h;
      const size_t slot = h & mask_;
      __builtin_prefetch(fps_.data() + slot);
      __builtin_prefetch(rows_.data() + slot);
    }
    // Pass 2: resolve each probe against (mostly) cache-resident windows.
    for (size_t j = 0; j < m; ++j) {
      ops::Bump();
      ops::BumpHashProbe();
      out[i + j] = ProbeGroups(hashes[j], flat + (i + j) * arity, arity);
    }
  }
}

size_t HashIndex::MemoryBytes() const {
  return sizeof(*this) + cols_.capacity() * sizeof(const Value*) +
         fps_.capacity() * sizeof(uint8_t) +
         rows_.capacity() * sizeof(uint32_t);
}

}  // namespace cqc

// HashIndex: a flat open-addressed membership index over a sealed relation.
//
// The index-selection policy of the probe path: *point* membership checks
// (Relation::Contains, BoundAtom::ContainsValuation, the Algorithm 2 split
// probe, the update-path derivability filter) route here; *lex-range*
// iteration and the O~(1) counting oracle stay on SortedIndex, which is the
// only structure that can refine an ordered prefix. A sorted probe is
// O(arity log N) branchy binary searches; a hash probe is one mixed hash,
// one group compare, and (usually) one row comparison.
//
// Layout is two parallel flat arrays over a power-of-two slot count:
//   fps_[slot]   one fingerprint byte (top bits of the row hash),
//   rows_[slot]  the relation row id, or kEmptySlot.
// Linear probing at <= 50% load keeps clusters short. Single point probes
// (Contains) walk slot by slot — the expected cluster is 1-2 slots, so the
// dependent chain ends immediately. Batched probes (ContainsBatch) examine
// simd::kGroupWidth slots at a time: one vector compare of the fingerprint
// bytes yields the candidate mask of a whole window, and one compare of the
// row ids yields its empty-slot mask (the cluster terminator). Both arrays
// carry kGroupWidth mirrored pad slots past the capacity so a window
// starting anywhere reads contiguously — no wraparound inside a group.
// ContainsBatch amortizes further: it hashes and prefetches a block of 8
// probes before the first compare, the shape the tombstone filter in
// core/updatable_rep.cc drains.
//
// Thread safety: built once (Relation caches it behind a call_once) and
// immutable afterwards; any number of threads may probe concurrently.
#ifndef CQC_RELATIONAL_HASH_INDEX_H_
#define CQC_RELATIONAL_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace cqc {

class Relation;

class HashIndex {
 public:
  /// Builds the index over `rel` (must be sealed).
  explicit HashIndex(const Relation& rel);

  /// True iff the relation contains `t` (schema column order).
  bool Contains(TupleSpan t) const;

  /// Membership for `n` tuples laid out row-major in `flat` (n * arity
  /// values): out[i] = 1 iff Contains(tuple i). Equivalent to n Contains
  /// calls, but hashes and prefetches 8 probes ahead of the compare loop so
  /// the table misses overlap.
  void ContainsBatch(const Value* flat, size_t n, uint8_t* out) const;

  size_t num_rows() const { return num_rows_; }
  size_t capacity() const { return mask_ + 1; }
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kEmptySlot = ~0u;

  bool ProbeGroups(uint64_t h, const Value* t, size_t arity) const;

  // First row of each column's post-seal storage; the relation outlives the
  // index (it owns it), and sealed columns never move.
  std::vector<const Value*> cols_;
  size_t num_rows_ = 0;
  size_t mask_ = 0;  // capacity - 1
  std::vector<uint8_t> fps_;    // capacity + kGroupWidth mirrored pad slots
  std::vector<uint32_t> rows_;  // capacity + kGroupWidth mirrored pad slots
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_HASH_INDEX_H_

// HashIndex: a flat open-addressed membership index over a sealed relation.
//
// The index-selection policy of the probe path: *point* membership checks
// (Relation::Contains, BoundAtom::ContainsValuation, the Algorithm 2 split
// probe, the update-path derivability filter) route here; *lex-range*
// iteration and the O~(1) counting oracle stay on SortedIndex, which is the
// only structure that can refine an ordered prefix. A sorted probe is
// O(arity log N) branchy binary searches; a hash probe is one mixed hash,
// one prefetched fingerprint scan, and (usually) one row comparison.
//
// Layout is two parallel flat arrays over a power-of-two slot count:
//   fps_[slot]   one fingerprint byte (top bits of the row hash),
//   rows_[slot]  the relation row id, or kEmptySlot.
// Linear probing at <= 50% load keeps clusters short; the fingerprint
// rejects almost every non-matching slot without touching the relation's
// columns, and the probe prefetches both arrays before the first compare.
// Rows are compared against the relation's column-major storage directly,
// so the index stores no tuple payload: 5 bytes per slot (~10 bytes per
// row) regardless of arity.
//
// Thread safety: built once (Relation caches it behind a call_once) and
// immutable afterwards; any number of threads may probe concurrently.
#ifndef CQC_RELATIONAL_HASH_INDEX_H_
#define CQC_RELATIONAL_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace cqc {

class Relation;

class HashIndex {
 public:
  /// Builds the index over `rel` (must be sealed).
  explicit HashIndex(const Relation& rel);

  /// True iff the relation contains `t` (schema column order).
  bool Contains(TupleSpan t) const;

  size_t num_rows() const { return num_rows_; }
  size_t capacity() const { return rows_.size(); }
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kEmptySlot = ~0u;

  // First row of each column's post-seal storage; the relation outlives the
  // index (it owns it), and sealed columns never move.
  std::vector<const Value*> cols_;
  size_t num_rows_ = 0;
  size_t mask_ = 0;  // capacity - 1
  std::vector<uint8_t> fps_;
  std::vector<uint32_t> rows_;
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_HASH_INDEX_H_

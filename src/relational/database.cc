#include "relational/database.h"

#include "util/logging.h"

namespace cqc {

Relation* Database::AddRelation(const std::string& name, int arity) {
  CQC_CHECK(relations_.find(name) == relations_.end())
      << "duplicate relation " << name;
  auto rel = std::make_unique<Relation>(name, arity);
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Relation* Database::AdoptRelation(std::unique_ptr<Relation> rel) {
  const std::string name = rel->name();
  CQC_CHECK(relations_.find(name) == relations_.end())
      << "duplicate relation " << name;
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it != relations_.end()) return it->second.get();
  return fallback_ != nullptr ? fallback_->Find(name) : nullptr;
}

Relation* Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

void Database::SealAll() {
  for (auto& [name, rel] : relations_)
    if (!rel->sealed()) rel->Seal();
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

size_t Database::BaseBytes() const {
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) bytes += rel->BaseBytes();
  return bytes;
}

std::vector<const Relation*> Database::AllRelations() const {
  std::vector<const Relation*> out;
  for (const auto& [name, rel] : relations_) out.push_back(rel.get());
  return out;
}

}  // namespace cqc

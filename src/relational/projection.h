// Distinct projection: builds a new relation from selected columns of an
// existing one, removing duplicates. Used by the §2.4 normalization rewrite
// and by Theorem 2 to restrict relations to the variables of a bag.
#ifndef CQC_RELATIONAL_PROJECTION_H_
#define CQC_RELATIONAL_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace cqc {

/// Returns a sealed relation named `name` with columns `cols` (indices into
/// `src`'s schema, in the output order) of the distinct projected tuples.
std::unique_ptr<Relation> ProjectDistinct(const Relation& src,
                                          const std::vector<int>& cols,
                                          const std::string& name);

/// Like ProjectDistinct but keeps only rows where for each (col, value) pair
/// in `equals` the row matches, and for each (colA, colB) in `same` the two
/// columns agree. This implements the Example 3 rewrite
/// R'(x,y) = R(x,y,a) / S'(y,z) = S(y,y,z) in one linear pass.
std::unique_ptr<Relation> FilterProject(
    const Relation& src, const std::vector<std::pair<int, Value>>& equals,
    const std::vector<std::pair<int, int>>& same, const std::vector<int>& cols,
    const std::string& name);

}  // namespace cqc

#endif  // CQC_RELATIONAL_PROJECTION_H_

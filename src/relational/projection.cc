#include "relational/projection.h"

#include "util/logging.h"

namespace cqc {

std::unique_ptr<Relation> ProjectDistinct(const Relation& src,
                                          const std::vector<int>& cols,
                                          const std::string& name) {
  return FilterProject(src, {}, {}, cols, name);
}

std::unique_ptr<Relation> FilterProject(
    const Relation& src, const std::vector<std::pair<int, Value>>& equals,
    const std::vector<std::pair<int, int>>& same, const std::vector<int>& cols,
    const std::string& name) {
  CQC_CHECK(src.sealed());
  CQC_CHECK(!cols.empty());
  auto out = std::make_unique<Relation>(name, (int)cols.size());
  Tuple row(cols.size());
  for (size_t r = 0; r < src.size(); ++r) {
    bool keep = true;
    for (const auto& [col, v] : equals) {
      if (src.At(r, col) != v) { keep = false; break; }
    }
    if (keep) {
      for (const auto& [a, b] : same) {
        if (src.At(r, a) != src.At(r, b)) { keep = false; break; }
      }
    }
    if (!keep) continue;
    for (size_t i = 0; i < cols.size(); ++i) row[i] = src.At(r, cols[i]);
    out->Insert(row);
  }
  out->Seal();  // sorts + dedups
  return out;
}

}  // namespace cqc

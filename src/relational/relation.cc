#include "relational/relation.h"

#include <algorithm>
#include <numeric>

#include "exec/par_util.h"
#include "relational/hash_index.h"
#include "relational/sorted_index.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace cqc {

Relation::Relation(std::string name, int arity)
    : name_(std::move(name)), arity_(arity) {
  CQC_CHECK_GT(arity, 0);
  CQC_CHECK_LE(arity, kMaxVars);
}

Relation::~Relation() = default;

void Relation::Insert(const Tuple& t) {
  CQC_CHECK(!sealed_) << "insert into sealed relation " << name_;
  CQC_CHECK_EQ((int)t.size(), arity_)
      << "tuple arity mismatch on relation " << name_;
  InsertRow(t.data());
}

void Relation::InsertRow(const Value* row) {
  CQC_CHECK(!sealed_) << "insert into sealed relation " << name_;
  CQC_CHECK(row != nullptr) << "null row inserted into relation " << name_;
  staging_.insert(staging_.end(), row, row + arity_);
}

void Relation::Seal() {
  CQC_CHECK(!sealed_);
  const size_t n = staging_.size() / arity_;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const int arity = arity_;
  const Value* data = staging_.data();
  auto row_less = [&](size_t a, size_t b) {
    const Value* ra = data + a * arity;
    const Value* rb = data + b * arity;
    return std::lexicographical_compare(ra, ra + arity, rb, rb + arity);
  };
  auto row_eq = [&](size_t a, size_t b) {
    const Value* ra = data + a * arity;
    const Value* rb = data + b * arity;
    return std::equal(ra, ra + arity, rb);
  };
  par::ParallelSort(order.begin(), order.end(), row_less);
  order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
  num_rows_ = order.size();

  // Column scatter + per-column active domains, one task per column.
  cols_.assign(arity_, {});
  active_domains_.assign(arity_, {});
  std::vector<std::function<void()>> tasks;
  tasks.reserve(arity_);
  for (int c = 0; c < arity_; ++c) {
    tasks.push_back([this, c, data, arity, &order] {
      cols_[c].resize(num_rows_);
      for (size_t i = 0; i < num_rows_; ++i)
        cols_[c][i] = data[order[i] * arity + c];
      auto dom = cols_[c];
      std::sort(dom.begin(), dom.end());
      dom.erase(std::unique(dom.begin(), dom.end()), dom.end());
      active_domains_[c] = std::move(dom);
    });
  }
  par::RunTasks(std::move(tasks));
  staging_.clear();
  staging_.shrink_to_fit();
  sealed_ = true;
}

Value Relation::At(size_t row, int col) const {
  CQC_CHECK(sealed_) << "At() on unsealed relation " << name_;
  CQC_CHECK_LT(row, num_rows_) << "row out of range on relation " << name_;
  CQC_CHECK_GE(col, 0);
  CQC_CHECK_LT(col, arity_) << "column out of range on relation " << name_;
  return cols_[col][row];
}

const std::vector<Value>& Relation::ActiveDomain(int col) const {
  CQC_CHECK(sealed_);
  CQC_CHECK_GE(col, 0);
  CQC_CHECK_LT(col, arity_);
  return active_domains_[col];
}

const SortedIndex& Relation::GetIndex(const std::vector<int>& perm) const {
  CQC_CHECK(sealed_);
  // A malformed permutation would silently build an index over the wrong
  // (possibly repeated) columns; reject it here where the caller is visible.
  CQC_CHECK_EQ((int)perm.size(), arity_)
      << "index permutation size mismatch on relation " << name_;
  std::vector<bool> seen(arity_, false);
  for (int c : perm) {
    CQC_CHECK(c >= 0 && c < arity_)
        << "index permutation entry " << c << " out of range on relation "
        << name_;
    CQC_CHECK(!seen[c]) << "index permutation repeats column " << c
                        << " on relation " << name_;
    seen[c] = true;
  }
  std::shared_ptr<IndexSlot> slot;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = index_cache_.find(perm);
    if (it == index_cache_.end())
      it = index_cache_.emplace(perm, std::make_shared<IndexSlot>()).first;
    slot = it->second;
  }
  // Build outside the map lock: concurrent requests for the same perm
  // coalesce on the once_flag, distinct perms build in parallel.
  std::call_once(slot->once, [&] {
    slot->index = std::make_unique<SortedIndex>(*this, perm);
    slot->ready.store(true, std::memory_order_release);
  });
  return *slot->index;
}

const HashIndex& Relation::GetHashIndex() const {
  CQC_CHECK(sealed_);
  std::call_once(hash_once_, [&] {
    hash_index_ = std::make_unique<HashIndex>(*this);
    hash_ready_.store(true, std::memory_order_release);
  });
  return *hash_index_;
}

bool Relation::Contains(TupleSpan t) const {
  CQC_CHECK_EQ((int)t.size(), arity_);
  return GetHashIndex().Contains(t);
}

void Relation::ContainsBatch(const Value* flat, size_t n,
                             uint8_t* out) const {
  GetHashIndex().ContainsBatch(flat, n, out);
}

uint64_t Relation::ContentHash() const {
  CQC_CHECK(sealed_);
  // Memoized: the digest is checked on every snapshot load, and a fresh
  // pass over the columns there would make an otherwise O(header) mmap
  // open scale with relation size. Content is frozen after Seal().
  std::call_once(content_hash_once_, [this] {
    uint64_t h = 0x243f6a8885a308d3ULL ^ ((uint64_t)arity_ << 32) ^ num_rows_;
    for (size_t r = 0; r < num_rows_; ++r)
      for (int c = 0; c < arity_; ++c)
        h = (h ^ MixHash(cols_[c][r] + (uint64_t)c)) * 0x100000001b3ULL;
    content_hash_ = h;
  });
  return content_hash_;
}

size_t Relation::BaseBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& c : cols_) bytes += c.capacity() * sizeof(Value);
  for (const auto& d : active_domains_) bytes += d.capacity() * sizeof(Value);
  return bytes;
}

size_t Relation::IndexBytes() const {
  size_t bytes = 0;
  std::lock_guard<std::mutex> lock(index_mu_);
  for (const auto& [perm, slot] : index_cache_)
    if (slot->ready.load(std::memory_order_acquire))
      bytes += slot->index->MemoryBytes();
  return bytes;
}

size_t Relation::HashIndexBytes() const {
  return hash_ready_.load(std::memory_order_acquire) ? hash_index_->MemoryBytes()
                                                     : 0;
}

}  // namespace cqc

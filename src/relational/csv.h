// Delimiter-separated loading/saving of relations: the minimal I/O a
// downstream user needs to point the library at real data. Values must be
// unsigned integers (map external domains to dense ids upstream); lines
// starting with '#' are comments.
#ifndef CQC_RELATIONAL_CSV_H_
#define CQC_RELATIONAL_CSV_H_

#include <string>

#include "relational/database.h"
#include "util/status.h"

namespace cqc {

/// Loads `path` into a new sealed relation `name` of the given arity.
/// Fails on malformed rows (wrong column count, non-numeric fields).
Result<Relation*> LoadRelationCsv(Database& db, const std::string& name,
                                  int arity, const std::string& path,
                                  char delimiter = ',');

/// Writes a sealed relation to `path` (one row per line).
Status SaveRelationCsv(const Relation& rel, const std::string& path,
                       char delimiter = ',');

}  // namespace cqc

#endif  // CQC_RELATIONAL_CSV_H_

#include "relational/sorted_index.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "exec/par_util.h"
#include "relational/relation.h"
#include "simd/kernels.h"
#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

SortedIndex::SortedIndex(const Relation& rel, std::vector<int> perm)
    : perm_(std::move(perm)), num_rows_(rel.size()) {
  CQC_CHECK(rel.sealed()) << "index over unsealed relation " << rel.name();
  CQC_CHECK_EQ((int)perm_.size(), rel.arity());

  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::vector<const Value*> key_cols;
  key_cols.reserve(perm_.size());
  for (int c : perm_) key_cols.push_back(rel.ColumnData(c));
  par::ParallelSort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (const Value* col : key_cols) {
      if (col[a] != col[b]) return col[a] < col[b];
    }
    return false;
  });

  cols_.resize(perm_.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(perm_.size());
  for (size_t level = 0; level < perm_.size(); ++level) {
    tasks.push_back([this, level, &rel, &order] {
      cols_[level].resize(num_rows_);
      const int c = perm_[level];
      const Value* col = rel.ColumnData(c);
      for (size_t i = 0; i < num_rows_; ++i) cols_[level][i] = col[order[i]];
    });
  }
  par::RunTasks(std::move(tasks));
}

size_t SortedIndex::LowerBound(RowRange r, int level, Value v) const {
  ops::Bump();
  ops::BumpRangeSeek();
  const auto& col = cols_[level];
  return std::lower_bound(col.begin() + r.begin, col.begin() + r.end, v) -
         col.begin();
}

size_t SortedIndex::SeekGE(RowRange r, int level, Value v,
                           size_t hint) const {
  ops::Bump();
  ops::BumpRangeSeek();
  const Value* col = cols_[level].data();
  const size_t lo = hint < r.begin ? r.begin : hint;
  // Keep the no-motion fast path inline (the leapfrog hint usually already
  // sits on the answer); the galloping block probe lives in the kernel.
  if (lo >= r.end || col[lo] >= v) return lo;
  return simd::SeekGE(col, lo, r.end, v);
}

size_t SortedIndex::RunEnd(RowRange r, int level, size_t pos) const {
  const Value* col = cols_[level].data();
  // Inline check for length-1 runs (set-semantics levels); longer runs go
  // to the block compare-and-count kernel.
  const size_t next = pos + 1;
  if (next >= r.end || col[next] != col[pos]) return next;
  return simd::RunEnd(col, pos, r.end);
}

size_t SortedIndex::UpperBound(RowRange r, int level, Value v) const {
  ops::Bump();
  ops::BumpRangeSeek();
  const auto& col = cols_[level];
  return std::upper_bound(col.begin() + r.begin, col.begin() + r.end, v) -
         col.begin();
}

RowRange SortedIndex::Refine(RowRange r, int level, Value v) const {
  size_t lo = LowerBound(r, level, v);
  RowRange narrowed{lo, r.end};
  size_t hi = UpperBound(narrowed, level, v);
  return {lo, hi};
}

RowRange SortedIndex::RefineRange(RowRange r, int level, Value lo, Value hi) const {
  if (lo > hi) return {r.begin, r.begin};
  size_t b = LowerBound(r, level, lo);
  RowRange narrowed{b, r.end};
  size_t e = UpperBound(narrowed, level, hi);
  return {b, e};
}

size_t SortedIndex::CountDistinct(RowRange r, int level) const {
  size_t count = 0;
  size_t pos = r.begin;
  while (pos < r.end) {
    ++count;
    pos = UpperBound({pos, r.end}, level, cols_[level][pos]);
  }
  return count;
}

size_t SortedIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this) + perm_.capacity() * sizeof(int);
  for (const auto& c : cols_) bytes += c.capacity() * sizeof(Value);
  return bytes;
}

}  // namespace cqc

#include "relational/sorted_index.h"

#include <algorithm>
#include <numeric>

#include "relational/relation.h"
#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

SortedIndex::SortedIndex(const Relation& rel, std::vector<int> perm)
    : perm_(std::move(perm)), num_rows_(rel.size()) {
  CQC_CHECK(rel.sealed()) << "index over unsealed relation " << rel.name();
  CQC_CHECK_EQ((int)perm_.size(), rel.arity());

  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (int c : perm_) {
      Value va = rel.At(a, c), vb = rel.At(b, c);
      if (va != vb) return va < vb;
    }
    return false;
  });

  cols_.resize(perm_.size());
  for (size_t level = 0; level < perm_.size(); ++level) {
    cols_[level].resize(num_rows_);
    const int c = perm_[level];
    for (size_t i = 0; i < num_rows_; ++i) cols_[level][i] = rel.At(order[i], c);
  }
}

size_t SortedIndex::LowerBound(RowRange r, int level, Value v) const {
  ops::Bump();
  const auto& col = cols_[level];
  return std::lower_bound(col.begin() + r.begin, col.begin() + r.end, v) -
         col.begin();
}

size_t SortedIndex::UpperBound(RowRange r, int level, Value v) const {
  ops::Bump();
  const auto& col = cols_[level];
  return std::upper_bound(col.begin() + r.begin, col.begin() + r.end, v) -
         col.begin();
}

RowRange SortedIndex::Refine(RowRange r, int level, Value v) const {
  size_t lo = LowerBound(r, level, v);
  RowRange narrowed{lo, r.end};
  size_t hi = UpperBound(narrowed, level, v);
  return {lo, hi};
}

RowRange SortedIndex::RefineRange(RowRange r, int level, Value lo, Value hi) const {
  if (lo > hi) return {r.begin, r.begin};
  size_t b = LowerBound(r, level, lo);
  RowRange narrowed{b, r.end};
  size_t e = UpperBound(narrowed, level, hi);
  return {b, e};
}

size_t SortedIndex::CountDistinct(RowRange r, int level) const {
  size_t count = 0;
  size_t pos = r.begin;
  while (pos < r.end) {
    ++count;
    pos = UpperBound({pos, r.end}, level, cols_[level][pos]);
  }
  return count;
}

size_t SortedIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this) + perm_.capacity() * sizeof(int);
  for (const auto& c : cols_) bytes += c.capacity() * sizeof(Value);
  return bytes;
}

}  // namespace cqc

// SortedIndex: a trie realized as column-major sorted arrays.
//
// The tuples of a relation are sorted lexicographically under a column
// permutation; a "trie node" is then just a contiguous row range plus a
// depth. Refining a range by fixing the next column to a value, or bounding
// it to an interval, is binary search: this gives the O~(1) count oracle
// that Lemma 3 of the paper assumes ("we can create an index that returns
// the count |RF(B)| in logarithmic time"), as well as the sorted child
// iteration required by worst-case optimal join.
#ifndef CQC_RELATIONAL_SORTED_INDEX_H_
#define CQC_RELATIONAL_SORTED_INDEX_H_

#include <cstddef>
#include <vector>

#include "util/common.h"

namespace cqc {

class Relation;

/// Contiguous run of rows [begin, end) at a given trie depth.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

class SortedIndex {
 public:
  /// Builds the index over `rel` (must be sealed) with sort order `perm`
  /// (level k of the trie is relation column perm[k]).
  SortedIndex(const Relation& rel, std::vector<int> perm);

  int depth() const { return (int)perm_.size(); }
  const std::vector<int>& perm() const { return perm_; }
  size_t num_rows() const { return num_rows_; }

  /// Root trie node spanning every tuple.
  RowRange Root() const { return {0, num_rows_}; }

  /// Value at trie level `level` of sorted row `row`.
  Value ValueAt(int level, size_t row) const { return cols_[level][row]; }

  /// Raw sorted column of `level` (num_rows values). For tight scan loops
  /// that want to walk a run without per-row accessor calls; the pointer is
  /// stable for the index's lifetime.
  const Value* LevelData(int level) const { return cols_[level].data(); }

  /// Sub-range of `r` whose level-`level` value equals `v` (may be empty).
  RowRange Refine(RowRange r, int level, Value v) const;

  /// Sub-range of `r` whose level-`level` value lies in [lo, hi].
  RowRange RefineRange(RowRange r, int level, Value lo, Value hi) const;

  /// First row at/after `r.begin` within `r` whose level value is >= v.
  size_t LowerBound(RowRange r, int level, Value v) const;
  /// First row within `r` whose level value is > v.
  size_t UpperBound(RowRange r, int level, Value v) const;

  /// First row in `r` with level value >= v, found by galloping
  /// (exponential search) from `hint`. Precondition: every row of `r`
  /// before `hint` has level value < v (hint = a previous seek position for
  /// a smaller target; pass r.begin when no hint is known). O(log d) in the
  /// distance d from the hint — O(1) for the sequential-enumeration case
  /// where the target is the very next run, vs O(log |r|) for LowerBound.
  size_t SeekGE(RowRange r, int level, Value v, size_t hint) const;

  /// End of the run of rows equal to the value at `pos` within `r`
  /// (pos must be in [r.begin, r.end)). Linear probe with a galloping
  /// fallback: runs are short in practice, so this beats a binary search.
  size_t RunEnd(RowRange r, int level, size_t pos) const;

  /// Smallest level value within `r`. Requires !r.empty().
  Value MinValue(RowRange r, int level) const { return cols_[level][r.begin]; }
  /// Largest level value within `r`. Requires !r.empty().
  Value MaxValue(RowRange r, int level) const { return cols_[level][r.end - 1]; }

  /// Given the row index of the current distinct value at `level`, returns
  /// the row index of the next distinct value within `r` (or r.end).
  size_t NextDistinct(RowRange r, int level, Value current) const {
    return UpperBound(r, level, current);
  }

  /// Number of distinct values at `level` within `r`. O(k log n) in the
  /// number k of distinct values.
  size_t CountDistinct(RowRange r, int level) const;

  size_t MemoryBytes() const;

 private:
  std::vector<int> perm_;
  size_t num_rows_;
  // cols_[level][sorted_row]; level k holds relation column perm_[k].
  std::vector<std::vector<Value>> cols_;
};

}  // namespace cqc

#endif  // CQC_RELATIONAL_SORTED_INDEX_H_

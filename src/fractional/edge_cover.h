// Fractional edge covers, the slack of a cover (§3.1, eq. 2), and AGM size
// bounds (§2.1, eq. 1).
#ifndef CQC_FRACTIONAL_EDGE_COVER_H_
#define CQC_FRACTIONAL_EDGE_COVER_H_

#include <vector>

#include "query/hypergraph.h"
#include "util/common.h"

namespace cqc {

struct EdgeCover {
  std::vector<double> weights;  // one per hyperedge, aligned with atoms
  double total = 0.0;           // sum of weights (= rho* when optimal)
  bool ok = false;
};

/// Minimum fractional edge cover of `target` (rho*_H(target)): min sum u_F
/// s.t. every x in target has coverage >= 1, u >= 0. Pass H.vertices() for
/// rho*(H). Returns ok=false if some target vertex lies in no edge.
EdgeCover FractionalEdgeCover(const Hypergraph& h, VarSet target);

/// Slack alpha(S) of cover `u` for S (eq. 2): min over x in S of the
/// coverage sum. Returns +infinity when S is empty.
double Slack(const Hypergraph& h, const std::vector<double>& u, VarSet s);

/// Among covers of `cover_target` with total weight <= budget, maximizes the
/// slack on `slack_target` (used to pick good Theorem-1 parameters, cf.
/// Example 7 where u=(1,..,1) has slack n).
EdgeCover MaxSlackCover(const Hypergraph& h, VarSet cover_target,
                        VarSet slack_target, double budget,
                        double* slack_out);

/// AGM bound  prod_F |R_F|^{u_F}  for relation sizes `sizes`.
double AgmBound(const std::vector<double>& sizes, const std::vector<double>& u);

/// log of the AGM bound (natural log), safe for large products.
double LogAgmBound(const std::vector<double>& sizes,
                   const std::vector<double>& u);

}  // namespace cqc

#endif  // CQC_FRACTIONAL_EDGE_COVER_H_

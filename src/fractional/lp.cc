#include "fractional/lp.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cqc {
namespace {

constexpr double kEps = 1e-9;

// Dense tableau: rows_ constraints in equality form over structural +
// slack/surplus + artificial columns, plus an objective row maintained as
// reduced costs. Minimization throughout.
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : m_(num_rows), n_(num_cols), a_(num_rows, std::vector<double>(num_cols + 1, 0.0)),
        basis_(num_rows, -1), obj_(num_cols + 1, 0.0) {}

  std::vector<std::vector<double>> a_;  // m x (n+1), last col = rhs
  std::vector<int> basis_;              // basic variable per row
  std::vector<double> obj_;             // reduced costs + objective value

  int m_, n_;

  void SetObjective(const std::vector<double>& costs) {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    for (size_t j = 0; j < costs.size(); ++j) obj_[j] = costs[j];
    // Price out current basis so reduced costs of basic columns are zero.
    for (int i = 0; i < m_; ++i) {
      int b = basis_[i];
      double c = obj_[b];
      if (std::fabs(c) < kEps) continue;
      for (int j = 0; j <= n_; ++j) obj_[j] -= c * a_[i][j];
    }
  }

  void Pivot(int row, int col) {
    double p = a_[row][col];
    for (int j = 0; j <= n_; ++j) a_[row][j] /= p;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      double f = a_[i][col];
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j <= n_; ++j) a_[i][j] -= f * a_[row][j];
    }
    double f = obj_[col];
    if (std::fabs(f) > 0) {
      for (int j = 0; j <= n_; ++j) obj_[j] -= f * a_[row][j];
    }
    basis_[row] = col;
  }

  /// Runs simplex on the current objective; `allowed(j)` gates entering
  /// columns. Returns false on unboundedness.
  template <typename Allowed>
  bool Iterate(Allowed allowed) {
    for (;;) {
      // Bland's rule: smallest-index column with negative reduced cost.
      int enter = -1;
      for (int j = 0; j < n_; ++j) {
        if (!allowed(j)) continue;
        if (obj_[j] < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      int leave = -1;
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (a_[i][enter] > kEps) {
          double ratio = a_[i][n_] / a_[i][enter];
          if (ratio < best - kEps ||
              (ratio < best + kEps &&
               (leave < 0 || basis_[i] < basis_[leave]))) {
            best = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

  double ObjectiveValue() const { return -obj_[n_]; }
};

}  // namespace

int LinearProgram::AddVariable(double cost) {
  costs_.push_back(cost);
  return (int)costs_.size() - 1;
}

void LinearProgram::AddLe(std::vector<std::pair<int, double>> terms, double rhs) {
  rows_.push_back({std::move(terms), Op::kLe, rhs});
}
void LinearProgram::AddGe(std::vector<std::pair<int, double>> terms, double rhs) {
  rows_.push_back({std::move(terms), Op::kGe, rhs});
}
void LinearProgram::AddEq(std::vector<std::pair<int, double>> terms, double rhs) {
  rows_.push_back({std::move(terms), Op::kEq, rhs});
}

LpSolution LinearProgram::Minimize() const {
  const int n_struct = num_vars();
  const int m = (int)rows_.size();

  // Column layout: [structural | slack/surplus | artificial].
  int num_slack = 0;
  for (const Row& r : rows_)
    if (r.op != Op::kEq) ++num_slack;
  // Every row gets an artificial if it has no natural initial basic column;
  // allocate pessimistically (one per row) and only use what's needed.
  const int slack_base = n_struct;
  const int art_base = n_struct + num_slack;
  const int n_total = art_base + m;

  Tableau t(m, n_total);
  int next_slack = 0;
  int next_art = 0;
  std::vector<bool> is_artificial(n_total, false);

  for (int i = 0; i < m; ++i) {
    Row r = rows_[i];
    // Normalize to rhs >= 0.
    double sign = 1.0;
    if (r.rhs < 0) {
      sign = -1.0;
      r.rhs = -r.rhs;
      if (r.op == Op::kLe)
        r.op = Op::kGe;
      else if (r.op == Op::kGe)
        r.op = Op::kLe;
    }
    for (auto [var, coeff] : r.terms) {
      CQC_CHECK_GE(var, 0);
      CQC_CHECK_LT(var, n_struct);
      t.a_[i][var] += sign * coeff;
    }
    t.a_[i][n_total] = r.rhs;
    if (r.op == Op::kLe) {
      int s = slack_base + next_slack++;
      t.a_[i][s] = 1.0;
      t.basis_[i] = s;
    } else if (r.op == Op::kGe) {
      int s = slack_base + next_slack++;
      t.a_[i][s] = -1.0;
      int a = art_base + next_art++;
      t.a_[i][a] = 1.0;
      is_artificial[a] = true;
      t.basis_[i] = a;
    } else {
      int a = art_base + next_art++;
      t.a_[i][a] = 1.0;
      is_artificial[a] = true;
      t.basis_[i] = a;
    }
  }

  LpSolution sol;

  // Phase 1: minimize the sum of artificials.
  if (next_art > 0) {
    std::vector<double> phase1(n_total, 0.0);
    for (int j = 0; j < n_total; ++j)
      if (is_artificial[j]) phase1[j] = 1.0;
    t.SetObjective(phase1);
    bool bounded = t.Iterate([](int) { return true; });
    CQC_CHECK(bounded) << "phase-1 LP cannot be unbounded";
    if (t.ObjectiveValue() > 1e-7) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Drive artificials out of the basis where possible.
    for (int i = 0; i < m; ++i) {
      if (!is_artificial[t.basis_[i]]) continue;
      int pivot_col = -1;
      for (int j = 0; j < art_base; ++j) {
        if (std::fabs(t.a_[i][j]) > kEps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) t.Pivot(i, pivot_col);
      // Otherwise the row is redundant; its artificial stays basic at zero,
      // which is harmless because phase 2 bans artificial entering columns.
    }
  }

  // Phase 2: original objective over non-artificial columns.
  std::vector<double> phase2(n_total, 0.0);
  for (int j = 0; j < n_struct; ++j) phase2[j] = costs_[j];
  t.SetObjective(phase2);
  bool bounded =
      t.Iterate([&](int j) { return !is_artificial[j]; });
  if (!bounded) {
    sol.status = LpStatus::kUnbounded;
    return sol;
  }

  sol.status = LpStatus::kOptimal;
  sol.objective = t.ObjectiveValue();
  sol.x.assign(n_struct, 0.0);
  for (int i = 0; i < m; ++i)
    if (t.basis_[i] < n_struct) sol.x[t.basis_[i]] = t.a_[i][n_total];
  return sol;
}

}  // namespace cqc

#include "fractional/optimizer.h"

#include <cmath>

#include "fractional/edge_cover.h"
#include "fractional/lp.h"
#include "util/logging.h"

namespace cqc {

CoverSolution MinDelayCover(const Hypergraph& h, VarSet free_set,
                            const std::vector<double>& log_sizes,
                            double log_space_budget) {
  CoverSolution out;
  CQC_CHECK_EQ((int)log_sizes.size(), h.num_edges());
  CQC_CHECK(free_set != 0) << "MinDelayCover requires free variables";

  // Charnes-Cooper variables: w_F = u_F / alpha, s = 1 / alpha,
  // y = (alpha log tau) / alpha = log tau.
  LinearProgram lp;
  std::vector<int> w(h.num_edges());
  for (int f = 0; f < h.num_edges(); ++f) w[f] = lp.AddVariable(0.0);
  const int s = lp.AddVariable(0.0);
  const int y = lp.AddVariable(1.0);  // minimize y = log tau

  // Space constraint: sum w_F log|R_F| - s log Sigma - y <= 0.
  {
    std::vector<std::pair<int, double>> terms;
    for (int f = 0; f < h.num_edges(); ++f)
      terms.emplace_back(w[f], log_sizes[f]);
    terms.emplace_back(s, -log_space_budget);
    terms.emplace_back(y, -1.0);
    lp.AddLe(std::move(terms), 0.0);
  }
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(h.vertices(), v)) continue;
    std::vector<std::pair<int, double>> terms;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) terms.emplace_back(w[f], 1.0);
    if (terms.empty()) return out;  // uncoverable vertex
    if (VarSetContains(free_set, v)) {
      // coverage(x)/alpha >= 1  (slack constraint scaled by s)
      lp.AddGe(terms, 1.0);
    }
    // coverage(x) >= 1 scaled:  sum w >= s.
    std::vector<std::pair<int, double>> scaled = terms;
    scaled.emplace_back(s, -1.0);
    lp.AddGe(std::move(scaled), 0.0);
  }
  // u_F <= 1 scaled: w_F <= s.
  for (int f = 0; f < h.num_edges(); ++f)
    lp.AddLe({{w[f], 1.0}, {s, -1.0}}, 0.0);
  // alpha >= 1 <=> s <= 1.
  lp.AddLe({{s, 1.0}}, 1.0);
  // tau >= 1 <=> y >= 0, already implied by variable non-negativity. (The
  // paper's Fig. 5 normalizes tau-hat >= 1 instead, which would force
  // tau >= e^{1/alpha}; we use the natural constant-delay floor tau >= 1.)
  // s must stay strictly positive for the transform to invert; with free
  // variables present, w_F <= s and coverage >= 1 force s > 0 at any
  // feasible point, so no explicit epsilon bound is needed.

  LpSolution sol = lp.Minimize();
  if (!sol.ok()) return out;
  const double s_val = sol.x[s];
  if (s_val < 1e-9) return out;  // defensive: transform not invertible

  out.feasible = true;
  out.alpha = 1.0 / s_val;
  out.u.resize(h.num_edges());
  out.rho = 0;
  for (int f = 0; f < h.num_edges(); ++f) {
    out.u[f] = sol.x[w[f]] / s_val;
    out.rho += out.u[f];
  }
  out.log_tau = std::max(0.0, sol.objective);
  // Space actually used: sum u log|R| - alpha log tau.
  double log_space = -out.alpha * out.log_tau;
  for (int f = 0; f < h.num_edges(); ++f)
    log_space += out.u[f] * log_sizes[f];
  out.log_space = std::max(0.0, log_space);
  return out;
}

CoverSolution MinSpaceCover(const Hypergraph& h, VarSet free_set,
                            const std::vector<double>& log_sizes,
                            double log_delay_budget) {
  // Binary search over log Sigma in [0, sum log sizes] (Prop. 12): space
  // never needs to exceed the full materialization bound.
  double lo = 0.0, hi = 0.0;
  for (double ls : log_sizes) hi += ls;
  hi = std::max(hi, 1.0);
  CoverSolution best;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    CoverSolution cand = MinDelayCover(h, free_set, log_sizes, mid);
    if (cand.feasible && cand.log_tau <= log_delay_budget + 1e-9) {
      best = cand;
      best.log_space = std::min(best.log_space, mid);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

BagCoverSolution SolveBagCover(const std::vector<VarSet>& edges,
                               VarSet bag_vars, VarSet bag_free,
                               double delta) {
  BagCoverSolution out;
  LinearProgram lp;
  std::vector<int> u(edges.size());
  for (size_t f = 0; f < edges.size(); ++f) u[f] = lp.AddVariable(1.0);
  // If the bag has free variables, alpha participates with objective
  // coefficient -delta; otherwise alpha is irrelevant (pin it at 1).
  const int alpha = lp.AddVariable(bag_free != 0 ? -delta : 0.0);
  lp.AddGe({{alpha, 1.0}}, 1.0);
  if (bag_free == 0) lp.AddLe({{alpha, 1.0}}, 1.0);

  for (VarId v = 0; v < kMaxVars; ++v) {
    if (!VarSetContains(bag_vars, v)) continue;
    std::vector<std::pair<int, double>> terms;
    for (size_t f = 0; f < edges.size(); ++f)
      if (VarSetContains(edges[f], v)) terms.emplace_back(u[f], 1.0);
    if (terms.empty()) return out;  // uncoverable bag variable
    lp.AddGe(terms, 1.0);
    if (VarSetContains(bag_free, v)) {
      std::vector<std::pair<int, double>> slack_terms = terms;
      slack_terms.emplace_back(alpha, -1.0);
      lp.AddGe(std::move(slack_terms), 0.0);
    }
  }
  // Keep the program bounded when delta > 0: alpha cannot exceed the best
  // possible coverage, which is at most the number of edges.
  lp.AddLe({{alpha, 1.0}}, (double)edges.size() + 1.0);

  LpSolution sol = lp.Minimize();
  if (!sol.ok()) return out;
  out.feasible = true;
  out.u.resize(edges.size());
  out.u_total = 0;
  for (size_t f = 0; f < edges.size(); ++f) {
    out.u[f] = sol.x[u[f]];
    out.u_total += out.u[f];
  }
  out.alpha = sol.x[alpha];
  out.rho_plus = out.u_total - delta * out.alpha;
  return out;
}

}  // namespace cqc

// A small dense two-phase primal simplex solver.
//
// Query hypergraphs have at most kMaxVars variables and a handful of atoms,
// so every LP in this library (fractional edge covers, slack maximization,
// the MinDelayCover program of Fig. 5) has tens of rows/columns; a dense
// tableau with Bland's anti-cycling rule is simple and exact enough.
#ifndef CQC_FRACTIONAL_LP_H_
#define CQC_FRACTIONAL_LP_H_

#include <utility>
#include <vector>

namespace cqc {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  // structural variable values
  bool ok() const { return status == LpStatus::kOptimal; }
};

/// Builds `min c.x  s.t.  constraints, x >= 0` incrementally.
class LinearProgram {
 public:
  /// Adds a variable with objective coefficient `cost`; returns its index.
  int AddVariable(double cost);

  int num_vars() const { return (int)costs_.size(); }

  /// sum(coeff * x_var) <= rhs
  void AddLe(std::vector<std::pair<int, double>> terms, double rhs);
  /// sum(coeff * x_var) >= rhs
  void AddGe(std::vector<std::pair<int, double>> terms, double rhs);
  /// sum(coeff * x_var) == rhs
  void AddEq(std::vector<std::pair<int, double>> terms, double rhs);

  /// Solves min c.x. Deterministic (Bland's rule).
  LpSolution Minimize() const;

 private:
  enum class Op { kLe, kGe, kEq };
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Op op;
    double rhs;
  };
  std::vector<double> costs_;
  std::vector<Row> rows_;
};

}  // namespace cqc

#endif  // CQC_FRACTIONAL_LP_H_

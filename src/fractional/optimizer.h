// §6 "The Complexity of Minimizing Delay": polynomial-time parameter
// optimization for Theorems 1 and 2.
//
// MinDelayCover: given a space budget Sigma, find the fractional edge cover
// u (and slack alpha) minimizing the achievable delay tau of Theorem 1,
// i.e. minimize log tau subject to
//     sum_F u_F log|R_F| <= log Sigma + alpha log tau        (space fits)
//     coverage(x) >= alpha   for x in V_f                    (slack)
//     coverage(x) >= 1       for x in V                      (cover)
//     0 <= u_F <= 1, alpha >= 1, tau >= e                    (tau-hat >= 1)
// The program is linear-fractional (Fig. 5a); the Charnes-Cooper
// substitution s = 1/alpha, w = s*u, y = s*tau_hat turns it into the LP of
// Fig. 5b whose objective y equals log tau directly.
//
// MinSpaceCover: given a delay budget Delta, binary-search the space budget
// (Prop. 12) re-running MinDelayCover at each step.
#ifndef CQC_FRACTIONAL_OPTIMIZER_H_
#define CQC_FRACTIONAL_OPTIMIZER_H_

#include <vector>

#include "query/hypergraph.h"
#include "util/common.h"

namespace cqc {

struct CoverSolution {
  bool feasible = false;
  std::vector<double> u;   // fractional edge cover, aligned with atoms
  double alpha = 1.0;      // slack on the free variables
  double rho = 0.0;        // sum of u
  double log_tau = 0.0;    // natural log of the minimized/required delay
  double log_space = 0.0;  // natural log of the space the solution uses
};

/// Minimizes delay under a space budget. `log_sizes[f]` = ln |R_F|;
/// `log_space_budget` = ln Sigma. Requires `free_set` nonempty (boolean
/// adorned views have no delay/space tradeoff: Prop. 1 applies).
CoverSolution MinDelayCover(const Hypergraph& h, VarSet free_set,
                            const std::vector<double>& log_sizes,
                            double log_space_budget);

/// Minimizes space under a delay budget ln tau <= log_delay_budget.
CoverSolution MinSpaceCover(const Hypergraph& h, VarSet free_set,
                            const std::vector<double>& log_sizes,
                            double log_delay_budget);

/// Per-bag program of Theorem 2 (eq. 3): given a delay exponent delta for
/// the bag, minimize  rho+ = sum_F u_F - delta * alpha(V_f^t)  over covers
/// of the bag's variables. Returns rho+ in `rho` ... no: `rho` keeps sum u
/// (the paper's u+_t) and `log_tau` is unused; rho+ is returned separately.
struct BagCoverSolution {
  bool feasible = false;
  std::vector<double> u;  // aligned with the provided bag edges
  double alpha = 1.0;
  double u_total = 0.0;   // u+_t = sum of weights
  double rho_plus = 0.0;  // sum u - delta * alpha
};

/// `edges` are the hyperedges available to cover the bag (already
/// intersected with the bag's variables); `bag_vars` all bag variables;
/// `bag_free` the bag's top-down free variables V_f^t; `delta` = delay
/// exponent delta(t).
BagCoverSolution SolveBagCover(const std::vector<VarSet>& edges,
                               VarSet bag_vars, VarSet bag_free, double delta);

}  // namespace cqc

#endif  // CQC_FRACTIONAL_OPTIMIZER_H_

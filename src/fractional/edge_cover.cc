#include "fractional/edge_cover.h"

#include <cmath>
#include <limits>

#include "fractional/lp.h"
#include "util/logging.h"

namespace cqc {

EdgeCover FractionalEdgeCover(const Hypergraph& h, VarSet target) {
  EdgeCover out;
  out.weights.assign(h.num_edges(), 0.0);
  // Feasibility: every target vertex must appear in an edge.
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(target, v)) continue;
    bool covered = false;
    for (VarSet e : h.edges())
      if (VarSetContains(e, v)) covered = true;
    if (!covered) return out;  // ok=false
  }
  if (target == 0) {
    out.ok = true;
    return out;  // empty cover
  }
  LinearProgram lp;
  for (int f = 0; f < h.num_edges(); ++f) lp.AddVariable(1.0);
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(target, v)) continue;
    std::vector<std::pair<int, double>> terms;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) terms.emplace_back(f, 1.0);
    lp.AddGe(std::move(terms), 1.0);
  }
  LpSolution sol = lp.Minimize();
  if (!sol.ok()) return out;
  out.weights = sol.x;
  out.total = sol.objective;
  out.ok = true;
  return out;
}

double Slack(const Hypergraph& h, const std::vector<double>& u, VarSet s) {
  CQC_CHECK_EQ((int)u.size(), h.num_edges());
  double alpha = std::numeric_limits<double>::infinity();
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(s, v)) continue;
    double cover = 0.0;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) cover += u[f];
    alpha = std::min(alpha, cover);
  }
  return alpha;
}

EdgeCover MaxSlackCover(const Hypergraph& h, VarSet cover_target,
                        VarSet slack_target, double budget,
                        double* slack_out) {
  EdgeCover out;
  out.weights.assign(h.num_edges(), 0.0);
  // max alpha  s.t.  sum u <= budget, coverage(x) >= 1 (x in cover_target),
  // coverage(x) >= alpha (x in slack_target), u >= 0, alpha >= 0.
  LinearProgram lp;
  for (int f = 0; f < h.num_edges(); ++f) lp.AddVariable(0.0);
  int alpha = lp.AddVariable(-1.0);  // maximize alpha == minimize -alpha
  {
    std::vector<std::pair<int, double>> terms;
    for (int f = 0; f < h.num_edges(); ++f) terms.emplace_back(f, 1.0);
    lp.AddLe(std::move(terms), budget);
  }
  // Per-edge weights stay in [0, 1], matching the Fig. 5 program.
  for (int f = 0; f < h.num_edges(); ++f) lp.AddLe({{f, 1.0}}, 1.0);
  for (VarId v = 0; v < h.num_vars(); ++v) {
    const bool in_cover = VarSetContains(cover_target, v);
    const bool in_slack = VarSetContains(slack_target, v);
    if (!in_cover && !in_slack) continue;
    std::vector<std::pair<int, double>> terms;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) terms.emplace_back(f, 1.0);
    if (in_cover) lp.AddGe(terms, 1.0);
    if (in_slack) {
      terms.emplace_back(alpha, -1.0);
      lp.AddGe(std::move(terms), 0.0);
    }
  }
  LpSolution sol = lp.Minimize();
  if (!sol.ok()) return out;
  out.weights.assign(sol.x.begin(), sol.x.begin() + h.num_edges());
  out.total = 0;
  for (double w : out.weights) out.total += w;
  out.ok = true;
  if (slack_out) *slack_out = -sol.objective;
  return out;
}

double AgmBound(const std::vector<double>& sizes, const std::vector<double>& u) {
  return std::exp(LogAgmBound(sizes, u));
}

double LogAgmBound(const std::vector<double>& sizes,
                   const std::vector<double>& u) {
  CQC_CHECK_EQ(sizes.size(), u.size());
  double log_bound = 0.0;
  for (size_t f = 0; f < u.size(); ++f) {
    if (u[f] <= 0) continue;
    if (sizes[f] <= 0) return -std::numeric_limits<double>::infinity();
    log_bound += u[f] * std::log(sizes[f]);
  }
  return log_bound;
}

}  // namespace cqc

#include "simd/simd_caps.h"

#include <cstdlib>

#include "simd/kernels.h"

namespace cqc {
namespace simd {

namespace detail {
// Defined in kernels.cc: one table per level compiled into every binary.
const KernelTable* TableFor(Level level);
extern const KernelTable* g_active;
}  // namespace detail

namespace {

Level DetectImpl() {
  const char* force = std::getenv("CQC_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1' && force[1] == '\0') {
    return Level::kScalar;
  }
#if defined(__aarch64__)
  // NEON is baseline on aarch64.
  return Level::kNEON;
#elif defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSSE42;
  return Level::kScalar;
#else
  return Level::kScalar;
#endif
}

Level g_active_level = [] {
  Level detected = DetectImpl();
  detail::g_active = detail::TableFor(detected);
  return detected;
}();

}  // namespace

Level Detected() {
  static const Level detected = DetectImpl();
  return detected;
}

Level Active() { return g_active_level; }

Level SetLevel(Level level) {
  Level detected = Detected();
  // Clamp to what the CPU can run. Levels are per-architecture, so an
  // off-architecture request (e.g. kNEON on x86) also falls back to the
  // detected best rather than crashing on illegal instructions.
  bool runnable = level == Level::kScalar || level == detected ||
                  (static_cast<int>(level) < static_cast<int>(detected) &&
                   level != Level::kNEON);
#if defined(__aarch64__)
  runnable = level == Level::kScalar || level == Level::kNEON;
#endif
  if (!runnable) level = detected;
  detail::g_active = detail::TableFor(level);
  g_active_level = level;
  return level;
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  Level detected = Detected();
#if defined(__aarch64__)
  if (detected == Level::kNEON) levels.push_back(Level::kNEON);
#else
  if (static_cast<int>(detected) >= static_cast<int>(Level::kSSE42)) {
    levels.push_back(Level::kSSE42);
  }
  if (static_cast<int>(detected) >= static_cast<int>(Level::kAVX2)) {
    levels.push_back(Level::kAVX2);
  }
#endif
  return levels;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSSE42: return "sse4.2";
    case Level::kAVX2: return "avx2";
    case Level::kNEON: return "neon";
  }
  return "?";
}

}  // namespace simd
}  // namespace cqc

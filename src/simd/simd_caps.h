// Runtime CPU capability detection and dispatch control for the SIMD
// kernel layer (simd/kernels.h).
//
// The library ships one binary with several implementations of each hot
// kernel (AVX2 / SSE4.2 on x86-64, NEON on aarch64, plus a portable scalar
// twin) compiled via per-function target attributes, so no global -mavx2
// flag is needed and the binary still runs on hardware without the fast
// paths. The dispatch level is resolved ONCE at startup:
//
//   * Detected()  — the best level the running CPU supports, after applying
//                   the CQC_FORCE_SCALAR=1 environment override (ops /
//                   debugging: pin the scalar twins without rebuilding);
//   * Active()    — the level the kernel table currently dispatches to;
//   * SetLevel()  — test hook (cf. par::SetBuildThreads) that re-points the
//                   kernel table at any level <= Detected(), so differential
//                   tests can sweep every level on one machine and assert
//                   bit-identical outputs.
//
// SetLevel is NOT synchronized against concurrently running kernels: call
// it from single-threaded test setup only. Every kernel has a scalar twin
// with identical output semantics — levels differ in instruction choice,
// never in results.
#ifndef CQC_SIMD_SIMD_CAPS_H_
#define CQC_SIMD_SIMD_CAPS_H_

#include <vector>

namespace cqc {
namespace simd {

/// Dispatch levels, ordered by preference within an architecture. A level
/// is meaningful only on its architecture (kNEON never appears on x86).
enum class Level : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
  kNEON = 3,
};

/// Best level the running CPU supports (cached; applies CQC_FORCE_SCALAR).
Level Detected();

/// Level the kernel table currently dispatches to.
Level Active();

/// Re-points the kernel table at `level`, clamped to Detected(); returns
/// the level actually in effect. Test hook — single-threaded callers only.
Level SetLevel(Level level);

/// Every level runnable on this machine, ascending (always starts with
/// kScalar; ends with Detected()). Differential tests sweep this.
std::vector<Level> SupportedLevels();

/// Human-readable name ("scalar", "sse4.2", "avx2", "neon").
const char* LevelName(Level level);

}  // namespace simd
}  // namespace cqc

#endif  // CQC_SIMD_SIMD_CAPS_H_

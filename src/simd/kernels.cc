// Kernel implementations for every dispatch level. x86 fast paths are
// compiled with per-function target attributes (no global -mavx2), so one
// binary carries all levels and simd_caps.cc picks at startup. All results
// are uniquely defined by the kernel contracts (first index satisfying a
// predicate, exact field bits), so levels may use different strategies —
// galloping vs block compare-and-count — and still agree bit-for-bit.
#include "simd/kernels.h"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace cqc {
namespace simd {
namespace detail {

namespace {

// ---------------------------------------------------------------------------
// Scalar twins. These pin the reference semantics; every vector kernel below
// must match them bit-for-bit (tests/simd_kernels_test.cc enforces it).
// ---------------------------------------------------------------------------

size_t SeekGEScalar(const Value* col, size_t begin, size_t end, Value v) {
  size_t lo = begin;
  if (lo >= end || col[lo] >= v) return lo;
  // col[lo] < v: gallop until the step overshoots, then binary-search the
  // last bracket. Invariant: col[prev] < v.
  size_t step = 1;
  size_t prev = lo;
  while (lo + step < end && col[lo + step] < v) {
    prev = lo + step;
    step <<= 1;
  }
  const size_t hi = std::min(lo + step, end);
  return std::lower_bound(col + prev + 1, col + hi, v) - col;
}

// Gallops on the equality predicate itself (rather than SeekGE(v + 1), which
// would overflow at v == UINT64_MAX). Invariant: col[lo] == v.
size_t RunEndGallop(const Value* col, size_t lo, size_t end, Value v) {
  size_t step = 1;
  while (lo + step < end && col[lo + step] == v) {
    lo += step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, end);
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (col[mid] == v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

size_t RunEndScalar(const Value* col, size_t pos, size_t end) {
  const Value v = col[pos];
  size_t i = pos + 1;
  // Short runs dominate; probe linearly, then gallop out of long runs.
  const size_t linear_end = std::min(end, pos + 32);
  while (i < linear_end && col[i] == v) ++i;
  if (i < linear_end || i >= end || col[i] != v) return i;
  return RunEndGallop(col, i, end, v);
}

void UnpackRowsScalar(const uint64_t* words, const PackedColSpec* cols,
                      int arity, size_t row_bits, size_t first, size_t n,
                      Value* out) {
  size_t base = first * row_bits;
  for (size_t r = 0; r < n; ++r, base += row_bits, out += arity) {
    for (int c = 0; c < arity; ++c) {
      const PackedColSpec& spec = cols[c];
      if (spec.mask == 0) {  // width-0 column: owns no bits, no load
        out[c] = 0;
        continue;
      }
      const size_t bitpos = base + spec.bit;
      const size_t w = bitpos >> 6;
      const unsigned off = (unsigned)(bitpos & 63);
      const uint64_t lo = words[w] >> off;
      const uint64_t hi = (words[w + 1] << 1) << (63 - off);
      out[c] = (lo | hi) & spec.mask;
    }
  }
}

uint32_t MatchTagsScalar(const uint8_t* fps, uint8_t tag) {
  uint32_t m = 0;
  for (size_t i = 0; i < kGroupWidth; ++i) {
    m |= (uint32_t)(fps[i] == tag) << i;
  }
  return m;
}

uint32_t MatchEmptyScalar(const uint32_t* rows, uint32_t empty) {
  uint32_t m = 0;
  for (size_t i = 0; i < kGroupWidth; ++i) {
    m |= (uint32_t)(rows[i] == empty) << i;
  }
  return m;
}

constexpr KernelTable kScalarTable = {
    &SeekGEScalar, &RunEndScalar, &UnpackRowsScalar,
    &MatchTagsScalar, &MatchEmptyScalar,
};

// ---------------------------------------------------------------------------
// x86: SSE4.2 (2 x u64 lanes, 16 x u8 / 4 x u32 compares) and AVX2
// (4 x u64 lanes, gathers + variable shifts). Unsigned 64-bit compares are
// built from the signed cmpgt by flipping the sign bit of both operands.
// ---------------------------------------------------------------------------
#if defined(__x86_64__) || defined(__i386__)

constexpr uint64_t kSignFlip = 0x8000000000000000ull;

__attribute__((target("sse4.2"))) size_t SeekGESse(const Value* col,
                                                   size_t begin, size_t end,
                                                   Value v) {
  size_t lo = begin;
  if (lo >= end || col[lo] >= v) return lo;
  size_t step = 1;
  size_t prev = lo;
  while (lo + step < end && col[lo + step] < v) {
    prev = lo + step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, end);
  size_t b = prev + 1;
  // Binary-narrow the bracket, then compare-and-count 2 lanes per step: the
  // column is sorted, so the first lane with col[i] >= v is the answer.
  while (hi - b > 32) {
    const size_t mid = b + (hi - b) / 2;
    if (col[mid] < v) {
      b = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m128i vflip = _mm_set1_epi64x((long long)(v ^ kSignFlip));
  const __m128i flip = _mm_set1_epi64x((long long)kSignFlip);
  size_t i = b;
  for (; i + 2 <= hi; i += 2) {
    const __m128i d = _mm_xor_si128(
        _mm_loadu_si128((const __m128i*)(col + i)), flip);
    // Lane set <=> col[i + lane] < v.
    const int m = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(vflip, d)));
    if (m != 0x3) return i + (size_t)__builtin_ctz(~(unsigned)m & 0x3u);
  }
  while (i < hi && col[i] < v) ++i;
  return i;
}

__attribute__((target("sse4.2"))) size_t RunEndSse(const Value* col,
                                                   size_t pos, size_t end) {
  const Value v = col[pos];
  size_t i = pos + 1;
  // Same hybrid shape as the AVX2 kernel: scalar for short runs, 2-lane
  // blocks for medium ones, gallop past pathological ones.
  const size_t linear_end = std::min(end, pos + 32);
  while (i < linear_end && col[i] == v) ++i;
  if (i < linear_end || i >= end || col[i] != v) return i;
  const __m128i vv = _mm_set1_epi64x((long long)v);
  const size_t scan_end = std::min(end, pos + 128);
  for (; i + 2 <= scan_end; i += 2) {
    const __m128i d = _mm_loadu_si128((const __m128i*)(col + i));
    const int m = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(d, vv)));
    if (m != 0x3) return i + (size_t)__builtin_ctz(~(unsigned)m & 0x3u);
  }
  while (i < scan_end && col[i] == v) ++i;
  if (i < scan_end || i >= end || col[i] != v) return i;
  return RunEndGallop(col, i, end, v);
}

__attribute__((target("sse4.2"))) uint32_t MatchTagsSse(const uint8_t* fps,
                                                        uint8_t tag) {
  const __m128i t = _mm_set1_epi8((char)tag);
  const __m128i d = _mm_loadu_si128((const __m128i*)fps);
  return (uint32_t)_mm_movemask_epi8(_mm_cmpeq_epi8(d, t));
}

__attribute__((target("sse4.2"))) uint32_t MatchEmptySse(const uint32_t* rows,
                                                         uint32_t empty) {
  const __m128i e = _mm_set1_epi32((int)empty);
  uint32_t m = 0;
  for (size_t i = 0; i < kGroupWidth; i += 4) {
    const __m128i d = _mm_loadu_si128((const __m128i*)(rows + i));
    m |= (uint32_t)_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(d, e)))
         << i;
  }
  return m;
}

constexpr KernelTable kSseTable = {
    &SeekGESse, &RunEndSse, &UnpackRowsScalar,  // no gathers below AVX2
    &MatchTagsSse, &MatchEmptySse,
};

__attribute__((target("avx2"))) size_t SeekGEAvx2(const Value* col,
                                                  size_t begin, size_t end,
                                                  Value v) {
  size_t lo = begin;
  if (lo >= end || col[lo] >= v) return lo;
  size_t step = 1;
  size_t prev = lo;
  while (lo + step < end && col[lo + step] < v) {
    prev = lo + step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, end);
  size_t b = prev + 1;
  while (hi - b > 64) {
    const size_t mid = b + (hi - b) / 2;
    if (col[mid] < v) {
      b = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i vflip = _mm256_set1_epi64x((long long)(v ^ kSignFlip));
  const __m256i flip = _mm256_set1_epi64x((long long)kSignFlip);
  size_t i = b;
  for (; i + 4 <= hi; i += 4) {
    const __m256i d = _mm256_xor_si256(
        _mm256_loadu_si256((const __m256i*)(col + i)), flip);
    const int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vflip, d)));
    if (m != 0xF) return i + (size_t)__builtin_ctz(~(unsigned)m & 0xFu);
  }
  while (i < hi && col[i] < v) ++i;
  return i;
}

__attribute__((target("avx2"))) size_t RunEndAvx2(const Value* col, size_t pos,
                                                  size_t end) {
  const Value v = col[pos];
  size_t i = pos + 1;
  // Short runs: a scalar compare per element beats the vector pipeline's
  // compare->movemask->branch latency. Vector lanes only pay from ~32
  // elements on, where whole blocks are skipped per branch.
  const size_t linear_end = std::min(end, pos + 32);
  while (i < linear_end && col[i] == v) ++i;
  if (i < linear_end || i >= end || col[i] != v) return i;
  const __m256i vv = _mm256_set1_epi64x((long long)v);
  const size_t scan_end = std::min(end, pos + 256);
  for (; i + 4 <= scan_end; i += 4) {
    const __m256i d = _mm256_loadu_si256((const __m256i*)(col + i));
    const int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(d, vv)));
    if (m != 0xF) return i + (size_t)__builtin_ctz(~(unsigned)m & 0xFu);
  }
  while (i < scan_end && col[i] == v) ++i;
  if (i < scan_end || i >= end || col[i] != v) return i;
  return RunEndGallop(col, i, end, v);
}

// Batch decode, 4 rows per step: per column, gather the two covering words
// of all 4 rows, splice with variable shifts (sllv/srlv), mask, and scatter
// the lanes into the row-major output. The (x << 1) << (63 - off) splice is
// the same branch-free idiom as the scalar GetBits.
__attribute__((target("avx2"))) void UnpackRowsAvx2(
    const uint64_t* words, const PackedColSpec* cols, int arity,
    size_t row_bits, size_t first, size_t n, Value* out) {
  const __m256i row_off = _mm256_setr_epi64x(
      0, (long long)row_bits, (long long)(2 * row_bits),
      (long long)(3 * row_bits));
  const __m256i six3 = _mm256_set1_epi64x(63);
  const __m256i one = _mm256_set1_epi64x(1);
  size_t r = 0;
  size_t base = first * row_bits;
  alignas(32) uint64_t tmp[4];
  for (; r + 4 <= n; r += 4, base += 4 * row_bits, out += 4 * arity) {
    for (int c = 0; c < arity; ++c) {
      const PackedColSpec& spec = cols[c];
      if (spec.mask == 0) {
        out[0 * arity + c] = 0;
        out[1 * arity + c] = 0;
        out[2 * arity + c] = 0;
        out[3 * arity + c] = 0;
        continue;
      }
      const __m256i bitpos = _mm256_add_epi64(
          _mm256_set1_epi64x((long long)(base + spec.bit)), row_off);
      const __m256i w = _mm256_srli_epi64(bitpos, 6);
      const __m256i off = _mm256_and_si256(bitpos, six3);
      const __m256i w0 =
          _mm256_i64gather_epi64((const long long*)words, w, 8);
      const __m256i w1 = _mm256_i64gather_epi64(
          (const long long*)words, _mm256_add_epi64(w, one), 8);
      const __m256i lo = _mm256_srlv_epi64(w0, off);
      const __m256i hi = _mm256_sllv_epi64(_mm256_sllv_epi64(w1, one),
                                           _mm256_sub_epi64(six3, off));
      const __m256i val = _mm256_and_si256(
          _mm256_or_si256(lo, hi), _mm256_set1_epi64x((long long)spec.mask));
      _mm256_store_si256((__m256i*)tmp, val);
      out[0 * arity + c] = tmp[0];
      out[1 * arity + c] = tmp[1];
      out[2 * arity + c] = tmp[2];
      out[3 * arity + c] = tmp[3];
    }
  }
  if (r < n) {
    UnpackRowsScalar(words, cols, arity, row_bits, first + r, n - r, out);
  }
}

__attribute__((target("avx2"))) uint32_t MatchEmptyAvx2(const uint32_t* rows,
                                                        uint32_t empty) {
  const __m256i e = _mm256_set1_epi32((int)empty);
  const __m256i d0 = _mm256_loadu_si256((const __m256i*)rows);
  const __m256i d1 = _mm256_loadu_si256((const __m256i*)(rows + 8));
  const uint32_t m0 =
      (uint32_t)_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(d0, e)));
  const uint32_t m1 =
      (uint32_t)_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(d1, e)));
  return m0 | (m1 << 8);
}

constexpr KernelTable kAvx2Table = {
    &SeekGEAvx2, &RunEndAvx2, &UnpackRowsAvx2,
    &MatchTagsSse,  // 16-byte tag compare is already one SSE op
    &MatchEmptyAvx2,
};

#endif  // x86

// ---------------------------------------------------------------------------
// aarch64: NEON is baseline; 2 x u64 lanes with native unsigned compares.
// ---------------------------------------------------------------------------
#if defined(__aarch64__)

inline uint32_t Mask2(uint64x2_t cmp) {
  return (uint32_t)(vgetq_lane_u64(cmp, 0) & 1) |
         ((uint32_t)(vgetq_lane_u64(cmp, 1) & 1) << 1);
}

size_t SeekGENeon(const Value* col, size_t begin, size_t end, Value v) {
  size_t lo = begin;
  if (lo >= end || col[lo] >= v) return lo;
  size_t step = 1;
  size_t prev = lo;
  while (lo + step < end && col[lo + step] < v) {
    prev = lo + step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, end);
  size_t b = prev + 1;
  while (hi - b > 32) {
    const size_t mid = b + (hi - b) / 2;
    if (col[mid] < v) {
      b = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint64x2_t vv = vdupq_n_u64(v);
  size_t i = b;
  for (; i + 2 <= hi; i += 2) {
    const uint64x2_t d = vld1q_u64(col + i);
    const uint32_t m = Mask2(vcltq_u64(d, vv));  // lane set <=> col[i] < v
    if (m != 0x3) return i + (size_t)__builtin_ctz(~m & 0x3u);
  }
  while (i < hi && col[i] < v) ++i;
  return i;
}

size_t RunEndNeon(const Value* col, size_t pos, size_t end) {
  const Value v = col[pos];
  const uint64x2_t vv = vdupq_n_u64(v);
  size_t i = pos + 1;
  const size_t scan_end = std::min(end, pos + 64);
  for (; i + 2 <= scan_end; i += 2) {
    const uint64x2_t d = vld1q_u64(col + i);
    const uint32_t m = Mask2(vceqq_u64(d, vv));
    if (m != 0x3) return i + (size_t)__builtin_ctz(~m & 0x3u);
  }
  while (i < scan_end && col[i] == v) ++i;
  if (i < scan_end || i >= end || col[i] != v) return i;
  return RunEndGallop(col, i, end, v);
}

uint32_t MatchTagsNeon(const uint8_t* fps, uint8_t tag) {
  const uint8x16_t d = vld1q_u8(fps);
  const uint8x16_t eq = vceqq_u8(d, vdupq_n_u8(tag));
  // Collapse each byte lane to one bit: shift lane i's 0xff down to bit i.
  static const int8_t kShifts[16] = {0, 1, 2, 3, 4, 5, 6, 7,
                                     0, 1, 2, 3, 4, 5, 6, 7};
  const uint8x16_t bits =
      vshlq_u8(vandq_u8(eq, vdupq_n_u8(1)), vld1q_s8(kShifts));
  const uint8_t lo = vaddv_u8(vget_low_u8(bits));
  const uint8_t hi = vaddv_u8(vget_high_u8(bits));
  return (uint32_t)lo | ((uint32_t)hi << 8);
}

uint32_t MatchEmptyNeon(const uint32_t* rows, uint32_t empty) {
  const uint32x4_t e = vdupq_n_u32(empty);
  uint32_t m = 0;
  for (size_t i = 0; i < kGroupWidth; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(rows + i), e);
    const uint32x4_t bits =
        vshlq_u32(vandq_u32(eq, vdupq_n_u32(1)),
                  (int32x4_t){0, 1, 2, 3});
    m |= vaddvq_u32(bits) << i;
  }
  return m;
}

constexpr KernelTable kNeonTable = {
    &SeekGENeon, &RunEndNeon, &UnpackRowsScalar,  // no gather on NEON
    &MatchTagsNeon, &MatchEmptyNeon,
};

#endif  // aarch64

}  // namespace

// Constant-initialized to scalar so kernels called before dispatch init (or
// from other TUs' static initializers) are already correct, just unboosted.
const KernelTable* g_active = &kScalarTable;

const KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
#if defined(__x86_64__) || defined(__i386__)
    case Level::kSSE42:
      return &kSseTable;
    case Level::kAVX2:
      return &kAvx2Table;
#endif
#if defined(__aarch64__)
    case Level::kNEON:
      return &kNeonTable;
#endif
    default:
      return &kScalarTable;
  }
}

}  // namespace detail
}  // namespace simd
}  // namespace cqc

// SIMD kernels for the three hottest inner loops, behind runtime dispatch
// (simd/simd_caps.h):
//
//   * SeekGE / RunEnd — sorted-column search steps backing
//     SortedIndex::SeekGE and the run scans in JoinIterator: block
//     compare-and-count probes (4–16 lanes per step) replace one-element
//     galloping and linear run probes, with a scalar tail for the last
//     partial block.
//   * UnpackRows — batch decode of bit-packed tuple rows
//     (core/bitpack.h): per column, gather the two covering words for a
//     block of rows and splice with vector variable shifts, instead of the
//     scalar two-word splice per field.
//   * MatchTags / MatchEmpty — 16-slot group probes for the flat hash
//     index (relational/hash_index.h): one vector compare yields the
//     fingerprint-match and empty-slot masks of a whole cluster window,
//     backing the block tombstone filter in core/updatable_rep.cc.
//
// Every kernel has a scalar twin with IDENTICAL output semantics (the
// differential suite in tests/simd_kernels_test.cc sweeps all levels and
// asserts bit-identical results); levels differ in instruction choice
// only. Calls go through one function-pointer table swapped by
// simd::SetLevel — kernels process blocks, so the indirect call is
// amortized.
#ifndef CQC_SIMD_KERNELS_H_
#define CQC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/simd_caps.h"
#include "util/common.h"

namespace cqc {
namespace simd {

/// Per-column decode constants of a bit-packed row layout, hoisted into one
/// contiguous plan array (built once per pool) so decode loops read a
/// single cache line instead of three parallel vectors.
struct PackedColSpec {
  uint32_t bit = 0;      // bit offset of the column within a row
  uint32_t width = 0;    // field width in bits (0..64)
  uint64_t mask = 0;     // (1 << width) - 1, ~0 for width 64, 0 for width 0
};

/// Number of slots a hash-index group probe examines per step. The fps /
/// rows arrays must be padded with kGroupWidth mirrored slots past the
/// power-of-two capacity so a group starting anywhere reads contiguously.
inline constexpr size_t kGroupWidth = 16;

namespace detail {

/// The dispatch table. One instance per level lives in kernels.cc; the
/// active pointer is swapped by simd::SetLevel.
struct KernelTable {
  /// First i in [begin, end) with col[i] >= v (col sorted ascending);
  /// `end` when none. Galloping + block count; O(log d) from `begin`.
  size_t (*seek_ge)(const Value* col, size_t begin, size_t end, Value v);
  /// First i in (pos, end) with col[i] != col[pos]; `end` when the run
  /// covers the suffix. col sorted ascending, pos < end.
  size_t (*run_end)(const Value* col, size_t pos, size_t end);
  /// Decodes rows [first, first + n) of a packed pool into `out`
  /// (row-major, n * arity values). `words` must carry the pool's pad
  /// word; zero-width columns never touch memory.
  void (*unpack_rows)(const uint64_t* words, const PackedColSpec* cols,
                      int arity, size_t row_bits, size_t first, size_t n,
                      Value* out);
  /// Bit i set <=> fps[i] == tag, for i in [0, kGroupWidth).
  uint32_t (*match_tags)(const uint8_t* fps, uint8_t tag);
  /// Bit i set <=> rows[i] == empty, for i in [0, kGroupWidth).
  uint32_t (*match_empty)(const uint32_t* rows, uint32_t empty);
};

extern const KernelTable* g_active;

}  // namespace detail

inline size_t SeekGE(const Value* col, size_t begin, size_t end, Value v) {
  return detail::g_active->seek_ge(col, begin, end, v);
}

inline size_t RunEnd(const Value* col, size_t pos, size_t end) {
  return detail::g_active->run_end(col, pos, end);
}

inline void UnpackRows(const uint64_t* words, const PackedColSpec* cols,
                       int arity, size_t row_bits, size_t first, size_t n,
                       Value* out) {
  detail::g_active->unpack_rows(words, cols, arity, row_bits, first, n, out);
}

inline uint32_t MatchTags(const uint8_t* fps, uint8_t tag) {
  return detail::g_active->match_tags(fps, tag);
}

inline uint32_t MatchEmpty(const uint32_t* rows, uint32_t empty) {
  return detail::g_active->match_empty(rows, empty);
}

}  // namespace simd
}  // namespace cqc

#endif  // CQC_SIMD_KERNELS_H_

// A small work-stealing thread pool for shard-parallel enumeration.
//
// Each worker owns a deque: submissions are spread round-robin, a worker
// pops its own work from the front, and it steals from the front of a
// victim's deque when its own runs dry. Both ends are FIFO — deliberately
// NOT the classic owner-LIFO discipline: a producer task may block on
// consumer backpressure while occupying its worker (see
// parallel_enumerator.h), and an ordered consumer only drains the
// lowest-numbered unfinished shard. FIFO pops guarantee a queue's earliest
// task is taken (by owner or thief) before any later one, so the shard the
// consumer is waiting on is always already started — with LIFO pops, late
// shards can fill their buffers and park every worker while the front
// shard's task is still queued: deadlock. Deques are mutex-guarded rather
// than lock-free: the pool runs coarse tasks (a whole shard drain each),
// so queue operations are nanoseconds against milliseconds of task work
// and the simpler invariants are worth far more than the lock elision.
//
// Lifecycle: Submit() never blocks; WaitIdle() blocks until every submitted
// task has finished; the destructor stops accepting work, drains nothing
// (pending tasks still run), and joins. All public methods are thread-safe.
#ifndef CQC_EXEC_THREAD_POOL_H_
#define CQC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cqc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Joins after all submitted tasks have run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` (round-robin across worker deques).
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  int num_threads() const { return (int)threads_.size(); }

  /// The hardware parallelism available to this process (>= 1).
  static int DefaultThreadCount();

  /// True while the calling thread is executing inside a pool worker. Used
  /// by nested-parallelism gates (par_util): a pool task that reaches a
  /// parallel sort runs it serially instead of oversubscribing, and must
  /// never Submit+WaitIdle on its own pool (deadlock: the waiting worker is
  /// itself a pending task).
  static bool InWorker();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops the front of the own queue, else steals the front of the next
  /// non-empty victim. FIFO at both ends — load-bearing, see file header.
  bool Grab(size_t self, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;  // guards epoch_ / stop_ transitions and the cvs
  std::condition_variable work_cv_;   // signalled on submit and stop
  std::condition_variable idle_cv_;   // signalled when pending_ hits zero
  uint64_t epoch_ = 0;                // bumped per submit (missed-wakeup guard)
  bool stop_ = false;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
};

/// Process-wide pool for build-time parallelism (index builds, dictionary
/// subtree sweeps), created on first use and sized par::BuildThreads().
/// Builds Submit from caller threads and WaitIdle for their own tasks; the
/// wait may also cover tasks of a concurrent build sharing the pool, which
/// is benign (no task ever blocks on another).
ThreadPool& SharedBuildPool();

}  // namespace cqc

#endif  // CQC_EXEC_THREAD_POOL_H_

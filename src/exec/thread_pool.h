// A small work-stealing thread pool for shard-parallel enumeration.
//
// Each worker owns a deque: submissions are spread round-robin, a worker
// pops its own work from the front, and it steals from the front of a
// victim's deque when its own runs dry. Both ends are FIFO — deliberately
// NOT the classic owner-LIFO discipline: a producer task may block on
// consumer backpressure while occupying its worker (see
// parallel_enumerator.h), and an ordered consumer only drains the
// lowest-numbered unfinished shard. FIFO pops guarantee a queue's earliest
// task is taken (by owner or thief) before any later one, so the shard the
// consumer is waiting on is always already started — with LIFO pops, late
// shards can fill their buffers and park every worker while the front
// shard's task is still queued: deadlock. Deques are mutex-guarded rather
// than lock-free: the pool runs coarse tasks (a whole shard drain each),
// so queue operations are nanoseconds against milliseconds of task work
// and the simpler invariants are worth far more than the lock elision.
//
// Lifecycle: Submit() never blocks; WaitIdle() blocks until every submitted
// task has finished; the destructor stops accepting work, drains nothing
// (pending tasks still run), and joins. All public methods are thread-safe.
//
// Fault containment: a task that throws never reaches std::terminate. The
// worker loop is a backstop — it swallows the exception, records it in
// pool-level counters, and keeps the worker alive — but a backstop cannot
// attribute the fault to a request. Submitters that need attribution wrap
// their tasks in a TaskGroup, whose Wait() returns the first failure of
// that group (and only that group) as a Status.
#ifndef CQC_EXEC_THREAD_POOL_H_
#define CQC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/failpoint.h"
#include "util/status.h"

namespace cqc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Joins after all submitted tasks have run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` (round-robin across worker deques).
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  int num_threads() const { return (int)threads_.size(); }

  /// The hardware parallelism available to this process (>= 1).
  static int DefaultThreadCount();

  /// True while the calling thread is executing inside a pool worker. Used
  /// by nested-parallelism gates (par_util): a pool task that reaches a
  /// parallel sort runs it serially instead of oversubscribing, and must
  /// never Submit+WaitIdle on its own pool (deadlock: the waiting worker is
  /// itself a pending task).
  static bool InWorker();

  /// Tasks whose exceptions reached the worker backstop (i.e. were not
  /// already contained by a TaskGroup or other submitter wrapper). Nonzero
  /// here means some submitter has a containment gap — the work was
  /// dropped, not retried.
  size_t uncaught_task_exceptions() const {
    return uncaught_.load(std::memory_order_relaxed);
  }

  /// Message of the first backstopped exception ("" if none).
  std::string first_uncaught_message() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops the front of the own queue, else steals the front of the next
  /// non-empty victim. FIFO at both ends — load-bearing, see file header.
  bool Grab(size_t self, std::function<void()>* out);
  /// Runs `task` with the exception backstop. Workers never die.
  void RunContained(std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;  // guards epoch_ / stop_ transitions and the cvs
  std::condition_variable work_cv_;   // signalled on submit and stop
  std::condition_variable idle_cv_;   // signalled when pending_ hits zero
  uint64_t epoch_ = 0;                // bumped per submit (missed-wakeup guard)
  bool stop_ = false;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};

  std::atomic<size_t> uncaught_{0};   // backstopped task exceptions
  mutable std::mutex error_mu_;       // guards first_uncaught_
  std::string first_uncaught_;
};

/// A group of tasks submitted to a pool whose completion — and failure —
/// is tracked per group, not pool-wide. Submit() wraps each task so that
/// an exception (or a fired `thread_pool/task` failpoint) is captured as
/// a Status instead of reaching the worker backstop; Wait() blocks until
/// every task of THIS group finished and returns the first failure.
/// Unlike ThreadPool::WaitIdle(), a concurrent build sharing the pool
/// neither delays the error report nor pollutes it.
///
/// Tasks may return void (exceptions are the only failure mode) or Status
/// (returned errors count as failures too). The group must outlive its
/// tasks; the destructor waits.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  template <typename Fn>
  void Submit(Fn&& fn) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++outstanding_;
    }
    pool_.Submit([this, fn = std::forward<Fn>(fn)]() mutable {
      Status s;
      if (failpoint::ShouldFail("thread_pool/task")) {
        s = failpoint::InjectedFault("thread_pool/task");
      } else {
        try {
          if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
          } else {
            s = fn();
          }
        } catch (const std::exception& e) {
          s = Status::Unavailable(std::string("task failed: ") + e.what());
        } catch (...) {
          s = Status::Unavailable("task failed: non-standard exception");
        }
      }
      Finish(std::move(s));
    });
  }

  /// Blocks until all tasks submitted to this group have finished; returns
  /// OK or the first failure. Idempotent.
  Status Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return outstanding_ == 0; });
    return first_error_;
  }

  /// Tasks of this group that failed so far (observable after Wait()).
  size_t failed_tasks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return failed_;
  }

 private:
  void Finish(Status s) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!s.ok()) {
      ++failed_;
      if (first_error_.ok()) first_error_ = std::move(s);
    }
    if (--outstanding_ == 0) cv_.notify_all();
  }

  ThreadPool& pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
  size_t failed_ = 0;
  Status first_error_;
};

/// Process-wide pool for build-time parallelism (index builds, dictionary
/// subtree sweeps), created on first use and sized par::BuildThreads().
/// Builds Submit from caller threads and WaitIdle for their own tasks; the
/// wait may also cover tasks of a concurrent build sharing the pool, which
/// is benign (no task ever blocks on another).
ThreadPool& SharedBuildPool();

}  // namespace cqc

#endif  // CQC_EXEC_THREAD_POOL_H_

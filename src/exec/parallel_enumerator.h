// Shard-parallel enumeration over any TupleEnumerator family.
//
// A ParallelEnumerator drains K disjoint shards of an output space
// concurrently on a small work-stealing thread pool and re-exposes the
// result as one ordinary pull-based TupleEnumerator, so every existing
// consumer (CollectAll, DrainBatched, the CLI print loop, the bench
// harness) parallelizes without change. Producers fill fixed-size
// TupleBuffer chunks through the batch API (TupleEnumerator::NextBatch) —
// tuples cross threads in flat cache-friendly blocks, never one at a time.
//
// Two delivery modes:
//   * ordered (default): chunks are handed out shard 0 first, then shard 1,
//     ... — when the shards are a ShardPlan's lex ranges this reproduces
//     the sequential enumeration byte for byte while later shards are
//     produced in the background;
//   * unordered: chunks are handed out as they are produced (highest
//     throughput; the multiset of tuples is identical).
//
// Backpressure: each shard may hold at most options.max_chunks_per_shard
// finished chunks (ordered mode; one global bound of the same total size in
// unordered mode). Producers park on a condition variable when their bound
// is hit, so memory stays O(shards * chunk) even when the consumer is slow.
// The ordered bound is deliberately per shard: the consumer always drains
// the currently-front shard, so that shard's producer can always make
// progress — a single global bound could fill up with later shards' chunks
// and deadlock against a consumer waiting on the front shard.
//
// Destroying the enumerator early (consumer abandons the stream) cancels
// the producers at their next chunk boundary and joins the pool.
#ifndef CQC_EXEC_PARALLEL_ENUMERATOR_H_
#define CQC_EXEC_PARALLEL_ENUMERATOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/enumerator.h"
#include "exec/thread_pool.h"
#include "query/adorned_view.h"
#include "util/tuple_buffer.h"

namespace cqc {

class CompressedRep;
class DecomposedRep;

struct ParallelOptions {
  /// Worker threads; 0 = ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Shards to plan; 0 = kShardsPerThread * threads (see shard_planner.h
  /// for the heuristic). Planners may return fewer.
  size_t num_shards = 0;
  /// Ordered (sequential-identical) vs unordered (fastest) delivery.
  bool ordered = true;
  /// Tuples per producer chunk: the cross-thread transfer granularity.
  size_t batch_size = 1024;
  /// Finished chunks a shard may buffer before its producer blocks.
  size_t max_chunks_per_shard = 8;
  /// Optional deadline/cancellation context, polled by every shard
  /// producer at chunk boundaries (amortized O(1)). Not owned; must
  /// outlive the enumerator. See util/request_context.h.
  const RequestContext* ctx = nullptr;
};

class ParallelEnumerator : public TupleEnumerator {
 public:
  /// Builds the enumerator for shard `k` (called on a worker thread; must
  /// be thread-safe for concurrent calls with distinct k).
  using ShardFactory =
      std::function<std::unique_ptr<TupleEnumerator>(size_t)>;

  /// Starts draining `num_shards` shards immediately. `arity` is the tuple
  /// arity of every shard stream.
  ParallelEnumerator(ShardFactory factory, size_t num_shards, int arity,
                     ParallelOptions options);
  ~ParallelEnumerator() override;

  ParallelEnumerator(const ParallelEnumerator&) = delete;
  ParallelEnumerator& operator=(const ParallelEnumerator&) = delete;

  bool Next(Tuple* out) override;
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override;

  /// OK, or why the stream was cut short: the first shard-producer fault
  /// (contained exception / fired failpoint → kUnavailable) or the
  /// options.ctx deadline/cancellation. Buffered chunks of other shards
  /// still drain, so a fault truncates rather than empties the stream —
  /// callers must treat a non-OK StreamStatus as "result incomplete".
  Status StreamStatus() const override;

 private:
  struct ShardState {
    std::deque<TupleBuffer> chunks;  // finished, not yet consumed
    bool done = false;               // producer finished this shard
  };

  void ProduceShard(size_t shard);
  /// The chunk-production loop; its Status is recorded by ProduceShard.
  Status DrainShard(size_t shard);
  /// Moves the next chunk (respecting the mode) into current_; false when
  /// every shard is exhausted and drained.
  bool FetchChunk();

  ShardFactory factory_;
  const int arity_;
  const ParallelOptions options_;

  mutable std::mutex mu_;
  std::condition_variable produced_cv_;  // consumer waits for chunks
  std::condition_variable space_cv_;     // producers wait for room
  std::vector<ShardState> shards_;
  std::deque<TupleBuffer> unordered_ready_;  // unordered mode spool
  size_t unordered_done_ = 0;                // shards finished (unordered)
  size_t front_shard_ = 0;                   // ordered-mode consume cursor
  bool cancel_ = false;
  Status status_;  // first producer fault / deadline (guarded by mu_)

  TupleBuffer current_;  // chunk being handed to the consumer
  size_t read_pos_ = 0;  // tuples of current_ already consumed

  ThreadPool pool_;  // declared last: joins before state is destroyed
};

/// Shard-parallel Answer for the Theorem 1 structure: plans lex ranges with
/// ShardPlanner and drains them via AnswerRange. Ordered mode reproduces
/// rep.Answer(vb) exactly; unordered mode the same multiset. Boolean views
/// (num_free == 0) fall back to the sequential enumerator.
std::unique_ptr<TupleEnumerator> ParallelAnswer(const CompressedRep& rep,
                                                const BoundValuation& vb,
                                                ParallelOptions options = {});

/// Shard-parallel Answer for the Theorem 2 structure: shards are residue
/// classes of the first bag's tuple stream (AnswerShard), so delivery is
/// always unordered — the multiset matches rep.Answer(vb); the Algorithm 5
/// order is not preserved across shards.
std::unique_ptr<TupleEnumerator> ParallelAnswer(const DecomposedRep& rep,
                                                const BoundValuation& vb,
                                                ParallelOptions options = {});

}  // namespace cqc

#endif  // CQC_EXEC_PARALLEL_ENUMERATOR_H_

#include "exec/par_util.h"

#include <atomic>

#include "exec/thread_pool.h"

namespace cqc {
namespace par {
namespace {

std::atomic<int> g_build_threads{0};  // 0 = hardware default
thread_local int tls_region_depth = 0;

}  // namespace

int BuildThreads() {
  const int n = g_build_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : ThreadPool::DefaultThreadCount();
}

void SetBuildThreads(int n) {
  g_build_threads.store(n, std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_region_depth > 0; }

namespace internal {

RegionGuard::RegionGuard() { ++tls_region_depth; }
RegionGuard::~RegionGuard() { --tls_region_depth; }

bool SerialOnly() { return InParallelRegion() || ThreadPool::InWorker(); }

}  // namespace internal

void RunTasks(std::vector<std::function<void()>> tasks) {
  const int threads = BuildThreads();
  if (tasks.size() <= 1 || threads <= 1 || internal::SerialOnly()) {
    for (auto& t : tasks) t();
    return;
  }
  internal::RegionGuard guard;
  const size_t workers = std::min<size_t>((size_t)threads, tasks.size());
  std::atomic<size_t> next{0};
  auto drain = [&] {
    internal::RegionGuard inner;  // tasks reaching par_util again go serial
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      tasks[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();
  for (auto& t : pool) t.join();
}

}  // namespace par
}  // namespace cqc

#include "exec/thread_pool.h"

#include <algorithm>

#include "exec/par_util.h"
#include "util/logging.h"

namespace cqc {
namespace {

thread_local bool tls_in_worker = false;

}  // namespace

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool& SharedBuildPool() {
  static ThreadPool pool(par::BuildThreads());
  return pool;
}

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = (size_t)std::max(1, num_threads);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::Submit(std::function<void()> fn) {
  CQC_CHECK(fn != nullptr);
  pending_.fetch_add(1, std::memory_order_relaxed);
  const size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   queues_.size();
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::Grab(size_t self, std::function<void()>* out) {
  {  // Own work first, oldest-first — see the header on why FIFO.
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // Steal oldest-first from the next victim around the ring.
  for (size_t d = 1; d < queues_.size(); ++d) {
    WorkerQueue& q = *queues_[(self + d) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

std::string ThreadPool::first_uncaught_message() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return first_uncaught_;
}

void ThreadPool::RunContained(std::function<void()>& task) {
  // Backstop only: submitters that need attribution (TaskGroup,
  // ParallelEnumerator) catch before the exception gets here. Anything
  // that does arrive means dropped work, so record it for diagnostics —
  // but never let a task take down the process.
  try {
    task();
  } catch (const std::exception& e) {
    uncaught_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(error_mu_);
    if (first_uncaught_.empty()) first_uncaught_ = e.what();
  } catch (...) {
    uncaught_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(error_mu_);
    if (first_uncaught_.empty()) first_uncaught_ = "non-standard exception";
  }
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_in_worker = true;
  std::function<void()> task;
  for (;;) {
    if (Grab(self, &task)) {
      RunContained(task);
      task = nullptr;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out: wake WaitIdle under the lock so the wakeup cannot
        // slip between its predicate check and its wait.
        std::lock_guard<std::mutex> lk(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) return;
    const uint64_t seen = epoch_;
    lk.unlock();
    // A submit may have landed between the failed Grab and reading epoch_;
    // re-check the queues once before committing to sleep.
    if (Grab(self, &task)) {
      RunContained(task);
      task = nullptr;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> ilk(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    lk.lock();
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
  }
}

}  // namespace cqc

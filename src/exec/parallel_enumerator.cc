#include "exec/parallel_enumerator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/compressed_rep.h"
#include "core/shard_planner.h"
#include "decomposition/decomposed_rep.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace cqc {
namespace {

int ResolveThreads(const ParallelOptions& options) {
  return options.num_threads > 0 ? options.num_threads
                                 : ThreadPool::DefaultThreadCount();
}

size_t ResolveShards(const ParallelOptions& options, int threads) {
  return options.num_shards > 0 ? options.num_shards
                                : kShardsPerThread * (size_t)threads;
}

}  // namespace

ParallelEnumerator::ParallelEnumerator(ShardFactory factory,
                                       size_t num_shards, int arity,
                                       ParallelOptions options)
    : factory_(std::move(factory)),
      arity_(arity),
      options_(options),
      shards_(num_shards),
      current_(arity),
      pool_(ResolveThreads(options)) {
  CQC_CHECK(factory_ != nullptr);
  CQC_CHECK_GE(arity, 0);
  CQC_CHECK_GT(options_.batch_size, 0u);
  CQC_CHECK_GT(options_.max_chunks_per_shard, 0u);
  for (size_t s = 0; s < num_shards; ++s)
    pool_.Submit([this, s] { ProduceShard(s); });
}

ParallelEnumerator::~ParallelEnumerator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancel_ = true;
  }
  space_cv_.notify_all();
  pool_.WaitIdle();
  // pool_ (declared last) joins its workers on destruction.
}

void ParallelEnumerator::ProduceShard(size_t shard) {
  // Containment wrapper: whatever DrainShard does — throw (a buggy shard
  // enumerator, an injected exception), hit the deadline, or finish — the
  // shard is marked done and the consumer woken. A producer that died
  // without this would leave FetchChunk waiting forever.
  Status s;
  try {
    failpoint::MaybeThrow("parallel/produce");
    s = DrainShard(shard);
  } catch (const std::exception& e) {
    s = Status::Unavailable(std::string("shard producer failed: ") +
                            e.what());
  } catch (...) {
    s = Status::Unavailable("shard producer failed: non-standard exception");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!s.ok() && status_.ok()) status_ = std::move(s);
  shards_[shard].done = true;
  ++unordered_done_;
  produced_cv_.notify_all();
}

Status ParallelEnumerator::DrainShard(size_t shard) {
  {
    // A task that starts after the consumer abandoned the stream skips the
    // enumerator construction and batch work entirely.
    std::lock_guard<std::mutex> lk(mu_);
    if (cancel_) return Status::Ok();
  }
  if (Status s = RequestContext::Check(options_.ctx); !s.ok()) return s;
  std::unique_ptr<TupleEnumerator> e = factory_(shard);
  CQC_CHECK(e != nullptr);
  const size_t batch = options_.batch_size;
  // In unordered mode all shards share one spool with a proportional total
  // bound; in ordered mode every shard buffers independently (see header).
  const size_t cap = options_.max_chunks_per_shard *
                     (options_.ordered ? 1 : shards_.size());
  for (;;) {
    TupleBuffer buf(arity_);
    buf.Reserve(batch);
    const size_t n = e->NextBatch(&buf, batch);
    const bool exhausted = n < batch;
    if (n > 0) {
      std::unique_lock<std::mutex> lk(mu_);
      if (options_.ordered) {
        ShardState& st = shards_[shard];
        space_cv_.wait(lk, [&] {
          return cancel_ || st.chunks.size() < cap;
        });
        if (cancel_) return Status::Ok();
        st.chunks.push_back(std::move(buf));
      } else {
        space_cv_.wait(lk, [&] {
          return cancel_ || unordered_ready_.size() < cap;
        });
        if (cancel_) return Status::Ok();
        unordered_ready_.push_back(std::move(buf));
      }
      produced_cv_.notify_all();
    }
    if (exhausted) return e->StreamStatus();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cancel_) return Status::Ok();
    }
    // Per-chunk deadline poll: one check per batch_size tuples produced.
    if (Status s = RequestContext::Check(options_.ctx); !s.ok()) return s;
  }
}

Status ParallelEnumerator::StreamStatus() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

bool ParallelEnumerator::FetchChunk() {
  std::unique_lock<std::mutex> lk(mu_);
  if (options_.ordered) {
    for (;;) {
      if (front_shard_ == shards_.size()) return false;
      ShardState& st = shards_[front_shard_];
      produced_cv_.wait(lk, [&] { return !st.chunks.empty() || st.done; });
      if (!st.chunks.empty()) {
        current_ = std::move(st.chunks.front());
        st.chunks.pop_front();
        read_pos_ = 0;
        space_cv_.notify_all();
        return true;
      }
      ++front_shard_;  // done and drained: move to the next lex range
    }
  }
  produced_cv_.wait(lk, [&] {
    return !unordered_ready_.empty() || unordered_done_ == shards_.size();
  });
  if (unordered_ready_.empty()) return false;
  current_ = std::move(unordered_ready_.front());
  unordered_ready_.pop_front();
  read_pos_ = 0;
  space_cv_.notify_all();
  return true;
}

bool ParallelEnumerator::Next(Tuple* out) {
  while (read_pos_ >= current_.size()) {
    if (!FetchChunk()) return false;
  }
  const TupleSpan t = current_[read_pos_++];
  out->assign(t.begin(), t.end());
  return true;
}

size_t ParallelEnumerator::NextBatch(TupleBuffer* out, size_t max_tuples) {
  size_t emitted = 0;
  while (emitted < max_tuples) {
    if (read_pos_ >= current_.size()) {
      if (!FetchChunk()) break;
      continue;
    }
    const size_t take =
        std::min(max_tuples - emitted, current_.size() - read_pos_);
    for (size_t i = 0; i < take; ++i) out->Append(current_[read_pos_ + i]);
    read_pos_ += take;
    emitted += take;
  }
  return emitted;
}

std::unique_ptr<TupleEnumerator> ParallelAnswer(const CompressedRep& rep,
                                                const BoundValuation& vb,
                                                ParallelOptions options) {
  if (rep.view().num_free() == 0) return rep.Answer(vb);
  const int threads = ResolveThreads(options);
  auto plan = std::make_shared<ShardPlan>(
      ShardPlanner::Plan(rep, ResolveShards(options, threads)));
  if (plan->shards.empty()) return std::make_unique<EmptyEnumerator>();
  auto factory = [&rep, vb, plan](size_t s) {
    return rep.AnswerRange(vb, plan->shards[s]);
  };
  return std::make_unique<ParallelEnumerator>(
      std::move(factory), plan->shards.size(), rep.view().num_free(),
      options);
}

std::unique_ptr<TupleEnumerator> ParallelAnswer(const DecomposedRep& rep,
                                                const BoundValuation& vb,
                                                ParallelOptions options) {
  const int threads = ResolveThreads(options);
  const size_t shards = ResolveShards(options, threads);
  // Residue-class shards interleave the Algorithm 5 order, so ordered
  // delivery would impose an order no sequential path produces; always
  // deliver unordered.
  options.ordered = false;
  auto factory = [&rep, vb, shards](size_t s) {
    return rep.AnswerShard(vb, s, shards);
  };
  return std::make_unique<ParallelEnumerator>(
      std::move(factory), shards, rep.view().num_free(), options);
}

}  // namespace cqc

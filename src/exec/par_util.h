// Build-time parallelism helpers: a chunked parallel sort and a task-list
// runner, both self-gating.
//
// These back the bulk phases of representation construction — Relation::Seal
// row sorts, SortedIndex builds, column scatters — where the work is a
// single large data-parallel operation on a caller thread. They spawn plain
// std::threads (not the shared ThreadPool) because they may be reached FROM
// a pool task (e.g. an index build submitted by CompressedRep::Build): a
// pool task that waited on its own pool would deadlock, and nested fan-out
// would oversubscribe. The gates below make any nested call run serially:
//   * inside a ThreadPool worker           -> serial
//   * inside another par_util region       -> serial
//   * input below the split threshold      -> serial
//   * BuildThreads() == 1                  -> serial
//
// BuildThreads() defaults to the hardware parallelism and is overridable
// (SetBuildThreads) so tests can exercise the parallel paths on small
// machines and ops can cap build fan-out.
#ifndef CQC_EXEC_PAR_UTIL_H_
#define CQC_EXEC_PAR_UTIL_H_

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace cqc {
namespace par {

/// Worker count for build-time parallelism (>= 1).
int BuildThreads();
/// Overrides BuildThreads(); n <= 0 restores the hardware default. Takes
/// effect for later calls (the shared pool is sized at first use).
void SetBuildThreads(int n);

/// True while inside a par_util parallel region (any thread).
bool InParallelRegion();

namespace internal {
class RegionGuard {
 public:
  RegionGuard();
  ~RegionGuard();
};
bool SerialOnly();
}  // namespace internal

/// Runs every task, possibly concurrently. Tasks must be independent.
void RunTasks(std::vector<std::function<void()>> tasks);

/// std::sort with chunked fan-out + pairwise merge when the input is large
/// and the gates allow it. Comparator requirements as for std::sort.
template <typename It, typename Cmp>
void ParallelSort(It begin, It end, Cmp cmp) {
  const size_t n = (size_t)(end - begin);
  constexpr size_t kMinParallelSort = 1u << 15;
  const int threads = BuildThreads();
  if (n < kMinParallelSort || threads <= 1 || internal::SerialOnly()) {
    std::sort(begin, end, cmp);
    return;
  }
  internal::RegionGuard guard;
  size_t k = std::min<size_t>((size_t)threads, 8);
  while (k > 1 && n / k < kMinParallelSort / 2) --k;
  if (k <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  // Sort k chunks (k-1 spawned threads + this one), then merge pairwise.
  std::vector<size_t> bounds(k + 1);
  for (size_t i = 0; i <= k; ++i) bounds[i] = n * i / k;
  {
    std::vector<std::thread> workers;
    workers.reserve(k - 1);
    for (size_t i = 1; i < k; ++i)
      workers.emplace_back([&, i] {
        std::sort(begin + bounds[i], begin + bounds[i + 1], cmp);
      });
    std::sort(begin + bounds[0], begin + bounds[1], cmp);
    for (auto& w : workers) w.join();
  }
  for (size_t width = 1; width < k; width *= 2) {
    std::vector<std::thread> workers;
    for (size_t i = 0; i + width < k; i += 2 * width) {
      const size_t lo = bounds[i];
      const size_t mid = bounds[i + width];
      const size_t hi = bounds[std::min(i + 2 * width, k)];
      workers.emplace_back([=, &cmp] {
        std::inplace_merge(begin + lo, begin + mid, begin + hi, cmp);
      });
    }
    for (auto& w : workers) w.join();
  }
}

}  // namespace par
}  // namespace cqc

#endif  // CQC_EXEC_PAR_UTIL_H_

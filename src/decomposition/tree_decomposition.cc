#include "decomposition/tree_decomposition.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace cqc {

int TreeDecomposition::AddNode(VarSet bag) {
  CQC_CHECK(!finalized_);
  bags_.push_back(bag);
  return (int)bags_.size() - 1;
}

void TreeDecomposition::AddEdge(int a, int b) {
  CQC_CHECK(!finalized_);
  CQC_CHECK_GE(a, 0);
  CQC_CHECK_LT(a, num_nodes());
  CQC_CHECK_GE(b, 0);
  CQC_CHECK_LT(b, num_nodes());
  CQC_CHECK_NE(a, b);
  edges_.emplace_back(a, b);
}

void TreeDecomposition::Finalize(int root) {
  CQC_CHECK(!finalized_);
  CQC_CHECK_GE(root, 0);
  CQC_CHECK_LT(root, num_nodes());
  CQC_CHECK_EQ(edges_.size(), bags_.size() - 1)
      << "a tree on n nodes has n-1 edges";
  root_ = root;
  parent_.assign(num_nodes(), -1);
  children_.assign(num_nodes(), {});
  anc_.assign(num_nodes(), 0);

  std::vector<std::vector<int>> adj(num_nodes());
  for (auto [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // DFS orientation; also detects cycles / disconnection via visit count.
  std::vector<int> stack{root};
  std::vector<bool> seen(num_nodes(), false);
  seen[root] = true;
  preorder_.clear();
  while (!stack.empty()) {
    int t = stack.back();
    stack.pop_back();
    preorder_.push_back(t);
    // Children in ascending id order for deterministic traversal.
    std::vector<int> nbrs = adj[t];
    std::sort(nbrs.begin(), nbrs.end(), std::greater<int>());
    for (int nb : nbrs) {
      if (seen[nb]) continue;
      seen[nb] = true;
      parent_[nb] = t;
      anc_[nb] = anc_[t] | bags_[t];
      stack.push_back(nb);
    }
  }
  CQC_CHECK_EQ(preorder_.size(), bags_.size()) << "decomposition not a tree";
  for (int t : preorder_)
    if (t != root_) children_[parent_[t]].push_back(t);
  for (auto& c : children_) std::sort(c.begin(), c.end());
  // Recompute preorder with sorted children for determinism.
  preorder_.clear();
  std::vector<int> stack2{root_};
  while (!stack2.empty()) {
    int t = stack2.back();
    stack2.pop_back();
    preorder_.push_back(t);
    for (auto it = children_[t].rbegin(); it != children_[t].rend(); ++it)
      stack2.push_back(*it);
  }
  finalized_ = true;
}

Status TreeDecomposition::Validate(const Hypergraph& h) const {
  if (!finalized_) return Status::Error("decomposition not finalized");
  // (1) every hyperedge inside some bag.
  for (int f = 0; f < h.num_edges(); ++f) {
    bool covered = false;
    for (VarSet b : bags_)
      if ((h.edges()[f] & ~b) == 0) covered = true;
    if (!covered)
      return Status::Error("hyperedge " + std::to_string(f) +
                           " is not contained in any bag");
  }
  // (2) running intersection: the bags containing x form a subtree.
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(h.vertices(), v)) continue;
    // Count nodes containing v whose parent does not contain v: must be <=1
    // (a connected subtree has exactly one top node).
    int tops = 0;
    for (int t = 0; t < num_nodes(); ++t) {
      if (!VarSetContains(bags_[t], v)) continue;
      if (parent_[t] < 0 || !VarSetContains(bags_[parent_[t]], v)) ++tops;
    }
    if (tops > 1)
      return Status::Error("variable " + std::to_string(v) +
                           " violates the running intersection property");
    if (tops == 0)
      return Status::Error("variable " + std::to_string(v) +
                           " appears in no bag");
  }
  return Status::Ok();
}

Status TreeDecomposition::ValidateConnex(VarSet bound) const {
  if (!finalized_) return Status::Error("decomposition not finalized");
  if (bags_[root_] != bound)
    return Status::Error("root bag must equal the bound variables");
  for (int t = 0; t < num_nodes(); ++t) {
    if (t == root_) continue;
    if (bags_[t] & bound & ~anc_[t])
      return Status::Error("bound variable appears below the root without "
                           "being introduced above");
  }
  return Status::Ok();
}

std::string TreeDecomposition::ToString(const ConjunctiveQuery& cq) const {
  std::ostringstream os;
  for (int t : preorder_) {
    os << (t == root_ ? "root " : "     ") << "bag " << t << " {";
    bool first = true;
    for (VarId v = 0; v < cq.num_vars(); ++v) {
      if (!VarSetContains(bags_[t], v)) continue;
      if (!first) os << ",";
      os << cq.var_name(v);
      first = false;
    }
    os << "}";
    if (parent_[t] >= 0) os << " <- bag " << parent_[t];
    os << "\n";
  }
  return os.str();
}

}  // namespace cqc

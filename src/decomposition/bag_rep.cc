#include "decomposition/bag_rep.h"

#include "join/bound_atom.h"
#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace cqc {
namespace {

/// Scans rows [range) of a sorted index, emitting columns [from_level, to).
class RangeScanEnumerator : public TupleEnumerator {
 public:
  RangeScanEnumerator(const SortedIndex* index, RowRange range,
                      int from_level, int to_level)
      : index_(index), range_(range), from_(from_level), to_(to_level),
        row_(range.begin) {}

  bool Next(Tuple* out) override {
    if (row_ >= range_.end) return false;
    out->resize(to_ - from_);
    for (int l = from_; l < to_; ++l)
      (*out)[l - from_] = index_->ValueAt(l, row_);
    ++row_;
    return true;
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t n = 0;
    while (n < max_tuples && row_ < range_.end) {
      Value* slot = out->AppendSlot();
      for (int l = from_; l < to_; ++l)
        slot[l - from_] = index_->ValueAt(l, row_);
      ++row_;
      ++n;
    }
    return n;
  }

 private:
  const SortedIndex* index_;
  RowRange range_;
  int from_, to_;
  size_t row_;
};

std::vector<int> IdentityPerm(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// MaterializedBagRep
// ---------------------------------------------------------------------------

Result<std::unique_ptr<MaterializedBagRep>> MaterializedBagRep::Build(
    const AdornedView& view, const Database& db, const Database* locals) {
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error("bag view must be a natural join");
  const int nb = view.num_bound();
  const int nf = view.num_free();

  // Materialize the bag join with variable order [V_b^t..., V_f^t...]:
  // treat every variable as a join level.
  std::vector<VarId> order = view.bound_vars();
  order.insert(order.end(), view.free_vars().begin(),
               view.free_vars().end());
  std::vector<VarId> no_bound;
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : cq.atoms()) {
    const Relation* rel = ResolveRelation(atom.relation, db, locals);
    if (rel == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    atoms.emplace_back(atom, *rel, no_bound, order);
  }

  auto rep = std::unique_ptr<MaterializedBagRep>(
      new MaterializedBagRep(nb, nf));
  rep->table_ = std::make_unique<Relation>("bag_table", nb + nf);

  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms) {
    JoinAtomInput in;
    in.index = &atom.bf_index();  // no bound vars: bf == fb == view order
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  std::vector<LevelConstraint> constraints(nb + nf, LevelConstraint::Any());
  JoinIterator join(std::move(inputs), nb + nf, std::move(constraints));
  constexpr size_t kBatch = 1024;
  TupleBuffer batch(nb + nf);
  for (;;) {
    batch.Clear();
    const size_t n = join.NextBatch(&batch, kBatch);
    for (size_t i = 0; i < n; ++i) rep->table_->InsertRow(batch[i].data());
    if (n < kBatch) break;
  }
  rep->table_->Seal();
  rep->Reindex();
  return std::move(rep);
}

void MaterializedBagRep::Reindex() {
  index_ = &table_->GetIndex(IdentityPerm(num_bound_ + num_free_));
}

std::unique_ptr<TupleEnumerator> MaterializedBagRep::Answer(
    const Tuple& vb) const {
  CQC_CHECK_EQ((int)vb.size(), num_bound_);
  RowRange r = index_->Root();
  for (int i = 0; i < num_bound_ && !r.empty(); ++i)
    r = index_->Refine(r, i, vb[i]);
  if (r.empty()) return std::make_unique<EmptyEnumerator>();
  return std::make_unique<RangeScanEnumerator>(index_, r, num_bound_,
                                               num_bound_ + num_free_);
}

void MaterializedBagRep::Fixup(const BagLiveFn& live) {
  auto filtered =
      std::make_unique<Relation>("bag_table", num_bound_ + num_free_);
  Tuple bound(num_bound_), free(num_free_), row(num_bound_ + num_free_);
  for (size_t r = 0; r < table_->size(); ++r) {
    for (int c = 0; c < num_bound_; ++c) bound[c] = table_->At(r, c);
    for (int c = 0; c < num_free_; ++c)
      free[c] = table_->At(r, num_bound_ + c);
    if (!live(bound, free)) continue;
    for (int c = 0; c < num_bound_ + num_free_; ++c) row[c] = table_->At(r, c);
    filtered->Insert(row);
  }
  filtered->Seal();
  table_ = std::move(filtered);
  Reindex();
}

size_t MaterializedBagRep::AuxBytes() const {
  return table_->BaseBytes() + table_->IndexBytes();
}

std::string MaterializedBagRep::Describe() const {
  return StrFormat("materialized bag (%zu tuples)", table_->size());
}

// ---------------------------------------------------------------------------
// CompressedBagRep
// ---------------------------------------------------------------------------

Result<std::unique_ptr<CompressedBagRep>> CompressedBagRep::Build(
    const AdornedView& view, const Database& db, const Database* locals,
    const CompressedRepOptions& options) {
  Result<std::unique_ptr<CompressedRep>> rep =
      CompressedRep::Build(view, db, options, locals);
  if (!rep.ok()) return rep.status();
  auto out = std::unique_ptr<CompressedBagRep>(new CompressedBagRep());
  out->rep_ = std::move(rep).value();
  return std::move(out);
}

std::unique_ptr<TupleEnumerator> CompressedBagRep::Answer(
    const Tuple& vb) const {
  return rep_->Answer(vb);
}

void CompressedBagRep::Fixup(const BagLiveFn& live) {
  rep_->FixupDictionary(live);
}

size_t CompressedBagRep::AuxBytes() const {
  return rep_->stats().AuxBytes();
}

std::string CompressedBagRep::Describe() const {
  return StrFormat("compressed bag (tau=%.1f, %zu tree nodes, %zu dict)",
                   rep_->tau(), rep_->stats().tree_nodes,
                   rep_->stats().dict_entries);
}

}  // namespace cqc

// Construction of V_b-connex tree decompositions.
//
// Three paths:
//  * BuildByElimination: bucket elimination over a given order of the free
//    variables, with the bound variables collected into the root bag — the
//    standard construction behind §5 (always yields a valid connex
//    decomposition).
//  * Search: exhaustive over free-variable elimination orders (queries are
//    constant-size; mu <= 8 keeps this cheap), scoring each candidate by
//    its connex fractional hypertree width — this realizes fhw(H | V_b)
//    over elimination-ordered decompositions. Finding the true optimum is
//    NP-hard (§6), so hand-crafted decompositions can also be supplied.
//  * BuildZigZagPath: the paired decomposition of Example 10 for path
//    queries P_n^{bf...fb}: bags {x1,x2,xn,xn+1}, {x2,x3,xn-1,xn}, ...
#ifndef CQC_DECOMPOSITION_CONNEX_BUILDER_H_
#define CQC_DECOMPOSITION_CONNEX_BUILDER_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "query/hypergraph.h"
#include "util/status.h"

namespace cqc {

/// Bucket elimination: eliminates free variables in `elim_order` (every
/// free variable exactly once); bound variables form the root bag.
Result<TreeDecomposition> BuildConnexByElimination(
    const Hypergraph& h, VarSet bound, const std::vector<VarId>& elim_order);

struct ConnexSearchResult {
  TreeDecomposition decomposition;
  double width = 0;  // max over non-root bags of rho*(B_t) (delta == 0)
};

/// Exhaustive search over elimination orders minimizing the connex
/// fractional hypertree width (delta = 0). Requires <= 8 free variables.
Result<ConnexSearchResult> SearchConnexDecomposition(const Hypergraph& h,
                                                     VarSet bound);

/// Example 10's decomposition for the path query
///   P_n(x1..x{n+1}) = R1(x1,x2), ..., Rn(xn, x{n+1})
/// with V_b = {x1, x{n+1}}: a chain of paired bags
///   {x1,x{n+1}} - {x1,x2,xn,x{n+1}} - {x2,x3,x{n-1},xn} - ...
/// `path_vars[i]` is the VarId of x_{i+1}. Requires n >= 2.
TreeDecomposition BuildZigZagPath(const std::vector<VarId>& path_vars);

}  // namespace cqc

#endif  // CQC_DECOMPOSITION_CONNEX_BUILDER_H_

// Delay assignments over a connex decomposition (§3.2).
//
// A delay assignment maps each non-root bag t to an exponent delta(t) >= 0,
// meaning the bag may spend O~(|D|^delta(t)) per valuation. From it derive:
//   rho+_t  = min_u ( sum_F u_F - delta(t) * alpha(V_f^t) )      (eq. 3)
//   delta-width  = max over non-root bags of rho+_t
//   delta-height = max root-to-leaf path sum of delta(t)
//   u*      = max over bags of the optimal cover total u+_t
// Theorem 2 then promises space O~(|D| + |D|^width) and delay
// O~(|D|^height) with compression time O~(|D| + |D|^{u* + max delta}).
#ifndef CQC_DECOMPOSITION_DELAY_ASSIGNMENT_H_
#define CQC_DECOMPOSITION_DELAY_ASSIGNMENT_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "fractional/optimizer.h"
#include "query/hypergraph.h"

namespace cqc {

struct DelayAssignment {
  /// delta[t] per decomposition node; delta[root] must be 0.
  std::vector<double> delta;

  /// delta = 0 everywhere (the constant-delay / Prop. 4 regime).
  static DelayAssignment Zero(const TreeDecomposition& td);
  /// The same exponent on every non-root bag that has free variables.
  static DelayAssignment Uniform(const TreeDecomposition& td, double d);
};

struct BagPlan {
  BagCoverSolution cover;    // optimal cover for eq. 3
  std::vector<VarSet> edges; // hyperedges intersecting the bag (restricted)
  std::vector<int> edge_atoms;  // originating atom index per edge
};

struct DecompositionMetrics {
  double width = 0;     // delta-width (max rho+_t, non-root bags)
  double height = 0;    // delta-height
  double u_star = 0;    // max u+_t
  double max_delta = 0;
  std::vector<BagPlan> bags;  // indexed by node id (root entry unused)
};

/// Solves eq. 3 for every non-root bag and aggregates the metrics.
DecompositionMetrics ComputeMetrics(const TreeDecomposition& td,
                                    const Hypergraph& h,
                                    const DelayAssignment& delta);

/// §6, decomposition given: minimizes each bag's delay under a per-bag
/// space budget by solving MinDelayCover on the bag's hypergraph ("we
/// iterate over every bag ... and then solve MinDelayCover for each bag
/// using the space constraint"). `log_n_rel` = ln N (uniform relation
/// size), `log_space_budget` = ln Sigma. Bags without free variables get
/// delta = 0.
DelayAssignment OptimizeDelayAssignment(const TreeDecomposition& td,
                                        const Hypergraph& h,
                                        double log_n_rel,
                                        double log_space_budget);

}  // namespace cqc

#endif  // CQC_DECOMPOSITION_DELAY_ASSIGNMENT_H_

#include "decomposition/delay_assignment.h"

#include <algorithm>

#include "util/logging.h"

namespace cqc {

DelayAssignment DelayAssignment::Zero(const TreeDecomposition& td) {
  DelayAssignment a;
  a.delta.assign(td.num_nodes(), 0.0);
  return a;
}

DelayAssignment DelayAssignment::Uniform(const TreeDecomposition& td,
                                         double d) {
  DelayAssignment a;
  a.delta.assign(td.num_nodes(), 0.0);
  for (int t = 0; t < td.num_nodes(); ++t) {
    if (t == td.root()) continue;
    if (td.BagFree(t) != 0) a.delta[t] = d;
  }
  return a;
}

DecompositionMetrics ComputeMetrics(const TreeDecomposition& td,
                                    const Hypergraph& h,
                                    const DelayAssignment& delta) {
  CQC_CHECK_EQ((int)delta.delta.size(), td.num_nodes());
  CQC_CHECK_EQ(delta.delta[td.root()], 0.0) << "root delay must be 0";

  DecompositionMetrics m;
  m.bags.resize(td.num_nodes());
  for (int t = 0; t < td.num_nodes(); ++t) {
    if (t == td.root()) continue;
    BagPlan& plan = m.bags[t];
    for (int f = 0; f < h.num_edges(); ++f) {
      VarSet restricted = h.edges()[f] & td.bag(t);
      if (restricted == 0) continue;
      plan.edges.push_back(restricted);
      plan.edge_atoms.push_back(f);
    }
    plan.cover = SolveBagCover(plan.edges, td.bag(t), td.BagFree(t),
                               delta.delta[t]);
    CQC_CHECK(plan.cover.feasible) << "bag " << t << " has no edge cover";
    m.width = std::max(m.width, plan.cover.rho_plus);
    m.u_star = std::max(m.u_star, plan.cover.u_total);
    m.max_delta = std::max(m.max_delta, delta.delta[t]);
  }
  // delta-height: max root-to-leaf path sum (DFS accumulating).
  std::vector<double> acc(td.num_nodes(), 0.0);
  for (int t : td.preorder()) {
    double up = td.parent(t) >= 0 ? acc[td.parent(t)] : 0.0;
    acc[t] = up + delta.delta[t];
    m.height = std::max(m.height, acc[t]);
  }
  return m;
}

DelayAssignment OptimizeDelayAssignment(const TreeDecomposition& td,
                                        const Hypergraph& h,
                                        double log_n_rel,
                                        double log_space_budget) {
  DelayAssignment out = DelayAssignment::Zero(td);
  for (int t = 0; t < td.num_nodes(); ++t) {
    if (t == td.root()) continue;
    VarSet bag_free = td.BagFree(t);
    if (bag_free == 0) continue;  // pure filter bag: no enumeration delay
    // Bag-local hypergraph: every intersecting edge, restricted.
    std::vector<VarSet> edges;
    for (VarSet e : h.edges())
      if (e & td.bag(t)) edges.push_back(e & td.bag(t));
    Hypergraph bag_h(h.num_vars(), edges);
    std::vector<double> log_sizes(edges.size(), log_n_rel);
    CoverSolution sol =
        MinDelayCover(bag_h, bag_free, log_sizes, log_space_budget);
    if (sol.feasible) out.delta[t] = sol.log_tau / log_n_rel;
  }
  return out;
}

}  // namespace cqc

// Tree decompositions and V_b-connex tree decompositions (§2.1, Def. 1).
//
// A decomposition here is always *rooted*; for the connex case the root bag
// holds exactly the bound variables V_b (the paper's set A, merged into a
// single bag tb as §5 assumes w.l.o.g.). Orientation fixes, per node t:
//   anc(t)   = union of ancestor bags,
//   V_b^t    = B_t  intersect anc(t)   (top-down bound vars),
//   V_f^t    = B_t  minus anc(t)       (top-down free vars).
#ifndef CQC_DECOMPOSITION_TREE_DECOMPOSITION_H_
#define CQC_DECOMPOSITION_TREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "query/hypergraph.h"
#include "util/common.h"
#include "util/status.h"

namespace cqc {

class TreeDecomposition {
 public:
  /// Adds a bag; returns its node id.
  int AddNode(VarSet bag);
  /// Connects two nodes (undirected until Finalize).
  void AddEdge(int a, int b);

  /// Orients the tree from `root`, computing parents, preorder, anc sets.
  /// CHECK-fails if the edges do not form a tree.
  void Finalize(int root);

  /// Structural validity for hypergraph `h` (§2.1): every hyperedge inside
  /// some bag; every variable's bags form a connected subtree.
  Status Validate(const Hypergraph& h) const;

  /// V_b-connexity in the canonical single-bag form: the root bag equals
  /// `bound` exactly.
  Status ValidateConnex(VarSet bound) const;

  int num_nodes() const { return (int)bags_.size(); }
  int root() const { return root_; }
  VarSet bag(int t) const { return bags_[t]; }
  int parent(int t) const { return parent_[t]; }
  const std::vector<int>& children(int t) const { return children_[t]; }
  /// Nodes in preorder; preorder()[0] == root().
  const std::vector<int>& preorder() const { return preorder_; }

  VarSet anc(int t) const { return anc_[t]; }
  VarSet BagBound(int t) const { return bags_[t] & anc_[t]; }
  VarSet BagFree(int t) const { return bags_[t] & ~anc_[t]; }

  std::string ToString(const ConjunctiveQuery& cq) const;

 private:
  std::vector<VarSet> bags_;
  std::vector<std::pair<int, int>> edges_;
  int root_ = -1;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<int> preorder_;
  std::vector<VarSet> anc_;
  bool finalized_ = false;
};

}  // namespace cqc

#endif  // CQC_DECOMPOSITION_TREE_DECOMPOSITION_H_

// Per-bag representations for Theorem 2.
//
// Each non-root bag of the connex decomposition answers "given values for
// its top-down bound variables V_b^t, enumerate the matching valuations of
// its free variables V_f^t". Two implementations:
//
//  * MaterializedBagRep — delta(t) = 0: the bag's join is materialized into
//    a sorted relation keyed by V_b^t; answering is a range scan with O(1)
//    delay. This is the d-representation bag of Prop. 2 / Prop. 4.
//  * CompressedBagRep — delta(t) > 0: a Theorem-1 CompressedRep over the
//    bag-projected relations with tau_t = |D|^{delta(t)}, using the
//    eq.-3-optimal cover.
//
// Fixup(live) implements the bag-local part of Algorithm 4: restrict the
// bag to valuations whose child subtrees are non-empty (tuple filtering for
// materialized bags; dictionary bit-flipping for compressed bags).
#ifndef CQC_DECOMPOSITION_BAG_REP_H_
#define CQC_DECOMPOSITION_BAG_REP_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/compressed_rep.h"
#include "core/enumerator.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

/// live(bound_vals, free_vals) -> do all child subtrees accept this bag
/// valuation? Both tuples follow the bag's own variable orders.
using BagLiveFn = std::function<bool(const Tuple&, const Tuple&)>;

class BagRep {
 public:
  virtual ~BagRep() = default;
  /// Enumerates V_f^t valuations for the given V_b^t values.
  virtual std::unique_ptr<TupleEnumerator> Answer(const Tuple& vb) const = 0;
  virtual void Fixup(const BagLiveFn& live) = 0;
  /// Structure-specific space (excluding the shared base relations).
  virtual size_t AuxBytes() const = 0;
  virtual std::string Describe() const = 0;
};

/// delta = 0 bag: materialized join, hash/sorted index on V_b^t.
class MaterializedBagRep : public BagRep {
 public:
  /// `view` must be the bag-local natural-join view (bound = V_b^t);
  /// `locals` holds the bag's projected relations and must outlive this.
  static Result<std::unique_ptr<MaterializedBagRep>> Build(
      const AdornedView& view, const Database& db, const Database* locals);

  std::unique_ptr<TupleEnumerator> Answer(const Tuple& vb) const override;
  void Fixup(const BagLiveFn& live) override;
  size_t AuxBytes() const override;
  std::string Describe() const override;
  size_t num_tuples() const { return table_->size(); }

 private:
  MaterializedBagRep(int num_bound, int num_free)
      : num_bound_(num_bound), num_free_(num_free) {}
  void Reindex();

  int num_bound_;
  int num_free_;
  std::unique_ptr<Relation> table_;  // columns [V_b^t..., V_f^t...]
  const SortedIndex* index_ = nullptr;
};

/// delta > 0 bag: Theorem-1 compressed representation.
class CompressedBagRep : public BagRep {
 public:
  static Result<std::unique_ptr<CompressedBagRep>> Build(
      const AdornedView& view, const Database& db, const Database* locals,
      const CompressedRepOptions& options);

  std::unique_ptr<TupleEnumerator> Answer(const Tuple& vb) const override;
  void Fixup(const BagLiveFn& live) override;
  size_t AuxBytes() const override;
  std::string Describe() const override;
  const CompressedRep& rep() const { return *rep_; }

 private:
  CompressedBagRep() = default;
  std::unique_ptr<CompressedRep> rep_;
};

}  // namespace cqc

#endif  // CQC_DECOMPOSITION_BAG_REP_H_

#include "decomposition/connex_builder.h"

#include <algorithm>

#include "fractional/edge_cover.h"
#include "util/logging.h"

namespace cqc {

Result<TreeDecomposition> BuildConnexByElimination(
    const Hypergraph& h, VarSet bound, const std::vector<VarId>& elim_order) {
  const VarSet free_vars = h.vertices() & ~bound;
  VarSet order_set = 0;
  for (VarId v : elim_order) {
    if (!VarSetContains(free_vars, v))
      return Status::Error("elimination order contains a non-free variable");
    if (VarSetContains(order_set, v))
      return Status::Error("elimination order repeats a variable");
    order_set |= VarBit(v);
  }
  if (order_set != free_vars)
    return Status::Error("elimination order must cover all free variables");

  TreeDecomposition td;
  const int root = td.AddNode(bound);

  // Working edges: (variable set, originating td node or -1).
  struct WorkEdge {
    VarSet vars;
    int origin;
  };
  std::vector<WorkEdge> work;
  for (VarSet e : h.edges()) work.push_back({e, -1});

  for (VarId v : elim_order) {
    VarSet bag = 0;
    std::vector<int> child_nodes;
    std::vector<WorkEdge> rest;
    for (const WorkEdge& we : work) {
      if (VarSetContains(we.vars, v)) {
        bag |= we.vars;
        if (we.origin >= 0) child_nodes.push_back(we.origin);
      } else {
        rest.push_back(we);
      }
    }
    CQC_CHECK(bag != 0) << "free variable in no edge";
    const int node = td.AddNode(bag);
    for (int c : child_nodes) td.AddEdge(node, c);
    rest.push_back({bag & ~VarBit(v), node});
    work = std::move(rest);
  }

  // Remaining edges touch only bound variables; attach their origins (and
  // any origin-less remains are covered by the root bag itself).
  std::vector<int> attached;
  for (const WorkEdge& we : work) {
    CQC_CHECK((we.vars & ~bound) == 0);
    if (we.origin >= 0) attached.push_back(we.origin);
  }
  std::sort(attached.begin(), attached.end());
  attached.erase(std::unique(attached.begin(), attached.end()),
                 attached.end());
  for (int c : attached) td.AddEdge(root, c);
  td.Finalize(root);
  Status s = td.Validate(h);
  if (!s.ok()) return s;
  s = td.ValidateConnex(bound);
  if (!s.ok()) return s;
  return td;
}

Result<ConnexSearchResult> SearchConnexDecomposition(const Hypergraph& h,
                                                     VarSet bound) {
  std::vector<VarId> free_vars;
  for (VarId v = 0; v < h.num_vars(); ++v)
    if (VarSetContains(h.vertices() & ~bound, v)) free_vars.push_back(v);
  if (free_vars.size() > 8)
    return Status::Error("exhaustive connex search limited to 8 free vars");

  auto width_of = [&](const TreeDecomposition& td) {
    double w = 0;
    for (int t = 0; t < td.num_nodes(); ++t) {
      if (t == td.root()) continue;  // A-bags are excluded (§3.2)
      // rho*(B_t) over the edges intersecting the bag, restricted to it.
      std::vector<VarSet> edges;
      for (VarSet e : h.edges())
        if (e & td.bag(t)) edges.push_back(e & td.bag(t));
      Hypergraph bag_h(h.num_vars(), edges);
      EdgeCover c = FractionalEdgeCover(bag_h, td.bag(t));
      CQC_CHECK(c.ok);
      w = std::max(w, c.total);
    }
    return w;
  };

  std::sort(free_vars.begin(), free_vars.end());
  bool have = false;
  ConnexSearchResult best;
  std::vector<VarId> order = free_vars;
  do {
    Result<TreeDecomposition> td = BuildConnexByElimination(h, bound, order);
    if (!td.ok()) continue;
    double w = width_of(td.value());
    if (!have || w < best.width - 1e-12) {
      best.decomposition = std::move(td).value();
      best.width = w;
      have = true;
    }
  } while (std::next_permutation(free_vars.begin(), free_vars.end()) &&
           (order = free_vars, true));
  if (!have) return Status::Error("no valid connex decomposition found");
  return best;
}

TreeDecomposition BuildZigZagPath(const std::vector<VarId>& path_vars) {
  const int n = (int)path_vars.size() - 1;  // number of edges R1..Rn
  CQC_CHECK_GE(n, 2);
  TreeDecomposition td;
  VarSet bound = VarBit(path_vars.front()) | VarBit(path_vars.back());
  int prev = td.AddNode(bound);
  const int root = prev;
  // Paired bags {x_l, x_{l+1}, x_r, x_{r+1}} closing in from both ends.
  int l = 0, r = n;  // x_{l+1}..x_{r} free inside
  while (r - l >= 2) {
    VarSet bag = VarBit(path_vars[l]) | VarBit(path_vars[l + 1]) |
                 VarBit(path_vars[r - 1]) | VarBit(path_vars[r]);
    int node = td.AddNode(bag);
    td.AddEdge(prev, node);
    prev = node;
    ++l;
    --r;
  }
  if (r - l == 1) {
    // Odd middle edge R_{l+1} = {x_{l+1}, x_{r+1}}: already inside the last
    // paired bag (it contains x_{l+1} = x_l+1 and x_r ... ) only if l>0; add
    // a closing bag to be safe when it is not covered.
    VarSet mid = VarBit(path_vars[l]) | VarBit(path_vars[r]);
    bool covered = false;
    for (int t = 0; t < td.num_nodes(); ++t)
      if ((mid & ~td.bag(t)) == 0) covered = true;
    if (!covered) {
      int node = td.AddNode(mid);
      td.AddEdge(prev, node);
    }
  }
  td.Finalize(root);
  return td;
}

}  // namespace cqc

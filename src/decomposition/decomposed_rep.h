// DecomposedRep: the Theorem 2 data structure.
//
// A V_b-connex tree decomposition (root bag = V_b) with a delay assignment
// delta. Build():
//   1. solves eq. 3 per bag (LP) for the optimal per-bag covers,
//   2. projects each intersecting relation onto each bag (E_{B_t}),
//   3. builds a per-bag representation: materialized (delta = 0) or
//      Theorem-1 compressed with tau_t = |D|^{delta(t)},
//   4. runs the bottom-up semijoin fixup (Algorithm 4) so that a
//      dictionary 1-bit guarantees a full result below the bag,
//   5. indexes the hyperedges contained in V_b at the root.
//
// Answer(v_b) implements Algorithm 5: a pre-order walk over the non-root
// bags; each bag enumerates its free variables given its (already bound)
// interface variables; exhausted bags return to their pre-order predecessor
// (enumerating the cartesian product across sibling subtrees) or, when they
// produced nothing for the current binding, to their parent. Space is
// O~(|D| + |D|^f) and delay O~(|D|^h) for f the delta-width and h the
// delta-height.
#ifndef CQC_DECOMPOSITION_DECOMPOSED_REP_H_
#define CQC_DECOMPOSITION_DECOMPOSED_REP_H_

#include <memory>
#include <vector>

#include "core/aggregate.h"
#include "core/cursor.h"
#include "decomposition/bag_rep.h"
#include "decomposition/delay_assignment.h"
#include "decomposition/tree_decomposition.h"
#include "join/bound_atom.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

struct DecomposedRepOptions {
  /// Per-node delay exponents; empty means all-zero (Prop. 4 regime).
  DelayAssignment delta;
  /// Run the Algorithm 4 semijoin pass (needed for the delay guarantee;
  /// correctness holds either way thanks to Algorithm 5's backtracking).
  bool run_fixup = true;
};

struct DecomposedRepStats {
  double build_seconds = 0;
  DecompositionMetrics metrics;
  size_t total_aux_bytes = 0;           // sum over bags
  std::vector<size_t> bag_aux_bytes;    // per decomposition node
  std::vector<std::string> bag_descriptions;
};

class DecomposedRep {
 public:
  /// `view` must be a natural-join full CQ; `td` a finalized decomposition
  /// that validates against the view's hypergraph and is V_b-connex.
  static Result<std::unique_ptr<DecomposedRep>> Build(
      const AdornedView& view, const Database& db,
      const TreeDecomposition& td, const DecomposedRepOptions& options,
      const Database* aux_db = nullptr);

  /// Enumerates the access request; output tuples are aligned with
  /// view().free_vars() (the enumeration *order* follows the
  /// decomposition, §3.2).
  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;
  bool AnswerExists(const BoundValuation& vb) const;

  /// Residue-class shard of Answer(vb): descends only below first-bag
  /// tuples with ordinal == offset (mod stride), so the shards
  /// 0..stride-1 partition the output multiset (every output lives under
  /// exactly one first-bag tuple). Each shard walks the first bag's stream
  /// fully but pays the subtree work only for its own residue class —
  /// the shard primitive for parallel Algorithm 5 (exec/ParallelAnswer).
  std::unique_ptr<TupleEnumerator> AnswerShard(const BoundValuation& vb,
                                               size_t offset,
                                               size_t stride) const;

  /// Resumes a paused enumeration by skip-ahead (the Algorithm 5 order is
  /// decomposition-driven, not lex, so the O(delay) range-resume of the
  /// Theorem 1 structure does not apply): O(cursor.emitted) re-walk, then
  /// the stream continues exactly where the cursor paused. The cursor MUST
  /// have been taken over Answer(vb); for a cursor taken over an
  /// AnswerShard stream use ResumeShard with the same (offset, stride) —
  /// the cursor does not encode the residue class, and skipping on the
  /// full stream would interleave other shards' tuples.
  std::unique_ptr<TupleEnumerator> Resume(const BoundValuation& vb,
                                          const EnumerationCursor& cursor) const;

  /// Resume counterpart for AnswerShard(vb, offset, stride) streams.
  std::unique_ptr<TupleEnumerator> ResumeShard(const BoundValuation& vb,
                                               const EnumerationCursor& cursor,
                                               size_t offset,
                                               size_t stride) const;

  /// |Q^eta[v_b]| without enumerating the output: memoized bottom-up
  /// dynamic programming over the decomposition — count(bag, interface) =
  /// sum over the bag's valuations of the product of child counts. This is
  /// the §3.2 aggregation connection (group-by counts over the d-tree);
  /// cost is the total number of *bag* tuples visited, independent of the
  /// (possibly much larger) output size.
  size_t CountAnswer(const BoundValuation& vb) const;

  /// Grouped ring aggregate over the access request. The empty group set
  /// (full-group aggregate) runs the CountAnswer recurrence lifted to the
  /// aggregate ring — a bottom-up bag sweep whose cost is the number of bag
  /// tuples visited, not the output size; a subtree cell multiplies into
  /// its siblings' counts (the §3.2 aggregation connection). Non-empty
  /// group sets drain Answer(vb) and fold (the decomposition order is not
  /// lex, so no prefix-interval shortcut applies).
  AggregateResult AnswerAggregate(const BoundValuation& vb,
                                  const std::vector<int>& group_vars,
                                  const AggSpec& spec) const;

  const AdornedView& view() const { return view_; }
  const TreeDecomposition& decomposition() const { return td_; }
  const DecomposedRepStats& stats() const { return stats_; }

  /// Resident footprint: per-bag auxiliary structures plus the bag-local
  /// projected relations (base data + indexes) the bags enumerate from —
  /// the decomposed counterpart of CompressedRepStats::TotalBytes().
  size_t SpaceBytes() const;

 private:
  explicit DecomposedRep(AdornedView view) : view_(std::move(view)) {}

  struct Bag {
    int td_node = -1;
    int parent_bag = -1;              // index into bags_, -1 = root
    std::vector<VarId> bound_vars;    // V_b^t, ascending VarId
    std::vector<VarId> free_vars;     // V_f^t, ascending VarId
    std::unique_ptr<BagRep> rep;
    std::unique_ptr<Database> locals;  // bag-projected relations
  };

  class Alg5Enumerator;

  // Does the subtree rooted at bag index `b` produce any output when its
  // interface variables are set as in `values`? (Algorithm 4 helper.)
  bool SubtreeLive(int b, const std::vector<Value>& values) const;

  AdornedView view_;
  TreeDecomposition td_;
  std::vector<Bag> bags_;              // non-root bags in preorder
  std::vector<int> bag_of_node_;       // td node -> bag index (-1 for root)
  std::vector<std::vector<int>> bag_children_;  // per bag index
  std::vector<BoundAtom> root_atoms_;  // hyperedges inside V_b
  DecomposedRepStats stats_;
};

}  // namespace cqc

#endif  // CQC_DECOMPOSITION_DECOMPOSED_REP_H_

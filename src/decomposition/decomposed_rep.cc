#include "decomposition/decomposed_rep.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "util/hashing.h"

#include "query/normalize.h"
#include "relational/projection.h"
#include "util/logging.h"
#include "util/str_util.h"
#include "util/timer.h"

namespace cqc {
namespace {

std::vector<VarId> VarsOf(VarSet s) {
  std::vector<VarId> out;
  for (VarId v = 0; v < kMaxVars; ++v)
    if (VarSetContains(s, v)) out.push_back(v);
  return out;
}

}  // namespace

Result<std::unique_ptr<DecomposedRep>> DecomposedRep::Build(
    const AdornedView& view, const Database& db, const TreeDecomposition& td,
    const DecomposedRepOptions& options, const Database* aux_db) {
  WallTimer timer;
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error("DecomposedRep requires a natural join view");
  Hypergraph h(cq);
  Status s = td.Validate(h);
  if (!s.ok()) return s;
  s = td.ValidateConnex(view.bound_set());
  if (!s.ok()) return s;

  DelayAssignment delta = options.delta;
  if (delta.delta.empty()) delta = DelayAssignment::Zero(td);
  if ((int)delta.delta.size() != td.num_nodes())
    return Status::Error("delay assignment size mismatch");

  auto rep = std::unique_ptr<DecomposedRep>(new DecomposedRep(view));
  rep->td_ = td;
  rep->stats_.metrics = ComputeMetrics(td, h, delta);
  rep->bag_of_node_.assign(td.num_nodes(), -1);

  const double n_tuples = std::max<double>(2.0, (double)db.TotalTuples());

  // Build per-bag representations in preorder.
  for (int node : td.preorder()) {
    if (node == td.root()) continue;
    const BagPlan& plan = rep->stats_.metrics.bags[node];
    Bag bag;
    bag.td_node = node;
    bag.bound_vars = VarsOf(td.BagBound(node));
    bag.free_vars = VarsOf(td.BagFree(node));
    bag.locals = std::make_unique<Database>();
    bag.locals->SetFallback(aux_db);  // chain to the normalized view's aux

    // Assemble the bag-local natural-join view.
    ConjunctiveQuery local;
    for (VarId v : bag.bound_vars) local.GetOrAddVar(cq.var_name(v));
    for (VarId v : bag.free_vars) local.GetOrAddVar(cq.var_name(v));
    std::string adornment;
    for (VarId v : bag.bound_vars) {
      local.AddHeadVar(local.FindVar(cq.var_name(v)));
      adornment += 'b';
    }
    for (VarId v : bag.free_vars) {
      local.AddHeadVar(local.FindVar(cq.var_name(v)));
      adornment += 'f';
    }
    for (size_t j = 0; j < plan.edges.size(); ++j) {
      const Atom& orig = cq.atoms()[plan.edge_atoms[j]];
      const Relation* rel = ResolveRelation(orig.relation, db, aux_db);
      if (rel == nullptr)
        return Status::Error("unknown relation " + orig.relation);
      // Columns of the original atom whose variable lies in the bag.
      std::vector<int> cols;
      std::vector<VarId> vars;
      for (int p = 0; p < orig.arity(); ++p) {
        VarId v = orig.terms[p].var;
        if (VarSetContains(td.bag(node), v)) {
          cols.push_back(p);
          vars.push_back(v);
        }
      }
      Atom local_atom;
      if ((int)cols.size() == orig.arity()) {
        local_atom.relation = orig.relation;  // fully contained: reuse
      } else {
        const std::string name =
            StrFormat("bag%d_e%zu_%s", node, j, orig.relation.c_str());
        bag.locals->AdoptRelation(ProjectDistinct(*rel, cols, name));
        local_atom.relation = name;
      }
      for (VarId v : vars)
        local_atom.terms.push_back(
            Term::Var(local.FindVar(cq.var_name(v))));
      local.AddAtom(std::move(local_atom));
    }
    Result<AdornedView> local_view =
        AdornedView::Create(std::move(local), adornment);
    if (!local_view.ok()) return local_view.status();

    // Pick the representation by the bag's delay exponent. The bag-local
    // database takes precedence, then the caller's aux_db, then db: chain
    // them by copying aux relations into the bag database view... instead,
    // resolve via the bag locals first and fall back to (db, aux_db).
    const double d = delta.delta[node];
    if (d <= 0.0) {
      Result<std::unique_ptr<MaterializedBagRep>> r =
          MaterializedBagRep::Build(local_view.value(), db,
                                    bag.locals.get());
      if (!r.ok()) return r.status();
      bag.rep = std::move(r).value();
    } else {
      CompressedRepOptions copts;
      copts.tau = std::pow(n_tuples, d);
      copts.cover = plan.cover.u;
      Result<std::unique_ptr<CompressedBagRep>> r = CompressedBagRep::Build(
          local_view.value(), db, bag.locals.get(), copts);
      if (!r.ok()) return r.status();
      bag.rep = std::move(r).value();
    }
    rep->bag_of_node_[node] = (int)rep->bags_.size();
    rep->bags_.push_back(std::move(bag));
  }

  // Parent/children links in bag-index space.
  rep->bag_children_.assign(rep->bags_.size(), {});
  for (size_t i = 0; i < rep->bags_.size(); ++i) {
    int pnode = td.parent(rep->bags_[i].td_node);
    rep->bags_[i].parent_bag =
        (pnode == td.root()) ? -1 : rep->bag_of_node_[pnode];
    if (rep->bags_[i].parent_bag >= 0)
      rep->bag_children_[rep->bags_[i].parent_bag].push_back((int)i);
  }

  // Root membership atoms: hyperedges fully inside V_b.
  std::vector<VarId> no_free;
  for (const Atom& atom : cq.atoms()) {
    if ((atom.Vars() & ~view.bound_set()) != 0) continue;
    const Relation* rel = ResolveRelation(atom.relation, db, aux_db);
    CQC_CHECK(rel != nullptr);
    rep->root_atoms_.emplace_back(atom, *rel, view.bound_vars(), no_free);
  }

  // Algorithm 4: bottom-up semijoin fixup (children before parents).
  if (options.run_fixup) {
    const int num_vars = cq.num_vars();
    for (int i = (int)rep->bags_.size() - 1; i >= 0; --i) {
      if (rep->bag_children_[i].empty()) continue;
      const Bag& bag = rep->bags_[i];
      auto live = [&rep, &bag, i, num_vars](const Tuple& bound_vals,
                                            const Tuple& free_vals) {
        std::vector<Value> values(num_vars, 0);
        for (size_t k = 0; k < bag.bound_vars.size(); ++k)
          values[bag.bound_vars[k]] = bound_vals[k];
        for (size_t k = 0; k < bag.free_vars.size(); ++k)
          values[bag.free_vars[k]] = free_vals[k];
        for (int c : rep->bag_children_[i])
          if (!rep->SubtreeLive(c, values)) return false;
        return true;
      };
      rep->bags_[i].rep->Fixup(live);
    }
  }

  // Stats.
  rep->stats_.build_seconds = timer.Seconds();
  for (const Bag& bag : rep->bags_) {
    size_t bytes = bag.rep->AuxBytes();
    rep->stats_.bag_aux_bytes.push_back(bytes);
    rep->stats_.bag_descriptions.push_back(bag.rep->Describe());
    rep->stats_.total_aux_bytes += bytes;
  }
  return std::move(rep);
}

bool DecomposedRep::SubtreeLive(int b,
                                const std::vector<Value>& values) const {
  const Bag& bag = bags_[b];
  Tuple vbt(bag.bound_vars.size());
  for (size_t i = 0; i < bag.bound_vars.size(); ++i)
    vbt[i] = values[bag.bound_vars[i]];
  auto e = bag.rep->Answer(vbt);
  Tuple vf;
  std::vector<Value> scratch = values;
  while (e->Next(&vf)) {
    for (size_t i = 0; i < bag.free_vars.size(); ++i)
      scratch[bag.free_vars[i]] = vf[i];
    bool ok = true;
    for (int c : bag_children_[b]) {
      if (!SubtreeLive(c, scratch)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Algorithm 5: pre-order enumeration with predecessor pointers.
// ---------------------------------------------------------------------------

class DecomposedRep::Alg5Enumerator : public TupleEnumerator {
 public:
  // (offset, stride) select a residue-class shard of the first bag's tuple
  // stream: the walk descends only below first-bag tuples with ordinal ==
  // offset (mod stride). Shards 0..stride-1 partition the output because
  // every output is produced under exactly one first-bag tuple, and the
  // first bag's stream order is deterministic.
  Alg5Enumerator(const DecomposedRep* rep, BoundValuation vb,
                 size_t offset = 0, size_t stride = 1)
      : rep_(rep), offset_(offset), stride_(stride) {
    CQC_CHECK_GT(stride, 0u);
    CQC_CHECK_LT(offset, stride);
    values_.assign(rep->view_.cq().num_vars(), 0);
    const std::vector<VarId>& bvars = rep->view_.bound_vars();
    CQC_CHECK_EQ(vb.size(), bvars.size());
    for (size_t i = 0; i < bvars.size(); ++i) values_[bvars[i]] = vb[i];
    // Root: check membership of every hyperedge inside V_b (line 2).
    for (const BoundAtom& atom : rep->root_atoms_) {
      if (atom.CountBound(vb) == 0) {
        done_ = true;
        return;
      }
    }
    if (rep->bags_.empty()) {
      // Boolean view: the single empty tuple belongs to shard 0.
      if (offset_ == 0)
        solo_ = true;
      else
        done_ = true;
      return;
    }
    states_.resize(rep->bags_.size());
    bag_batch_ = TupleBuffer((int)rep->bags_.back().free_vars.size());
    // Bulk-path stitch map: head positions fed by the last bag.
    const Bag& last = rep->bags_.back();
    const std::vector<VarId>& head_free = rep->view_.free_vars();
    for (size_t i = 0; i < head_free.size(); ++i)
      for (size_t j = 0; j < last.free_vars.size(); ++j)
        if (last.free_vars[j] == head_free[i]) patch_.emplace_back(i, j);
    cur_ = 0;
    entering_ = true;
  }

  bool Next(Tuple* out) override { return Produce(out); }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t n = 0;
    while (n < max_tuples) {
      // Bulk path: positioned on the last bag with an open enumerator,
      // every bag tuple maps 1:1 to an output — drain the bag through its
      // own batch API and stitch outputs in place instead of stepping the
      // whole state machine per tuple.
      // (When a stride shard is active and the first bag IS the last bag,
      // the bulk path would bypass the residue filter — fall through to
      // Produce, which applies it.)
      if (!done_ && !solo_ && !entering_ &&
          cur_ + 1 == (int)rep_->bags_.size() && cur_ >= 0 &&
          (stride_ == 1 || rep_->bags_.size() > 1) &&
          states_[cur_].enumerator != nullptr && states_[cur_].visited) {
        n += DrainLastBag(out, max_tuples - n);
        if (n == max_tuples) break;
        // Last bag exhausted after producing: hand control back to the
        // pre-order predecessor exactly as Produce() would.
        states_[cur_].visited = false;
        --cur_;
      }
      if (!Produce(&scratch_)) break;
      out->Append(scratch_);
      ++n;
    }
    return n;
  }

 private:
  // Pulls up to `max_tuples` further tuples of the last bag's enumerator
  // and emits one output per tuple. Requires the state checked in
  // NextBatch. Returns the number emitted; < max_tuples means the bag
  // enumerator is exhausted (the caller backtracks).
  size_t DrainLastBag(TupleBuffer* out, size_t max_tuples) {
    const Bag& bag = rep_->bags_[cur_];
    BagState& st = states_[cur_];
    const std::vector<VarId>& head_free = rep_->view_.free_vars();
    const int bag_arity = (int)bag.free_vars.size();
    // Output template: head positions fed by ancestor bags are fixed while
    // we stay inside this bag; positions in patch_ vary per bag tuple.
    scratch_.resize(head_free.size());
    for (size_t i = 0; i < head_free.size(); ++i)
      scratch_[i] = values_[head_free[i]];
    size_t emitted = 0;
    while (emitted < max_tuples) {
      bag_batch_.Clear();
      const size_t want = std::min<size_t>(max_tuples - emitted, 256);
      const size_t got = st.enumerator->NextBatch(&bag_batch_, want);
      for (size_t r = 0; r < got; ++r) {
        const TupleSpan vf = bag_batch_[r];
        for (auto [out_pos, vf_pos] : patch_) scratch_[out_pos] = vf[vf_pos];
        out->Append(scratch_);
      }
      emitted += got;
      if (got > 0) {
        // Keep values_ consistent with the last emitted bag tuple so the
        // state machine resumes from the right point.
        const TupleSpan last = bag_batch_[got - 1];
        for (int i = 0; i < bag_arity; ++i)
          values_[bag.free_vars[i]] = last[i];
      }
      if (got < want) break;
    }
    return emitted;
  }

  // Staging buffer + stitch map for DrainLastBag (last bag is fixed).
  TupleBuffer bag_batch_{0};
  std::vector<std::pair<size_t, size_t>> patch_;  // (out pos, vf pos)
  bool Produce(Tuple* out) {
    if (done_) return false;
    if (solo_) {
      solo_ = false;
      done_ = true;
      out->clear();
      return true;
    }
    Tuple vtf;
    for (;;) {
      if (cur_ < 0) {
        done_ = true;
        return false;
      }
      BagState& st = states_[cur_];
      const Bag& bag = rep_->bags_[cur_];
      if (entering_) {
        Tuple vbt(bag.bound_vars.size());
        for (size_t i = 0; i < bag.bound_vars.size(); ++i)
          vbt[i] = values_[bag.bound_vars[i]];
        st.enumerator = bag.rep->Answer(vbt);
        st.visited = false;
        entering_ = false;
      }
      if (st.enumerator->Next(&vtf)) {
        if (cur_ == 0 && stride_ > 1) {
          // Residue-class shard filter on the first bag's stream. Skipped
          // tuples leave `visited` untouched: if every tuple is skipped the
          // bag looks unproductive and the walk ends, which is exactly
          // right — this shard owns none of the output.
          const uint64_t ordinal = first_bag_ordinal_++;
          if (ordinal % stride_ != offset_) continue;
        }
        for (size_t i = 0; i < bag.free_vars.size(); ++i)
          values_[bag.free_vars[i]] = vtf[i];
        st.visited = true;
        if (cur_ + 1 == (int)rep_->bags_.size()) {
          const std::vector<VarId>& head_free = rep_->view_.free_vars();
          out->resize(head_free.size());
          for (size_t i = 0; i < head_free.size(); ++i)
            (*out)[i] = values_[head_free[i]];
          return true;  // stay on the last bag; next call resumes here
        }
        ++cur_;
        entering_ = true;
      } else if (!st.visited) {
        // Nothing for this binding: the parent's valuation is dead.
        cur_ = bag.parent_bag;
      } else {
        // Exhausted after producing output: resume the pre-order
        // predecessor (cartesian product across sibling subtrees).
        st.visited = false;
        --cur_;
      }
    }
  }

  struct BagState {
    std::unique_ptr<TupleEnumerator> enumerator;
    bool visited = false;
  };

  const DecomposedRep* rep_;
  std::vector<Value> values_;
  Tuple scratch_;  // staging for NextBatch
  std::vector<BagState> states_;
  int cur_ = -1;
  bool entering_ = false;
  bool done_ = false;
  bool solo_ = false;
  size_t offset_ = 0;              // residue-class shard selector
  size_t stride_ = 1;
  uint64_t first_bag_ordinal_ = 0;  // tuples seen from the first bag
};

size_t DecomposedRep::SpaceBytes() const {
  size_t bytes = stats_.total_aux_bytes;
  for (const Bag& bag : bags_) {
    if (bag.locals == nullptr) continue;
    bytes += bag.locals->BaseBytes();
    for (const Relation* rel : bag.locals->AllRelations())
      bytes += rel->IndexBytes();
  }
  return bytes;
}

std::unique_ptr<TupleEnumerator> DecomposedRep::Answer(
    const BoundValuation& vb) const {
  return std::make_unique<Alg5Enumerator>(this, vb);
}

std::unique_ptr<TupleEnumerator> DecomposedRep::AnswerShard(
    const BoundValuation& vb, size_t offset, size_t stride) const {
  return std::make_unique<Alg5Enumerator>(this, vb, offset, stride);
}

std::unique_ptr<TupleEnumerator> DecomposedRep::Resume(
    const BoundValuation& vb, const EnumerationCursor& cursor) const {
  return ResumeShard(vb, cursor, 0, 1);
}

std::unique_ptr<TupleEnumerator> DecomposedRep::ResumeShard(
    const BoundValuation& vb, const EnumerationCursor& cursor, size_t offset,
    size_t stride) const {
  if (cursor.exhausted) return std::make_unique<EmptyEnumerator>();
  auto e = AnswerShard(vb, offset, stride);
  // Algorithm 5's order follows the decomposition, not the output lex
  // order, so the generic skip-ahead resume applies: the (shard) stream is
  // deterministic, so dropping `emitted` tuples lands exactly where the
  // cursor paused (O(emitted) work; see core/cursor.h).
  SkipTuples(*e, view_.num_free(), cursor.emitted);
  return e;
}

namespace {

struct CountMemoKey {
  int bag;
  Tuple interface_vals;
  bool operator==(const CountMemoKey&) const = default;
};

struct CountMemoHash {
  size_t operator()(const CountMemoKey& k) const {
    return TupleHash()(k.interface_vals) * 1000003u + (size_t)k.bag;
  }
};

}  // namespace

size_t DecomposedRep::CountAnswer(const BoundValuation& vb) const {
  const std::vector<VarId>& bvars = view_.bound_vars();
  CQC_CHECK_EQ(vb.size(), bvars.size());
  for (const BoundAtom& atom : root_atoms_)
    if (atom.CountBound(vb) == 0) return 0;
  if (bags_.empty()) return 1;  // boolean view, root checks passed

  std::vector<Value> values(view_.cq().num_vars(), 0);
  for (size_t i = 0; i < bvars.size(); ++i) values[bvars[i]] = vb[i];

  std::unordered_map<CountMemoKey, size_t, CountMemoHash> memo;
  // count over the subtree rooted at bag b, given `values` fixed for anc.
  std::function<size_t(int, std::vector<Value>&)> count =
      [&](int b, std::vector<Value>& vals) -> size_t {
    const Bag& bag = bags_[b];
    CountMemoKey key{b, Tuple(bag.bound_vars.size())};
    for (size_t i = 0; i < bag.bound_vars.size(); ++i)
      key.interface_vals[i] = vals[bag.bound_vars[i]];
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    size_t total = 0;
    auto e = bag.rep->Answer(key.interface_vals);
    constexpr size_t kBatch = 64;
    TupleBuffer batch((int)bag.free_vars.size());
    for (;;) {
      batch.Clear();
      const size_t n = e->NextBatch(&batch, kBatch);
      for (size_t j = 0; j < n; ++j) {
        const TupleSpan vf = batch[j];
        for (size_t i = 0; i < bag.free_vars.size(); ++i)
          vals[bag.free_vars[i]] = vf[i];
        size_t prod = 1;
        for (int c : bag_children_[b]) {
          prod *= count(c, vals);
          if (prod == 0) break;
        }
        total += prod;
      }
      if (n < kBatch) break;
    }
    memo.emplace(std::move(key), total);
    return total;
  };

  // Top-level bags (children of the root) multiply together.
  size_t result = 1;
  for (size_t b = 0; b < bags_.size() && result > 0; ++b) {
    if (bags_[b].parent_bag != -1) continue;
    result *= count((int)b, values);
  }
  return result;
}

namespace {

// Ring product of two independent subtree cells of which at most one
// carries the value variable (the other holds the ring identities, so the
// symmetric formulas below collapse to scaling the carrier by the
// non-carrier's count).
AggCell CellProduct(const AggCell& a, const AggCell& b) {
  AggCell r;
  r.count = a.count * b.count;
  if (r.count == 0) {
    r.sum = 0;
    r.min = kTop;
    r.max = kBottom;
    return r;
  }
  r.sum = a.sum * b.count + b.sum * a.count;
  r.min = std::min(a.min, b.min);
  r.max = std::max(a.max, b.max);
  return r;
}

}  // namespace

AggregateResult DecomposedRep::AnswerAggregate(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  // Grouped requests fall back to drain-and-fold over Algorithm 5.
  if (!group_vars.empty()) {
    auto e = Answer(vb);
    return GroupedDrainAggregate(*e, view_.num_free(), group_vars, spec);
  }

  const std::vector<VarId>& bvars = view_.bound_vars();
  CQC_CHECK_EQ(vb.size(), bvars.size());
  GroupAccumulator acc(0, spec);

  for (const BoundAtom& atom : root_atoms_)
    if (atom.CountBound(vb) == 0) return acc.Finish();

  // Which bag position (if any) assigns the value variable.
  const VarId value_gv = spec.func != AggFunc::kCount && spec.value_var >= 0
                             ? view_.free_vars()[spec.value_var]
                             : -1;

  AggCell total;
  total.count = 1;
  if (bags_.empty()) {
    // Boolean view: one empty answer (COUNT-only at this arity).
    const Value dummy = 0;
    acc.AddCell(&dummy, total.count, total.sum, total.min, total.max);
    return acc.Finish();
  }

  std::vector<Value> values(view_.cq().num_vars(), 0);
  for (size_t i = 0; i < bvars.size(); ++i) values[bvars[i]] = vb[i];

  std::unordered_map<CountMemoKey, AggCell, CountMemoHash> memo;
  // The CountAnswer recurrence over AggCell: cell(bag, interface) =
  // ring-sum over the bag's valuations of the cell product across child
  // subtrees (seeded with the bag tuple's own value when the bag assigns
  // the value variable).
  std::function<AggCell(int, std::vector<Value>&)> fold =
      [&](int b, std::vector<Value>& vals) -> AggCell {
    const Bag& bag = bags_[b];
    CountMemoKey key{b, Tuple(bag.bound_vars.size())};
    for (size_t i = 0; i < bag.bound_vars.size(); ++i)
      key.interface_vals[i] = vals[bag.bound_vars[i]];
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    int value_pos = -1;
    for (size_t i = 0; i < bag.free_vars.size(); ++i)
      if (bag.free_vars[i] == value_gv) value_pos = (int)i;

    AggCell sub;  // count 0, ring identities
    auto e = bag.rep->Answer(key.interface_vals);
    constexpr size_t kBatch = 64;
    TupleBuffer batch((int)bag.free_vars.size());
    for (;;) {
      batch.Clear();
      const size_t n = e->NextBatch(&batch, kBatch);
      for (size_t j = 0; j < n; ++j) {
        const TupleSpan vf = batch[j];
        for (size_t i = 0; i < bag.free_vars.size(); ++i)
          vals[bag.free_vars[i]] = vf[i];
        AggCell cell;
        cell.count = 1;
        if (value_pos >= 0) {
          cell.sum = vf[value_pos];
          cell.min = vf[value_pos];
          cell.max = vf[value_pos];
        }
        for (int c : bag_children_[b]) {
          cell = CellProduct(cell, fold(c, vals));
          if (cell.count == 0) break;
        }
        sub.Merge(cell);
      }
      if (n < kBatch) break;
    }
    memo.emplace(std::move(key), sub);
    return sub;
  };

  // Top-level bags (children of the root) multiply together.
  for (size_t b = 0; b < bags_.size() && total.count > 0; ++b) {
    if (bags_[b].parent_bag != -1) continue;
    total = CellProduct(total, fold((int)b, values));
  }

  const Value dummy = 0;
  acc.AddCell(&dummy, total.count, total.sum, total.min, total.max);
  return acc.Finish();
}

bool DecomposedRep::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

}  // namespace cqc

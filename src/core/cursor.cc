#include "core/cursor.h"

#include <algorithm>
#include <cstring>

namespace cqc {
namespace {

constexpr char kCursorMagic[8] = {'C', 'Q', 'C', 'C', 'U', 'R', '0', '1'};

// Cursor payloads are tiny (two tuples), so the encoding favors explicit
// bounds checking over throughput: every read validates against the bytes
// actually remaining before touching them.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool Get(T* v) {
    return Read(v, sizeof(T));
  }

  bool GetTuple(Tuple* t) {
    uint32_t len;
    if (!Get(&len)) return false;
    // A length field cannot claim more values than bytes remain.
    if ((uint64_t)len * sizeof(Value) > size_ - pos_) return false;
    t->resize(len);
    return len == 0 || Read(t->data(), len * sizeof(Value));
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename T>
void Append(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void AppendTuple(std::string* out, const Tuple& t) {
  Append<uint32_t>(out, (uint32_t)t.size());
  if (!t.empty())
    out->append(reinterpret_cast<const char*>(t.data()),
                t.size() * sizeof(Value));
}

}  // namespace

std::string EnumerationCursor::Serialize() const {
  std::string out(kCursorMagic, sizeof(kCursorMagic));
  Append<uint64_t>(&out, emitted);
  const uint8_t flags =
      (exhausted ? 1 : 0) | (has_last ? 2 : 0);
  Append<uint8_t>(&out, flags);
  AppendTuple(&out, last);
  AppendTuple(&out, range_lo);
  AppendTuple(&out, range_hi);
  return out;
}

Result<EnumerationCursor> EnumerationCursor::Deserialize(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kCursorMagic) ||
      std::memcmp(bytes.data(), kCursorMagic, sizeof(kCursorMagic)) != 0)
    return Status::Error("not a cqc cursor (v01) blob");
  ByteReader in(bytes.data() + sizeof(kCursorMagic),
                bytes.size() - sizeof(kCursorMagic));
  EnumerationCursor c;
  uint8_t flags;
  if (!in.Get(&c.emitted) || !in.Get(&flags))
    return Status::Error("truncated cursor header");
  c.exhausted = flags & 1;
  c.has_last = flags & 2;
  if (flags & ~uint8_t{3}) return Status::Error("bad cursor flags");
  if (!in.GetTuple(&c.last)) return Status::Error("truncated cursor tuple");
  if (!in.GetTuple(&c.range_lo) || !in.GetTuple(&c.range_hi))
    return Status::Error("truncated cursor range");
  if (!in.AtEnd()) return Status::Error("trailing bytes after cursor");
  if (c.has_last && c.emitted == 0)
    return Status::Error("inconsistent cursor: last tuple without output");
  return c;
}

size_t SkipTuples(TupleEnumerator& e, int arity, uint64_t n) {
  TupleBuffer buf(arity);
  size_t skipped = 0;
  while (skipped < n) {
    buf.Clear();
    const size_t want = (size_t)std::min<uint64_t>(n - skipped, 1024);
    const size_t got = e.NextBatch(&buf, want);
    skipped += got;
    if (got < want) break;
  }
  return skipped;
}

}  // namespace cqc

// The AGM-style cost model of §4.2:
//
//   T(B)    = prod_F |R_F ⋉ B| ^ u^_F          (u^ = u / alpha(V_f))
//   T(v,B)  = prod_F |R_F(v) ⋉ B| ^ u^_F
//   T(I)    = sum over the box decomposition of I
//   T(v,I)  = likewise with the bound valuation fixed
//
// T(v, I) bounds the time a worst-case optimal join needs to evaluate the
// access request restricted to I (Prop. 6); a pair (v, I) is tau-heavy when
// T(v, I) > tau (Def. 3). All counts are O(arity log N) via BoundAtom.
#ifndef CQC_CORE_COST_MODEL_H_
#define CQC_CORE_COST_MODEL_H_

#include <vector>

#include "core/finterval.h"
#include "join/bound_atom.h"

namespace cqc {

/// Access-path accounting for the index-selection policy. Every count the
/// cost model issues is a sorted-trie range seek (a lex range has no hash
/// equivalent), while point-membership probes (Relation::Contains,
/// BoundAtom::ContainsValuation, the Algorithm 2 split probe) bypass the
/// tries entirely via the per-relation HashIndex. The counters are the
/// thread-local tallies from util/op_counter.h; snapshot deltas around a
/// region to attribute probes to it (bench_probe and the planner's explain
/// output do).
struct IndexSelectionStats {
  uint64_t hash_point_probes = 0;
  uint64_t sorted_range_seeks = 0;
};

class CostModel {
 public:
  /// `atoms` must outlive the model. `exponents[f]` = u^_F for atom f.
  CostModel(const std::vector<BoundAtom>* atoms,
            std::vector<double> exponents);

  /// This thread's cumulative access-path counters since process start.
  static IndexSelectionStats ProbeStats();

  double BoxCost(const FBox& box) const;
  double BoxCostBound(TupleSpan bound_vals, const FBox& box) const;

  double IntervalCost(const FInterval& interval) const;
  double IntervalCostBound(TupleSpan bound_vals,
                           const FInterval& interval) const;

  /// Sum of BoxCost over an explicit box list.
  double BoxesCost(const std::vector<FBox>& boxes) const;
  double BoxesCostBound(TupleSpan bound_vals,
                        const std::vector<FBox>& boxes) const;

  const std::vector<double>& exponents() const { return exponents_; }

 private:
  const std::vector<BoundAtom>* atoms_;
  std::vector<double> exponents_;
};

}  // namespace cqc

#endif  // CQC_CORE_COST_MODEL_H_

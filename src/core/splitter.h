// Balanced f-interval splitting: Lemma 3 + Algorithm 1.
//
// Given an interval I with total cost T = T(I), SplitInterval returns a grid
// tuple c in I such that T([a, c)) <= T/2 and T((c, b]) <= T/2
// (Proposition 8). Dimension by dimension, a binary search over the active
// domain finds the least value whose cumulative prefix cost reaches
// min{Delta_{j-1}, T/2 - gamma_{j-1}}, which Lemma 3 makes O~(1) per
// dimension thanks to the O(log N) box-count oracle.
#ifndef CQC_CORE_SPLITTER_H_
#define CQC_CORE_SPLITTER_H_

#include "core/cost_model.h"
#include "core/finterval.h"
#include "core/lex_domain.h"

namespace cqc {

struct SplitResult {
  Tuple c;             // the split point (a grid tuple inside the interval)
  double total_cost;   // T(I) computed along the way
};

/// Requires a non-empty, non-unit interval whose box decomposition is
/// non-trivial. The returned point satisfies interval.Contains(c).
SplitResult SplitInterval(const FInterval& interval, const LexDomain& domain,
                          const CostModel& cost);

}  // namespace cqc

#endif  // CQC_CORE_SPLITTER_H_

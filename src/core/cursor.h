// Resumable enumeration cursors.
//
// An EnumerationCursor is the serializable position of a tuple stream: how
// many tuples were emitted, the last tuple emitted, and the (inclusive)
// upper bound of the lex range being enumerated. It deliberately stores the
// *logical* position instead of raw machine state (tree path indices,
// JoinIterator range offsets): because every answering path enumerates a
// deterministic order, the last emitted tuple uniquely determines the tree
// path, the per-level dictionary candidate offsets, and the per-level join
// positions, and the resuming enumerator re-derives all of them in
// O(depth + delay). That makes a cursor stable across processes, across
// threads, and across a serialization round trip of the representation
// itself (the structural ids a raw-state cursor would pin are exactly what
// a re-load is free to reshuffle).
//
// Two resume strategies exist:
//   * lex-ordered streams (CompressedRep / Algorithm 2, DirectEval):
//     resume = range-restricted enumeration over [succ(last), range_hi] —
//     O(delay) to the first resumed tuple (CompressedRep::Resume).
//   * arbitrary deterministic streams (DecomposedRep / Algorithm 5):
//     resume = re-create and skip `emitted` tuples (SkipTuples) — O(emitted)
//     work but no per-structure machinery.
#ifndef CQC_CORE_CURSOR_H_
#define CQC_CORE_CURSOR_H_

#include <memory>
#include <string>

#include "core/enumerator.h"
#include "util/common.h"
#include "util/status.h"
#include "util/tuple_buffer.h"

namespace cqc {

struct EnumerationCursor {
  /// Tuples emitted before the pause.
  uint64_t emitted = 0;
  /// The stream reported exhaustion; resuming yields nothing.
  bool exhausted = false;
  /// `last` is valid (false until the first tuple is emitted).
  bool has_last = false;
  /// The last emitted tuple (free-variable order).
  Tuple last;
  /// Inclusive bounds of the lex range the stream enumerates; empty = the
  /// full domain (only meaningful for lex-ordered streams). `range_lo`
  /// matters when the stream pauses before its first tuple (has_last is
  /// false): resuming must start at the range's own lower bound, not the
  /// domain minimum — otherwise a shard cursor checkpointed at zero
  /// tuples would replay every earlier shard's output.
  Tuple range_lo;
  Tuple range_hi;

  /// Versioned little-endian byte encoding (magic CQCCUR01).
  std::string Serialize() const;
  /// Rejects wrong magic, truncation, and oversized length fields with a
  /// Status error (never crashes on corrupt input).
  static Result<EnumerationCursor> Deserialize(const std::string& bytes);

  bool operator==(const EnumerationCursor&) const = default;
};

/// Wraps any enumerator and tracks the cursor as tuples flow through, so a
/// consumer can pause at an arbitrary tuple and hand the position to
/// another thread or process. Adds one tuple copy per batch (the last one).
class CursorEnumerator : public TupleEnumerator {
 public:
  /// `range_lo` / `range_hi` (optional) record the stream's inclusive lex
  /// bounds in the cursor, so a resumed enumeration starts and stops at
  /// the same shard boundaries (pass the shard's FInterval endpoints when
  /// wrapping an AnswerRange stream).
  explicit CursorEnumerator(std::unique_ptr<TupleEnumerator> inner,
                            Tuple range_lo = {}, Tuple range_hi = {})
      : inner_(std::move(inner)) {
    cursor_.range_lo = std::move(range_lo);
    cursor_.range_hi = std::move(range_hi);
  }

  bool Next(Tuple* out) override {
    if (!inner_->Next(out)) {
      cursor_.exhausted = true;
      return false;
    }
    ++cursor_.emitted;
    cursor_.has_last = true;
    cursor_.last = *out;
    return true;
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    const size_t n = inner_->NextBatch(out, max_tuples);
    if (n > 0) {
      cursor_.emitted += n;
      cursor_.has_last = true;
      cursor_.last = (*out)[out->size() - 1].ToTuple();
    }
    if (n < max_tuples) cursor_.exhausted = true;
    return n;
  }

  const EnumerationCursor& cursor() const { return cursor_; }

 private:
  std::unique_ptr<TupleEnumerator> inner_;
  EnumerationCursor cursor_;
};

/// Drains and discards `n` tuples; returns how many were actually skipped
/// (< n iff the stream ran out). The generic resume path for streams
/// without lex-range support.
size_t SkipTuples(TupleEnumerator& e, int arity, uint64_t n);

}  // namespace cqc

#endif  // CQC_CORE_CURSOR_H_

#include "core/cost_model.h"

#include <cmath>

#include "util/logging.h"
#include "util/op_counter.h"

namespace cqc {

CostModel::CostModel(const std::vector<BoundAtom>* atoms,
                     std::vector<double> exponents)
    : atoms_(atoms), exponents_(std::move(exponents)) {
  CQC_CHECK_EQ(atoms_->size(), exponents_.size());
}

IndexSelectionStats CostModel::ProbeStats() {
  return {ops::hash_point_probes, ops::sorted_range_seeks};
}

namespace {

double Pow(size_t count, double e) {
  if (count == 0) return 0.0;
  if (e == 0.0) return 1.0;
  if (e == 1.0) return (double)count;
  return std::pow((double)count, e);
}

}  // namespace

double CostModel::BoxCost(const FBox& box) const {
  double t = 1.0;
  for (size_t f = 0; f < atoms_->size() && t > 0; ++f)
    t *= Pow((*atoms_)[f].CountBox(box), exponents_[f]);
  return t;
}

double CostModel::BoxCostBound(TupleSpan bound_vals, const FBox& box) const {
  double t = 1.0;
  for (size_t f = 0; f < atoms_->size() && t > 0; ++f)
    t *= Pow((*atoms_)[f].CountBoundBox(bound_vals, box), exponents_[f]);
  return t;
}

double CostModel::BoxesCost(const std::vector<FBox>& boxes) const {
  double t = 0.0;
  for (const FBox& b : boxes) t += BoxCost(b);
  return t;
}

double CostModel::BoxesCostBound(TupleSpan bound_vals,
                                 const std::vector<FBox>& boxes) const {
  double t = 0.0;
  for (const FBox& b : boxes) t += BoxCostBound(bound_vals, b);
  return t;
}

double CostModel::IntervalCost(const FInterval& interval) const {
  if (interval.Empty()) return 0.0;
  return BoxesCost(BoxDecompose(interval));
}

double CostModel::IntervalCostBound(TupleSpan bound_vals,
                                    const FInterval& interval) const {
  if (interval.Empty()) return 0.0;
  return BoxesCostBound(bound_vals, BoxDecompose(interval));
}

}  // namespace cqc

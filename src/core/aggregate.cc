#include "core/aggregate.h"

#include <map>

#include "util/logging.h"

namespace cqc {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

bool IsPrefixGroupSet(const std::vector<int>& group_vars) {
  for (size_t i = 0; i < group_vars.size(); ++i)
    if (group_vars[i] != (int)i) return false;
  return true;
}

void GroupAccumulator::Open(const Value* key) {
  open_ = true;
  cur_key_.assign(key, key + k_);
  cur_ = AggCell{};
}

void GroupAccumulator::Flush() {
  if (!open_ || cur_.count == 0) return;
  out_.keys.insert(out_.keys.end(), cur_key_.begin(), cur_key_.end());
  out_.counts.push_back(cur_.count);
  switch (spec_.func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
      out_.values.push_back(cur_.sum);
      break;
    case AggFunc::kMin:
      out_.values.push_back(cur_.min);
      break;
    case AggFunc::kMax:
      out_.values.push_back(cur_.max);
      break;
  }
}

void GroupAccumulator::AddCell(const Value* key, uint64_t count, Value sum,
                               Value min, Value max) {
  if (count == 0) return;
  if (!open_ || !std::equal(key, key + k_, cur_key_.begin())) {
    CQC_DCHECK(!open_ || std::lexicographical_compare(
                             cur_key_.begin(), cur_key_.end(), key, key + k_))
        << "group keys must arrive in nondecreasing order";
    Flush();
    Open(key);
  }
  AggCell c;
  c.count = count;
  c.sum = sum;
  c.min = min;
  c.max = max;
  cur_.Merge(c);
}

void GroupAccumulator::AddTuple(TupleSpan t) {
  if (!open_ || !std::equal(t.begin(), t.begin() + k_, cur_key_.begin())) {
    CQC_DCHECK(!open_ ||
               std::lexicographical_compare(cur_key_.begin(), cur_key_.end(),
                                            t.begin(), t.begin() + k_))
        << "group keys must arrive in nondecreasing order";
    Flush();
    Open(t.data());
  }
  if (spec_.value_var >= 0)
    cur_.FoldValue(t[spec_.value_var]);
  else
    cur_.FoldCountOnly();
}

AggregateResult GroupAccumulator::Finish() {
  Flush();
  open_ = false;
  return std::move(out_);
}

AggregateResult GroupedDrainAggregate(TupleEnumerator& e, int num_free,
                                      const std::vector<int>& group_vars,
                                      const AggSpec& spec) {
  const int k = (int)group_vars.size();
  const int value_var = spec.func == AggFunc::kCount ? -1 : spec.value_var;
  CQC_DCHECK(value_var < 0 || (value_var >= 0 && value_var < num_free));
  // One ordered map keyed by the extracted group key: lex key order is
  // vector order, so the flattening loop emits groups strictly ascending —
  // byte-identical to what the in-order annotation walks produce. The
  // scratch key is reused and only copied into the map on first sight of a
  // group, so the steady-state fold allocates nothing.
  std::map<Tuple, AggCell> groups;
  TupleBuffer batch(num_free);
  Tuple key((size_t)k);
  constexpr size_t kBatch = 256;
  for (;;) {
    batch.Clear();
    const size_t n = e.NextBatch(&batch, kBatch);
    for (size_t i = 0; i < n; ++i) {
      const TupleSpan t = batch[i];
      for (int j = 0; j < k; ++j) key[j] = t[group_vars[j]];
      auto it = groups.find(key);
      if (it == groups.end()) it = groups.emplace(key, AggCell{}).first;
      if (value_var >= 0)
        it->second.FoldValue(t[value_var]);
      else
        it->second.FoldCountOnly();
    }
    if (n < kBatch) break;
  }
  AggregateResult out;
  out.group_arity = k;
  out.keys.reserve(groups.size() * (size_t)k);
  out.counts.reserve(groups.size());
  for (const auto& [gk, cell] : groups) {
    out.keys.insert(out.keys.end(), gk.begin(), gk.end());
    out.counts.push_back(cell.count);
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
        out.values.push_back(cell.sum);
        break;
      case AggFunc::kMin:
        out.values.push_back(cell.min);
        break;
      case AggFunc::kMax:
        out.values.push_back(cell.max);
        break;
    }
  }
  return out;
}

}  // namespace cqc

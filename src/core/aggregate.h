// Ring aggregates over answer streams and compressed structures.
//
// COUNT / SUM / MIN / MAX with group-by over the free variables, in the
// Olteanu–Závodný factorised-evaluation sense: every structure folds the
// same commutative ring (counts and sums in Z_2^64, min/max as the
// tropical pair with identities kTop/kBottom), so a pushed aggregate
// computed by interval arithmetic over subtree annotations is value-
// identical to draining the enumeration and folding tuple by tuple. This
// header holds the shared vocabulary: the request (AggSpec), the response
// (AggregateResult, groups in lex order of their keys), the per-subtree
// annotation cell (RingCell, the thing DelayBalancedTree / HeavyDictionary
// store per node / per CSR entry), the contiguous-group accumulator the
// pushed walks emit into, and the drain-and-fold reference every structure
// falls back to (and every differential test compares against).
#ifndef CQC_CORE_AGGREGATE_H_
#define CQC_CORE_AGGREGATE_H_

#include <algorithm>
#include <vector>

#include "core/enumerator.h"
#include "core/finterval.h"
#include "util/common.h"

namespace cqc {

enum class AggFunc { kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// One aggregate request: the function plus (for SUM/MIN/MAX) the index of
/// the free variable it folds, in head free-variable order. Ignored for
/// COUNT.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  int value_var = -1;

  static AggSpec Count() { return {AggFunc::kCount, -1}; }
  static AggSpec Sum(int var) { return {AggFunc::kSum, var}; }
  static AggSpec Min(int var) { return {AggFunc::kMin, var}; }
  static AggSpec Max(int var) { return {AggFunc::kMax, var}; }
};

/// Grouped aggregate answer: `group_arity` key values per group, keys
/// strictly ascending lexicographically, only groups with count > 0.
/// `values` carries the SUM/MIN/MAX result per group and stays empty for
/// COUNT, so results from different structures compare with ==.
struct AggregateResult {
  int group_arity = 0;
  std::vector<Value> keys;       // group_arity values per group
  std::vector<uint64_t> counts;  // one per group
  std::vector<Value> values;     // one per group; empty for COUNT

  size_t num_groups() const { return counts.size(); }

  bool operator==(const AggregateResult& o) const {
    return group_arity == o.group_arity && keys == o.keys &&
           counts == o.counts && values == o.values;
  }
  bool operator!=(const AggregateResult& o) const { return !(*this == o); }
};

/// The ring cell one answer set folds into for a single value variable:
/// count in Z_2^64, sum mod 2^64, min/max with identities kTop/kBottom.
struct AggCell {
  uint64_t count = 0;
  Value sum = 0;
  Value min = kTop;
  Value max = kBottom;

  void FoldValue(Value v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }
  void FoldCountOnly() { ++count; }
  void Merge(const AggCell& o) {
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
};

/// A subtree annotation over all mu free variables: the result count plus,
/// per free variable, its ring sum / min / max over the subtree's answers.
/// `vals` uses the storage layout the structures persist — sums[mu] |
/// mins[mu] | maxs[mu] — so a scratch cell folds straight into the flat
/// annotation arrays.
struct RingCell {
  uint64_t count = 0;
  std::vector<Value> vals;  // 3 * mu: sums, then mins, then maxs

  void Reset(int mu) {
    count = 0;
    vals.assign((size_t)(3 * mu), 0);
    const int m = mu;
    for (int j = 0; j < m; ++j) {
      vals[(size_t)m + j] = kTop;      // min identity
      vals[(size_t)2 * m + j] = kBottom;  // max identity
    }
  }
  /// `t` is one answer (arity mu == vals.size() / 3).
  void FoldTuple(TupleSpan t) {
    ++count;
    const size_t m = t.size();
    for (size_t j = 0; j < m; ++j) {
      vals[j] += t[j];
      vals[m + j] = std::min(vals[m + j], t[j]);
      vals[2 * m + j] = std::max(vals[2 * m + j], t[j]);
    }
  }
  void Merge(const RingCell& o) {
    count += o.count;
    const size_t m = vals.size() / 3;
    for (size_t j = 0; j < m; ++j) {
      vals[j] += o.vals[j];
      vals[m + j] = std::min(vals[m + j], o.vals[m + j]);
      vals[2 * m + j] = std::max(vals[2 * m + j], o.vals[2 * m + j]);
    }
  }
};

/// Accumulates (key, cell) contributions arriving in nondecreasing key
/// order — the in-order walks over the lex-sorted structures — merging
/// runs of equal keys so the output groups come out strictly ascending
/// without a map. Keys must not decrease between calls (DCHECKed).
class GroupAccumulator {
 public:
  GroupAccumulator(int group_arity, const AggSpec& spec)
      : k_(group_arity), spec_(spec) {
    out_.group_arity = group_arity;
  }

  /// Adds a whole annotated subtree whose answers all share `key`
  /// (`sum`/`min`/`max` are the cell's entries for spec.value_var; pass
  /// zeros for COUNT).
  void AddCell(const Value* key, uint64_t count, Value sum, Value min,
               Value max);
  /// Adds one answer tuple; the key is its first `group_arity` values.
  void AddTuple(TupleSpan t);

  /// Flushes the trailing group and returns the result. Call once.
  AggregateResult Finish();

 private:
  void Open(const Value* key);
  void Flush();

  int k_;
  AggSpec spec_;
  bool open_ = false;
  std::vector<Value> cur_key_;
  AggCell cur_;
  AggregateResult out_;
};

/// Reference evaluation and universal fallback: drain the enumeration
/// through NextBatch and fold each tuple into its group (any group set,
/// not just lex prefixes; no per-tuple Tuple materialization on the hot
/// path). `group_vars` are free-variable indices, strictly ascending.
AggregateResult GroupedDrainAggregate(TupleEnumerator& e, int num_free,
                                      const std::vector<int>& group_vars,
                                      const AggSpec& spec);

/// True iff `group_vars` is exactly the lex prefix [0, k) of the free
/// variables — the group sets the annotation walks answer directly.
bool IsPrefixGroupSet(const std::vector<int>& group_vars);

}  // namespace cqc

#endif  // CQC_CORE_AGGREGATE_H_

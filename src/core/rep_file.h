// RepFile: a read-only handle over a rep container file, backing the
// zero-copy load path (core/serialization.h, MmapCompressedRep).
//
// On POSIX systems the file is mmap'ed PROT_READ / MAP_PRIVATE: opening is
// O(1) regardless of file size, the structures borrow their columns
// straight out of the mapping (util/col_store.h), and the OS pages data in
// on demand — a rep larger than RAM serves with the page cache as the
// eviction policy. On platforms without mmap the handle degrades to a heap
// read (same interface, O(bytes) open), so callers never need a platform
// branch.
//
// ResidentBytes() reports the bytes of the mapping currently resident in
// physical memory (mincore page sweep). This is what a byte-budgeted cache
// must charge a mapped entry: the *virtual* size of the mapping is the
// file size, but an untouched mapping costs nothing — see
// plan/rep_cache.h (RepCacheOptions::max_resident_bytes).
//
// Lifetime: structures borrowing from the mapping hold no reference to it;
// the CompressedRep that owns them keeps the shared_ptr<RepFile> alive for
// as long as any borrowed column can be read.
#ifndef CQC_CORE_REP_FILE_H_
#define CQC_CORE_REP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace cqc {

class RepFile {
 public:
  /// Maps `path` read-only. Fails with a Status error on a missing or
  /// unreadable file; an empty file opens with size() == 0 (the loader
  /// rejects it at the magic check).
  static Result<std::shared_ptr<RepFile>> Open(const std::string& path);

  ~RepFile();
  RepFile(const RepFile&) = delete;
  RepFile& operator=(const RepFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when the handle is a real mapping (false on the heap fallback).
  bool mapped() const { return map_ != nullptr; }

  /// Bytes of the mapping currently resident in physical memory (mincore
  /// page sweep; the heap fallback and platforms without mincore report
  /// the full size — the conservative charge).
  size_t ResidentBytes() const;

 private:
  RepFile() = default;

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* map_ = nullptr;          // non-null iff mmap'ed
  int fd_ = -1;
  std::vector<uint8_t> heap_;    // fallback storage when mmap is unavailable
};

}  // namespace cqc

#endif  // CQC_CORE_REP_FILE_H_

#include "core/updatable_rep.h"

#include <set>
#include <unordered_set>
#include <utility>

#include "join/bound_atom.h"
#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/failpoint.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace cqc {
namespace {

/// Forwards a stream while keeping an owner (the published State or
/// Snapshot an enumerator reads) alive: answers stay valid across
/// concurrent updates and rebuild pointer swaps.
class KeepAliveEnumerator : public TupleEnumerator {
 public:
  KeepAliveEnumerator(std::shared_ptr<const void> keep,
                      std::unique_ptr<TupleEnumerator> inner)
      : keep_(std::move(keep)), inner_(std::move(inner)) {}

  bool Next(Tuple* out) override { return inner_->Next(out); }
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    return inner_->NextBatch(out, max_tuples);
  }

 private:
  std::shared_ptr<const void> keep_;
  std::unique_ptr<TupleEnumerator> inner_;
};

void CopyRelationInto(const Relation& src, Database& out) {
  Relation* dst = out.AddRelation(src.name(), src.arity());
  Tuple row(src.arity());
  for (size_t r = 0; r < src.size(); ++r) {
    for (int c = 0; c < src.arity(); ++c) row[c] = src.At(r, c);
    dst->Insert(row);
  }
  dst->Seal();
}

}  // namespace

// ---------------------------------------------------------------------------
// State: lazily derived delta databases.
// ---------------------------------------------------------------------------

void UpdatableRep::State::EnsureDerived() const {
  std::call_once(derived_once, [this] {
    auto ins = std::make_unique<Database>();
    auto cur = std::make_unique<Database>();
    for (const Relation* r : snapshot->base->AllRelations()) {
      auto it = pending.find(r->name());
      const RelationPending* m =
          it == pending.end() ? nullptr : it->second.get();
      Relation* di = ins->AddRelation(r->name(), r->arity());
      Relation* dc = cur->AddRelation(r->name(), r->arity());
      Tuple row(r->arity());
      for (size_t i = 0; i < r->size(); ++i) {
        for (int c = 0; c < r->arity(); ++c) row[c] = r->At(i, c);
        if (m != nullptr) {
          auto pit = m->find(row);
          if (pit != m->end() && pit->second < 0) continue;  // tombstoned
        }
        dc->Insert(row);
      }
      if (m != nullptr) {
        for (const auto& [t, sign] : *m) {
          if (sign > 0) {
            di->Insert(t);
            dc->Insert(t);
          }
        }
      }
      di->Seal();
      dc->Seal();
    }
    has_tombstones = num_deletes > 0;
    inserts_db = std::move(ins);
    current_db = std::move(cur);
  });
}

// ---------------------------------------------------------------------------
// Construction / publishing.
// ---------------------------------------------------------------------------

std::shared_ptr<const UpdatableRep::Snapshot> UpdatableRep::BuildSnapshot(
    const AdornedView& view, std::shared_ptr<const Database> source,
    const CompressedRepOptions& options, Status* status) {
  // The base is adopted, not copied: a fold reuses the previous epoch's
  // (immutable) merged database directly. Lazy index builds on the shared
  // relations are safe under concurrent readers (Relation's caches are
  // once_flag-coalesced).
  auto snap = std::make_shared<Snapshot>();
  snap->base = std::move(source);
  Result<std::unique_ptr<CompressedRep>> built =
      CompressedRep::Build(view, *snap->base, options);
  if (!built.ok()) {
    *status = built.status();
    return nullptr;
  }
  snap->rep = std::move(built).value();
  *status = Status::Ok();
  return snap;
}

Result<std::unique_ptr<UpdatableRep>> UpdatableRep::Build(
    const AdornedView& view, const Database& db,
    const UpdatableRepOptions& options, const Database* aux_db) {
  if (!view.cq().IsNaturalJoin())
    return Status::Error("UpdatableRep requires a natural join view");
  auto rep = std::unique_ptr<UpdatableRep>(new UpdatableRep(view));
  rep->options_ = options;
  // Snapshot every referenced relation (each name once).
  auto referenced = std::make_shared<Database>();
  std::set<std::string> seen;
  for (const Atom& atom : view.cq().atoms()) {
    if (!seen.insert(atom.relation).second) continue;
    const Relation* r = ResolveRelation(atom.relation, db, aux_db);
    if (r == nullptr) return Status::Error("unknown relation " + atom.relation);
    CopyRelationInto(*r, *referenced);
  }
  Status status = Status::Ok();
  auto snap = BuildSnapshot(view, std::move(referenced), options.rep, &status);
  if (!status.ok()) return status;
  auto state = std::make_shared<State>();
  state->snapshot = std::move(snap);
  rep->state_ = std::move(state);
  return std::move(rep);
}

std::shared_ptr<const UpdatableRep::State> UpdatableRep::Load() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

void UpdatableRep::Publish(std::shared_ptr<const State> next) {
  std::lock_guard<std::mutex> lock(state_mu_);
  state_ = std::move(next);
}

// ---------------------------------------------------------------------------
// Mutation: canonical pending delta + optional synchronous fold.
// ---------------------------------------------------------------------------

Status UpdatableRep::Apply(const UpdateBatch& batch) {
  if (batch.empty()) return Status::Ok();
  {
    std::lock_guard<std::mutex> wl(writer_mu_);
    std::shared_ptr<const State> cur = Load();
    const Database& base = *cur->snapshot->base;
    // Validate the whole batch before touching anything: a bad op leaves
    // the published state untouched.
    std::set<std::string> touched;
    for (const UpdateOp& op : batch) {
      const Relation* r = base.Find(op.relation);
      if (r == nullptr)
        return Status::Error("relation " + op.relation +
                             " is not part of the view");
      if ((int)op.tuple.size() != r->arity())
        return Status::Error("arity mismatch updating " + op.relation);
      touched.insert(op.relation);
    }
    auto next = std::make_shared<State>();
    next->snapshot = cur->snapshot;
    next->pending = cur->pending;  // shallow: per-relation maps are shared
    next->num_inserts = cur->num_inserts;
    next->num_deletes = cur->num_deletes;
    // Copy-on-write per touched relation; untouched relations share their
    // (immutable) maps with the previous epoch.
    for (const std::string& name : touched) {
      const Relation* r = base.Find(name);
      RelationPending m;
      if (auto it = next->pending.find(name); it != next->pending.end()) {
        m = *it->second;
        for (const auto& [t, sign] : m)
          --(sign > 0 ? next->num_inserts : next->num_deletes);
      }
      for (const UpdateOp& op : batch) {
        if (op.relation != name) continue;
        // Canonicalize against the snapshot (one O(1) expected hash
        // probe): +1 entries are exactly current \ base, -1 entries
        // base \ current.
        const bool in_base = r->Contains(op.tuple);
        if (op.kind == UpdateOp::kInsert) {
          if (in_base)
            m.erase(op.tuple);  // un-delete (or no-op)
          else
            m[op.tuple] = +1;
        } else {
          if (in_base)
            m[op.tuple] = -1;  // tombstone
          else
            m.erase(op.tuple);  // cancel a pending insert (or no-op)
        }
      }
      for (const auto& [t, sign] : m)
        ++(sign > 0 ? next->num_inserts : next->num_deletes);
      if (m.empty())
        next->pending.erase(name);
      else
        next->pending[name] =
            std::make_shared<const RelationPending>(std::move(m));
    }
    Publish(std::move(next));
  }
  // The fold runs outside writer_mu_ (Rebuild re-acquires it only for the
  // final rebase + publish).
  if (options_.auto_rebuild && NeedsRebuild())
    return Rebuild(/*only_if_needed=*/true);
  return Status::Ok();
}

Status UpdatableRep::Insert(const std::string& relation, const Tuple& t) {
  return Apply({UpdateOp::Insert(relation, t)});
}

Status UpdatableRep::Delete(const std::string& relation, const Tuple& t) {
  return Apply({UpdateOp::Delete(relation, t)});
}

bool UpdatableRep::NeedsRebuild() const {
  std::shared_ptr<const State> st = Load();
  return (double)(st->num_inserts + st->num_deletes) >
         options_.rebuild_fraction *
             (double)st->snapshot->base->TotalTuples();
}

Status UpdatableRep::Rebuild(bool only_if_needed) {
  std::lock_guard<std::mutex> rl(rebuild_mu_);  // one rebuild at a time
  if (only_if_needed && !NeedsRebuild()) return Status::Ok();
  // Injected before the snapshot is captured: a fired rebuild fault must
  // leave the current state fully serviceable (the old snapshot + pending
  // delta keeps answering).
  CQC_FAILPOINT("updatable/rebuild");
  std::shared_ptr<const State> captured = Load();
  if (!captured->HasPending()) return Status::Ok();
  captured->EnsureDerived();
  // The expensive part — rebuilding the Theorem-1 structure over the
  // merged data (adopted, not copied) — runs without the writer lock, so
  // concurrent Apply calls proceed against the old snapshot meanwhile.
  Status status = Status::Ok();
  std::shared_ptr<const Snapshot> snap =
      BuildSnapshot(view_, captured->current_db, options_.rep, &status);
  if (!status.ok()) return status;
  {
    std::lock_guard<std::mutex> wl(writer_mu_);
    // Rebuilds are serialized, so the current state still points at the
    // snapshot we captured; only its pending delta may have advanced.
    std::shared_ptr<const State> cur = Load();
    auto next = std::make_shared<State>();
    next->snapshot = snap;
    // Rebase: a pending entry records current membership relative to the
    // *old* base; re-derive it against the new base. Only tuples touched
    // by either pending map can differ between the two bases.
    for (const Relation* r : captured->snapshot->base->AllRelations()) {
      const std::string& name = r->name();
      const Relation* nb = snap->base->Find(name);
      auto cit = cur->pending.find(name);
      auto kit = captured->pending.find(name);
      const RelationPending* cur_m =
          cit == cur->pending.end() ? nullptr : cit->second.get();
      RelationPending rebased;
      auto consider = [&](const Tuple& t) {
        bool present_now;
        if (cur_m != nullptr) {
          auto pit = cur_m->find(t);
          present_now =
              pit != cur_m->end() ? pit->second > 0 : r->Contains(t);
        } else {
          present_now = r->Contains(t);
        }
        const bool in_new_base = nb->Contains(t);
        if (present_now != in_new_base)
          rebased[t] = present_now ? +1 : -1;
      };
      if (cur_m != nullptr)
        for (const auto& [t, sign] : *cur_m) consider(t);
      if (kit != captured->pending.end())
        for (const auto& [t, sign] : *kit->second) consider(t);
      if (rebased.empty()) continue;
      for (const auto& [t, sign] : rebased)
        ++(sign > 0 ? next->num_inserts : next->num_deletes);
      next->pending[name] =
          std::make_shared<const RelationPending>(std::move(rebased));
    }
    Publish(std::move(next));
  }
  ++num_rebuilds_;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Accessors.
// ---------------------------------------------------------------------------

size_t UpdatableRep::pending_inserts() const { return Load()->num_inserts; }
size_t UpdatableRep::pending_deletes() const { return Load()->num_deletes; }

size_t UpdatableRep::snapshot_tuples() const {
  return Load()->snapshot->base->TotalTuples();
}

double UpdatableRep::build_seconds() const {
  return Load()->snapshot->rep->stats().build_seconds;
}

size_t UpdatableRep::StateSpaceBytes(const State& st) {
  size_t pending_bytes = 0;
  for (const auto& [name, m] : st.pending)
    for (const auto& [t, sign] : *m)
      pending_bytes += t.size() * sizeof(Value) + 48;
  return st.snapshot->rep->stats().TotalBytes() +
         st.snapshot->base->BaseBytes() + pending_bytes;
}

size_t UpdatableRep::SpaceBytes() const { return StateSpaceBytes(*Load()); }

UpdatableRep::Info UpdatableRep::GetInfo() const {
  // One epoch load: every field comes from the same published state, and
  // the state (not a dangling reference) is what we read from — safe
  // against a concurrent rebuild swapping the snapshot mid-read.
  std::shared_ptr<const State> st = Load();
  Info info;
  info.tau = st->snapshot->rep->tau();
  info.snapshot_tuples = st->snapshot->base->TotalTuples();
  info.pending_inserts = st->num_inserts;
  info.pending_deletes = st->num_deletes;
  info.num_rebuilds = num_rebuilds_;
  info.space_bytes = StateSpaceBytes(*st);
  return info;
}

const CompressedRep& UpdatableRep::rep() const {
  return *Load()->snapshot->rep;
}

const Database& UpdatableRep::snapshot_base() const {
  return *Load()->snapshot->base;
}

// ---------------------------------------------------------------------------
// Combined enumeration: filtered snapshot answers, then delta-term answers.
// ---------------------------------------------------------------------------

class UpdatableRep::CombinedEnumerator : public TupleEnumerator {
 public:
  CombinedEnumerator(std::shared_ptr<const State> state,
                     const AdornedView& view, BoundValuation vb)
      : state_(std::move(state)),
        view_(&view),
        vb_(std::move(vb)),
        stage_(view.num_free()) {
    base_enum_ = state_->snapshot->rep->Answer(vb_);
    const ConjunctiveQuery& cq = view_->cq();
    // Bind each atom against snapshot / inserted / current variants once.
    for (const Atom& atom : cq.atoms()) {
      old_.emplace_back(atom, *state_->snapshot->base->Find(atom.relation),
                        view_->bound_vars(), view_->free_vars());
      ins_.emplace_back(atom, *state_->inserts_db->Find(atom.relation),
                        view_->bound_vars(), view_->free_vars());
      cur_.emplace_back(atom, *state_->current_db->Find(atom.relation),
                        view_->bound_vars(), view_->free_vars());
    }
  }

  bool Next(Tuple* out) override {
    // Serve staged survivors first (an interleaved NextBatch call may have
    // left some), then refill one answer at a time. The single-answer
    // refill pulls through the producer's batch entry point with
    // max_tuples = 1 — which produces exactly one tuple and, unlike its
    // Next(), never runs ahead into a staged block — so a Next() call here
    // does one production step plus one point probe per atom: a strict
    // (not amortized) constant delay, which the per-request worst-gap
    // percentiles in BENCH_updates.json gate directly.
    while (base_enum_ != nullptr || stage_pos_ < stage_.size()) {
      if (stage_pos_ < stage_.size()) {
        const size_t i = stage_pos_++;
        if (!keep_.empty() && !keep_[i]) continue;
        const TupleSpan t = stage_[i];
        out->assign(t.data(), t.data() + t.size());
        return true;
      }
      if (!RefillStage(1)) base_enum_.reset();
    }
    const int n = (int)old_.size();
    const int mu = view_->num_free();
    for (;;) {
      if (!term_join_.has_value()) {
        if (term_ >= n) return false;
        if (!StartTerm(term_)) {
          ++term_;
          continue;
        }
      }
      Tuple t;
      while (term_join_->Next(&t)) {
        if (mu == 0) t.clear();
        if (DerivableFromSnapshot(t)) continue;
        if (!emitted_.insert(t).second) continue;
        *out = t;
        return true;
      }
      term_join_.reset();
      ++term_;
    }
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t emitted = 0;
    // Snapshot answers: drain the filtered stage block-by-block, appending
    // survivors straight from the stage buffer (no per-tuple Tuple).
    while (emitted < max_tuples &&
           (base_enum_ != nullptr || stage_pos_ < stage_.size())) {
      if (stage_pos_ >= stage_.size()) {
        if (!RefillStage(kStageBlock)) {
          base_enum_.reset();
          break;
        }
        continue;
      }
      while (stage_pos_ < stage_.size() && emitted < max_tuples) {
        const size_t i = stage_pos_++;
        if (!keep_.empty() && !keep_[i]) continue;
        out->Append(stage_[i]);
        ++emitted;
      }
    }
    // Delta terms keep the per-tuple path (dedup + derivability probes).
    Tuple t;
    while (emitted < max_tuples && Next(&t)) {
      out->Append(t);
      ++emitted;
    }
    return emitted;
  }

 private:
  // Snapshot answers are staged in blocks so the tombstone filter runs as
  // one batch per atom: scatter the block's keys, then a prefetched group
  // probe sweep of the hash index (8 probes in flight), instead of a
  // dependent chain of point probes per answer. The block is a
  // NextBatch-only amortization: the single-tuple path refills one answer,
  // preserving the strict (not amortized) constant delay bound per Next()
  // — the per-request worst-gap percentiles in BENCH_updates.json gate
  // exactly that, and a block refill inside Next() would turn the worst
  // gap into a block's worth of work.
  static constexpr size_t kStageBlock = 64;

  // Pulls the next `block` snapshot answers into stage_ and computes the
  // survivor mask. Returns false iff the snapshot stream is exhausted.
  // keep_ stays empty when there are no tombstones (everything survives —
  // a full natural-join answer has a unique derivation, so with deletions
  // it survives iff every atom's projection is still present in the
  // current data).
  bool RefillStage(size_t block) {
    stage_.Clear();
    stage_pos_ = 0;
    keep_.clear();
    const size_t got = base_enum_->NextBatch(&stage_, block);
    if (got == 0) return false;
    if (!state_->has_tombstones) return true;
    keep_.assign(got, 1);
    const size_t mu = (size_t)view_->num_free();
    for (const BoundAtom& atom : cur_)
      atom.FilterValuations(vb_, stage_.data(), mu, got, keep_.data(),
                            &probe_ws_);
    return true;
  }
  // Signed delta term i: atom i ranges over the net inserts, every other
  // atom over the current (merged) relation. Produces every answer whose
  // (unique) derivation uses an inserted tuple at atom i; the cross-term
  // duplicates are removed by emitted_.
  bool StartTerm(int i) {
    const int mu = view_->num_free();
    std::vector<JoinAtomInput> inputs;
    for (int j = 0; j < (int)old_.size(); ++j) {
      const BoundAtom& atom = (j == i) ? ins_[j] : cur_[j];
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = atom.SeekBound(vb_);
      if (in.start.empty()) return false;
      in.start_level = atom.num_bound();
      for (int k = 0; k < atom.num_free(); ++k)
        in.levels.emplace_back(atom.free_positions()[k],
                               atom.num_bound() + k);
      inputs.push_back(std::move(in));
    }
    term_join_.emplace(
        std::move(inputs), mu,
        std::vector<LevelConstraint>(mu, LevelConstraint::Any()));
    return true;
  }

  // v in Q(snapshot)? Every snapshot atom contains the projection of
  // (vb, v) — those answers stream (filtered) from base_enum_ already.
  bool DerivableFromSnapshot(const Tuple& vf) const {
    for (const BoundAtom& atom : old_)
      if (!atom.ContainsValuation(vb_, vf)) return false;
    return true;
  }

  std::shared_ptr<const State> state_;  // owns everything we read
  const AdornedView* view_;
  BoundValuation vb_;
  std::unique_ptr<TupleEnumerator> base_enum_;
  TupleBuffer stage_;
  size_t stage_pos_ = 0;
  std::vector<uint8_t> keep_;  // per-staged-tuple survivor mask
  BoundAtom::ProbeBatch probe_ws_;
  std::vector<BoundAtom> old_, ins_, cur_;
  int term_ = 0;
  std::optional<JoinIterator> term_join_;
  std::unordered_set<Tuple, TupleHash> emitted_;
};

std::unique_ptr<TupleEnumerator> UpdatableRep::Answer(
    const BoundValuation& vb) const {
  std::shared_ptr<const State> st = Load();
  if (!st->HasPending()) {
    std::unique_ptr<TupleEnumerator> inner = st->snapshot->rep->Answer(vb);
    return std::make_unique<KeepAliveEnumerator>(std::move(st),
                                                 std::move(inner));
  }
  st->EnsureDerived();
  return std::make_unique<CombinedEnumerator>(std::move(st), view_, vb);
}

bool UpdatableRep::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

AggregateResult UpdatableRep::AnswerAggregate(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  std::shared_ptr<const State> st = Load();
  if (!st->HasPending()) {
    // Clean epoch: the snapshot structure answers directly (pushed when it
    // carries annotations). `st` keeps the epoch alive for the call.
    return st->snapshot->rep->AnswerAggregate(vb, group_vars, spec);
  }
  // Pending ops: fold the combined signed stream — the tombstone filter
  // and delta-join terms already apply every +1/-1, so drain-and-fold is
  // exact (pushed speed returns at the next epoch publish).
  st->EnsureDerived();
  CombinedEnumerator e(std::move(st), view_, vb);
  return GroupedDrainAggregate(e, view_.num_free(), group_vars, spec);
}

}  // namespace cqc

#include "core/updatable_rep.h"

#include <set>
#include <unordered_set>

#include "join/bound_atom.h"
#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace cqc {

void UpdatableRep::CopyRelation(const Relation& src, Database& out,
                                const std::vector<Tuple>& extra) {
  Relation* dst = out.AddRelation(src.name(), src.arity());
  Tuple row(src.arity());
  for (size_t r = 0; r < src.size(); ++r) {
    for (int c = 0; c < src.arity(); ++c) row[c] = src.At(r, c);
    dst->Insert(row);
  }
  for (const Tuple& t : extra) dst->Insert(t);
  dst->Seal();
}

Result<std::unique_ptr<UpdatableRep>> UpdatableRep::Build(
    const AdornedView& view, const Database& db,
    const UpdatableRepOptions& options, const Database* aux_db) {
  if (!view.cq().IsNaturalJoin())
    return Status::Error("UpdatableRep requires a natural join view");
  auto rep = std::unique_ptr<UpdatableRep>(new UpdatableRep(view));
  rep->options_ = options;
  // Snapshot every referenced relation (each name once).
  rep->base_ = std::make_unique<Database>();
  std::set<std::string> seen;
  for (const Atom& atom : view.cq().atoms()) {
    if (!seen.insert(atom.relation).second) continue;
    const Relation* r = ResolveRelation(atom.relation, db, aux_db);
    if (r == nullptr) return Status::Error("unknown relation " + atom.relation);
    CopyRelation(*r, *rep->base_, {});
  }
  Result<std::unique_ptr<CompressedRep>> built =
      CompressedRep::Build(view, *rep->base_, options.rep);
  if (!built.ok()) return built.status();
  rep->rep_ = std::move(built).value();
  return std::move(rep);
}

Status UpdatableRep::Insert(const std::string& relation, const Tuple& t) {
  const Relation* r = base_->Find(relation);
  if (r == nullptr)
    return Status::Error("relation " + relation + " is not part of the view");
  if ((int)t.size() != r->arity())
    return Status::Error("arity mismatch inserting into " + relation);
  staging_[relation].push_back(t);
  derived_dirty_ = true;
  if ((double)pending_inserts() >
      options_.rebuild_fraction * (double)base_->TotalTuples()) {
    return Rebuild();
  }
  return Status::Ok();
}

size_t UpdatableRep::pending_inserts() const {
  size_t n = 0;
  for (const auto& [name, rows] : staging_) n += rows.size();
  return n;
}

Status UpdatableRep::RefreshDerived() const {
  if (!derived_dirty_) return Status::Ok();
  delta_ = std::make_unique<Database>();
  merged_ = std::make_unique<Database>();
  for (const Relation* r : base_->AllRelations()) {
    auto it = staging_.find(r->name());
    static const std::vector<Tuple> kNone;
    const std::vector<Tuple>& extra =
        it == staging_.end() ? kNone : it->second;
    // Delta holds only the staged tuples; merged holds base + staged.
    Relation* d = delta_->AddRelation(r->name(), r->arity());
    for (const Tuple& t : extra) d->Insert(t);
    d->Seal();
    CopyRelation(*r, *merged_, extra);
  }
  derived_dirty_ = false;
  return Status::Ok();
}

Status UpdatableRep::Rebuild() {
  Status s = RefreshDerived();
  if (!s.ok()) return s;
  rep_.reset();
  base_ = std::move(merged_);
  merged_.reset();
  delta_.reset();
  staging_.clear();
  derived_dirty_ = true;
  Result<std::unique_ptr<CompressedRep>> built =
      CompressedRep::Build(view_, *base_, options_.rep);
  if (!built.ok()) return built.status();
  rep_ = std::move(built).value();
  ++num_rebuilds_;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Combined enumeration: snapshot answers, then delta-term answers.
// ---------------------------------------------------------------------------

class UpdatableRep::MergedEnumerator : public TupleEnumerator {
 public:
  MergedEnumerator(const UpdatableRep* owner, BoundValuation vb)
      : owner_(owner), vb_(std::move(vb)) {
    base_enum_ = owner_->rep_->Answer(vb_);
    const ConjunctiveQuery& cq = owner_->view_.cq();
    // Bind each atom against old / delta / merged variants once.
    for (const Atom& atom : cq.atoms()) {
      old_.emplace_back(atom, *owner_->base_->Find(atom.relation),
                        owner_->view_.bound_vars(),
                        owner_->view_.free_vars());
      delta_.emplace_back(atom, *owner_->delta_->Find(atom.relation),
                          owner_->view_.bound_vars(),
                          owner_->view_.free_vars());
      merged_.emplace_back(atom, *owner_->merged_->Find(atom.relation),
                           owner_->view_.bound_vars(),
                           owner_->view_.free_vars());
    }
  }

  bool Next(Tuple* out) override {
    if (base_enum_) {
      if (base_enum_->Next(out)) return true;
      base_enum_.reset();
    }
    const int n = (int)old_.size();
    const int mu = owner_->view_.num_free();
    for (;;) {
      if (!term_join_.has_value()) {
        if (term_ >= n) return false;
        if (!StartTerm(term_)) {
          ++term_;
          continue;
        }
      }
      Tuple t;
      while (term_join_->Next(&t)) {
        if (mu == 0) t.clear();
        if (DerivableFromBase(t)) continue;
        if (!emitted_.insert(t).second) continue;
        *out = t;
        return true;
      }
      term_join_.reset();
      ++term_;
    }
  }

 private:
  // Delta term i: atoms < i merged, atom i delta, atoms > i old.
  bool StartTerm(int i) {
    const int mu = owner_->view_.num_free();
    std::vector<JoinAtomInput> inputs;
    for (int j = 0; j < (int)old_.size(); ++j) {
      const BoundAtom& atom =
          (j < i) ? merged_[j] : (j == i) ? delta_[j] : old_[j];
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = atom.SeekBound(vb_);
      if (in.start.empty()) return false;
      in.start_level = atom.num_bound();
      for (int k = 0; k < atom.num_free(); ++k)
        in.levels.emplace_back(atom.free_positions()[k],
                               atom.num_bound() + k);
      inputs.push_back(std::move(in));
    }
    term_join_.emplace(
        std::move(inputs), mu,
        std::vector<LevelConstraint>(mu, LevelConstraint::Any()));
    return true;
  }

  // v in Q(old snapshot)? For a full natural join: every old atom contains
  // the projection of (vb, v).
  bool DerivableFromBase(const Tuple& vf) const {
    for (const BoundAtom& atom : old_)
      if (!atom.ContainsValuation(vb_, vf)) return false;
    return true;
  }

  const UpdatableRep* owner_;
  BoundValuation vb_;
  std::unique_ptr<TupleEnumerator> base_enum_;
  std::vector<BoundAtom> old_, delta_, merged_;
  int term_ = 0;
  std::optional<JoinIterator> term_join_;
  std::unordered_set<Tuple, TupleHash> emitted_;
};

std::unique_ptr<TupleEnumerator> UpdatableRep::Answer(
    const BoundValuation& vb) const {
  if (pending_inserts() == 0) return rep_->Answer(vb);
  Status s = RefreshDerived();
  CQC_CHECK(s.ok()) << s.message();
  return std::make_unique<MergedEnumerator>(this, vb);
}

bool UpdatableRep::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

}  // namespace cqc

#include "core/dictionary.h"

#include <algorithm>

#include "join/generic_join.h"
#include "util/logging.h"

namespace cqc {

HeavyDictionary::Bit HeavyDictionary::Lookup(int node, uint32_t vb_id) const {
  if (vb_id == kNoValuation) return Bit::kAbsent;
  if (node < 0 || node >= (int)per_node_.size()) return Bit::kAbsent;
  const auto& entries = per_node_[node];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), vb_id,
      [](const Entry& e, uint32_t id) { return e.vb < id; });
  if (it == entries.end() || it->vb != vb_id) return Bit::kAbsent;
  return it->bit ? Bit::kOne : Bit::kZero;
}

uint32_t HeavyDictionary::FindValuation(const Tuple& vb) const {
  auto it = candidate_ids_.find(vb);
  return it == candidate_ids_.end() ? kNoValuation : it->second;
}

void HeavyDictionary::SetBit(int node, uint32_t vb_id, bool bit) {
  CQC_CHECK_GE(node, 0);
  CQC_CHECK_LT(node, (int)per_node_.size());
  auto& entries = per_node_[node];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), vb_id,
      [](const Entry& e, uint32_t id) { return e.vb < id; });
  CQC_CHECK(it != entries.end() && it->vb == vb_id)
      << "SetBit on absent dictionary entry";
  it->bit = bit ? 1 : 0;
}

size_t HeavyDictionary::NumEntries() const {
  size_t n = 0;
  for (const auto& e : per_node_) n += e.size();
  return n;
}

size_t HeavyDictionary::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& e : per_node_) bytes += e.capacity() * sizeof(Entry);
  for (const auto& c : candidates_)
    bytes += sizeof(Tuple) + c.capacity() * sizeof(Value);
  // Hash map overhead: buckets + nodes (approximate).
  bytes += candidate_ids_.size() * (sizeof(Tuple) + sizeof(uint32_t) + 16);
  return bytes;
}

DictionaryBuilder::DictionaryBuilder(const std::vector<BoundAtom>* atoms,
                                     const CostModel* cost,
                                     const DelayBalancedTree* tree,
                                     const LexDomain* domain, int num_bound,
                                     double tau, double alpha)
    : atoms_(atoms),
      cost_(cost),
      tree_(tree),
      domain_(domain),
      num_bound_(num_bound),
      tau_(tau),
      alpha_(alpha) {}

void DictionaryBuilder::CollectCandidates(HeavyDictionary* dict) {
  if (num_bound_ == 0) {
    // A single empty valuation: the full-enumeration / no-bound case.
    dict->candidates_.push_back({});
    dict->candidate_ids_.emplace(Tuple{}, 0);
    return;
  }
  // Join the bound projections of every atom that touches a bound variable.
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : *atoms_) {
    if (atom.num_bound() == 0) continue;
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_bound(); ++i)
      in.levels.emplace_back(atom.bound_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  CQC_CHECK(!inputs.empty()) << "bound variables appear in no atom";
  std::vector<LevelConstraint> constraints(num_bound_,
                                           LevelConstraint::Any());
  JoinIterator join(std::move(inputs), num_bound_, std::move(constraints));
  Tuple vb;
  while (join.Next(&vb)) {
    uint32_t id = (uint32_t)dict->candidates_.size();
    dict->candidates_.push_back(vb);
    dict->candidate_ids_.emplace(vb, id);
  }
}

bool DictionaryBuilder::ProbeNonEmpty(const Tuple& vb,
                                      const std::vector<FBox>& boxes) const {
  const int mu = domain_->mu();
  for (const FBox& box : boxes) {
    std::vector<JoinAtomInput> inputs;
    bool dead_atom = false;
    for (const BoundAtom& atom : *atoms_) {
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = atom.SeekBound(vb);
      if (in.start.empty()) {
        dead_atom = true;
        break;
      }
      in.start_level = atom.num_bound();
      for (int i = 0; i < atom.num_free(); ++i)
        in.levels.emplace_back(atom.free_positions()[i],
                               atom.num_bound() + i);
      inputs.push_back(std::move(in));
    }
    if (dead_atom) return false;  // some atom has no tuple under vb at all
    std::vector<LevelConstraint> constraints;
    constraints.reserve(mu);
    for (int i = 0; i < mu; ++i)
      constraints.push_back(LevelConstraint::FromDim(box.dims[i]));
    JoinIterator join(std::move(inputs), mu, std::move(constraints));
    Tuple out;
    if (join.Next(&out)) return true;
  }
  return false;
}

void DictionaryBuilder::ProcessNode(HeavyDictionary* dict, int node,
                                    const FInterval& interval,
                                    const std::vector<uint32_t>& cand) {
  const DbTreeNode& n = tree_->node(node);
  const double threshold =
      DelayBalancedTree::Threshold(tau_, alpha_, n.level);
  const std::vector<FBox> boxes = BoxDecompose(interval);

  std::vector<uint32_t> live;  // heavy with bit 1: propagate to children
  auto& entries = dict->per_node_[node];
  for (uint32_t id : cand) {
    const Tuple& vb = dict->candidates_[id];
    const double t = cost_->BoxesCostBound(vb, boxes);
    if (t <= threshold) continue;  // light: no entry
    const bool nonempty = ProbeNonEmpty(vb, boxes);
    entries.push_back({id, (uint8_t)(nonempty ? 1 : 0)});
    if (nonempty) live.push_back(id);
  }
  // `cand` is sorted; filtering preserves order, so entries stay sorted.

  if (live.empty() || n.leaf) return;
  FInterval child;
  if (n.left >= 0) {
    CQC_CHECK(DelayBalancedTree::LeftInterval(interval, n.beta, *domain_,
                                              &child));
    ProcessNode(dict, n.left, child, live);
  }
  if (n.right >= 0) {
    CQC_CHECK(DelayBalancedTree::RightInterval(interval, n.beta, *domain_,
                                               &child));
    ProcessNode(dict, n.right, child, live);
  }
}

HeavyDictionary DictionaryBuilder::Build() {
  HeavyDictionary dict;
  CollectCandidates(&dict);
  dict.per_node_.resize(tree_->size());
  if (tree_->empty() || domain_->mu() == 0) return dict;

  std::vector<uint32_t> all(dict.candidates_.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  FInterval root{domain_->MinTuple(), domain_->MaxTuple()};
  ProcessNode(&dict, tree_->root(), root, all);
  return dict;
}

}  // namespace cqc

#include "core/dictionary.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "exec/par_util.h"
#include "exec/thread_pool.h"
#include "join/generic_join.h"
#include "util/logging.h"

namespace cqc {

HeavyDictionary::Bit HeavyDictionary::Lookup(int node, uint32_t vb_id) const {
  if (vb_id == kNoValuation) return Bit::kAbsent;
  if (node < 0 || (size_t)node + 1 >= node_offsets_.size())
    return Bit::kAbsent;
  const uint32_t* begin = entry_vb_.data() + node_offsets_[node];
  const uint32_t* end = entry_vb_.data() + node_offsets_[node + 1];
  const uint32_t* it = std::lower_bound(begin, end, vb_id);
  if (it == end || *it != vb_id) return Bit::kAbsent;
  return entry_bit_[it - entry_vb_.data()] ? Bit::kOne : Bit::kZero;
}

size_t HeavyDictionary::LookupEntryIndex(int node, uint32_t vb_id) const {
  if (vb_id == kNoValuation) return kNoEntry;
  if (node < 0 || (size_t)node + 1 >= node_offsets_.size()) return kNoEntry;
  const uint32_t* begin = entry_vb_.data() + node_offsets_[node];
  const uint32_t* end = entry_vb_.data() + node_offsets_[node + 1];
  const uint32_t* it = std::lower_bound(begin, end, vb_id);
  if (it == end || *it != vb_id) return kNoEntry;
  return (size_t)(it - entry_vb_.data());
}

void HeavyDictionary::AttachAggregates(ColStore<uint64_t> counts,
                                       ColStore<Value> vals, int mu) {
  CQC_CHECK_EQ(counts.size(), entry_vb_.size());
  CQC_CHECK_EQ(vals.size(), entry_vb_.size() * (size_t)(3 * mu));
  agg_mu_ = mu;
  entry_agg_count_ = std::move(counts);
  entry_agg_vals_ = std::move(vals);
}

uint32_t HeavyDictionary::FindValuation(TupleSpan vb) const {
  if (num_candidates_ == 0 || (int)vb.size() != vb_arity_)
    return kNoValuation;
  // Zero-copy loads defer the id table to the first probe (the pool can
  // hold millions of candidates the caller may never look up); call_once
  // makes concurrent first probes safe. Built dictionaries and heap loads
  // pay only the null test.
  if (deferred_slots_)
    std::call_once(*deferred_slots_, [this] { BuildIdSlots(); });
  const size_t mask = id_slots_.size() - 1;
  size_t slot = SpanHash()(vb) & mask;
  for (;;) {
    const uint32_t id = id_slots_[slot];
    if (id == kNoValuation) return kNoValuation;
    const bool eq =
        sealed_ ? packed_pool_.RowEquals(id, vb) : candidate(id) == vb;
    if (eq) return id;
    slot = (slot + 1) & mask;
  }
}

uint64_t HeavyDictionary::CandidateHash(uint32_t id) const {
  if (vb_arity_ == 0) return SpanHash()(TupleSpan());
  if (!candidate_pool_.empty())
    return SpanHash()(TupleSpan(
        candidate_pool_.data() + (size_t)id * vb_arity_, (size_t)vb_arity_));
  Value buf[kMaxVars];
  packed_pool_.UnpackRow(id, buf);
  return SpanHash()(TupleSpan(buf, (size_t)vb_arity_));
}

void HeavyDictionary::Seal() {
  if (sealed_) return;
  packed_pool_ = PackedTuplePool::Pack(candidate_pool_, vb_arity_,
                                       num_candidates_);
  candidate_pool_.clear();
  candidate_pool_.shrink_to_fit();
  sealed_ = true;
}

uint32_t HeavyDictionary::AddCandidate(TupleSpan vb) {
  CQC_DCHECK(!sealed_) << "AddCandidate on a sealed dictionary";
  CQC_CHECK_EQ((int)vb.size(), vb_arity_);
  const uint32_t id = (uint32_t)num_candidates_++;
  candidate_pool_.insert(candidate_pool_.end(), vb.begin(), vb.end());
  // Grow at 50% load (amortized); otherwise insert in place.
  if (id_slots_.empty() || 2 * num_candidates_ > id_slots_.size()) {
    RehashCandidates();
  } else {
    const size_t mask = id_slots_.size() - 1;
    size_t slot = SpanHash()(vb) & mask;
    while (id_slots_[slot] != kNoValuation) slot = (slot + 1) & mask;
    id_slots_[slot] = id;
  }
  return id;
}

void HeavyDictionary::RehashCandidates() {
  CQC_DCHECK(!sealed_) << "RehashCandidates on a sealed dictionary";
  BuildIdSlots();
}

void HeavyDictionary::BuildIdSlots() const {
  size_t cap = 16;
  while (cap < 4 * num_candidates_) cap <<= 1;
  id_slots_.assign(cap, kNoValuation);
  const size_t mask = cap - 1;
  if (candidate_pool_.empty() && vb_arity_ > 0 && num_candidates_ > 0) {
    // Packed-pool path (FromPacked / deferred): every hash decodes from
    // the packed pool.
    // Batch-decode blocks through the SIMD kernel instead of splicing one
    // row per id.
    constexpr size_t kBlock = 64;
    std::vector<Value> buf(kBlock * (size_t)vb_arity_);
    for (uint32_t base = 0; base < num_candidates_; base += kBlock) {
      const size_t n =
          std::min((size_t)kBlock, (size_t)(num_candidates_ - base));
      packed_pool_.UnpackRows(base, n, buf.data());
      for (size_t j = 0; j < n; ++j) {
        const TupleSpan vb(buf.data() + j * vb_arity_, (size_t)vb_arity_);
        size_t slot = SpanHash()(vb) & mask;
        while (id_slots_[slot] != kNoValuation) slot = (slot + 1) & mask;
        id_slots_[slot] = base + (uint32_t)j;
      }
    }
    return;
  }
  for (uint32_t id = 0; id < num_candidates_; ++id) {
    size_t slot = CandidateHash(id) & mask;
    while (id_slots_[slot] != kNoValuation) slot = (slot + 1) & mask;
    id_slots_[slot] = id;
  }
}

void HeavyDictionary::SetBit(int node, uint32_t vb_id, bool bit) {
  CQC_CHECK_GE(node, 0);
  CQC_CHECK_LT((size_t)node + 1, node_offsets_.size());
  CQC_CHECK(!entry_bit_.borrowed())
      << "SetBit on a zero-copy (mapped) dictionary";
  const uint32_t* begin = entry_vb_.data() + node_offsets_[node];
  const uint32_t* end = entry_vb_.data() + node_offsets_[node + 1];
  const uint32_t* it = std::lower_bound(begin, end, vb_id);
  CQC_CHECK(it != end && *it == vb_id) << "SetBit on absent dictionary entry";
  entry_bit_.mutable_data()[it - entry_vb_.data()] = bit ? 1 : 0;
}

size_t HeavyDictionary::MemoryBytes() const {
  // Borrowed (mapped) columns charge their logical extent — see the
  // matching note in PackedTuplePool::MemoryBytes.
  const auto col = [](const auto& c) {
    return c.borrowed() ? c.ByteSize() : c.MemoryBytes();
  };
  return sizeof(*this) + candidate_pool_.capacity() * sizeof(Value) +
         packed_pool_.MemoryBytes() +
         id_slots_.capacity() * sizeof(uint32_t) + col(node_offsets_) +
         col(entry_vb_) + col(entry_bit_) + col(entry_agg_count_) +
         col(entry_agg_vals_);
}

HeavyDictionary HeavyDictionary::FromFlat(int vb_arity,
                                          std::vector<Value> candidate_pool,
                                          std::vector<uint32_t> node_offsets,
                                          std::vector<uint32_t> entry_vb,
                                          std::vector<uint8_t> entry_bit) {
  HeavyDictionary d;
  d.vb_arity_ = vb_arity;
  if (vb_arity > 0) {
    CQC_CHECK_EQ(candidate_pool.size() % (size_t)vb_arity, 0u);
    d.num_candidates_ = candidate_pool.size() / vb_arity;
  } else {
    // Arity-0 pools cannot encode their count: a dictionary that was built
    // for an all-free view interns exactly the one empty valuation, while a
    // never-built dictionary (no offsets) has none.
    d.num_candidates_ = node_offsets.empty() ? 0 : 1;
  }
  CQC_CHECK_EQ(entry_vb.size(), entry_bit.size());
  if (!node_offsets.empty()) {
    CQC_CHECK_EQ((size_t)node_offsets.back(), entry_vb.size());
  } else {
    CQC_CHECK(entry_vb.empty());
  }
  d.candidate_pool_ = std::move(candidate_pool);
  d.node_offsets_ = std::move(node_offsets);
  d.entry_vb_ = std::move(entry_vb);
  d.entry_bit_ = std::move(entry_bit);
  d.RehashCandidates();
  d.Seal();
  return d;
}

HeavyDictionary HeavyDictionary::FromPacked(
    int vb_arity, size_t num_candidates, PackedTuplePool pool,
    ColStore<uint32_t> node_offsets, ColStore<uint32_t> entry_vb,
    ColStore<uint8_t> entry_bit) {
  CQC_CHECK_EQ(pool.arity(), vb_arity);
  if (vb_arity > 0) CQC_CHECK_EQ(pool.size(), num_candidates);
  CQC_CHECK_EQ(entry_vb.size(), entry_bit.size());
  if (!node_offsets.empty()) {
    CQC_CHECK_EQ((size_t)node_offsets.back(), entry_vb.size());
  } else {
    CQC_CHECK(entry_vb.empty());
  }
  HeavyDictionary d;
  d.vb_arity_ = vb_arity;
  d.num_candidates_ = num_candidates;
  d.packed_pool_ = std::move(pool);
  d.node_offsets_ = std::move(node_offsets);
  d.entry_vb_ = std::move(entry_vb);
  d.entry_bit_ = std::move(entry_bit);
  d.sealed_ = true;  // already packed: skip Seal()'s repack
  if (d.borrowed()) {
    // Zero-copy load: defer the O(candidates) id table build to the first
    // FindValuation so opening the file stays O(header).
    d.deferred_slots_ = std::make_unique<std::once_flag>();
  } else {
    d.BuildIdSlots();  // hashes decode from the packed pool (raw is empty)
  }
  return d;
}

DictionaryBuilder::DictionaryBuilder(const std::vector<BoundAtom>* atoms,
                                     const CostModel* cost,
                                     const DelayBalancedTree* tree,
                                     const LexDomain* domain, int num_bound,
                                     double tau, double alpha)
    : atoms_(atoms),
      cost_(cost),
      tree_(tree),
      domain_(domain),
      num_bound_(num_bound),
      tau_(tau),
      alpha_(alpha) {}

void DictionaryBuilder::CollectCandidates(HeavyDictionary* dict) {
  dict->vb_arity_ = num_bound_;
  if (num_bound_ == 0) {
    // A single empty valuation: the full-enumeration / no-bound case.
    dict->AddCandidate(TupleSpan());
    return;
  }
  // Join the bound projections of every atom that touches a bound variable.
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : *atoms_) {
    if (atom.num_bound() == 0) continue;
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_bound(); ++i)
      in.levels.emplace_back(atom.bound_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  CQC_CHECK(!inputs.empty()) << "bound variables appear in no atom";
  std::vector<LevelConstraint> constraints(num_bound_,
                                           LevelConstraint::Any());
  JoinIterator join(std::move(inputs), num_bound_, std::move(constraints));
  Tuple vb;
  while (join.Next(&vb)) dict->AddCandidate(vb);
}

bool DictionaryBuilder::ProbeNonEmpty(TupleSpan vb,
                                      const std::vector<FBox>& boxes) const {
  const int mu = domain_->mu();
  // The atom inputs depend only on vb; the boxes just change constraints,
  // so one JoinIterator serves every box via Reset().
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : *atoms_) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.SeekBound(vb);
    if (in.start.empty()) return false;  // no tuple under vb at all
    in.start_level = atom.num_bound();
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], atom.num_bound() + i);
    inputs.push_back(std::move(in));
  }
  std::optional<JoinIterator> join;
  std::vector<LevelConstraint> constraints;
  Tuple out;
  for (const FBox& box : boxes) {
    constraints.clear();
    for (int i = 0; i < mu; ++i)
      constraints.push_back(LevelConstraint::FromDim(box.dims[i]));
    if (!join.has_value()) {
      join.emplace(&inputs, mu, constraints);
    } else {
      join->Reset(constraints);
    }
    if (join->Next(&out)) return true;
  }
  return false;
}

// Sweeps one node: appends its heavy entries and returns (via `live`) the
// candidate ids that propagate to the children. Reads the dictionary's raw
// candidate pool and the shared read-only inputs only, and writes only
// staging[node] — safe to run concurrently for distinct nodes.
void DictionaryBuilder::ProcessOne(const HeavyDictionary& dict,
                                   std::vector<Entry>* entries, int node,
                                   const std::vector<FBox>& boxes,
                                   const std::vector<uint32_t>& cand,
                                   std::vector<uint32_t>* live) const {
  const double threshold =
      DelayBalancedTree::Threshold(tau_, alpha_, tree_->level(node));
  for (uint32_t id : cand) {
    const TupleSpan vb = dict.candidate(id);
    const double t = cost_->BoxesCostBound(vb, boxes);
    if (t <= threshold) continue;  // light: no entry
    const bool nonempty = ProbeNonEmpty(vb, boxes);
    entries->push_back({id, (uint8_t)(nonempty ? 1 : 0)});
    if (nonempty) live->push_back(id);
  }
  // `cand` is sorted; filtering preserves order, so entries stay sorted.
}

void DictionaryBuilder::ProcessNode(HeavyDictionary* dict,
                                    std::vector<std::vector<Entry>>* staging,
                                    int node, const FInterval& interval,
                                    const std::vector<uint32_t>& cand) {
  const std::vector<FBox> boxes = BoxDecompose(interval);
  std::vector<uint32_t> live;  // heavy with bit 1: propagate to children
  ProcessOne(*dict, &(*staging)[node], node, boxes, cand, &live);

  if (live.empty() || tree_->leaf(node)) return;
  const TupleSpan beta = tree_->beta(node);
  FInterval child;
  if (tree_->left(node) >= 0) {
    CQC_CHECK(
        DelayBalancedTree::LeftInterval(interval, beta, *domain_, &child));
    ProcessNode(dict, staging, tree_->left(node), child, live);
  }
  if (tree_->right(node) >= 0) {
    CQC_CHECK(
        DelayBalancedTree::RightInterval(interval, beta, *domain_, &child));
    ProcessNode(dict, staging, tree_->right(node), child, live);
  }
}

HeavyDictionary DictionaryBuilder::Build() {
  HeavyDictionary dict;
  CollectCandidates(&dict);
  const size_t num_nodes = tree_->size();
  if (tree_->empty() || domain_->mu() == 0) {
    dict.node_offsets_.assign(num_nodes + 1, 0);
    dict.Seal();
    return dict;
  }

  std::vector<std::vector<Entry>> staging(num_nodes);
  std::vector<uint32_t> all((size_t)dict.NumCandidates());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  FInterval root{domain_->MinTuple(), domain_->MaxTuple()};

  const int threads = par::BuildThreads();
  if (threads <= 1 || ThreadPool::InWorker()) {
    ProcessNode(&dict, &staging, tree_->root(), root, all);
  } else {
    // Per-subtree parallelism: expand a work frontier breadth-first on the
    // caller thread (child candidate sets depend on the parent sweep, so
    // the prefix is inherently sequential), then hand each remaining
    // subtree to the shared pool. Subtrees write disjoint staging slots and
    // read the shared structures only.
    struct SubtreeTask {
      int node;
      FInterval interval;
      std::vector<uint32_t> cand;
    };
    std::deque<SubtreeTask> frontier;
    frontier.push_back({tree_->root(), root, std::move(all)});
    const size_t target = 4 * (size_t)threads;
    while (!frontier.empty() && frontier.size() < target) {
      SubtreeTask t = std::move(frontier.front());
      frontier.pop_front();
      const std::vector<FBox> boxes = BoxDecompose(t.interval);
      std::vector<uint32_t> live;
      ProcessOne(dict, &staging[t.node], t.node, boxes, t.cand, &live);
      if (live.empty() || tree_->leaf(t.node)) continue;
      const TupleSpan beta = tree_->beta(t.node);
      FInterval child;
      if (tree_->left(t.node) >= 0) {
        CQC_CHECK(DelayBalancedTree::LeftInterval(t.interval, beta, *domain_,
                                                  &child));
        frontier.push_back({tree_->left(t.node), child, live});
      }
      if (tree_->right(t.node) >= 0) {
        CQC_CHECK(DelayBalancedTree::RightInterval(t.interval, beta,
                                                   *domain_, &child));
        frontier.push_back({tree_->right(t.node), child, std::move(live)});
      }
    }
    if (!frontier.empty()) {
      // TaskGroup (not bare Submit+WaitIdle): per-group completion and
      // fault attribution. A task killed by a contained exception or an
      // injected thread_pool/task fault is re-run serially below, so a
      // transient worker fault degrades to serial work on that subtree
      // instead of a silently incomplete dictionary.
      std::vector<SubtreeTask> tasks(
          std::make_move_iterator(frontier.begin()),
          std::make_move_iterator(frontier.end()));
      // One byte per task, each written by exactly one worker; reads are
      // ordered by the group's Wait().
      std::vector<char> completed(tasks.size(), 0);
      TaskGroup group(SharedBuildPool());
      for (size_t i = 0; i < tasks.size(); ++i) {
        group.Submit([this, &dict, &staging, &tasks, &completed, i] {
          const SubtreeTask& task = tasks[i];
          ProcessNode(&dict, &staging, task.node, task.interval, task.cand);
          completed[i] = 1;
        });
      }
      if (!group.Wait().ok()) {
        // A failed task may have filled part of its subtree's staging
        // slots before dying; clear the whole subtree so the serial rerun
        // appends into empty slots.
        const std::function<void(int)> clear_subtree = [&](int node) {
          if (node < 0) return;
          staging[node].clear();
          clear_subtree(tree_->left(node));
          clear_subtree(tree_->right(node));
        };
        for (size_t i = 0; i < tasks.size(); ++i) {
          if (completed[i]) continue;
          clear_subtree(tasks[i].node);
          ProcessNode(&dict, &staging, tasks[i].node, tasks[i].interval,
                      tasks[i].cand);
        }
      }
    }
  }

  // Flatten the per-node staging vectors into the CSR columns.
  size_t total = 0;
  for (const auto& e : staging) total += e.size();
  dict.node_offsets_.resize(num_nodes + 1);
  dict.entry_vb_.reserve(total);
  dict.entry_bit_.reserve(total);
  uint32_t* offsets = dict.node_offsets_.mutable_data();
  for (size_t n = 0; n < num_nodes; ++n) {
    offsets[n] = (uint32_t)dict.entry_vb_.size();
    for (const Entry& e : staging[n]) {
      dict.entry_vb_.push_back(e.vb);
      dict.entry_bit_.push_back(e.bit);
    }
  }
  offsets[num_nodes] = (uint32_t)dict.entry_vb_.size();
  dict.Seal();
  return dict;
}

}  // namespace cqc

// The lexicographic free-variable domain D_f = D[x_f^1] x ... x D[x_f^mu]
// (§4.1). Each free variable has a sorted active domain; tuples over D_f are
// ordered lexicographically, and the grid supports successor / predecessor,
// which the delay-balanced tree uses to turn the paper's half-open child
// intervals [a, beta) / (beta, c] into closed intervals on the grid.
#ifndef CQC_CORE_LEX_DOMAIN_H_
#define CQC_CORE_LEX_DOMAIN_H_

#include <vector>

#include "util/common.h"

namespace cqc {

class LexDomain {
 public:
  /// `domains[i]` = sorted distinct values of free variable i (view order).
  explicit LexDomain(std::vector<std::vector<Value>> domains);

  int mu() const { return (int)domains_.size(); }
  const std::vector<Value>& dom(int i) const { return domains_[i]; }

  /// True iff some dimension has an empty domain (no tuples exist).
  bool AnyEmpty() const;

  /// Lexicographically smallest / largest grid tuple. Requires !AnyEmpty().
  Tuple MinTuple() const;
  Tuple MaxTuple() const;

  /// Advances `t` to its lexicographic successor on the grid. Returns false
  /// (t unchanged) if t is the maximum. `t` must be a grid tuple.
  bool Succ(TupleRef t) const;
  /// Mirror of Succ.
  bool Pred(TupleRef t) const;

  /// Three-way lexicographic comparison (span views; Tuple converts).
  static int Compare(TupleSpan a, TupleSpan b);

  /// Index of `v` in dom(i), or -1 if absent. O(log).
  int IndexOf(int i, Value v) const;

  /// Total number of grid points (saturates at ~1e18).
  double GridSize() const;

 private:
  std::vector<std::vector<Value>> domains_;
};

}  // namespace cqc

#endif  // CQC_CORE_LEX_DOMAIN_H_

#include "core/finterval.h"

#include <sstream>

#include "util/logging.h"

namespace cqc {

bool FBox::IsCanonical() const {
  int i = 0;
  while (i < mu() && dims[i].kind == FBoxDim::kUnit) ++i;
  if (i < mu() && dims[i].kind == FBoxDim::kRange) ++i;
  for (; i < mu(); ++i)
    if (dims[i].kind != FBoxDim::kAny) return false;
  return true;
}

bool FBox::Contains(TupleSpan t) const {
  CQC_CHECK_EQ((int)t.size(), mu());
  for (int i = 0; i < mu(); ++i)
    if (!dims[i].Contains(t[i])) return false;
  return true;
}

std::string FBox::ToString() const {
  std::ostringstream os;
  os << "<";
  for (int i = 0; i < mu(); ++i) {
    if (i) os << ", ";
    switch (dims[i].kind) {
      case FBoxDim::kUnit:
        os << dims[i].lo;
        break;
      case FBoxDim::kRange:
        os << "[" << dims[i].lo << "," << dims[i].hi << "]";
        break;
      case FBoxDim::kAny:
        os << "*";
        break;
    }
  }
  os << ">";
  return os.str();
}

std::string FInterval::ToString() const {
  std::ostringstream os;
  os << "[(";
  for (size_t i = 0; i < lo.size(); ++i) os << (i ? "," : "") << lo[i];
  os << "), (";
  for (size_t i = 0; i < hi.size(); ++i) os << (i ? "," : "") << hi[i];
  os << ")]";
  return os.str();
}

namespace {

// In-place builder over a reused vector: boxes [0, size) are live, slots
// past that keep their dims capacity from earlier decompositions.
struct BoxWriter {
  std::vector<FBox>& out;
  size_t size = 0;

  // Writes <p1, .., p_{k-1}, [lo, hi], *, ..> over mu dimensions into the
  // next slot unless the range is inverted (definitely empty).
  void PrefixRangeBox(const Tuple& prefix_src, int k, Value lo, Value hi,
                      int mu) {
    if (lo > hi) return;
    FBox& box = Next(mu);
    for (int i = 0; i < k; ++i) box.dims[i] = FBoxDim::Unit(prefix_src[i]);
    box.dims[k] = FBoxDim::Range(lo, hi);
    for (int i = k + 1; i < mu; ++i) box.dims[i] = FBoxDim::Any();
  }

  FBox& Next(int mu) {
    if (size == out.size()) out.emplace_back();
    FBox& box = out[size++];
    box.dims.resize(mu);
    return box;
  }
};

}  // namespace

void BoxDecomposeInto(const FInterval& interval, std::vector<FBox>* out) {
  CQC_CHECK(!interval.Empty()) << "box decomposition of empty interval";
  const int mu = (int)interval.lo.size();
  BoxWriter w{*out};

  if (mu == 0) {  // boolean views have no free dimensions
    out->clear();
    return;
  }

  if (interval.IsUnit()) {
    FBox& box = w.Next(mu);
    for (int i = 0; i < mu; ++i) box.dims[i] = FBoxDim::Unit(interval.lo[i]);
    out->resize(w.size);
    return;
  }

  const Tuple& a = interval.lo;
  const Tuple& b = interval.hi;
  int j = 0;  // first differing position
  while (a[j] == b[j]) ++j;

  if (j == mu - 1) {
    // Only the last position differs: a single canonical box.
    w.PrefixRangeBox(a, j, a[j], b[j], mu);
    out->resize(w.size);
    return;
  }

  // Left side: B^l_mu, ..., B^l_{j+1} (paper order: deepest first).
  // B^l_mu  = <a1, .., a_{mu-1}, [a_mu, top]>
  w.PrefixRangeBox(a, mu - 1, a[mu - 1], kTop, mu);
  // B^l_i = <a1, .., a_{i-1}, (a_i, top]> for i = mu-1 .. j+1 (1-based),
  // i.e. zero-based prefix lengths mu-2 .. j+1.
  for (int k = mu - 2; k >= j + 1; --k) {
    if (a[k] == kTop) continue;  // (top, top] is empty
    w.PrefixRangeBox(a, k, a[k] + 1, kTop, mu);
  }
  // B_j = <a1, .., a_{j-1}, (a_j, b_j)>  (here prefix a[0..j) == b[0..j)).
  if (a[j] != kTop && b[j] != kBottom) {
    w.PrefixRangeBox(a, j, a[j] + 1, b[j] - 1, mu);
  }
  // Right side: B^r_{j+1}, .., B^r_mu.
  for (int k = j + 1; k <= mu - 2; ++k) {
    if (b[k] == kBottom) continue;  // [bottom, bottom) is empty
    w.PrefixRangeBox(b, k, kBottom, b[k] - 1, mu);
  }
  // B^r_mu = <b1, .., b_{mu-1}, [bottom, b_mu]>
  w.PrefixRangeBox(b, mu - 1, kBottom, b[mu - 1], mu);
  out->resize(w.size);
}

std::vector<FBox> BoxDecompose(const FInterval& interval) {
  std::vector<FBox> out;
  BoxDecomposeInto(interval, &out);
  return out;
}

}  // namespace cqc

#include "core/serialization.h"

#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace cqc {
namespace {

constexpr char kMagic[8] = {'C', 'Q', 'C', 'R', 'E', 'P', '0', '1'};

// Little-endian POD writers/readers (x86-64 target; the on-disk format is
// the native layout of these fixed-width types).
template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

void PutTuple(std::ostream& out, const Tuple& t) {
  Put<uint32_t>(out, (uint32_t)t.size());
  for (Value v : t) Put<uint64_t>(out, v);
}

bool GetTuple(std::istream& in, Tuple* t) {
  uint32_t n;
  if (!Get(in, &n)) return false;
  if (n > 1u << 20) return false;  // sanity
  t->resize(n);
  for (uint32_t i = 0; i < n; ++i)
    if (!Get(in, &(*t)[i])) return false;
  return true;
}

}  // namespace

Status SaveCompressedRep(const CompressedRep& rep, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::Error("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  Put<double>(out, rep.tau_);
  Put<double>(out, rep.alpha_);
  const CompressedRepStats& s = rep.stats_;
  Put<uint32_t>(out, (uint32_t)s.cover.size());
  for (double w : s.cover) Put<double>(out, w);
  // Fingerprint: per-atom relation content digests.
  Put<uint32_t>(out, (uint32_t)rep.atoms_.size());
  for (const BoundAtom& atom : rep.atoms_)
    Put<uint64_t>(out, atom.relation().ContentHash());
  // Tree.
  Put<uint32_t>(out, (uint32_t)rep.tree_.size());
  for (size_t i = 0; i < rep.tree_.size(); ++i) {
    const DbTreeNode& n = rep.tree_.node((int)i);
    PutTuple(out, n.beta);
    Put<int32_t>(out, n.left);
    Put<int32_t>(out, n.right);
    Put<float>(out, n.cost);
    Put<uint16_t>(out, n.level);
    Put<uint8_t>(out, n.leaf ? 1 : 0);
  }
  // Dictionary.
  const HeavyDictionary& dict = rep.dict_;
  Put<uint32_t>(out, (uint32_t)dict.candidates().size());
  for (const Tuple& t : dict.candidates()) PutTuple(out, t);
  for (size_t node = 0; node < rep.tree_.size(); ++node) {
    uint32_t count = 0;
    dict.ForEachEntry((int)node, [&](uint32_t, bool) { ++count; });
    Put<uint32_t>(out, count);
    dict.ForEachEntry((int)node, [&](uint32_t vb, bool bit) {
      Put<uint32_t>(out, vb);
      Put<uint8_t>(out, bit ? 1 : 0);
    });
  }
  if (!out.good()) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::Error("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Status::Error(path + ": not a cqc compressed-rep file");

  double tau, alpha;
  if (!Get(in, &tau) || !Get(in, &alpha))
    return Status::Error("truncated header");
  uint32_t cover_size;
  if (!Get(in, &cover_size) || cover_size > 1u << 16)
    return Status::Error("bad cover");
  std::vector<double> cover(cover_size);
  for (double& w : cover)
    if (!Get(in, &w)) return Status::Error("truncated cover");

  Result<std::unique_ptr<CompressedRep>> skeleton =
      CompressedRep::MakeSkeleton(view, db, cover, tau, aux_db);
  if (!skeleton.ok()) return skeleton.status();
  std::unique_ptr<CompressedRep> rep = std::move(skeleton).value();
  if (std::abs(rep->alpha_ - alpha) > 1e-9)
    return Status::Error("slack mismatch: file built for a different view");

  // Fingerprint.
  uint32_t num_atoms;
  if (!Get(in, &num_atoms) || num_atoms != rep->atoms_.size())
    return Status::Error("atom count mismatch");
  for (const BoundAtom& atom : rep->atoms_) {
    uint64_t digest;
    if (!Get(in, &digest)) return Status::Error("truncated fingerprint");
    if (digest != atom.relation().ContentHash())
      return Status::Error(
          "relation content mismatch: file built over different data");
  }

  // Tree.
  uint32_t num_nodes;
  if (!Get(in, &num_nodes) || num_nodes > 1u << 28)
    return Status::Error("bad tree size");
  std::vector<DbTreeNode> nodes(num_nodes);
  for (DbTreeNode& n : nodes) {
    uint8_t leaf;
    if (!GetTuple(in, &n.beta) || !Get(in, &n.left) || !Get(in, &n.right) ||
        !Get(in, &n.cost) || !Get(in, &n.level) || !Get(in, &leaf))
      return Status::Error("truncated tree");
    if (n.left >= (int32_t)num_nodes || n.right >= (int32_t)num_nodes)
      return Status::Error("corrupt tree links");
    n.leaf = leaf != 0;
  }
  rep->tree_ = DelayBalancedTree::FromNodes(std::move(nodes));

  // Dictionary.
  uint32_t num_candidates;
  if (!Get(in, &num_candidates) || num_candidates > 1u << 30)
    return Status::Error("bad candidate count");
  std::vector<Tuple> candidates(num_candidates);
  for (Tuple& t : candidates)
    if (!GetTuple(in, &t)) return Status::Error("truncated candidates");
  std::vector<std::vector<std::pair<uint32_t, bool>>> entries(num_nodes);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    uint32_t count;
    if (!Get(in, &count) || count > num_candidates)
      return Status::Error("bad entry count");
    entries[node].reserve(count);
    uint32_t prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t vb;
      uint8_t bit;
      if (!Get(in, &vb) || !Get(in, &bit))
        return Status::Error("truncated entries");
      if (vb >= num_candidates || (i > 0 && vb <= prev))
        return Status::Error("corrupt dictionary ordering");
      prev = vb;
      entries[node].emplace_back(vb, bit != 0);
    }
  }
  rep->dict_ =
      HeavyDictionary::FromParts(std::move(candidates), std::move(entries));

  // Refresh stats that depend on the loaded parts.
  CompressedRepStats& s = rep->stats_;
  s.tree_nodes = rep->tree_.size();
  s.tree_depth = rep->tree_.max_depth();
  if (!rep->tree_.empty()) s.root_cost = rep->tree_.node(0).cost;
  s.dict_entries = rep->dict_.NumEntries();
  s.num_candidates = rep->dict_.NumCandidates();
  s.tree_bytes = rep->tree_.MemoryBytes();
  s.dict_bytes = rep->dict_.MemoryBytes();
  return std::move(rep);
}

}  // namespace cqc

#include "core/serialization.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace cqc {
namespace {

// Format 03: flat SoA blocks as in 02, with the dictionary compressed — the
// candidate pool is stored bit-packed at per-column widths (exactly the
// in-memory PackedTuplePool layout, so loading is a block read with no
// decode/repack), and the CSR entry ids are per-row delta varints.
constexpr char kMagic[8] = {'C', 'Q', 'C', 'R', 'E', 'P', '0', '3'};

// Little-endian POD writers/readers (x86-64 target; the on-disk format is
// the native layout of these fixed-width types).
template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

// A flat array block: u64 element count, then the raw elements.
template <typename T>
void PutBlock(std::ostream& out, const std::vector<T>& v) {
  Put<uint64_t>(out, (uint64_t)v.size());
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

// Per-CSR-row delta varint codec for the dictionary entry ids: within a
// node's slice ids are strictly ascending, so each row stores its first id
// absolute and every later id as (gap - 1), all LEB128.
void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back((uint8_t)(v | 0x80));
    v >>= 7;
  }
  out->push_back((uint8_t)v);
}

bool GetVarint(const std::vector<uint8_t>& bytes, size_t* pos, uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= bytes.size()) return false;
    const uint8_t b = bytes[(*pos)++];
    out |= (uint64_t)(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      *v = out;
      return true;
    }
  }
  return false;  // over-long encoding
}

std::vector<uint8_t> EncodeEntryIds(const std::vector<uint32_t>& offsets,
                                    const std::vector<uint32_t>& entry_vb) {
  std::vector<uint8_t> bytes;
  bytes.reserve(entry_vb.size());
  for (size_t n = 0; n + 1 < offsets.size(); ++n) {
    for (uint32_t i = offsets[n]; i < offsets[n + 1]; ++i) {
      if (i == offsets[n])
        PutVarint(&bytes, entry_vb[i]);
      else
        PutVarint(&bytes, entry_vb[i] - entry_vb[i - 1] - 1);
    }
  }
  return bytes;
}

bool DecodeEntryIds(const std::vector<uint8_t>& bytes,
                    const std::vector<uint32_t>& offsets,
                    std::vector<uint32_t>* entry_vb) {
  const size_t total = offsets.empty() ? 0 : offsets.back();
  entry_vb->clear();
  entry_vb->reserve(total);
  size_t pos = 0;
  for (size_t n = 0; n + 1 < offsets.size(); ++n) {
    uint64_t prev = 0;
    for (uint32_t i = offsets[n]; i < offsets[n + 1]; ++i) {
      uint64_t d;
      if (!GetVarint(bytes, &pos, &d)) return false;
      // Bound the delta before adding: a crafted near-2^64 delta would
      // wrap prev + d + 1 back below prev and smuggle a descending id
      // past the range check (the binary searches over a node's slice
      // require strictly ascending ids).
      if (d > 0xffffffffull) return false;
      const uint64_t id = i == offsets[n] ? d : prev + d + 1;  // no wrap now
      if (id > 0xffffffffull) return false;
      entry_vb->push_back((uint32_t)id);
      prev = id;
    }
  }
  return pos == bytes.size();  // no trailing garbage
}

template <typename T>
bool GetBlock(std::istream& in, std::vector<T>* v) {
  uint64_t n;
  if (!Get(in, &n)) return false;
  // Validate the claimed length against the bytes actually left in the
  // stream before allocating: a corrupt length field must produce a clean
  // Status error, not a giant resize() that throws bad_alloc.
  const std::istream::pos_type pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (pos == std::istream::pos_type(-1) || end < pos) return false;
  const uint64_t remaining = (uint64_t)(end - pos);
  if (n > remaining / sizeof(T)) return false;
  v->resize(n);
  if (n == 0) return true;
  in.read(reinterpret_cast<char*>(v->data()), n * sizeof(T));
  return in.good();
}

}  // namespace

Status SaveCompressedRep(const CompressedRep& rep, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::Error("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  Put<double>(out, rep.tau_);
  Put<double>(out, rep.alpha_);
  const CompressedRepStats& s = rep.stats_;
  Put<uint32_t>(out, (uint32_t)s.cover.size());
  for (double w : s.cover) Put<double>(out, w);
  // Fingerprint: per-atom relation content digests.
  Put<uint32_t>(out, (uint32_t)rep.atoms_.size());
  for (const BoundAtom& atom : rep.atoms_)
    Put<uint64_t>(out, atom.relation().ContentHash());
  // Tree: flat SoA columns.
  const DelayBalancedTree& tree = rep.tree_;
  Put<uint32_t>(out, (uint32_t)tree.mu());
  PutBlock(out, tree.beta_pool());
  PutBlock(out, tree.lefts());
  PutBlock(out, tree.rights());
  PutBlock(out, tree.costs());
  PutBlock(out, tree.levels());
  PutBlock(out, tree.leaf_flags());
  // Dictionary: bit-packed candidate pool + CSR entry columns (entry ids
  // as per-row delta varints).
  const HeavyDictionary& dict = rep.dict_;
  Put<uint32_t>(out, (uint32_t)dict.vb_arity());
  Put<uint64_t>(out, (uint64_t)dict.NumCandidates());
  if (dict.sealed()) {
    PutBlock(out, dict.packed_pool().widths());
    PutBlock(out, dict.packed_pool().words());
  } else {
    // Only a never-built dictionary (boolean view / empty domain) may be
    // serialized unsealed; it has nothing to pack.
    CQC_CHECK_EQ(dict.NumCandidates(), 0u)
        << "serializing an unsealed non-empty dictionary";
    PutBlock(out, std::vector<uint8_t>((size_t)dict.vb_arity(), 0));
    PutBlock(out, std::vector<uint64_t>());
  }
  PutBlock(out, dict.node_offsets());
  PutBlock(out, EncodeEntryIds(dict.node_offsets(), dict.entry_vbs()));
  PutBlock(out, dict.entry_bits());
  if (!out.good()) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::Error("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Status::Error(path + ": not a cqc compressed-rep (v03) file");

  double tau, alpha;
  if (!Get(in, &tau) || !Get(in, &alpha))
    return Status::Error("truncated header");
  // Bit-flipped float fields can decode as NaN, which slides through
  // ordering checks (every comparison is false) — reject non-finite
  // parameters outright.
  if (!std::isfinite(tau) || tau <= 0 || !std::isfinite(alpha) || alpha <= 0)
    return Status::Error("corrupt header: non-finite tau/alpha");
  uint32_t cover_size;
  if (!Get(in, &cover_size) || cover_size > 1u << 16)
    return Status::Error("bad cover");
  std::vector<double> cover(cover_size);
  for (double& w : cover) {
    if (!Get(in, &w)) return Status::Error("truncated cover");
    if (!std::isfinite(w) || w < 0)
      return Status::Error("corrupt cover weight");
  }

  Result<std::unique_ptr<CompressedRep>> skeleton =
      CompressedRep::MakeSkeleton(view, db, cover, tau, aux_db);
  if (!skeleton.ok()) return skeleton.status();
  std::unique_ptr<CompressedRep> rep = std::move(skeleton).value();
  if (std::abs(rep->alpha_ - alpha) > 1e-9)
    return Status::Error("slack mismatch: file built for a different view");

  // Fingerprint.
  uint32_t num_atoms;
  if (!Get(in, &num_atoms) || num_atoms != rep->atoms_.size())
    return Status::Error("atom count mismatch");
  for (const BoundAtom& atom : rep->atoms_) {
    uint64_t digest;
    if (!Get(in, &digest)) return Status::Error("truncated fingerprint");
    if (digest != atom.relation().ContentHash())
      return Status::Error(
          "relation content mismatch: file built over different data");
  }

  // Tree: flat SoA columns.
  uint32_t mu;
  if (!Get(in, &mu) || mu > (uint32_t)kMaxVars)
    return Status::Error("bad tree arity");
  std::vector<Value> beta;
  std::vector<int32_t> left, right;
  std::vector<float> cost;
  std::vector<uint16_t> level;
  std::vector<uint8_t> leaf;
  if (!GetBlock(in, &beta) || !GetBlock(in, &left) ||
      !GetBlock(in, &right) || !GetBlock(in, &cost) ||
      !GetBlock(in, &level) || !GetBlock(in, &leaf))
    return Status::Error("truncated tree");
  const size_t num_nodes = left.size();
  if (right.size() != num_nodes || cost.size() != num_nodes ||
      level.size() != num_nodes || leaf.size() != num_nodes ||
      beta.size() != num_nodes * (size_t)mu)
    return Status::Error("inconsistent tree column lengths");
  for (size_t i = 0; i < num_nodes; ++i) {
    // Children live at strictly higher preorder ids: also rules out link
    // cycles, which would hang the traversal on a corrupt file.
    if (left[i] >= (int64_t)num_nodes || right[i] >= (int64_t)num_nodes ||
        (left[i] >= 0 && left[i] <= (int64_t)i) ||
        (right[i] >= 0 && right[i] <= (int64_t)i))
      return Status::Error("corrupt tree links");
    // Non-leaf split points must be grid tuples: the traversal takes their
    // grid successor/predecessor, which CHECK-aborts off the grid.
    if (!leaf[i]) {
      for (uint32_t d = 0; d < mu; ++d) {
        if (rep->domain_.IndexOf((int)d, beta[i * mu + d]) < 0)
          return Status::Error("corrupt split point (off-grid value)");
      }
    }
  }
  rep->tree_ = DelayBalancedTree::FromFlat(
      (int)mu, std::move(beta), std::move(left), std::move(right),
      std::move(cost), std::move(level), std::move(leaf));

  // Dictionary: bit-packed candidate pool + CSR entry columns.
  uint32_t vb_arity;
  uint64_t num_candidates;
  if (!Get(in, &vb_arity) || vb_arity > (uint32_t)kMaxVars)
    return Status::Error("bad dictionary arity");
  if (!Get(in, &num_candidates) || num_candidates >= 0xffffffffull ||
      (vb_arity == 0 && num_candidates > 1))
    return Status::Error("bad candidate count");
  std::vector<uint8_t> widths;
  std::vector<uint64_t> words;
  std::vector<uint32_t> offsets;
  std::vector<uint8_t> entry_delta, entry_bit;
  if (!GetBlock(in, &widths) || !GetBlock(in, &words) ||
      !GetBlock(in, &offsets) || !GetBlock(in, &entry_delta) ||
      !GetBlock(in, &entry_bit))
    return Status::Error("truncated dictionary");
  if (widths.size() != vb_arity)
    return Status::Error("bad candidate pool widths");
  size_t row_bits = 0;
  for (uint8_t w : widths) {
    if (w > 64) return Status::Error("bad candidate pool widths");
    row_bits += w;
  }
  const uint64_t payload_bits = num_candidates * row_bits;
  if (words.size() != (payload_bits == 0 ? 0 : (payload_bits + 63) / 64 + 1))
    return Status::Error("bad candidate pool length");
  if (offsets.size() != num_nodes + 1 && !(offsets.empty() && num_nodes == 0))
    return Status::Error("bad dictionary offsets length");
  std::vector<uint32_t> entry_vb;
  if (!offsets.empty()) {
    if (offsets.front() != 0)
      return Status::Error("corrupt dictionary offsets");
    for (size_t n = 0; n + 1 < offsets.size(); ++n)
      if (offsets[n] > offsets[n + 1])
        return Status::Error("corrupt dictionary offsets");
    if (!DecodeEntryIds(entry_delta, offsets, &entry_vb))
      return Status::Error("corrupt dictionary entry ids");
    for (uint32_t id : entry_vb)
      if (id >= num_candidates)
        return Status::Error("corrupt dictionary ordering");
  } else if (!entry_delta.empty()) {
    return Status::Error("dictionary entries without offsets");
  }
  if (entry_vb.size() != entry_bit.size())
    return Status::Error("inconsistent dictionary entry columns");
  rep->dict_ = HeavyDictionary::FromPacked(
      (int)vb_arity, (size_t)num_candidates,
      PackedTuplePool::FromFlatParts((int)vb_arity, (size_t)num_candidates,
                                     std::move(widths), std::move(words)),
      std::move(offsets), std::move(entry_vb), std::move(entry_bit));

  // Refresh stats that depend on the loaded parts.
  CompressedRepStats& s = rep->stats_;
  s.tree_nodes = rep->tree_.size();
  s.tree_depth = rep->tree_.max_depth();
  if (!rep->tree_.empty()) s.root_cost = rep->tree_.cost(0);
  s.dict_entries = rep->dict_.NumEntries();
  s.num_candidates = rep->dict_.NumCandidates();
  s.tree_bytes = rep->tree_.MemoryBytes();
  s.dict_bytes = rep->dict_.MemoryBytes();
  return std::move(rep);
}

}  // namespace cqc

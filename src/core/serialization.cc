#include "core/serialization.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/rep_file.h"
#include "util/col_store.h"
#include "util/logging.h"

namespace cqc {
namespace {

// Format 05: every payload block is a flat raw array, 64-byte-aligned in
// the file, located through an (offset, count) directory in the header.
// Alignment + raw storage (the v03 per-row delta varints for the entry ids
// are gone) make each block directly usable in place, so the mmap loader
// can borrow columns out of the file with zero decode; the heap loader
// reads the same blocks into owned vectors. v05 appends four optional
// aggregate-annotation blocks (per-node / per-entry ring cells) so a
// rep built with aggregates answers them zero-copy after an mmap open.
constexpr char kMagic[8] = {'C', 'Q', 'C', 'R', 'E', 'P', '0', '5'};

// The fixed block order. num_nodes is recovered as dir[kBlockLeft].count
// and the candidate count is a header field, so counts are redundant but
// cross-checked (every column's count must agree with the header shape).
enum BlockId {
  kBlockBeta = 0,     // Value  (tree split-point pool, num_nodes * mu)
  kBlockLeft,         // i32
  kBlockRight,        // i32
  kBlockCost,         // f32
  kBlockLevel,        // u16
  kBlockLeaf,         // u8
  kBlockWidths,       // u8    (packed pool per-column bit widths)
  kBlockWords,        // u64   (packed pool words, pad word included)
  kBlockOffsets,      // u32   (CSR node offsets, num_nodes + 1)
  kBlockEntryVb,      // u32   (entry valuation ids, raw)
  kBlockEntryBit,     // u8
  // Aggregate annotations (v05, optional — all four empty when the rep was
  // built without them). The vals pools are 3*mu cells per row in the
  // RingCell layout: sums | mins | maxs.
  kBlockTreeAggCount,   // u64   (per-node answer counts, num_nodes)
  kBlockTreeAggVals,    // Value (per-node ring cells, num_nodes * 3 * mu)
  kBlockEntryAggCount,  // u64   (per-entry answer counts, num_entries)
  kBlockEntryAggVals,   // Value (per-entry ring cells, num_entries * 3 * mu)
  kNumBlocks
};

constexpr size_t kBlockElemSize[kNumBlocks] = {
    sizeof(Value), 4, 4, 4, 2, 1, 1, 8, 4, 4, 1,
    8, sizeof(Value), 8, sizeof(Value)};

constexpr size_t kBlockAlign = 64;

struct BlockDir {
  uint64_t offset = 0;  // absolute file offset; 0 for an empty block
  uint64_t count = 0;   // element count
};

// Everything before the payload blocks. Fixed-layout except the two
// length-prefixed arrays, so its size is computable from cover/atom counts.
struct Header {
  double tau = 0;
  double alpha = 0;
  std::vector<double> cover;
  std::vector<uint64_t> digests;
  uint32_t mu = 0;
  uint32_t vb_arity = 0;
  uint64_t num_candidates = 0;
  BlockDir dir[kNumBlocks];

  size_t ByteSize() const {
    return sizeof(kMagic) + 8 + 8 + 4 + 8 * cover.size() + 4 +
           8 * digests.size() + 4 + 4 + 8 + 4 + 16 * (size_t)kNumBlocks;
  }
};

// Little-endian POD writer (x86-64 target; the on-disk format is the
// native layout of these fixed-width types).
template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

// The header is parsed identically from a stream (heap load) and from
// mapped memory (zero-copy load); both readers expose one primitive.
struct StreamReader {
  std::istream& in;
  bool ReadRaw(void* p, size_t n) {
    in.read(static_cast<char*>(p), (std::streamsize)n);
    return in.good();
  }
};

struct MemReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ReadRaw(void* p, size_t n) {
    if (n > size - pos) return false;  // pos <= size invariant
    std::memcpy(p, data + pos, n);     // memcpy: header fields are unaligned
    pos += n;
    return true;
  }
};

template <typename Reader, typename T>
bool Get(Reader& r, T* v) {
  return r.ReadRaw(v, sizeof(T));
}

/// Parses and sanity-checks the header (everything that needs no database:
/// magic, parameter finiteness, shape bounds, the block directory against
/// the file extent). `file_size` is computed ONCE by the caller — blocks
/// are validated against it here, so neither loader ever re-stats the file
/// or trusts a claimed length it cannot hold.
template <typename Reader>
Status ReadHeader(Reader& r, uint64_t file_size, Header* h) {
  char magic[8];
  if (!r.ReadRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Status::Error("not a cqc compressed-rep (v05) file");

  if (!Get(r, &h->tau) || !Get(r, &h->alpha))
    return Status::Error("truncated header");
  // Bit-flipped float fields can decode as NaN, which slides through
  // ordering checks (every comparison is false) — reject non-finite
  // parameters outright.
  if (!std::isfinite(h->tau) || h->tau <= 0 || !std::isfinite(h->alpha) ||
      h->alpha <= 0)
    return Status::Error("corrupt header: non-finite tau/alpha");

  uint32_t cover_size;
  if (!Get(r, &cover_size) || cover_size > 1u << 16)
    return Status::Error("bad cover");
  h->cover.resize(cover_size);
  for (double& w : h->cover) {
    if (!Get(r, &w)) return Status::Error("truncated cover");
    if (!std::isfinite(w) || w < 0) return Status::Error("corrupt cover weight");
  }

  uint32_t num_atoms;
  if (!Get(r, &num_atoms) || num_atoms > 1u << 16)
    return Status::Error("bad atom count");
  h->digests.resize(num_atoms);
  for (uint64_t& d : h->digests)
    if (!Get(r, &d)) return Status::Error("truncated fingerprint");

  if (!Get(r, &h->mu) || h->mu > (uint32_t)kMaxVars)
    return Status::Error("bad tree arity");
  if (!Get(r, &h->vb_arity) || h->vb_arity > (uint32_t)kMaxVars)
    return Status::Error("bad dictionary arity");
  if (!Get(r, &h->num_candidates) || h->num_candidates >= 0xffffffffull ||
      (h->vb_arity == 0 && h->num_candidates > 1))
    return Status::Error("bad candidate count");

  uint32_t num_blocks;
  if (!Get(r, &num_blocks) || num_blocks != (uint32_t)kNumBlocks)
    return Status::Error("bad block count");
  for (BlockDir& d : h->dir)
    if (!Get(r, &d.offset) || !Get(r, &d.count))
      return Status::Error("truncated block directory");

  // Directory validation against the file extent. Blocks are laid out in
  // order, aligned, non-overlapping; a count that cannot fit between its
  // offset and EOF is rejected BEFORE any allocation or read, so a corrupt
  // length yields a clean error, never a bad_alloc or an out-of-bounds map
  // access.
  uint64_t prev_end = h->ByteSize();
  for (int b = 0; b < kNumBlocks; ++b) {
    const BlockDir& d = h->dir[b];
    if (d.count == 0) {
      if (d.offset != 0) return Status::Error("corrupt block directory");
      continue;
    }
    if (d.offset % kBlockAlign != 0 || d.offset < prev_end ||
        d.offset > file_size)
      return Status::Error("corrupt block directory");
    if (d.count > (file_size - d.offset) / kBlockElemSize[b])
      return Status::Error("corrupt block directory");
    prev_end = d.offset + d.count * kBlockElemSize[b];
  }
  return Status::Ok();
}

/// The loaded columns, owned (heap loader) or borrowed (mmap loader);
/// vectors convert into ColStore implicitly. `widths` is always owned —
/// it is a handful of bytes and PackedTuplePool keeps its own copy.
struct RawParts {
  ColStore<Value> beta;
  ColStore<int32_t> left, right;
  ColStore<float> cost;
  ColStore<uint16_t> level;
  ColStore<uint8_t> leaf;
  std::vector<uint8_t> widths;
  ColStore<uint64_t> words;
  ColStore<uint32_t> offsets;
  ColStore<uint32_t> entry_vb;
  ColStore<uint8_t> entry_bit;
  ColStore<uint64_t> tree_agg_count;
  ColStore<Value> tree_agg_vals;
  ColStore<uint64_t> entry_agg_count;
  ColStore<Value> entry_agg_vals;
};

}  // namespace

/// Shared loader internals, friended by CompressedRep. Assemble() builds
/// the skeleton (view/database resolution), cross-checks every column
/// against the header shape and the structures' invariants, then moves the
/// parts into the rep. O(header + tree nodes + dictionary entries) — the
/// packed pool words are count-checked but never scanned, which is what
/// keeps a zero-copy open independent of the candidate pool size.
class RepSerde {
 public:
  static Result<std::unique_ptr<CompressedRep>> Assemble(
      const AdornedView& view, const Database& db, const Database* aux_db,
      const Header& h, RawParts&& p, std::shared_ptr<RepFile> backing,
      size_t mapped_bytes);
};

Result<std::unique_ptr<CompressedRep>> RepSerde::Assemble(
    const AdornedView& view, const Database& db, const Database* aux_db,
    const Header& h, RawParts&& p, std::shared_ptr<RepFile> backing,
    size_t mapped_bytes) {
  Result<std::unique_ptr<CompressedRep>> skeleton =
      CompressedRep::MakeSkeleton(view, db, h.cover, h.tau, aux_db);
  if (!skeleton.ok()) return skeleton.status();
  std::unique_ptr<CompressedRep> rep = std::move(skeleton).value();
  if (std::abs(rep->alpha_ - h.alpha) > 1e-9)
    return Status::Error("slack mismatch: file built for a different view");

  // Fingerprint.
  if (h.digests.size() != rep->atoms_.size())
    return Status::Error("atom count mismatch");
  for (size_t i = 0; i < rep->atoms_.size(); ++i) {
    if (h.digests[i] != rep->atoms_[i].relation().ContentHash())
      return Status::Error(
          "relation content mismatch: file built over different data");
  }

  // Tree columns.
  const size_t num_nodes = p.left.size();
  if (p.right.size() != num_nodes || p.cost.size() != num_nodes ||
      p.level.size() != num_nodes || p.leaf.size() != num_nodes ||
      p.beta.size() != num_nodes * (size_t)h.mu)
    return Status::Error("inconsistent tree column lengths");
  for (size_t i = 0; i < num_nodes; ++i) {
    // Children live at strictly higher preorder ids: also rules out link
    // cycles, which would hang the traversal on a corrupt file.
    if (p.left[i] >= (int64_t)num_nodes || p.right[i] >= (int64_t)num_nodes ||
        (p.left[i] >= 0 && p.left[i] <= (int64_t)i) ||
        (p.right[i] >= 0 && p.right[i] <= (int64_t)i))
      return Status::Error("corrupt tree links");
    // Non-leaf split points must be grid tuples: the traversal takes their
    // grid successor/predecessor, which CHECK-aborts off the grid.
    if (!p.leaf[i]) {
      for (uint32_t d = 0; d < h.mu; ++d) {
        if (rep->domain_.IndexOf((int)d, p.beta[i * h.mu + d]) < 0)
          return Status::Error("corrupt split point (off-grid value)");
      }
    }
  }

  // Dictionary columns.
  if (p.widths.size() != h.vb_arity)
    return Status::Error("bad candidate pool widths");
  size_t row_bits = 0;
  for (uint8_t w : p.widths) {
    if (w > 64) return Status::Error("bad candidate pool widths");
    row_bits += w;
  }
  const uint64_t payload_bits = h.num_candidates * row_bits;
  if (p.words.size() != (payload_bits == 0 ? 0 : (payload_bits + 63) / 64 + 1))
    return Status::Error("bad candidate pool length");
  if (p.offsets.size() != num_nodes + 1 &&
      !(p.offsets.empty() && num_nodes == 0))
    return Status::Error("bad dictionary offsets length");
  if (!p.offsets.empty()) {
    if (p.offsets.front() != 0)
      return Status::Error("corrupt dictionary offsets");
    for (size_t n = 0; n + 1 < p.offsets.size(); ++n)
      if (p.offsets[n] > p.offsets[n + 1])
        return Status::Error("corrupt dictionary offsets");
    if ((size_t)p.offsets.back() != p.entry_vb.size())
      return Status::Error("corrupt dictionary offsets");
  } else if (!p.entry_vb.empty()) {
    return Status::Error("dictionary entries without offsets");
  }
  if (p.entry_vb.size() != p.entry_bit.size())
    return Status::Error("inconsistent dictionary entry columns");
  // Within a node's slice ids must be strictly ascending (the lookups
  // binary-search it) and name real candidates.
  for (size_t n = 0; n + 1 < p.offsets.size(); ++n) {
    for (uint32_t i = p.offsets[n]; i < p.offsets[n + 1]; ++i) {
      if (p.entry_vb[i] >= h.num_candidates ||
          (i > p.offsets[n] && p.entry_vb[i] <= p.entry_vb[i - 1]))
        return Status::Error("corrupt dictionary ordering");
    }
  }
  // The flag column is addressed as a boolean; a bit flip in the file must
  // not smuggle other values into it.
  for (size_t i = 0; i < p.entry_bit.size(); ++i)
    if (p.entry_bit[i] > 1)
      return Status::Error("corrupt dictionary entry bits");

  // Aggregate annotations: each family is all-or-nothing (a count column
  // without its ring cells — or vice versa — is a corrupt file, not a
  // half-annotated rep) and its lengths are fully determined by the shape.
  const bool tree_agg = !p.tree_agg_count.empty() || !p.tree_agg_vals.empty();
  if (tree_agg &&
      (p.tree_agg_count.size() != num_nodes ||
       p.tree_agg_vals.size() != num_nodes * 3 * (size_t)h.mu))
    return Status::Error("inconsistent tree aggregate annotation lengths");
  const bool entry_agg =
      !p.entry_agg_count.empty() || !p.entry_agg_vals.empty();
  if (entry_agg &&
      (p.entry_agg_count.size() != p.entry_vb.size() ||
       p.entry_agg_vals.size() != p.entry_vb.size() * 3 * (size_t)h.mu))
    return Status::Error("inconsistent entry aggregate annotation lengths");
  if (tree_agg && entry_agg)
    return Status::Error("aggregate annotations on both tree and dictionary");
  if (tree_agg && h.vb_arity > 0)
    return Status::Error("tree aggregate annotations on a bound view");
  if (entry_agg && h.vb_arity == 0)
    return Status::Error("entry aggregate annotations on a free view");

  rep->tree_ = DelayBalancedTree::FromFlat(
      (int)h.mu, std::move(p.beta), std::move(p.left), std::move(p.right),
      std::move(p.cost), std::move(p.level), std::move(p.leaf));
  rep->dict_ = HeavyDictionary::FromPacked(
      (int)h.vb_arity, (size_t)h.num_candidates,
      PackedTuplePool::FromFlatParts((int)h.vb_arity,
                                     (size_t)h.num_candidates,
                                     std::move(p.widths), std::move(p.words)),
      std::move(p.offsets), std::move(p.entry_vb), std::move(p.entry_bit));
  if (tree_agg)
    rep->tree_.AttachAggregates(std::move(p.tree_agg_count),
                                std::move(p.tree_agg_vals));
  if (entry_agg)
    rep->dict_.AttachAggregates(std::move(p.entry_agg_count),
                                std::move(p.entry_agg_vals), (int)h.mu);
  rep->backing_ = std::move(backing);

  // Refresh stats that depend on the loaded parts.
  CompressedRepStats& s = rep->stats_;
  s.tree_nodes = rep->tree_.size();
  s.tree_depth = rep->tree_.max_depth();
  if (!rep->tree_.empty()) s.root_cost = rep->tree_.cost(0);
  s.dict_entries = rep->dict_.NumEntries();
  s.num_candidates = rep->dict_.NumCandidates();
  s.tree_bytes = rep->tree_.MemoryBytes();
  s.dict_bytes = rep->dict_.MemoryBytes();
  if (tree_agg)
    s.agg_bytes = rep->tree_.agg_counts().ByteSize() +
                  rep->tree_.agg_vals_pool().ByteSize();
  if (entry_agg)
    s.agg_bytes = rep->dict_.entry_agg_counts().ByteSize() +
                  rep->dict_.entry_agg_vals_pool().ByteSize();
  s.mapped_bytes = mapped_bytes;
  return rep;
}

namespace {

/// Owned read of one directory block. The count was already validated
/// against the file extent by ReadHeader, so the resize is safe.
template <typename T>
bool ReadBlockAt(std::ifstream& in, const BlockDir& d, std::vector<T>* v) {
  v->resize(d.count);
  if (d.count == 0) return true;
  in.clear();
  in.seekg((std::streamoff)d.offset);
  in.read(reinterpret_cast<char*>(v->data()), d.count * sizeof(T));
  return in.good();
}

/// Borrowed view of one directory block straight out of the mapping. The
/// 64-byte file alignment plus the page-aligned mapping base make the
/// reinterpret_cast well-aligned for every element type used here.
template <typename T>
ColStore<T> BorrowBlock(const RepFile& f, const BlockDir& d) {
  if (d.count == 0) return ColStore<T>();
  return ColStore<T>::Borrow(reinterpret_cast<const T*>(f.data() + d.offset),
                             (size_t)d.count);
}

}  // namespace

Status SaveCompressedRep(const CompressedRep& rep, const std::string& path) {
  const DelayBalancedTree& tree = rep.tree_;
  const HeavyDictionary& dict = rep.dict_;

  // An unsealed dictionary has no packed pool yet; only a never-built one
  // (boolean view / empty domain) may be serialized that way.
  std::vector<uint8_t> empty_widths;
  if (!dict.sealed()) {
    CQC_CHECK_EQ(dict.NumCandidates(), 0u)
        << "serializing an unsealed non-empty dictionary";
    empty_widths.assign((size_t)dict.vb_arity(), 0);
  }
  const std::vector<uint8_t>& widths =
      dict.sealed() ? dict.packed_pool().widths() : empty_widths;

  Header h;
  h.tau = rep.tau_;
  h.alpha = rep.alpha_;
  h.cover = rep.stats_.cover;
  for (const BoundAtom& atom : rep.atoms_)
    h.digests.push_back(atom.relation().ContentHash());
  h.mu = (uint32_t)tree.mu();
  h.vb_arity = (uint32_t)dict.vb_arity();
  h.num_candidates = (uint64_t)dict.NumCandidates();

  // The blocks in file order: raw bytes + element counts.
  struct Src {
    const void* data;
    uint64_t count;
  };
  const Src blocks[kNumBlocks] = {
      {tree.beta_pool().data(), tree.beta_pool().size()},
      {tree.lefts().data(), tree.lefts().size()},
      {tree.rights().data(), tree.rights().size()},
      {tree.costs().data(), tree.costs().size()},
      {tree.levels().data(), tree.levels().size()},
      {tree.leaf_flags().data(), tree.leaf_flags().size()},
      {widths.data(), widths.size()},
      {dict.sealed() ? dict.packed_pool().words().data() : nullptr,
       dict.sealed() ? dict.packed_pool().words().size() : 0},
      {dict.node_offsets().data(), dict.node_offsets().size()},
      {dict.entry_vbs().data(), dict.entry_vbs().size()},
      {dict.entry_bits().data(), dict.entry_bits().size()},
      {tree.agg_counts().data(), tree.agg_counts().size()},
      {tree.agg_vals_pool().data(), tree.agg_vals_pool().size()},
      {dict.entry_agg_counts().data(), dict.entry_agg_counts().size()},
      {dict.entry_agg_vals_pool().data(), dict.entry_agg_vals_pool().size()},
  };

  // Lay out the directory: blocks in order, each aligned up from the
  // previous end, empty blocks at offset 0. Deterministic, so identical
  // structures serialize byte-identically.
  uint64_t cursor = h.ByteSize();
  for (int b = 0; b < kNumBlocks; ++b) {
    h.dir[b].count = blocks[b].count;
    if (blocks[b].count == 0) continue;
    cursor = (cursor + kBlockAlign - 1) / kBlockAlign * kBlockAlign;
    h.dir[b].offset = cursor;
    cursor += blocks[b].count * kBlockElemSize[b];
  }

  // Write to a sibling temp file and rename into place. Atomic on POSIX,
  // and — load-bearing for the snapshot cache — an overwrite never touches
  // the old inode, so a live mmap of the previous file keeps reading
  // consistent bytes instead of taking SIGBUS when the file is truncated
  // under it.
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::Error("cannot open " + tmp);
  out.write(kMagic, sizeof(kMagic));
  Put<double>(out, h.tau);
  Put<double>(out, h.alpha);
  Put<uint32_t>(out, (uint32_t)h.cover.size());
  for (double w : h.cover) Put<double>(out, w);
  Put<uint32_t>(out, (uint32_t)h.digests.size());
  for (uint64_t d : h.digests) Put<uint64_t>(out, d);
  Put<uint32_t>(out, h.mu);
  Put<uint32_t>(out, h.vb_arity);
  Put<uint64_t>(out, h.num_candidates);
  Put<uint32_t>(out, (uint32_t)kNumBlocks);
  for (const BlockDir& d : h.dir) {
    Put<uint64_t>(out, d.offset);
    Put<uint64_t>(out, d.count);
  }

  static constexpr char kPad[kBlockAlign] = {};
  uint64_t pos = h.ByteSize();
  for (int b = 0; b < kNumBlocks; ++b) {
    if (h.dir[b].count == 0) continue;
    CQC_DCHECK(h.dir[b].offset >= pos);
    out.write(kPad, (std::streamsize)(h.dir[b].offset - pos));
    const uint64_t bytes = h.dir[b].count * kBlockElemSize[b];
    out.write(static_cast<const char*>(blocks[b].data),
              (std::streamsize)bytes);
    pos = h.dir[b].offset + bytes;
  }
  out.close();
  if (!out.good()) {
    std::remove(tmp.c_str());
    return Status::Error("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("cannot move " + tmp + " into place");
  }
  return Status::Ok();
}

Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::Error("cannot open " + path);
  // The file extent, computed exactly once: every block length below is
  // validated against it (ReadHeader), so no per-block re-stat happens and
  // the header parse itself never seeks.
  in.seekg(0, std::ios::end);
  const std::streamoff extent = in.tellg();
  if (extent < 0) return Status::Error("cannot stat " + path);
  in.seekg(0);

  Header h;
  StreamReader r{in};
  Status st = ReadHeader(r, (uint64_t)extent, &h);
  if (!st.ok()) return Status::Error(path + ": " + st.message());

  RawParts p;
  std::vector<Value> beta;
  std::vector<int32_t> left, right;
  std::vector<float> cost;
  std::vector<uint16_t> level;
  std::vector<uint8_t> leaf;
  std::vector<uint64_t> words;
  std::vector<uint32_t> offsets, entry_vb;
  std::vector<uint8_t> entry_bit;
  std::vector<uint64_t> tree_agg_count, entry_agg_count;
  std::vector<Value> tree_agg_vals, entry_agg_vals;
  if (!ReadBlockAt(in, h.dir[kBlockBeta], &beta) ||
      !ReadBlockAt(in, h.dir[kBlockLeft], &left) ||
      !ReadBlockAt(in, h.dir[kBlockRight], &right) ||
      !ReadBlockAt(in, h.dir[kBlockCost], &cost) ||
      !ReadBlockAt(in, h.dir[kBlockLevel], &level) ||
      !ReadBlockAt(in, h.dir[kBlockLeaf], &leaf))
    return Status::Error("truncated tree");
  if (!ReadBlockAt(in, h.dir[kBlockWidths], &p.widths) ||
      !ReadBlockAt(in, h.dir[kBlockWords], &words) ||
      !ReadBlockAt(in, h.dir[kBlockOffsets], &offsets) ||
      !ReadBlockAt(in, h.dir[kBlockEntryVb], &entry_vb) ||
      !ReadBlockAt(in, h.dir[kBlockEntryBit], &entry_bit))
    return Status::Error("truncated dictionary");
  if (!ReadBlockAt(in, h.dir[kBlockTreeAggCount], &tree_agg_count) ||
      !ReadBlockAt(in, h.dir[kBlockTreeAggVals], &tree_agg_vals) ||
      !ReadBlockAt(in, h.dir[kBlockEntryAggCount], &entry_agg_count) ||
      !ReadBlockAt(in, h.dir[kBlockEntryAggVals], &entry_agg_vals))
    return Status::Error("truncated aggregate annotations");
  p.beta = std::move(beta);
  p.left = std::move(left);
  p.right = std::move(right);
  p.cost = std::move(cost);
  p.level = std::move(level);
  p.leaf = std::move(leaf);
  p.words = std::move(words);
  p.offsets = std::move(offsets);
  p.entry_vb = std::move(entry_vb);
  p.entry_bit = std::move(entry_bit);
  p.tree_agg_count = std::move(tree_agg_count);
  p.tree_agg_vals = std::move(tree_agg_vals);
  p.entry_agg_count = std::move(entry_agg_count);
  p.entry_agg_vals = std::move(entry_agg_vals);
  return RepSerde::Assemble(view, db, aux_db, h, std::move(p), nullptr, 0);
}

Result<std::unique_ptr<CompressedRep>> MmapCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db) {
  Result<std::shared_ptr<RepFile>> open = RepFile::Open(path);
  if (!open.ok()) return open.status();
  std::shared_ptr<RepFile> file = std::move(open).value();

  Header h;
  MemReader r{file->data(), file->size()};
  Status st = ReadHeader(r, (uint64_t)file->size(), &h);
  if (!st.ok()) return Status::Error(path + ": " + st.message());

  RawParts p;
  p.beta = BorrowBlock<Value>(*file, h.dir[kBlockBeta]);
  p.left = BorrowBlock<int32_t>(*file, h.dir[kBlockLeft]);
  p.right = BorrowBlock<int32_t>(*file, h.dir[kBlockRight]);
  p.cost = BorrowBlock<float>(*file, h.dir[kBlockCost]);
  p.level = BorrowBlock<uint16_t>(*file, h.dir[kBlockLevel]);
  p.leaf = BorrowBlock<uint8_t>(*file, h.dir[kBlockLeaf]);
  // Widths are a handful of bytes and the pool wants its own copy anyway.
  const BlockDir& wd = h.dir[kBlockWidths];
  if (wd.count > 0)
    p.widths.assign(file->data() + wd.offset,
                    file->data() + wd.offset + wd.count);
  p.words = BorrowBlock<uint64_t>(*file, h.dir[kBlockWords]);
  p.offsets = BorrowBlock<uint32_t>(*file, h.dir[kBlockOffsets]);
  p.entry_vb = BorrowBlock<uint32_t>(*file, h.dir[kBlockEntryVb]);
  p.entry_bit = BorrowBlock<uint8_t>(*file, h.dir[kBlockEntryBit]);
  p.tree_agg_count = BorrowBlock<uint64_t>(*file, h.dir[kBlockTreeAggCount]);
  p.tree_agg_vals = BorrowBlock<Value>(*file, h.dir[kBlockTreeAggVals]);
  p.entry_agg_count =
      BorrowBlock<uint64_t>(*file, h.dir[kBlockEntryAggCount]);
  p.entry_agg_vals = BorrowBlock<Value>(*file, h.dir[kBlockEntryAggVals]);

  size_t mapped_bytes = 0;
  for (int b = 0; b < kNumBlocks; ++b)
    if (b != kBlockWidths)
      mapped_bytes += (size_t)h.dir[b].count * kBlockElemSize[b];
  return RepSerde::Assemble(view, db, aux_db, h, std::move(p),
                            std::move(file), mapped_bytes);
}

}  // namespace cqc

// CompressedRep: the Theorem 1 data structure.
//
// Given a full adorned view Q^eta over a natural join query, a fractional
// edge cover u of the variables, and a threshold parameter tau, Build()
// constructs:
//   * two sorted-trie indexes per atom (linear space),
//   * the delay-balanced tree over the free-variable domain (§4.3),
//   * the heavy-pair dictionary (Appendix A),
// achieving (Theorem 1)
//   compression time  T_C = O~(|D| + prod |R_F|^{u_F})
//   space             S   = O~(|D| + prod |R_F|^{u_F} / tau^{alpha(V_f)})
//   delay             O~(tau), lexicographic order, no duplicates
//   answer time       T_A = O~(|q(D)| + tau |q(D)|^{1/alpha}).
//
// Answer(v_b) returns a pull-based enumerator implementing Algorithm 2: an
// in-order traversal of the delay-balanced tree that evaluates light
// intervals with a worst-case-optimal join, skips empty heavy intervals via
// the dictionary, and probes the split point between the two children.
#ifndef CQC_CORE_COMPRESSED_REP_H_
#define CQC_CORE_COMPRESSED_REP_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/aggregate.h"
#include "core/cost_model.h"
#include "core/cursor.h"
#include "core/dbtree.h"
#include "core/dictionary.h"
#include "core/enumerator.h"
#include "core/lex_domain.h"
#include "core/rep_file.h"
#include "join/bound_atom.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

struct CompressedRepOptions {
  /// The tradeoff knob: delay O~(tau), space O~(AGM / tau^alpha).
  double tau = 1.0;
  /// Fractional edge cover (aligned with atoms). When absent, the library
  /// picks a minimum-rho* cover and then maximizes the slack on the free
  /// variables at that total weight.
  std::optional<std::vector<double>> cover;
  /// Safety valve for the delay-balanced tree size.
  size_t max_tree_nodes = 1u << 27;
  /// Build the per-subtree aggregate annotations (ring cells on tree nodes
  /// for num_bound == 0, on dictionary CSR entries otherwise) so
  /// AnswerAggregate answers prefix group-bys by interval arithmetic
  /// instead of enumeration. Costs one extra enumeration pass per bound
  /// candidate at build time plus O(nodes + entries) * 3 * mu words of
  /// space — off by default; the Planner turns it on for aggregate
  /// workloads.
  bool build_aggregates = false;
};

struct CompressedRepStats {
  double build_seconds = 0;
  std::vector<double> cover;
  double alpha = 1;          // slack of the cover on V_f
  double rho = 0;            // total cover weight
  double root_cost = 0;      // T(root interval)
  size_t tree_nodes = 0;
  int tree_depth = 0;
  size_t dict_entries = 0;
  size_t num_candidates = 0;
  size_t tree_bytes = 0;
  size_t dict_bytes = 0;
  size_t index_bytes = 0;       // sorted tries over the base relations
  size_t hash_index_bytes = 0;  // hash probe plans over the base relations
  size_t agg_bytes = 0;         // aggregate annotation columns (if built)
  // Bytes of tree_bytes/dict_bytes that live in an mmap'ed rep file rather
  // than on the heap (zero-copy loads only). These count toward TotalBytes
  // (the logical footprint) but their *physical* cost is whatever the OS
  // has paged in — see CompressedRep::ResidentBytes().
  size_t mapped_bytes = 0;

  /// The structure's own footprint (tree + dictionary); the paper's S minus
  /// the always-linear index/input component.
  size_t AuxBytes() const { return tree_bytes + dict_bytes; }
  size_t TotalBytes() const { return AuxBytes() + index_bytes; }
};

class CompressedRep {
 public:
  /// `view` must be a natural-join full CQ (run NormalizeView first if
  /// needed); relations resolve against `aux_db` first, then `db`. Both
  /// databases must outlive the returned object.
  static Result<std::unique_ptr<CompressedRep>> Build(
      const AdornedView& view, const Database& db,
      const CompressedRepOptions& options, const Database* aux_db = nullptr);

  CompressedRep(const CompressedRep&) = delete;
  CompressedRep& operator=(const CompressedRep&) = delete;

  /// Enumerates the access request Q^eta[v_b] in lexicographic order of the
  /// free variables. `vb` is aligned with view().bound_vars().
  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;

  /// Range-restricted Algorithm 2: enumerates exactly the outputs of
  /// Answer(vb) that lie in the closed lex interval `range` (arity mu), in
  /// the same lexicographic order. The traversal clips every tree interval
  /// against the range, so work is proportional to the restricted output
  /// plus the O~(tau) delay — this is the shard primitive: the shards of a
  /// ShardPlan partition the domain, so draining them in order reproduces
  /// Answer(vb) tuple for tuple, and draining them concurrently partitions
  /// the work. Requires num_free() > 0.
  std::unique_ptr<TupleEnumerator> AnswerRange(const BoundValuation& vb,
                                               const FInterval& range) const;

  /// The full free-variable lex range [min, max] (empty tuples when the
  /// domain is empty or mu = 0): AnswerRange(vb, FullRange()) == Answer(vb).
  FInterval FullRange() const;

  /// Resumes a paused enumeration: returns the stream Answer(vb) (or the
  /// range-restricted stream the cursor was taken over) would have produced
  /// after the cursor position — O~(tau) to the first resumed tuple, via
  /// AnswerRange over [succ(cursor.last), cursor.range_hi]. Fails with a
  /// Status error if the cursor is malformed for this representation (wrong
  /// arity or off-grid last tuple), so untrusted cursor blobs cannot crash
  /// the server.
  Result<std::unique_ptr<TupleEnumerator>> Resume(
      const BoundValuation& vb, const EnumerationCursor& cursor) const;

  /// Convenience: is the access request non-empty? (boolean adorned views,
  /// k-SetDisjointness).
  bool AnswerExists(const BoundValuation& vb) const;

  /// Grouped ring aggregate over the access request's answers:
  /// COUNT/SUM/MIN/MAX of Answer(vb), grouped by the free variables in
  /// `group_vars` (strictly ascending indices). When the group set is a
  /// lex prefix and the annotations were built (has_aggregates()), the
  /// answer comes from interval arithmetic over the per-subtree ring cells
  /// — O(annotated nodes on the group boundary + light drains), O(1) for
  /// the full-group (empty group set) case — otherwise it falls back to
  /// draining the enumeration and folding. Both paths produce
  /// value-identical results.
  AggregateResult AnswerAggregate(const BoundValuation& vb,
                                  const std::vector<int>& group_vars,
                                  const AggSpec& spec) const;

  /// True when the aggregate annotations for this rep's shape are present
  /// (built with build_aggregates or loaded from a CQCREP05 file carrying
  /// the annotation blocks).
  bool has_aggregates() const {
    return view_.num_bound() > 0 ? dict_.has_aggregates()
                                 : tree_.has_aggregates();
  }

  const AdornedView& view() const { return view_; }
  const CompressedRepStats& stats() const { return stats_; }

  /// Physical memory charge right now: the heap component of TotalBytes()
  /// plus the resident (paged-in) bytes of the backing mapping, if any.
  /// For built or heap-loaded reps this equals TotalBytes(); for a
  /// zero-copy load it starts near zero and grows as queries touch pages.
  size_t ResidentBytes() const {
    const size_t total = stats_.TotalBytes();
    const size_t heap =
        total > stats_.mapped_bytes ? total - stats_.mapped_bytes : 0;
    return heap + (backing_ ? backing_->ResidentBytes() : 0);
  }

  /// The mmap'ed file backing borrowed columns (null for built or
  /// heap-loaded reps).
  const std::shared_ptr<RepFile>& backing() const { return backing_; }
  const LexDomain& domain() const { return domain_; }
  const DelayBalancedTree& tree() const { return tree_; }
  const HeavyDictionary& dictionary() const { return dict_; }
  const std::vector<BoundAtom>& atoms() const { return atoms_; }
  double tau() const { return tau_; }

  /// The Theorem-2 fixup (Algorithm 4) flips dictionary bits in place.
  HeavyDictionary& mutable_dictionary() { return dict_; }

  /// Algorithm 4 (bag-local part): for every dictionary entry with bit 1,
  /// re-verify that some output in the node's interval satisfies
  /// live(v_b, v_f); flip the bit to 0 otherwise. After this, a 1-bit
  /// guarantees the subtree below the bag produces a full query result
  /// (Prop. 17).
  void FixupDictionary(
      const std::function<bool(const BoundValuation&, const Tuple&)>& live);

 private:
  CompressedRep(AdornedView view, std::vector<BoundAtom> atoms,
                LexDomain domain, std::vector<double> exponents, double tau,
                double alpha);

  /// Everything Build() does *before* constructing the tree/dictionary:
  /// validation, relation resolution, cover checking, atom binding, the
  /// free-variable grid. Shared with the deserialization path.
  static Result<std::unique_ptr<CompressedRep>> MakeSkeleton(
      const AdornedView& view, const Database& db,
      const std::vector<double>& cover, double tau, const Database* aux_db);

  /// The annotation pass (Olteanu–Závodný ring recurrence over the tree):
  /// one bottom-up walk per bound candidate, folding light subtrees by
  /// range enumeration; fills the tree columns (num_bound == 0) or the
  /// dictionary entry columns (num_bound > 0) and refreshes agg_bytes.
  void BuildAggregates();

  friend Status SaveCompressedRep(const CompressedRep&, const std::string&);
  friend Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
      const AdornedView&, const Database&, const std::string&,
      const Database*);
  friend Result<std::unique_ptr<CompressedRep>> MmapCompressedRep(
      const AdornedView&, const Database&, const std::string&,
      const Database*);
  // Shared loader internals (serialization.cc): validates the parsed
  // blocks and moves them into a skeleton rep for both load paths.
  friend class RepSerde;

  class Alg2Enumerator;

  AdornedView view_;
  std::vector<BoundAtom> atoms_;
  LexDomain domain_;
  CostModel cost_;
  double tau_;
  double alpha_;
  DelayBalancedTree tree_;
  HeavyDictionary dict_;
  CompressedRepStats stats_;
  // Keeps the mapping alive for as long as any borrowed column can be
  // read (zero-copy loads only; null otherwise).
  std::shared_ptr<RepFile> backing_;
};

}  // namespace cqc

#endif  // CQC_CORE_COMPRESSED_REP_H_

#include "core/shard_planner.h"

#include <algorithm>

#include "util/logging.h"

namespace cqc {
namespace {

// One frontier piece: a contiguous lex range plus the tree node that covers
// it (-1 for split-point singletons and childless sides, which cannot be
// expanded further).
struct Segment {
  int node;
  FInterval interval;
  double weight;
};

double NodeWeight(const DelayBalancedTree& tree, const HeavyDictionary* dict,
                  int node) {
  double w = std::max<double>(1.0, tree.cost(node));
  if (dict != nullptr) w += (double)dict->NumEntriesAt(node);
  return w;
}

}  // namespace

ShardPlan ShardPlanner::Plan(const CompressedRep& rep, size_t max_shards) {
  if (rep.view().num_free() == 0) return ShardPlan{};
  return Plan(rep.tree(), rep.domain(), &rep.dictionary(), max_shards);
}

ShardPlan ShardPlanner::Plan(const DelayBalancedTree& tree,
                             const LexDomain& domain,
                             const HeavyDictionary* dict, size_t max_shards) {
  ShardPlan plan;
  if (domain.mu() == 0 || domain.AnyEmpty()) return plan;
  const FInterval root{domain.MinTuple(), domain.MaxTuple()};
  if (max_shards <= 1 || tree.empty()) {
    plan.shards.push_back(root);
    plan.weights.push_back(tree.empty() ? 1.0 : NodeWeight(tree, dict, 0));
    return plan;
  }

  // Expand the heaviest expandable segment until there are several segments
  // per shard (slack for the greedy cut) or no split points remain.
  const size_t target =
      std::min<size_t>(std::max<size_t>(4 * max_shards, 8), 4096);
  std::vector<Segment> segments;
  segments.push_back(Segment{tree.root(), root, NodeWeight(tree, dict, 0)});
  while (segments.size() < target) {
    int best = -1;
    double best_weight = 0;
    for (size_t i = 0; i < segments.size(); ++i) {
      const Segment& s = segments[i];
      if (s.node < 0 || tree.leaf(s.node)) continue;
      if (s.weight > best_weight) {
        best_weight = s.weight;
        best = (int)i;
      }
    }
    if (best < 0) break;  // nothing left to split

    const Segment seg = segments[best];
    const TupleSpan beta = tree.beta(seg.node);
    std::vector<Segment> pieces;
    FInterval child;
    if (DelayBalancedTree::LeftInterval(seg.interval, beta, domain, &child)) {
      const int32_t left = tree.left(seg.node);
      pieces.push_back(Segment{
          left, std::move(child),
          left >= 0 ? NodeWeight(tree, dict, left)
                    : std::max(1.0, seg.weight / 4)});
    }
    // The split point itself: one grid tuple, at most one output.
    pieces.push_back(
        Segment{-1, FInterval{beta.ToTuple(), beta.ToTuple()}, 1.0});
    if (DelayBalancedTree::RightInterval(seg.interval, beta, domain,
                                         &child)) {
      const int32_t right = tree.right(seg.node);
      pieces.push_back(Segment{
          right, std::move(child),
          right >= 0 ? NodeWeight(tree, dict, right)
                     : std::max(1.0, seg.weight / 4)});
    }
    segments.erase(segments.begin() + best);
    segments.insert(segments.begin() + best,
                    std::make_move_iterator(pieces.begin()),
                    std::make_move_iterator(pieces.end()));
  }

  // Greedy cut: walk the lex-ordered segments accumulating weight; close a
  // shard whenever the running total reaches its proportional share, always
  // leaving enough segments for the remaining shards.
  double remaining_total = 0;
  for (const Segment& s : segments) remaining_total += s.weight;
  const size_t num_shards = std::min(max_shards, segments.size());
  size_t seg_idx = 0;
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t shards_left = num_shards - k;
    const size_t segs_left = segments.size() - seg_idx;
    CQC_CHECK_GE(segs_left, shards_left);
    const size_t max_take = segs_left - (shards_left - 1);
    double acc = segments[seg_idx].weight;
    size_t take = 1;
    const double share = remaining_total / (double)shards_left;
    while (take < max_take && acc + segments[seg_idx + take].weight / 2 <=
                                  share) {
      acc += segments[seg_idx + take].weight;
      ++take;
    }
    plan.shards.push_back(FInterval{segments[seg_idx].interval.lo,
                                    segments[seg_idx + take - 1].interval.hi});
    plan.weights.push_back(acc);
    remaining_total = std::max(0.0, remaining_total - acc);
    seg_idx += take;
  }
  CQC_CHECK_EQ(seg_idx, segments.size());

  // Adjacent segments tile the grid, so the grouped ranges must too.
  CQC_CHECK(plan.shards.front().lo == root.lo);
  CQC_CHECK(plan.shards.back().hi == root.hi);
  return plan;
}

}  // namespace cqc

#include "core/compressed_rep.h"

#include <cstring>
#include <set>

#include "fractional/edge_cover.h"
#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cqc {

CompressedRep::CompressedRep(AdornedView view, std::vector<BoundAtom> atoms,
                             LexDomain domain, std::vector<double> exponents,
                             double tau, double alpha)
    : view_(std::move(view)),
      atoms_(std::move(atoms)),
      domain_(std::move(domain)),
      cost_(&atoms_, std::move(exponents)),
      tau_(tau),
      alpha_(alpha) {}

Result<std::unique_ptr<CompressedRep>> CompressedRep::MakeSkeleton(
    const AdornedView& view, const Database& db,
    const std::vector<double>& u, double tau, const Database* aux_db) {
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error(
        "CompressedRep requires a natural join view; run NormalizeView "
        "first: " +
        cq.ToString());
  if (tau <= 0) return Status::Error("tau must be positive");

  // Resolve relations.
  std::vector<const Relation*> rels;
  for (const Atom& atom : cq.atoms()) {
    const Relation* r = ResolveRelation(atom.relation, db, aux_db);
    if (r == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    if (!r->sealed())
      return Status::Error("relation " + atom.relation + " is not sealed");
    if (r->arity() != atom.arity())
      return Status::Error("arity mismatch on " + atom.relation);
    rels.push_back(r);
  }

  // Validate coverage of every body variable.
  Hypergraph h(cq);
  if ((int)u.size() != h.num_edges())
    return Status::Error("cover size does not match atom count");
  for (VarId v = 0; v < cq.num_vars(); ++v) {
    if (!VarSetContains(h.vertices(), v)) continue;
    double c = 0;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) c += u[f];
    if (c < 1.0 - 1e-6)
      return Status::Error("cover does not cover variable " + cq.var_name(v));
  }

  // LP-produced covers can undershoot the unit coverage by an ulp; accept
  // and clamp (DelayBalancedTree::Build requires alpha >= 1 exactly).
  double alpha = view.num_free() > 0 ? Slack(h, u, view.free_set()) : 1.0;
  CQC_CHECK_GE(alpha, 1.0 - 1e-6);
  alpha = std::max(alpha, 1.0);
  std::vector<double> exponents(u.size());
  for (size_t f = 0; f < u.size(); ++f) exponents[f] = u[f] / alpha;

  // Bind atoms (builds the bf / fb sorted indexes). Index construction
  // dominates skeleton time, so the per-atom binds fan out on the shared
  // build pool (BindAtomsParallel gates itself).
  std::vector<BoundAtom> atoms =
      BindAtomsParallel(cq, rels, view.bound_vars(), view.free_vars());

  // Free-variable grid: per variable, the union of the active domains of
  // the atoms containing it (a superset of the output-relevant values,
  // required so Algorithm 1's binary searches can always reach their
  // targets).
  std::vector<std::vector<Value>> domains(view.num_free());
  for (int i = 0; i < view.num_free(); ++i) {
    std::set<Value> merged;
    for (const BoundAtom& atom : atoms) {
      for (int p : atom.free_positions()) {
        if (p != i) continue;
        const std::vector<Value>& d = atom.FreeDomain(i);
        merged.insert(d.begin(), d.end());
      }
    }
    domains[i].assign(merged.begin(), merged.end());
  }

  auto rep = std::unique_ptr<CompressedRep>(
      new CompressedRep(view, std::move(atoms), LexDomain(std::move(domains)),
                        std::move(exponents), tau, alpha));
  CompressedRepStats& s = rep->stats_;
  s.cover = u;
  s.alpha = alpha;
  for (double w : u) s.rho += w;
  std::set<const Relation*> distinct(rels.begin(), rels.end());
  for (const Relation* r : distinct) {
    // The hash probe plan is part of the serving structure (index policy:
    // point probes bypass the tries): build it now rather than on the first
    // request's split probe.
    r->GetHashIndex();
    s.index_bytes += r->IndexBytes();
    s.hash_index_bytes += r->HashIndexBytes();
  }
  return std::move(rep);
}

Result<std::unique_ptr<CompressedRep>> CompressedRep::Build(
    const AdornedView& view, const Database& db,
    const CompressedRepOptions& options, const Database* aux_db) {
  WallTimer timer;

  // Pick the fractional edge cover.
  std::vector<double> u;
  if (options.cover.has_value()) {
    u = *options.cover;
  } else {
    Hypergraph h(view.cq());
    EdgeCover base = FractionalEdgeCover(h, h.vertices());
    if (!base.ok) return Status::Error("query has no fractional edge cover");
    if (view.num_free() > 0) {
      // Keep the optimal total weight but maximize slack on V_f (cf. Ex. 7).
      double slack = 0;
      EdgeCover better = MaxSlackCover(h, h.vertices(), view.free_set(),
                                       base.total + 1e-9, &slack);
      u = better.ok ? better.weights : base.weights;
    } else {
      u = base.weights;
    }
  }

  Result<std::unique_ptr<CompressedRep>> skeleton =
      MakeSkeleton(view, db, u, options.tau, aux_db);
  if (!skeleton.ok()) return skeleton.status();
  std::unique_ptr<CompressedRep> rep = std::move(skeleton).value();
  const double alpha = rep->alpha_;

  // Delay-balanced tree + dictionary (only when there is a free dimension).
  if (rep->view_.num_free() > 0 && !rep->domain_.AnyEmpty()) {
    DelayBalancedTree::BuildParams params;
    params.tau = options.tau;
    params.alpha = alpha;
    params.max_nodes = options.max_tree_nodes;
    rep->tree_ = DelayBalancedTree::Build(rep->domain_, rep->cost_, params);
    DictionaryBuilder builder(&rep->atoms_, &rep->cost_, &rep->tree_,
                              &rep->domain_, rep->view_.num_bound(),
                              options.tau, alpha);
    rep->dict_ = builder.Build();
  }

  // Aggregate annotations ride on the finished tree + dictionary: one
  // Algorithm-2-shaped sweep per bound candidate (the documented build-time
  // cost of pushed aggregates).
  if (options.build_aggregates) rep->BuildAggregates();

  // Stats.
  CompressedRepStats& s = rep->stats_;
  s.build_seconds = timer.Seconds();
  s.tree_nodes = rep->tree_.size();
  s.tree_depth = rep->tree_.max_depth();
  if (!rep->tree_.empty()) s.root_cost = rep->tree_.cost(0);
  s.dict_entries = rep->dict_.NumEntries();
  s.num_candidates = rep->dict_.NumCandidates();
  s.tree_bytes = rep->tree_.MemoryBytes();
  s.dict_bytes = rep->dict_.MemoryBytes();
  return std::move(rep);
}

// ---------------------------------------------------------------------------
// Algorithm 2: in-order traversal of the delay-balanced tree.
// ---------------------------------------------------------------------------

// The traversal is written once, as the batch producer ProduceBatch(); the
// one-at-a-time Next() serves from small staged blocks pulled through a
// scratch buffer, and NextBatch() drains any staged tuples before
// producing, so both entry points share one state machine, cannot diverge,
// and can be interleaved freely. Staging keeps the delay bound: a block is
// a fixed constant, so one refill costs O(kNextStage) constant-delay steps.
//
// An optional lex range [range_lo_, range_hi_] restricts the traversal: every
// interval is clipped against the range when its frame is pushed (the child
// derivation below a clipped parent can escape the parent's bounds, so the
// clip must happen at every push, not just at the root), subtrees whose
// clipped interval is empty are skipped, and split points are emitted only
// when they fall inside the clipped frame. Dictionary bits stay sound under
// clipping: a light pair stays light on a sub-interval (cost is monotone)
// and a 0-bit (empty on the full interval) implies empty on any
// sub-interval.
class CompressedRep::Alg2Enumerator : public TupleEnumerator {
 public:
  Alg2Enumerator(const CompressedRep* rep, BoundValuation vb,
                 const FInterval* range = nullptr)
      : rep_(rep), vb_(std::move(vb)), scratch_(rep->view().num_free()) {
    CQC_CHECK_EQ((int)vb_.size(), rep_->view_.num_bound());
    // Pre-bind every atom; an empty range kills the whole request.
    for (const BoundAtom& atom : rep_->atoms_) {
      RowRange r = atom.SeekBound(vb_);
      if (r.empty()) {
        done_ = true;
        return;
      }
      start_ranges_.push_back(r);
    }
    if (rep_->tree_.empty()) {
      done_ = true;
      return;
    }
    range_lo_ = rep_->domain_.MinTuple();
    range_hi_ = rep_->domain_.MaxTuple();
    if (range != nullptr) {
      CQC_CHECK_EQ((int)range->lo.size(), rep_->domain_.mu());
      CQC_CHECK_EQ((int)range->hi.size(), rep_->domain_.mu());
      if (LexDomain::Compare(range->lo, range_lo_) > 0)
        range_lo_ = range->lo;
      if (LexDomain::Compare(range_hi_, range->hi) > 0)
        range_hi_ = range->hi;
    }
    vb_id_ = rep_->dict_.FindValuation(vb_);
    // One shared join-input table for every box join of this request: the
    // trie, pre-bound start range, and level map never change, only the
    // per-box constraints do (JoinIterator::Reset).
    for (size_t a = 0; a < rep_->atoms_.size(); ++a) {
      const BoundAtom& atom = rep_->atoms_[a];
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = start_ranges_[a];
      in.start_level = atom.num_bound();
      for (int i = 0; i < atom.num_free(); ++i)
        in.levels.emplace_back(atom.free_positions()[i],
                               atom.num_bound() + i);
      base_inputs_.push_back(std::move(in));
    }
    PushClipped(rep_->tree_.root(),
                FInterval{rep_->domain_.MinTuple(), rep_->domain_.MaxTuple()});
    done_ = top_ == 0;
  }

  bool Next(Tuple* out) override {
    if (scratch_pos_ >= scratch_.size()) {
      scratch_.Clear();
      scratch_pos_ = 0;
      if (ProduceBatch(&scratch_, kNextStage) == 0) return false;
    }
    const TupleSpan t = scratch_[scratch_pos_++];
    out->resize(t.size());
    std::memcpy(out->data(), t.begin(), t.size() * sizeof(Value));
    return true;
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t emitted = 0;
    while (scratch_pos_ < scratch_.size() && emitted < max_tuples) {
      out->Append(scratch_[scratch_pos_++]);
      ++emitted;
    }
    return emitted + ProduceBatch(out, max_tuples - emitted);
  }

 private:
  // Per-Next staging block: amortizes the traversal state machine and the
  // virtual batch dispatch over a constant number of outputs.
  static constexpr size_t kNextStage = 16;

  size_t ProduceBatch(TupleBuffer* out, size_t max_tuples) {
    size_t emitted = 0;
    while (!done_ && emitted < max_tuples) {
      if (join_active_) {
        size_t n = join_->NextBatch(out, max_tuples - emitted);
        emitted += n;
        if (emitted == max_tuples) break;  // join may still have more
        join_active_ = false;
        if (!AdvanceBox()) --top_;
        continue;
      }
      if (top_ == 0) {
        done_ = true;
        break;
      }
      Frame& f = stack_[top_ - 1];
      const DelayBalancedTree& tree = rep_->tree_;
      switch (f.phase) {
        case Phase::kEnter: {
          HeavyDictionary::Bit bit = rep_->dict_.Lookup(f.node, vb_id_);
          if (bit == HeavyDictionary::Bit::kAbsent) {
            // Light pair: evaluate the interval directly (Prop. 6), box by
            // box; the boxes and the per-box joins are in lex order.
            BoxDecomposeInto(f.interval, &eval_boxes_);
            eval_idx_ = 0;
            if (!AdvanceBox()) --top_;
          } else if (bit == HeavyDictionary::Bit::kZero) {
            --top_;  // heavy but empty: skip the subtree
          } else if (tree.leaf(f.node)) {
            // Only unit-interval leaves can carry heavy entries (non-unit
            // leaves satisfy T(I) < tau_l, so no pair is heavy there); a
            // 1-bit certifies the single grid point is an output.
            CQC_CHECK(f.interval.IsUnit());
            out->Append(f.interval.lo);
            ++emitted;
            --top_;
          } else {
            f.phase = Phase::kAfterLeft;
            const int32_t left = tree.left(f.node);
            if (left >= 0) {
              if (DelayBalancedTree::LeftInterval(f.interval,
                                                  tree.beta(f.node),
                                                  rep_->domain_, &child_))
                PushClipped(left, child_);
            }
          }
          break;
        }
        case Phase::kAfterLeft: {
          f.phase = Phase::kAfterBeta;
          const TupleSpan beta = tree.beta(f.node);
          // The frame interval is already clipped, so containment is the
          // range check (beta always lies in the unclipped node interval).
          if (f.interval.Contains(beta) && BetaMatches(beta)) {
            out->Append(beta);
            ++emitted;
          }
          break;
        }
        case Phase::kAfterBeta: {
          // Derive the right child into the scratch before the pop: the
          // popped slot's tuples stay alive (slots are reused, not
          // destroyed) but the next push overwrites that very slot.
          const int node = f.node;
          const int32_t right = tree.right(node);
          const bool have_child =
              right >= 0 && DelayBalancedTree::RightInterval(
                                f.interval, tree.beta(node), rep_->domain_,
                                &child_);
          --top_;  // invalidates f
          if (have_child) PushClipped(right, child_);
          break;
        }
      }
    }
    return emitted;
  }

  enum class Phase { kEnter, kAfterLeft, kAfterBeta };
  struct Frame {
    int node = -1;
    FInterval interval;
    Phase phase = Phase::kEnter;
  };

  // Clips `interval` against the enumeration range and pushes a frame for
  // `node` unless the clipped interval is empty. Every frame on the stack
  // therefore holds an interval fully inside [range_lo_, range_hi_].
  // Frames are recycled (top_ index over a grow-only vector), so a push
  // after warm-up assigns into existing tuple capacity — no allocation.
  // `interval` must not alias the target slot (callers pass child_).
  void PushClipped(int node, const FInterval& interval) {
    if (top_ == stack_.size()) stack_.emplace_back();
    Frame& f = stack_[top_];
    f.interval.lo = interval.lo;
    f.interval.hi = interval.hi;
    if (LexDomain::Compare(range_lo_, f.interval.lo) > 0)
      f.interval.lo = range_lo_;
    if (LexDomain::Compare(f.interval.hi, range_hi_) > 0)
      f.interval.hi = range_hi_;
    if (f.interval.Empty()) return;
    f.node = node;
    f.phase = Phase::kEnter;
    ++top_;
  }

  // Starts the join for eval_boxes_[eval_idx_]; false when exhausted.
  bool AdvanceBox() {
    const int mu = rep_->domain_.mu();
    if (eval_idx_ >= eval_boxes_.size()) return false;
    const FBox& box = eval_boxes_[eval_idx_++];
    box_constraints_.clear();
    for (int i = 0; i < mu; ++i)
      box_constraints_.push_back(LevelConstraint::FromDim(box.dims[i]));
    if (!join_.has_value()) {
      join_.emplace(&base_inputs_, mu, box_constraints_);
    } else {
      join_->Reset(box_constraints_);
    }
    join_active_ = true;
    return true;
  }

  // Membership of the split point: the unit-interval probe of Algorithm 2.
  // One hash probe per atom (index-selection policy: point membership goes
  // to the HashIndex, not the sorted tries).
  bool BetaMatches(TupleSpan beta) const {
    for (const BoundAtom& atom : rep_->atoms_) {
      if (!atom.ContainsValuation(vb_, beta)) return false;
    }
    return true;
  }

  const CompressedRep* rep_;
  BoundValuation vb_;
  uint32_t vb_id_ = HeavyDictionary::kNoValuation;
  Tuple range_lo_;  // enumeration range (defaults to the full grid)
  Tuple range_hi_;
  std::vector<RowRange> start_ranges_;
  std::vector<JoinAtomInput> base_inputs_;  // shared by every box join
  std::vector<Frame> stack_;  // slots [0, top_) live; the rest recycled
  size_t top_ = 0;
  FInterval child_;  // scratch for child-interval derivation
  std::vector<FBox> eval_boxes_;
  size_t eval_idx_ = 0;
  std::optional<JoinIterator> join_;  // reused across boxes via Reset()
  bool join_active_ = false;
  std::vector<LevelConstraint> box_constraints_;  // reused per box
  TupleBuffer scratch_;    // staged block for the Next() entry point
  size_t scratch_pos_ = 0;  // next staged tuple to serve
  bool done_ = false;
};

std::unique_ptr<TupleEnumerator> CompressedRep::Answer(
    const BoundValuation& vb) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  if (view_.num_free() == 0) {
    // Boolean adorned view: all variables bound, atoms interact only
    // through the fixed valuation (Prop. 1 semantics).
    for (const BoundAtom& atom : atoms_) {
      if (atom.CountBound(vb) == 0)
        return std::make_unique<EmptyEnumerator>();
    }
    std::vector<Tuple> one{Tuple{}};
    return std::make_unique<VectorEnumerator>(std::move(one));
  }
  if (domain_.AnyEmpty() || tree_.empty())
    return std::make_unique<EmptyEnumerator>();
  return std::make_unique<Alg2Enumerator>(this, vb);
}

std::unique_ptr<TupleEnumerator> CompressedRep::AnswerRange(
    const BoundValuation& vb, const FInterval& range) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  CQC_CHECK_GT(view_.num_free(), 0) << "AnswerRange needs a free dimension";
  if (domain_.AnyEmpty() || tree_.empty() || range.Empty())
    return std::make_unique<EmptyEnumerator>();
  return std::make_unique<Alg2Enumerator>(this, vb, &range);
}

FInterval CompressedRep::FullRange() const {
  if (view_.num_free() == 0 || domain_.AnyEmpty()) return FInterval{};
  return FInterval{domain_.MinTuple(), domain_.MaxTuple()};
}

Result<std::unique_ptr<TupleEnumerator>> CompressedRep::Resume(
    const BoundValuation& vb, const EnumerationCursor& cursor) const {
  if ((int)vb.size() != view_.num_bound())
    return Status::Error("resume: bound valuation arity mismatch");
  if (cursor.exhausted)
    return std::unique_ptr<TupleEnumerator>(
        std::make_unique<EmptyEnumerator>());
  if (view_.num_free() == 0) {
    // Boolean view: the stream holds at most one (empty) tuple.
    if (cursor.emitted > 0)
      return std::unique_ptr<TupleEnumerator>(
          std::make_unique<EmptyEnumerator>());
    return Answer(vb);
  }
  if (domain_.AnyEmpty() || tree_.empty())
    return std::unique_ptr<TupleEnumerator>(
        std::make_unique<EmptyEnumerator>());
  FInterval range{domain_.MinTuple(), domain_.MaxTuple()};
  if (!cursor.range_hi.empty()) {
    if ((int)cursor.range_hi.size() != domain_.mu())
      return Status::Error("resume: cursor range arity mismatch");
    range.hi = cursor.range_hi;
  }
  // A cursor paused before its first tuple must resume at the range's own
  // lower bound — not the domain minimum, which would replay every earlier
  // shard of a partitioned drain.
  if (!cursor.range_lo.empty()) {
    if ((int)cursor.range_lo.size() != domain_.mu())
      return Status::Error("resume: cursor range arity mismatch");
    range.lo = cursor.range_lo;
  }
  if (cursor.has_last) {
    if ((int)cursor.last.size() != domain_.mu())
      return Status::Error("resume: cursor tuple arity mismatch");
    for (int i = 0; i < domain_.mu(); ++i)
      if (domain_.IndexOf(i, cursor.last[i]) < 0)
        return Status::Error("resume: cursor tuple is not on the grid");
    range.lo = cursor.last;
    if (!domain_.Succ(range.lo))  // paused on the grid maximum
      return std::unique_ptr<TupleEnumerator>(
          std::make_unique<EmptyEnumerator>());
  }
  return AnswerRange(vb, range);
}

bool CompressedRep::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

// ---------------------------------------------------------------------------
// Aggregate pushdown: per-subtree ring annotations + the annotated walk.
// ---------------------------------------------------------------------------

namespace {

// True when every tuple in `interval` shares the same first `k` values —
// the condition under which a whole annotated subtree folds into a single
// group with key interval.lo[0..k). Trivially true for k == 0, which is
// what makes the full-group aggregate an O(1) root read.
bool PrefixUniform(const FInterval& interval, int k) {
  for (int i = 0; i < k; ++i)
    if (interval.lo[i] != interval.hi[i]) return false;
  return true;
}

// Shared recursion state for the annotation build: walks the tree with the
// exact (unclipped) interval derivation of Algorithm 2 for one bound
// candidate, computing each subtree's RingCell bottom-up. Light (absent)
// pairs are folded by draining the range enumeration — Prop. 6 evaluation,
// the same stream Answer() would produce there. Cells are stored into the
// tree columns (num_bound == 0 — every visited node, light ones included)
// or the dictionary entry columns (num_bound > 0 — bit-1 entries only,
// light pairs have no entry to store into).
struct AggBuildWalker {
  const CompressedRep* rep;
  const DelayBalancedTree* tree;
  const HeavyDictionary* dict;
  const LexDomain* domain;
  const std::vector<BoundAtom>* atoms;
  BoundValuation vb;
  uint32_t vb_id = HeavyDictionary::kNoValuation;
  int mu = 0;
  // Exactly one of the two output pairs is non-null.
  std::vector<uint64_t>* tree_counts = nullptr;
  std::vector<Value>* tree_vals = nullptr;
  std::vector<uint64_t>* entry_counts = nullptr;
  std::vector<Value>* entry_vals = nullptr;

  bool BetaMatches(TupleSpan beta) const {
    for (const BoundAtom& atom : *atoms)
      if (!atom.ContainsValuation(vb, beta)) return false;
    return true;
  }

  void Drain(const FInterval& interval, RingCell* out) const {
    auto e = rep->AnswerRange(vb, interval);
    TupleBuffer buf(mu);
    for (;;) {
      buf.Clear();
      const size_t n = e->NextBatch(&buf, 256);
      for (size_t i = 0; i < n; ++i) out->FoldTuple(buf[i]);
      if (n < 256) break;
    }
  }

  void StoreTree(int node, const RingCell& cell) const {
    (*tree_counts)[node] = cell.count;
    std::memcpy(tree_vals->data() + (size_t)node * 3 * mu, cell.vals.data(),
                (size_t)(3 * mu) * sizeof(Value));
  }

  void StoreEntry(int node, const RingCell& cell) const {
    const size_t e = dict->LookupEntryIndex(node, vb_id);
    CQC_CHECK_NE(e, HeavyDictionary::kNoEntry);
    (*entry_counts)[e] = cell.count;
    std::memcpy(entry_vals->data() + e * (size_t)(3 * mu), cell.vals.data(),
                (size_t)(3 * mu) * sizeof(Value));
  }

  void Walk(int node, const FInterval& interval, RingCell* out) const {
    const HeavyDictionary::Bit bit = dict->Lookup(node, vb_id);
    if (bit == HeavyDictionary::Bit::kZero) return;  // certified empty
    RingCell cell;
    cell.Reset(mu);
    if (bit == HeavyDictionary::Bit::kAbsent) {
      Drain(interval, &cell);
      // Light subtrees get annotated for free in tree mode (the query walk
      // can then answer a prefix-uniform light node without re-draining).
      if (tree_counts != nullptr) StoreTree(node, cell);
      out->Merge(cell);
      return;
    }
    if (tree->leaf(node)) {
      // Heavy 1-bit on a unit interval certifies the grid point (Alg. 2).
      cell.FoldTuple(interval.lo);
    } else {
      const TupleSpan beta = tree->beta(node);
      FInterval child;
      if (tree->left(node) >= 0 &&
          DelayBalancedTree::LeftInterval(interval, beta, *domain, &child))
        Walk(tree->left(node), child, &cell);
      if (interval.Contains(beta) && BetaMatches(beta)) cell.FoldTuple(beta);
      if (tree->right(node) >= 0 &&
          DelayBalancedTree::RightInterval(interval, beta, *domain, &child))
        Walk(tree->right(node), child, &cell);
    }
    if (tree_counts != nullptr) {
      StoreTree(node, cell);
    } else {
      StoreEntry(node, cell);
    }
    out->Merge(cell);
  }
};

}  // namespace

void CompressedRep::BuildAggregates() {
  const int mu = view_.num_free();
  if (mu == 0 || tree_.empty()) return;

  AggBuildWalker w;
  w.rep = this;
  w.tree = &tree_;
  w.dict = &dict_;
  w.domain = &domain_;
  w.atoms = &atoms_;
  w.mu = mu;
  const FInterval root{domain_.MinTuple(), domain_.MaxTuple()};

  // Fresh annotation columns, identity-initialized so never-stored slots
  // (unreachable nodes, 0-bit entries) hold deterministic ring identities.
  const auto identity_fill = [mu](std::vector<Value>& vals, size_t rows) {
    vals.assign(rows * (size_t)(3 * mu), 0);
    for (size_t r = 0; r < rows; ++r) {
      Value* v = vals.data() + r * (size_t)(3 * mu);
      for (int j = 0; j < mu; ++j) {
        v[mu + j] = kTop;          // min identity
        v[2 * mu + j] = kBottom;   // max identity
      }
    }
  };

  if (view_.num_bound() == 0) {
    std::vector<uint64_t> counts(tree_.size(), 0);
    std::vector<Value> vals;
    identity_fill(vals, tree_.size());
    w.tree_counts = &counts;
    w.tree_vals = &vals;
    w.vb = BoundValuation{};
    w.vb_id = dict_.FindValuation(w.vb);
    RingCell total;
    total.Reset(mu);
    w.Walk(tree_.root(), root, &total);
    tree_.AttachAggregates(std::move(counts), std::move(vals));
    stats_.agg_bytes =
        tree_.agg_counts().ByteSize() + tree_.agg_vals_pool().ByteSize();
  } else {
    std::vector<uint64_t> counts(dict_.NumEntries(), 0);
    std::vector<Value> vals;
    identity_fill(vals, dict_.NumEntries());
    w.entry_counts = &counts;
    w.entry_vals = &vals;
    // One sweep per candidate with a live root entry; candidates that are
    // light at the root have no annotations and drain at query time.
    Tuple vb_scratch(dict_.vb_arity());
    std::vector<uint32_t> live;
    dict_.ForEachEntry(tree_.root(), [&](uint32_t vb_id, bool bit) {
      if (bit) live.push_back(vb_id);
    });
    for (uint32_t vb_id : live) {
      dict_.UnpackCandidate(vb_id, vb_scratch.data());
      w.vb.assign(vb_scratch.begin(), vb_scratch.end());
      w.vb_id = vb_id;
      RingCell total;
      total.Reset(mu);
      w.Walk(tree_.root(), root, &total);
    }
    dict_.AttachAggregates(std::move(counts), std::move(vals), mu);
    stats_.agg_bytes = dict_.entry_agg_counts().ByteSize() +
                       dict_.entry_agg_vals_pool().ByteSize();
  }
}

namespace {

// Recursion state for the pushed aggregate query: the same dispatch as the
// build walk (so stored cells are read with exactly the intervals they were
// computed under), emitting into a GroupAccumulator. A subtree whose
// interval is uniform on the group prefix collapses to one stored-cell
// read; everything else descends or drains.
struct AggQueryWalker {
  const CompressedRep* rep;
  const DelayBalancedTree* tree;
  const HeavyDictionary* dict;
  const LexDomain* domain;
  const std::vector<BoundAtom>* atoms;
  const BoundValuation* vb;
  uint32_t vb_id = HeavyDictionary::kNoValuation;
  int mu = 0;
  int k = 0;          // group prefix length
  int value_var = -1; // -1 for COUNT
  bool tree_mode = false;
  GroupAccumulator* acc;

  bool BetaMatches(TupleSpan beta) const {
    for (const BoundAtom& atom : *atoms)
      if (!atom.ContainsValuation(*vb, beta)) return false;
    return true;
  }

  void Drain(const FInterval& interval) const {
    auto e = rep->AnswerRange(*vb, interval);
    TupleBuffer buf(mu);
    for (;;) {
      buf.Clear();
      const size_t n = e->NextBatch(&buf, 256);
      for (size_t i = 0; i < n; ++i) acc->AddTuple(buf[i]);
      if (n < 256) break;
    }
  }

  void EmitCell(const FInterval& interval, uint64_t count,
                const Value* vals) const {
    Value sum = 0, min = 0, max = 0;
    if (value_var >= 0) {
      sum = vals[value_var];
      min = vals[mu + value_var];
      max = vals[2 * mu + value_var];
    }
    acc->AddCell(interval.lo.data(), count, sum, min, max);
  }

  void Walk(int node, const FInterval& interval) const {
    const HeavyDictionary::Bit bit = dict->Lookup(node, vb_id);
    if (bit == HeavyDictionary::Bit::kZero) return;
    const bool uniform = PrefixUniform(interval, k);
    if (bit == HeavyDictionary::Bit::kAbsent) {
      // Light pair: tree mode stored its cell at build; dictionary mode has
      // no entry to read, so the light subtree is drained (Prop. 6).
      if (tree_mode && uniform) {
        EmitCell(interval, tree->agg_count(node), tree->agg_vals(node));
        return;
      }
      Drain(interval);
      return;
    }
    if (uniform) {
      if (tree_mode) {
        EmitCell(interval, tree->agg_count(node), tree->agg_vals(node));
        return;
      }
      const size_t e = dict->LookupEntryIndex(node, vb_id);
      if (e != HeavyDictionary::kNoEntry) {
        EmitCell(interval, dict->entry_agg_count(e), dict->entry_agg_vals(e));
        return;
      }
      // Defensive: a 1-bit without an entry index cannot happen (the bit
      // lives in the entry), but fall through to the exact paths anyway.
    }
    if (tree->leaf(node)) {
      // Unit intervals are prefix-uniform for every k, so this is only
      // reachable through the defensive fall-through above.
      acc->AddTuple(interval.lo);
      return;
    }
    const TupleSpan beta = tree->beta(node);
    FInterval child;
    if (tree->left(node) >= 0 &&
        DelayBalancedTree::LeftInterval(interval, beta, *domain, &child))
      Walk(tree->left(node), child);
    if (interval.Contains(beta) && BetaMatches(beta)) acc->AddTuple(beta);
    if (tree->right(node) >= 0 &&
        DelayBalancedTree::RightInterval(interval, beta, *domain, &child))
      Walk(tree->right(node), child);
  }
};

}  // namespace

AggregateResult CompressedRep::AnswerAggregate(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  const int mu = view_.num_free();
  // The annotated walk answers lex-prefix group sets; everything else (and
  // reps built without annotations, boolean views, empty domains) folds the
  // enumeration — both paths produce value-identical results.
  if (!IsPrefixGroupSet(group_vars) || !has_aggregates() || tree_.empty() ||
      mu == 0) {
    auto e = Answer(vb);
    return GroupedDrainAggregate(*e, mu, group_vars, spec);
  }
  const int k = (int)group_vars.size();
  GroupAccumulator acc(k, spec);
  // Mirror the Alg2Enumerator pre-bind: an empty bound range on any atom
  // kills the whole request.
  for (const BoundAtom& atom : atoms_) {
    if (atom.SeekBound(vb).empty()) return acc.Finish();
  }
  AggQueryWalker w;
  w.rep = this;
  w.tree = &tree_;
  w.dict = &dict_;
  w.domain = &domain_;
  w.atoms = &atoms_;
  w.vb = &vb;
  w.vb_id = dict_.FindValuation(vb);
  w.mu = mu;
  w.k = k;
  w.value_var = spec.func == AggFunc::kCount ? -1 : spec.value_var;
  w.tree_mode = view_.num_bound() == 0;
  w.acc = &acc;
  w.Walk(tree_.root(),
         FInterval{domain_.MinTuple(), domain_.MaxTuple()});
  return acc.Finish();
}

namespace {

// Recursion state for FixupDictionary: walks the tree carrying intervals.
struct FixupWalker {
  const CompressedRep* rep;
  const DelayBalancedTree* tree;
  const LexDomain* domain;
  const std::vector<BoundAtom>* atoms;
  HeavyDictionary* dict;
  const std::function<bool(const BoundValuation&, const Tuple&)>* live;

  // Streams the join outputs of (vb, boxes) into `visit`; stops early when
  // visit returns false. Returns true if stopped early (a live output).
  bool AnyLiveOutput(const Tuple& vb, const std::vector<FBox>& boxes) const {
    const int mu = domain->mu();
    std::vector<JoinAtomInput> inputs;
    for (const BoundAtom& atom : *atoms) {
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = atom.SeekBound(vb);
      if (in.start.empty()) return false;
      in.start_level = atom.num_bound();
      for (int i = 0; i < atom.num_free(); ++i)
        in.levels.emplace_back(atom.free_positions()[i],
                               atom.num_bound() + i);
      inputs.push_back(std::move(in));
    }
    std::optional<JoinIterator> join;
    std::vector<LevelConstraint> constraints;
    Tuple vf;
    for (const FBox& box : boxes) {
      constraints.clear();
      for (int i = 0; i < mu; ++i)
        constraints.push_back(LevelConstraint::FromDim(box.dims[i]));
      if (!join.has_value()) {
        join.emplace(&inputs, mu, constraints);
      } else {
        join->Reset(constraints);
      }
      while (join->Next(&vf)) {
        if ((*live)(vb, vf)) return true;
      }
    }
    return false;
  }

  void Walk(int node, const FInterval& interval) {
    const std::vector<FBox> boxes = BoxDecompose(interval);
    std::vector<uint32_t> to_clear;
    Tuple vb_scratch(dict->vb_arity());  // reused across the entry sweep
    dict->ForEachEntry(node, [&](uint32_t vb_id, bool bit) {
      if (!bit) return;
      dict->UnpackCandidate(vb_id, vb_scratch.data());
      if (!AnyLiveOutput(vb_scratch, boxes)) to_clear.push_back(vb_id);
    });
    for (uint32_t id : to_clear) dict->SetBit(node, id, false);

    if (tree->leaf(node)) return;
    const TupleSpan beta = tree->beta(node);
    FInterval child;
    if (tree->left(node) >= 0 &&
        DelayBalancedTree::LeftInterval(interval, beta, *domain, &child))
      Walk(tree->left(node), child);
    if (tree->right(node) >= 0 &&
        DelayBalancedTree::RightInterval(interval, beta, *domain, &child))
      Walk(tree->right(node), child);
  }
};

}  // namespace

void CompressedRep::FixupDictionary(
    const std::function<bool(const BoundValuation&, const Tuple&)>& live) {
  if (tree_.empty() || view_.num_free() == 0) return;
  FixupWalker walker{this,   &tree_, &domain_, &atoms_,
                     &dict_, &live};
  FInterval root{domain_.MinTuple(), domain_.MaxTuple()};
  walker.Walk(tree_.root(), root);
}

}  // namespace cqc

#include "core/splitter.h"

#include <algorithm>

#include "util/logging.h"

namespace cqc {
namespace {

// First dimension of a PrefixRangeBox-style canonical box that is not a
// unit, i.e. its kRange dimension.
int RangeDim(const FBox& box) {
  for (int i = 0; i < box.mu(); ++i)
    if (box.dims[i].kind != FBoxDim::kUnit) {
      CQC_CHECK(box.dims[i].kind == FBoxDim::kRange);
      return i;
    }
  CQC_CHECK(false) << "all-unit box in a non-unit interval decomposition";
  __builtin_unreachable();
}

// Canonical box <c_0, ..., c_{j-1}, [lo, hi], *...> over mu dims.
FBox MakeBox(const Tuple& prefix, int j, Value lo, Value hi, int mu) {
  FBox box;
  box.dims.assign(mu, FBoxDim::Any());
  for (int i = 0; i < j; ++i) box.dims[i] = FBoxDim::Unit(prefix[i]);
  box.dims[j] = FBoxDim::Range(lo, hi);
  return box;
}

// All-unit box <c_0, ..., c_j, *...>.
FBox MakeUnitPrefixBox(const Tuple& prefix, int j, int mu) {
  FBox box;
  box.dims.assign(mu, FBoxDim::Any());
  for (int i = 0; i <= j; ++i) box.dims[i] = FBoxDim::Unit(prefix[i]);
  return box;
}

}  // namespace

SplitResult SplitInterval(const FInterval& interval, const LexDomain& domain,
                          const CostModel& cost) {
  CQC_CHECK(!interval.Empty());
  CQC_CHECK(!interval.IsUnit()) << "cannot split a unit interval";
  const int mu = domain.mu();

  // Line 1-2: decompose and total up.
  std::vector<FBox> boxes = BoxDecompose(interval);
  std::vector<double> box_cost(boxes.size());
  double total = 0;
  for (size_t i = 0; i < boxes.size(); ++i) {
    box_cost[i] = cost.BoxCost(boxes[i]);
    total += box_cost[i];
  }

  SplitResult result;
  result.total_cost = total;
  if (total <= 0) {
    // Degenerate: nothing costs anything; split anywhere (use lo).
    result.c = interval.lo;
    return result;
  }

  // Line 3: s = first box where the running sum exceeds T/2.
  size_t s = 0;
  double prefix_sum = 0;
  for (; s < boxes.size(); ++s) {
    prefix_sum += box_cost[s];
    if (prefix_sum > total / 2) break;
  }
  CQC_CHECK_LT(s, boxes.size());

  const FBox& bs = boxes[s];
  const int k = RangeDim(bs);

  // Line 4: gamma = cost of boxes strictly before B_s; Delta = T(B_s).
  double gamma = prefix_sum - box_cost[s];
  double delta = box_cost[s];

  // The split point: unit prefix copied from B_s, then chosen per dim.
  Tuple c(mu);
  for (int i = 0; i < k; ++i) c[i] = bs.dims[i].lo;

  // Lines 5-9: choose c_j for j = k .. mu-1.
  for (int j = k; j < mu; ++j) {
    // I_j: B_s's range at dim k, the full domain afterwards.
    const Value ij_lo = (j == k) ? bs.dims[k].lo : kBottom;
    const Value ij_hi = (j == k) ? bs.dims[k].hi : kTop;

    // Candidate values: active domain of dim j restricted to [ij_lo, ij_hi].
    const std::vector<Value>& dom = domain.dom(j);
    auto cand_begin =
        std::lower_bound(dom.begin(), dom.end(), ij_lo) - dom.begin();
    auto cand_end =
        std::upper_bound(dom.begin(), dom.end(), ij_hi) - dom.begin();
    CQC_CHECK_LT(cand_begin, cand_end)
        << "no active value in split dimension " << j;

    const double target = std::min(delta, total / 2 - gamma);

    // Binary search the least candidate v with
    //   T(<c_0..c_{j-1}, [ij_lo, v]>) >= target    (Lemma 3).
    auto prefix_cost = [&](Value v) {
      return cost.BoxCost(MakeBox(c, j, ij_lo, v, mu));
    };
    long lo = cand_begin, hi = cand_end - 1;
    while (lo < hi) {
      long mid = lo + (hi - lo) / 2;
      if (prefix_cost(dom[mid]) >= target)
        hi = mid;
      else
        lo = mid + 1;
    }
    c[j] = dom[lo];

    // Lines 7-8: Delta_j = T(<c_0..c_j>), gamma_j += T(prefix, [ij_lo, c_j)).
    delta = cost.BoxCost(MakeUnitPrefixBox(c, j, mu));
    if (c[j] > ij_lo) {
      gamma += cost.BoxCost(MakeBox(c, j, ij_lo, c[j] - 1, mu));
    }
  }

  CQC_CHECK(interval.Contains(c));
  result.c = std::move(c);
  return result;
}

}  // namespace cqc

// PackedTuplePool: fixed-arity tuples bit-packed at per-column widths.
//
// The HeavyDictionary's candidate pool stores every interned bound
// valuation; as raw u64 values it costs arity * 8 bytes per candidate even
// though real domains are dense small integers. This pool packs each column
// to ceil(log2(max+1)) bits, rows laid out back to back in one contiguous
// word array:
//
//   row bits   = sum of column widths (constant per pool)
//   bit offset = row * row_bits + prefix[col]
//
// Decoding is branch-free on the data: a field spans at most two 64-bit
// words, and the two-word splice below compiles to shifts/or/and with no
// data-dependent branches (the off == 0 case is folded by the
// (x << 1) << (63 - off) idiom, which is 0 exactly when off == 0); the
// only branch is the per-column constant width == 0 test, which the
// predictor resolves once. The words array is padded with one zero word so
// the w+1 read of a width > 0 field never leaves the allocation (width-0
// fields skip the read entirely — their offset may sit past the pad).
//
// The pool is immutable once built — Pack() over the finished flat pool or
// FromFlatParts() from a deserialized blob — and safe for concurrent reads.
// The word array is a ColStore (util/col_store.h): owned after Pack(), and
// optionally *borrowed* straight out of an mmap'ed rep file by the
// zero-copy load path. The on-disk word block includes the trailing zero
// pad word (it is part of WordCount()), so borrowed decode reads of word
// w+1 stay inside the mapped block.
#ifndef CQC_CORE_BITPACK_H_
#define CQC_CORE_BITPACK_H_

#include <cstdint>
#include <vector>

#include "simd/kernels.h"
#include "util/col_store.h"
#include "util/common.h"
#include "util/logging.h"

namespace cqc {

class PackedTuplePool {
 public:
  PackedTuplePool() = default;

  /// Packs `flat` (row-major, size a multiple of `arity`) at the minimal
  /// per-column widths. arity 0 keeps only the row count.
  static PackedTuplePool Pack(const std::vector<Value>& flat, int arity,
                              size_t num_rows) {
    PackedTuplePool p;
    p.arity_ = arity;
    p.num_rows_ = num_rows;
    p.widths_.assign((size_t)arity, 0);
    if (arity > 0) {
      CQC_CHECK_EQ(flat.size(), num_rows * (size_t)arity);
      for (size_t r = 0; r < num_rows; ++r)
        for (int c = 0; c < arity; ++c) {
          const Value v = flat[r * arity + c];
          const uint8_t need = v == 0 ? 0 : (uint8_t)(64 - __builtin_clzll(v));
          if (need > p.widths_[c]) p.widths_[c] = need;
        }
    }
    p.FinishLayout();
    std::vector<uint64_t> words(p.WordCount(), 0);
    for (size_t r = 0; r < num_rows; ++r)
      for (int c = 0; c < arity; ++c)
        PutBits(words.data(), r * p.row_bits_ + p.plan_[c].bit, p.widths_[c],
                flat[r * (size_t)arity + c]);
    p.words_ = ColStore<uint64_t>(std::move(words));
    return p;
  }

  /// Rebuilds from serialized parts. `words` must be exactly the padded
  /// word count for (num_rows, widths); CHECK-fails otherwise (callers
  /// validate sizes before constructing). `words` may be a borrowed
  /// ColStore over a mapping (the zero-copy load path); vectors convert
  /// implicitly for the owned path.
  static PackedTuplePool FromFlatParts(int arity, size_t num_rows,
                                       std::vector<uint8_t> widths,
                                       ColStore<uint64_t> words) {
    PackedTuplePool p;
    p.arity_ = arity;
    p.num_rows_ = num_rows;
    p.widths_ = std::move(widths);
    CQC_CHECK_EQ(p.widths_.size(), (size_t)arity);
    p.FinishLayout();
    CQC_CHECK_EQ(words.size(), p.WordCount());
    p.words_ = std::move(words);
    return p;
  }

  size_t size() const { return num_rows_; }
  int arity() const { return arity_; }
  size_t row_bits() const { return row_bits_; }

  /// Column `col` of row `id`. Branch-free two-word extract.
  Value At(size_t id, int col) const {
    return GetBits(id * row_bits_ + plan_[col].bit, plan_[col].mask);
  }

  /// Unpacks row `id` into `out` (arity() slots). The per-column loop body
  /// is a fixed shift/or/and sequence — no data-dependent branches.
  void UnpackRow(size_t id, Value* out) const {
    const size_t base = id * row_bits_;
    for (int c = 0; c < arity_; ++c)
      out[c] = GetBits(base + plan_[c].bit, plan_[c].mask);
  }

  /// Unpacks rows [first, first + n) into `out` (row-major, n * arity()
  /// slots) through the dispatched SIMD kernel — identical output to n
  /// UnpackRow calls, decoded in 4-row gather blocks where the CPU allows.
  void UnpackRows(size_t first, size_t n, Value* out) const {
    if (n == 0 || arity_ == 0) return;
    simd::UnpackRows(words_.data(), plan_.data(), arity_, row_bits_, first, n,
                     out);
  }

  /// Row `id` == `t`? (t.size() must equal arity()).
  bool RowEquals(size_t id, TupleSpan t) const {
    const size_t base = id * row_bits_;
    size_t c = 0;
    while (c < (size_t)arity_ &&
           GetBits(base + plan_[c].bit, plan_[c].mask) == t[c])
      ++c;
    return c == (size_t)arity_;
  }

  size_t MemoryBytes() const {
    // Borrowed word blocks charge their mapped extent (the logical size):
    // the pool is the dominant dictionary component and pricing it at zero
    // would let a byte-budgeted planner treat a 100 MB rep as free.
    return sizeof(*this) +
           (words_.borrowed() ? words_.ByteSize() : words_.MemoryBytes()) +
           widths_.capacity() +
           plan_.capacity() * sizeof(simd::PackedColSpec);
  }

  /// True when the word block borrows external (mapped) storage.
  bool borrowed() const { return words_.borrowed(); }

  // Serialization raw parts.
  const std::vector<uint8_t>& widths() const { return widths_; }
  const ColStore<uint64_t>& words() const { return words_; }

 private:
  // Derives the decode plan from widths_: one contiguous array of
  // (bit offset, width, mask) per column, so decode loops walk a single
  // cache-friendly spec array instead of three parallel vectors. The same
  // plan feeds the SIMD batch kernel directly.
  void FinishLayout() {
    plan_.resize(widths_.size());
    row_bits_ = 0;
    for (size_t c = 0; c < widths_.size(); ++c) {
      CQC_CHECK_LE(widths_[c], 64);
      plan_[c].bit = (uint32_t)row_bits_;
      plan_[c].width = widths_[c];
      plan_[c].mask = widths_[c] == 64 ? ~0ull : ((1ull << widths_[c]) - 1);
      row_bits_ += widths_[c];
    }
  }

  // Payload words plus one zero pad word (so GetBits may read word w+1).
  // A pool with no payload bits needs no words at all: GetBits is never
  // reached (zero rows, or zero-width rows whose per-column loop is empty).
  size_t WordCount() const {
    const size_t payload_bits = num_rows_ * row_bits_;
    return payload_bits == 0 ? 0 : (payload_bits + 63) / 64 + 1;
  }

  Value GetBits(size_t bitpos, uint64_t mask) const {
    // Width-0 columns (all-zero values) own no bits: their offset can sit
    // at or past the payload end — possibly past the pad word, or in an
    // entirely empty words array — so they must not touch memory at all.
    if (mask == 0) return 0;
    const size_t w = bitpos >> 6;
    const unsigned off = (unsigned)(bitpos & 63);
    const uint64_t lo = words_[w] >> off;
    const uint64_t hi = (words_[w + 1] << 1) << (63 - off);
    return (lo | hi) & mask;
  }

  static void PutBits(uint64_t* words, size_t bitpos, uint8_t width,
                      Value v) {
    if (width == 0) return;
    const size_t w = bitpos >> 6;
    const unsigned off = (unsigned)(bitpos & 63);
    words[w] |= v << off;
    if (off + width > 64) words[w + 1] |= v >> (64 - off);
  }

  int arity_ = 0;
  size_t num_rows_ = 0;
  size_t row_bits_ = 0;
  std::vector<uint8_t> widths_;
  std::vector<simd::PackedColSpec> plan_;  // derived from widths_
  ColStore<uint64_t> words_;  // owned after Pack(); borrowed on mmap load
};

}  // namespace cqc

#endif  // CQC_CORE_BITPACK_H_

// The delay-balanced tree (§4.3, step 1).
//
// An annotated binary tree over f-intervals: the root covers the whole free
// domain D_f; a node at level l whose cost T(I(w)) reaches the level
// threshold tau_l = tau * 2^{-l(1-1/alpha)} is split at the balanced point
// beta(w) computed by Algorithm 1, producing children over [a, beta) and
// (beta, c]. Lemma 4: T halves per level, so depth is O(log T) and size
// O(T / tau^alpha)-ish.
//
// Nodes store only beta and child links; a node's interval is recomputed
// from the root interval and the beta values along the path (children are
// [lo, pred(beta)] and [succ(beta), hi] on the active-domain grid), which
// keeps per-node space at O(mu) values.
#ifndef CQC_CORE_DBTREE_H_
#define CQC_CORE_DBTREE_H_

#include <algorithm>
#include <vector>

#include "core/cost_model.h"
#include "core/finterval.h"
#include "core/lex_domain.h"

namespace cqc {

struct DbTreeNode {
  Tuple beta;          // split point; empty for leaves
  int32_t left = -1;   // child over [lo, pred(beta)]
  int32_t right = -1;  // child over [succ(beta), hi]
  float cost = 0;      // T(I(w)) at build time (diagnostic)
  uint16_t level = 0;
  bool leaf = true;
};

class DelayBalancedTree {
 public:
  struct BuildParams {
    double tau = 1.0;
    double alpha = 1.0;        // slack of the cover on the free variables
    size_t max_nodes = 1u << 27;  // safety valve
  };

  /// Empty tree (used when some free domain is empty).
  DelayBalancedTree() = default;

  static DelayBalancedTree Build(const LexDomain& domain,
                                 const CostModel& cost, BuildParams params);

  /// Reassembles a tree from stored nodes (deserialization only).
  static DelayBalancedTree FromNodes(std::vector<DbTreeNode> nodes) {
    DelayBalancedTree t;
    for (const DbTreeNode& n : nodes)
      t.max_depth_ = std::max(t.max_depth_, (int)n.level);
    t.nodes_ = std::move(nodes);
    return t;
  }

  bool empty() const { return nodes_.empty(); }
  int root() const { return nodes_.empty() ? -1 : 0; }
  size_t size() const { return nodes_.size(); }
  const DbTreeNode& node(int i) const { return nodes_[i]; }
  int max_depth() const { return max_depth_; }

  /// Level threshold tau_l = tau * 2^(-l (1 - 1/alpha)).
  static double Threshold(double tau, double alpha, int level);

  /// Child interval derivation on the grid; returns false if empty.
  static bool LeftInterval(const FInterval& parent, const Tuple& beta,
                           const LexDomain& domain, FInterval* out);
  static bool RightInterval(const FInterval& parent, const Tuple& beta,
                            const LexDomain& domain, FInterval* out);

  size_t MemoryBytes() const;

 private:
  int BuildNode(const LexDomain& domain, const CostModel& cost,
                const BuildParams& params, const FInterval& interval,
                int level);

  std::vector<DbTreeNode> nodes_;
  int max_depth_ = 0;
};

}  // namespace cqc

#endif  // CQC_CORE_DBTREE_H_

// The delay-balanced tree (§4.3, step 1).
//
// An annotated binary tree over f-intervals: the root covers the whole free
// domain D_f; a node at level l whose cost T(I(w)) reaches the level
// threshold tau_l = tau * 2^{-l(1-1/alpha)} is split at the balanced point
// beta(w) computed by Algorithm 1, producing children over [a, beta) and
// (beta, c]. Lemma 4: T halves per level, so depth is O(log T) and size
// O(T / tau^alpha)-ish.
//
// Storage is struct-of-arrays: nodes are rows of parallel flat vectors
// (split-point pool, child offsets, cost/level/leaf annotations) indexed by
// node id, with node 0 the root and children at higher ids (preorder). Every
// split point lives in one contiguous `beta` pool at offset id * mu, so a
// lookup is pointer arithmetic (returned as TupleSpan), traversal touches
// adjacent cache lines, and the whole tree serializes as a handful of flat
// array blocks. The columns are ColStores (util/col_store.h): owned after
// Build(), or borrowed straight out of an mmap'ed rep file by the zero-copy
// load path — the accessor surface is identical either way. A node's
// interval is still recomputed from the root interval and the betas along
// the path, keeping per-node space O(mu).
#ifndef CQC_CORE_DBTREE_H_
#define CQC_CORE_DBTREE_H_

#include <algorithm>
#include <vector>

#include "core/cost_model.h"
#include "core/finterval.h"
#include "core/lex_domain.h"
#include "util/col_store.h"

namespace cqc {

/// Materialized row view of one tree node — inspection, tests and printing;
/// the hot paths use the flat per-field accessors on DelayBalancedTree.
struct DbTreeNode {
  Tuple beta;          // split point; empty for leaves
  int32_t left = -1;   // child over [lo, pred(beta)]
  int32_t right = -1;  // child over [succ(beta), hi]
  float cost = 0;      // T(I(w)) at build time (diagnostic)
  uint16_t level = 0;
  bool leaf = true;
};

class DelayBalancedTree {
 public:
  struct BuildParams {
    double tau = 1.0;
    double alpha = 1.0;        // slack of the cover on the free variables
    size_t max_nodes = 1u << 27;  // safety valve
  };

  /// Empty tree (used when some free domain is empty).
  DelayBalancedTree() = default;

  static DelayBalancedTree Build(const LexDomain& domain,
                                 const CostModel& cost, BuildParams params);

  /// Reassembles a tree from its flat arrays (deserialization only). The
  /// columns are the SoA blocks: `beta` holds num_nodes * mu values. Each
  /// may be owned (vectors convert implicitly) or borrowed from a mapping.
  static DelayBalancedTree FromFlat(int mu, ColStore<Value> beta,
                                    ColStore<int32_t> left,
                                    ColStore<int32_t> right,
                                    ColStore<float> cost,
                                    ColStore<uint16_t> level,
                                    ColStore<uint8_t> leaf);

  bool empty() const { return left_.empty(); }
  int root() const { return empty() ? -1 : 0; }
  size_t size() const { return left_.size(); }
  int max_depth() const { return max_depth_; }
  /// Arity of every split point (the number of free variables).
  int mu() const { return mu_; }

  // Flat per-field accessors (the hot-path interface).
  int32_t left(int i) const { return left_[i]; }
  int32_t right(int i) const { return right_[i]; }
  float cost(int i) const { return cost_[i]; }
  uint16_t level(int i) const { return level_[i]; }
  bool leaf(int i) const { return leaf_[i] != 0; }
  /// The split point of node `i` as a view into the contiguous pool.
  /// Meaningless (all zeros) for leaves.
  TupleSpan beta(int i) const {
    return TupleSpan(beta_.data() + (size_t)i * mu_, (size_t)mu_);
  }

  /// Materialized row view of node `i` (tests / diagnostics; allocates).
  DbTreeNode node(int i) const {
    DbTreeNode n;
    if (!leaf(i)) n.beta = beta(i).ToTuple();
    n.left = left_[i];
    n.right = right_[i];
    n.cost = cost_[i];
    n.level = level_[i];
    n.leaf = leaf(i);
    return n;
  }

  // --- per-subtree aggregate annotations (ring cells) ---------------------
  // Optional SoA columns alongside the node rows, attached after Build /
  // deserialization for boolean-bound-free (num_bound == 0) reps: node i
  // carries the result count of its subtree plus, per free variable, the
  // ring sum / min / max over the subtree's answers (layout sums[mu] |
  // mins[mu] | maxs[mu], see core/aggregate.h RingCell).

  /// `counts` has one entry per node, `vals` 3 * mu per node. Either owned
  /// vectors (annotation build) or borrowed mapped blocks (zero-copy load).
  void AttachAggregates(ColStore<uint64_t> counts, ColStore<Value> vals);

  bool has_aggregates() const { return !agg_count_.empty(); }
  uint64_t agg_count(int i) const { return agg_count_[i]; }
  /// The 3 * mu annotation values of node `i`.
  const Value* agg_vals(int i) const {
    return agg_vals_.data() + (size_t)i * 3 * mu_;
  }

  // Raw column access (serialization).
  const ColStore<Value>& beta_pool() const { return beta_; }
  const ColStore<int32_t>& lefts() const { return left_; }
  const ColStore<int32_t>& rights() const { return right_; }
  const ColStore<float>& costs() const { return cost_; }
  const ColStore<uint16_t>& levels() const { return level_; }
  const ColStore<uint8_t>& leaf_flags() const { return leaf_; }
  const ColStore<uint64_t>& agg_counts() const { return agg_count_; }
  const ColStore<Value>& agg_vals_pool() const { return agg_vals_; }

  /// True when any column borrows external (mapped) storage.
  bool borrowed() const { return beta_.borrowed() || left_.borrowed(); }

  /// Level threshold tau_l = tau * 2^(-l (1 - 1/alpha)).
  static double Threshold(double tau, double alpha, int level);

  /// Child interval derivation on the grid; returns false if empty.
  static bool LeftInterval(const FInterval& parent, TupleSpan beta,
                           const LexDomain& domain, FInterval* out);
  static bool RightInterval(const FInterval& parent, TupleSpan beta,
                            const LexDomain& domain, FInterval* out);

  size_t MemoryBytes() const;

 private:
  int BuildNode(const LexDomain& domain, const CostModel& cost,
                const BuildParams& params, const FInterval& interval,
                int level);

  // SoA node columns; row i = node i, preorder (root first, left before
  // right). beta_ is the flat split-point pool, mu_ values per node.
  int mu_ = 0;
  ColStore<Value> beta_;
  ColStore<int32_t> left_;
  ColStore<int32_t> right_;
  ColStore<float> cost_;
  ColStore<uint16_t> level_;
  ColStore<uint8_t> leaf_;
  ColStore<uint64_t> agg_count_;  // optional: one per node
  ColStore<Value> agg_vals_;      // optional: 3 * mu per node
  int max_depth_ = 0;
};

}  // namespace cqc

#endif  // CQC_CORE_DBTREE_H_

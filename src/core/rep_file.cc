#include "core/rep_file.h"

#include <cstdio>

#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define CQC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CQC_HAVE_MMAP 0
#include <fstream>
#endif

namespace cqc {

Result<std::shared_ptr<RepFile>> RepFile::Open(const std::string& path) {
  // "rep_file/open" models the open/stat failing (missing snapshot, bad
  // permissions); "rep_file/mmap" models the mapping itself failing
  // (address-space or memory pressure) — distinct because the cache
  // retry policy treats them identically but chaos tests want to hit the
  // cleanup paths of each.
  CQC_FAILPOINT_RESULT("rep_file/open");
  std::shared_ptr<RepFile> f(new RepFile());
  f->path_ = path;
#if CQC_HAVE_MMAP
  f->fd_ = ::open(path.c_str(), O_RDONLY);
  if (f->fd_ < 0) return Status::Error("cannot open " + path);
  struct stat st;
  if (::fstat(f->fd_, &st) != 0 || st.st_size < 0)
    return Status::Error("cannot stat " + path);
  f->size_ = (size_t)st.st_size;
  if (f->size_ == 0) return f;  // empty file: no mapping needed
  CQC_FAILPOINT_RESULT("rep_file/mmap");
  void* map = ::mmap(nullptr, f->size_, PROT_READ, MAP_PRIVATE, f->fd_, 0);
  if (map == MAP_FAILED) {
    f->size_ = 0;
    return Status::Error("mmap failed for " + path);
  }
  f->map_ = map;
  f->data_ = static_cast<const uint8_t*>(map);
#else
  // No mmap on this platform: same interface over a heap read (open is
  // O(bytes), but every caller keeps working unchanged).
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::Error("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff n = in.tellg();
  if (n < 0) return Status::Error("cannot stat " + path);
  in.seekg(0);
  f->heap_.resize((size_t)n);
  if (n > 0) in.read(reinterpret_cast<char*>(f->heap_.data()), n);
  if (!in.good() && n > 0) return Status::Error("read failed: " + path);
  f->data_ = f->heap_.data();
  f->size_ = f->heap_.size();
#endif
  return f;
}

RepFile::~RepFile() {
#if CQC_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
#endif
}

size_t RepFile::ResidentBytes() const {
#if CQC_HAVE_MMAP
  if (map_ == nullptr) return heap_.size();
  const size_t page = (size_t)::sysconf(_SC_PAGESIZE);
  const size_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(pages);
#if defined(__linux__)
  if (::mincore(map_, size_, vec.data()) != 0) return size_;
#else
  if (::mincore(map_, size_, reinterpret_cast<char*>(vec.data())) != 0)
    return size_;
#endif
  size_t resident_pages = 0;
  for (unsigned char v : vec) resident_pages += v & 1;
  // The tail page is partial: charge only the mapped bytes on it.
  size_t bytes = resident_pages * page;
  if (!vec.empty() && (vec.back() & 1) && size_ % page != 0)
    bytes -= page - size_ % page;
  return bytes;
#else
  return heap_.size();
#endif
}

}  // namespace cqc

#include "core/dbtree.h"

#include <cmath>

#include "core/splitter.h"
#include "util/logging.h"

namespace cqc {

double DelayBalancedTree::Threshold(double tau, double alpha, int level) {
  return tau * std::pow(2.0, -(double)level * (1.0 - 1.0 / alpha));
}

bool DelayBalancedTree::LeftInterval(const FInterval& parent,
                                     const Tuple& beta,
                                     const LexDomain& domain, FInterval* out) {
  Tuple hi = beta;
  if (!domain.Pred(hi)) return false;  // beta is the grid minimum
  if (LexDomain::Compare(parent.lo, hi) > 0) return false;
  out->lo = parent.lo;
  out->hi = std::move(hi);
  return true;
}

bool DelayBalancedTree::RightInterval(const FInterval& parent,
                                      const Tuple& beta,
                                      const LexDomain& domain,
                                      FInterval* out) {
  Tuple lo = beta;
  if (!domain.Succ(lo)) return false;  // beta is the grid maximum
  if (LexDomain::Compare(lo, parent.hi) > 0) return false;
  out->lo = std::move(lo);
  out->hi = parent.hi;
  return true;
}

DelayBalancedTree DelayBalancedTree::Build(const LexDomain& domain,
                                           const CostModel& cost,
                                           BuildParams params) {
  DelayBalancedTree tree;
  if (domain.mu() == 0 || domain.AnyEmpty()) return tree;
  CQC_CHECK_GT(params.tau, 0.0);
  CQC_CHECK_GE(params.alpha, 1.0);
  FInterval root{domain.MinTuple(), domain.MaxTuple()};
  tree.BuildNode(domain, cost, params, root, 0);
  return tree;
}

int DelayBalancedTree::BuildNode(const LexDomain& domain,
                                 const CostModel& cost,
                                 const BuildParams& params,
                                 const FInterval& interval, int level) {
  CQC_CHECK_LT(nodes_.size(), params.max_nodes)
      << "delay-balanced tree exceeded the node budget";
  CQC_CHECK_LT(level, 4096) << "delay-balanced tree too deep";
  const double t = cost.IntervalCost(interval);
  const double threshold = Threshold(params.tau, params.alpha, level);

  const int id = (int)nodes_.size();
  nodes_.emplace_back();
  nodes_[id].level = (uint16_t)level;
  nodes_[id].cost = (float)t;
  max_depth_ = std::max(max_depth_, level);

  if (t < threshold || interval.IsUnit()) {
    return id;  // leaf (unit intervals cannot be split further)
  }

  SplitResult split = SplitInterval(interval, domain, cost);
  nodes_[id].leaf = false;
  nodes_[id].beta = split.c;

  FInterval child;
  if (LeftInterval(interval, split.c, domain, &child) &&
      cost.IntervalCost(child) > 0) {
    int left = BuildNode(domain, cost, params, child, level + 1);
    nodes_[id].left = left;
  }
  if (RightInterval(interval, split.c, domain, &child) &&
      cost.IntervalCost(child) > 0) {
    int right = BuildNode(domain, cost, params, child, level + 1);
    nodes_[id].right = right;
  }
  return id;
}

size_t DelayBalancedTree::MemoryBytes() const {
  size_t bytes = sizeof(*this) + nodes_.capacity() * sizeof(DbTreeNode);
  for (const auto& n : nodes_) bytes += n.beta.capacity() * sizeof(Value);
  return bytes;
}

}  // namespace cqc

#include "core/dbtree.h"

#include <cmath>
#include <cstring>

#include "core/splitter.h"
#include "util/logging.h"

namespace cqc {

double DelayBalancedTree::Threshold(double tau, double alpha, int level) {
  return tau * std::pow(2.0, -(double)level * (1.0 - 1.0 / alpha));
}

bool DelayBalancedTree::LeftInterval(const FInterval& parent, TupleSpan beta,
                                     const LexDomain& domain, FInterval* out) {
  // Writes into *out directly (callers pass a reused scratch; `out` must
  // not alias `parent`) so the per-node hot path allocates nothing once the
  // scratch tuples have capacity.
  out->hi.assign(beta.begin(), beta.end());
  if (!domain.Pred(out->hi)) return false;  // beta is the grid minimum
  if (LexDomain::Compare(parent.lo, out->hi) > 0) return false;
  out->lo = parent.lo;
  return true;
}

bool DelayBalancedTree::RightInterval(const FInterval& parent, TupleSpan beta,
                                      const LexDomain& domain,
                                      FInterval* out) {
  out->lo.assign(beta.begin(), beta.end());
  if (!domain.Succ(out->lo)) return false;  // beta is the grid maximum
  if (LexDomain::Compare(out->lo, parent.hi) > 0) return false;
  out->hi = parent.hi;
  return true;
}

DelayBalancedTree DelayBalancedTree::Build(const LexDomain& domain,
                                           const CostModel& cost,
                                           BuildParams params) {
  DelayBalancedTree tree;
  if (domain.mu() == 0 || domain.AnyEmpty()) return tree;
  CQC_CHECK_GT(params.tau, 0.0);
  CQC_CHECK_GE(params.alpha, 1.0);
  tree.mu_ = domain.mu();
  FInterval root{domain.MinTuple(), domain.MaxTuple()};
  tree.BuildNode(domain, cost, params, root, 0);
  return tree;
}

DelayBalancedTree DelayBalancedTree::FromFlat(
    int mu, ColStore<Value> beta, ColStore<int32_t> left,
    ColStore<int32_t> right, ColStore<float> cost, ColStore<uint16_t> level,
    ColStore<uint8_t> leaf) {
  const size_t n = left.size();
  CQC_CHECK_EQ(beta.size(), n * (size_t)mu);
  CQC_CHECK_EQ(right.size(), n);
  CQC_CHECK_EQ(cost.size(), n);
  CQC_CHECK_EQ(level.size(), n);
  CQC_CHECK_EQ(leaf.size(), n);
  DelayBalancedTree t;
  t.mu_ = mu;
  t.beta_ = std::move(beta);
  t.left_ = std::move(left);
  t.right_ = std::move(right);
  t.cost_ = std::move(cost);
  t.level_ = std::move(level);
  t.leaf_ = std::move(leaf);
  for (uint16_t l : t.level_) t.max_depth_ = std::max(t.max_depth_, (int)l);
  return t;
}

int DelayBalancedTree::BuildNode(const LexDomain& domain,
                                 const CostModel& cost,
                                 const BuildParams& params,
                                 const FInterval& interval, int level) {
  CQC_CHECK_LT(size(), params.max_nodes)
      << "delay-balanced tree exceeded the node budget";
  CQC_CHECK_LT(level, 4096) << "delay-balanced tree too deep";
  const double t = cost.IntervalCost(interval);
  const double threshold = Threshold(params.tau, params.alpha, level);

  // Append one SoA row (leaf defaults; beta slot zero-filled).
  const int id = (int)size();
  beta_.resize(beta_.size() + mu_, 0);
  left_.push_back(-1);
  right_.push_back(-1);
  cost_.push_back((float)t);
  level_.push_back((uint16_t)level);
  leaf_.push_back(1);
  max_depth_ = std::max(max_depth_, level);

  if (t < threshold || interval.IsUnit()) {
    return id;  // leaf (unit intervals cannot be split further)
  }

  SplitResult split = SplitInterval(interval, domain, cost);
  leaf_.mutable_data()[id] = 0;
  CQC_CHECK_EQ(split.c.size(), (size_t)mu_);
  std::memcpy(beta_.mutable_data() + (size_t)id * mu_, split.c.data(),
              mu_ * sizeof(Value));

  FInterval child;
  if (LeftInterval(interval, split.c, domain, &child) &&
      cost.IntervalCost(child) > 0) {
    int left = BuildNode(domain, cost, params, child, level + 1);
    left_.mutable_data()[id] = left;
  }
  if (RightInterval(interval, split.c, domain, &child) &&
      cost.IntervalCost(child) > 0) {
    int right = BuildNode(domain, cost, params, child, level + 1);
    right_.mutable_data()[id] = right;
  }
  return id;
}

void DelayBalancedTree::AttachAggregates(ColStore<uint64_t> counts,
                                         ColStore<Value> vals) {
  CQC_CHECK_EQ(counts.size(), size());
  CQC_CHECK_EQ(vals.size(), size() * (size_t)(3 * mu_));
  agg_count_ = std::move(counts);
  agg_vals_ = std::move(vals);
}

size_t DelayBalancedTree::MemoryBytes() const {
  // Borrowed (mapped) columns charge their logical extent — see the
  // matching note in PackedTuplePool::MemoryBytes.
  const auto col = [](const auto& c) {
    return c.borrowed() ? c.ByteSize() : c.MemoryBytes();
  };
  return sizeof(*this) + col(beta_) + col(left_) + col(right_) + col(cost_) +
         col(level_) + col(leaf_) + col(agg_count_) + col(agg_vals_);
}

}  // namespace cqc

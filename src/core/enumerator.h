// Pull-based tuple enumeration.
//
// Every answering path in the library (Theorem 1, Theorem 2, both
// baselines) yields results through this interface so the harness can
// measure delay — the maximum time (or operation count) between two
// consecutive outputs — exactly as §2.3 defines it.
#ifndef CQC_CORE_ENUMERATOR_H_
#define CQC_CORE_ENUMERATOR_H_

#include <memory>
#include <set>
#include <vector>

#include "util/common.h"
#include "util/op_counter.h"
#include "util/timer.h"

namespace cqc {

class TupleEnumerator {
 public:
  virtual ~TupleEnumerator() = default;
  /// Writes the next tuple into `out`; returns false when exhausted.
  virtual bool Next(Tuple* out) = 0;
};

/// An enumerator over an empty result.
class EmptyEnumerator : public TupleEnumerator {
 public:
  bool Next(Tuple* out) override { return false; }
};

/// An enumerator over a fixed list of tuples.
class VectorEnumerator : public TupleEnumerator {
 public:
  explicit VectorEnumerator(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Drains an enumerator into a vector.
inline std::vector<Tuple> CollectAll(TupleEnumerator& e) {
  std::vector<Tuple> out;
  Tuple t;
  while (e.Next(&t)) out.push_back(t);
  return out;
}

/// Projection with duplicate elimination — the paper's §3.2/§8 projection
/// extension in its simple form: project each output onto `positions` and
/// emit each distinct projection once. Correct for any inner enumerator;
/// the O~(tau) delay guarantee does NOT carry over (runs of tuples sharing
/// a projection are skipped), which is exactly the open problem the paper
/// defers. Memory grows with the number of distinct projections.
class ProjectingEnumerator : public TupleEnumerator {
 public:
  ProjectingEnumerator(std::unique_ptr<TupleEnumerator> inner,
                       std::vector<int> positions)
      : inner_(std::move(inner)), positions_(std::move(positions)) {}

  bool Next(Tuple* out) override {
    Tuple t;
    while (inner_->Next(&t)) {
      Tuple proj(positions_.size());
      for (size_t i = 0; i < positions_.size(); ++i)
        proj[i] = t[positions_[i]];
      if (!seen_.insert(proj).second) continue;
      *out = std::move(proj);
      return true;
    }
    return false;
  }

 private:
  std::unique_ptr<TupleEnumerator> inner_;
  std::vector<int> positions_;
  std::set<Tuple> seen_;
};

/// Per-access-request measurement: total answer time, output count, and the
/// worst observed delay in both wall-clock time and abstract operations
/// (index probes / join steps; see util/op_counter.h). The "delay" includes
/// the time to the first tuple and the time to detect exhaustion, matching
/// the paper's definition.
struct DelayProfile {
  size_t num_tuples = 0;
  double total_seconds = 0;
  double max_delay_seconds = 0;
  uint64_t total_ops = 0;
  uint64_t max_delay_ops = 0;
};

inline DelayProfile MeasureEnumeration(TupleEnumerator& e,
                                       std::vector<Tuple>* sink = nullptr) {
  DelayProfile p;
  WallTimer total;
  WallTimer gap;
  uint64_t ops_start = ops::Now();
  uint64_t gap_ops = ops_start;
  Tuple t;
  for (;;) {
    bool more = e.Next(&t);
    double d = gap.Seconds();
    uint64_t o = ops::Now() - gap_ops;
    p.max_delay_seconds = std::max(p.max_delay_seconds, d);
    p.max_delay_ops = std::max(p.max_delay_ops, o);
    if (!more) break;
    ++p.num_tuples;
    if (sink) sink->push_back(t);
    gap.Reset();
    gap_ops = ops::Now();
  }
  p.total_seconds = total.Seconds();
  p.total_ops = ops::Now() - ops_start;
  return p;
}

}  // namespace cqc

#endif  // CQC_CORE_ENUMERATOR_H_

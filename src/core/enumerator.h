// Pull-based tuple enumeration.
//
// Every answering path in the library (Theorem 1, Theorem 2, both
// baselines) yields results through this interface so the harness can
// measure delay — the maximum time (or operation count) between two
// consecutive outputs — exactly as §2.3 defines it.
#ifndef CQC_CORE_ENUMERATOR_H_
#define CQC_CORE_ENUMERATOR_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "util/common.h"
#include "util/hashing.h"
#include "util/op_counter.h"
#include "util/request_context.h"
#include "util/timer.h"
#include "util/tuple_arena.h"
#include "util/tuple_buffer.h"

namespace cqc {

class TupleEnumerator {
 public:
  virtual ~TupleEnumerator() = default;
  /// Writes the next tuple into `out`; returns false when exhausted.
  virtual bool Next(Tuple* out) = 0;

  /// Batch pull: appends up to `max_tuples` tuples to `out` (which must have
  /// the stream's arity; it is NOT cleared) and returns how many were
  /// appended. A return < max_tuples means the stream is exhausted. The
  /// stream is shared with Next(): mixing the two never duplicates or drops
  /// tuples. The base implementation loops Next(); hot enumerators override
  /// it to fill the caller-owned buffer without per-tuple virtual dispatch
  /// or allocation.
  virtual size_t NextBatch(TupleBuffer* out, size_t max_tuples) {
    Tuple t;
    size_t n = 0;
    while (n < max_tuples && Next(&t)) {
      out->Append(t);
      ++n;
    }
    return n;
  }

  /// Streaming error channel. Next/NextBatch report exhaustion by bool /
  /// short batch only, so a stream cut short by a fault (expired deadline,
  /// cancellation, failed shard producer) looks exhausted; callers that
  /// care poll this after the stream ends. OK means the stream is live or
  /// genuinely exhausted.
  virtual Status StreamStatus() const { return Status::Ok(); }
};

/// An enumerator over an empty result.
class EmptyEnumerator : public TupleEnumerator {
 public:
  bool Next(Tuple* out) override { return false; }
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    return 0;
  }
};

/// An enumerator over a fixed list of tuples.
class VectorEnumerator : public TupleEnumerator {
 public:
  explicit VectorEnumerator(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t n = 0;
    while (n < max_tuples && pos_ < tuples_.size()) {
      out->Append(tuples_[pos_++]);
      ++n;
    }
    return n;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Wraps a tuple stream with amortized-O(1) RequestContext polling.
///
/// TupleEnumerator::Next has no error channel (bool only), so deadline
/// expiry and cancellation surface out-of-band: the stream ends early
/// (Next returns false / NextBatch returns a short batch) and `status()`
/// reports why. Callers that thread a context check `status()` after the
/// stream ends; callers that don't see a normal exhausted stream.
///
/// Poll cadence: once per NextBatch call and once per kCheckStride
/// single-tuple Next calls — one steady_clock read amortized over a batch
/// of work, which is what keeps the overhead inside the bench gate while
/// still honoring "stops within one batch of work".
class DeadlineCheckedEnumerator : public TupleEnumerator {
 public:
  static constexpr size_t kCheckStride = 64;

  /// `ctx` may be null (wrapper becomes pass-through). Does not own it.
  DeadlineCheckedEnumerator(std::unique_ptr<TupleEnumerator> inner,
                            const RequestContext* ctx)
      : inner_(std::move(inner)), ctx_(ctx) {}

  bool Next(Tuple* out) override {
    if (stopped_) return false;
    if (ctx_ != nullptr && ++since_check_ >= kCheckStride) {
      since_check_ = 0;
      if (!Poll()) return false;
    }
    return inner_->Next(out);
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    if (stopped_) return 0;
    if (ctx_ != nullptr && !Poll()) return 0;
    return inner_->NextBatch(out, max_tuples);
  }

  /// OK while the stream is live or genuinely exhausted; kCancelled /
  /// kDeadlineExceeded if it was cut short.
  const Status& status() const { return status_; }

  Status StreamStatus() const override {
    // A deadline hit here wins; otherwise surface whatever cut the inner
    // stream short (e.g. a failed shard producer).
    return status_.ok() ? inner_->StreamStatus() : status_;
  }

 private:
  bool Poll() {
    Status s = ctx_->Check();
    if (s.ok()) return true;
    status_ = std::move(s);
    stopped_ = true;
    return false;
  }

  std::unique_ptr<TupleEnumerator> inner_;
  const RequestContext* ctx_;
  Status status_;
  size_t since_check_ = 0;
  bool stopped_ = false;
};

/// Drains an enumerator into a vector.
inline std::vector<Tuple> CollectAll(TupleEnumerator& e) {
  std::vector<Tuple> out;
  Tuple t;
  while (e.Next(&t)) out.push_back(t);
  return out;
}

/// Drains an enumerator through the batch API into a flat buffer. `arity`
/// must be the stream's tuple arity (for an adorned view: num_free()).
inline TupleBuffer CollectAllBatched(TupleEnumerator& e, int arity,
                                     size_t batch_size = 256) {
  TupleBuffer out(arity);
  while (e.NextBatch(&out, batch_size) == batch_size) {
  }
  return out;
}

/// Counts an enumerator's remaining tuples via the batch API, reusing one
/// buffer (the fastest way to drain when the tuples themselves are not
/// needed — benchmarks and existence sweeps).
inline size_t DrainBatched(TupleEnumerator& e, int arity,
                           size_t batch_size = 256) {
  TupleBuffer buf(arity);
  size_t total = 0;
  for (;;) {
    buf.Clear();
    size_t n = e.NextBatch(&buf, batch_size);
    total += n;
    if (n < batch_size) return total;
  }
}

/// Projection with duplicate elimination — the paper's §3.2/§8 projection
/// extension in its simple form: project each output onto `positions` and
/// emit each distinct projection once. Correct for any inner enumerator;
/// the O~(tau) delay guarantee does NOT carry over (runs of tuples sharing
/// a projection are skipped), which is exactly the open problem the paper
/// defers. Memory grows with the number of distinct projections.
class ProjectingEnumerator : public TupleEnumerator {
 public:
  ProjectingEnumerator(std::unique_ptr<TupleEnumerator> inner,
                       std::vector<int> positions)
      : inner_(std::move(inner)),
        positions_(std::move(positions)),
        scratch_(positions_.size()) {}

  bool Next(Tuple* out) override {
    Tuple t;
    while (inner_->Next(&t)) {
      for (size_t i = 0; i < positions_.size(); ++i)
        scratch_[i] = t[positions_[i]];
      if (!InsertDistinct(scratch_)) continue;
      *out = scratch_;
      return true;
    }
    return false;
  }

 private:
  // Interns `proj` into the arena-backed dedup set; true if it was new.
  bool InsertDistinct(const Tuple& proj) {
    if (seen_.count(proj)) return false;
    seen_.insert(arena_.Copy(proj));
    return true;
  }

  std::unique_ptr<TupleEnumerator> inner_;
  std::vector<int> positions_;
  Tuple scratch_;
  // Distinct projections, each stored once in the arena; the set holds
  // views, so dedup costs one hash probe and no per-tuple allocation.
  TupleArena arena_;
  std::unordered_set<TupleSpan, SpanHash, SpanEq> seen_;
};

/// Per-access-request measurement: total answer time, output count, and the
/// worst observed delay in both wall-clock time and abstract operations
/// (index probes / join steps; see util/op_counter.h). The "delay" includes
/// the time to the first tuple and the time to detect exhaustion, matching
/// the paper's definition.
struct DelayProfile {
  size_t num_tuples = 0;
  double total_seconds = 0;
  double max_delay_seconds = 0;
  uint64_t total_ops = 0;
  uint64_t max_delay_ops = 0;
};

inline DelayProfile MeasureEnumeration(TupleEnumerator& e,
                                       std::vector<Tuple>* sink = nullptr) {
  DelayProfile p;
  WallTimer total;
  WallTimer gap;
  uint64_t ops_start = ops::Now();
  uint64_t gap_ops = ops_start;
  Tuple t;
  for (;;) {
    bool more = e.Next(&t);
    double d = gap.Seconds();
    uint64_t o = ops::Now() - gap_ops;
    p.max_delay_seconds = std::max(p.max_delay_seconds, d);
    p.max_delay_ops = std::max(p.max_delay_ops, o);
    if (!more) break;
    ++p.num_tuples;
    if (sink) sink->push_back(t);
    gap.Reset();
    gap_ops = ops::Now();
  }
  p.total_seconds = total.Seconds();
  p.total_ops = ops::Now() - ops_start;
  return p;
}

/// Batched counterpart of MeasureEnumeration: drains through NextBatch and
/// records the worst per-batch gap (the batch contract trades per-tuple
/// delay for throughput, so the "delay" here is time between batches).
inline DelayProfile MeasureEnumerationBatched(
    TupleEnumerator& e, int arity, size_t batch_size = 256,
    std::vector<Tuple>* sink = nullptr) {
  DelayProfile p;
  WallTimer total;
  WallTimer gap;
  uint64_t ops_start = ops::Now();
  uint64_t gap_ops = ops_start;
  TupleBuffer buf(arity);
  for (;;) {
    buf.Clear();
    size_t n = e.NextBatch(&buf, batch_size);
    double d = gap.Seconds();
    uint64_t o = ops::Now() - gap_ops;
    p.max_delay_seconds = std::max(p.max_delay_seconds, d);
    p.max_delay_ops = std::max(p.max_delay_ops, o);
    p.num_tuples += n;
    if (sink)
      for (size_t i = 0; i < n; ++i) sink->push_back(buf[i].ToTuple());
    if (n < batch_size) break;
    gap.Reset();
    gap_ops = ops::Now();
  }
  p.total_seconds = total.Seconds();
  p.total_ops = ops::Now() - ops_start;
  return p;
}

}  // namespace cqc

#endif  // CQC_CORE_ENUMERATOR_H_

// Binary persistence for CompressedRep.
//
// The expensive parts of the structure — the delay-balanced tree and the
// heavy-pair dictionary — are written to a versioned binary file; the
// sorted indexes over the base relations are *not* stored (they are
// linear-size and rebuilt lazily on first use). Loading therefore needs
// the same adorned view and a database with the same content; the file
// stores the cover, tau, slack and a fingerprint of the relation sizes to
// catch obvious mismatches.
//
// Format (little-endian, version 3 — "CQCREP03"); the full field-by-field
// spec and the corruption-rejection guarantees live in
// docs/serialization.md:
//   header: magic | tau f64 | alpha f64 | cover count u32 + [f64...]
//   fingerprint: num atoms u32, per atom relation content digest u64
//   tree (flat SoA blocks): mu u32, beta pool, lefts, rights, costs,
//         levels, leaf flags — each a u64-count-prefixed raw array
//   dictionary: vb_arity u32, candidate count u64, then the bit-packed
//         candidate pool (per-column bit widths u8 block + packed u64 word
//         block, the in-memory PackedTuplePool layout — loaded zero-decode),
//         CSR node offsets u32 block, entry valuation ids as per-CSR-row
//         delta varints (first id absolute, then gap-1; ids are strictly
//         ascending within a node row) in a byte block, entry bits u8 block.
#ifndef CQC_CORE_SERIALIZATION_H_
#define CQC_CORE_SERIALIZATION_H_

#include <memory>
#include <string>

#include "core/compressed_rep.h"
#include "util/status.h"

namespace cqc {

/// Writes the structure to `path`.
Status SaveCompressedRep(const CompressedRep& rep, const std::string& path);

/// Reconstructs a structure previously saved for the same view over the
/// same data. Fails on magic/version/shape mismatches.
Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db = nullptr);

}  // namespace cqc

#endif  // CQC_CORE_SERIALIZATION_H_

// Binary persistence for CompressedRep.
//
// The expensive parts of the structure — the delay-balanced tree and the
// heavy-pair dictionary — are written to a versioned binary file; the
// sorted indexes over the base relations are *not* stored (they are
// linear-size and rebuilt lazily on first use). Loading therefore needs
// the same adorned view and a database with the same content; the file
// stores the cover, tau, slack and a fingerprint of the relation sizes to
// catch obvious mismatches.
//
// Format (little-endian, version 5 — "CQCREP05"); the full field-by-field
// spec and the corruption-rejection guarantees live in
// docs/serialization.md:
//   header: magic | tau f64 | alpha f64 | cover count u32 + [f64...] |
//           num atoms u32 + per-atom relation content digest u64 |
//           mu u32 | vb_arity u32 | candidate count u64 |
//           block count u32 (= 15) | block directory [(offset u64,
//           count u64) x 15]
//   blocks: flat SoA arrays, each 64-byte-aligned in the file (padding
//           zero-filled; empty blocks store offset 0), in fixed order:
//           tree beta pool u64, lefts i32, rights i32, costs f32,
//           levels u16, leaf flags u8; dictionary pool widths u8, packed
//           pool words u64 (the in-memory PackedTuplePool layout,
//           trailing pad word included), CSR node offsets u32, entry
//           valuation ids u32 (raw, strictly ascending within a node
//           row), entry bits u8; aggregate annotations (v05, all four
//           empty when the rep was built without them): tree per-node
//           counts u64 + ring cells u64 (3*mu per node: sums|mins|maxs),
//           dictionary per-entry counts u64 + ring cells u64 (3*mu per
//           entry).
//
// Two loaders share one validation pass:
//   * LoadCompressedRep — reads every block into owned heap vectors
//     (O(file bytes); no residual file dependency).
//   * MmapCompressedRep — maps the file read-only (core/rep_file.h) and
//     BORROWS the payload blocks straight out of the mapping
//     (util/col_store.h): open is O(header + tree nodes + dictionary
//     entries) regardless of pool size, the OS pages candidate data in on
//     demand, and the returned rep keeps the mapping alive for its
//     lifetime. The dictionary's id table is built lazily on the first
//     FindValuation.
#ifndef CQC_CORE_SERIALIZATION_H_
#define CQC_CORE_SERIALIZATION_H_

#include <memory>
#include <string>

#include "core/compressed_rep.h"
#include "util/status.h"

namespace cqc {

/// Writes the structure to `path`.
Status SaveCompressedRep(const CompressedRep& rep, const std::string& path);

/// Reconstructs a structure previously saved for the same view over the
/// same data. Fails on magic/version/shape mismatches.
Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db = nullptr);

/// Zero-copy variant: maps `path` and serves the tree/dictionary columns
/// directly from the mapping. Same validation and failure modes as
/// LoadCompressedRep; the mapping lives as long as the returned rep.
Result<std::unique_ptr<CompressedRep>> MmapCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db = nullptr);

}  // namespace cqc

#endif  // CQC_CORE_SERIALIZATION_H_

// Binary persistence for CompressedRep.
//
// The expensive parts of the structure — the delay-balanced tree and the
// heavy-pair dictionary — are written to a versioned binary file; the
// sorted indexes over the base relations are *not* stored (they are
// linear-size and rebuilt lazily on first use). Loading therefore needs
// the same adorned view and a database with the same content; the file
// stores the cover, tau, slack and a fingerprint of the relation sizes to
// catch obvious mismatches.
//
// Format (little-endian, version 1):
//   magic "CQCREP01" | tau f64 | alpha f64 | cover [n f64]
//   fingerprint: num atoms u32, per atom relation size u64
//   tree: node count u32, then per node {beta len u32, beta values u64...,
//         left i32, right i32, cost f32, level u16, leaf u8}
//   dictionary: candidate count u32, per candidate {len u32, values u64..};
//         per tree node: entry count u32, then {vb u32, bit u8}...
#ifndef CQC_CORE_SERIALIZATION_H_
#define CQC_CORE_SERIALIZATION_H_

#include <memory>
#include <string>

#include "core/compressed_rep.h"
#include "util/status.h"

namespace cqc {

/// Writes the structure to `path`.
Status SaveCompressedRep(const CompressedRep& rep, const std::string& path);

/// Reconstructs a structure previously saved for the same view over the
/// same data. Fails on magic/version/shape mismatches.
Result<std::unique_ptr<CompressedRep>> LoadCompressedRep(
    const AdornedView& view, const Database& db, const std::string& path,
    const Database* aux_db = nullptr);

}  // namespace cqc

#endif  // CQC_CORE_SERIALIZATION_H_

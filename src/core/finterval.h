// f-intervals and f-boxes (§4.1).
//
// An f-interval is a closed lexicographic interval [lo, hi] over the grid of
// free-variable active domains; an f-box constrains each free variable
// independently. A *canonical* f-box fixes a prefix of the free variables to
// unit values, constrains at most the next one to a range, and leaves the
// rest unconstrained (Definition 2). Lemma 1's box decomposition rewrites an
// f-interval as <= 2*mu - 1 disjoint, lexicographically ordered canonical
// f-boxes; Proposition 5 then lets the cost model and the join push the box
// into each relation independently.
//
// Range endpoints live in raw value space (kBottom = 0, kTop = 2^64-1 stand
// in for the paper's bottom/top), which is equivalent for counting and
// joining since only values present in the data ever match. Unit dimensions
// always hold actual grid values.
#ifndef CQC_CORE_FINTERVAL_H_
#define CQC_CORE_FINTERVAL_H_

#include <limits>
#include <string>
#include <vector>

#include "core/lex_domain.h"
#include "util/common.h"

namespace cqc {

inline constexpr Value kBottom = 0;
inline constexpr Value kTop = std::numeric_limits<Value>::max();

/// Per-dimension constraint of an f-box.
struct FBoxDim {
  enum Kind : uint8_t { kUnit, kRange, kAny };
  Kind kind = kAny;
  Value lo = kBottom;  // kUnit: the value (lo == hi); kRange: inclusive lo
  Value hi = kTop;

  static FBoxDim Unit(Value v) { return {kUnit, v, v}; }
  static FBoxDim Range(Value lo, Value hi) { return {kRange, lo, hi}; }
  static FBoxDim Any() { return {kAny, kBottom, kTop}; }

  bool Contains(Value v) const { return lo <= v && v <= hi; }
  /// A range with lo > hi denotes the empty set.
  bool DefinitelyEmpty() const { return lo > hi; }
  bool operator==(const FBoxDim&) const = default;
};

/// An f-box: one constraint per free variable (global free order).
struct FBox {
  std::vector<FBoxDim> dims;

  int mu() const { return (int)dims.size(); }
  bool DefinitelyEmpty() const {
    for (const auto& d : dims)
      if (d.DefinitelyEmpty()) return true;
    return false;
  }
  /// Unit prefix, then at most one range, then kAny (Definition 2).
  bool IsCanonical() const;
  bool Contains(TupleSpan t) const;
  std::string ToString() const;
};

/// Closed f-interval [lo, hi]; empty iff lo >lex hi.
struct FInterval {
  Tuple lo;
  Tuple hi;

  bool Empty() const { return LexDomain::Compare(lo, hi) > 0; }
  bool IsUnit() const { return lo == hi; }
  bool Contains(TupleSpan t) const {
    return LexDomain::Compare(lo, t) <= 0 && LexDomain::Compare(t, hi) <= 0;
  }
  std::string ToString() const;
};

/// Lemma 1 box decomposition of a (non-empty) closed interval: disjoint
/// canonical boxes, lexicographically ordered, covering exactly [lo, hi].
/// Boxes that are definitely empty (inverted ranges) are dropped.
std::vector<FBox> BoxDecompose(const FInterval& interval);

/// Allocation-free variant for hot loops (the Algorithm 2 traversal runs
/// one decomposition per light interval): rewrites `out` in place, reusing
/// the outer vector's and each surviving box's dims capacity. After the
/// first few calls at a given mu the decomposition allocates nothing.
void BoxDecomposeInto(const FInterval& interval, std::vector<FBox>* out);

}  // namespace cqc

#endif  // CQC_CORE_FINTERVAL_H_

// ShardPlanner: carve the output space into balanced disjoint lex ranges.
//
// The delay-balanced tree is a ready-made partition hierarchy over the
// free-variable grid: every split point beta(w) was chosen by Algorithm 1 so
// the two child intervals carry at most half the parent's evaluation cost
// T(I). The planner reuses exactly those boundaries — no data is touched —
// by expanding the tree frontier until it has several segments per requested
// shard, then greedily grouping consecutive segments into K contiguous
// ranges of approximately equal weight.
//
// Segment weight = the build-time cost annotation T(I(w)) (the paper's
// upper bound on the work to enumerate the subtree) plus the node's heavy
// dictionary entry count (a density signal: many heavy pairs mean many
// non-empty outputs below the node). Both are O(1) reads from the flat tree
// / CSR columns, so planning costs O(segments * log-ish) independent of the
// data size.
//
// The shards partition [domain.Min, domain.Max]: disjoint, lex-ordered, and
// jointly exhaustive, so ordered concatenation of the per-shard streams
// reproduces the sequential enumeration exactly, and unordered draining
// yields the same multiset (the ParallelEnumerator exposes both).
//
// Thread-count heuristics: callers usually want num_shards to be a small
// multiple of the worker count (kShardsPerThread) so work stealing can
// rebalance the inevitable estimation error; a shard count far above that
// only adds per-shard enumerator setup cost.
#ifndef CQC_CORE_SHARD_PLANNER_H_
#define CQC_CORE_SHARD_PLANNER_H_

#include <vector>

#include "core/compressed_rep.h"
#include "core/dbtree.h"
#include "core/dictionary.h"
#include "core/finterval.h"
#include "core/lex_domain.h"

namespace cqc {

/// How many shards to plan per worker thread: enough slack for stealing to
/// even out weight-estimate error, few enough that per-shard setup stays
/// negligible.
inline constexpr size_t kShardsPerThread = 4;

struct ShardPlan {
  /// Disjoint closed lex ranges in ascending order, covering the full grid.
  /// Empty when the representation has no free dimension or no tuples.
  std::vector<FInterval> shards;
  /// Estimated relative enumeration cost per shard (same indexing).
  std::vector<double> weights;

  size_t size() const { return shards.size(); }
};

class ShardPlanner {
 public:
  /// Plans at most `max_shards` ranges for the representation's free grid.
  /// Returns fewer shards when the tree has too few split points to cut
  /// further (correctness never depends on reaching max_shards).
  static ShardPlan Plan(const CompressedRep& rep, size_t max_shards);

  /// Lower-level entry point over the raw structures (`dict` may be null).
  static ShardPlan Plan(const DelayBalancedTree& tree, const LexDomain& domain,
                        const HeavyDictionary* dict, size_t max_shards);
};

}  // namespace cqc

#endif  // CQC_CORE_SHARD_PLANNER_H_

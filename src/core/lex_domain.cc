#include "core/lex_domain.h"

#include <algorithm>

#include "util/logging.h"

namespace cqc {

LexDomain::LexDomain(std::vector<std::vector<Value>> domains)
    : domains_(std::move(domains)) {
  for (const auto& d : domains_)
    CQC_CHECK(std::is_sorted(d.begin(), d.end())) << "domain must be sorted";
}

bool LexDomain::AnyEmpty() const {
  for (const auto& d : domains_)
    if (d.empty()) return true;
  return false;
}

Tuple LexDomain::MinTuple() const {
  Tuple t(mu());
  for (int i = 0; i < mu(); ++i) {
    CQC_CHECK(!domains_[i].empty());
    t[i] = domains_[i].front();
  }
  return t;
}

Tuple LexDomain::MaxTuple() const {
  Tuple t(mu());
  for (int i = 0; i < mu(); ++i) {
    CQC_CHECK(!domains_[i].empty());
    t[i] = domains_[i].back();
  }
  return t;
}

int LexDomain::IndexOf(int i, Value v) const {
  const auto& d = domains_[i];
  auto it = std::lower_bound(d.begin(), d.end(), v);
  if (it == d.end() || *it != v) return -1;
  return (int)(it - d.begin());
}

bool LexDomain::Succ(TupleRef t) const {
  CQC_CHECK_EQ((int)t.size(), mu());
  for (int i = mu() - 1; i >= 0; --i) {
    int idx = IndexOf(i, t[i]);
    CQC_CHECK_GE(idx, 0) << "tuple component off the grid";
    if (idx + 1 < (int)domains_[i].size()) {
      t[i] = domains_[i][idx + 1];
      for (int j = i + 1; j < mu(); ++j) t[j] = domains_[j].front();
      return true;
    }
  }
  return false;
}

bool LexDomain::Pred(TupleRef t) const {
  CQC_CHECK_EQ((int)t.size(), mu());
  for (int i = mu() - 1; i >= 0; --i) {
    int idx = IndexOf(i, t[i]);
    CQC_CHECK_GE(idx, 0) << "tuple component off the grid";
    if (idx > 0) {
      t[i] = domains_[i][idx - 1];
      for (int j = i + 1; j < mu(); ++j) t[j] = domains_[j].back();
      return true;
    }
  }
  return false;
}

int LexDomain::Compare(TupleSpan a, TupleSpan b) {
  CQC_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

double LexDomain::GridSize() const {
  double n = 1;
  for (const auto& d : domains_) {
    n *= (double)d.size();
    if (n > 1e18) return 1e18;
  }
  return n;
}

}  // namespace cqc

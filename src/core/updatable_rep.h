// UpdatableRep: insert-only maintenance of a compressed representation —
// the paper's §8 open problem "whether our data structures can be modified
// to support efficient updates of the base tables", in its standard
// first-stage form (inserts; deletions would need tombstone filtering).
//
// Design: the structure owns a sealed snapshot of the base data plus a
// per-relation delta of pending inserts. Answers combine
//
//   (1) the Theorem-1 enumeration over the snapshot (lexicographic), and
//   (2) the classic delta-join expansion over the pending inserts:
//         Q(D + dD) \ Q(D) = union_i  join(M_1, .., M_{i-1}, dR_i,
//                                          R_{i+1}, .., R_n)
//       where M_j = R_j + dR_j ("merged"), dR_i the delta, R_j the old
//       snapshot — each term pins atom i to a delta tuple, so every new
//       derivation is produced; duplicates are removed by (a) a
//       base-membership check (for full CQs, v in Q(D) iff every atom of
//       the old snapshot contains its projection of v) and (b) a hash set
//       across delta terms.
//
// Delta answering costs O~(|dD| * join work) per request, so once the
// delta grows past `rebuild_fraction * |D|` the snapshot is merged and the
// Theorem-1 structure rebuilt (amortized O~(build / fraction) per
// inserted tuple). The combined enumeration is *not* globally
// lexicographic: snapshot answers stream in lex order first, then the
// delta-derived answers.
#ifndef CQC_CORE_UPDATABLE_REP_H_
#define CQC_CORE_UPDATABLE_REP_H_

#include <map>
#include <memory>
#include <vector>

#include "core/compressed_rep.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

struct UpdatableRepOptions {
  CompressedRepOptions rep;
  /// Rebuild when total pending inserts exceed this fraction of the
  /// snapshot size (set to infinity to never rebuild automatically).
  double rebuild_fraction = 0.25;
};

class UpdatableRep {
 public:
  /// Snapshots `db` (copies the referenced relations). The view must be a
  /// natural join (run NormalizeView first if needed).
  static Result<std::unique_ptr<UpdatableRep>> Build(
      const AdornedView& view, const Database& db,
      const UpdatableRepOptions& options, const Database* aux_db = nullptr);

  /// Queues an insert into `relation`. Duplicates (already in snapshot or
  /// delta) are tolerated and deduplicated lazily.
  Status Insert(const std::string& relation, const Tuple& t);

  /// Answers over the *current* data (snapshot + pending inserts).
  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;
  bool AnswerExists(const BoundValuation& vb) const;

  /// Merges the delta into the snapshot and rebuilds the structure now.
  Status Rebuild();

  size_t pending_inserts() const;
  size_t snapshot_tuples() const { return base_->TotalTuples(); }
  int num_rebuilds() const { return num_rebuilds_; }
  const CompressedRep& rep() const { return *rep_; }
  const AdornedView& view() const { return view_; }

 private:
  explicit UpdatableRep(AdornedView view) : view_(std::move(view)) {}

  // Copies relation `name` (plus staged extras) into `out`.
  static void CopyRelation(const Relation& src, Database& out,
                           const std::vector<Tuple>& extra);
  // Re-seals the delta/merged databases from staging if dirty.
  Status RefreshDerived() const;

  class MergedEnumerator;

  AdornedView view_;
  std::unique_ptr<Database> base_;  // sealed snapshot
  std::unique_ptr<CompressedRep> rep_;
  UpdatableRepOptions options_;
  // Pending inserts per relation name.
  std::map<std::string, std::vector<Tuple>> staging_;
  // Lazily derived: delta + merged databases (relation name -> data).
  mutable std::unique_ptr<Database> delta_;
  mutable std::unique_ptr<Database> merged_;
  mutable bool derived_dirty_ = true;
  int num_rebuilds_ = 0;
};

}  // namespace cqc

#endif  // CQC_CORE_UPDATABLE_REP_H_

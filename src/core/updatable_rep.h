// UpdatableRep: insert+delete maintenance of a compressed representation —
// the paper's §8 open problem "whether our data structures can be modified
// to support efficient updates of the base tables", grown from the
// insert-only first stage into a full signed-delta design (see
// docs/update-semantics.md for the formal account).
//
// Design: the structure owns a sealed *snapshot* (base data + the
// Theorem-1 structure over it) plus a per-relation *pending delta*: net
// inserts (+1) and tombstones (-1), canonicalized against base membership
// so the pending map is exactly the symmetric difference between the
// current data and the snapshot. Answers combine
//
//   (1) the Theorem-1 enumeration over the snapshot (lexicographic),
//       *filtered* against tombstones: a full natural-join answer has a
//       unique derivation (one base tuple per atom, determined by
//       projection), so a snapshot answer survives iff every atom's
//       projection is still present in the current data — one O(1)
//       expected hash probe per atom (relational/hash_index.h); and
//   (2) the signed delta-join expansion over the pending inserts:
//         Q(D') \ Q(D) = union_i  join(M_1, .., M_{i-1}, dR_i+, M_{i+1},
//                                      .., M_n)
//       where D' is the current data, M_j = the current ("merged")
//       relation and dR_i+ the net-inserted tuples of atom i — every
//       answer using at least one inserted tuple is produced; answers
//       already derivable from the snapshot are skipped (base-membership
//       probes) and a hash set dedups across terms. Deletions never
//       create answers, so they enter only through the merged relations
//       and the tombstone filter of (1).
//
// Delta answering costs O~(|dD| * join work) per request, so once the
// pending mass (inserts + tombstones) grows past
// `rebuild_fraction * |D|` the delta is folded and the Theorem-1
// structure rebuilt (amortized O~(build / fraction) per update). The
// combined enumeration is *not* globally lexicographic: surviving
// snapshot answers stream in lex order first, then the delta-derived
// answers (documented contract; see docs/update-semantics.md).
//
// Concurrency: the whole queryable state is published as one immutable
// `State` behind an epoch-style pointer swap. Readers grab the current
// state (a shared_ptr copy) and enumerate it for as long as they like;
// writers build a new state and publish it; Rebuild() captures a state,
// builds the new snapshot *without holding the writer lock*, then rebases
// any ops applied meanwhile and publishes. Readers therefore never block
// on updates or rebuilds and never observe a torn structure. Concurrent
// Insert/Delete/Apply calls are serialized internally.
#ifndef CQC_CORE_UPDATABLE_REP_H_
#define CQC_CORE_UPDATABLE_REP_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compressed_rep.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

/// One base-table mutation. Batches of these flow through the whole update
/// pipeline: UpdatableRep::Apply, AnswerRep::ApplyDelta, RepCache::
/// ApplyDelta, and the cqc_cli --mutate script mode.
struct UpdateOp {
  enum Kind : uint8_t { kInsert, kDelete };
  Kind kind = kInsert;
  std::string relation;
  Tuple tuple;

  static UpdateOp Insert(std::string relation, Tuple tuple) {
    return {kInsert, std::move(relation), std::move(tuple)};
  }
  static UpdateOp Delete(std::string relation, Tuple tuple) {
    return {kDelete, std::move(relation), std::move(tuple)};
  }
};
using UpdateBatch = std::vector<UpdateOp>;

struct UpdatableRepOptions {
  CompressedRepOptions rep;
  /// Rebuild when the pending mass (net inserts + tombstones) exceeds this
  /// fraction of the snapshot size (set to infinity to never rebuild
  /// automatically).
  double rebuild_fraction = 0.25;
  /// Fold the delta synchronously inside Apply/Insert/Delete when the
  /// threshold is crossed. Serving layers that amortize rebuilds on a
  /// background pool (plan/rep_cache.h) set this false and drive
  /// Rebuild(/*only_if_needed=*/true) themselves.
  bool auto_rebuild = true;
};

class UpdatableRep {
 public:
  /// Snapshots `db` (copies the referenced relations). The view must be a
  /// natural join (run NormalizeView first if needed).
  static Result<std::unique_ptr<UpdatableRep>> Build(
      const AdornedView& view, const Database& db,
      const UpdatableRepOptions& options, const Database* aux_db = nullptr);

  /// Applies a batch of mutations in order (last op per tuple wins).
  /// Duplicate inserts and deletes of absent tuples are no-ops. Thread-safe
  /// against concurrent Apply/Rebuild and concurrent readers.
  Status Apply(const UpdateBatch& batch);

  /// Single-op conveniences.
  Status Insert(const std::string& relation, const Tuple& t);
  Status Delete(const std::string& relation, const Tuple& t);

  /// Answers over the *current* data (snapshot + pending delta). The
  /// enumerator owns the state it reads: it stays valid across concurrent
  /// updates and rebuilds.
  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;
  bool AnswerExists(const BoundValuation& vb) const;

  /// Grouped ring aggregate over the current data. A clean epoch (no
  /// pending ops) delegates to the snapshot structure — pushed-annotation
  /// speed when the snapshot was built with build_aggregates (a Rebuild
  /// folds the delta and re-derives the annotations as part of the epoch
  /// publish). An epoch with pending ops folds the combined
  /// tombstone-filtered + delta-join stream, so the answer always reflects
  /// every applied +1/-1.
  AggregateResult AnswerAggregate(const BoundValuation& vb,
                                  const std::vector<int>& group_vars,
                                  const AggSpec& spec) const;

  /// Folds the pending delta into the snapshot and rebuilds the Theorem-1
  /// structure. The expensive build runs without blocking writers; ops
  /// applied concurrently are rebased onto the new snapshot. With
  /// `only_if_needed`, returns immediately unless NeedsRebuild() (the
  /// coalescing check for background rebuild tasks).
  Status Rebuild(bool only_if_needed = false);

  /// Pending mass exceeded options_.rebuild_fraction * snapshot size?
  bool NeedsRebuild() const;

  size_t pending_inserts() const;
  size_t pending_deletes() const;
  size_t snapshot_tuples() const;
  int num_rebuilds() const { return num_rebuilds_; }
  double build_seconds() const;
  /// Snapshot structure + base copy + pending delta footprint.
  size_t SpaceBytes() const;

  /// One consistent reading of the serving state (a single epoch load —
  /// safe against concurrent updates and rebuilds, unlike rep()).
  struct Info {
    double tau = 0;
    size_t snapshot_tuples = 0;
    size_t pending_inserts = 0;
    size_t pending_deletes = 0;
    int num_rebuilds = 0;
    size_t space_bytes = 0;
  };
  Info GetInfo() const;

  /// Current snapshot structure / base data. Unsynchronized conveniences
  /// for stats, tests, and single-threaded callers: the references are
  /// invalidated by a concurrent Rebuild (concurrent *updates* are fine).
  const CompressedRep& rep() const;
  const Database& snapshot_base() const;
  const AdornedView& view() const { return view_; }

 private:
  /// The immutable snapshot: a sealed copy of the base data plus the
  /// Theorem-1 structure over it. Replaced wholesale by Rebuild. The base
  /// is shared (a fold adopts the previous epoch's merged database instead
  /// of copying it again).
  struct Snapshot {
    std::shared_ptr<const Database> base;
    std::unique_ptr<CompressedRep> rep;
  };

  /// Net pending ops per relation: +1 = tuple inserted (absent from the
  /// snapshot), -1 = tombstone (present in the snapshot). Canonical: a
  /// tuple appears iff its current membership differs from the snapshot's.
  /// Per-relation maps are immutable and shared across epochs; Apply
  /// copies only the relations a batch touches.
  using RelationPending = std::map<Tuple, int8_t>;
  using PendingMap =
      std::map<std::string, std::shared_ptr<const RelationPending>>;

  /// One immutable published epoch: snapshot + pending delta. The derived
  /// databases are built lazily at most once (thread-safe) on first answer.
  struct State {
    std::shared_ptr<const Snapshot> snapshot;
    PendingMap pending;
    size_t num_inserts = 0;
    size_t num_deletes = 0;

    // Lazily derived from (snapshot, pending); immutable once built.
    mutable std::once_flag derived_once;
    mutable std::unique_ptr<Database> inserts_db;  // net-inserted tuples
    mutable std::shared_ptr<const Database> current_db;  // base -/+ delta
    mutable bool has_tombstones = false;

    bool HasPending() const { return num_inserts + num_deletes > 0; }
    /// Builds inserts_db / current_db (idempotent, thread-safe).
    void EnsureDerived() const;
  };

  explicit UpdatableRep(AdornedView view) : view_(std::move(view)) {}

  std::shared_ptr<const State> Load() const;
  void Publish(std::shared_ptr<const State> next);
  /// Footprint of one epoch: snapshot structure + base copy + pending
  /// delta (the single source for SpaceBytes() and Info::space_bytes).
  static size_t StateSpaceBytes(const State& st);
  static std::shared_ptr<const Snapshot> BuildSnapshot(
      const AdornedView& view, std::shared_ptr<const Database> source,
      const CompressedRepOptions& options, Status* status);

  class CombinedEnumerator;
  class TombstoneFilterEnumerator;

  AdornedView view_;
  UpdatableRepOptions options_;

  mutable std::mutex state_mu_;   // guards the state_ pointer swap only
  std::shared_ptr<const State> state_;
  std::mutex writer_mu_;          // serializes Apply bookkeeping + publish
  std::mutex rebuild_mu_;         // one rebuild at a time
  std::atomic<int> num_rebuilds_{0};
};

}  // namespace cqc

#endif  // CQC_CORE_UPDATABLE_REP_H_

// The auxiliary dictionary D (§4.3, step 2; Appendix A).
//
// For each delay-balanced-tree node w at level l and each bound valuation
// v_b such that (v_b, I(w)) is tau_l-heavy, D stores one bit: whether the
// join restricted to I(w) under v_b is non-empty. Pairs without an entry
// are light; Algorithm 2 evaluates them directly in O~(tau_l).
//
// Construction follows Appendix A:
//   (a) candidate bound valuations = the worst-case-optimal join of the
//       bound-variable projections of the atoms touching V_b (Prop. 13);
//   (b) per node, the heavy candidates are found with the O~(1) counting
//       oracle, and each heavy pair's bit is set by an early-terminating
//       WCOJ emptiness probe per box of the interval's decomposition. The
//       NPRR query-decomposition lemma bounds the total probe work by the
//       same O~(prod |R_F|^{u_F}) as the paper's streaming variant.
//   Entries propagate downward only for pairs whose bit is 1: Algorithm 2
//   never descends past a light or empty node, so deeper entries for such
//   valuations are unreachable.
//
// Valuations are interned into dense ids (the candidate table); per node,
// entries live in a sorted array keyed by valuation id (4+1 bytes each).
#ifndef CQC_CORE_DICTIONARY_H_
#define CQC_CORE_DICTIONARY_H_

#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/dbtree.h"
#include "core/lex_domain.h"
#include "join/bound_atom.h"
#include "util/hashing.h"

namespace cqc {

class HeavyDictionary {
 public:
  enum class Bit : uint8_t { kZero = 0, kOne = 1, kAbsent = 2 };

  /// Dictionary lookup for (node, interned valuation id). O(log entries).
  Bit Lookup(int node, uint32_t vb_id) const;

  /// Interns a bound valuation; returns its id or kNoValuation.
  static constexpr uint32_t kNoValuation = ~0u;
  uint32_t FindValuation(const Tuple& vb) const;

  size_t NumEntries() const;
  size_t NumCandidates() const { return candidates_.size(); }
  size_t MemoryBytes() const;

  /// Flips an existing entry's bit (used by the Theorem-2 semijoin fixup,
  /// Algorithm 4). CHECK-fails if the entry is absent.
  void SetBit(int node, uint32_t vb_id, bool bit);

  /// Access to the interned candidate valuations (bound order tuples).
  const std::vector<Tuple>& candidates() const { return candidates_; }

  /// Visits every entry of `node` as fn(vb_id, bit).
  template <typename Fn>
  void ForEachEntry(int node, Fn&& fn) const {
    for (const Entry& e : per_node_[node]) fn(e.vb, e.bit != 0);
  }

  /// Reassembles a dictionary from stored parts (deserialization only).
  /// `entries[node]` must be sorted by valuation id.
  static HeavyDictionary FromParts(
      std::vector<Tuple> candidates,
      std::vector<std::vector<std::pair<uint32_t, bool>>> entries) {
    HeavyDictionary d;
    d.candidates_ = std::move(candidates);
    for (uint32_t i = 0; i < d.candidates_.size(); ++i)
      d.candidate_ids_.emplace(d.candidates_[i], i);
    d.per_node_.resize(entries.size());
    for (size_t n = 0; n < entries.size(); ++n)
      for (auto [vb, bit] : entries[n])
        d.per_node_[n].push_back({vb, (uint8_t)(bit ? 1 : 0)});
    return d;
  }

 private:
  friend class DictionaryBuilder;
  struct Entry {
    uint32_t vb;
    uint8_t bit;
  };
  std::vector<std::vector<Entry>> per_node_;  // sorted by vb
  std::vector<Tuple> candidates_;
  std::unordered_map<Tuple, uint32_t, TupleHash> candidate_ids_;
};

/// Builds the dictionary for a tree; see file comment.
class DictionaryBuilder {
 public:
  DictionaryBuilder(const std::vector<BoundAtom>* atoms,
                    const CostModel* cost, const DelayBalancedTree* tree,
                    const LexDomain* domain, int num_bound, double tau,
                    double alpha);

  HeavyDictionary Build();

 private:
  // Enumerates the candidate bound valuations (join over bound variables).
  void CollectCandidates(HeavyDictionary* dict);
  // Recursive heavy-pair sweep.
  void ProcessNode(HeavyDictionary* dict, int node, const FInterval& interval,
                   const std::vector<uint32_t>& cand);
  // True iff the join under vb restricted to `boxes` is non-empty.
  bool ProbeNonEmpty(const Tuple& vb, const std::vector<FBox>& boxes) const;

  const std::vector<BoundAtom>* atoms_;
  const CostModel* cost_;
  const DelayBalancedTree* tree_;
  const LexDomain* domain_;
  int num_bound_;
  double tau_;
  double alpha_;
};

}  // namespace cqc

#endif  // CQC_CORE_DICTIONARY_H_

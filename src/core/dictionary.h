// The auxiliary dictionary D (§4.3, step 2; Appendix A).
//
// For each delay-balanced-tree node w at level l and each bound valuation
// v_b such that (v_b, I(w)) is tau_l-heavy, D stores one bit: whether the
// join restricted to I(w) under v_b is non-empty. Pairs without an entry
// are light; Algorithm 2 evaluates them directly in O~(tau_l).
//
// Construction follows Appendix A:
//   (a) candidate bound valuations = the worst-case-optimal join of the
//       bound-variable projections of the atoms touching V_b (Prop. 13);
//   (b) per node, the heavy candidates are found with the O~(1) counting
//       oracle, and each heavy pair's bit is set by an early-terminating
//       WCOJ emptiness probe per box of the interval's decomposition. The
//       NPRR query-decomposition lemma bounds the total probe work by the
//       same O~(prod |R_F|^{u_F}) as the paper's streaming variant.
//   Entries propagate downward only for pairs whose bit is 1: Algorithm 2
//   never descends past a light or empty node, so deeper entries for such
//   valuations are unreachable.
//
// Storage is flat: interned valuations live in one pool (vb_arity values
// per candidate, dense ids = pool order) looked up through an
// open-addressed id table, and the per-node entries are a CSR — one
// offsets array over the tree's node ids plus parallel (valuation id, bit)
// entry columns sorted by id within each node. A lookup is two array reads
// and a binary search over a contiguous slice. During construction the
// pool is a raw Value array (spans stay valid for the builder's probes);
// Seal() bit-packs it to per-column minimal widths (core/bitpack.h) and
// drops the raw copy, so the served dictionary pays packed bits per
// candidate and decodes rows branch-free. The whole dictionary serializes
// as flat array blocks (packed words included, mmap-friendly).
//
// Thread safety — the read-only-after-seal contract. Construction
// (AddCandidate / RehashCandidates) grows the candidate pool and rebuilds
// the open-addressed id table, which MOVES memory: a concurrent reader
// holding a TupleSpan from candidate(), or probing id_slots_ mid-rehash,
// would chase freed storage. Both mutators are therefore builder-private
// and assert (CQC_DCHECK) that the dictionary is not yet sealed; the
// builder and the deserializer seal the finished dictionary, after which
// every accessor reads immutable flat arrays and any number of enumeration
// threads may share one instance. The one post-seal mutation is SetBit
// (the Algorithm 4 semijoin fixup): it flips a byte in place — no
// reallocation, spans stay valid — but it is NOT synchronized, so run the
// fixup before the structure is shared across threads.
#ifndef CQC_CORE_DICTIONARY_H_
#define CQC_CORE_DICTIONARY_H_

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "core/bitpack.h"
#include "core/cost_model.h"
#include "core/dbtree.h"
#include "core/lex_domain.h"
#include "join/bound_atom.h"
#include "util/col_store.h"
#include "util/hashing.h"

namespace cqc {

class HeavyDictionary {
 public:
  enum class Bit : uint8_t { kZero = 0, kOne = 1, kAbsent = 2 };

  /// Dictionary lookup for (node, interned valuation id). O(log entries).
  Bit Lookup(int node, uint32_t vb_id) const;

  /// Position of the (node, vb_id) entry in the CSR entry columns, or
  /// kNoEntry when absent — the index the per-entry aggregate annotation
  /// columns are addressed by. Same binary search as Lookup.
  static constexpr size_t kNoEntry = ~(size_t)0;
  size_t LookupEntryIndex(int node, uint32_t vb_id) const;

  /// Interns a bound valuation; returns its id or kNoValuation.
  static constexpr uint32_t kNoValuation = ~0u;
  uint32_t FindValuation(TupleSpan vb) const;

  size_t NumEntries() const { return entry_vb_.size(); }
  size_t NumCandidates() const { return num_candidates_; }
  /// Number of CSR entries stored for `node` (0 for out-of-range nodes) —
  /// a density signal the ShardPlanner folds into its per-subtree weights.
  size_t NumEntriesAt(int node) const {
    if (node < 0 || (size_t)node + 1 >= node_offsets_.size()) return 0;
    return node_offsets_[node + 1] - node_offsets_[node];
  }
  size_t MemoryBytes() const;

  /// Arity of every interned valuation (the number of bound variables).
  int vb_arity() const { return vb_arity_; }

  /// Build-time view of interned candidate `id` (bound order) into the raw
  /// pool. Valid only before Seal() — the raw pool is dropped when the
  /// packed pool takes over.
  TupleSpan candidate(uint32_t id) const {
    CQC_DCHECK(!sealed_) << "candidate() span on a sealed (packed) dictionary";
    return TupleSpan(candidate_pool_.data() + (size_t)id * vb_arity_,
                     (size_t)vb_arity_);
  }

  /// Decodes candidate `id` into `out` (vb_arity() slots). Works before and
  /// after Seal(); post-seal this is the branch-free bit-packed unpack.
  void UnpackCandidate(uint32_t id, Value* out) const {
    if (sealed_) {
      packed_pool_.UnpackRow(id, out);
    } else {
      const Value* src = candidate_pool_.data() + (size_t)id * vb_arity_;
      for (int c = 0; c < vb_arity_; ++c) out[c] = src[c];
    }
  }

  /// Decodes candidates [first, first + n) into `out` (row-major,
  /// n * vb_arity() slots) — identical output to n UnpackCandidate calls;
  /// post-seal this is the SIMD batch unpack of the packed pool.
  void UnpackCandidates(uint32_t first, size_t n, Value* out) const {
    if (sealed_) {
      packed_pool_.UnpackRows(first, n, out);
    } else if (vb_arity_ > 0 && n > 0) {
      std::memcpy(out, candidate_pool_.data() + (size_t)first * vb_arity_,
                  n * (size_t)vb_arity_ * sizeof(Value));
    }
  }

  /// Materializes candidate `id` (tests / cold paths).
  Tuple Candidate(uint32_t id) const {
    Tuple t(vb_arity_);
    UnpackCandidate(id, t.data());
    return t;
  }

  /// Flips an existing entry's bit (used by the Theorem-2 semijoin fixup,
  /// Algorithm 4). CHECK-fails if the entry is absent, or if the bit
  /// column borrows mapped (read-only) storage — the fixup runs at build
  /// time, never against a loaded snapshot.
  void SetBit(int node, uint32_t vb_id, bool bit);

  /// Visits every entry of `node` as fn(vb_id, bit).
  template <typename Fn>
  void ForEachEntry(int node, Fn&& fn) const {
    if (node < 0 || (size_t)node + 1 >= node_offsets_.size()) return;
    for (uint32_t i = node_offsets_[node]; i < node_offsets_[node + 1]; ++i)
      fn(entry_vb_[i], entry_bit_[i] != 0);
  }

  /// Reassembles a dictionary from its flat parts (deserialization and
  /// tests). `node_offsets` has num_nodes + 1 entries; within a node's
  /// slice the `entry_vb` ids must be strictly ascending. The result is
  /// sealed (pool packed).
  static HeavyDictionary FromFlat(int vb_arity,
                                  std::vector<Value> candidate_pool,
                                  std::vector<uint32_t> node_offsets,
                                  std::vector<uint32_t> entry_vb,
                                  std::vector<uint8_t> entry_bit);

  /// Same, but directly from an already-packed pool (the deserialization
  /// path — no unpack/repack round trip). The CSR columns may be owned
  /// (vectors convert implicitly) or borrowed from a mapping; when any
  /// input borrows, the id table build is DEFERRED to the first
  /// FindValuation (std::call_once), keeping a zero-copy open O(header)
  /// instead of O(candidates).
  static HeavyDictionary FromPacked(int vb_arity, size_t num_candidates,
                                    PackedTuplePool pool,
                                    ColStore<uint32_t> node_offsets,
                                    ColStore<uint32_t> entry_vb,
                                    ColStore<uint8_t> entry_bit);

  // --- per-entry aggregate annotations (ring cells) ------------------------
  // Optional columns parallel to the CSR entry columns, attached after the
  // annotation build (or borrowed from a mapping) for bound reps
  // (num_bound > 0): entry e — a heavy (node, vb) pair — carries the result
  // count of that subtree under that bound valuation plus per-free-variable
  // ring sums / mins / maxs (layout as in core/aggregate.h RingCell; mu is
  // carried by the owning rep). Only bit == 1 entries hold meaningful
  // cells; bit == 0 entries stay at the ring identities.

  /// `counts` has one entry per CSR entry, `vals` 3 * mu per entry.
  void AttachAggregates(ColStore<uint64_t> counts, ColStore<Value> vals,
                        int mu);

  bool has_aggregates() const { return !entry_agg_count_.empty(); }
  uint64_t entry_agg_count(size_t e) const { return entry_agg_count_[e]; }
  /// The 3 * mu annotation values of entry `e`.
  const Value* entry_agg_vals(size_t e) const {
    return entry_agg_vals_.data() + e * (size_t)(3 * agg_mu_);
  }

  // Flat column access (serialization).
  const PackedTuplePool& packed_pool() const { return packed_pool_; }
  const ColStore<uint32_t>& node_offsets() const { return node_offsets_; }
  const ColStore<uint32_t>& entry_vbs() const { return entry_vb_; }
  const ColStore<uint8_t>& entry_bits() const { return entry_bit_; }
  const ColStore<uint64_t>& entry_agg_counts() const {
    return entry_agg_count_;
  }
  const ColStore<Value>& entry_agg_vals_pool() const {
    return entry_agg_vals_;
  }

  /// True when any column borrows external (mapped) storage.
  bool borrowed() const {
    return packed_pool_.borrowed() || node_offsets_.borrowed() ||
           entry_vb_.borrowed() || entry_bit_.borrowed();
  }

  /// Freezes the structure: bit-packs the candidate pool (dropping the raw
  /// build-time copy) and makes any later AddCandidate / RehashCandidates
  /// a contract violation (enumeration must never mutate a shared
  /// dictionary) that aborts in debug/sanitizer builds.
  void Seal();
  bool sealed() const { return sealed_; }

 private:
  friend class DictionaryBuilder;

  /// Appends `vb` to the pool, assigning the next dense id. Build-time
  /// only: invalidates candidate() spans (pool growth) — asserts !sealed().
  uint32_t AddCandidate(TupleSpan vb);
  /// Rebuilds the open-addressed id table over the pool. Build-time only:
  /// racy against concurrent FindValuation — asserts !sealed().
  void RehashCandidates();
  /// The id table build itself. const (id_slots_ is mutable) so the
  /// deferred path can run it from FindValuation under call_once.
  void BuildIdSlots() const;

  // Hash of candidate `id` from whichever pool currently holds it.
  uint64_t CandidateHash(uint32_t id) const;

  bool sealed_ = false;
  int vb_arity_ = 0;
  size_t num_candidates_ = 0;
  // Build-time raw pool (num_candidates * vb_arity); cleared by Seal().
  std::vector<Value> candidate_pool_;
  // Post-seal bit-packed pool (core/bitpack.h).
  PackedTuplePool packed_pool_;
  // Open-addressed hash table: slot -> candidate id (kNoValuation = empty).
  // Power-of-two size, linear probing against pool rows. Derived state (a
  // cache over the pool), hence mutable: the zero-copy load defers its
  // construction to the first FindValuation so opening stays O(header).
  mutable std::vector<uint32_t> id_slots_;
  // Non-null iff the id table build is still pending (zero-copy loads
  // only). call_once makes the lazy build safe under concurrent probes;
  // heap loads and the builder leave this null and build eagerly, so the
  // hot probe path costs one null test.
  std::unique_ptr<std::once_flag> deferred_slots_;

  // CSR entries: node_offsets_[n] .. node_offsets_[n+1] index the parallel
  // entry columns, sorted by valuation id within each node. Owned after a
  // build or heap load; borrowed from the mapping on a zero-copy load.
  ColStore<uint32_t> node_offsets_;
  ColStore<uint32_t> entry_vb_;
  ColStore<uint8_t> entry_bit_;
  // Optional per-entry aggregate annotation columns (see above).
  int agg_mu_ = 0;
  ColStore<uint64_t> entry_agg_count_;
  ColStore<Value> entry_agg_vals_;
};

/// Builds the dictionary for a tree; see file comment.
class DictionaryBuilder {
 public:
  DictionaryBuilder(const std::vector<BoundAtom>* atoms,
                    const CostModel* cost, const DelayBalancedTree* tree,
                    const LexDomain* domain, int num_bound, double tau,
                    double alpha);

  HeavyDictionary Build();

 private:
  struct Entry {
    uint32_t vb;
    uint8_t bit;
  };

  // Enumerates the candidate bound valuations (join over bound variables).
  void CollectCandidates(HeavyDictionary* dict);
  // One node's heavy-pair sweep: entries out, surviving candidates to
  // `live`. Thread-safe for distinct nodes (reads shared state only).
  void ProcessOne(const HeavyDictionary& dict, std::vector<Entry>* entries,
                  int node, const std::vector<FBox>& boxes,
                  const std::vector<uint32_t>& cand,
                  std::vector<uint32_t>* live) const;
  // Recursive heavy-pair sweep appending into `staging` (per tree node).
  void ProcessNode(HeavyDictionary* dict,
                   std::vector<std::vector<Entry>>* staging, int node,
                   const FInterval& interval,
                   const std::vector<uint32_t>& cand);
  // True iff the join under vb restricted to `boxes` is non-empty.
  bool ProbeNonEmpty(TupleSpan vb, const std::vector<FBox>& boxes) const;

  const std::vector<BoundAtom>* atoms_;
  const CostModel* cost_;
  const DelayBalancedTree* tree_;
  const LexDomain* domain_;
  int num_bound_;
  double tau_;
  double alpha_;
};

}  // namespace cqc

#endif  // CQC_CORE_DICTIONARY_H_

#include "baseline/direct_eval.h"

#include <set>

#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/timer.h"

namespace cqc {
namespace {

/// Adapts a JoinIterator to the TupleEnumerator interface.
class JoinEnumerator : public TupleEnumerator {
 public:
  explicit JoinEnumerator(JoinIterator join) : join_(std::move(join)) {}
  bool Next(Tuple* out) override { return join_.Next(out); }
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    return join_.NextBatch(out, max_tuples);
  }

 private:
  JoinIterator join_;
};

}  // namespace

Result<std::unique_ptr<DirectEval>> DirectEval::Build(
    const AdornedView& view, const Database& db, const Database* aux_db) {
  WallTimer timer;
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error("DirectEval requires a natural join view");
  auto de = std::unique_ptr<DirectEval>(new DirectEval(view));
  for (const Atom& atom : cq.atoms()) {
    const Relation* rel = ResolveRelation(atom.relation, db, aux_db);
    if (rel == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    de->atoms_.emplace_back(atom, *rel, view.bound_vars(),
                            view.free_vars());
  }
  de->build_seconds_ = timer.Seconds();
  return std::move(de);
}

std::unique_ptr<TupleEnumerator> DirectEval::Answer(
    const BoundValuation& vb) const {
  const int mu = view_.num_free();
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms_) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.SeekBound(vb);
    if (in.start.empty()) return std::make_unique<EmptyEnumerator>();
    in.start_level = atom.num_bound();
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], atom.num_bound() + i);
    inputs.push_back(std::move(in));
  }
  if (mu == 0) {
    // Boolean request: all atoms non-empty under vb.
    std::vector<Tuple> one{Tuple{}};
    return std::make_unique<VectorEnumerator>(std::move(one));
  }
  JoinIterator join(std::move(inputs), mu,
                    std::vector<LevelConstraint>(mu, LevelConstraint::Any()));
  return std::make_unique<JoinEnumerator>(std::move(join));
}

bool DirectEval::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

size_t DirectEval::SpaceBytes() const {
  std::set<const Relation*> distinct;
  for (const BoundAtom& atom : atoms_) distinct.insert(&atom.relation());
  size_t bytes = 0;
  for (const Relation* r : distinct) bytes += r->IndexBytes();
  return bytes;
}

}  // namespace cqc

#include "baseline/direct_eval.h"

#include <optional>
#include <set>

#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/timer.h"

namespace cqc {
namespace {

/// Adapts a JoinIterator to the TupleEnumerator interface.
class JoinEnumerator : public TupleEnumerator {
 public:
  explicit JoinEnumerator(JoinIterator join) : join_(std::move(join)) {}
  bool Next(Tuple* out) override { return join_.Next(out); }
  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    return join_.NextBatch(out, max_tuples);
  }

 private:
  JoinIterator join_;
};

}  // namespace

Result<std::unique_ptr<DirectEval>> DirectEval::Build(
    const AdornedView& view, const Database& db, const Database* aux_db) {
  WallTimer timer;
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error("DirectEval requires a natural join view");
  auto de = std::unique_ptr<DirectEval>(new DirectEval(view));
  for (const Atom& atom : cq.atoms()) {
    const Relation* rel = ResolveRelation(atom.relation, db, aux_db);
    if (rel == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    de->atoms_.emplace_back(atom, *rel, view.bound_vars(),
                            view.free_vars());
  }
  de->build_seconds_ = timer.Seconds();
  return std::move(de);
}

namespace {

// Builds the per-atom join inputs for a bound valuation; nullopt when some
// atom has no rows under vb (the whole request is empty). Shared by the
// full and range-restricted answer paths so they can never diverge.
std::optional<std::vector<JoinAtomInput>> BuildJoinInputs(
    const std::vector<BoundAtom>& atoms, const BoundValuation& vb) {
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.SeekBound(vb);
    if (in.start.empty()) return std::nullopt;
    in.start_level = atom.num_bound();
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], atom.num_bound() + i);
    inputs.push_back(std::move(in));
  }
  return inputs;
}

}  // namespace

std::unique_ptr<TupleEnumerator> DirectEval::Answer(
    const BoundValuation& vb) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  const int mu = view_.num_free();
  auto inputs = BuildJoinInputs(atoms_, vb);
  if (!inputs.has_value()) return std::make_unique<EmptyEnumerator>();
  if (mu == 0) {
    // Boolean request: all atoms non-empty under vb.
    std::vector<Tuple> one{Tuple{}};
    return std::make_unique<VectorEnumerator>(std::move(one));
  }
  JoinIterator join(std::move(*inputs), mu,
                    std::vector<LevelConstraint>(mu, LevelConstraint::Any()));
  return std::make_unique<JoinEnumerator>(std::move(join));
}

std::unique_ptr<TupleEnumerator> DirectEval::AnswerRange(
    const BoundValuation& vb, const FInterval& range) const {
  const int mu = view_.num_free();
  CQC_CHECK_GT(mu, 0) << "AnswerRange needs a free dimension";
  CQC_CHECK_EQ((int)range.lo.size(), mu);
  CQC_CHECK_EQ((int)range.hi.size(), mu);
  if (range.Empty()) return std::make_unique<EmptyEnumerator>();
  auto inputs = BuildJoinInputs(atoms_, vb);
  if (!inputs.has_value()) return std::make_unique<EmptyEnumerator>();
  return std::make_unique<BoxJoinEnumerator>(std::move(*inputs), mu,
                                             BoxDecompose(range));
}

bool DirectEval::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

size_t DirectEval::SpaceBytes() const {
  std::set<const Relation*> distinct;
  for (const BoundAtom& atom : atoms_) distinct.insert(&atom.relation());
  size_t bytes = 0;
  for (const Relation* r : distinct) bytes += r->IndexBytes();
  return bytes;
}

}  // namespace cqc

// Baseline 2 (§2.3, second extremal solution): answer every access request
// by running a worst-case optimal join directly over the input database.
// Optimal space O(|D|) (just the sorted indexes), delay up to the full
// evaluation time.
#ifndef CQC_BASELINE_DIRECT_EVAL_H_
#define CQC_BASELINE_DIRECT_EVAL_H_

#include <memory>

#include "core/enumerator.h"
#include "core/finterval.h"
#include "join/bound_atom.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

class DirectEval {
 public:
  static Result<std::unique_ptr<DirectEval>> Build(
      const AdornedView& view, const Database& db,
      const Database* aux_db = nullptr);

  /// Streams the access request via generic join (lexicographic order).
  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;
  bool AnswerExists(const BoundValuation& vb) const;

  /// Range-restricted Answer: exactly the outputs inside the closed lex
  /// interval `range` (arity num_free), in the same order — the join runs
  /// once per box of the Lemma 1 decomposition of `range`
  /// (BoxJoinEnumerator). Lets the baseline consume the same ShardPlan lex
  /// ranges as the compressed structure, for differential shard testing
  /// and parallel draining. Requires num_free() > 0.
  std::unique_ptr<TupleEnumerator> AnswerRange(const BoundValuation& vb,
                                               const FInterval& range) const;

  /// Space: the sorted tries over the base relations (linear).
  size_t SpaceBytes() const;
  double build_seconds() const { return build_seconds_; }
  const AdornedView& view() const { return view_; }

 private:
  DirectEval(AdornedView view) : view_(std::move(view)) {}

  AdornedView view_;
  std::vector<BoundAtom> atoms_;
  double build_seconds_ = 0;
};

}  // namespace cqc

#endif  // CQC_BASELINE_DIRECT_EVAL_H_

// Baseline 1 (§2.3, first extremal solution): materialize the full view
// output and index it by the bound variables. Optimal delay O(1), space
// equal to the output size (up to |D|^{rho*} by AGM).
#ifndef CQC_BASELINE_MATERIALIZED_VIEW_H_
#define CQC_BASELINE_MATERIALIZED_VIEW_H_

#include <memory>

#include "core/aggregate.h"
#include "core/enumerator.h"
#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

class MaterializedView {
 public:
  /// Joins the full view and stores it sorted by [bound vars..., free
  /// vars...]; answering is a range scan.
  static Result<std::unique_ptr<MaterializedView>> Build(
      const AdornedView& view, const Database& db,
      const Database* aux_db = nullptr);

  std::unique_ptr<TupleEnumerator> Answer(const BoundValuation& vb) const;
  bool AnswerExists(const BoundValuation& vb) const;

  /// |Q^eta[v_b]| via O(num_bound) index refinements (the table is distinct,
  /// so the refined row range size *is* the answer count). No scan.
  size_t CountAnswer(const BoundValuation& vb) const;

  /// Grouped ring aggregate over the refined row range: a columnar walk
  /// reading only the group/value columns out of the sorted index — no
  /// tuple materialization. Prefix group sets stream contiguous runs;
  /// arbitrary group sets fold through a map.
  AggregateResult AnswerAggregate(const BoundValuation& vb,
                                  const std::vector<int>& group_vars,
                                  const AggSpec& spec) const;

  size_t num_tuples() const { return table_->size(); }
  /// Space of the materialized output + its index.
  size_t SpaceBytes() const;
  double build_seconds() const { return build_seconds_; }
  const AdornedView& view() const { return view_; }

 private:
  MaterializedView(AdornedView view) : view_(std::move(view)) {}

  AdornedView view_;
  std::unique_ptr<Relation> table_;  // columns [bound..., free...]
  const SortedIndex* index_ = nullptr;
  double build_seconds_ = 0;
};

}  // namespace cqc

#endif  // CQC_BASELINE_MATERIALIZED_VIEW_H_

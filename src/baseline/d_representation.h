// Baseline 3: factorized d-representation (Prop. 2 / Prop. 4).
//
// A DecomposedRep with the all-zero delay assignment over the best
// elimination-order connex decomposition: every bag is materialized and
// every access request is answered with O(1) delay using space
// O(|D|^{fhw(H | V_b)}) — the paper's generalization of Olteanu-Zavodny
// d-representations to adorned views. With V_b = empty this *is* the
// d-representation of the full result.
#ifndef CQC_BASELINE_D_REPRESENTATION_H_
#define CQC_BASELINE_D_REPRESENTATION_H_

#include <memory>

#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"

namespace cqc {

inline Result<std::unique_ptr<DecomposedRep>> BuildDRepresentation(
    const AdornedView& view, const Database& db,
    const Database* aux_db = nullptr) {
  Hypergraph h(view.cq());
  Result<ConnexSearchResult> found =
      SearchConnexDecomposition(h, view.bound_set());
  if (!found.ok()) return found.status();
  DecomposedRepOptions options;  // delta = 0 everywhere
  return DecomposedRep::Build(view, db, found.value().decomposition, options,
                              aux_db);
}

}  // namespace cqc

#endif  // CQC_BASELINE_D_REPRESENTATION_H_

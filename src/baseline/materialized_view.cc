#include "baseline/materialized_view.h"

#include <map>
#include <numeric>

#include "join/bound_atom.h"
#include "join/generic_join.h"
#include "query/normalize.h"
#include "util/timer.h"

namespace cqc {
namespace {

class SuffixScanEnumerator : public TupleEnumerator {
 public:
  SuffixScanEnumerator(const SortedIndex* index, RowRange range, int from,
                       int to)
      : index_(index), range_(range), from_(from), to_(to),
        row_(range.begin) {}
  bool Next(Tuple* out) override {
    if (row_ >= range_.end) return false;
    out->resize(to_ - from_);
    for (int l = from_; l < to_; ++l)
      (*out)[l - from_] = index_->ValueAt(l, row_);
    ++row_;
    return true;
  }

  size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
    size_t n = 0;
    while (n < max_tuples && row_ < range_.end) {
      Value* slot = out->AppendSlot();
      for (int l = from_; l < to_; ++l)
        slot[l - from_] = index_->ValueAt(l, row_);
      ++row_;
      ++n;
    }
    return n;
  }

 private:
  const SortedIndex* index_;
  RowRange range_;
  int from_, to_;
  size_t row_;
};

}  // namespace

Result<std::unique_ptr<MaterializedView>> MaterializedView::Build(
    const AdornedView& view, const Database& db, const Database* aux_db) {
  WallTimer timer;
  const ConjunctiveQuery& cq = view.cq();
  if (!cq.IsNaturalJoin())
    return Status::Error("MaterializedView requires a natural join view");

  std::vector<VarId> order = view.bound_vars();
  order.insert(order.end(), view.free_vars().begin(),
               view.free_vars().end());
  const int k = (int)order.size();

  std::vector<VarId> no_bound;
  std::vector<const Relation*> rels;
  for (const Atom& atom : cq.atoms()) {
    const Relation* rel = ResolveRelation(atom.relation, db, aux_db);
    if (rel == nullptr)
      return Status::Error("unknown relation " + atom.relation);
    rels.push_back(rel);
  }
  // Bind atoms (index builds) on the shared pool.
  std::vector<BoundAtom> atoms = BindAtomsParallel(cq, rels, no_bound, order);

  auto mv = std::unique_ptr<MaterializedView>(new MaterializedView(view));
  mv->table_ = std::make_unique<Relation>("materialized_view", k);

  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  JoinIterator join(std::move(inputs), k,
                    std::vector<LevelConstraint>(k, LevelConstraint::Any()));
  constexpr size_t kBatch = 1024;
  TupleBuffer batch(k);
  for (;;) {
    batch.Clear();
    const size_t n = join.NextBatch(&batch, kBatch);
    for (size_t i = 0; i < n; ++i) mv->table_->InsertRow(batch[i].data());
    if (n < kBatch) break;
  }
  mv->table_->Seal();
  std::vector<int> identity(k);
  std::iota(identity.begin(), identity.end(), 0);
  mv->index_ = &mv->table_->GetIndex(identity);
  mv->build_seconds_ = timer.Seconds();
  return std::move(mv);
}

std::unique_ptr<TupleEnumerator> MaterializedView::Answer(
    const BoundValuation& vb) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  const int nb = view_.num_bound();
  const int k = nb + view_.num_free();
  RowRange r = index_->Root();
  for (int i = 0; i < nb && !r.empty(); ++i)
    r = index_->Refine(r, i, vb[i]);
  if (r.empty()) return std::make_unique<EmptyEnumerator>();
  return std::make_unique<SuffixScanEnumerator>(index_, r, nb, k);
}

bool MaterializedView::AnswerExists(const BoundValuation& vb) const {
  auto e = Answer(vb);
  Tuple t;
  return e->Next(&t);
}

size_t MaterializedView::CountAnswer(const BoundValuation& vb) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  RowRange r = index_->Root();
  for (int i = 0; i < view_.num_bound() && !r.empty(); ++i)
    r = index_->Refine(r, i, vb[i]);
  return r.size();
}

AggregateResult MaterializedView::AnswerAggregate(
    const BoundValuation& vb, const std::vector<int>& group_vars,
    const AggSpec& spec) const {
  CQC_CHECK_EQ((int)vb.size(), view_.num_bound());
  const int nb = view_.num_bound();
  const int k = (int)group_vars.size();
  const int value_var =
      spec.func == AggFunc::kCount ? -1 : spec.value_var;
  RowRange r = index_->Root();
  for (int i = 0; i < nb && !r.empty(); ++i)
    r = index_->Refine(r, i, vb[i]);

  if (IsPrefixGroupSet(group_vars)) {
    // Rows are sorted by the free suffix, so prefix groups are contiguous
    // runs: one columnar pass, constant state.
    GroupAccumulator acc(k, spec);
    std::vector<Value> key((size_t)k);
    for (size_t row = r.begin; row < r.end; ++row) {
      for (int i = 0; i < k; ++i) key[i] = index_->ValueAt(nb + i, row);
      const Value v =
          value_var >= 0 ? index_->ValueAt(nb + value_var, row) : 0;
      acc.AddCell(key.data(), 1, v, v, v);
    }
    return acc.Finish();
  }

  // Arbitrary group set: fold through an ordered map (std::map iteration
  // is lex order, matching the prefix path's strictly-ascending groups).
  std::map<Tuple, AggCell> groups;
  Tuple key((size_t)k);
  for (size_t row = r.begin; row < r.end; ++row) {
    for (int i = 0; i < k; ++i)
      key[i] = index_->ValueAt(nb + group_vars[i], row);
    AggCell& cell = groups[key];
    if (value_var >= 0) {
      cell.FoldValue(index_->ValueAt(nb + value_var, row));
    } else {
      cell.FoldCountOnly();
    }
  }
  AggregateResult out;
  out.group_arity = k;
  for (const auto& [gk, cell] : groups) {
    out.keys.insert(out.keys.end(), gk.begin(), gk.end());
    out.counts.push_back(cell.count);
    switch (spec.func) {
      case AggFunc::kCount: break;
      case AggFunc::kSum: out.values.push_back(cell.sum); break;
      case AggFunc::kMin: out.values.push_back(cell.min); break;
      case AggFunc::kMax: out.values.push_back(cell.max); break;
    }
  }
  return out;
}

size_t MaterializedView::SpaceBytes() const {
  return table_->BaseBytes() + table_->IndexBytes();
}

}  // namespace cqc

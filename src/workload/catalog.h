// Canned adorned views for every query family the paper analyzes.
//
// Each builder returns the AdornedView (over conventional relation names)
// matching a worked example of the paper; the matching data generators live
// in workload/generators.h. Views with projections in the paper (co-author,
// k-SetDisjointness) are stated here in their *full* variants — the paper's
// own §3.3 reduction answers the projected/boolean form through the full
// view's data structure.
#ifndef CQC_WORKLOAD_CATALOG_H_
#define CQC_WORKLOAD_CATALOG_H_

#include <string>
#include <vector>

#include "query/adorned_view.h"
#include "relational/database.h"
#include "util/status.h"

namespace cqc {

/// Catalog statistics for one view over one database: everything the
/// cost-based planner needs to score candidate representations. All sizes
/// use a floor of 2 tuples so logarithms stay positive and ratios finite.
struct CatalogStats {
  /// ln |R_F| per atom, aligned with view.cq().atoms().
  std::vector<double> log_sizes;
  /// ln N for N = the largest referenced relation (the paper's N).
  double log_n = 0;
  /// ln |D| for |D| = total tuples across the distinct referenced relations.
  double log_input = 0;
  /// Base-data footprint of the distinct referenced relations.
  size_t input_bytes = 0;
  size_t total_tuples = 0;
  /// Expected base-table mutations per access request. Not derivable from
  /// the data: CollectCatalogStats leaves it 0 and the workload owner (or
  /// PlannerOptions::churn_per_request) fills it in. The planner prices
  /// maintenance — rebuild amortization for static structures, the delta
  /// term of the updatable structure — from this rate.
  double churn_per_request = 0;
};

/// Collects statistics for `view` against (db, aux_db). Fails if an atom's
/// relation is missing from both databases.
Result<CatalogStats> CollectCatalogStats(const AdornedView& view,
                                         const Database& db,
                                         const Database* aux_db = nullptr);

/// Example 1 / Example 2: triangle over a single (symmetric) relation R.
///   Q^adorn(x,y,z) = R(x,y), R(y,z), R(z,x)
AdornedView TriangleView(const std::string& adornment);

/// Example 4 (the running example):
///   Q^fffbbb(x,y,z,w1,w2,w3) = R1(w1,x,y), R2(w2,y,z), R3(w3,x,z)
AdornedView RunningExampleView();

/// Example 7: star join S_n^{b..bf}(x1..xn, z) = R1(x1,z), ..., Rn(xn,z).
AdornedView StarView(int n, const std::string& adornment = "");

/// Example 10: path P_n^{bf..fb}(x1..x_{n+1}) = R1(x1,x2), .., Rn(xn,x_{n+1}).
AdornedView PathView(int n, const std::string& adornment = "");

/// Example 6: Loomis-Whitney LW_n^{b..bf}(x1..xn) = S1(x2..xn), ...,
/// Sn(x1..x_{n-1}) (S_i omits x_i).
AdornedView LoomisWhitneyView(int n);

/// §1 graph-analytics application, full variant with the shared paper as a
/// witness: V^bff(x, y, p) = R(x,p), R(y,p).
AdornedView CoauthorView();

/// §3.1 / [13] fast set intersection: S_2^{bbf}(s1,s2,z) = R(s1,z), R(s2,z).
AdornedView SetIntersectionView();

/// §3.3 k-SetDisjointness through the full view Q^{b..bf}(s1..sk, z) =
/// R(s1,z), ..., R(sk,z); emptiness of the answer = disjointness.
AdornedView SetDisjointnessView(int k);

}  // namespace cqc

#endif  // CQC_WORKLOAD_CATALOG_H_

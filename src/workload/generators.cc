#include "workload/generators.h"

#include <set>

#include "util/logging.h"

namespace cqc {

Relation* MakeRandomGraph(Database& db, const std::string& name,
                          uint64_t num_nodes, size_t num_edges,
                          bool symmetric, uint64_t seed) {
  CQC_CHECK_GT(num_nodes, 1u);
  Relation* r = db.AddRelation(name, 2);
  Rng rng(seed);
  std::set<std::pair<Value, Value>> seen;
  size_t guard = 0;
  while (seen.size() < num_edges && guard < num_edges * 50 + 1000) {
    ++guard;
    Value a = rng.UniformRange(1, num_nodes);
    Value b = rng.UniformRange(1, num_nodes);
    if (a == b) continue;
    if (!seen.insert({a, b}).second) continue;
    r->Insert({a, b});
    if (symmetric && seen.insert({b, a}).second) r->Insert({b, a});
  }
  r->Seal();
  return r;
}

Relation* MakeRandomRelation(Database& db, const std::string& name,
                             const std::vector<uint64_t>& domain_sizes,
                             size_t count, uint64_t seed) {
  Relation* r = db.AddRelation(name, (int)domain_sizes.size());
  Rng rng(seed);
  Tuple t(domain_sizes.size());
  std::set<Tuple> seen;
  size_t guard = 0;
  while (seen.size() < count && guard < count * 50 + 1000) {
    ++guard;
    for (size_t c = 0; c < domain_sizes.size(); ++c)
      t[c] = rng.UniformRange(1, domain_sizes[c]);
    if (seen.insert(t).second) r->Insert(t);
  }
  r->Seal();
  return r;
}

Relation* MakeZipfBipartite(Database& db, const std::string& name,
                            uint64_t num_authors, uint64_t num_papers,
                            size_t count, double theta, uint64_t seed) {
  Relation* r = db.AddRelation(name, 2);
  Rng rng(seed);
  ZipfSampler zipf(num_authors, theta);
  std::set<std::pair<Value, Value>> seen;
  size_t guard = 0;
  while (seen.size() < count && guard < count * 50 + 1000) {
    ++guard;
    Value author = zipf.Sample(rng) + 1;
    Value paper = rng.UniformRange(1, num_papers);
    if (seen.insert({author, paper}).second) r->Insert({author, paper});
  }
  r->Seal();
  return r;
}

Relation* MakeSetFamily(Database& db, const std::string& name,
                        uint64_t num_sets, uint64_t universe,
                        size_t total_size, double theta, uint64_t seed) {
  Relation* r = db.AddRelation(name, 2);
  Rng rng(seed);
  ZipfSampler zipf(num_sets, theta);
  std::set<std::pair<Value, Value>> seen;
  size_t guard = 0;
  while (seen.size() < total_size && guard < total_size * 50 + 1000) {
    ++guard;
    Value set_id = zipf.Sample(rng) + 1;
    Value elem = rng.UniformRange(1, universe);
    if (seen.insert({set_id, elem}).second) r->Insert({set_id, elem});
  }
  r->Seal();
  return r;
}

std::vector<Relation*> MakePathRelations(Database& db,
                                         const std::string& prefix, int n,
                                         uint64_t num_nodes,
                                         size_t edges_per_relation,
                                         uint64_t seed) {
  std::vector<Relation*> out;
  for (int i = 1; i <= n; ++i) {
    out.push_back(MakeRandomGraph(db, prefix + std::to_string(i), num_nodes,
                                  edges_per_relation, /*symmetric=*/false,
                                  seed + (uint64_t)i * 7919));
  }
  return out;
}

std::vector<Relation*> MakeLoomisWhitneyRelations(Database& db,
                                                  const std::string& prefix,
                                                  int n, uint64_t num_nodes,
                                                  size_t count,
                                                  uint64_t seed) {
  std::vector<Relation*> out;
  std::vector<uint64_t> domains((size_t)n - 1, num_nodes);
  for (int i = 1; i <= n; ++i) {
    out.push_back(MakeRandomRelation(db, prefix + std::to_string(i), domains,
                                     count, seed + (uint64_t)i * 104729));
  }
  return out;
}

Relation* MakeTripartiteTriangleGraph(Database& db, const std::string& name,
                                      uint64_t m) {
  Relation* r = db.AddRelation(name, 2);
  // Vertex ids: A = [1, m], B = [m+1, 2m], C = [2m+1, 3m].
  auto add_biclique = [&](Value lo1, Value lo2) {
    for (Value a = 0; a < m; ++a) {
      for (Value b = 0; b < m; ++b) {
        r->Insert({lo1 + a, lo2 + b});
        r->Insert({lo2 + b, lo1 + a});
      }
    }
  };
  add_biclique(1, m + 1);
  add_biclique(m + 1, 2 * m + 1);
  add_biclique(2 * m + 1, 1);
  r->Seal();
  return r;
}

}  // namespace cqc

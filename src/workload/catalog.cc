#include "workload/catalog.h"

#include <cmath>
#include <set>

#include "query/normalize.h"
#include "query/parser.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace cqc {

Result<CatalogStats> CollectCatalogStats(const AdornedView& view,
                                         const Database& db,
                                         const Database* aux_db) {
  CatalogStats stats;
  std::set<const Relation*> distinct;
  double max_size = 2.0;
  for (const Atom& atom : view.cq().atoms()) {
    const Relation* rel = ResolveRelation(atom.relation, db, aux_db);
    if (rel == nullptr) {
      return Status::Error(
          StrFormat("catalog: unknown relation %s", atom.relation.c_str()));
    }
    const double size = std::max<double>(2.0, (double)rel->size());
    stats.log_sizes.push_back(std::log(size));
    max_size = std::max(max_size, size);
    distinct.insert(rel);
  }
  for (const Relation* rel : distinct) {
    stats.total_tuples += rel->size();
    stats.input_bytes += rel->BaseBytes();
  }
  stats.log_n = std::log(max_size);
  stats.log_input =
      std::log(std::max<double>(2.0, (double)stats.total_tuples));
  return stats;
}

namespace {

AdornedView MustParse(const std::string& text) {
  Result<AdornedView> v = ParseAdornedView(text);
  CQC_CHECK(v.ok()) << v.status().message() << " in " << text;
  return std::move(v).value();
}

}  // namespace

AdornedView TriangleView(const std::string& adornment) {
  CQC_CHECK_EQ(adornment.size(), 3u);
  return MustParse("Q^" + adornment + "(x,y,z) = R(x,y), R(y,z), R(z,x)");
}

AdornedView RunningExampleView() {
  return MustParse(
      "Q^fffbbb(x,y,z,w1,w2,w3) = R1(w1,x,y), R2(w2,y,z), R3(w3,x,z)");
}

AdornedView StarView(int n, const std::string& adornment) {
  CQC_CHECK_GE(n, 1);
  std::string ad = adornment.empty()
                       ? std::string((size_t)n, 'b') + "f"
                       : adornment;
  std::string head, body;
  for (int i = 1; i <= n; ++i) {
    head += StrFormat("x%d,", i);
    body += StrFormat("%sR%d(x%d,z)", i > 1 ? ", " : "", i, i);
  }
  return MustParse(StrFormat("Q^%s(%sz) = %s", ad.c_str(), head.c_str(),
                             body.c_str()));
}

AdornedView PathView(int n, const std::string& adornment) {
  CQC_CHECK_GE(n, 1);
  std::string ad = adornment;
  if (ad.empty()) {
    ad = "b" + std::string((size_t)n - 1, 'f') + "b";
  }
  std::string head, body;
  for (int i = 1; i <= n + 1; ++i)
    head += StrFormat("%sx%d", i > 1 ? "," : "", i);
  for (int i = 1; i <= n; ++i)
    body += StrFormat("%sR%d(x%d,x%d)", i > 1 ? ", " : "", i, i, i + 1);
  return MustParse(StrFormat("Q^%s(%s) = %s", ad.c_str(), head.c_str(),
                             body.c_str()));
}

AdornedView LoomisWhitneyView(int n) {
  CQC_CHECK_GE(n, 3);
  std::string ad = std::string((size_t)n - 1, 'b') + "f";
  std::string head;
  for (int i = 1; i <= n; ++i)
    head += StrFormat("%sx%d", i > 1 ? "," : "", i);
  std::string body;
  for (int i = 1; i <= n; ++i) {
    body += StrFormat("%sS%d(", i > 1 ? ", " : "", i);
    bool first = true;
    for (int j = 1; j <= n; ++j) {
      if (j == i) continue;
      body += StrFormat("%sx%d", first ? "" : ",", j);
      first = false;
    }
    body += ")";
  }
  return MustParse(StrFormat("Q^%s(%s) = %s", ad.c_str(), head.c_str(),
                             body.c_str()));
}

AdornedView CoauthorView() {
  return MustParse("Q^bff(x,y,p) = R(x,p), R(y,p)");
}

AdornedView SetIntersectionView() {
  return MustParse("Q^bbf(s1,s2,z) = R(s1,z), R(s2,z)");
}

AdornedView SetDisjointnessView(int k) {
  CQC_CHECK_GE(k, 2);
  std::string head, body;
  for (int i = 1; i <= k; ++i) {
    head += StrFormat("s%d,", i);
    body += StrFormat("%sR(s%d,z)", i > 1 ? ", " : "", i);
  }
  std::string ad = std::string((size_t)k, 'b') + "f";
  return MustParse(StrFormat("Q^%s(%sz) = %s", ad.c_str(), head.c_str(),
                             body.c_str()));
}

}  // namespace cqc

// Seeded synthetic data generators for the paper's workloads.
//
// Every generator takes an explicit seed; identical seeds reproduce
// identical databases. Relations are created inside the caller's Database
// and sealed before returning.
#ifndef CQC_WORKLOAD_GENERATORS_H_
#define CQC_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "relational/database.h"
#include "util/rng.h"

namespace cqc {

/// Random directed graph: `num_edges` distinct edges over `num_nodes`
/// vertices (node ids 1..num_nodes). If `symmetric`, both (a,b) and (b,a)
/// are inserted (Example 1's friendship relation).
Relation* MakeRandomGraph(Database& db, const std::string& name,
                          uint64_t num_nodes, size_t num_edges,
                          bool symmetric, uint64_t seed);

/// Random k-ary relation: `count` distinct tuples, column c drawn uniformly
/// from [1, domain_sizes[c]].
Relation* MakeRandomRelation(Database& db, const std::string& name,
                             const std::vector<uint64_t>& domain_sizes,
                             size_t count, uint64_t seed);

/// Zipf-skewed bipartite author-paper relation R(author, paper): `count`
/// pairs with authors drawn Zipf(theta) from [1, num_authors], papers
/// uniform from [1, num_papers] (the §1 DBLP-style workload).
Relation* MakeZipfBipartite(Database& db, const std::string& name,
                            uint64_t num_authors, uint64_t num_papers,
                            size_t count, double theta, uint64_t seed);

/// Set-membership relation R(set_id, element) for the fast-set-intersection
/// workload: `num_sets` sets over a universe of `universe` elements; set
/// sizes are skewed so a few sets are very large (the hard case of [13]).
Relation* MakeSetFamily(Database& db, const std::string& name,
                        uint64_t num_sets, uint64_t universe,
                        size_t total_size, double theta, uint64_t seed);

/// Path-query relations R1..Rn (binary) over shared node domains:
/// R_i ~ random graph on `num_nodes` nodes with `edges_per_relation` edges.
/// Returns the created relations ("<prefix>1" .. "<prefix>n").
std::vector<Relation*> MakePathRelations(Database& db,
                                         const std::string& prefix, int n,
                                         uint64_t num_nodes,
                                         size_t edges_per_relation,
                                         uint64_t seed);

/// Loomis-Whitney relations S1..Sn, each of arity n-1 (S_i omits x_i), with
/// `count` tuples per relation over domain [1, num_nodes].
std::vector<Relation*> MakeLoomisWhitneyRelations(Database& db,
                                                  const std::string& prefix,
                                                  int n, uint64_t num_nodes,
                                                  size_t count,
                                                  uint64_t seed);

/// Tripartite "worst-case" triangle graph: the union of complete bipartite
/// graphs A x B, B x C, C x A with |A|=|B|=|C|=m, as a symmetric edge
/// relation. |R| = 6 m^2 while the number of triangles is 2 m^3 — the
/// Theta(N^{3/2}) output regime of Example 1.
Relation* MakeTripartiteTriangleGraph(Database& db, const std::string& name,
                                      uint64_t m);

}  // namespace cqc

#endif  // CQC_WORKLOAD_GENERATORS_H_

#include <gtest/gtest.h>

#include "baseline/d_representation.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

// Theorem-2 answers come in decomposition order, so compare as sorted sets
// and separately assert there are no duplicates.
void CheckAllRequestsSetwise(const AdornedView& view, const Database& db,
                             const DecomposedRep& rep) {
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    std::vector<Tuple> got = CollectAll(*rep.Answer(vb));
    std::vector<Tuple> sorted = SortedCopy(got);
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate tuple emitted for " << view.ToString();
    EXPECT_EQ(sorted, OracleAnswer(view, db, vb)) << view.ToString();
  }
}

TreeDecomposition ZigZagFor(const AdornedView& view, int n) {
  std::vector<VarId> path_vars;
  for (int i = 1; i <= n + 1; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  return BuildZigZagPath(path_vars);
}

TEST(DecomposedRepTest, PathMaterializedBags) {
  Database db;
  MakePathRelations(db, "R", 4, 15, 60, 7);
  AdornedView view = PathView(4);
  TreeDecomposition td = ZigZagFor(view, 4);
  DecomposedRepOptions options;  // delta = 0: materialized bags
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  CheckAllRequestsSetwise(view, db, *rep.value());
}

TEST(DecomposedRepTest, PathCompressedBags) {
  Database db;
  MakePathRelations(db, "R", 4, 15, 60, 8);
  AdornedView view = PathView(4);
  TreeDecomposition td = ZigZagFor(view, 4);
  DecomposedRepOptions options;
  options.delta = DelayAssignment::Uniform(td, 0.3);
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  CheckAllRequestsSetwise(view, db, *rep.value());
}

TEST(DecomposedRepTest, PathLongerChainBothModes) {
  Database db;
  MakePathRelations(db, "R", 6, 10, 40, 9);
  AdornedView view = PathView(6);
  TreeDecomposition td = ZigZagFor(view, 6);
  for (double d : {0.0, 0.25, 0.5}) {
    DecomposedRepOptions options;
    options.delta = DelayAssignment::Uniform(td, d);
    auto rep = DecomposedRep::Build(view, db, td, options);
    ASSERT_TRUE(rep.ok()) << rep.status().message();
    CheckAllRequestsSetwise(view, db, *rep.value());
  }
}

TEST(DecomposedRepTest, TriangleViaSearch) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 21);
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  auto found = SearchConnexDecomposition(h, view.bound_set());
  ASSERT_TRUE(found.ok());
  for (double d : {0.0, 0.4}) {
    DecomposedRepOptions options;
    options.delta =
        DelayAssignment::Uniform(found.value().decomposition, d);
    auto rep =
        DecomposedRep::Build(view, db, found.value().decomposition, options);
    ASSERT_TRUE(rep.ok()) << rep.status().message();
    CheckAllRequestsSetwise(view, db, *rep.value());
  }
}

TEST(DecomposedRepTest, FixupOnAndOffAgree) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 28, 31);
  AdornedView view = PathView(5);
  TreeDecomposition td = ZigZagFor(view, 5);
  DecomposedRepOptions with_fixup;
  with_fixup.delta = DelayAssignment::Uniform(td, 0.35);
  with_fixup.run_fixup = true;
  DecomposedRepOptions without_fixup = with_fixup;
  without_fixup.run_fixup = false;
  auto a = DecomposedRep::Build(view, db, td, with_fixup);
  auto b = DecomposedRep::Build(view, db, td, without_fixup);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    EXPECT_EQ(SortedCopy(CollectAll(*a.value()->Answer(vb))),
              SortedCopy(CollectAll(*b.value()->Answer(vb))));
  }
}

TEST(DecomposedRepTest, DanglingTuplesArePruned) {
  // R1 has an edge whose endpoint never continues in R2: the semijoin
  // fixup must not lose or invent results.
  Database db;
  AddRelation(db, "R1", 2, {{1, 10}, {1, 11}, {2, 12}});
  AddRelation(db, "R2", 2, {{10, 5}, {12, 6}});
  // x2 = 11 is dangling.
  AdornedView view = PathView(2);  // Q^bfb(x1,x2,x3) = R1(x1,x2), R2(x2,x3)
  TreeDecomposition td = ZigZagFor(view, 2);
  DecomposedRepOptions options;
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok());
  CheckAllRequestsSetwise(view, db, *rep.value());
  EXPECT_EQ(CollectAll(*rep.value()->Answer({1, 5})),
            (std::vector<Tuple>{{10}}));
  EXPECT_TRUE(CollectAll(*rep.value()->Answer({1, 6})).empty());
}

TEST(DecomposedRepTest, FullEnumerationDRepresentation) {
  // V_b = empty: Prop. 2/4 regime via the BuildDRepresentation helper.
  Database db;
  MakePathRelations(db, "R", 3, 12, 50, 77);
  AdornedView view = PathView(3, "ffff");
  auto rep = BuildDRepresentation(view, db);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  std::vector<Tuple> got = SortedCopy(CollectAll(*rep.value()->Answer({})));
  EXPECT_EQ(got, OracleAnswer(view, db, {}));
  EXPECT_FALSE(got.empty());
}

TEST(DecomposedRepTest, CoauthorViewDRepresentation) {
  Database db;
  MakeZipfBipartite(db, "R", 20, 40, 120, 0.8, 5);
  AdornedView view = CoauthorView();
  auto rep = BuildDRepresentation(view, db);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  CheckAllRequestsSetwise(view, db, *rep.value());
}

TEST(DecomposedRepTest, EmptyDatabase) {
  Database db;
  AddRelation(db, "R1", 2, {});
  AddRelation(db, "R2", 2, {});
  AdornedView view = PathView(2);
  TreeDecomposition td = ZigZagFor(view, 2);
  DecomposedRepOptions options;
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value()->AnswerExists({1, 2}));
}

TEST(DecomposedRepTest, RejectsInvalidDecomposition) {
  Database db;
  MakePathRelations(db, "R", 2, 5, 8, 3);
  AdornedView view = PathView(2);
  // A decomposition whose root is not V_b.
  TreeDecomposition td;
  VarId x1 = view.cq().FindVar("x1"), x2 = view.cq().FindVar("x2"),
        x3 = view.cq().FindVar("x3");
  int r = td.AddNode(VarBit(x1) | VarBit(x2));
  int n = td.AddNode(VarBit(x2) | VarBit(x3));
  td.AddEdge(r, n);
  td.Finalize(r);
  DecomposedRepOptions options;
  EXPECT_FALSE(DecomposedRep::Build(view, db, td, options).ok());
}

TEST(DecomposedRepTest, StatsReportBags) {
  Database db;
  MakePathRelations(db, "R", 4, 10, 30, 13);
  AdornedView view = PathView(4);
  TreeDecomposition td = ZigZagFor(view, 4);
  DecomposedRepOptions options;
  options.delta = DelayAssignment::Uniform(td, 0.2);
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok());
  const DecomposedRepStats& s = rep.value()->stats();
  EXPECT_EQ(s.bag_aux_bytes.size(), 2u);  // two non-root bags for n=4
  EXPECT_GT(s.total_aux_bytes, 0u);
  EXPECT_NEAR(s.metrics.height, 0.4, 1e-9);
}

TEST(DecomposedRepTest, CountAnswerMatchesEnumerationEverywhere) {
  Database db;
  MakePathRelations(db, "R", 4, 12, 45, 61);
  AdornedView view = PathView(4);
  TreeDecomposition td = ZigZagFor(view, 4);
  for (double d : {0.0, 0.3}) {
    DecomposedRepOptions options;
    options.delta = DelayAssignment::Uniform(td, d);
    auto rep = DecomposedRep::Build(view, db, td, options);
    ASSERT_TRUE(rep.ok());
    for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
      EXPECT_EQ(rep.value()->CountAnswer(vb),
                OracleAnswer(view, db, vb).size());
    }
  }
}

TEST(DecomposedRepTest, CountAnswerOnCoauthorSkew) {
  // Counting a skewed co-author view without enumerating its large output.
  Database db;
  MakeZipfBipartite(db, "R", 15, 30, 100, 0.9, 8);
  AdornedView view = CoauthorView();
  auto rep = BuildDRepresentation(view, db);
  ASSERT_TRUE(rep.ok());
  for (Value author = 1; author <= 15; ++author) {
    EXPECT_EQ(rep.value()->CountAnswer({author}),
              OracleAnswer(view, db, {author}).size());
  }
}

// Property sweep over random path instances, both bag modes.
class DecomposedRepSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DecomposedRepSweep, MatchesOracle) {
  auto [seed, d] = GetParam();
  Database db;
  MakePathRelations(db, "R", 4, 8 + seed, 30 + 5 * seed, seed * 31 + 1);
  AdornedView view = PathView(4);
  TreeDecomposition td = ZigZagFor(view, 4);
  DecomposedRepOptions options;
  options.delta = DelayAssignment::Uniform(td, d);
  auto rep = DecomposedRep::Build(view, db, td, options);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  CheckAllRequestsSetwise(view, db, *rep.value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposedRepSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0.0, 0.3, 0.6)));

}  // namespace
}  // namespace cqc

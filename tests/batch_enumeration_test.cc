// The batch enumeration contract: NextBatch(buffer, n) and repeated Next()
// must expose the same stream — same tuples, same (lexicographic) order, no
// duplicates, no drops — for every enumerator in the library, every batch
// size (including n = 1 and sizes that leave a partial final batch), and
// mixed Next/NextBatch pulls. Runs across the property-sweep query set.
#include <gtest/gtest.h>

#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/tuple_arena.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::IsStrictlySortedLex;
using testing::OracleAnswer;

// Drains `make()` both ways for several batch sizes and checks stream
// equality against `expected`.
void CheckBatchAgreement(
    const std::function<std::unique_ptr<TupleEnumerator>()>& make, int arity,
    const std::vector<Tuple>& expected) {
  // Baseline: one-at-a-time.
  {
    auto e = make();
    EXPECT_EQ(CollectAll(*e), expected);
  }
  // Batched, various sizes: n = 1, tiny sizes that force partial final
  // batches, and a size larger than the whole stream.
  for (size_t batch : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       expected.size() + 16}) {
    auto e = make();
    TupleBuffer buf(arity);
    for (;;) {
      const size_t before = buf.size();
      const size_t n = e->NextBatch(&buf, batch);
      EXPECT_EQ(buf.size(), before + n);
      if (n < batch) break;
    }
    EXPECT_EQ(buf.ToTuples(), expected) << "batch size " << batch;
    // Exhausted streams stay exhausted.
    TupleBuffer again(arity);
    EXPECT_EQ(e->NextBatch(&again, 4), 0u);
    Tuple t;
    EXPECT_FALSE(e->Next(&t));
  }
  // Mixed pulls: alternate Next() and NextBatch() on one stream.
  {
    auto e = make();
    std::vector<Tuple> got;
    TupleBuffer buf(arity);
    Tuple t;
    for (;;) {
      if (e->Next(&t)) {
        got.push_back(t);
      } else {
        break;
      }
      buf.Clear();
      const size_t n = e->NextBatch(&buf, 3);
      for (size_t i = 0; i < n; ++i) got.push_back(buf[i].ToTuple());
      if (n < 3) break;
    }
    EXPECT_EQ(got, expected);
  }
}

void CheckAllStructures(const AdornedView& view, const Database& db,
                        double tau) {
  CompressedRepOptions copt;
  copt.tau = tau;
  auto cr = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(cr.ok()) << cr.status().message() << " " << view.ToString();
  auto de = DirectEval::Build(view, db);
  ASSERT_TRUE(de.ok());
  auto mv = MaterializedView::Build(view, db);
  ASSERT_TRUE(mv.ok());
  const int arity = view.num_free();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expected = OracleAnswer(view, db, vb);
    EXPECT_TRUE(IsStrictlySortedLex(expected));
    CheckBatchAgreement([&] { return cr.value()->Answer(vb); }, arity,
                        expected);
    CheckBatchAgreement([&] { return de.value()->Answer(vb); }, arity,
                        expected);
    CheckBatchAgreement([&] { return mv.value()->Answer(vb); }, arity,
                        expected);
  }
}

// Every adornment of a 4-variable cyclic query (the property-sweep net).
class BatchAdornmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchAdornmentSweep, BatchMatchesNextEverywhere) {
  const int mask = GetParam();
  std::string ad;
  for (int i = 0; i < 4; ++i) ad += (mask >> i) & 1 ? 'b' : 'f';
  Database db;
  Rng rng(99);
  auto rel = [&](const std::string& name) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 40; ++i)
      rows.push_back({rng.UniformRange(1, 6), rng.UniformRange(1, 6)});
    AddRelation(db, name, 2, rows);
  };
  rel("R");
  rel("S");
  rel("T");
  rel("U");
  auto view = ParseAdornedView(
      "Q^" + ad + "(a,b,c,d) = R(a,b), S(b,c), T(c,d), U(d,a)");
  ASSERT_TRUE(view.ok());
  CheckAllStructures(view.value(), db, 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, BatchAdornmentSweep,
                         ::testing::Range(0, 16));

TEST(BatchEnumeration, QueryFamilies) {
  {
    Database db;
    MakeLoomisWhitneyRelations(db, "S", 4, 6, 60, 7);
    CheckAllStructures(LoomisWhitneyView(4), db, 2.0);
  }
  {
    Database db;
    for (int i = 1; i <= 4; ++i)
      MakeRandomGraph(db, "R" + std::to_string(i), 9, 30, false, 60 + i);
    CheckAllStructures(StarView(4), db, 2.0);
  }
  {
    Database db;
    MakePathRelations(db, "R", 5, 9, 26, 15);
    CheckAllStructures(PathView(5), db, 4.0);
  }
}

// The cyclic-box fast path: at high tau nearly the whole stream drains
// through WCOJ joins whose deepest level has several participating atoms
// (triangle: S's and T's z columns; Loomis–Whitney likewise), i.e. through
// the galloping-intersection scan rather than the one-participant column
// walk. Exercise large batch sizes so a single ScanLastLevel call crosses
// many runs, and batch sizes that pause it mid-run.
TEST(BatchEnumeration, CyclicDeepestLevelScanTriangle) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 16);
  AdornedView view = TriangleView("fff");
  for (double tau : {1.0, 64.0, 4096.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto cr = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(cr.ok());
    const std::vector<Tuple> expected = OracleAnswer(view, db, {});
    ASSERT_FALSE(expected.empty());
    for (size_t batch : {size_t{1}, size_t{5}, size_t{256}}) {
      auto e = cr.value()->Answer({});
      TupleBuffer buf(3);
      while (e->NextBatch(&buf, batch) == batch) {
      }
      EXPECT_EQ(buf.ToTuples(), expected) << "tau " << tau << " batch "
                                          << batch;
    }
  }
}

TEST(BatchEnumeration, CyclicDeepestLevelScanLoomisWhitney) {
  Database db;
  MakeLoomisWhitneyRelations(db, "S", 3, 14, 240, 3);
  // All-free LW(3): the catalog's LoomisWhitneyView is b..bf, but the scan
  // fast path needs free join levels.
  auto view = ParseAdornedView(
      "Q^fff(x1,x2,x3) = S1(x2,x3), S2(x1,x3), S3(x1,x2)");
  ASSERT_TRUE(view.ok());
  for (double tau : {2.0, 512.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto cr = CompressedRep::Build(view.value(), db, copt);
    ASSERT_TRUE(cr.ok());
    const std::vector<Tuple> expected = OracleAnswer(view.value(), db, {});
    for (size_t batch : {size_t{3}, size_t{128}}) {
      auto e = cr.value()->Answer({});
      TupleBuffer buf(3);
      while (e->NextBatch(&buf, batch) == batch) {
      }
      EXPECT_EQ(buf.ToTuples(), expected) << "tau " << tau << " batch "
                                          << batch;
    }
  }
}

TEST(BatchEnumeration, DecomposedRepAgrees) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 16);
  AdornedView view = PathView(5);
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 6; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  DecomposedRepOptions dopt;
  dopt.delta = DelayAssignment::Uniform(td, 0.4);
  auto rep = DecomposedRep::Build(view, db, td, dopt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  const int arity = view.num_free();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    // Alg5's order follows the decomposition, not lex order: compare the
    // one-at-a-time stream verbatim (it is the reference for the batch).
    auto reference = CollectAll(*rep.value()->Answer(vb));
    CheckBatchAgreement([&] { return rep.value()->Answer(vb); }, arity,
                        reference);
  }
}

TEST(BatchEnumeration, BooleanViewAndEmptyStreams) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {3, 4}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view.value(), db, copt);
  ASSERT_TRUE(rep.ok());
  // Hit: one empty tuple through an arity-0 buffer.
  CheckBatchAgreement([&] { return rep.value()->Answer({1, 2}); }, 0,
                      {Tuple{}});
  // Miss: empty stream.
  CheckBatchAgreement([&] { return rep.value()->Answer({1, 4}); }, 0, {});
}

TEST(BatchEnumeration, TupleArenaAndBufferBasics) {
  TupleArena arena(4);  // tiny chunks to exercise growth
  std::vector<TupleRef> refs;
  for (Value v = 0; v < 100; ++v) {
    Tuple t{v, v + 1, v + 2};
    refs.push_back(arena.Copy(t));
  }
  for (Value v = 0; v < 100; ++v) {
    EXPECT_EQ(refs[v].ToTuple(), (Tuple{v, v + 1, v + 2}));
  }
  arena.Reset();
  TupleRef r = arena.Alloc(2);
  r[0] = 7;
  r[1] = 8;
  EXPECT_EQ(TupleSpan(r), TupleSpan(Tuple{7, 8}));

  TupleBuffer buf(2);
  EXPECT_TRUE(buf.empty());
  buf.Append(Tuple{1, 2});
  Value* slot = buf.AppendSlot();
  slot[0] = 3;
  slot[1] = 4;
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], TupleSpan(Tuple{1, 2}));
  EXPECT_EQ(buf.back(), TupleSpan(Tuple{3, 4}));
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace cqc

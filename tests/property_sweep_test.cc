// Wide property sweeps: every adornment of a query, bigger query families
// (LW_4, S_4, P_5), and cross-structure agreement, all against the naive
// oracle. These are the "catch what unit tests missed" nets.
#include <gtest/gtest.h>

#include "baseline/direct_eval.h"
#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::IsStrictlySortedLex;
using testing::OracleAnswer;
using testing::SortedCopy;

void CheckRep(const AdornedView& view, const Database& db, double tau) {
  CompressedRepOptions copt;
  copt.tau = tau;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok()) << rep.status().message() << " " << view.ToString();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto got = CollectAll(*rep.value()->Answer(vb));
    EXPECT_TRUE(IsStrictlySortedLex(got)) << view.ToString();
    EXPECT_EQ(got, OracleAnswer(view, db, vb))
        << view.ToString() << " tau=" << tau;
  }
}

// Every one of the 16 adornments of a 4-variable cyclic query.
class AdornmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdornmentSweep, AllAdornmentsMatchOracle) {
  const int mask = GetParam();
  std::string ad;
  for (int i = 0; i < 4; ++i) ad += (mask >> i) & 1 ? 'b' : 'f';
  Database db;
  Rng rng(99);
  auto rel = [&](const std::string& name) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 40; ++i)
      rows.push_back({rng.UniformRange(1, 6), rng.UniformRange(1, 6)});
    AddRelation(db, name, 2, rows);
  };
  rel("R");
  rel("S");
  rel("T");
  rel("U");
  auto view = ParseAdornedView(
      "Q^" + ad + "(a,b,c,d) = R(a,b), S(b,c), T(c,d), U(d,a)");
  ASSERT_TRUE(view.ok());
  CheckRep(view.value(), db, 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, AdornmentSweep, ::testing::Range(0, 16));

TEST(FamilySweep, LoomisWhitney4) {
  Database db;
  MakeLoomisWhitneyRelations(db, "S", 4, 6, 60, 7);
  CheckRep(LoomisWhitneyView(4), db, 2.0);
  CheckRep(LoomisWhitneyView(4), db, 16.0);
}

TEST(FamilySweep, Star4) {
  Database db;
  for (int i = 1; i <= 4; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 9, 30, false, 60 + i);
  CheckRep(StarView(4), db, 2.0);
  CheckRep(StarView(4), db, 81.0);
}

TEST(FamilySweep, Path5Theorem1) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 15);
  CheckRep(PathView(5), db, 4.0);
}

TEST(FamilySweep, Path5Theorem2ZigZag) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 16);
  AdornedView view = PathView(5);
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 6; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  for (double d : {0.0, 0.4}) {
    DecomposedRepOptions dopt;
    dopt.delta = DelayAssignment::Uniform(td, d);
    auto rep = DecomposedRep::Build(view, db, td, dopt);
    ASSERT_TRUE(rep.ok()) << rep.status().message();
    for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
      EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer(vb))),
                OracleAnswer(view, db, vb));
    }
  }
}

TEST(FamilySweep, MixedArityAtoms) {
  // Ternary + binary atoms, partially bound.
  Database db;
  Rng rng(123);
  Relation* r = db.AddRelation("R", 3);
  for (int i = 0; i < 80; ++i)
    r->Insert({rng.UniformRange(1, 5), rng.UniformRange(1, 5),
               rng.UniformRange(1, 5)});
  r->Seal();
  Relation* s = db.AddRelation("S", 2);
  for (int i = 0; i < 30; ++i)
    s->Insert({rng.UniformRange(1, 5), rng.UniformRange(1, 5)});
  s->Seal();
  auto view = ParseAdornedView("Q^bffb(w,x,y,z) = R(w,x,y), S(y,z)");
  ASSERT_TRUE(view.ok());
  for (double tau : {1.0, 8.0, 128.0}) CheckRep(view.value(), db, tau);
}

TEST(CrossStructureAgreement, CompressedEqualsDirectEverywhere) {
  // Agreement (including order: both lexicographic) between the tunable
  // structure and direct evaluation on a query with a skewed instance.
  Database db;
  MakeZipfBipartite(db, "R", 25, 60, 300, 0.9, 44);
  AdornedView view = SetIntersectionView();
  CompressedRepOptions copt;
  copt.tau = 8.0;
  auto rep = CompressedRep::Build(view, db, copt);
  auto de = DirectEval::Build(view, db);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(de.ok());
  for (Value s1 = 1; s1 <= 12; ++s1)
    for (Value s2 = 1; s2 <= 12; ++s2)
      EXPECT_EQ(CollectAll(*rep.value()->Answer({s1, s2}))
,
                CollectAll(*de.value()->Answer({s1, s2})));
}

TEST(SpaceMonotonicity, DictShrinksWithTauAcrossFamilies) {
  struct Case {
    AdornedView view;
    Database db;
  };
  // Triangle.
  {
    Database db;
    MakeTripartiteTriangleGraph(db, "R", 8);
    size_t prev = SIZE_MAX;
    for (double tau : {1.0, 8.0, 64.0}) {
      CompressedRepOptions copt;
      copt.tau = tau;
      auto rep = CompressedRep::Build(TriangleView("bfb"), db, copt);
      ASSERT_TRUE(rep.ok());
      EXPECT_LE(rep.value()->stats().dict_entries, prev);
      prev = rep.value()->stats().dict_entries;
    }
  }
  // Set intersection.
  {
    Database db;
    MakeSetFamily(db, "R", 10, 40, 150, 0.9, 2);
    size_t prev = SIZE_MAX;
    for (double tau : {1.0, 8.0, 64.0}) {
      CompressedRepOptions copt;
      copt.tau = tau;
      auto rep = CompressedRep::Build(SetIntersectionView(), db, copt);
      ASSERT_TRUE(rep.ok());
      EXPECT_LE(rep.value()->stats().dict_entries, prev);
      prev = rep.value()->stats().dict_entries;
    }
  }
}

TEST(DegenerateInstances, AllValuesEqual) {
  Database db;
  AddRelation(db, "R", 2, {{5, 5}});
  auto view = ParseAdornedView("Q^ff(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  CheckRep(view.value(), db, 1.0);
}

TEST(DegenerateInstances, SingleColumnRelations) {
  Database db;
  AddRelation(db, "R", 1, {{1}, {2}, {3}});
  AddRelation(db, "S", 1, {{2}, {3}, {4}});
  auto view = ParseAdornedView("Q^f(x) = R(x), S(x)");
  ASSERT_TRUE(view.ok());
  CompressedRepOptions copt;
  copt.tau = 1.0;
  auto rep = CompressedRep::Build(view.value(), db, copt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  EXPECT_EQ(CollectAll(*rep.value()->Answer({})),
            (std::vector<Tuple>{{2}, {3}}));
}

TEST(DegenerateInstances, WideRelation) {
  Database db;
  Rng rng(5);
  Relation* r = db.AddRelation("R", 6);
  for (int i = 0; i < 50; ++i) {
    Tuple t(6);
    for (auto& v : t) v = rng.UniformRange(1, 3);
    r->Insert(t);
  }
  r->Seal();
  auto view = ParseAdornedView("Q^bffbff(a,b,c,d,e,f) = R(a,b,c,d,e,f)");
  ASSERT_TRUE(view.ok());
  CheckRep(view.value(), db, 2.0);
}

}  // namespace
}  // namespace cqc

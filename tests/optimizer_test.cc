// §6: MinDelayCover / MinSpaceCover / per-bag LPs.
#include <gtest/gtest.h>

#include <cmath>

#include "fractional/optimizer.h"
#include "query/parser.h"
#include "workload/catalog.h"

namespace cqc {
namespace {

constexpr double kTol = 1e-5;

std::vector<double> LogSizes(int count, double n) {
  return std::vector<double>(count, std::log(n));
}

TEST(MinDelayCoverTest, StarTradeoffShape) {
  // Example 7 / §3.3: space N^n / tau^n. With budget Sigma, the optimal
  // log tau is (n log N - log Sigma) / n.
  const double n_rel = 1e5;
  AdornedView view = StarView(3);
  Hypergraph h(view.cq());
  for (double budget_exp : {1.0, 1.5, 2.0, 2.5}) {
    const double log_budget = budget_exp * std::log(n_rel);
    CoverSolution sol =
        MinDelayCover(h, view.free_set(), LogSizes(3, n_rel), log_budget);
    ASSERT_TRUE(sol.feasible) << budget_exp;
    EXPECT_NEAR(sol.alpha, 3.0, 1e-3);
    const double expected_log_tau =
        std::max(0.0, (3.0 * std::log(n_rel) - log_budget) / 3.0);
    EXPECT_NEAR(sol.log_tau, expected_log_tau, 1e-3);
  }
}

TEST(MinDelayCoverTest, FullBudgetGivesConstantDelay) {
  const double n_rel = 1e4;
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  // Budget = full materialization bound N^{3/2}: tau should collapse to ~1.
  CoverSolution sol = MinDelayCover(h, view.free_set(), LogSizes(3, n_rel),
                                    1.5 * std::log(n_rel));
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.log_tau, 0.0, 1e-3);
}

TEST(MinDelayCoverTest, MonotoneInBudget) {
  const double n_rel = 1e5;
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  double prev = 1e100;
  for (double budget_exp : {1.0, 1.2, 1.4, 1.6}) {
    CoverSolution sol = MinDelayCover(h, view.free_set(), LogSizes(3, n_rel),
                                      budget_exp * std::log(n_rel));
    ASSERT_TRUE(sol.feasible);
    EXPECT_LE(sol.log_tau, prev + kTol);
    prev = sol.log_tau;
  }
}

TEST(MinDelayCoverTest, SolutionIsValidCover) {
  const double n_rel = 1e4;
  AdornedView view = RunningExampleView();
  Hypergraph h(view.cq());
  CoverSolution sol = MinDelayCover(h, view.free_set(), LogSizes(3, n_rel),
                                    1.2 * std::log(n_rel));
  ASSERT_TRUE(sol.feasible);
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(h.vertices(), v)) continue;
    double cover = 0;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) cover += sol.u[f];
    EXPECT_GE(cover, 1.0 - kTol);
  }
  EXPECT_GE(sol.alpha, 1.0 - kTol);
  // Slack consistency: alpha <= coverage of every free variable.
  for (VarId v = 0; v < h.num_vars(); ++v) {
    if (!VarSetContains(view.free_set(), v)) continue;
    double cover = 0;
    for (int f = 0; f < h.num_edges(); ++f)
      if (VarSetContains(h.edges()[f], v)) cover += sol.u[f];
    EXPECT_GE(cover, sol.alpha - kTol);
  }
}

TEST(MinSpaceCoverTest, InverseOfMinDelay) {
  const double n_rel = 1e5;
  AdornedView view = StarView(3);
  Hypergraph h(view.cq());
  // Ask for delay tau = N^{1/3}: space should be ~ N^{3} / N = N^2.
  const double log_delay = std::log(n_rel) / 3.0;
  CoverSolution sol =
      MinSpaceCover(h, view.free_set(), LogSizes(3, n_rel), log_delay);
  ASSERT_TRUE(sol.feasible);
  EXPECT_LE(sol.log_tau, log_delay + 1e-3);
  EXPECT_NEAR(sol.log_space / std::log(n_rel), 2.0, 0.02);
}

TEST(MinSpaceCoverTest, ZeroDelayNeedsFullSpace) {
  const double n_rel = 1e4;
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  CoverSolution sol =
      MinSpaceCover(h, view.free_set(), LogSizes(3, n_rel), 0.0);
  ASSERT_TRUE(sol.feasible);
  // Must pay about N^{3/2} (the AGM bound) for constant delay.
  EXPECT_NEAR(sol.log_space / std::log(n_rel), 1.5, 0.05);
}

TEST(BagCoverTest, TriangleBag) {
  // Bag {x,y,z} of the triangle with delta = 0: rho+ = 3/2.
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  BagCoverSolution sol =
      SolveBagCover(h.edges(), h.vertices(), view.free_set(), 0.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.rho_plus, 1.5, kTol);
}

TEST(BagCoverTest, DeltaReducesRhoPlus) {
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  BagCoverSolution zero =
      SolveBagCover(h.edges(), h.vertices(), view.free_set(), 0.0);
  BagCoverSolution half =
      SolveBagCover(h.edges(), h.vertices(), view.free_set(), 0.5);
  ASSERT_TRUE(zero.feasible);
  ASSERT_TRUE(half.feasible);
  EXPECT_LT(half.rho_plus, zero.rho_plus - 0.1);
}

TEST(BagCoverTest, NoFreeVarsPinsAlpha) {
  Hypergraph h(2, {VarBit(0) | VarBit(1)});
  BagCoverSolution sol =
      SolveBagCover(h.edges(), VarBit(0) | VarBit(1), 0, 0.7);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.u_total, 1.0, kTol);
}

TEST(BagCoverTest, InfeasibleWhenUncoverable) {
  std::vector<VarSet> edges{VarBit(0)};
  BagCoverSolution sol = SolveBagCover(edges, VarBit(0) | VarBit(1), 0, 0.0);
  EXPECT_FALSE(sol.feasible);
}

TEST(OptimizerScalingTest, PolynomialInQuerySize) {
  // Prop. 11: solvable in polynomial time; star joins of growing arity
  // should all solve quickly and match the closed form.
  const double n_rel = 1e5;
  for (int n = 2; n <= 8; ++n) {
    AdornedView view = StarView(n);
    Hypergraph h(view.cq());
    CoverSolution sol =
        MinDelayCover(h, view.free_set(), LogSizes(n, n_rel),
                      (double)n / 2.0 * std::log(n_rel));
    ASSERT_TRUE(sol.feasible) << n;
    EXPECT_NEAR(sol.alpha, (double)n, 1e-2) << n;
    EXPECT_NEAR(sol.log_tau / std::log(n_rel), 0.5, 1e-2) << n;
  }
}

}  // namespace
}  // namespace cqc

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/projection.h"
#include "relational/relation.h"
#include "relational/sorted_index.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cqc {
namespace {

TEST(RelationTest, SealSortsAndDedups) {
  Relation r("R", 2);
  r.Insert({3, 1});
  r.Insert({1, 2});
  r.Insert({3, 1});
  r.Insert({1, 1});
  r.Seal();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.At(0, 0), 1u);
  EXPECT_EQ(r.At(0, 1), 1u);
  EXPECT_EQ(r.At(1, 0), 1u);
  EXPECT_EQ(r.At(1, 1), 2u);
  EXPECT_EQ(r.At(2, 0), 3u);
}

TEST(RelationTest, ActiveDomains) {
  Relation r("R", 2);
  r.Insert({3, 10});
  r.Insert({1, 10});
  r.Insert({3, 20});
  r.Seal();
  EXPECT_EQ(r.ActiveDomain(0), (std::vector<Value>{1, 3}));
  EXPECT_EQ(r.ActiveDomain(1), (std::vector<Value>{10, 20}));
}

TEST(RelationTest, Contains) {
  Relation r("R", 3);
  r.Insert({1, 2, 3});
  r.Insert({4, 5, 6});
  r.Seal();
  EXPECT_TRUE(r.Contains(Tuple{1, 2, 3}));
  EXPECT_TRUE(r.Contains(Tuple{4, 5, 6}));
  EXPECT_FALSE(r.Contains(Tuple{1, 2, 4}));
  EXPECT_FALSE(r.Contains(Tuple{0, 0, 0}));
}

TEST(RelationTest, EmptyRelation) {
  Relation r("R", 2);
  r.Seal();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(Tuple{1, 2}));
  EXPECT_TRUE(r.ActiveDomain(0).empty());
}

TEST(SortedIndexTest, PermutedOrder) {
  Relation r("R", 2);
  r.Insert({1, 9});
  r.Insert({2, 5});
  r.Insert({3, 5});
  r.Seal();
  const SortedIndex& idx = r.GetIndex({1, 0});
  // Sorted by column 1 first: (5,2),(5,3),(9,1).
  EXPECT_EQ(idx.ValueAt(0, 0), 5u);
  EXPECT_EQ(idx.ValueAt(1, 0), 2u);
  EXPECT_EQ(idx.ValueAt(0, 2), 9u);
  EXPECT_EQ(idx.ValueAt(1, 2), 1u);
}

TEST(SortedIndexTest, RefineAndRange) {
  Relation r("R", 2);
  for (Value a = 1; a <= 5; ++a)
    for (Value b = 1; b <= 4; ++b) r.Insert({a, b});
  r.Seal();
  const SortedIndex& idx = r.GetIndex({0, 1});
  RowRange root = idx.Root();
  EXPECT_EQ(root.size(), 20u);
  RowRange a3 = idx.Refine(root, 0, 3);
  EXPECT_EQ(a3.size(), 4u);
  RowRange b24 = idx.RefineRange(a3, 1, 2, 4);
  EXPECT_EQ(b24.size(), 3u);
  RowRange missing = idx.Refine(root, 0, 42);
  EXPECT_TRUE(missing.empty());
  RowRange inverted = idx.RefineRange(root, 0, 4, 2);
  EXPECT_TRUE(inverted.empty());
}

TEST(SortedIndexTest, CountDistinct) {
  Relation r("R", 2);
  r.Insert({1, 1});
  r.Insert({1, 2});
  r.Insert({2, 1});
  r.Insert({5, 9});
  r.Seal();
  const SortedIndex& idx = r.GetIndex({0, 1});
  EXPECT_EQ(idx.CountDistinct(idx.Root(), 0), 3u);
  RowRange a1 = idx.Refine(idx.Root(), 0, 1);
  EXPECT_EQ(idx.CountDistinct(a1, 1), 2u);
}

TEST(SortedIndexTest, MinMaxAndNextDistinct) {
  Relation r("R", 1);
  for (Value v : {5, 2, 9, 2, 7}) r.Insert({v});
  r.Seal();
  const SortedIndex& idx = r.GetIndex({0});
  RowRange root = idx.Root();
  EXPECT_EQ(idx.MinValue(root, 0), 2u);
  EXPECT_EQ(idx.MaxValue(root, 0), 9u);
  size_t pos = idx.NextDistinct(root, 0, 2);
  EXPECT_EQ(idx.ValueAt(0, pos), 5u);
}

TEST(SortedIndexTest, MatchesRelationUnderRandomData) {
  Database db;
  Rng rng(123);
  Relation* r = db.AddRelation("R", 3);
  for (int i = 0; i < 500; ++i)
    r->Insert({rng.UniformRange(1, 20), rng.UniformRange(1, 20),
               rng.UniformRange(1, 20)});
  r->Seal();
  const SortedIndex& idx = r->GetIndex({2, 0, 1});
  // Every refinement chain should reproduce Relation::Contains.
  Rng probe(55);
  for (int i = 0; i < 200; ++i) {
    Tuple t{probe.UniformRange(1, 20), probe.UniformRange(1, 20),
            probe.UniformRange(1, 20)};
    RowRange range = idx.Root();
    range = idx.Refine(range, 0, t[2]);
    range = idx.Refine(range, 1, t[0]);
    range = idx.Refine(range, 2, t[1]);
    EXPECT_EQ(!range.empty(), r->Contains(t));
  }
}

TEST(DatabaseTest, AddFindSeal) {
  Database db;
  Relation* r = db.AddRelation("R", 2);
  r->Insert({1, 2});
  db.SealAll();
  EXPECT_EQ(db.Find("R"), r);
  EXPECT_EQ(db.Find("S"), nullptr);
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, FallbackChaining) {
  Database base;
  testing::AddRelation(base, "R", 1, {{1}});
  Database local;
  testing::AddRelation(local, "S", 1, {{2}});
  local.SetFallback(&base);
  EXPECT_NE(local.Find("S"), nullptr);
  EXPECT_NE(local.Find("R"), nullptr);
  EXPECT_EQ(local.Find("T"), nullptr);
  EXPECT_EQ(base.Find("S"), nullptr);
}

TEST(ProjectionTest, DistinctProjection) {
  Database db;
  Relation* r = testing::AddRelation(db, "R", 3,
                                     {{1, 2, 3}, {1, 2, 4}, {5, 2, 3}});
  auto p = ProjectDistinct(*r, {1, 0}, "P");
  EXPECT_EQ(p->size(), 2u);  // (2,1) and (2,5)
  EXPECT_TRUE(p->Contains(Tuple{2, 1}));
  EXPECT_TRUE(p->Contains(Tuple{2, 5}));
}

TEST(ProjectionTest, FilterProjectConstantsAndRepeats) {
  Database db;
  // Example 3: R'(x,y) = R(x,y,a) with a = 7.
  Relation* r = testing::AddRelation(
      db, "R", 3, {{1, 2, 7}, {1, 3, 8}, {4, 5, 7}, {4, 5, 7}});
  auto rp = FilterProject(*r, {{2, 7}}, {}, {0, 1}, "Rp");
  EXPECT_EQ(rp->size(), 2u);
  EXPECT_TRUE(rp->Contains(Tuple{1, 2}));
  EXPECT_TRUE(rp->Contains(Tuple{4, 5}));
  // S'(y,z) = S(y,y,z).
  Relation* s = testing::AddRelation(db, "S", 3,
                                     {{2, 2, 9}, {2, 3, 9}, {4, 4, 1}});
  auto sp = FilterProject(*s, {}, {{0, 1}}, {0, 2}, "Sp");
  EXPECT_EQ(sp->size(), 2u);
  EXPECT_TRUE(sp->Contains(Tuple{2, 9}));
  EXPECT_TRUE(sp->Contains(Tuple{4, 1}));
}

}  // namespace
}  // namespace cqc

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

TEST(GeneratorTest, RandomGraphDeterministicAndSized) {
  Database a, b;
  Relation* ra = MakeRandomGraph(a, "R", 50, 200, false, 42);
  Relation* rb = MakeRandomGraph(b, "R", 50, 200, false, 42);
  ASSERT_EQ(ra->size(), rb->size());
  EXPECT_EQ(ra->size(), 200u);
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ(ra->At(i, 0), rb->At(i, 0));
    EXPECT_EQ(ra->At(i, 1), rb->At(i, 1));
  }
}

TEST(GeneratorTest, SymmetricGraphClosedUnderReversal) {
  Database db;
  Relation* r = MakeRandomGraph(db, "R", 30, 120, true, 9);
  for (size_t i = 0; i < r->size(); ++i)
    EXPECT_TRUE(r->Contains(Tuple{r->At(i, 1), r->At(i, 0)}));
}

TEST(GeneratorTest, NoSelfLoops) {
  Database db;
  Relation* r = MakeRandomGraph(db, "R", 10, 60, false, 3);
  for (size_t i = 0; i < r->size(); ++i)
    EXPECT_NE(r->At(i, 0), r->At(i, 1));
}

TEST(GeneratorTest, RandomRelationRespectsDomains) {
  Database db;
  Relation* r = MakeRandomRelation(db, "R", {5, 100, 2}, 150, 8);
  EXPECT_GT(r->size(), 100u);
  for (size_t i = 0; i < r->size(); ++i) {
    EXPECT_LE(r->At(i, 0), 5u);
    EXPECT_LE(r->At(i, 1), 100u);
    EXPECT_LE(r->At(i, 2), 2u);
    EXPECT_GE(r->At(i, 0), 1u);
  }
}

TEST(GeneratorTest, ZipfBipartiteSkew) {
  Database db;
  Relation* r = MakeZipfBipartite(db, "R", 100, 1000, 800, 0.95, 4);
  EXPECT_EQ(r->size(), 800u);
  // The most popular author should have far more papers than the median.
  std::map<Value, int> counts;
  for (size_t i = 0; i < r->size(); ++i) counts[r->At(i, 0)]++;
  int max_count = 0;
  for (auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(max_count, 20);
}

TEST(GeneratorTest, SetFamilyWithinUniverse) {
  Database db;
  Relation* r = MakeSetFamily(db, "R", 10, 50, 200, 0.9, 12);
  EXPECT_EQ(r->size(), 200u);
  for (size_t i = 0; i < r->size(); ++i) {
    EXPECT_GE(r->At(i, 0), 1u);
    EXPECT_LE(r->At(i, 0), 10u);
    EXPECT_LE(r->At(i, 1), 50u);
  }
}

TEST(GeneratorTest, PathRelationsCount) {
  Database db;
  auto rels = MakePathRelations(db, "R", 5, 20, 80, 6);
  EXPECT_EQ(rels.size(), 5u);
  for (Relation* r : rels) EXPECT_EQ(r->size(), 80u);
  EXPECT_NE(db.Find("R1"), nullptr);
  EXPECT_NE(db.Find("R5"), nullptr);
}

TEST(GeneratorTest, LoomisWhitneyArity) {
  Database db;
  auto rels = MakeLoomisWhitneyRelations(db, "S", 4, 15, 60, 10);
  EXPECT_EQ(rels.size(), 4u);
  for (Relation* r : rels) {
    EXPECT_EQ(r->arity(), 3);
    EXPECT_EQ(r->size(), 60u);
  }
}

TEST(GeneratorTest, TripartiteTriangleCount) {
  Database db;
  const uint64_t m = 5;
  Relation* r = MakeTripartiteTriangleGraph(db, "R", m);
  EXPECT_EQ(r->size(), 6 * m * m);
  // Count triangles via the oracle: Q(x,y,z) with x<y<z orientations gives
  // 6 * m^3 ordered triangles? Each undirected triangle appears 6 times.
  AdornedView view = TriangleView("fff");
  auto triangles = testing::OracleAnswer(view, db, {});
  EXPECT_EQ(triangles.size(), 6 * m * m * m);
}

TEST(CatalogTest, ViewShapes) {
  EXPECT_EQ(TriangleView("bfb").num_free(), 1);
  EXPECT_EQ(RunningExampleView().num_bound(), 3);
  EXPECT_EQ(StarView(4).num_bound(), 4);
  EXPECT_EQ(StarView(4).num_free(), 1);
  EXPECT_EQ(PathView(5).num_free(), 4);
  EXPECT_EQ(LoomisWhitneyView(4).cq().atoms().size(), 4u);
  EXPECT_EQ(LoomisWhitneyView(4).cq().atoms()[0].arity(), 3);
  EXPECT_EQ(CoauthorView().num_bound(), 1);
  EXPECT_EQ(SetIntersectionView().num_bound(), 2);
  EXPECT_EQ(SetDisjointnessView(3).num_bound(), 3);
  EXPECT_TRUE(PathView(3).cq().IsNaturalJoin());
  EXPECT_TRUE(LoomisWhitneyView(5).cq().IsNaturalJoin());
}

TEST(CatalogTest, StarCustomAdornment) {
  AdornedView v = StarView(2, "ffb");
  EXPECT_EQ(v.num_bound(), 1);
  EXPECT_EQ(v.num_free(), 2);
}

}  // namespace
}  // namespace cqc

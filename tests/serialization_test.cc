#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <optional>

#include "core/serialization.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::InterestingBoundValuations;
using testing::OracleAnswer;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripAnswersIdentically) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto original = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("triangle.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*original.value(), path).ok());
  auto loaded = LoadCompressedRep(view, db, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  EXPECT_EQ(loaded.value()->stats().tree_nodes,
            original.value()->stats().tree_nodes);
  EXPECT_EQ(loaded.value()->stats().dict_entries,
            original.value()->stats().dict_entries);
  EXPECT_DOUBLE_EQ(loaded.value()->tau(), original.value()->tau());

  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    EXPECT_EQ(CollectAll(*loaded.value()->Answer(vb)),
              CollectAll(*original.value()->Answer(vb)));
    EXPECT_EQ(CollectAll(*loaded.value()->Answer(vb)),
              OracleAnswer(view, db, vb));
  }
}

TEST(SerializationTest, RoundTripStarAndRunningExample) {
  {
    Database db;
    for (int i = 1; i <= 3; ++i)
      MakeRandomGraph(db, "R" + std::to_string(i), 10, 40, false, 70 + i);
    AdornedView view = StarView(3);
    CompressedRepOptions copt;
    copt.tau = 4.0;
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    const std::string path = TempPath("star.cqcrep");
    ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
    auto loaded = LoadCompressedRep(view, db, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    for (const BoundValuation& vb : InterestingBoundValuations(view, db))
      EXPECT_EQ(CollectAll(*loaded.value()->Answer(vb)),
                OracleAnswer(view, db, vb));
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(SerializationTest, FlatLayoutRoundTripsByteIdentically) {
  // Save -> load -> save must reproduce the file byte for byte: the flat
  // SoA tree / CSR dictionary layout on disk is exactly the in-memory
  // layout, so a lossless round trip implies the loaded structure is
  // field-identical (a prerequisite for a future zero-copy mmap load).
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  for (double tau : {1.0, 2.0, 16.0}) {
    AdornedView view = TriangleView("bfb");
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    const std::string path1 = TempPath("byteident1.cqcrep");
    const std::string path2 = TempPath("byteident2.cqcrep");
    ASSERT_TRUE(SaveCompressedRep(*rep.value(), path1).ok());
    auto loaded = LoadCompressedRep(view, db, path1);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_TRUE(SaveCompressedRep(*loaded.value(), path2).ok());
    const std::string bytes1 = ReadFileBytes(path1);
    const std::string bytes2 = ReadFileBytes(path2);
    ASSERT_FALSE(bytes1.empty());
    EXPECT_EQ(bytes1, bytes2) << "tau=" << tau;
  }
}

TEST(SerializationTest, FullEnumerationViewByteIdentical) {
  // num_bound == 0 exercises the arity-0 candidate pool encoding.
  Database db;
  MakePathRelations(db, "R", 3, 8, 40, 21);
  AdornedView view = PathView(3, "ffff");
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  const std::string path1 = TempPath("fullenum1.cqcrep");
  const std::string path2 = TempPath("fullenum2.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path1).ok());
  auto loaded = LoadCompressedRep(view, db, path1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_TRUE(SaveCompressedRep(*loaded.value(), path2).ok());
  EXPECT_EQ(ReadFileBytes(path1), ReadFileBytes(path2));
  EXPECT_EQ(CollectAll(*loaded.value()->Answer({})),
            OracleAnswer(view, db, {}));
}

TEST(SerializationTest, DetectsWrongData) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("fingerprint.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());

  Database other;
  MakeRandomGraph(other, "R", 12, 59, true, 10);  // different size
  EXPECT_FALSE(LoadCompressedRep(view, other, path).ok());
}

TEST(SerializationTest, DetectsGarbageFiles) {
  Database db;
  MakeRandomGraph(db, "R", 8, 30, true, 4);
  AdornedView view = TriangleView("bfb");
  const std::string path = TempPath("garbage.cqcrep");
  std::ofstream(path) << "not a rep file at all";
  EXPECT_FALSE(LoadCompressedRep(view, db, path).ok());
  EXPECT_FALSE(LoadCompressedRep(view, db, TempPath("missing.cqcrep")).ok());
  EXPECT_FALSE(MmapCompressedRep(view, db, path).ok());
  EXPECT_FALSE(MmapCompressedRep(view, db, TempPath("missing.cqcrep")).ok());
}

TEST(SerializationTest, DetectsTruncation) {
  Database db;
  MakeRandomGraph(db, "R", 10, 50, true, 6);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("full.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string cut = TempPath("cut.cqcrep");
  std::ofstream(cut, std::ios::binary)
      << data.substr(0, data.size() / 2);
  EXPECT_FALSE(LoadCompressedRep(view, db, cut).ok());
}

// --- corrupt-input coverage ------------------------------------------------
// Every malformed file must come back as a Status error: no crash, no
// CHECK-abort, no unbounded allocation (run under ASan/UBSan in CI).

class CorruptInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MakeRandomGraph(db_, "R", 12, 60, true, 9);
    view_ = TriangleView("bfb");
    CompressedRepOptions copt;
    copt.tau = 2.0;
    auto rep = CompressedRep::Build(*view_, db_, copt);
    ASSERT_TRUE(rep.ok());
    path_ = TempPath("corrupt_base.cqcrep");
    ASSERT_TRUE(SaveCompressedRep(*rep.value(), path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_FALSE(bytes_.empty());
  }

  // Writes `data` to a scratch file and tries BOTH loaders. The heap
  // reader and the zero-copy mmap reader share the validation pipeline,
  // so they must agree on whether a file is acceptable — and neither may
  // crash on any input.
  Status TryLoad(const std::string& data) {
    const std::string p = TempPath("corrupt_case.cqcrep");
    std::ofstream(p, std::ios::binary) << data;
    auto loaded = LoadCompressedRep(*view_, db_, p);
    auto mapped = MmapCompressedRep(*view_, db_, p);
    EXPECT_EQ(loaded.ok(), mapped.ok())
        << "loader disagreement: heap="
        << (loaded.ok() ? "ok" : loaded.status().message()) << " mmap="
        << (mapped.ok() ? "ok" : mapped.status().message());
    return loaded.ok() ? Status::Ok() : loaded.status();
  }

  Database db_;
  std::optional<AdornedView> view_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptInputTest, TruncationAtEveryStride) {
  // Cut the file at a spread of positions including every early byte (the
  // header decode path) and strides through the array blocks.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < std::min<size_t>(bytes_.size(), 64); ++i)
    cuts.push_back(i);
  for (size_t i = 64; i < bytes_.size(); i += 97) cuts.push_back(i);
  for (size_t cut : cuts) {
    EXPECT_FALSE(TryLoad(bytes_.substr(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST_F(CorruptInputTest, BitFlippedHeaders) {
  // Flipping any single bit of the first 64 bytes (magic, tau/alpha,
  // cover, fingerprint region) must be rejected — or, if it lands in a
  // semantically neutral spot, still load without crashing.
  for (size_t byte = 0; byte < std::min<size_t>(bytes_.size(), 64); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes_;
      mutated[byte] = (char)(mutated[byte] ^ (1 << bit));
      TryLoad(mutated);  // must not crash; result may be error or ok
    }
  }
  // The magic itself must always be rejected.
  for (size_t byte = 0; byte < 8; ++byte) {
    std::string mutated = bytes_;
    mutated[byte] = (char)(mutated[byte] ^ 0x40);
    EXPECT_FALSE(TryLoad(mutated).ok()) << "magic byte " << byte;
  }
}

// v04 fixed header fields for this fixture (triangle: 3 cover weights, 3
// atom digests): magic(8) tau(8) alpha(8) cover_n(4) cover(8*3) atoms_n(4)
// digests(8*3) mu(4) vb_arity(4) num_candidates(8) num_blocks(4) = 100,
// then the block directory: 11 x (offset u64, count u64).
constexpr size_t kDirectoryPos = 8 + 8 + 8 + 4 + 24 + 4 + 24 + 4 + 4 + 8 + 4;
constexpr size_t kDirEntrySize = 16;
constexpr size_t kNumBlocks = 11;

TEST_F(CorruptInputTest, OversizedBlockLengths) {
  // Block element counts live in the header's directory; inflating one
  // must produce a clean error (the loader validates every claim against
  // the file size BEFORE allocating — no bad_alloc, no OOM kill).
  const size_t first_block_count_pos = kDirectoryPos + 8;  // dir[0].count
  ASSERT_LE(first_block_count_pos + 8, bytes_.size());
  for (uint64_t huge :
       {~uint64_t{0}, ~uint64_t{0} / 2, (uint64_t)bytes_.size() + 1}) {
    std::string mutated = bytes_;
    std::memcpy(mutated.data() + first_block_count_pos, &huge, sizeof(huge));
    EXPECT_FALSE(TryLoad(mutated).ok());
  }
  // Stomp every directory u64 (offsets AND counts): offsets past EOF,
  // overlapping or misaligned blocks must all be rejected cleanly.
  for (size_t e = 0; e < 2 * kNumBlocks; ++e) {
    const size_t pos = kDirectoryPos + 8 * e;
    ASSERT_LE(pos + 8, bytes_.size());
    for (uint64_t bad : {~uint64_t{0} / 3, (uint64_t)bytes_.size(),
                         (uint64_t)bytes_.size() * 2}) {
      std::string mutated = bytes_;
      std::memcpy(mutated.data() + pos, &bad, sizeof(bad));
      TryLoad(mutated);  // must return cleanly; inflations are errors
    }
  }
  // Stomp u64s across the whole payload tail: every load must return
  // cleanly (error or structurally-valid ok), never crash.
  for (size_t pos = kDirectoryPos; pos + 8 <= bytes_.size(); pos += 37) {
    std::string mutated = bytes_;
    const uint64_t huge = ~uint64_t{0} / 3;
    std::memcpy(mutated.data() + pos, &huge, sizeof(huge));
    TryLoad(mutated);
  }
}

TEST_F(CorruptInputTest, EntryBitMustBeZeroOrOne) {
  // dir[10] is the entry_bit block (one u8 per dictionary entry, the §5
  // set-membership bit). Any value other than 0/1 is a corrupt file, for
  // both loaders.
  const size_t dir10 = kDirectoryPos + 10 * kDirEntrySize;
  uint64_t offset = 0, count = 0;
  std::memcpy(&offset, bytes_.data() + dir10, 8);
  std::memcpy(&count, bytes_.data() + dir10 + 8, 8);
  ASSERT_GT(count, 0u) << "fixture should have dictionary entries";
  ASSERT_LE(offset + count, bytes_.size());
  for (uint8_t bad : {uint8_t{2}, uint8_t{0xff}}) {
    std::string mutated = bytes_;
    mutated[offset] = (char)bad;
    Status s = TryLoad(mutated);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("entry bits"), std::string::npos)
        << s.message();
  }
}

TEST_F(CorruptInputTest, CorruptTreeLinksAndBetaPool) {
  // Flip bytes in the back half of the file (tree columns / CSR entries):
  // every load must terminate with a clean Status or a structurally valid
  // reload — never hang (link cycles are rejected), never abort (off-grid
  // split points are rejected), never read out of bounds (ASan verifies).
  for (size_t pos = bytes_.size() / 2; pos < bytes_.size(); pos += 31) {
    std::string mutated = bytes_;
    mutated[pos] = (char)(mutated[pos] ^ 0xff);
    TryLoad(mutated);  // result may be error or ok; must return cleanly
  }
}

TEST(SerializationTest, BooleanViewRoundTrip) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}, {3, 4}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view.value(), db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("boolean.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  auto loaded = LoadCompressedRep(view.value(), db, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value()->AnswerExists({1, 2}));
  EXPECT_FALSE(loaded.value()->AnswerExists({1, 4}));
}

}  // namespace
}  // namespace cqc

// Reproduces the paper's worked trace of the running example, end to end:
//   Example 13 - the instance, T(I(r)) ~ 10.56, T(vb, I(r)) ~ 4.414,
//                (vb, I(r)) is tau-heavy for tau = 4;
//   Example 14 - the split point beta(r) = (1,1,2), T values 2.44 / 4.56,
//                and the delay-balanced tree of Figure 3;
//   Example 15 - the dictionary stores D(I(r), vb) = 1, D(I(rr), vb) = 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressed_rep.h"
#include "core/cost_model.h"
#include "core/splitter.h"
#include "tests/test_util.h"
#include "workload/catalog.h"

namespace cqc {
namespace {

using testing::AddRelation;

// The Example 13 instance.
void FillExample13(Database& db) {
  AddRelation(db, "R1", 3,
              {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}, {3, 1, 1}});
  AddRelation(db, "R2", 3,
              {{1, 1, 2}, {1, 2, 1}, {1, 2, 2}, {2, 1, 1}, {2, 1, 2}});
  AddRelation(db, "R3", 3,
              {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}, {2, 1, 2}});
}

class PaperTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FillExample13(db_);
    view_ = std::make_unique<AdornedView>(RunningExampleView());
    for (const Atom& atom : view_->cq().atoms())
      atoms_.emplace_back(atom, *db_.Find(atom.relation),
                          view_->bound_vars(), view_->free_vars());
    // u = (1,1,1), alpha = 2, u^ = (1/2, 1/2, 1/2).
    cost_ = std::make_unique<CostModel>(
        &atoms_, std::vector<double>{0.5, 0.5, 0.5});
    domain_ = std::make_unique<LexDomain>(std::vector<std::vector<Value>>{
        {1, 2}, {1, 2}, {1, 2}});
  }

  Database db_;
  std::unique_ptr<AdornedView> view_;
  std::vector<BoundAtom> atoms_;
  std::unique_ptr<CostModel> cost_;
  std::unique_ptr<LexDomain> domain_;
};

TEST_F(PaperTraceTest, Example13RootIntervalCost) {
  // T(I(r)) = sqrt(3*3*4) + sqrt(1*2*4) + sqrt(1*3*1) + 0 ~ 10.56.
  FInterval root{{1, 1, 1}, {2, 2, 2}};
  auto boxes = BoxDecompose(root);
  // The paper's decomposition has 4 boxes: <1,1,[1,2]>, <1,(1,2]>,
  // <2,[1,2)>, <2,2,[1,2]>.
  ASSERT_EQ(boxes.size(), 4u);
  const double expected =
      std::sqrt(3.0 * 3.0 * 4.0) + std::sqrt(1.0 * 2.0 * 4.0) +
      std::sqrt(1.0 * 3.0 * 1.0);
  EXPECT_NEAR(cost_->IntervalCost(root), expected, 1e-9);
  EXPECT_NEAR(cost_->IntervalCost(root), 10.56, 0.02);
}

TEST_F(PaperTraceTest, Example13HeavyValuation) {
  // T(vb, I(r)) = sqrt(2) + 2 + 1 = 4.414 for vb = (1,1,1): tau=4-heavy.
  FInterval root{{1, 1, 1}, {2, 2, 2}};
  const double t = cost_->IntervalCostBound(Tuple{1, 1, 1}, root);
  EXPECT_NEAR(t, std::sqrt(2.0) + 2.0 + 1.0, 1e-9);
  EXPECT_GT(t, 4.0);  // tau-heavy for tau = 4
}

TEST_F(PaperTraceTest, Example14SplitPoint) {
  // beta(r) = (1,1,2): T([<1,1,1>,<1,1,1>]) ~ 2.44 <= T/2 while extending
  // to (1,1,2) exceeds T/2.
  FInterval root{{1, 1, 1}, {2, 2, 2}};
  SplitResult split = SplitInterval(root, *domain_, *cost_);
  EXPECT_EQ(split.c, (Tuple{1, 1, 2}));
  // And the left fragment cost matches the paper's 2.44.
  FInterval left{{1, 1, 1}, {1, 1, 1}};
  EXPECT_NEAR(cost_->IntervalCost(left), std::sqrt(3.0 * 1.0 * 2.0), 1e-9);
  EXPECT_NEAR(cost_->IntervalCost(left), 2.44, 0.01);
  // Right side [<1,2,1>, <2,2,2>] ~ 4.56.
  FInterval right{{1, 2, 1}, {2, 2, 2}};
  EXPECT_NEAR(cost_->IntervalCost(right),
              std::sqrt(1.0 * 2.0 * 4.0) + std::sqrt(1.0 * 3.0 * 1.0), 1e-9);
  EXPECT_NEAR(cost_->IntervalCost(right), 4.56, 0.01);
}

TEST_F(PaperTraceTest, Example14Figure3Tree) {
  // tau = 4: the tree of Figure 3 has root r (split beta=(1,1,2)), leaf
  // rl = [<1,1,1>,<1,1,1>], internal rr split at (1,2,2), leaves
  // rrl = [<1,2,1>,<1,2,1>] and rrr = [<2,1,1>,<2,2,2>].
  DelayBalancedTree::BuildParams params;
  params.tau = 4.0;
  params.alpha = 2.0;
  DelayBalancedTree tree = DelayBalancedTree::Build(*domain_, *cost_, params);
  ASSERT_EQ(tree.size(), 5u);  // r, rl, rr, rrl, rrr (Figure 3)

  const DbTreeNode& r = tree.node(0);
  ASSERT_FALSE(r.leaf);
  EXPECT_EQ(r.beta, (Tuple{1, 1, 2}));
  ASSERT_GE(r.left, 0);
  ASSERT_GE(r.right, 0);

  const DbTreeNode& rl = tree.node(r.left);
  EXPECT_TRUE(rl.leaf);
  EXPECT_NEAR(rl.cost, 2.44, 0.01);

  const DbTreeNode& rr = tree.node(r.right);
  ASSERT_FALSE(rr.leaf);
  EXPECT_EQ(rr.beta, (Tuple{1, 2, 2}));
  // Children of rr: [<1,2,1>,<1,2,1>] (cost sqrt(2) ~ 1.414) and
  // [<2,1,1>,<2,2,2>] (cost sqrt(3)); both below tau_2 = 2.
  ASSERT_GE(rr.left, 0);
  const DbTreeNode& rrl = tree.node(rr.left);
  EXPECT_TRUE(rrl.leaf);
  EXPECT_NEAR(rrl.cost, std::sqrt(2.0), 0.01);
  ASSERT_GE(rr.right, 0);
  const DbTreeNode& rrr = tree.node(rr.right);
  EXPECT_TRUE(rrr.leaf);
  EXPECT_NEAR(rrr.cost, std::sqrt(3.0), 0.01);
}

TEST_F(PaperTraceTest, Example15Dictionary) {
  // With tau = 4 and vb = (1,1,1): entries D(r, vb) = 1 and D(rr, vb) = 1.
  CompressedRepOptions options;
  options.tau = 4.0;
  options.cover = std::vector<double>{1.0, 1.0, 1.0};
  auto rep = CompressedRep::Build(*view_, db_, options);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  const CompressedRep& cr = *rep.value();
  EXPECT_NEAR(cr.stats().alpha, 2.0, 1e-9);

  const HeavyDictionary& dict = cr.dictionary();
  uint32_t vb_id = dict.FindValuation(Tuple{1, 1, 1});
  ASSERT_NE(vb_id, HeavyDictionary::kNoValuation);
  // Node ids: 0 = r; root's right child = rr.
  const DbTreeNode& r = cr.tree().node(0);
  EXPECT_EQ(dict.Lookup(0, vb_id), HeavyDictionary::Bit::kOne);
  ASSERT_GE(r.right, 0);
  EXPECT_EQ(dict.Lookup(r.right, vb_id), HeavyDictionary::Bit::kOne);
  // The left child rl is light for vb (T ~ 1.19 < tau_1 ~ 2.83): no entry.
  ASSERT_GE(r.left, 0);
  EXPECT_EQ(dict.Lookup(r.left, vb_id), HeavyDictionary::Bit::kAbsent);
}

TEST_F(PaperTraceTest, Example5EndToEndAnswers) {
  // The data structure answers the running example correctly for every
  // bound valuation, at the paper's parameters.
  CompressedRepOptions options;
  options.tau = 4.0;
  options.cover = std::vector<double>{1.0, 1.0, 1.0};
  auto rep = CompressedRep::Build(*view_, db_, options);
  ASSERT_TRUE(rep.ok());
  for (const BoundValuation& vb :
       testing::InterestingBoundValuations(*view_, db_)) {
    auto got = CollectAll(*rep.value()->Answer(vb));
    EXPECT_TRUE(testing::IsStrictlySortedLex(got));
    EXPECT_EQ(got, testing::OracleAnswer(*view_, db_, vb));
  }
}

}  // namespace
}  // namespace cqc

// Differential tests for shard-parallel enumeration: for every query
// family in the property sweep, the tuples produced by ParallelEnumerator
// at K = 1, 2, 4, 7 shards must be byte-identical to the sequential Next()
// stream — as a sequence in ordered mode, as a multiset in unordered mode.
// Also covers the ShardPlanner contract (disjoint lex ranges tiling the
// grid), cross-structure shard agreement (DirectEval::AnswerRange over the
// same plan), the Theorem 2 residue-class shards, and early-abandonment
// teardown (no leaks or deadlocks under ASan).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baseline/direct_eval.h"
#include "core/compressed_rep.h"
#include "core/shard_planner.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "exec/parallel_enumerator.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::SortedCopy;

constexpr size_t kShardCounts[] = {1, 2, 4, 7};

// Sequential-vs-parallel differential check over every interesting access
// request of a built representation.
void CheckParallelAgainstSequential(const CompressedRep& rep,
                                    const Database& db) {
  const AdornedView& view = rep.view();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expected = CollectAll(*rep.Answer(vb));
    for (size_t shards : kShardCounts) {
      for (bool ordered : {true, false}) {
        ParallelOptions popt;
        popt.num_threads = 2;
        popt.num_shards = shards;
        popt.ordered = ordered;
        popt.batch_size = 64;  // small chunks: exercise the handoff paths
        auto e = ParallelAnswer(rep, vb, popt);
        std::vector<Tuple> got = CollectAll(*e);
        if (ordered) {
          EXPECT_EQ(got, expected)
              << view.ToString() << " K=" << shards << " (ordered)";
        } else {
          EXPECT_EQ(SortedCopy(got), SortedCopy(expected))
              << view.ToString() << " K=" << shards << " (unordered)";
        }
      }
    }
  }
}

void BuildAndCheck(const AdornedView& view, const Database& db, double tau) {
  CompressedRepOptions copt;
  copt.tau = tau;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok()) << rep.status().message() << " " << view.ToString();
  CheckParallelAgainstSequential(*rep.value(), db);
}

// --- the property-sweep families -------------------------------------------

class ParallelAdornmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelAdornmentSweep, MatchesSequential) {
  const int mask = GetParam();
  std::string ad;
  for (int i = 0; i < 4; ++i) ad += (mask >> i) & 1 ? 'b' : 'f';
  if (ad == "bbbb") return;  // boolean view: no free dimension to shard
  Database db;
  Rng rng(99);
  auto rel = [&](const std::string& name) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 40; ++i)
      rows.push_back({rng.UniformRange(1, 6), rng.UniformRange(1, 6)});
    AddRelation(db, name, 2, rows);
  };
  rel("R");
  rel("S");
  rel("T");
  rel("U");
  auto view = ParseAdornedView(
      "Q^" + ad + "(a,b,c,d) = R(a,b), S(b,c), T(c,d), U(d,a)");
  ASSERT_TRUE(view.ok());
  BuildAndCheck(view.value(), db, 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, ParallelAdornmentSweep,
                         ::testing::Range(0, 16));

TEST(ParallelFamilySweep, LoomisWhitney4) {
  Database db;
  MakeLoomisWhitneyRelations(db, "S", 4, 6, 60, 7);
  BuildAndCheck(LoomisWhitneyView(4), db, 2.0);
}

TEST(ParallelFamilySweep, Star4) {
  Database db;
  for (int i = 1; i <= 4; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 9, 30, false, 60 + i);
  BuildAndCheck(StarView(4), db, 2.0);
}

TEST(ParallelFamilySweep, Path5FullEnumeration) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 15);
  BuildAndCheck(PathView(5), db, 4.0);
}

TEST(ParallelFamilySweep, SkewedSetIntersection) {
  Database db;
  MakeZipfBipartite(db, "R", 25, 60, 300, 0.9, 44);
  BuildAndCheck(SetIntersectionView(), db, 8.0);
}

// --- planner contract ------------------------------------------------------

TEST(ShardPlannerTest, ShardsTileTheGridInLexOrder) {
  Database db;
  MakePathRelations(db, "R", 3, 30, 300, 5);
  AdornedView view = PathView(3, "ffff");
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  for (size_t k : {1, 2, 4, 7, 64}) {
    ShardPlan plan = ShardPlanner::Plan(*rep.value(), k);
    ASSERT_FALSE(plan.shards.empty());
    EXPECT_LE(plan.size(), std::max<size_t>(k, 1));
    EXPECT_EQ(plan.weights.size(), plan.size());
    const LexDomain& dom = rep.value()->domain();
    EXPECT_EQ(plan.shards.front().lo, dom.MinTuple());
    EXPECT_EQ(plan.shards.back().hi, dom.MaxTuple());
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_FALSE(plan.shards[i].Empty());
      if (i + 1 < plan.size()) {
        // Adjacent: the next shard starts at the grid successor.
        Tuple succ = plan.shards[i].hi;
        ASSERT_TRUE(dom.Succ(succ));
        EXPECT_EQ(plan.shards[i + 1].lo, succ);
      }
    }
  }
}

TEST(ShardPlannerTest, ShardUnionEqualsFullAnswer) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expected = CollectAll(*rep.value()->Answer(vb));
    for (size_t k : kShardCounts) {
      ShardPlan plan = ShardPlanner::Plan(*rep.value(), k);
      std::vector<Tuple> stitched;
      for (const FInterval& shard : plan.shards) {
        auto e = rep.value()->AnswerRange(vb, shard);
        for (Tuple t; e->Next(&t);) stitched.push_back(t);
      }
      // Lex shards in order concatenate to the exact sequential stream.
      EXPECT_EQ(stitched, expected) << "K=" << k;
    }
  }
}

// --- cross-structure: the baseline consumes the same plan ------------------

TEST(ParallelCrossStructure, DirectEvalShardsAgree) {
  Database db;
  MakeRandomGraph(db, "R", 12, 70, true, 31);
  AdornedView view = TriangleView("bff");
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto rep = CompressedRep::Build(view, db, copt);
  auto de = DirectEval::Build(view, db);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(de.ok());
  ShardPlan plan = ShardPlanner::Plan(*rep.value(), 4);
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expected = CollectAll(*rep.value()->Answer(vb));
    // Parallel over the baseline, same shard geometry, via the generic
    // factory constructor.
    ParallelOptions popt;
    popt.num_threads = 2;
    popt.ordered = true;
    auto factory = [&](size_t s) {
      return de.value()->AnswerRange(vb, plan.shards[s]);
    };
    ParallelEnumerator pe(factory, plan.size(), view.num_free(), popt);
    EXPECT_EQ(CollectAll(pe), expected);
  }
}

// --- Theorem 2: residue-class shards ---------------------------------------

TEST(ParallelDecomposedRep, ResidueShardsPartitionTheOutput) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 16);
  AdornedView view = PathView(5);
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 6; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  DecomposedRepOptions dopt;
  dopt.delta = DelayAssignment::Uniform(td, 0.4);
  auto rep = DecomposedRep::Build(view, db, td, dopt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expected =
        SortedCopy(CollectAll(*rep.value()->Answer(vb)));
    for (size_t stride : kShardCounts) {
      // Shards partition: each tuple appears in exactly one residue class.
      std::vector<Tuple> merged;
      for (size_t offset = 0; offset < stride; ++offset) {
        auto e = rep.value()->AnswerShard(vb, offset, stride);
        for (Tuple t; e->Next(&t);) merged.push_back(t);
      }
      EXPECT_EQ(SortedCopy(merged), expected) << "stride=" << stride;
      // And the parallel drain agrees.
      ParallelOptions popt;
      popt.num_threads = 2;
      popt.num_shards = stride;
      auto pe = ParallelAnswer(*rep.value(), vb, popt);
      EXPECT_EQ(SortedCopy(CollectAll(*pe)), expected);
    }
  }
}

// --- teardown: abandoning a parallel stream mid-drain ----------------------

TEST(ParallelTeardown, EarlyAbandonDoesNotHangOrLeak) {
  Database db;
  MakePathRelations(db, "R", 3, 20, 400, 8);
  AdornedView view = PathView(3, "ffff");
  CompressedRepOptions copt;
  copt.tau = 8.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  for (bool ordered : {true, false}) {
    ParallelOptions popt;
    popt.num_threads = 3;
    popt.ordered = ordered;
    popt.batch_size = 32;
    popt.max_chunks_per_shard = 2;  // force producers into backpressure
    auto e = ParallelAnswer(*rep.value(), {}, popt);
    Tuple t;
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(e->Next(&t));
    // Destructor must cancel blocked producers and join cleanly (verified
    // under ASan/UBSan in CI).
  }
}

// Mixing Next() and NextBatch() on the merged stream must not duplicate or
// drop tuples (the TupleEnumerator contract).
TEST(ParallelTeardown, MixedNextAndBatchDrain) {
  Database db;
  MakeRandomGraph(db, "R", 10, 60, true, 12);
  AdornedView view = TriangleView("fff");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const std::vector<Tuple> expected = CollectAll(*rep.value()->Answer({}));
  ParallelOptions popt;
  popt.num_threads = 2;
  popt.batch_size = 16;
  auto e = ParallelAnswer(*rep.value(), {}, popt);
  std::vector<Tuple> got;
  TupleBuffer buf(view.num_free());
  for (;;) {
    Tuple t;
    if (!e->Next(&t)) break;
    got.push_back(t);
    buf.Clear();
    const size_t n = e->NextBatch(&buf, 7);
    for (size_t i = 0; i < n; ++i) got.push_back(buf[i].ToTuple());
    if (n < 7) break;
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace cqc

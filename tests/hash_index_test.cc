// The probe-path overhaul: hash-vs-sorted membership agreement, the
// bit-packed candidate pool, and parallel rep builds.
//
//  * HashIndex must agree with the sorted-trie membership walk on every
//    present and absent tuple, under randomized inserts with duplicates
//    (set semantics collapse them at Seal).
//  * BoundAtom::ContainsValuation (now one hash probe through the cached
//    column scatter) must agree with the reference bf-trie refinement walk.
//  * PackedTuplePool round-trips arbitrary rows branch-free, including
//    zero-width and 64-bit-wide columns.
//  * Serialization (CQCREP03) must round-trip byte-identically:
//    save -> load -> save produces the same file bytes.
//  * Parallel builds (par::SetBuildThreads > 1) must produce byte-identical
//    structures to serial builds.
#include <gtest/gtest.h>

#include <fstream>

#include "core/bitpack.h"
#include "core/compressed_rep.h"
#include "core/serialization.h"
#include "exec/par_util.h"
#include "join/bound_atom.h"
#include "query/parser.h"
#include "relational/hash_index.h"
#include "relational/relation.h"
#include "relational/sorted_index.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;

bool SortedContains(const Relation& rel, TupleSpan t) {
  std::vector<int> identity;
  for (int c = 0; c < rel.arity(); ++c) identity.push_back(c);
  const SortedIndex& idx = rel.GetIndex(identity);
  RowRange r = idx.Root();
  for (int level = 0; level < rel.arity() && !r.empty(); ++level)
    r = idx.Refine(r, level, t[level]);
  return !r.empty();
}

TEST(HashIndex, AgreesWithSortedMembershipUnderRandomizedInserts) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    const int arity = 1 + (int)rng.Uniform(4);
    const uint64_t domain = 1 + rng.Uniform(50);
    Relation rel("R", arity);
    const size_t inserts = 200 + rng.Uniform(800);
    std::vector<Tuple> inserted;
    for (size_t i = 0; i < inserts; ++i) {
      Tuple t(arity);
      for (int c = 0; c < arity; ++c) t[c] = rng.Uniform(domain);
      rel.Insert(t);
      inserted.push_back(t);
      if (rng.Bernoulli(0.3)) rel.Insert(t);  // duplicate insert
    }
    rel.Seal();
    const HashIndex& hash = rel.GetHashIndex();
    EXPECT_EQ(hash.num_rows(), rel.size());
    // Every inserted tuple is present; random tuples agree both ways.
    for (const Tuple& t : inserted) {
      EXPECT_TRUE(hash.Contains(t)) << "seed " << seed;
      EXPECT_TRUE(rel.Contains(t));
    }
    for (int i = 0; i < 2000; ++i) {
      Tuple t(arity);
      for (int c = 0; c < arity; ++c) t[c] = rng.Uniform(domain + 3);
      EXPECT_EQ(hash.Contains(t), SortedContains(rel, t))
          << "seed " << seed << " probe " << i;
    }
  }
}

TEST(HashIndex, ContainsValuationAgreesWithTrieWalk) {
  Database db;
  Rng rng(5);
  std::vector<Tuple> rows;
  for (int i = 0; i < 300; ++i)
    rows.push_back({rng.Uniform(9), rng.Uniform(9), rng.Uniform(9)});
  AddRelation(db, "R", 3, rows);
  auto view = ParseAdornedView("Q^bff(x,y,z) = R(x,y,z)");
  ASSERT_TRUE(view.ok());
  const AdornedView& v = view.value();
  BoundAtom atom(v.cq().atoms()[0], *db.Find("R"), v.bound_vars(),
                 v.free_vars());

  // Reference: refine the bf trie level by level.
  auto reference = [&](TupleSpan vb, TupleSpan vf) {
    RowRange r = atom.SeekBound(vb);
    for (int i = 0; i < atom.num_free() && !r.empty(); ++i)
      r = atom.bf_index().Refine(r, atom.num_bound() + i,
                                 vf[atom.free_positions()[i]]);
    return !r.empty();
  };
  for (int i = 0; i < 5000; ++i) {
    Tuple vb{rng.Uniform(10)};
    Tuple vf{rng.Uniform(10), rng.Uniform(10)};
    EXPECT_EQ(atom.ContainsValuation(vb, vf), reference(vb, vf))
        << "probe " << i;
  }
}

TEST(PackedTuplePool, RoundTripsRandomRows) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int arity = (int)rng.Uniform(6);  // includes arity 0
    const size_t rows = rng.Uniform(200);
    std::vector<Value> flat;
    for (size_t r = 0; r < rows; ++r)
      for (int c = 0; c < arity; ++c) {
        // Mix widths: constants (width 0), small ints, full 64-bit.
        const int kind = (int)((r + c) % 3);
        flat.push_back(kind == 0 ? 0
                       : kind == 1 ? rng.Uniform(1000)
                                   : rng.Next());
      }
    PackedTuplePool pool = PackedTuplePool::Pack(flat, arity, rows);
    EXPECT_EQ(pool.size(), rows);
    Tuple buf(arity);
    for (size_t r = 0; r < rows; ++r) {
      pool.UnpackRow(r, buf.data());
      for (int c = 0; c < arity; ++c) {
        EXPECT_EQ(buf[c], flat[r * arity + c]) << "row " << r << " col " << c;
        EXPECT_EQ(pool.At(r, c), flat[r * arity + c]);
      }
      EXPECT_TRUE(pool.RowEquals(r, buf));
      if (arity > 0) {
        Tuple other = buf;
        other[rng.Uniform(arity)] ^= 1;
        EXPECT_FALSE(pool.RowEquals(r, other));
      }
    }
    // Rebuild from serialized parts: identical content.
    PackedTuplePool re = PackedTuplePool::FromFlatParts(
        arity, rows, pool.widths(), pool.words());
    for (size_t r = 0; r < rows; ++r)
      for (int c = 0; c < arity; ++c)
        EXPECT_EQ(re.At(r, c), flat[r * arity + c]);
  }
}

TEST(PackedTuplePool, AllZeroAndTrailingZeroColumns) {
  {
    // Every column width 0: the pool holds no payload words, and reads
    // must not touch memory.
    const std::vector<Value> flat{0, 0, 0, 0};
    PackedTuplePool pool = PackedTuplePool::Pack(flat, 2, 2);
    EXPECT_TRUE(pool.words().empty());
    EXPECT_EQ(pool.At(1, 1), 0u);
    EXPECT_TRUE(pool.RowEquals(0, Tuple{0, 0}));
    EXPECT_FALSE(pool.RowEquals(0, Tuple{0, 1}));
  }
  {
    // Trailing width-0 column whose bit offset lands exactly on the end of
    // a full payload word.
    const std::vector<Value> flat{~0ull, 0};
    PackedTuplePool pool = PackedTuplePool::Pack(flat, 2, 1);
    EXPECT_EQ(pool.At(0, 0), ~0ull);
    EXPECT_EQ(pool.At(0, 1), 0u);
    EXPECT_TRUE(pool.RowEquals(0, Tuple{~0ull, 0}));
  }
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(Serialization, ByteIdenticalResave) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 16);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto original = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(original.ok());
  const std::string p1 = ::testing::TempDir() + "/rep_v03_a.bin";
  const std::string p2 = ::testing::TempDir() + "/rep_v03_b.bin";
  ASSERT_TRUE(SaveCompressedRep(*original.value(), p1).ok());
  auto loaded = LoadCompressedRep(view, db, p1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_TRUE(SaveCompressedRep(*loaded.value(), p2).ok());
  const std::string b1 = FileBytes(p1);
  const std::string b2 = FileBytes(p2);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2) << "save -> load -> save must be byte-identical";
}

// Serial and parallel builds must produce identical structures: same
// serialized bytes, same answers. Forces the parallel paths (atom binding,
// dictionary subtree sweeps, parallel sorts) even on single-core CI.
TEST(ParallelBuild, MatchesSerialBuildByteForByte) {
  auto build_and_save = [](int threads, const std::string& path) {
    par::SetBuildThreads(threads);
    Database db;  // fresh db per build: Seal/index builds run under
                  // the configured thread count
    MakeTripartiteTriangleGraph(db, "R", 20);
    AdornedView view = TriangleView("bfb");
    CompressedRepOptions copt;
    copt.tau = 2.0;  // deep tree: many dictionary subtrees
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
    // Sanity: answers match the oracle under this thread count.
    const auto requests = InterestingBoundValuations(view, db);
    for (size_t i = 0; i < std::min<size_t>(requests.size(), 4); ++i) {
      EXPECT_EQ(CollectAll(*rep.value()->Answer(requests[i])),
                OracleAnswer(view, db, requests[i]));
    }
    par::SetBuildThreads(0);
  };
  const std::string serial_path = ::testing::TempDir() + "/rep_serial.bin";
  const std::string par_path = ::testing::TempDir() + "/rep_parallel.bin";
  build_and_save(1, serial_path);
  build_and_save(4, par_path);
  EXPECT_EQ(FileBytes(serial_path), FileBytes(par_path))
      << "parallel build diverged from serial build";
}

TEST(ParallelBuild, ParallelSortMatchesStdSort) {
  par::SetBuildThreads(4);
  Rng rng(3);
  for (size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{1u << 16}}) {
    std::vector<uint64_t> a(n);
    for (auto& x : a) x = rng.Uniform(997);  // many duplicates
    std::vector<uint64_t> b = a;
    par::ParallelSort(a.begin(), a.end(), std::less<uint64_t>());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "n " << n;
  }
  par::SetBuildThreads(0);
}

}  // namespace
}  // namespace cqc

// RepCache tests: hit/miss accounting, canonical-key sharing, LRU
// eviction, error paths, end-to-end serving, and the single-flight
// guarantee under concurrent requests for the same key.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "plan/rep_cache.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::OracleAnswer;
using testing::SortedCopy;

Database MakeTriangleDb(uint64_t m = 8) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", m);
  return db;
}

constexpr char kTriangle[] = "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)";

TEST(RepCache, SecondGetIsAHit) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto first = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(first.ok()) << first.status().message();
  auto second = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RepCache, AlphaRenamedQuerySharesTheEntry) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto a = cache.Get("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)", 1.2);
  auto b = cache.Get("Q^bfb(u,v,w) = R(u,v), R(v,w), R(w,u)", 1.2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(RepCache, BudgetIsPartOfTheKey) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto a = cache.Get(kTriangle, 2.0);
  auto b = cache.Get(kTriangle, 1.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().get(), b.value().get());
  EXPECT_EQ(cache.stats().builds, 2u);
  // The tighter budget may not pick a larger-space structure.
  EXPECT_LE(b.value()->plan().predicted_log_space,
            a.value()->plan().predicted_log_space + 1e-6);
}

TEST(RepCache, LruEvictionKeepsHandlesAlive) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.capacity = 2;
  RepCache cache(&db, options);
  auto a = cache.Get(kTriangle, 1.0);
  auto b = cache.Get(kTriangle, 1.5);
  auto c = cache.Get(kTriangle, 2.0);  // evicts the 1.0 entry
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted handle still serves (shared ownership)...
  auto e = a.value()->rep().Answer({1, 9});
  EXPECT_TRUE(e.ok());
  // ...and re-requesting it is a fresh build.
  auto a2 = cache.Get(kTriangle, 1.0);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(cache.stats().builds, 4u);
  EXPECT_NE(a.value().get(), a2.value().get());
}

TEST(RepCache, ErrorsAreReportedAndNotCached) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  EXPECT_FALSE(cache.Get("not a view").ok());           // parse error
  auto missing = cache.Get("Q^bf(x,y) = NOPE(x,y)");    // unknown relation
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(cache.stats().build_failures, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // A failed key retries (and fails again) instead of serving the error.
  EXPECT_FALSE(cache.Get("Q^bf(x,y) = NOPE(x,y)").ok());
  EXPECT_EQ(cache.stats().build_failures, 2u);
}

TEST(RepCache, ServesCorrectAnswersIncludingNormalizedViews) {
  Database db;
  testing::AddRelation(db, "R", 3, {{1, 2, 7}, {1, 3, 7}, {2, 2, 5}});
  RepCache cache(&db);
  // Constant in the body: the entry owns the derived aux relation.
  auto entry = cache.Get("Q^bf(x,y) = R(x,y,7)");
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  auto parsed = ParseAdornedView("Q^bf(x,y) = R(x,y,7)");
  ASSERT_TRUE(parsed.ok());
  for (Value x : {Value{1}, Value{2}, Value{3}}) {
    auto e = entry.value()->rep().Answer({x});
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(SortedCopy(CollectAll(*e.value())),
              OracleAnswer(parsed.value(), db, {x}));
  }
  EXPECT_FALSE(entry.value()->plan().Explain().empty());
}

TEST(RepCache, SingleFlightCoalescesConcurrentBuilds) {
  // A bigger instance so the build takes long enough for real overlap.
  Database db = MakeTriangleDb(24);
  RepCache cache(&db);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CachedRep>> got(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto r = cache.Get(kTriangle, 1.4);
      if (r.ok())
        got[t] = r.value();
      else
        ++failures;
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t].get(), got[0].get());
  const RepCacheStats stats = cache.stats();
  // The heart of single-flight: exactly one build ever ran, and every
  // other request either coalesced onto it or hit the finished entry.
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, (uint64_t)kThreads - 1);
}

TEST(RepCache, DistinctKeysBuildIndependently) {
  Database db = MakeTriangleDb(12);
  RepCache cache(&db);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Two distinct budgets -> two entries, built concurrently.
      auto r = cache.Get(kTriangle, t % 2 == 0 ? 1.1 : 1.9);
      if (!r.ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace cqc

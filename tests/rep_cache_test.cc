// RepCache tests: hit/miss accounting, canonical-key sharing, LRU
// eviction, error paths, end-to-end serving, and the single-flight
// guarantee under concurrent requests for the same key.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "plan/rep_cache.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::OracleAnswer;
using testing::SortedCopy;

Database MakeTriangleDb(uint64_t m = 8) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", m);
  return db;
}

constexpr char kTriangle[] = "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)";

TEST(RepCache, SecondGetIsAHit) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto first = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(first.ok()) << first.status().message();
  auto second = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RepCache, AlphaRenamedQuerySharesTheEntry) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto a = cache.Get("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)", 1.2);
  auto b = cache.Get("Q^bfb(u,v,w) = R(u,v), R(v,w), R(w,u)", 1.2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(RepCache, BudgetIsPartOfTheKey) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  auto a = cache.Get(kTriangle, 2.0);
  auto b = cache.Get(kTriangle, 1.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().get(), b.value().get());
  EXPECT_EQ(cache.stats().builds, 2u);
  // The tighter budget may not pick a larger-space structure.
  EXPECT_LE(b.value()->plan().predicted_log_space,
            a.value()->plan().predicted_log_space + 1e-6);
}

TEST(RepCache, LruEvictionKeepsHandlesAlive) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.capacity = 2;
  RepCache cache(&db, options);
  auto a = cache.Get(kTriangle, 1.0);
  auto b = cache.Get(kTriangle, 1.5);
  auto c = cache.Get(kTriangle, 2.0);  // evicts the 1.0 entry
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted handle still serves (shared ownership)...
  auto e = a.value()->rep().Answer({1, 9});
  EXPECT_TRUE(e.ok());
  // ...and re-requesting it is a fresh build.
  auto a2 = cache.Get(kTriangle, 1.0);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(cache.stats().builds, 4u);
  EXPECT_NE(a.value().get(), a2.value().get());
}

TEST(RepCache, ErrorsAreReportedAndNotCached) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);
  EXPECT_FALSE(cache.Get("not a view").ok());           // parse error
  auto missing = cache.Get("Q^bf(x,y) = NOPE(x,y)");    // unknown relation
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(cache.stats().build_failures, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // A failed key retries (and fails again) instead of serving the error.
  EXPECT_FALSE(cache.Get("Q^bf(x,y) = NOPE(x,y)").ok());
  EXPECT_EQ(cache.stats().build_failures, 2u);
}

TEST(RepCache, ServesCorrectAnswersIncludingNormalizedViews) {
  Database db;
  testing::AddRelation(db, "R", 3, {{1, 2, 7}, {1, 3, 7}, {2, 2, 5}});
  RepCache cache(&db);
  // Constant in the body: the entry owns the derived aux relation.
  auto entry = cache.Get("Q^bf(x,y) = R(x,y,7)");
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  auto parsed = ParseAdornedView("Q^bf(x,y) = R(x,y,7)");
  ASSERT_TRUE(parsed.ok());
  for (Value x : {Value{1}, Value{2}, Value{3}}) {
    auto e = entry.value()->rep().Answer({x});
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(SortedCopy(CollectAll(*e.value())),
              OracleAnswer(parsed.value(), db, {x}));
  }
  EXPECT_FALSE(entry.value()->plan().Explain().empty());
}

TEST(RepCache, SingleFlightCoalescesConcurrentBuilds) {
  // A bigger instance so the build takes long enough for real overlap.
  Database db = MakeTriangleDb(24);
  RepCache cache(&db);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CachedRep>> got(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto r = cache.Get(kTriangle, 1.4);
      if (r.ok())
        got[t] = r.value();
      else
        ++failures;
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t].get(), got[0].get());
  const RepCacheStats stats = cache.stats();
  // The heart of single-flight: exactly one build ever ran, and every
  // other request either coalesced onto it or hit the finished entry.
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, (uint64_t)kThreads - 1);
}

TEST(RepCache, DeltaStatsCountOnlySuccessfulAbsorbs) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.planner.churn_per_request = 0.5;  // plan an updatable structure
  RepCache cache(&db, options);
  auto entry = cache.Get(kTriangle);
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  ASSERT_TRUE(entry.value()->rep().capabilities().updatable);

  ASSERT_TRUE(
      cache.ApplyDelta(entry.value()->key(), {UpdateOp::Insert("R", {1, 2})})
          .ok());
  EXPECT_EQ(cache.stats().deltas_applied, 1u);
  EXPECT_EQ(cache.stats().delta_failures, 0u);

  // A malformed op (arity mismatch) is a *failure*, not an application:
  // the old accounting counted the entry before the absorb ran.
  EXPECT_FALSE(cache
                   .ApplyDelta(entry.value()->key(),
                               {UpdateOp::Insert("R", {1, 2, 3})})
                   .ok());
  EXPECT_EQ(cache.stats().deltas_applied, 1u);
  EXPECT_EQ(cache.stats().delta_failures, 1u);

  // A batch this view never reads touches nothing and counts nothing.
  ASSERT_TRUE(
      cache.ApplyDelta(entry.value()->key(), {UpdateOp::Insert("S", {1, 2})})
          .ok());
  EXPECT_EQ(cache.stats().deltas_applied, 1u);
  EXPECT_EQ(cache.stats().delta_failures, 1u);
  cache.WaitForRebuilds();
}

TEST(RepCache, LiteralDerivedLookingNameIsNotInvalidated) {
  // A *base* relation whose own name matches the derived-relation pattern
  // must not be routed as if it were derived from "R". The old heuristic
  // (substring match on "__n") invalidated this entry on every R mutation.
  Database db;
  testing::AddRelation(db, "R__n2", 2, {{1, 2}, {2, 3}});
  testing::AddRelation(db, "R", 2, {{5, 6}});
  RepCache cache(&db);
  auto looks_derived = cache.Get("Q^bf(x,y) = R__n2(x,y)");
  ASSERT_TRUE(looks_derived.ok()) << looks_derived.status().message();
  auto over_r = cache.Get("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(over_r.ok());

  ASSERT_TRUE(
      cache.ApplyDelta(over_r.value()->key(), {UpdateOp::Insert("R", {7, 8})})
          .ok());
  // Only the entry actually reading R was invalidated.
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 1u);
  auto again = cache.Get("Q^bf(x,y) = R__n2(x,y)");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), looks_derived.value().get());  // a hit
}

TEST(RepCache, GenuinelyDerivedEntriesStillInvalidate) {
  // The counterpart guard: views the normalizer rewrote (constant in the
  // body -> aux relation R__n0) must still be invalidated when the base
  // relation mutates — a static copy of a filtered R cannot absorb deltas.
  Database db;
  testing::AddRelation(db, "R", 3, {{1, 2, 7}, {2, 3, 7}});
  RepCache cache(&db);
  auto entry = cache.Get("Q^bf(x,y) = R(x,y,7)");
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  ASSERT_FALSE(entry.value()->derived_sources().empty());
  ASSERT_TRUE(
      cache.ApplyDelta(entry.value()->key(), {UpdateOp::Insert("R", {3, 4, 7})})
          .ok());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RepCache, ByteBudgetEvictsLruEntries) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.max_resident_bytes = 1;  // every built entry exceeds this
  RepCache cache(&db, options);
  auto a = cache.Get(kTriangle, 1.0);
  ASSERT_TRUE(a.ok());
  // The most recent entry is never evicted, even over budget.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().byte_evictions, 0u);
  auto b = cache.Get(kTriangle, 2.0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().byte_evictions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // not a capacity eviction
  EXPECT_GT(cache.stats().resident_bytes, 0u);
  // The evicted handle still serves (shared ownership).
  EXPECT_TRUE(a.value()->rep().Answer({1, 9}).ok());
}

TEST(RepCache, SnapshotPersistAndMmapRestart) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  // A fresh directory: leftover snapshots from a previous run would make
  // the very first Get a (legitimate) mmap hit.
  const std::filesystem::path snap_dir =
      std::filesystem::path(::testing::TempDir()) / "cqc_snapshot_restart";
  std::filesystem::remove_all(snap_dir);
  std::filesystem::create_directories(snap_dir);
  options.snapshot_dir = snap_dir.string();
  // PersistEntry needs a compressed structure; pin the planner to one.
  options.planner.consider_decomposed = false;
  options.planner.consider_direct = false;
  options.planner.consider_materialized = false;
  RepCache cache(&db, options);
  auto entry = cache.Get(kTriangle);
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  EXPECT_FALSE(entry.value()->from_snapshot());
  ASSERT_FALSE(cache.SnapshotPath(entry.value()->key()).empty());
  Status persisted = cache.PersistEntry(entry.value()->key());
  ASSERT_TRUE(persisted.ok()) << persisted.message();

  // "Restart": a fresh cache over the same database and directory serves
  // the snapshot zero-copy instead of re-planning and re-building.
  RepCache revived_cache(&db, options);
  auto revived = revived_cache.Get(kTriangle);
  ASSERT_TRUE(revived.ok()) << revived.status().message();
  EXPECT_TRUE(revived.value()->from_snapshot());
  EXPECT_EQ(revived_cache.stats().mmap_loads, 1u);
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  for (const BoundValuation& vb :
       testing::InterestingBoundValuations(parsed.value(), db)) {
    auto e = revived.value()->rep().Answer(vb);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(CollectAll(*e.value()), OracleAnswer(parsed.value(), db, vb));
  }

  // Re-persisting over the entry's OWN backing file must not disturb the
  // live mapping (save goes through a temp file + rename, so the mapped
  // inode survives the overwrite — a plain truncating write would SIGBUS).
  ASSERT_TRUE(revived_cache.PersistEntry(revived.value()->key()).ok());
  auto still = revived.value()->rep().Answer({1, 9});
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(CollectAll(*still.value()),
            OracleAnswer(parsed.value(), db, {1, 9}));

  // A snapshot that no longer matches the data must NOT serve: a cache
  // over a different database falls back to a fresh build.
  Database other = MakeTriangleDb(9);
  RepCache stale_cache(&other, options);
  auto rebuilt = stale_cache.Get(kTriangle);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  EXPECT_FALSE(rebuilt.value()->from_snapshot());
  EXPECT_EQ(stale_cache.stats().mmap_loads, 0u);

  // Without a snapshot_dir, persisting is a clean error.
  RepCache plain(&db);
  auto p = plain.Get(kTriangle);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(plain.PersistEntry(p.value()->key()).ok());
}

TEST(RepCache, DistinctKeysBuildIndependently) {
  Database db = MakeTriangleDb(12);
  RepCache cache(&db);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Two distinct budgets -> two entries, built concurrently.
      auto r = cache.Get(kTriangle, t % 2 == 0 ? 1.1 : 1.9);
      if (!r.ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace cqc

#include <gtest/gtest.h>

#include "core/finterval.h"
#include "core/lex_domain.h"
#include "util/rng.h"

namespace cqc {
namespace {

LexDomain SmallDomain(int mu, int per_dim) {
  std::vector<std::vector<Value>> doms(mu);
  for (int i = 0; i < mu; ++i)
    for (int v = 1; v <= per_dim; ++v) doms[i].push_back((Value)v);
  return LexDomain(std::move(doms));
}

// Enumerates every grid tuple of `dom`.
std::vector<Tuple> AllGridTuples(const LexDomain& dom) {
  std::vector<Tuple> out;
  Tuple t = dom.MinTuple();
  out.push_back(t);
  while (dom.Succ(t)) out.push_back(t);
  return out;
}

TEST(LexDomainTest, MinMaxSuccPred) {
  LexDomain dom({{1, 3, 5}, {2, 4}});
  EXPECT_EQ(dom.MinTuple(), (Tuple{1, 2}));
  EXPECT_EQ(dom.MaxTuple(), (Tuple{5, 4}));
  Tuple t{1, 2};
  ASSERT_TRUE(dom.Succ(t));
  EXPECT_EQ(t, (Tuple{1, 4}));
  ASSERT_TRUE(dom.Succ(t));
  EXPECT_EQ(t, (Tuple{3, 2}));
  ASSERT_TRUE(dom.Pred(t));
  EXPECT_EQ(t, (Tuple{1, 4}));
  t = {5, 4};
  EXPECT_FALSE(dom.Succ(t));
  t = {1, 2};
  EXPECT_FALSE(dom.Pred(t));
}

TEST(LexDomainTest, SuccEnumeratesWholeGrid) {
  LexDomain dom = SmallDomain(3, 3);
  auto all = AllGridTuples(dom);
  EXPECT_EQ(all.size(), 27u);
  for (size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(LexDomain::Compare(all[i - 1], all[i]), 0);
}

TEST(LexDomainTest, PredInvertsSucc) {
  LexDomain dom({{2, 7}, {1, 9}, {4, 5, 6}});
  Tuple t = dom.MinTuple();
  std::vector<Tuple> forward{t};
  while (dom.Succ(t)) forward.push_back(t);
  t = dom.MaxTuple();
  std::vector<Tuple> backward{t};
  while (dom.Pred(t)) backward.push_back(t);
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(LexDomainTest, EmptyAndGridSize) {
  LexDomain dom({{1, 2}, {}, {3}});
  EXPECT_TRUE(dom.AnyEmpty());
  LexDomain dom2({{1, 2}, {3, 4, 5}});
  EXPECT_FALSE(dom2.AnyEmpty());
  EXPECT_DOUBLE_EQ(dom2.GridSize(), 6.0);
}

TEST(FBoxTest, CanonicalRecognition) {
  FBox canonical{{FBoxDim::Unit(1), FBoxDim::Range(2, 5), FBoxDim::Any()}};
  EXPECT_TRUE(canonical.IsCanonical());
  FBox all_any{{FBoxDim::Any(), FBoxDim::Any()}};
  EXPECT_TRUE(all_any.IsCanonical());
  FBox bad{{FBoxDim::Range(1, 2), FBoxDim::Unit(3)}};
  EXPECT_FALSE(bad.IsCanonical());
  FBox bad2{{FBoxDim::Any(), FBoxDim::Unit(3)}};
  EXPECT_FALSE(bad2.IsCanonical());
}

TEST(FBoxTest, Contains) {
  FBox box{{FBoxDim::Unit(2), FBoxDim::Range(3, 6)}};
  EXPECT_TRUE(box.Contains(Tuple{2, 3}));
  EXPECT_TRUE(box.Contains(Tuple{2, 6}));
  EXPECT_FALSE(box.Contains(Tuple{2, 7}));
  EXPECT_FALSE(box.Contains(Tuple{1, 4}));
}

TEST(BoxDecomposeTest, UnitInterval) {
  FInterval i{{1, 2, 3}, {1, 2, 3}};
  auto boxes = BoxDecompose(i);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_TRUE(boxes[0].Contains(Tuple{1, 2, 3}));
  EXPECT_TRUE(boxes[0].IsCanonical());
}

TEST(BoxDecomposeTest, LastPositionOnly) {
  FInterval i{{1, 2, 3}, {1, 2, 9}};
  auto boxes = BoxDecompose(i);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_TRUE(boxes[0].Contains(Tuple{1, 2, 5}));
  EXPECT_FALSE(boxes[0].Contains(Tuple{1, 2, 10}));
}

TEST(BoxDecomposeTest, PaperExample12) {
  // Example 12: I = (<10,50,100>, <20,10,50>) open; our closed equivalent
  // is [succ(<10,50,100>), pred(<20,10,50>)] over the full grid
  // {1..1000}^3; the decomposition must contain exactly the same five
  // regions (as value sets).
  FInterval i{{10, 50, 101}, {20, 10, 49}};  // closed version on a dense grid
  auto boxes = BoxDecompose(i);
  ASSERT_EQ(boxes.size(), 5u);
  // B^l_3 = <10, 50, (100, top]>
  EXPECT_TRUE(boxes[0].Contains(Tuple{10, 50, 101}));
  EXPECT_TRUE(boxes[0].Contains(Tuple{10, 50, 1000}));
  EXPECT_FALSE(boxes[0].Contains(Tuple{10, 50, 100}));
  // B^l_2 = <10, (50, top]>
  EXPECT_TRUE(boxes[1].Contains(Tuple{10, 51, 1}));
  EXPECT_FALSE(boxes[1].Contains(Tuple{10, 50, 1}));
  // B_1 = <(10, 20)>
  EXPECT_TRUE(boxes[2].Contains(Tuple{11, 1, 1}));
  EXPECT_TRUE(boxes[2].Contains(Tuple{19, 1000, 1000}));
  EXPECT_FALSE(boxes[2].Contains(Tuple{20, 1, 1}));
  // B^r_2 = <20, [bottom, 10)>
  EXPECT_TRUE(boxes[3].Contains(Tuple{20, 9, 500}));
  EXPECT_FALSE(boxes[3].Contains(Tuple{20, 10, 1}));
  // B^r_3 = <20, 10, [bottom, 50)>
  EXPECT_TRUE(boxes[4].Contains(Tuple{20, 10, 49}));
  EXPECT_FALSE(boxes[4].Contains(Tuple{20, 10, 50}));
}

TEST(BoxDecomposeTest, PaperExample12SecondInterval) {
  // I' = [<10,50,100>, <10,50,200>): one box <10, 50, [100, 200)>.
  FInterval i{{10, 50, 100}, {10, 50, 199}};
  auto boxes = BoxDecompose(i);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_TRUE(boxes[0].Contains(Tuple{10, 50, 100}));
  EXPECT_TRUE(boxes[0].Contains(Tuple{10, 50, 199}));
  EXPECT_FALSE(boxes[0].Contains(Tuple{10, 50, 200}));
}

// Lemma 1 as a property test: partition, ordering, size bound.
TEST(BoxDecomposeTest, Lemma1PropertySweep) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    int mu = 1 + (int)rng.Uniform(4);
    int per_dim = 2 + (int)rng.Uniform(4);
    LexDomain dom = SmallDomain(mu, per_dim);
    auto all = AllGridTuples(dom);
    // Random closed interval.
    Tuple a = all[rng.Uniform(all.size())];
    Tuple b = all[rng.Uniform(all.size())];
    if (LexDomain::Compare(a, b) > 0) std::swap(a, b);
    FInterval interval{a, b};
    auto boxes = BoxDecompose(interval);

    // (3) |B(I)| <= 2 mu - 1.
    EXPECT_LE((int)boxes.size(), 2 * mu - 1);
    for (const auto& box : boxes) EXPECT_TRUE(box.IsCanonical());

    // (2) partition: every grid tuple in I lies in exactly one box; tuples
    // outside I lie in none.
    for (const Tuple& t : all) {
      int count = 0;
      for (const auto& box : boxes)
        if (box.Contains(t)) ++count;
      EXPECT_EQ(count, interval.Contains(t) ? 1 : 0)
          << "iter " << iter << " tuple membership mismatch";
    }

    // (1) ordering: boxes are lexicographically increasing blocks.
    // Verify via representative tuples: max of box i < min of box i+1.
    for (size_t bi = 0; bi + 1 < boxes.size(); ++bi) {
      Tuple max_prev, min_next;
      bool have_prev = false, have_next = false;
      for (const Tuple& t : all) {
        if (boxes[bi].Contains(t)) {
          max_prev = t;  // `all` is lex-sorted, so last hit is the max
          have_prev = true;
        }
        if (!have_next && boxes[bi + 1].Contains(t)) {
          min_next = t;
          have_next = true;
        }
      }
      if (have_prev && have_next)
        EXPECT_LT(LexDomain::Compare(max_prev, min_next), 0);
    }
  }
}

}  // namespace
}  // namespace cqc

#include <gtest/gtest.h>

#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "core/compressed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::IsStrictlySortedLex;
using testing::OracleAnswer;

TEST(MaterializedViewTest, MatchesOracleTriangle) {
  Database db;
  MakeRandomGraph(db, "R", 12, 55, true, 91);
  AdornedView view = TriangleView("bfb");
  auto mv = MaterializedView::Build(view, db);
  ASSERT_TRUE(mv.ok()) << mv.status().message();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto got = CollectAll(*mv.value()->Answer(vb));
    EXPECT_TRUE(IsStrictlySortedLex(got));
    EXPECT_EQ(got, OracleAnswer(view, db, vb));
  }
}

TEST(MaterializedViewTest, NumTuplesEqualsOutputSize) {
  Database db;
  MakeRandomGraph(db, "R", 10, 40, true, 17);
  AdornedView view = TriangleView("fff");
  auto mv = MaterializedView::Build(view, db);
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(mv.value()->num_tuples(), OracleAnswer(view, db, {}).size());
  EXPECT_GT(mv.value()->SpaceBytes(), 0u);
}

TEST(DirectEvalTest, MatchesOracleTriangle) {
  Database db;
  MakeRandomGraph(db, "R", 12, 55, true, 92);
  AdornedView view = TriangleView("bfb");
  auto de = DirectEval::Build(view, db);
  ASSERT_TRUE(de.ok()) << de.status().message();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto got = CollectAll(*de.value()->Answer(vb));
    EXPECT_TRUE(IsStrictlySortedLex(got));
    EXPECT_EQ(got, OracleAnswer(view, db, vb));
  }
}

TEST(DirectEvalTest, BooleanAndMissingRequests) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {2, 3}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  auto de = DirectEval::Build(view.value(), db);
  ASSERT_TRUE(de.ok());
  EXPECT_TRUE(de.value()->AnswerExists({1, 2}));
  EXPECT_FALSE(de.value()->AnswerExists({3, 1}));
}

TEST(BaselineAgreementTest, AllThreeStructuresAgree) {
  // Materialized, direct, and compressed answers coincide on a star join.
  Database db;
  for (int i = 1; i <= 3; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 10, 45, false, 200 + i);
  AdornedView view = StarView(3);
  auto mv = MaterializedView::Build(view, db);
  auto de = DirectEval::Build(view, db);
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto cr = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(mv.ok());
  ASSERT_TRUE(de.ok());
  ASSERT_TRUE(cr.ok());
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto a = CollectAll(*mv.value()->Answer(vb));
    auto b = CollectAll(*de.value()->Answer(vb));
    auto c = CollectAll(*cr.value()->Answer(vb));
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
  }
}

TEST(BaselineSpaceTest, MaterializedDominatesOnDenseTriangles) {
  // On the tripartite worst case, the materialized view stores ~N^{3/2}
  // tuples while direct evaluation keeps only linear indexes.
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 8);
  AdornedView view = TriangleView("bfb");
  auto mv = MaterializedView::Build(view, db);
  auto de = DirectEval::Build(view, db);
  ASSERT_TRUE(mv.ok());
  ASSERT_TRUE(de.ok());
  // 2 m^3 = 1024 triangles, each listed once per (x,z) orientation.
  EXPECT_GT(mv.value()->num_tuples(), db.TotalTuples());
  EXPECT_GT(mv.value()->SpaceBytes(), de.value()->SpaceBytes());
}

TEST(BaselineSpaceTest, CompressedInterpolates) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 10);
  AdornedView view = TriangleView("bfb");
  auto mv = MaterializedView::Build(view, db);
  ASSERT_TRUE(mv.ok());
  CompressedRepOptions tight, loose;
  tight.tau = 1.0;
  loose.tau = 1e9;
  auto small_tau = CompressedRep::Build(view, db, tight);
  auto big_tau = CompressedRep::Build(view, db, loose);
  ASSERT_TRUE(small_tau.ok());
  ASSERT_TRUE(big_tau.ok());
  // With huge tau the structure keeps almost nothing beyond the indexes.
  EXPECT_LT(big_tau.value()->stats().AuxBytes(),
            small_tau.value()->stats().AuxBytes());
}

}  // namespace
}  // namespace cqc

// The end-to-end update pipeline (docs/update-semantics.md): churn-aware
// planning, the UpdatableAnswerRep adapter, RepCache::ApplyDelta routing
// (in-place deltas for updatable entries, invalidation for static ones),
// background snapshot folds on the shared pool, and reader consistency
// while all of that churns.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "plan/planner.h"
#include "plan/rep_cache.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

// One property-sweep family: a view, its generator, and the mutation
// domain for random scripts.
struct Family {
  std::string name;
  AdornedView view;
  std::vector<std::string> relations;
  Value domain;  // tuples draw values from [1, domain]
};

std::vector<Family> MakeFamilies(Database& db, uint64_t seed) {
  std::vector<Family> out;
  MakeRandomGraph(db, "R", 10, 45, true, seed);
  out.push_back({"triangle", TriangleView("bfb"), {"R"}, 10});
  for (int i = 1; i <= 3; ++i)
    MakeRandomGraph(db, "S" + std::to_string(i), 8, 25, false,
                    seed * 100 + i);
  {
    AdornedView star = StarView(3);
    // StarView names its relations R1..Rn; rebuild against S1..S3 instead
    // so the star family mutates relations disjoint from the triangle's.
    auto parsed = ParseAdornedView(
        "Q^" + std::string("bbbf") +
        "(x1,x2,x3,z) = S1(x1,z), S2(x2,z), S3(x3,z)");
    out.push_back({"star3", parsed.value(), {"S1", "S2", "S3"}, 8});
    (void)star;
  }
  MakePathRelations(db, "P", 4, 9, 26, seed + 5);
  {
    auto parsed = ParseAdornedView(
        "Q^bffff(x1,x2,x3,x4,x5) = P1(x1,x2), P2(x2,x3), P3(x3,x4), "
        "P4(x4,x5)");
    out.push_back({"path4", parsed.value(), {"P1", "P2", "P3", "P4"}, 9});
  }
  MakeSetFamily(db, "T", 7, 12, 60, 1.1, seed + 9);
  {
    auto parsed = ParseAdornedView("Q^bbf(s1,s2,z) = T(s1,z), T(s2,z)");
    out.push_back({"setint", parsed.value(), {"T"}, 12});
  }
  return out;
}

/// Mirrors the current content of `rels` after a script, for oracles and
/// from-scratch rebuilds.
class DataMirror {
 public:
  DataMirror(const Database& db, const std::vector<std::string>& rels) {
    for (const std::string& name : rels) {
      const Relation* r = db.Find(name);
      CQC_CHECK(r != nullptr) << name;
      arity_[name] = r->arity();
      std::set<Tuple>& rows = data_[name];
      Tuple row(r->arity());
      for (size_t i = 0; i < r->size(); ++i) {
        for (int c = 0; c < r->arity(); ++c) row[c] = r->At(i, c);
        rows.insert(row);
      }
    }
  }

  void Apply(const UpdateOp& op) {
    if (op.kind == UpdateOp::kInsert)
      data_[op.relation].insert(op.tuple);
    else
      data_[op.relation].erase(op.tuple);
  }

  Database Materialize() const {
    Database out;
    for (const auto& [name, rows] : data_)
      AddRelation(out, name, arity_.at(name),
                  std::vector<Tuple>(rows.begin(), rows.end()));
    return out;
  }

  UpdateOp RandomOp(Rng& rng, const std::vector<std::string>& rels,
                    Value domain) {
    const std::string& rel = rels[rng.Uniform(rels.size())];
    Tuple t;
    for (int c = 0; c < arity_.at(rel); ++c)
      t.push_back(rng.UniformRange(1, (uint64_t)domain));
    const bool del = rng.Uniform(3) == 0;  // 2:1 insert:delete mix
    return del ? UpdateOp::Delete(rel, std::move(t))
               : UpdateOp::Insert(rel, std::move(t));
  }

 private:
  std::map<std::string, std::set<Tuple>> data_;
  std::map<std::string, int> arity_;
};

void ExpectMatchesOracle(const AnswerRep& rep, const AdornedView& view,
                         const Database& now, const std::string& context) {
  for (const BoundValuation& vb : InterestingBoundValuations(view, now)) {
    auto got = rep.Answer(vb);
    ASSERT_TRUE(got.ok()) << context;
    std::vector<Tuple> tuples = CollectAll(*got.value());
    std::vector<Tuple> sorted = SortedCopy(tuples);
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << context << ": duplicates emitted";
    EXPECT_EQ(sorted, OracleAnswer(view, now, vb)) << context;
  }
}

TEST(UpdatePipelineTest, PlannerPricesChurn) {
  Database db;
  MakeRandomGraph(db, "R", 30, 200, true, 3);
  AdornedView view = TriangleView("bfb");
  Planner planner(&db);

  // Static workload: the updatable candidate is not even scored.
  PlannerOptions static_opt;
  auto static_plan = planner.PlanView(view, static_opt);
  ASSERT_TRUE(static_plan.ok());
  EXPECT_NE(static_plan.value().kind(), RepKind::kUpdatable);
  for (const PlanCandidate& c : static_plan.value().candidates)
    EXPECT_NE(c.kind, RepKind::kUpdatable);

  // Churny workload: updatable is scored, chosen over static structures
  // (which pay the invalidate+rebuild amortization), and its rebuild
  // fraction shrinks as churn drops.
  PlannerOptions churn_opt;
  churn_opt.churn_per_request = 0.5;
  auto churn_plan = planner.PlanView(view, churn_opt);
  ASSERT_TRUE(churn_plan.ok());
  EXPECT_EQ(churn_plan.value().kind(), RepKind::kUpdatable);
  EXPECT_GT(churn_plan.value().spec.updatable.rebuild_fraction, 0.0);
  EXPECT_LE(churn_plan.value().spec.updatable.rebuild_fraction, 0.5);

  PlannerOptions low_churn = churn_opt;
  low_churn.churn_per_request = 0.001;
  auto low_plan = planner.PlanView(view, low_churn);
  ASSERT_TRUE(low_plan.ok());
  EXPECT_LT(low_plan.value().spec.updatable.rebuild_fraction,
            churn_plan.value().spec.updatable.rebuild_fraction);

  // Explain mentions the churn pricing.
  EXPECT_NE(churn_plan.value().Explain().find("churn"), std::string::npos);
}

TEST(UpdatePipelineTest, AnswerRepAdapterContract) {
  Database db;
  MakeRandomGraph(db, "R", 12, 50, true, 9);
  AdornedView view = TriangleView("bfb");
  RepBuildSpec spec;
  spec.kind = RepKind::kUpdatable;
  spec.updatable.rep.tau = 2.0;
  auto rep = BuildAnswerRep(spec, view, db);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  EXPECT_EQ(rep.value()->kind(), RepKind::kUpdatable);
  EXPECT_TRUE(rep.value()->capabilities().updatable);
  EXPECT_FALSE(rep.value()->capabilities().lex_ordered);
  EXPECT_EQ(std::string(RepKindName(rep.value()->kind())), "updatable");
  EXPECT_EQ(ParseRepKind("updatable"), RepKind::kUpdatable);

  // Hardened entry points still validate requests.
  EXPECT_FALSE(rep.value()->Answer({1}).ok());
  // Unsupported capabilities return errors, not crashes.
  EXPECT_FALSE(
      rep.value()->AnswerRange({1, 2}, FInterval{{0}, {100}}).ok());

  // Static adapters refuse deltas.
  RepBuildSpec direct;
  direct.kind = RepKind::kDirect;
  auto d = BuildAnswerRep(direct, view, db);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d.value()->ApplyDelta({UpdateOp::Insert("R", {1, 2})}).ok());
}

TEST(UpdatePipelineTest, ThousandOpScriptsMatchScratchAcrossFamilies) {
  Database db;
  std::vector<Family> families = MakeFamilies(db, 21);
  for (const Family& fam : families) {
    RepBuildSpec spec;
    spec.kind = RepKind::kUpdatable;
    spec.updatable.rep.tau = 3.0;
    spec.updatable.rebuild_fraction = 0.3;
    auto rep = BuildAnswerRep(spec, fam.view, db);
    ASSERT_TRUE(rep.ok()) << fam.name << ": " << rep.status().message();

    DataMirror mirror(db, fam.relations);
    Rng rng(fam.name.size() * 31 + 7);
    const int kOps = 1000;
    for (int i = 0; i < kOps; ++i) {
      UpdateOp op = mirror.RandomOp(rng, fam.relations, fam.domain);
      mirror.Apply(op);
      ASSERT_TRUE(rep.value()->ApplyDelta({std::move(op)}).ok()) << fam.name;
      if (i % 250 == 249) {
        Database now = mirror.Materialize();
        ExpectMatchesOracle(*rep.value(), fam.view, now,
                            fam.name + " @op " + std::to_string(i));
      }
    }
    // Final state: the maintained structure, a from-scratch compressed
    // rebuild, and the naive oracle all agree — through the AnswerRep
    // interface.
    Database final_db = mirror.Materialize();
    RepBuildSpec scratch;
    scratch.kind = RepKind::kCompressed;
    scratch.compressed.tau = 3.0;
    auto fresh = BuildAnswerRep(scratch, fam.view, final_db);
    ASSERT_TRUE(fresh.ok()) << fam.name;
    for (const BoundValuation& vb :
         InterestingBoundValuations(fam.view, final_db)) {
      auto a = rep.value()->Answer(vb);
      auto b = fresh.value()->Answer(vb);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(SortedCopy(CollectAll(*a.value())),
                SortedCopy(CollectAll(*b.value())))
          << fam.name;
    }
  }
}

constexpr char kTriangleText[] = "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)";

RepCacheOptions ChurnyCacheOptions() {
  RepCacheOptions options;
  options.planner.churn_per_request = 0.5;
  return options;
}

TEST(UpdatePipelineTest, RepCacheRoutesDeltasAndMatchesScratch) {
  Database db;
  MakeRandomGraph(db, "R", 10, 45, true, 33);
  RepCache cache(&db, ChurnyCacheOptions());
  auto entry = cache.Get(kTriangleText);
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  ASSERT_TRUE(entry.value()->rep().capabilities().updatable)
      << entry.value()->plan().Explain();

  AdornedView view = TriangleView("bfb");
  DataMirror mirror(db, {"R"});
  Rng rng(5);
  const int kOps = 1000;
  UpdateBatch batch;
  for (int i = 0; i < kOps; ++i) {
    UpdateOp op = mirror.RandomOp(rng, {"R"}, 10);
    mirror.Apply(op);
    batch.push_back(std::move(op));
    if (batch.size() == 25 || i + 1 == kOps) {
      ASSERT_TRUE(cache.ApplyDelta(entry.value()->key(), batch).ok());
      batch.clear();
    }
  }
  cache.WaitForRebuilds();
  RepCacheStats stats = cache.stats();
  EXPECT_GT(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.rebuilds_scheduled, stats.rebuilds_completed);

  Database final_db = mirror.Materialize();
  ExpectMatchesOracle(entry.value()->rep(), view, final_db,
                      "rep-cache script");
  // A second Get is still a hit on the same (mutated) entry.
  auto again = cache.Get(kTriangleText);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), entry.value().get());
}

TEST(UpdatePipelineTest, RepCacheInvalidatesStaticEntries) {
  Database db;
  MakeRandomGraph(db, "R", 10, 45, true, 33);
  RepCache cache(&db);  // churn 0: planner picks a static structure
  auto entry = cache.Get(kTriangleText);
  ASSERT_TRUE(entry.ok());
  ASSERT_FALSE(entry.value()->rep().capabilities().updatable);
  EXPECT_EQ(cache.size(), 1u);

  ASSERT_TRUE(cache
                  .ApplyDelta(entry.value()->key(),
                              {UpdateOp::Insert("R", {1, 2})})
                  .ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // The live handle still serves its (stale) build.
  auto e = entry.value()->rep().Answer({1, 9});
  ASSERT_TRUE(e.ok());

  // A delta addressed at a dropped/unknown key is an explicit error.
  EXPECT_FALSE(cache
                   .ApplyDelta(entry.value()->key(),
                               {UpdateOp::Insert("R", {2, 3})})
                   .ok());
}

TEST(UpdatePipelineTest, RepCacheConcurrentReadersDuringChurnAndRebuilds) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 44);
  RepCacheOptions options = ChurnyCacheOptions();
  RepCache cache(&db, options);
  auto entry = cache.Get(kTriangleText);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry.value()->rep().capabilities().updatable);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> failures{0};
  auto reader = [&] {
    Rng rng(std::hash<std::thread::id>{}(std::this_thread::get_id()) |
            1);
    while (!stop.load(std::memory_order_relaxed)) {
      BoundValuation vb{rng.UniformRange(1, 12), rng.UniformRange(1, 12)};
      auto stream = entry.value()->rep().Answer(vb);
      if (!stream.ok()) {
        ++failures;
        continue;
      }
      std::vector<Tuple> got = CollectAll(*stream.value());
      std::set<Tuple> seen;
      for (const Tuple& t : got) {
        // Every emitted tuple is well-formed (arity 1, in-domain) and the
        // stream is duplicate-free — a torn swap would surface here (and
        // under ASan in CI) as garbage values or repeats.
        if (t.size() != 1 || t[0] < 1 || t[0] > 12 ||
            !seen.insert(t).second) {
          ++failures;
          break;
        }
      }
      ++reads;
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) readers.emplace_back(reader);

  DataMirror mirror(db, {"R"});
  Rng rng(6);
  for (int round = 0; round < 40; ++round) {
    UpdateBatch batch;
    for (int i = 0; i < 20; ++i) {
      UpdateOp op = mirror.RandomOp(rng, {"R"}, 12);
      mirror.Apply(op);
      batch.push_back(std::move(op));
    }
    ASSERT_TRUE(cache.ApplyDelta(entry.value()->key(), batch).ok());
  }
  cache.WaitForRebuilds();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  RepCacheStats stats = cache.stats();
  // Folds were scheduled, all completed, and they coalesced: strictly
  // fewer folds than deltas (one per threshold crossing, not per batch).
  EXPECT_GT(stats.rebuilds_completed, 0u);
  EXPECT_EQ(stats.rebuilds_scheduled, stats.rebuilds_completed);
  EXPECT_LT(stats.rebuilds_scheduled, stats.deltas_applied);

  // Readers done: final differential check against the mirror.
  Database final_db = mirror.Materialize();
  ExpectMatchesOracle(entry.value()->rep(), TriangleView("bfb"), final_db,
                      "concurrent churn");
}

TEST(UpdatePipelineTest, CliStyleScriptThroughPlannerAuto) {
  // --plan auto with churn: the planner must pick updatable on its own and
  // the adapter must serve interleaved mutations and queries.
  Database db;
  MakeRandomGraph(db, "R", 10, 40, true, 2);
  Planner planner(&db);
  PlannerOptions popt;
  popt.churn_per_request = 1.0;
  AdornedView view = TriangleView("bfb");
  auto plan = planner.PlanView(view, popt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().kind(), RepKind::kUpdatable) << plan.value().Explain();
  auto rep = planner.BuildPlan(view, plan.value());
  ASSERT_TRUE(rep.ok());

  DataMirror mirror(db, {"R"});
  Rng rng(11);
  for (int i = 0; i < 120; ++i) {
    UpdateOp op = mirror.RandomOp(rng, {"R"}, 10);
    mirror.Apply(op);
    ASSERT_TRUE(rep.value()->ApplyDelta({std::move(op)}).ok());
  }
  Database now = mirror.Materialize();
  ExpectMatchesOracle(*rep.value(), view, now, "planner-auto script");
}

}  // namespace
}  // namespace cqc

#include <gtest/gtest.h>

#include <cmath>

#include "fractional/edge_cover.h"
#include "fractional/lp.h"
#include "query/parser.h"
#include "workload/catalog.h"

namespace cqc {
namespace {

constexpr double kTol = 1e-6;

TEST(LpTest, SimpleMinimize) {
  // min x + y  s.t. x + y >= 2, x >= 0, y >= 0  -> 2.
  LinearProgram lp;
  int x = lp.AddVariable(1.0);
  int y = lp.AddVariable(1.0);
  lp.AddGe({{x, 1.0}, {y, 1.0}}, 2.0);
  LpSolution s = lp.Minimize();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(LpTest, EqualityAndLe) {
  // min -x  s.t. x <= 5, x + y == 7, y <= 4 -> x = 5 (y = 2).
  LinearProgram lp;
  int x = lp.AddVariable(-1.0);
  int y = lp.AddVariable(0.0);
  lp.AddLe({{x, 1.0}}, 5.0);
  lp.AddEq({{x, 1.0}, {y, 1.0}}, 7.0);
  lp.AddLe({{y, 1.0}}, 4.0);
  LpSolution s = lp.Minimize();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 5.0, kTol);
  EXPECT_NEAR(s.objective, -5.0, kTol);
}

TEST(LpTest, Infeasible) {
  LinearProgram lp;
  int x = lp.AddVariable(1.0);
  lp.AddGe({{x, 1.0}}, 5.0);
  lp.AddLe({{x, 1.0}}, 2.0);
  EXPECT_EQ(lp.Minimize().status, LpStatus::kInfeasible);
}

TEST(LpTest, Unbounded) {
  LinearProgram lp;
  int x = lp.AddVariable(-1.0);
  lp.AddGe({{x, 1.0}}, 0.0);
  EXPECT_EQ(lp.Minimize().status, LpStatus::kUnbounded);
}

TEST(LpTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp;
  int x = lp.AddVariable(1.0);
  lp.AddLe({{x, -1.0}}, -3.0);
  LpSolution s = lp.Minimize();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 3.0, kTol);
}

TEST(LpTest, DegenerateRedundantConstraints) {
  LinearProgram lp;
  int x = lp.AddVariable(1.0);
  int y = lp.AddVariable(2.0);
  lp.AddGe({{x, 1.0}, {y, 1.0}}, 1.0);
  lp.AddGe({{x, 1.0}, {y, 1.0}}, 1.0);  // duplicate
  lp.AddEq({{x, 2.0}, {y, 2.0}}, 2.0);  // same hyperplane scaled
  LpSolution s = lp.Minimize();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 1.0, kTol);  // all weight on x
}

// ---- fractional edge covers: known values from the paper ----

Hypergraph HypergraphOf(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  CQC_CHECK(q.ok()) << q.status().message();
  return Hypergraph(q.value());
}

TEST(EdgeCoverTest, TriangleRhoIs1_5) {
  Hypergraph h = HypergraphOf("Q(x,y,z) = R(x,y), S(y,z), T(z,x)");
  EdgeCover c = FractionalEdgeCover(h, h.vertices());
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 1.5, kTol);
}

TEST(EdgeCoverTest, PathFourEdges) {
  // P_4 (5 vertices): endpoints force u1 = u4 = 1 and the middle vertex
  // needs u2 + u3 >= 1, so rho* = 3.
  Hypergraph h = HypergraphOf(
      "Q(a,b,c,d,e) = R1(a,b), R2(b,c), R3(c,d), R4(d,e)");
  EdgeCover c = FractionalEdgeCover(h, h.vertices());
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 3.0, kTol);
}

TEST(EdgeCoverTest, PathRhoThreeEdges) {
  // P_3 on 4 vertices: rho* = 2 (R1 + R3).
  Hypergraph h = HypergraphOf("Q(a,b,c,d) = R1(a,b), R2(b,c), R3(c,d)");
  EdgeCover c = FractionalEdgeCover(h, h.vertices());
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 2.0, kTol);
}

TEST(EdgeCoverTest, LoomisWhitneyRho) {
  // LW_3 = triangle; LW_4: rho* = 4/3 (Example 6: n/(n-1)).
  auto q = ParseConjunctiveQuery(
      "Q(x1,x2,x3,x4) = S1(x2,x3,x4), S2(x1,x3,x4), S3(x1,x2,x4), "
      "S4(x1,x2,x3)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  EdgeCover c = FractionalEdgeCover(h, h.vertices());
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 4.0 / 3.0, kTol);
}

TEST(EdgeCoverTest, StarRhoIsN) {
  Hypergraph h =
      HypergraphOf("Q(x1,x2,x3,z) = R1(x1,z), R2(x2,z), R3(x3,z)");
  EdgeCover c = FractionalEdgeCover(h, h.vertices());
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 3.0, kTol);
}

TEST(EdgeCoverTest, SubsetCover) {
  // Covering only z in the star needs weight 1.
  auto q = ParseConjunctiveQuery(
      "Q(x1,x2,x3,z) = R1(x1,z), R2(x2,z), R3(x3,z)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  VarId z = q.value().FindVar("z");
  EdgeCover c = FractionalEdgeCover(h, VarBit(z));
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.total, 1.0, kTol);
}

TEST(EdgeCoverTest, UncoverableVertex) {
  Hypergraph h(3, {VarBit(0) | VarBit(1)});  // vertex 2 in no edge
  EdgeCover c = FractionalEdgeCover(h, VarBit(2));
  EXPECT_FALSE(c.ok);
}

TEST(SlackTest, RunningExampleSlackIs2) {
  // Example 4/paper §3.1: u = (1,1,1) has slack 2 on {x,y,z}.
  auto q = ParseConjunctiveQuery(
      "Q(x,y,z,w1,w2,w3) = R1(w1,x,y), R2(w2,y,z), R3(w3,x,z)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  VarSet f = VarBit(q.value().FindVar("x")) |
             VarBit(q.value().FindVar("y")) |
             VarBit(q.value().FindVar("z"));
  EXPECT_NEAR(Slack(h, {1, 1, 1}, f), 2.0, kTol);
}

TEST(SlackTest, StarSlackIsN) {
  // Example 7: u = (1,..,1) has slack n on {z}.
  auto q = ParseConjunctiveQuery(
      "Q(x1,x2,x3,z) = R1(x1,z), R2(x2,z), R3(x3,z)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  VarSet f = VarBit(q.value().FindVar("z"));
  EXPECT_NEAR(Slack(h, {1, 1, 1}, f), 3.0, kTol);
}

TEST(SlackTest, EmptySetIsInfinite) {
  Hypergraph h(2, {VarBit(0) | VarBit(1)});
  EXPECT_TRUE(std::isinf(Slack(h, {1.0}, 0)));
}

TEST(MaxSlackCoverTest, StarFindsFullSlack) {
  auto view = StarView(3);
  Hypergraph h(view.cq());
  double slack = 0;
  EdgeCover c = MaxSlackCover(h, h.vertices(), view.free_set(), 3.0, &slack);
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(slack, 3.0, kTol);
}

TEST(MaxSlackCoverTest, BudgetLimitsSlack) {
  auto view = StarView(3);
  Hypergraph h(view.cq());
  double slack = 0;
  // With total weight <= 3 the x_i constraints already force u_i = 1 each;
  // a tighter budget is infeasible for covering x1..x3, looser budget
  // cannot help slack beyond n.
  EdgeCover c = MaxSlackCover(h, h.vertices(), view.free_set(), 10.0, &slack);
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(slack, 3.0, kTol);
}

TEST(AgmTest, Bounds) {
  EXPECT_NEAR(AgmBound({100, 100, 100}, {0.5, 0.5, 0.5}), 1000.0, 1e-6);
  EXPECT_NEAR(AgmBound({100, 100}, {1.0, 0.0}), 100.0, 1e-9);
  EXPECT_NEAR(LogAgmBound({std::exp(1.0)}, {2.0}), 2.0, 1e-9);
  EXPECT_TRUE(std::isinf(LogAgmBound({0.0}, {1.0})));
}

}  // namespace
}  // namespace cqc

// Planner unit tests: budget monotonicity (a tightened space budget never
// selects a larger-space plan), feasibility flags, candidate restriction,
// boolean views, and end-to-end agreement of the built plan with the naive
// oracle. Plus the canonical cache key used by the serving layer.
#include <gtest/gtest.h>

#include <cmath>

#include "plan/planner.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

TEST(CatalogStats, CollectsSizesAndLogs) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  auto stats = CollectCatalogStats(TriangleView("bfb"), db);
  ASSERT_TRUE(stats.ok());
  const Relation* r = db.Find("R");
  EXPECT_EQ(stats.value().log_sizes.size(), 3u);  // one per atom
  for (double ls : stats.value().log_sizes)
    EXPECT_NEAR(ls, std::log((double)r->size()), 1e-12);
  EXPECT_NEAR(stats.value().log_n, std::log((double)r->size()), 1e-12);
  // The three atoms share one relation: |D| counts it once.
  EXPECT_EQ(stats.value().total_tuples, r->size());
  EXPECT_GT(stats.value().input_bytes, 0u);
}

TEST(CatalogStats, MissingRelationIsAnError) {
  Database db;
  EXPECT_FALSE(CollectCatalogStats(TriangleView("bfb"), db).ok());
}

TEST(Planner, TightenedBudgetNeverSelectsLargerSpacePlan) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 8);
  const AdornedView view = TriangleView("bfb");
  Planner planner(&db);
  double prev_space = 1e300;
  // Descending budgets: predicted space of the selected plan must be
  // non-increasing, and every within-budget plan must actually fit.
  for (double budget : {3.0, 2.0, 1.6, 1.3, 1.1, 1.0, 0.9, 0.5}) {
    PlannerOptions popt;
    popt.space_budget_exponent = budget;
    auto plan = planner.PlanView(view, popt);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    const Plan& p = plan.value();
    EXPECT_LE(p.predicted_log_space, prev_space + 1e-6)
        << "budget exponent " << budget;
    prev_space = p.predicted_log_space;
    if (p.within_budget)
      EXPECT_LE(p.predicted_log_space, p.log_space_budget + 1e-6);
  }
}

TEST(Planner, UnlimitedBudgetPicksAConstantDelayPlan) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 8);
  Planner planner(&db);
  auto plan = planner.PlanView(TriangleView("bfb"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().within_budget);
  EXPECT_NEAR(plan.value().predicted_log_delay, 0.0, 1e-9);
  EXPECT_EQ(plan.value().candidates.size(), 4u);
}

TEST(Planner, ImpossibleBudgetFallsBackToSmallestSpace) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 8);
  Planner planner(&db);
  PlannerOptions popt;
  popt.space_budget_exponent = 0.1;  // below linear space
  auto plan = planner.PlanView(TriangleView("bfb"), popt);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().within_budget);
  // The fallback is the smallest-space buildable candidate.
  for (const PlanCandidate& c : plan.value().candidates)
    if (c.feasible)
      EXPECT_GE(c.predicted_log_space,
                plan.value().predicted_log_space - 1e-6);
}

TEST(Planner, RestrictedCandidatesAreHonored) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 8);
  Planner planner(&db);
  for (RepKind kind : {RepKind::kCompressed, RepKind::kDecomposed,
                       RepKind::kDirect, RepKind::kMaterialized}) {
    PlannerOptions popt;
    popt.consider_compressed = kind == RepKind::kCompressed;
    popt.consider_decomposed = kind == RepKind::kDecomposed;
    popt.consider_direct = kind == RepKind::kDirect;
    popt.consider_materialized = kind == RepKind::kMaterialized;
    auto plan = planner.PlanView(TriangleView("bfb"), popt);
    ASSERT_TRUE(plan.ok()) << RepKindName(kind);
    EXPECT_EQ(plan.value().spec.kind, kind);
  }
}

TEST(Planner, BooleanViewUsesProp1) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}, {2, 3}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  Planner planner(&db);
  auto plan = planner.PlanView(view.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().spec.kind, RepKind::kCompressed);
  EXPECT_NEAR(plan.value().tau(), 1.0, 1e-9);
  EXPECT_NEAR(plan.value().predicted_log_delay, 0.0, 1e-9);
}

TEST(Planner, ExplainNamesEveryCandidate) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  Planner planner(&db);
  PlannerOptions popt;
  popt.space_budget_exponent = 1.2;
  auto plan = planner.PlanView(TriangleView("bfb"), popt);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan.value().Explain();
  EXPECT_NE(text.find("plan:"), std::string::npos);
  for (const char* name :
       {"materialized", "compressed", "decomposed", "direct"})
    EXPECT_NE(text.find(name), std::string::npos) << text;
  EXPECT_NE(text.find("budget"), std::string::npos);
}

TEST(Planner, BuiltPlansMatchTheOracleAcrossBudgets) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  const AdornedView view = TriangleView("bfb");
  Planner planner(&db);
  // A small evenly spaced request sample keeps the naive-oracle cost sane
  // under ASan; each budget may select a different structure.
  std::vector<BoundValuation> vbs = InterestingBoundValuations(view, db);
  if (vbs.size() > 8) {
    std::vector<BoundValuation> sampled;
    for (size_t i = 0; i < 8; ++i)
      sampled.push_back(vbs[i * vbs.size() / 8]);
    vbs = std::move(sampled);
  }
  for (double budget : {-1.0, 2.0, 1.2, 1.0}) {
    PlannerOptions popt;
    popt.space_budget_exponent = budget;
    auto plan = planner.PlanView(view, popt);
    ASSERT_TRUE(plan.ok());
    auto rep = planner.BuildPlan(view, plan.value());
    ASSERT_TRUE(rep.ok()) << rep.status().message();
    for (const BoundValuation& vb : vbs) {
      auto e = rep.value()->Answer(vb);
      ASSERT_TRUE(e.ok());
      EXPECT_EQ(SortedCopy(CollectAll(*e.value())),
                OracleAnswer(view, db, vb));
    }
  }
}

TEST(Planner, NonNaturalViewIsRejected) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 1}, {2, 3}});
  auto view = ParseAdornedView("Q^f(x) = R(x,x)");  // repeated variable
  ASSERT_TRUE(view.ok());
  Planner planner(&db);
  EXPECT_FALSE(planner.PlanView(view.value()).ok());
  // After normalization it plans fine.
  auto normalized = NormalizeView(view.value(), db);
  ASSERT_TRUE(normalized.ok());
  Planner aux_planner(&db, &normalized.value().aux_db);
  EXPECT_TRUE(aux_planner.PlanView(normalized.value().view).ok());
}

TEST(CanonicalViewKey, InvariantUnderAlphaRenaming) {
  auto a = ParseAdornedView("Q^bf(x,y) = R(x,y), S(y,x)");
  auto b = ParseAdornedView("Q^bf(u,v) = R(u,v), S(v,u)");
  auto c = ParseAdornedView("Q^fb(x,y) = R(x,y), S(y,x)");   // adornment
  auto d = ParseAdornedView("Q^bf(x,y) = R(x,y), S(x,y)");   // join shape
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_EQ(CanonicalViewKey(a.value()), CanonicalViewKey(b.value()));
  EXPECT_NE(CanonicalViewKey(a.value()), CanonicalViewKey(c.value()));
  EXPECT_NE(CanonicalViewKey(a.value()), CanonicalViewKey(d.value()));
}

}  // namespace
}  // namespace cqc

// Deep invariants of the heavy-pair dictionary (Appendix A): entries exist
// exactly where Algorithm 2 can reach a heavy pair, bits reflect true
// emptiness of the restricted join, and light reachable pairs are cheap.
#include <gtest/gtest.h>

#include "core/compressed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;

// Walks the delay-balanced tree with its intervals, calling
// visit(node, interval).
template <typename Fn>
void WalkTree(const CompressedRep& rep, Fn&& visit) {
  if (rep.tree().empty()) return;
  FInterval root{rep.domain().MinTuple(), rep.domain().MaxTuple()};
  std::vector<std::pair<int, FInterval>> stack{{rep.tree().root(), root}};
  while (!stack.empty()) {
    auto [node, interval] = stack.back();
    stack.pop_back();
    visit(node, interval);
    const DbTreeNode& n = rep.tree().node(node);
    if (n.leaf) continue;
    FInterval child;
    if (n.left >= 0 &&
        DelayBalancedTree::LeftInterval(interval, n.beta, rep.domain(),
                                        &child))
      stack.emplace_back(n.left, child);
    if (n.right >= 0 &&
        DelayBalancedTree::RightInterval(interval, n.beta, rep.domain(),
                                         &child))
      stack.emplace_back(n.right, child);
  }
}

// Oracle: does the view (restricted to interval I and bound valuation vb)
// have any output?
bool OracleNonEmpty(const AdornedView& view, const Database& db,
                    const BoundValuation& vb, const FInterval& interval) {
  for (const Tuple& vf : testing::OracleAnswer(view, db, vb))
    if (interval.Contains(vf)) return true;
  return false;
}

TEST(DictionaryInvariantTest, BitsMatchOracleEmptiness) {
  Database db;
  MakeRandomGraph(db, "R", 14, 70, true, 5);
  AdornedView view = TriangleView("bfb");
  for (double tau : {1.0, 4.0, 32.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    const HeavyDictionary& dict = rep.value()->dictionary();
    WalkTree(*rep.value(), [&](int node, const FInterval& interval) {
      dict.ForEachEntry(node, [&](uint32_t vb_id, bool bit) {
        const Tuple vb = dict.Candidate(vb_id);
        EXPECT_EQ(bit, OracleNonEmpty(view, db, vb, interval))
            << "node " << node << " tau " << tau;
      });
    });
  }
}

TEST(DictionaryInvariantTest, EntriesOnlyWhereParentLive) {
  // An entry below the root requires the parent entry to exist with bit 1
  // (Algorithm 2 never descends otherwise).
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 8);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const HeavyDictionary& dict = rep.value()->dictionary();
  const DelayBalancedTree& tree = rep.value()->tree();
  // Build child -> parent map.
  std::vector<int> parent(tree.size(), -1);
  for (size_t i = 0; i < tree.size(); ++i) {
    const DbTreeNode& n = tree.node((int)i);
    if (n.left >= 0) parent[n.left] = (int)i;
    if (n.right >= 0) parent[n.right] = (int)i;
  }
  for (size_t node = 1; node < tree.size(); ++node) {
    dict.ForEachEntry((int)node, [&](uint32_t vb_id, bool bit) {
      ASSERT_GE(parent[node], 0);
      EXPECT_EQ(dict.Lookup(parent[node], vb_id),
                HeavyDictionary::Bit::kOne)
          << "orphan dictionary entry at node " << node;
    });
  }
}

TEST(DictionaryInvariantTest, LeafEntriesOnlyOnUnitIntervals) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 1.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const HeavyDictionary& dict = rep.value()->dictionary();
  WalkTree(*rep.value(), [&](int node, const FInterval& interval) {
    if (!rep.value()->tree().node(node).leaf) return;
    size_t entries = 0;
    dict.ForEachEntry(node, [&](uint32_t, bool) { ++entries; });
    if (entries > 0) EXPECT_TRUE(interval.IsUnit());
  });
}

TEST(DictionaryInvariantTest, CandidatesAreExactlyBoundJoin) {
  // Candidates = distinct bound valuations in the join of bound
  // projections; no access request outside it can have answers.
  Database db;
  MakeSetFamily(db, "R", 6, 20, 50, 0.5, 3);
  AdornedView view = SetIntersectionView();
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const HeavyDictionary& dict = rep.value()->dictionary();
  // Any (s1, s2) with both sets present is a candidate.
  const Relation* r = db.Find("R");
  std::set<Value> sets;
  for (size_t i = 0; i < r->size(); ++i) sets.insert(r->At(i, 0));
  for (Value s1 : sets)
    for (Value s2 : sets)
      EXPECT_NE(dict.FindValuation(Tuple{s1, s2}), HeavyDictionary::kNoValuation);
  EXPECT_EQ(dict.NumCandidates(), sets.size() * sets.size());
  EXPECT_EQ(dict.FindValuation(Tuple{999, 999}), HeavyDictionary::kNoValuation);
}

TEST(DictionaryInvariantTest, FixupFlipsDeadBits) {
  // FixupDictionary with a live-predicate that rejects everything must
  // flip every 1-bit to 0; afterwards every request must come up empty
  // when routed through the dictionary (light intervals still evaluate,
  // so answers can remain — this checks only the bit state).
  Database db;
  MakeRandomGraph(db, "R", 10, 50, true, 99);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 1.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  rep.value()->FixupDictionary(
      [](const BoundValuation&, const Tuple&) { return false; });
  const HeavyDictionary& dict = rep.value()->dictionary();
  for (size_t node = 0; node < rep.value()->tree().size(); ++node) {
    dict.ForEachEntry((int)node, [&](uint32_t, bool bit) {
      EXPECT_FALSE(bit);
    });
  }
}

TEST(DictionaryInvariantTest, FixupKeepsLiveBits) {
  Database db;
  MakeRandomGraph(db, "R", 10, 50, true, 99);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 1.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  size_t ones_before = 0;
  const HeavyDictionary& dict = rep.value()->dictionary();
  for (size_t node = 0; node < rep.value()->tree().size(); ++node)
    dict.ForEachEntry((int)node, [&](uint32_t, bool bit) {
      if (bit) ++ones_before;
    });
  rep.value()->FixupDictionary(
      [](const BoundValuation&, const Tuple&) { return true; });
  size_t ones_after = 0;
  for (size_t node = 0; node < rep.value()->tree().size(); ++node)
    dict.ForEachEntry((int)node, [&](uint32_t, bool bit) {
      if (bit) ++ones_after;
    });
  EXPECT_EQ(ones_before, ones_after);
}

}  // namespace
}  // namespace cqc

// Cross-module end-to-end scenarios: normalization -> structures ->
// agreement; k-SetDisjointness via the full view; delay instrumentation.
#include <gtest/gtest.h>

#include <set>

#include "baseline/d_representation.h"
#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

TEST(IntegrationTest, NormalizedViewThroughAllStructures) {
  Database db;
  Rng rng(404);
  Relation* r = db.AddRelation("R", 3);
  for (int i = 0; i < 150; ++i)
    r->Insert({rng.UniformRange(1, 10), rng.UniformRange(1, 10),
               rng.UniformRange(1, 3)});
  r->Seal();
  Relation* s = db.AddRelation("S", 2);
  for (int i = 0; i < 80; ++i)
    s->Insert({rng.UniformRange(1, 10), rng.UniformRange(1, 10)});
  s->Seal();

  auto raw = ParseAdornedView("Q^bff(x,y,z) = R(x,y,2), S(y,z)");
  ASSERT_TRUE(raw.ok());
  auto norm = NormalizeView(raw.value(), db);
  ASSERT_TRUE(norm.ok());
  const AdornedView& view = norm.value().view;
  const Database* aux = &norm.value().aux_db;

  CompressedRepOptions copt;
  copt.tau = 3.0;
  auto cr = CompressedRep::Build(view, db, copt, aux);
  auto mv = MaterializedView::Build(view, db, aux);
  auto de = DirectEval::Build(view, db, aux);
  ASSERT_TRUE(cr.ok()) << cr.status().message();
  ASSERT_TRUE(mv.ok());
  ASSERT_TRUE(de.ok());
  for (const BoundValuation& vb :
       InterestingBoundValuations(view, db, aux)) {
    auto expected = OracleAnswer(view, db, vb, aux);
    EXPECT_EQ(CollectAll(*cr.value()->Answer(vb)), expected);
    EXPECT_EQ(CollectAll(*mv.value()->Answer(vb)), expected);
    EXPECT_EQ(CollectAll(*de.value()->Answer(vb)), expected);
  }
}

TEST(IntegrationTest, KSetDisjointnessThroughFullView) {
  // §3.3: answer k-SetDisjointness with the structure for the full view.
  Database db;
  MakeSetFamily(db, "R", 12, 40, 150, 0.8, 313);
  AdornedView view = SetDisjointnessView(3);
  CompressedRepOptions copt;
  copt.tau = 8.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const Relation* r = db.Find("R");
  // Oracle: intersect the element sets directly.
  auto elements_of = [&](Value set_id) {
    std::set<Value> out;
    for (size_t i = 0; i < r->size(); ++i)
      if (r->At(i, 0) == set_id) out.insert(r->At(i, 1));
    return out;
  };
  for (Value s1 = 1; s1 <= 6; ++s1) {
    for (Value s2 = s1; s2 <= 6; ++s2) {
      for (Value s3 = s2; s3 <= 6; ++s3) {
        auto e1 = elements_of(s1);
        auto e2 = elements_of(s2);
        auto e3 = elements_of(s3);
        bool intersects = false;
        for (Value v : e1)
          if (e2.count(v) && e3.count(v)) intersects = true;
        EXPECT_EQ(rep.value()->AnswerExists({s1, s2, s3}), intersects)
            << s1 << "," << s2 << "," << s3;
      }
    }
  }
}

TEST(IntegrationTest, DelayProfileCountsTuples) {
  Database db;
  MakeRandomGraph(db, "R", 20, 120, true, 99);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto e = rep.value()->Answer(vb);
    std::vector<Tuple> sink;
    DelayProfile p = MeasureEnumeration(*e, &sink);
    EXPECT_EQ(p.num_tuples, OracleAnswer(view, db, vb).size());
    EXPECT_EQ(p.num_tuples, sink.size());
    EXPECT_GE(p.total_ops, p.max_delay_ops);
  }
}

TEST(IntegrationTest, TradeoffSpaceShrinksWithTau) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 16);
  AdornedView view = TriangleView("bfb");
  std::vector<size_t> aux_bytes;
  for (double tau : {1.0, 8.0, 64.0, 512.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    aux_bytes.push_back(rep.value()->stats().AuxBytes());
  }
  EXPECT_LT(aux_bytes.back(), aux_bytes.front());
}

TEST(IntegrationTest, TradeoffDelayGrowsWithTauOnHardIntersections) {
  // The fast-set-intersection hard case ([13], §3.1): two large
  // *interleaved* disjoint sets. Detecting that their intersection is
  // empty costs ~|set| leapfrog probes without auxiliary information; the
  // tau = 1 dictionary answers it with a handful of lookups. This is where
  // the paper's delay guarantee bites.
  const int k = 500;
  Database db;
  Relation* r = db.AddRelation("R", 2);
  for (int i = 0; i < k; ++i) {
    r->Insert({1, (Value)(2 * i)});      // set 1: evens
    r->Insert({2, (Value)(2 * i + 1)});  // set 2: odds (disjoint)
    r->Insert({3, (Value)(2 * i)});      // set 3: equals set 1
  }
  r->Seal();
  AdornedView view = SetIntersectionView();

  auto worst_empty_delay = [&](double tau) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    CQC_CHECK(rep.ok()) << rep.status().message();
    auto e = rep.value()->Answer({1, 2});  // empty intersection
    DelayProfile p = MeasureEnumeration(*e);
    CQC_CHECK_EQ(p.num_tuples, 0u);
    return p.max_delay_ops;
  };
  const uint64_t tight = worst_empty_delay(1.0);
  const uint64_t loose = worst_empty_delay(1e9);
  // Without the dictionary the emptiness check ping-pongs through ~k
  // probes; with tau = 1 it is logarithmic.
  EXPECT_GE(loose, (uint64_t)k / 2);
  EXPECT_LT(tight, loose / 4);

  // Sanity: non-empty requests still answer correctly at both settings.
  for (double tau : {1.0, 1e9}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(CollectAll(*rep.value()->Answer({1, 3})).size(), (size_t)k);
  }
}

TEST(IntegrationTest, Theorem1VsTheorem2OnPath) {
  // Same query, same data: Theorem 1 direct vs Theorem 2 zig-zag bags
  // agree for every access request.
  Database db;
  MakePathRelations(db, "R", 4, 14, 55, 606);
  AdornedView view = PathView(4);
  CompressedRepOptions copt;
  copt.tau = 4.0;
  auto t1 = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(t1.ok());
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 5; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  DecomposedRepOptions dopt;
  dopt.delta = DelayAssignment::Uniform(td, 0.25);
  auto t2 = DecomposedRep::Build(view, db, td, dopt);
  ASSERT_TRUE(t2.ok());
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    EXPECT_EQ(SortedCopy(CollectAll(*t1.value()->Answer(vb))),
              SortedCopy(CollectAll(*t2.value()->Answer(vb))));
  }
}

TEST(IntegrationTest, SelfJoinTriangleWithSharedIndexes) {
  // The triangle view uses one relation three ways; index caching must
  // share the underlying tries without interference.
  Database db;
  MakeRandomGraph(db, "R", 15, 70, true, 111);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const Relation* r = db.Find("R");
  EXPECT_GT(r->IndexBytes(), 0u);
  for (const BoundValuation& vb : InterestingBoundValuations(view, db))
    EXPECT_EQ(CollectAll(*rep.value()->Answer(vb)),
              OracleAnswer(view, db, vb));
}

}  // namespace
}  // namespace cqc

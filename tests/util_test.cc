#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/common.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str_util.h"
#include "util/tuple_arena.h"

namespace cqc {
namespace {

TEST(VarSetTest, BitOperations) {
  VarSet s = VarBit(0) | VarBit(3) | VarBit(63);
  EXPECT_TRUE(VarSetContains(s, 0));
  EXPECT_TRUE(VarSetContains(s, 3));
  EXPECT_TRUE(VarSetContains(s, 63));
  EXPECT_FALSE(VarSetContains(s, 1));
  EXPECT_EQ(VarSetSize(s), 3);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(rng.Bernoulli(0.0));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(ZipfTest, UniformFallbackInRange) {
  Rng rng(5);
  ZipfSampler z(100, 0.0);
  for (int i = 0; i < 200; ++i) EXPECT_LT(z.Sample(rng), 100u);
}

TEST(ZipfTest, SkewPrefersSmallIds) {
  Rng rng(5);
  ZipfSampler z(1000, 0.99);
  size_t low = 0, total = 5000;
  for (size_t i = 0; i < total; ++i)
    if (z.Sample(rng) < 10) ++low;
  // With theta ~ 1, the first few ranks dominate.
  EXPECT_GT(low, total / 4);
}

TEST(ZipfTest, InRangeAlways) {
  Rng rng(9);
  ZipfSampler z(37, 0.8);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(z.Sample(rng), 37u);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Error("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, SplitAndStrip) {
  auto parts = SplitAndStrip("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", "long string to exceed inline buffers maybe"),
            "long string to exceed inline buffers maybe");
}

TEST(HashTest, TupleHashDistinguishes) {
  TupleHash h;
  EXPECT_NE(h({1, 2, 3}), h({1, 2, 4}));
  EXPECT_NE(h({1, 2}), h({1, 2, 0}));
  EXPECT_EQ(h({5, 6}), h({5, 6}));
}

TEST(TupleArenaTest, SealFreezesSpansAndBlocksMutation) {
  TupleArena arena;
  TupleRef a = arena.Copy(Tuple{1, 2, 3});
  TupleRef b = arena.Copy(Tuple{4, 5});
  arena.Seal();
  EXPECT_TRUE(arena.sealed());
  // Published spans stay valid and readable after the seal.
  EXPECT_EQ(TupleSpan(a).ToTuple(), (Tuple{1, 2, 3}));
  EXPECT_EQ(TupleSpan(b).ToTuple(), (Tuple{4, 5}));
#ifndef NDEBUG
  // The read-only-after-seal contract is enforced in debug/sanitizer
  // builds: mutating a sealed arena aborts.
  EXPECT_DEATH(arena.Alloc(2), "sealed arena");
  EXPECT_DEATH(arena.Reset(), "sealed arena");
#endif
}

TEST(TupleArenaTest, UnsealedArenaReusesChunks) {
  TupleArena arena(8);
  arena.Copy(Tuple{1, 2, 3, 4, 5, 6, 7});
  arena.Copy(Tuple{8, 9, 10});  // forces a second chunk
  arena.Reset();                // legal while unsealed
  TupleRef r = arena.Alloc(4);
  EXPECT_EQ(r.size(), 4u);
}

}  // namespace
}  // namespace cqc

// Fault-tolerance unit tests (docs/robustness.md): the failpoint
// framework, RequestContext deadline/cancellation, ThreadPool exception
// containment + TaskGroup attribution, RepCache retry / negative cache /
// degraded fallback / single-flight failure fan-out, and the strict
// cqc_cli script grammar against a malformed-input corpus.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/enumerator.h"
#include "exec/thread_pool.h"
#include "plan/answer_rep.h"
#include "plan/rep_cache.h"
#include "plan/script.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/failpoint.h"
#include "util/request_context.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::OracleAnswer;
using testing::SortedCopy;

/// Every test arms its own sites and must leave nothing armed behind.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- failpoint framework ----------------------------------------------------

Status GuardedOp() {
  CQC_FAILPOINT("test/op");
  return Status::Ok();
}

TEST_F(RobustnessTest, FailpointDisarmedIsTransparent) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::ShouldFail("test/op"));
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(failpoint::FireCount("test/op"), 0u);
}

TEST_F(RobustnessTest, FailpointFiresAsUnavailableNamingTheSite) {
  failpoint::Arm("test/op");
  EXPECT_TRUE(failpoint::AnyArmed());
  Status s = GuardedOp();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.message().find("test/op"), std::string::npos);
  EXPECT_EQ(failpoint::FireCount("test/op"), 1u);
  failpoint::Disarm("test/op");
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(RobustnessTest, FailpointSkipLetsEarlyTriggersPass) {
  failpoint::Arm("test/op", {.probability = 1.0, .skip = 2});
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_FALSE(GuardedOp().ok());
  EXPECT_EQ(failpoint::FireCount("test/op"), 1u);
}

TEST_F(RobustnessTest, FailpointMaxFiresAutoDisarms) {
  failpoint::Arm("test/op", {.probability = 1.0, .skip = 0, .max_fires = 2});
  EXPECT_FALSE(GuardedOp().ok());
  EXPECT_FALSE(GuardedOp().ok());
  // Exhausted: the site auto-disarmed and the fast path is off again.
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(failpoint::FireCount("test/op"), 2u);
}

TEST_F(RobustnessTest, FailpointProbabilityExtremes) {
  failpoint::Arm("test/op", {.probability = 0.0});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(GuardedOp().ok());
  failpoint::Arm("test/op", {.probability = 1.0});  // re-arm resets counters
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(GuardedOp().ok());
}

TEST_F(RobustnessTest, FailpointArmSpecGrammar) {
  EXPECT_TRUE(failpoint::ArmSpec("a/b"));
  EXPECT_TRUE(failpoint::ArmSpec("a/c=0.5"));
  EXPECT_TRUE(failpoint::ArmSpec("a/d=1:2"));
  EXPECT_TRUE(failpoint::ArmSpec("a/e=0.25:3:7"));
  EXPECT_EQ(failpoint::ArmedSites().size(), 4u);

  EXPECT_FALSE(failpoint::ArmSpec(""));
  EXPECT_FALSE(failpoint::ArmSpec("="));
  EXPECT_FALSE(failpoint::ArmSpec("a/b=notaprob"));
  EXPECT_FALSE(failpoint::ArmSpec("a/b=2.0"));    // probability > 1
  EXPECT_FALSE(failpoint::ArmSpec("a/b=0.5:x"));  // junk skip
  EXPECT_FALSE(failpoint::ArmSpec("a/b=0.5:1:"));
  EXPECT_EQ(failpoint::ArmedSites().size(), 4u);  // nothing half-armed
}

TEST_F(RobustnessTest, FailpointArmFromEnv) {
  ::setenv("CQC_FAILPOINTS", "env/a;env/b=0.5:1:2", 1);
  EXPECT_EQ(failpoint::ArmFromEnv(), 2);
  EXPECT_TRUE(failpoint::ShouldFail("env/a"));
  ::unsetenv("CQC_FAILPOINTS");
  EXPECT_EQ(failpoint::ArmFromEnv(), 0);
}

TEST_F(RobustnessTest, FailpointMaybeThrow) {
  failpoint::MaybeThrow("test/throw");  // disarmed: no-op
  failpoint::Arm("test/throw");
  EXPECT_THROW(failpoint::MaybeThrow("test/throw"), std::runtime_error);
}

// --- RequestContext ---------------------------------------------------------

TEST(RequestContextTest, DefaultIsUnbounded) {
  RequestContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.expired());
  EXPECT_TRUE(RequestContext::Check(nullptr).ok());
}

TEST(RequestContextTest, ExpiredDeadlineReportsDeadlineExceeded) {
  RequestContext ctx =
      RequestContext::WithDeadline(RequestContext::Clock::now());
  EXPECT_TRUE(ctx.expired());
  Status s = ctx.Check();
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_FALSE(s.IsCancelled());
}

TEST(RequestContextTest, FutureDeadlineIsOkUntilItPasses) {
  RequestContext ctx = RequestContext::WithTimeout(std::chrono::hours(1));
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(RequestContextTest, CancellationWinsTies) {
  RequestContext ctx =
      RequestContext::WithDeadline(RequestContext::Clock::now());
  ctx.Cancel();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

// --- ThreadPool containment + TaskGroup -------------------------------------

TEST_F(RobustnessTest, ThrowingTaskNeverKillsTheProcess) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.WaitIdle();
  // The backstop recorded the leak and the worker survived.
  EXPECT_EQ(pool.uncaught_task_exceptions(), 1u);
  EXPECT_NE(pool.first_uncaught_message().find("boom"), std::string::npos);
  std::atomic<int> ran{0};
  pool.Submit([&] { ++ran; });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(RobustnessTest, TaskGroupPropagatesExceptionsAsStatus) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    group.Submit([&] { ++ran; });
  group.Submit([]() { throw std::runtime_error("task exploded"); });
  Status s = group.Wait();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.message().find("task exploded"), std::string::npos);
  EXPECT_EQ(group.failed_tasks(), 1u);
  EXPECT_EQ(ran.load(), 8);
  // Contained by the group, not leaked to the pool backstop.
  EXPECT_EQ(pool.uncaught_task_exceptions(), 0u);
}

TEST_F(RobustnessTest, TaskGroupCapturesStatusReturningTasks) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.Submit([]() -> Status { return Status::Ok(); });
  group.Submit([]() -> Status { return Status::Unavailable("soft fault"); });
  Status s = group.Wait();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(group.failed_tasks(), 1u);
}

TEST_F(RobustnessTest, TaskGroupHonorsThreadPoolFailpoint) {
  ThreadPool pool(2);
  failpoint::Arm("thread_pool/task", {.probability = 1.0, .max_fires = 1});
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    group.Submit([&] { ++ran; });
  Status s = group.Wait();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(group.failed_tasks(), 1u);
  EXPECT_EQ(ran.load(), 3);  // exactly the injected task was dropped
}

// --- deadline-checked streaming ---------------------------------------------

std::unique_ptr<AnswerRep> BuildDirectTriangle(const Database& db,
                                               const AdornedView& view) {
  RepBuildSpec spec;
  spec.kind = RepKind::kDirect;
  auto rep = BuildAnswerRep(spec, view, db);
  CQC_CHECK(rep.ok()) << rep.status().message();
  return std::move(rep).value();
}

TEST(DeadlineEnumeratorTest, CancellationStopsWithinOneBatch) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  auto parsed = ParseAdornedView("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)");
  ASSERT_TRUE(parsed.ok());
  auto rep = BuildDirectTriangle(db, parsed.value());

  // Tripartite ids (m=6): A=[1,6], B=[7,12], C=[13,18]; binding x=1, z=13
  // leaves all six y in B, so the stream has more than one 2-tuple batch.
  RequestContext ctx;
  auto stream = rep->Answer({1, 13}, &ctx);
  ASSERT_TRUE(stream.ok()) << stream.status().message();
  TupleEnumerator& e = *stream.value();
  TupleBuffer batch(parsed.value().num_free());
  ASSERT_GT(e.NextBatch(&batch, 2), 0u);
  EXPECT_TRUE(e.StreamStatus().ok());

  ctx.Cancel();
  batch.Clear();
  EXPECT_EQ(e.NextBatch(&batch, 2), 0u);
  EXPECT_TRUE(e.StreamStatus().IsCancelled());
  Tuple t;
  EXPECT_FALSE(e.Next(&t));
}

TEST(DeadlineEnumeratorTest, NullContextIsPassThrough) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  auto parsed = ParseAdornedView("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)");
  ASSERT_TRUE(parsed.ok());
  auto rep = BuildDirectTriangle(db, parsed.value());
  auto with_null = rep->Answer({1, 9}, nullptr);
  auto without = rep->Answer({1, 9});
  ASSERT_TRUE(with_null.ok() && without.ok());
  EXPECT_EQ(CollectAll(*with_null.value()), CollectAll(*without.value()));
}

// --- RepCache resilience ----------------------------------------------------

Database MakeTriangleDb(uint64_t m = 6) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", m);
  return db;
}

constexpr char kTriangle[] = "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)";

TEST_F(RobustnessTest, GetWithExpiredContextFailsFastAndIsNotCached) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.negative_ttl = std::chrono::milliseconds(10000);
  RepCache cache(&db, options);
  RequestContext expired =
      RequestContext::WithDeadline(RequestContext::Clock::now());
  auto r = cache.Get(kTriangle, 1.2, &expired);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded());
  // The caller's deadline is not the key's fault: no negative entry, and
  // an unbounded request right after succeeds.
  auto ok = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_EQ(cache.stats().negative_hits, 0u);
}

TEST_F(RobustnessTest, RetriesTransientBuildFaultsWithBackoff) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.max_build_attempts = 3;
  options.build_retry_backoff = std::chrono::milliseconds(1);
  RepCache cache(&db, options);
  // The first two attempts hit the fault; the third builds clean.
  failpoint::Arm("build/any", {.probability = 1.0, .max_fires = 2});
  auto r = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_FALSE(r.value()->degraded());
  RepCacheStats stats = cache.stats();
  EXPECT_EQ(stats.build_retries, 2u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.build_failures, 0u);
  EXPECT_EQ(stats.degraded_serves, 0u);
}

TEST_F(RobustnessTest, InputErrorsAreNotRetried) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.max_build_attempts = 5;
  options.build_retry_backoff = std::chrono::milliseconds(0);
  RepCache cache(&db, options);
  auto r = cache.Get("Q^bf(x,y) = NOPE(x,y)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(cache.stats().build_retries, 0u);  // kError: retry is pointless
}

TEST_F(RobustnessTest, DegradedFallbackServesCorrectAnswers) {
  Database db = MakeTriangleDb();
  RepCache cache(&db);  // degrade_on_failure defaults on
  // The planned build fails once; the fallback (DirectEval) build runs
  // after the site exhausted and succeeds.
  failpoint::Arm("build/any", {.probability = 1.0, .max_fires = 1});
  auto r = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value()->degraded());
  EXPECT_GE(cache.stats().degraded_serves, 1u);
  // The plan records why.
  EXPECT_NE(r.value()->plan().Explain().find("degraded fallback"),
            std::string::npos);

  // Degraded answers are byte-identical to the oracle.
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  for (Value x : {Value{0}, Value{1}, Value{2}}) {
    auto e = r.value()->rep().Answer({x, (x + 6) % 12});
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(SortedCopy(CollectAll(*e.value())),
              OracleAnswer(parsed.value(), db, {x, (x + 6) % 12}));
  }
  // Hits on a degraded entry keep counting.
  uint64_t before = cache.stats().degraded_serves;
  ASSERT_TRUE(cache.Get(kTriangle, 1.2).ok());
  EXPECT_EQ(cache.stats().degraded_serves, before + 1);
}

TEST_F(RobustnessTest, ConcurrentWaitersShareOneFailureAndNegativeTtlHeals) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.degrade_on_failure = false;  // surface the fault, don't mask it
  options.negative_ttl = std::chrono::milliseconds(100);
  RepCache cache(&db, options);
  // Unlimited fires: however many threads win the builder race while the
  // window is open, every build fails the same way.
  failpoint::Arm("build/any", {.probability = 1.0});

  constexpr int kThreads = 8;
  std::vector<Status> results(kThreads, Status::Ok());
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        auto r = cache.Get(kTriangle, 1.2);
        results[i] = r.ok() ? Status::Ok() : r.status();
      });
    for (auto& t : threads) t.join();
  }
  // Everyone saw the same injected fault, whether they were the builder, a
  // coalesced waiter, or a negative-cache hit.
  for (const Status& s : results) {
    EXPECT_TRUE(s.IsUnavailable()) << s.message();
    EXPECT_NE(s.message().find("build/any"), std::string::npos);
  }
  RepCacheStats stats = cache.stats();
  // Single-flight + negative cache: at most a couple of builds actually
  // ran; definitely not one per thread.
  EXPECT_GE(stats.build_failures, 1u);
  EXPECT_EQ(stats.builds, 0u);
  EXPECT_EQ(stats.coalesced + stats.negative_hits + stats.misses,
            (uint64_t)kThreads);

  // Within the TTL the key fails fast without re-entering the build path.
  uint64_t failures_before = cache.stats().build_failures;
  auto fast = cache.Get(kTriangle, 1.2);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(cache.stats().build_failures, failures_before);
  EXPECT_GE(cache.stats().negative_hits, 1u);

  // After the TTL (and with the fault gone) the key builds fine.
  failpoint::DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto healed = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(healed.ok()) << healed.status().message();
  EXPECT_EQ(cache.stats().builds, 1u);
}

TEST_F(RobustnessTest, ApplyDeltaFailpointLeavesEntriesUntouched) {
  Database db = MakeTriangleDb();
  RepCacheOptions options;
  options.planner.churn_per_request = 0.5;
  RepCache cache(&db, options);
  auto entry = cache.Get(kTriangle);
  ASSERT_TRUE(entry.ok());
  failpoint::Arm("rep_cache/apply_delta", {.probability = 1.0,
                                           .max_fires = 1});
  Status s = cache.ApplyDelta(entry.value()->key(),
                              {UpdateOp::Insert("R", {1, 7})});
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(cache.stats().deltas_applied, 0u);
  // Retrying after the fault clears succeeds.
  EXPECT_TRUE(cache
                  .ApplyDelta(entry.value()->key(),
                              {UpdateOp::Insert("R", {1, 7})})
                  .ok());
}

// --- script grammar ---------------------------------------------------------

TEST(ScriptParseTest, ValueTokensAreStrict) {
  Value v = 0;
  EXPECT_TRUE(ParseValueToken("0", &v).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseValueToken("18446744073709551615", &v).ok());
  EXPECT_EQ(v, UINT64_MAX);
  for (const char* bad :
       {"", "-1", "+1", "1x", "x1", "0x10", "1.5", "18446744073709551616",
        "99999999999999999999", " 1", "1 "}) {
    EXPECT_FALSE(ParseValueToken(bad, &v).ok()) << "'" << bad << "'";
  }
}

TEST(ScriptParseTest, WellFormedMutateLines) {
  auto op = ParseScriptLine("+ R 1 2", true);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().kind, ScriptOp::Kind::kInsert);
  EXPECT_EQ(op.value().relation, "R");
  EXPECT_EQ(op.value().values, Tuple({1, 2}));

  op = ParseScriptLine("- R 3 4", true);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().kind, ScriptOp::Kind::kDelete);

  op = ParseScriptLine("? 1 2", true);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().kind, ScriptOp::Kind::kQuery);
  EXPECT_EQ(op.value().values, Tuple({1, 2}));

  op = ParseScriptLine("agg count 1 5", true);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().kind, ScriptOp::Kind::kAggregate);
  EXPECT_EQ(op.value().agg.func, AggFunc::kCount);
  EXPECT_EQ(op.value().group_arity, 1);
  EXPECT_EQ(op.value().values, Tuple({5}));

  op = ParseScriptLine("agg sum 2 1", true);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().agg.func, AggFunc::kSum);
  EXPECT_EQ(op.value().agg.value_var, 2);

  EXPECT_EQ(ParseScriptLine("rebuild", true).value().kind,
            ScriptOp::Kind::kRebuild);
  EXPECT_EQ(ParseScriptLine("stats", true).value().kind,
            ScriptOp::Kind::kStats);
  EXPECT_EQ(ParseScriptLine("", true).value().kind, ScriptOp::Kind::kNoOp);
  EXPECT_EQ(ParseScriptLine("  # comment", true).value().kind,
            ScriptOp::Kind::kNoOp);
  EXPECT_EQ(ParseScriptLine("+ R 1 2 # trailing comment", true)
                .value()
                .values,
            Tuple({1, 2}));
}

TEST(ScriptParseTest, MalformedMutateCorpusNeverParses) {
  // Each of these used to be silently misread by `istream >> uint64_t`
  // (wrapped negatives, mid-line truncation) or crash-adjacent; all must
  // come back as errors now — addressed to a byte of the line: the first
  // byte of the offending token, or one past the end for missing trailing
  // arguments (the offsets the wire protocol maps to stream offsets).
  const struct {
    const char* line;
    size_t offset;
  } corpus[] = {
      {"+", 1},                    // missing relation: points past the end
      {"+ R", 3},                  // missing values
      {"- R", 3},                  // missing values
      {"+ R -1 5", 4},             // negative wraps to UINT64_MAX
      {"- R 1 2x", 6},             // junk suffix truncated the old parse
      {"+ R 1 two", 6},            // non-numeric value
      {"+ R 1 18446744073709551616", 6},  // overflow
      {"? x", 2},                  // non-numeric bound value
      {"? 1 -2", 4},               // negative bound value
      {"agg", 3},                  // missing function
      {"agg avg 1 1", 4},          // unknown function
      {"agg count", 9},            // missing group arity
      {"agg count x", 10},         // junk group arity
      {"agg sum 1", 9},            // missing group arity after var
      {"agg sum x 1", 8},          // junk var index
      {"agg count 1 2y", 12},      // junk bound value
      {"rebuild now", 8},          // trailing garbage
      {"stats please", 6},         // trailing garbage
      {"insert R 1 2", 0},         // unknown verb
      {"++ R 1 2", 0},             // unknown verb
  };
  for (const auto& c : corpus) {
    size_t offset = kScriptNoOffset;
    EXPECT_FALSE(ParseScriptLine(c.line, true, &offset).ok())
        << "'" << c.line << "'";
    EXPECT_EQ(offset, c.offset) << "'" << c.line << "'";
  }
  // A successful parse must leave the offset at the sentinel.
  size_t offset = 12345;
  EXPECT_TRUE(ParseScriptLine("+ R 1 2", true, &offset).ok());
  EXPECT_EQ(offset, kScriptNoOffset);
}

TEST(ScriptParseTest, NonMutateModeOnlyAcceptsRequestsAndAggregates) {
  auto op = ParseScriptLine("1 2", false);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().kind, ScriptOp::Kind::kQuery);
  EXPECT_EQ(op.value().values, Tuple({1, 2}));
  EXPECT_TRUE(ParseScriptLine("agg count 1", false).ok());
  // Script verbs are value tokens here — and invalid ones, addressed to
  // the verb's byte.
  size_t offset = kScriptNoOffset;
  EXPECT_FALSE(ParseScriptLine("+ R 1 2", false, &offset).ok());
  EXPECT_EQ(offset, 0u);
  EXPECT_FALSE(ParseScriptLine("rebuild", false, &offset).ok());
  EXPECT_EQ(offset, 0u);
  EXPECT_FALSE(ParseScriptLine("1 -2", false, &offset).ok());
  EXPECT_EQ(offset, 2u);
}

TEST(ScriptParseTest, ValidateMutationChecksSchema) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}});
  auto ok = ParseScriptLine("+ R 3 4", true);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ValidateMutation(ok.value(), db).ok());

  auto wrong_arity = ParseScriptLine("+ R 1 2 3", true);
  ASSERT_TRUE(wrong_arity.ok());
  Status s = ValidateMutation(wrong_arity.value(), db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);

  auto unknown = ParseScriptLine("+ NOPE 1 2", true);
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(ValidateMutation(unknown.value(), db).ok());
}

}  // namespace
}  // namespace cqc

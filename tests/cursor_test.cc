// Pause/serialize/resume coverage for EnumerationCursor.
//
// The core property: pausing any answering stream at a random offset,
// round-tripping the cursor through its byte encoding, and resuming must
// produce exactly the uninterrupted suffix — including when the resume
// happens against a *reloaded* representation (serialization round trip of
// the structure itself), on a shard-restricted stream, and via the generic
// skip-ahead path of the Theorem 2 structure. Corrupt cursor blobs must be
// rejected with Status errors, never crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/compressed_rep.h"
#include "core/cursor.h"
#include "core/serialization.h"
#include "core/shard_planner.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::InterestingBoundValuations;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Drains `e` fully, pausing through a CursorEnumerator after `pause_after`
// tuples; returns (prefix, cursor-at-pause).
std::pair<std::vector<Tuple>, EnumerationCursor> DrainPrefix(
    std::unique_ptr<TupleEnumerator> e, size_t pause_after,
    Tuple range_lo = {}, Tuple range_hi = {}) {
  CursorEnumerator ce(std::move(e), std::move(range_lo),
                      std::move(range_hi));
  std::vector<Tuple> prefix;
  Tuple t;
  while (prefix.size() < pause_after && ce.Next(&t)) prefix.push_back(t);
  return {std::move(prefix), ce.cursor()};
}

TEST(CursorTest, RandomizedPauseResumeEqualsSuffix) {
  Database db;
  MakeRandomGraph(db, "R", 12, 70, true, 9);
  AdornedView view = TriangleView("bff");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  Rng rng(2024);
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> full = CollectAll(*rep.value()->Answer(vb));
    // Randomized offsets, plus the edges: 0, everything, beyond the end.
    std::vector<size_t> offsets = {0, full.size(), full.size() + 3};
    for (int i = 0; i < 6; ++i)
      offsets.push_back(rng.UniformRange(0, full.size() + 1));
    for (size_t off : offsets) {
      auto [prefix, cursor] =
          DrainPrefix(rep.value()->Answer(vb), off);

      // Serialize the cursor and resume from the decoded copy.
      auto decoded = EnumerationCursor::Deserialize(cursor.Serialize());
      ASSERT_TRUE(decoded.ok()) << decoded.status().message();
      EXPECT_EQ(decoded.value(), cursor);

      auto resumed = rep.value()->Resume(vb, decoded.value());
      ASSERT_TRUE(resumed.ok()) << resumed.status().message();
      std::vector<Tuple> suffix = CollectAll(*resumed.value());

      std::vector<Tuple> stitched = prefix;
      stitched.insert(stitched.end(), suffix.begin(), suffix.end());
      EXPECT_EQ(stitched, full) << "offset=" << off;
    }
  }
}

TEST(CursorTest, ResumeAcrossRepresentationRoundTrip) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("cursor_rt.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  auto reloaded = LoadCompressedRep(view, db, path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().message();

  Rng rng(7);
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> full = CollectAll(*rep.value()->Answer(vb));
    for (int i = 0; i < 4; ++i) {
      const size_t off = rng.UniformRange(0, full.size() + 1);
      // Pause against the ORIGINAL structure...
      auto [prefix, cursor] =
          DrainPrefix(rep.value()->Answer(vb), off);
      const std::string blob = cursor.Serialize();
      // ... resume against the RELOADED one: the cursor stores the logical
      // position, so it survives the structure's own round trip.
      auto decoded = EnumerationCursor::Deserialize(blob);
      ASSERT_TRUE(decoded.ok());
      auto resumed = reloaded.value()->Resume(vb, decoded.value());
      ASSERT_TRUE(resumed.ok()) << resumed.status().message();
      std::vector<Tuple> stitched = prefix;
      for (Tuple t; resumed.value()->Next(&t);) stitched.push_back(t);
      EXPECT_EQ(stitched, full) << "offset=" << off;
    }
  }
}

TEST(CursorTest, ResumeWithinShardStopsAtShardBoundary) {
  Database db;
  MakePathRelations(db, "R", 3, 20, 300, 5);
  AdornedView view = PathView(3, "ffff");
  CompressedRepOptions copt;
  copt.tau = 8.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  ShardPlan plan = ShardPlanner::Plan(*rep.value(), 4);
  ASSERT_GT(plan.size(), 1u);
  Rng rng(99);
  for (const FInterval& shard : plan.shards) {
    const std::vector<Tuple> full =
        CollectAll(*rep.value()->AnswerRange({}, shard));
    // Offset 0 matters: a cursor checkpointed before the shard's first
    // tuple must resume at the shard's LOWER bound, not replay every
    // earlier shard from the domain minimum.
    std::vector<size_t> offsets = {0, full.size()};
    if (!full.empty()) offsets.push_back(rng.UniformRange(1, full.size()));
    for (size_t off : offsets) {
      // The cursor records the shard's bounds, so the resumed stream must
      // start and stop at the shard boundaries, not span the grid.
      auto [prefix, cursor] = DrainPrefix(
          rep.value()->AnswerRange({}, shard), off, shard.lo, shard.hi);
      auto decoded = EnumerationCursor::Deserialize(cursor.Serialize());
      ASSERT_TRUE(decoded.ok());
      auto resumed = rep.value()->Resume({}, decoded.value());
      ASSERT_TRUE(resumed.ok());
      std::vector<Tuple> stitched = prefix;
      for (Tuple t; resumed.value()->Next(&t);) stitched.push_back(t);
      EXPECT_EQ(stitched, full) << "offset=" << off;
    }
  }
}

TEST(CursorTest, BatchAndSingleTupleCursorsAgree) {
  Database db;
  MakeRandomGraph(db, "R", 10, 50, true, 6);
  AdornedView view = TriangleView("fff");
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  // Walk the same stream through Next() and NextBatch() wrappers; cursors
  // at the same offset must match.
  CursorEnumerator a(rep.value()->Answer({}));
  CursorEnumerator b(rep.value()->Answer({}));
  Tuple t;
  TupleBuffer buf(view.num_free());
  size_t consumed = 0;
  while (a.Next(&t)) {
    ++consumed;
    buf.Clear();
    ASSERT_EQ(b.NextBatch(&buf, 1), 1u);
    EXPECT_EQ(a.cursor(), b.cursor()) << "offset " << consumed;
  }
  buf.Clear();
  EXPECT_EQ(b.NextBatch(&buf, 1), 0u);
  EXPECT_TRUE(a.cursor().exhausted);
  EXPECT_TRUE(b.cursor().exhausted);
}

TEST(CursorTest, DecomposedRepSkipResume) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 16);
  AdornedView view = PathView(5);
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 6; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  DecomposedRepOptions dopt;
  dopt.delta = DelayAssignment::Uniform(td, 0.4);
  auto rep = DecomposedRep::Build(view, db, td, dopt);
  ASSERT_TRUE(rep.ok());
  Rng rng(5);
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> full = CollectAll(*rep.value()->Answer(vb));
    const size_t off = rng.UniformRange(0, full.size() + 1);
    auto [prefix, cursor] = DrainPrefix(rep.value()->Answer(vb), off);
    auto resumed = rep.value()->Resume(vb, cursor);
    std::vector<Tuple> stitched = prefix;
    for (Tuple t; resumed->Next(&t);) stitched.push_back(t);
    EXPECT_EQ(stitched, full) << "offset=" << off;

    // A cursor taken over a residue-class shard resumes via ResumeShard
    // with the same (offset, stride): the suffix must be the shard's own.
    for (size_t shard_off : {size_t{0}, size_t{2}}) {
      const std::vector<Tuple> shard_full =
          CollectAll(*rep.value()->AnswerShard(vb, shard_off, 3));
      const size_t pause = shard_full.size() / 2;
      auto [sprefix, scursor] =
          DrainPrefix(rep.value()->AnswerShard(vb, shard_off, 3), pause);
      auto sresumed = rep.value()->ResumeShard(vb, scursor, shard_off, 3);
      std::vector<Tuple> sstitched = sprefix;
      for (Tuple t; sresumed->Next(&t);) sstitched.push_back(t);
      EXPECT_EQ(sstitched, shard_full) << "shard offset=" << shard_off;
    }
  }
}

// --- corrupt cursor blobs --------------------------------------------------

TEST(CursorTest, DeserializeRejectsCorruptBlobs) {
  EnumerationCursor c;
  c.emitted = 17;
  c.has_last = true;
  c.last = {4, 5, 6};
  c.range_lo = {1, 1, 1};
  c.range_hi = {9, 9, 9};
  const std::string good = c.Serialize();
  ASSERT_TRUE(EnumerationCursor::Deserialize(good).ok());

  // Wrong magic.
  std::string bad = good;
  bad[0] ^= 0x5a;
  EXPECT_FALSE(EnumerationCursor::Deserialize(bad).ok());
  // Truncations at every byte boundary.
  for (size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_FALSE(EnumerationCursor::Deserialize(good.substr(0, cut)).ok())
        << "cut=" << cut;
  // Trailing garbage.
  EXPECT_FALSE(EnumerationCursor::Deserialize(good + "x").ok());
  // Oversized tuple length field (claims more values than bytes remain).
  std::string oversized = good;
  const size_t len_pos = 8 + 8 + 1;  // magic | emitted | flags
  oversized[len_pos] = (char)0xff;
  oversized[len_pos + 1] = (char)0xff;
  EXPECT_FALSE(EnumerationCursor::Deserialize(oversized).ok());
  // Unknown flag bits.
  std::string badflags = good;
  badflags[8 + 8] = (char)0xf0;
  EXPECT_FALSE(EnumerationCursor::Deserialize(badflags).ok());
}

TEST(CursorTest, ResumeRejectsForeignCursors) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bff");
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());

  EnumerationCursor wrong_arity;
  wrong_arity.emitted = 1;
  wrong_arity.has_last = true;
  wrong_arity.last = {1, 2, 3, 4, 5};  // view has 2 free vars
  EXPECT_FALSE(rep.value()->Resume({1}, wrong_arity).ok());

  EnumerationCursor off_grid;
  off_grid.emitted = 1;
  off_grid.has_last = true;
  off_grid.last = {999999998, 999999998};  // not active-domain values
  EXPECT_FALSE(rep.value()->Resume({1}, off_grid).ok());

  EnumerationCursor bad_range;
  bad_range.range_hi = {7};  // arity mismatch
  EXPECT_FALSE(rep.value()->Resume({1}, bad_range).ok());
}

}  // namespace
}  // namespace cqc
